#include "core/commit_pipeline.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/adapters.h"
#include "log/storage_device.h"

namespace skeena {
namespace {

// Pipeline tests drive two real engine adapters with slow logs so the
// durability gating is observable.
class PipelineTest : public ::testing::Test {
 protected:
  // flush_us == 0 disables the background flusher entirely: durability
  // only advances on explicit FlushLog(), making the gating observable.
  std::unique_ptr<MemEngineAdapter> MakeMem(uint64_t flush_us) {
    memdb::MemEngine::Options opts;
    opts.log.auto_flush = flush_us != 0;
    if (flush_us != 0) opts.log.flush_interval_us = flush_us;
    return std::make_unique<MemEngineAdapter>(std::make_unique<MemDevice>(),
                                              opts);
  }
  std::unique_ptr<StorEngineAdapter> MakeStor(uint64_t flush_us) {
    stordb::StorEngine::Options opts;
    opts.log.auto_flush = flush_us != 0;
    if (flush_us != 0) opts.log.flush_interval_us = flush_us;
    return std::make_unique<StorEngineAdapter>(std::make_unique<MemDevice>(),
                                               opts);
  }
};

TEST_F(PipelineTest, CompletesOnlyWhenBothLogsDurable) {
  auto mem = MakeMem(0);   // manual flush only
  auto stor = MakeStor(0);
  CommitPipeline::Options opts;
  CommitPipeline pipeline(opts, mem.get(), stor.get());

  // Append a record to each log; the entry needs both durable.
  uint8_t payload[16] = {};
  Lsn mem_lsn = mem->engine()->log()->Append(payload);
  Lsn stor_lsn = stor->engine()->log()->Append(payload);

  auto waiter = std::make_shared<CommitWaiter>();
  waiter->Reset();
  std::atomic<bool> done{false};
  Lsn lsns[2] = {mem_lsn, stor_lsn};
  pipeline.Enqueue(lsns, waiter);
  std::thread watcher([&] {
    waiter->Wait();
    done.store(true);
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(done.load()) << "neither log flushed yet";

  ASSERT_TRUE(mem->FlushLog().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(done.load()) << "one log durable is not enough";

  ASSERT_TRUE(stor->FlushLog().ok());
  watcher.join();
  EXPECT_TRUE(done.load());
  EXPECT_EQ(pipeline.completed(), 1u);
}

TEST_F(PipelineTest, ZeroLsnMeansNothingToWaitFor) {
  auto mem = MakeMem(0);
  auto stor = MakeStor(0);
  CommitPipeline pipeline(CommitPipeline::Options{}, mem.get(), stor.get());
  auto waiter = std::make_shared<CommitWaiter>();
  Lsn lsns[2] = {0, 0};
  pipeline.EnqueueAndWait(lsns, waiter);  // returns immediately
  EXPECT_EQ(pipeline.completed(), 1u);
}

TEST_F(PipelineTest, SyncModeFlushesInline) {
  auto mem = MakeMem(0);
  auto stor = MakeStor(0);
  CommitPipeline::Options opts;
  opts.mode = CommitPipeline::Mode::kSync;
  CommitPipeline pipeline(opts, mem.get(), stor.get());

  uint8_t payload[8] = {};
  Lsn lsns[2] = {mem->engine()->log()->Append(payload),
                 stor->engine()->log()->Append(payload)};
  auto waiter = std::make_shared<CommitWaiter>();
  pipeline.EnqueueAndWait(lsns, waiter);
  EXPECT_GE(mem->DurableLsn(), lsns[0]);
  EXPECT_GE(stor->DurableLsn(), lsns[1]);
}

TEST_F(PipelineTest, AllQueuedEntriesComplete) {
  auto mem = MakeMem(50);
  auto stor = MakeStor(50);
  CommitPipeline pipeline(CommitPipeline::Options{}, mem.get(), stor.get());

  constexpr int kEntries = 64;
  std::vector<std::shared_ptr<CommitWaiter>> waiters;
  for (int i = 0; i < kEntries; ++i) {
    waiters.push_back(std::make_shared<CommitWaiter>());
  }
  uint8_t payload[8] = {};
  for (int i = 0; i < kEntries; ++i) {
    Lsn lsns[2] = {mem->engine()->log()->Append(payload),
                   stor->engine()->log()->Append(payload)};
    waiters[i]->Reset();
    pipeline.Enqueue(lsns, waiters[i]);
  }
  for (int i = 0; i < kEntries; ++i) {
    waiters[i]->Wait();
  }
  EXPECT_EQ(pipeline.completed(), static_cast<uint64_t>(kEntries));
}

TEST_F(PipelineTest, PartitionedQueuesProgressIndependently) {
  auto mem = MakeMem(50);
  auto stor = MakeStor(50);
  CommitPipeline::Options opts;
  opts.num_queues = 4;
  CommitPipeline pipeline(opts, mem.get(), stor.get());
  uint8_t payload[8] = {};
  std::vector<std::thread> producers;
  std::atomic<uint64_t> done{0};
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        Lsn lsns[2] = {mem->engine()->log()->Append(payload),
                       stor->engine()->log()->Append(payload)};
        auto w = std::make_shared<CommitWaiter>();
        pipeline.EnqueueAndWait(lsns, w, static_cast<size_t>(t));
        done.fetch_add(1);
      }
    });
  }
  for (auto& p : producers) p.join();
  EXPECT_EQ(done.load(), 200u);
}

// Stress: many waiter threads race the committer daemon's durable-LSN
// advances. Every EnqueueAndWait must return (no lost wakeup — a hang is
// caught by the suite timeout) and every enqueued entry must complete, in
// both pipelined and sync modes.
TEST_F(PipelineTest, StressManyWaitersAgainstDurableAdvances) {
  for (CommitPipeline::Mode mode :
       {CommitPipeline::Mode::kPipelined, CommitPipeline::Mode::kSync}) {
    auto mem = MakeMem(50);
    auto stor = MakeStor(50);
    CommitPipeline::Options opts;
    opts.mode = mode;
    opts.num_queues = 2;
    CommitPipeline pipeline(opts, mem.get(), stor.get());

    constexpr int kThreads = 16;
    constexpr int kTxnsEach = 150;
    std::atomic<uint64_t> done{0};
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        uint8_t payload[8] = {};
        for (int i = 0; i < kTxnsEach; ++i) {
          Lsn lsns[2] = {mem->engine()->log()->Append(payload),
                         stor->engine()->log()->Append(payload)};
          auto w = std::make_shared<CommitWaiter>();
          pipeline.EnqueueAndWait(lsns, w, static_cast<size_t>(t));
          EXPECT_TRUE(w->done());
          EXPECT_GE(mem->DurableLsn(), lsns[0]);
          EXPECT_GE(stor->DurableLsn(), lsns[1]);
          done.fetch_add(1);
        }
      });
    }
    for (auto& w : workers) w.join();
    EXPECT_EQ(done.load(), static_cast<uint64_t>(kThreads * kTxnsEach));
    EXPECT_EQ(pipeline.completed(),
              static_cast<uint64_t>(kThreads * kTxnsEach));

    {
      // MPSC handoff accounting: with every waiter returned, the queues are
      // fully drained, so the wait-free pushes plus the inline completions
      // must account for every completion — nothing lost, nothing doubled.
      CommitPipeline::Stats s = pipeline.stats();
      EXPECT_EQ(s.completed, s.enqueued + s.completed_inline)
          << "wait-free queue handoff lost or duplicated an entry";
      if (mode == CommitPipeline::Mode::kSync) {
        EXPECT_EQ(s.enqueued, 0u) << "sync mode must never touch the queues";
      }
    }

#if defined(__linux__)
    if (mode == CommitPipeline::Mode::kPipelined) {
      // The point of batching: completing a durable-LSN advance in one
      // pass issues (at most) one unpark per drain, so kernel wakeups must
      // come in strictly under one per completion. Spin successes and
      // inline completions push the ratio even lower.
      CommitPipeline::Stats s = pipeline.stats();
      EXPECT_LT(s.wake_syscalls, s.completed)
          << "batched completion should not wake once per transaction";
      EXPECT_GT(s.drain_batches, 0u);
      EXPECT_EQ(s.completed,
                s.waiter_spin_successes + s.waiter_parks)
          << "every wait resolves by spinning or parking exactly once";
    }
#endif
  }
}

TEST_F(PipelineTest, StatsAccountSpinAndParkOutcomes) {
  auto mem = MakeMem(0);  // manual flush: waits must park
  auto stor = MakeStor(0);
  CommitPipeline pipeline(CommitPipeline::Options{}, mem.get(), stor.get());
  uint8_t payload[8] = {};
  Lsn lsns[2] = {mem->engine()->log()->Append(payload),
                 stor->engine()->log()->Append(payload)};
  auto w = std::make_shared<CommitWaiter>();
  std::thread committer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ASSERT_TRUE(mem->FlushLog().ok());
    ASSERT_TRUE(stor->FlushLog().ok());
  });
  pipeline.EnqueueAndWait(lsns, w);
  committer.join();
  CommitPipeline::Stats s = pipeline.stats();
  EXPECT_EQ(s.completed, 1u);
  // The wait resolves in exactly one accounting bucket. (Which bucket is
  // scheduling-dependent: the 30 ms gate normally forces a park, but an
  // oversubscribed box can deschedule the waiter across the whole gate
  // and turn it into a spin success — don't assert the split.)
  EXPECT_EQ(s.waiter_parks + s.waiter_spin_successes, 1u);
}

TEST_F(PipelineTest, AlreadyDurableEntriesCompleteInlineWithoutWakeups) {
  auto mem = MakeMem(0);
  auto stor = MakeStor(0);
  CommitPipeline pipeline(CommitPipeline::Options{}, mem.get(), stor.get());
  uint8_t payload[8] = {};
  Lsn lsns[2] = {mem->engine()->log()->Append(payload),
                 stor->engine()->log()->Append(payload)};
  ASSERT_TRUE(mem->FlushLog().ok());
  ASSERT_TRUE(stor->FlushLog().ok());
  auto w = std::make_shared<CommitWaiter>();
  pipeline.EnqueueAndWait(lsns, w);
  CommitPipeline::Stats s = pipeline.stats();
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(s.wake_syscalls, 0u) << "covered LSNs must not touch the kernel";
  EXPECT_EQ(s.waiter_parks, 0u);
}

TEST_F(PipelineTest, DestructorDrainsPendingEntries) {
  auto mem = MakeMem(0);
  auto stor = MakeStor(0);
  auto waiter = std::make_shared<CommitWaiter>();
  waiter->Reset();
  uint8_t payload[8] = {};
  {
    CommitPipeline pipeline(CommitPipeline::Options{}, mem.get(), stor.get());
    Lsn lsns[2] = {mem->engine()->log()->Append(payload),
                   stor->engine()->log()->Append(payload)};
    pipeline.Enqueue(lsns, waiter);
    // Destroyed with the entry still gated on durability.
  }
  waiter->Wait();  // must have been completed (with a forced flush)
  SUCCEED();
}

}  // namespace
}  // namespace skeena
