#include "log/log_manager.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>
#include <vector>

#include "log/log_records.h"
#include "log/storage_device.h"

namespace skeena {
namespace {

std::span<const uint8_t> Bytes(const std::string& s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size()};
}

// ----------------------------------------------------------------- Devices

TEST(MemDeviceTest, AppendReadRoundTrip) {
  MemDevice dev;
  uint64_t off1 = 0, off2 = 0;
  ASSERT_TRUE(dev.Append(Bytes("hello"), &off1).ok());
  ASSERT_TRUE(dev.Append(Bytes("world!"), &off2).ok());
  EXPECT_EQ(off1, 0u);
  EXPECT_EQ(off2, 5u);
  EXPECT_EQ(dev.Size(), 11u);

  std::string out(6, '\0');
  ASSERT_TRUE(
      dev.ReadAt(5, {reinterpret_cast<uint8_t*>(out.data()), 6}).ok());
  EXPECT_EQ(out, "world!");
}

TEST(MemDeviceTest, WriteAtExtends) {
  MemDevice dev;
  ASSERT_TRUE(dev.WriteAt(100, Bytes("xyz")).ok());
  EXPECT_EQ(dev.Size(), 103u);
  // The hole reads as zeros.
  std::string out(3, 'q');
  ASSERT_TRUE(dev.ReadAt(0, {reinterpret_cast<uint8_t*>(out.data()), 3}).ok());
  EXPECT_EQ(out, std::string(3, '\0'));
}

TEST(MemDeviceTest, ReadPastEndFails) {
  MemDevice dev;
  uint64_t off;
  ASSERT_TRUE(dev.Append(Bytes("abc"), &off).ok());
  std::string out(10, '\0');
  EXPECT_FALSE(
      dev.ReadAt(0, {reinterpret_cast<uint8_t*>(out.data()), 10}).ok());
}

TEST(MemDeviceTest, TracksByteCounters) {
  MemDevice dev;
  uint64_t off;
  dev.Append(Bytes("12345678"), &off);
  std::string out(4, '\0');
  dev.ReadAt(0, {reinterpret_cast<uint8_t*>(out.data()), 4});
  EXPECT_EQ(dev.bytes_written(), 8u);
  EXPECT_EQ(dev.bytes_read(), 4u);
}

TEST(FileDeviceTest, PersistsAcrossReopen) {
  std::string path =
      (std::filesystem::temp_directory_path() / "skeena_dev_test.bin")
          .string();
  std::filesystem::remove(path);
  {
    auto dev = FileDevice::Open(path);
    ASSERT_TRUE(dev.ok());
    uint64_t off;
    ASSERT_TRUE((*dev)->Append(Bytes("durable"), &off).ok());
    ASSERT_TRUE((*dev)->Sync().ok());
  }
  {
    auto dev = FileDevice::Open(path);
    ASSERT_TRUE(dev.ok());
    EXPECT_EQ((*dev)->Size(), 7u);
    std::string out(7, '\0');
    ASSERT_TRUE(
        (*dev)->ReadAt(0, {reinterpret_cast<uint8_t*>(out.data()), 7}).ok());
    EXPECT_EQ(out, "durable");
  }
  std::filesystem::remove(path);
}

TEST(DeviceLatencyTest, InjectedLatencyIsCharged) {
  MemDevice slow(DeviceLatency{.read_ns = 200000, .write_ns = 0, .sync_ns = 0});
  uint64_t off;
  std::string payload(64, 'x');
  slow.Append(Bytes(payload), &off);
  std::string out(64, '\0');
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 10; ++i) {
    slow.ReadAt(0, {reinterpret_cast<uint8_t*>(out.data()), 64});
  }
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
                .count(),
            2000) << "10 reads at 200us each must take >= 2ms";
}

// -------------------------------------------------------------- LogManager

TEST(LogManagerTest, LsnsAreMonotoneByteOffsets) {
  LogManager log(std::make_unique<MemDevice>());
  Lsn a = log.Append(Bytes("aaaa"));
  Lsn b = log.Append(Bytes("bb"));
  EXPECT_GT(a, 0u);
  EXPECT_GT(b, a);
  EXPECT_EQ(log.CurrentLsn(), b);
}

TEST(LogManagerTest, DurableLsnAdvancesToCover) {
  LogManager log(std::make_unique<MemDevice>());
  Lsn lsn = log.Append(Bytes("record"));
  log.WaitDurable(lsn);
  EXPECT_GE(log.DurableLsn(), lsn);
}

TEST(LogManagerTest, FlushForcesDurability) {
  LogManager::Options opts;
  opts.flush_interval_us = 1000000;  // effectively never
  opts.flush_watermark = 1 << 30;
  LogManager log(std::make_unique<MemDevice>(), opts);
  Lsn lsn = log.Append(Bytes("x"));
  // No assertion on DurableLsn() before Flush(): the background flusher
  // may legitimately run a pass between Append and any check (observed
  // under TSan's scheduling), so "not yet durable" is unobservable here.
  ASSERT_TRUE(log.Flush().ok());
  EXPECT_GE(log.DurableLsn(), lsn);
}

TEST(LogManagerTest, GroupCommitBatchesConcurrentAppends) {
  LogManager log(std::make_unique<MemDevice>());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        Lsn lsn = log.Append(Bytes("record-payload"));
        log.WaitDurable(lsn);
      }
    });
  }
  for (auto& th : threads) th.join();
  // Group commit must aggregate many appends per device write.
  EXPECT_LT(log.flush_batches(), kThreads * kPerThread)
      << "every append got its own flush: group commit broken";
  EXPECT_GE(log.DurableLsn(), log.CurrentLsn());
}

TEST(LogManagerTest, ReaderSeesAllRecordsInOrder) {
  auto dev = std::make_unique<MemDevice>();
  MemDevice* raw = dev.get();
  LogManager log(std::move(dev));
  for (int i = 0; i < 100; ++i) {
    log.Append(Bytes("rec" + std::to_string(i)));
  }
  log.Flush();
  LogReader reader(raw);
  std::string rec;
  int i = 0;
  while (reader.Next(&rec)) {
    EXPECT_EQ(rec, "rec" + std::to_string(i));
    i++;
  }
  EXPECT_EQ(i, 100);
}

TEST(LogManagerTest, ReaderStopsAtTornTail) {
  auto dev = std::make_unique<MemDevice>();
  uint64_t off;
  // One valid frame, then a frame header promising more bytes than exist.
  std::string valid;
  uint32_t len = 3;
  valid.append(reinterpret_cast<const char*>(&len), 4);
  valid += "abc";
  uint32_t torn = 100;
  valid.append(reinterpret_cast<const char*>(&torn), 4);
  valid += "partial";
  dev->Append(Bytes(valid), &off);

  LogReader reader(dev.get());
  std::string rec;
  ASSERT_TRUE(reader.Next(&rec));
  EXPECT_EQ(rec, "abc");
  EXPECT_FALSE(reader.Next(&rec)) << "torn tail must end the scan";
}

// ------------------------------------------------------------- LogRecord

TEST(LogRecordTest, EncodeDecodeRoundTrip) {
  LogRecord rec;
  rec.type = LogRecordType::kData;
  rec.gtid = 0x12345678abcdefull;
  rec.cts = 999;
  rec.table = 42;
  rec.tombstone = true;
  rec.key = MakeKey(77);
  rec.value = std::string(300, 'v');

  LogRecord decoded;
  ASSERT_TRUE(LogRecord::Decode(rec.Encode(), &decoded));
  EXPECT_EQ(decoded.type, rec.type);
  EXPECT_EQ(decoded.gtid, rec.gtid);
  EXPECT_EQ(decoded.cts, rec.cts);
  EXPECT_EQ(decoded.table, rec.table);
  EXPECT_EQ(decoded.tombstone, rec.tombstone);
  EXPECT_EQ(decoded.key, rec.key);
  EXPECT_EQ(decoded.value, rec.value);
}

TEST(LogRecordTest, DecodeRejectsTruncated) {
  LogRecord rec;
  rec.value = "somevalue";
  std::string enc = rec.Encode();
  LogRecord out;
  EXPECT_TRUE(LogRecord::Decode(enc, &out));
  EXPECT_FALSE(LogRecord::Decode(std::string_view(enc).substr(0, 10), &out));
  EXPECT_FALSE(
      LogRecord::Decode(std::string_view(enc).substr(0, enc.size() - 1),
                        &out));
}

TEST(LogRecordTest, EmptyValueAllowed) {
  LogRecord rec;
  rec.type = LogRecordType::kCommitEnd;
  rec.gtid = 5;
  LogRecord out;
  ASSERT_TRUE(LogRecord::Decode(rec.Encode(), &out));
  EXPECT_EQ(out.type, LogRecordType::kCommitEnd);
  EXPECT_TRUE(out.value.empty());
}

}  // namespace
}  // namespace skeena
