#include "log/log_manager.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "log/log_records.h"
#include "log/segmented_device.h"
#include "log/storage_device.h"
#include "log/uring_queue.h"

namespace skeena {
namespace {

std::span<const uint8_t> Bytes(const std::string& s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size()};
}

// Encodes one log frame exactly as LogManager::Append lays it out.
std::string Frame(const std::string& payload) {
  uint32_t len = static_cast<uint32_t>(payload.size());
  uint32_t check = LogFrameCheck(Bytes(payload));
  std::string f;
  f.append(reinterpret_cast<const char*>(&len), sizeof(len));
  f.append(reinterpret_cast<const char*>(&check), sizeof(check));
  f += payload;
  return f;
}

// A fresh (removed) temp directory for segmented-device tests.
std::string FreshDir(const std::string& name) {
  auto p = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(p);
  return p.string();
}

// ----------------------------------------------------------------- Devices

TEST(MemDeviceTest, AppendReadRoundTrip) {
  MemDevice dev;
  uint64_t off1 = 0, off2 = 0;
  ASSERT_TRUE(dev.Append(Bytes("hello"), &off1).ok());
  ASSERT_TRUE(dev.Append(Bytes("world!"), &off2).ok());
  EXPECT_EQ(off1, 0u);
  EXPECT_EQ(off2, 5u);
  EXPECT_EQ(dev.Size(), 11u);

  std::string out(6, '\0');
  ASSERT_TRUE(
      dev.ReadAt(5, {reinterpret_cast<uint8_t*>(out.data()), 6}).ok());
  EXPECT_EQ(out, "world!");
}

TEST(MemDeviceTest, WriteAtExtends) {
  MemDevice dev;
  ASSERT_TRUE(dev.WriteAt(100, Bytes("xyz")).ok());
  EXPECT_EQ(dev.Size(), 103u);
  // The hole reads as zeros.
  std::string out(3, 'q');
  ASSERT_TRUE(dev.ReadAt(0, {reinterpret_cast<uint8_t*>(out.data()), 3}).ok());
  EXPECT_EQ(out, std::string(3, '\0'));
}

TEST(MemDeviceTest, ReadPastEndFails) {
  MemDevice dev;
  uint64_t off;
  ASSERT_TRUE(dev.Append(Bytes("abc"), &off).ok());
  std::string out(10, '\0');
  EXPECT_FALSE(
      dev.ReadAt(0, {reinterpret_cast<uint8_t*>(out.data()), 10}).ok());
}

TEST(MemDeviceTest, TracksByteCounters) {
  MemDevice dev;
  uint64_t off;
  dev.Append(Bytes("12345678"), &off);
  std::string out(4, '\0');
  dev.ReadAt(0, {reinterpret_cast<uint8_t*>(out.data()), 4});
  EXPECT_EQ(dev.bytes_written(), 8u);
  EXPECT_EQ(dev.bytes_read(), 4u);
}

TEST(FileDeviceTest, PersistsAcrossReopen) {
  std::string path =
      (std::filesystem::temp_directory_path() / "skeena_dev_test.bin")
          .string();
  std::filesystem::remove(path);
  {
    auto dev = FileDevice::Open(path);
    ASSERT_TRUE(dev.ok());
    uint64_t off;
    ASSERT_TRUE((*dev)->Append(Bytes("durable"), &off).ok());
    ASSERT_TRUE((*dev)->Sync().ok());
  }
  {
    auto dev = FileDevice::Open(path);
    ASSERT_TRUE(dev.ok());
    EXPECT_EQ((*dev)->Size(), 7u);
    std::string out(7, '\0');
    ASSERT_TRUE(
        (*dev)->ReadAt(0, {reinterpret_cast<uint8_t*>(out.data()), 7}).ok());
    EXPECT_EQ(out, "durable");
  }
  std::filesystem::remove(path);
}

// Raw-pwrite hook honoring the syscall contract but writing at most 3 bytes
// per call: every multi-byte write becomes a chain of short writes.
ssize_t ShortPwrite(int fd, const void* buf, size_t count, off_t off) {
  return ::pwrite(fd, buf, count > 3 ? 3 : count, off);
}

TEST(FileDeviceTest, ShortWritesAreRetriedToCompletion) {
  std::string path =
      (std::filesystem::temp_directory_path() / "skeena_shortwrite_test.bin")
          .string();
  std::filesystem::remove(path);
  auto dev = FileDevice::Open(path);
  ASSERT_TRUE(dev.ok());
  (*dev)->SetPwriteHookForTest(&ShortPwrite);

  const std::string payload = "short-writes-must-not-tear-this-record";
  uint64_t off = 0;
  ASSERT_TRUE((*dev)->Append(Bytes(payload), &off).ok());
  ASSERT_TRUE((*dev)->WriteAt(10, Bytes("OVERWRITE")).ok());
  (*dev)->SetPwriteHookForTest(nullptr);

  EXPECT_EQ((*dev)->Size(), payload.size());
  std::string out(payload.size(), '\0');
  ASSERT_TRUE(
      (*dev)
          ->ReadAt(0, {reinterpret_cast<uint8_t*>(out.data()), out.size()})
          .ok());
  std::string expect = payload;
  expect.replace(10, 9, "OVERWRITE");
  EXPECT_EQ(out, expect) << "short writes dropped or duplicated bytes";
  std::filesystem::remove(path);
}

TEST(DeviceLatencyTest, InjectedLatencyIsCharged) {
  MemDevice slow(DeviceLatency{.read_ns = 200000, .write_ns = 0, .sync_ns = 0});
  uint64_t off;
  std::string payload(64, 'x');
  slow.Append(Bytes(payload), &off);
  std::string out(64, '\0');
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 10; ++i) {
    slow.ReadAt(0, {reinterpret_cast<uint8_t*>(out.data()), 64});
  }
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
                .count(),
            2000) << "10 reads at 200us each must take >= 2ms";
}

// -------------------------------------------------------------- LogManager

TEST(LogManagerTest, LsnsAreMonotoneByteOffsets) {
  LogManager log(std::make_unique<MemDevice>());
  Lsn a = log.Append(Bytes("aaaa"));
  Lsn b = log.Append(Bytes("bb"));
  EXPECT_GT(a, 0u);
  EXPECT_GT(b, a);
  EXPECT_EQ(log.CurrentLsn(), b);
}

TEST(LogManagerTest, DurableLsnAdvancesToCover) {
  LogManager log(std::make_unique<MemDevice>());
  Lsn lsn = log.Append(Bytes("record"));
  log.WaitDurable(lsn);
  EXPECT_GE(log.DurableLsn(), lsn);
}

TEST(LogManagerTest, FlushForcesDurability) {
  LogManager::Options opts;
  opts.flush_interval_us = 1000000;  // effectively never
  opts.flush_watermark = 1 << 30;
  LogManager log(std::make_unique<MemDevice>(), opts);
  Lsn lsn = log.Append(Bytes("x"));
  // No assertion on DurableLsn() before Flush(): the background flusher
  // may legitimately run a pass between Append and any check (observed
  // under TSan's scheduling), so "not yet durable" is unobservable here.
  ASSERT_TRUE(log.Flush().ok());
  EXPECT_GE(log.DurableLsn(), lsn);
}

TEST(LogManagerTest, GroupCommitBatchesConcurrentAppends) {
  LogManager log(std::make_unique<MemDevice>());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        Lsn lsn = log.Append(Bytes("record-payload"));
        log.WaitDurable(lsn);
      }
    });
  }
  for (auto& th : threads) th.join();
  // Group commit must aggregate many appends per device write.
  EXPECT_LT(log.flush_batches(), kThreads * kPerThread)
      << "every append got its own flush: group commit broken";
  EXPECT_GE(log.DurableLsn(), log.CurrentLsn());
}

TEST(LogManagerTest, ReaderSeesAllRecordsInOrder) {
  auto dev = std::make_unique<MemDevice>();
  MemDevice* raw = dev.get();
  LogManager log(std::move(dev));
  for (int i = 0; i < 100; ++i) {
    log.Append(Bytes("rec" + std::to_string(i)));
  }
  log.Flush();
  LogReader reader(raw);
  std::string rec;
  int i = 0;
  while (reader.Next(&rec)) {
    EXPECT_EQ(rec, "rec" + std::to_string(i));
    i++;
  }
  EXPECT_EQ(i, 100);
}

TEST(LogManagerTest, ReaderStopsAtTornTail) {
  auto dev = std::make_unique<MemDevice>();
  uint64_t off;
  // One valid frame, then a frame header promising more bytes than exist.
  std::string bytes = Frame("abc");
  uint32_t torn_len = 100;
  uint32_t torn_check = LogFrameCheck(Bytes("partial"));
  bytes.append(reinterpret_cast<const char*>(&torn_len), 4);
  bytes.append(reinterpret_cast<const char*>(&torn_check), 4);
  bytes += "partial";
  dev->Append(Bytes(bytes), &off);

  LogReader reader(dev.get());
  std::string rec;
  ASSERT_TRUE(reader.Next(&rec));
  EXPECT_EQ(rec, "abc");
  EXPECT_FALSE(reader.Next(&rec)) << "torn tail must end the scan";
}

TEST(LogManagerTest, ReaderStopsAtCorruptFrameCheck) {
  auto dev = std::make_unique<MemDevice>();
  uint64_t off;
  // Second frame is fully present but its payload was torn mid-write: the
  // length/check header no longer matches the bytes that follow.
  std::string bytes = Frame("good-record");
  std::string bad = Frame("stale-bytes-from-a-torn-write");
  bad[bad.size() - 1] ^= 0x5a;
  bytes += bad;
  bytes += Frame("unreachable");
  dev->Append(Bytes(bytes), &off);

  LogReader reader(dev.get());
  std::string rec;
  ASSERT_TRUE(reader.Next(&rec));
  EXPECT_EQ(rec, "good-record");
  EXPECT_FALSE(reader.Next(&rec))
      << "a frame-check mismatch must end the scan, not skip ahead";
}

TEST(LogManagerTest, RingWrapStressConcurrentAppends) {
  // A 64 KiB ring forced through ~1.7 MB of appends: reservations wrap the
  // ring many times and appenders must park for space without ever letting
  // the flusher tear a frame.
  LogManager::Options opts;
  opts.buffer_bytes = 64 * 1024;
  opts.block_bytes = 4 * 1024;
  auto dev = std::make_unique<MemDevice>();
  MemDevice* raw = dev.get();
  LogManager log(std::move(dev), opts);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 4000;
  const std::string payload(100, 'w');
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      Lsn last = 0;
      for (int i = 0; i < kPerThread; ++i) {
        last = log.Append(Bytes(payload));
      }
      log.WaitDurable(last);
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_TRUE(log.Flush().ok());
  EXPECT_GE(log.DurableLsn(), log.CurrentLsn());

  LogReader reader(raw);
  std::string rec;
  int n = 0;
  while (reader.Next(&rec)) {
    EXPECT_EQ(rec.size(), payload.size());
    ++n;
  }
  EXPECT_EQ(n, kThreads * kPerThread);
}

TEST(LogManagerTest, FlushStopsAtOneRingLapWithAParkedAppender) {
  // Deterministic repro of a prefix-walk wrap bug: fill the ring EXACTLY to
  // capacity with one-block frames (all released), then park a 17th append
  // on the space eventcount. The flusher's completed-prefix walk reaches
  // `flushed + capacity`, where the block index wraps onto the block it
  // started from — whose release count is still the current lap's (it is
  // only retired after the device write). An unbounded walk reads that
  // stale count as proof the parked appender's claim is copied and ships
  // its uncopied bytes; the reader then finds a torn frame at exactly the
  // capacity boundary. The walk must stop at one lap instead.
  LogManager::Options opts;
  opts.buffer_bytes = 64 * 1024;
  opts.block_bytes = 4 * 1024;
  opts.auto_flush = false;  // only explicit Flush() runs the walk
  auto dev = std::make_unique<MemDevice>();
  MemDevice* raw = dev.get();
  LogManager log(std::move(dev), opts);

  // 16 frames of exactly one block each: reserved == capacity, flushed == 0.
  // Distinct payloads matter: the bug ships the ring's first block a second
  // time at the capacity offset, which is a VALID frame of the wrong record
  // — a count-only check would read 17 well-formed records and miss it.
  std::vector<std::string> payloads;
  for (int i = 0; i < 17; ++i) {
    payloads.emplace_back(4 * 1024 - kLogFrameHeaderSize,
                          static_cast<char>('a' + i));
  }
  for (int i = 0; i < 16; ++i) log.Append(Bytes(payloads[i]));
  ASSERT_EQ(log.CurrentLsn(), 64u * 1024);

  // The 17th append claims [capacity, capacity + 4K) and must park for
  // space before copying a byte.
  std::thread extra([&] { log.Append(Bytes(payloads[16])); });
  while (log.CurrentLsn() != 68u * 1024) CpuRelax();

  // Flush with the parked claim outstanding, then drain everything.
  ASSERT_TRUE(log.Flush().ok());
  extra.join();
  ASSERT_TRUE(log.Flush().ok());
  EXPECT_GE(log.DurableLsn(), 68u * 1024);

  LogReader reader(raw);
  std::string rec;
  int n = 0;
  while (reader.Next(&rec)) {
    ASSERT_LT(n, 17);
    EXPECT_EQ(rec, payloads[n]) << "record " << n << " torn or replaced by a "
                                   "stale lap of the ring";
    ++n;
  }
  EXPECT_EQ(n, 17) << "flush walk wrapped past the ring capacity and "
                      "shipped the parked appender's uncopied claim";
}

TEST(LogManagerTest, AdaptiveWindowGrowsUnderLoadThenCollapsesWhenIdle) {
  LogManager::Options opts;
  opts.flush_interval_us = 1;  // base window: easy to outrun
  opts.max_flush_interval_us = 1000;
  opts.flush_watermark = 1 << 30;  // never trip early; the window paces
  LogManager log(std::make_unique<MemDevice>(), opts);

  // Sustained burst: arrivals outpace the 1 us window, so the flusher must
  // find bytes already staged after a pass and widen the window.
  const std::string payload(64, 'a');
  const auto grow_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (log.stats().window_grows == 0 &&
         std::chrono::steady_clock::now() < grow_deadline) {
    for (int i = 0; i < 512; ++i) log.Append(Bytes(payload));
  }
  EXPECT_GT(log.stats().window_grows, 0u)
      << "a saturating burst must widen the group-commit window";
  ASSERT_TRUE(log.Flush().ok());

  // Idle: the flusher's idle timeout collapses the window back to base so a
  // later stray commit is not held for the wide window.
  const auto idle_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (log.stats().window_us != opts.flush_interval_us &&
         std::chrono::steady_clock::now() < idle_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(log.stats().window_us, opts.flush_interval_us);
  EXPECT_GT(log.stats().window_shrinks, 0u);
}

// ------------------------------------------------- SegmentedLogDevice

TEST(SegmentedDeviceTest, RecordsSplitAcrossSegmentBoundaries) {
  std::string dir = FreshDir("skeena_seg_split");
  SegmentedLogDevice::Options o;
  o.segment_bytes = 8 * 1024;
  const std::string payload(300, 'p');
  Lsn end = 0;
  {
    auto dev = SegmentedLogDevice::Open(dir, o);
    ASSERT_TRUE(dev.ok());
    SegmentedLogDevice* raw = dev->get();
    LogManager log(std::move(dev.value()));
    for (int i = 0; i < 120; ++i) {
      log.Append(Bytes(payload + std::to_string(i)));
    }
    ASSERT_TRUE(log.Flush().ok());
    end = log.CurrentLsn();
    // ~37 KB through 8 KiB segments: many records straddle an edge.
    EXPECT_GE(raw->segment_count(), 4u);
  }
  auto dev = SegmentedLogDevice::Open(dir, o);
  ASSERT_TRUE(dev.ok());
  EXPECT_GE((*dev)->Size(), end) << "reopen must cover all written bytes";
  LogReader reader(dev->get());
  std::string rec;
  int i = 0;
  while (reader.Next(&rec)) {
    EXPECT_EQ(rec, payload + std::to_string(i));
    ++i;
  }
  EXPECT_EQ(i, 120);
  EXPECT_EQ(reader.offset(), end)
      << "the preallocated zero tail must read as end-of-log";
  std::filesystem::remove_all(dir);
}

TEST(SegmentedDeviceTest, TornTailInLastSegmentRecovered) {
  std::string dir = FreshDir("skeena_seg_torn");
  SegmentedLogDevice::Options o;
  o.segment_bytes = 8 * 1024;
  Lsn end = 0;
  {
    auto dev = SegmentedLogDevice::Open(dir, o);
    ASSERT_TRUE(dev.ok());
    LogManager log(std::move(dev.value()));
    for (int i = 0; i < 40; ++i) {
      log.Append(Bytes("payload-" + std::to_string(i)));
    }
    ASSERT_TRUE(log.Flush().ok());
    end = log.CurrentLsn();
  }
  {
    // Crash mid-write: a plausible header lands after the durable prefix
    // but its payload never fully made it.
    auto dev = SegmentedLogDevice::Open(dir, o);
    ASSERT_TRUE(dev.ok());
    std::string torn;
    uint32_t len = 64;
    uint32_t check = 0xdeadbeef;
    torn.append(reinterpret_cast<const char*>(&len), 4);
    torn.append(reinterpret_cast<const char*>(&check), 4);
    torn += "only-part-of-the-payload";
    ASSERT_TRUE((*dev)->WriteAt(end, Bytes(torn)).ok());
    ASSERT_TRUE((*dev)->Sync().ok());
  }
  // Reopen: the tail scan must stop at the torn frame and resume appending
  // exactly there.
  auto dev = SegmentedLogDevice::Open(dir, o);
  ASSERT_TRUE(dev.ok());
  SegmentedLogDevice* raw = dev->get();
  LogManager log(std::move(dev.value()));
  EXPECT_EQ(log.CurrentLsn(), end);
  Lsn fresh = log.Append(Bytes("after-recovery"));
  log.WaitDurable(fresh);

  LogReader reader(raw);
  std::string rec;
  std::string last;
  int n = 0;
  while (reader.Next(&rec)) {
    last = rec;
    ++n;
  }
  EXPECT_EQ(n, 41) << "40 original records plus the post-recovery append";
  EXPECT_EQ(last, "after-recovery");
  std::filesystem::remove_all(dir);
}

TEST(SegmentedDeviceTest, CrashDuringSegmentRotationHeals) {
  std::string dir = FreshDir("skeena_seg_rotate");
  SegmentedLogDevice::Options o;
  o.segment_bytes = 8 * 1024;
  Lsn end = 0;
  {
    auto dev = SegmentedLogDevice::Open(dir, o);
    ASSERT_TRUE(dev.ok());
    LogManager log(std::move(dev.value()));
    const std::string payload(500, 'r');
    for (int i = 0; i < 20; ++i) log.Append(Bytes(payload));  // ~10 KB
    ASSERT_TRUE(log.Flush().ok());
    end = log.CurrentLsn();
  }
  {
    // A crash between creating the next segment file and preallocating it
    // leaves a short segment behind.
    std::ofstream f(dir + "/wal.00000002.seg", std::ios::binary);
    f << "xx";
  }
  auto dev = SegmentedLogDevice::Open(dir, o);
  ASSERT_TRUE(dev.ok());
  EXPECT_EQ((*dev)->segment_count(), 3u);
  EXPECT_EQ((*dev)->Size(), 3 * o.segment_bytes)
      << "reopen must re-preallocate the short segment";
  LogManager log(std::move(dev.value()));
  EXPECT_EQ(log.CurrentLsn(), end);
  Lsn fresh = log.Append(Bytes("post-rotation"));
  log.WaitDurable(fresh);
  EXPECT_GE(log.DurableLsn(), fresh);
  std::filesystem::remove_all(dir);
}

TEST(SegmentedDeviceTest, TruncateDropsLaterSegmentsAndRezerosTail) {
  std::string dir = FreshDir("skeena_seg_trunc");
  SegmentedLogDevice::Options o;
  o.segment_bytes = 8 * 1024;
  auto opened = SegmentedLogDevice::Open(dir, o);
  ASSERT_TRUE(opened.ok());
  auto dev = std::move(opened.value());

  const std::string blob(20000, 'a');  // spans 3 segments
  ASSERT_TRUE(dev->WriteAt(0, Bytes(blob)).ok());
  EXPECT_EQ(dev->segment_count(), 3u);

  const uint64_t keep = 4096 + 50;
  ASSERT_TRUE(dev->Truncate(keep).ok());
  EXPECT_EQ(dev->segment_count(), 1u);
  EXPECT_EQ(dev->Size(), keep);

  // The kept prefix survives; the tail beyond it reads as zeros again even
  // though 'a' bytes were there before the truncate.
  std::string head(keep, '\0');
  ASSERT_TRUE(
      dev->ReadAt(0, {reinterpret_cast<uint8_t*>(head.data()), head.size()})
          .ok());
  EXPECT_EQ(head, blob.substr(0, keep));
  std::string tail(64, 'q');
  ASSERT_TRUE(
      dev->ReadAt(keep, {reinterpret_cast<uint8_t*>(tail.data()), tail.size()})
          .ok());
  EXPECT_EQ(tail, std::string(64, '\0'))
      << "stale pre-truncate bytes must not resurface as log frames";

  // The device keeps working past a truncate.
  ASSERT_TRUE(dev->WriteAt(keep, Bytes("again")).ok());
  std::string out(5, '\0');
  ASSERT_TRUE(
      dev->ReadAt(keep, {reinterpret_cast<uint8_t*>(out.data()), 5}).ok());
  EXPECT_EQ(out, "again");
  dev.reset();
  std::filesystem::remove_all(dir);
}

TEST(SegmentedDeviceTest, UringBackendRoundTrips) {
  if (!UringQueue::Supported()) {
    GTEST_SKIP() << "io_uring not available (kernel or build)";
  }
  std::string dir = FreshDir("skeena_seg_uring");
  SegmentedLogDevice::Options o;
  o.segment_bytes = 8 * 1024;
  o.use_io_uring = true;
  Lsn end = 0;
  {
    auto dev = SegmentedLogDevice::Open(dir, o);
    ASSERT_TRUE(dev.ok());
    ASSERT_TRUE((*dev)->using_io_uring());
    LogManager log(std::move(dev.value()));
    for (int i = 0; i < 200; ++i) {
      Lsn lsn = log.Append(Bytes("uring-rec-" + std::to_string(i)));
      if (i % 32 == 0) log.WaitDurable(lsn);
    }
    ASSERT_TRUE(log.Flush().ok());
    end = log.CurrentLsn();
  }
  // Read back through the plain pread path: ring-written bytes are just
  // bytes on disk.
  SegmentedLogDevice::Options plain;
  plain.segment_bytes = o.segment_bytes;
  auto dev = SegmentedLogDevice::Open(dir, plain);
  ASSERT_TRUE(dev.ok());
  LogReader reader(dev->get());
  std::string rec;
  int n = 0;
  while (reader.Next(&rec)) {
    EXPECT_EQ(rec, "uring-rec-" + std::to_string(n));
    ++n;
  }
  EXPECT_EQ(n, 200);
  EXPECT_EQ(reader.offset(), end);
  std::filesystem::remove_all(dir);
}

TEST(SegmentedDeviceTest, DirectIoRequestRoundTripsEvenWhenUnsupported) {
  // tmpfs rejects O_DIRECT, so this usually exercises the silent-fallback
  // path; on filesystems that accept it, it exercises the aligned
  // tail-block-rewrite path. Either way the bytes must round-trip.
  std::string dir = FreshDir("skeena_seg_direct");
  SegmentedLogDevice::Options o;
  o.segment_bytes = 8 * 1024;
  o.use_direct_io = true;
  Lsn end = 0;
  {
    auto dev = SegmentedLogDevice::Open(dir, o);
    ASSERT_TRUE(dev.ok());
    LogManager log(std::move(dev.value()));
    for (int i = 0; i < 150; ++i) {
      log.Append(Bytes("direct-rec-" + std::to_string(i)));
    }
    ASSERT_TRUE(log.Flush().ok());
    end = log.CurrentLsn();
  }
  auto dev = SegmentedLogDevice::Open(dir, o);
  ASSERT_TRUE(dev.ok());
  LogReader reader(dev->get());
  std::string rec;
  int n = 0;
  while (reader.Next(&rec)) {
    EXPECT_EQ(rec, "direct-rec-" + std::to_string(n));
    ++n;
  }
  EXPECT_EQ(n, 150);
  EXPECT_EQ(reader.offset(), end);
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------------------- LogRecord

TEST(LogRecordTest, EncodeDecodeRoundTrip) {
  LogRecord rec;
  rec.type = LogRecordType::kData;
  rec.gtid = 0x12345678abcdefull;
  rec.cts = 999;
  rec.table = 42;
  rec.tombstone = true;
  rec.key = MakeKey(77);
  rec.value = std::string(300, 'v');

  LogRecord decoded;
  ASSERT_TRUE(LogRecord::Decode(rec.Encode(), &decoded));
  EXPECT_EQ(decoded.type, rec.type);
  EXPECT_EQ(decoded.gtid, rec.gtid);
  EXPECT_EQ(decoded.cts, rec.cts);
  EXPECT_EQ(decoded.table, rec.table);
  EXPECT_EQ(decoded.tombstone, rec.tombstone);
  EXPECT_EQ(decoded.key, rec.key);
  EXPECT_EQ(decoded.value, rec.value);
}

TEST(LogRecordTest, DecodeRejectsTruncated) {
  LogRecord rec;
  rec.value = "somevalue";
  std::string enc = rec.Encode();
  LogRecord out;
  EXPECT_TRUE(LogRecord::Decode(enc, &out));
  EXPECT_FALSE(LogRecord::Decode(std::string_view(enc).substr(0, 10), &out));
  EXPECT_FALSE(
      LogRecord::Decode(std::string_view(enc).substr(0, enc.size() - 1),
                        &out));
}

TEST(LogRecordTest, EmptyValueAllowed) {
  LogRecord rec;
  rec.type = LogRecordType::kCommitEnd;
  rec.gtid = 5;
  LogRecord out;
  ASSERT_TRUE(LogRecord::Decode(rec.Encode(), &out));
  EXPECT_EQ(out.type, LogRecordType::kCommitEnd);
  EXPECT_TRUE(out.value.empty());
}

}  // namespace
}  // namespace skeena
