// The checker checked: synthetic known-bad histories must be flagged, the
// recorder round-trips a real workload cleanly, and — the mutation test —
// weakening the Algorithm 2 commit gate must produce a real skewed
// execution the checker catches. The last one proves the oracle is not
// vacuous: if the gate's aborts were doing nothing, this suite would say
// so.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <thread>

#include "core/history.h"
#include "core/skeena.h"
#include "support/db_fixtures.h"

namespace skeena {
namespace {

constexpr TableId kTable = 1;

TxnHistory MakeTxn(GlobalTxnId gtid, uint64_t session, uint64_t seq,
                   TxnHistory::Outcome outcome) {
  TxnHistory t;
  t.gtid = gtid;
  t.session = session;
  t.seq = seq;
  t.outcome = outcome;
  return t;
}

HistOp PutOp(int e, uint64_t key, const std::string& v, Timestamp snap) {
  HistOp op;
  op.kind = HistOpKind::kPut;
  op.engine = static_cast<uint8_t>(e);
  op.table = kTable;
  op.key = MakeKey(key);
  op.value = v;
  op.snapshot = snap;
  return op;
}

HistOp GetOp(int e, uint64_t key, const std::optional<std::string>& v,
             Timestamp snap) {
  HistOp op;
  op.kind = HistOpKind::kGet;
  op.engine = static_cast<uint8_t>(e);
  op.table = kTable;
  op.key = MakeKey(key);
  op.found = v.has_value();
  if (v) op.value = *v;
  op.snapshot = snap;
  return op;
}

/// Committed single-engine writer: key := v at commit timestamp cts, begun
/// at snapshot `snap`.
TxnHistory Writer(GlobalTxnId gtid, int e, uint64_t key,
                  const std::string& v, Timestamp snap, Timestamp cts) {
  TxnHistory t = MakeTxn(gtid, gtid, 1, TxnHistory::Outcome::kCommitted);
  t.used[e] = t.wrote[e] = true;
  t.begin[e] = snap;
  t.commit[e] = cts;
  if (e == 0) t.anchor_snap = snap;
  t.ops.push_back(PutOp(e, key, v, snap));
  return t;
}

/// Committed cross-engine writer with commit pair (ca, co).
TxnHistory CrossWriter(GlobalTxnId gtid, uint64_t key, const std::string& v,
                       Timestamp sa, Timestamp so, Timestamp ca,
                       Timestamp co) {
  TxnHistory t = MakeTxn(gtid, gtid, 1, TxnHistory::Outcome::kCommitted);
  t.anchor_snap = sa;
  for (int e = 0; e < kNumEngines; ++e) {
    t.used[e] = t.wrote[e] = true;
  }
  t.begin[0] = sa;
  t.begin[1] = so;
  t.commit[0] = ca;
  t.commit[1] = co;
  t.snap_pairs.emplace_back(sa, so);
  t.ops.push_back(PutOp(0, key, v + "-m", sa));
  t.ops.push_back(PutOp(1, key, v + "-s", so));
  return t;
}

/// Committed reader observing `v` (nullopt = absent) in engine e.
TxnHistory Reader(GlobalTxnId gtid, int e, uint64_t key,
                  const std::optional<std::string>& v, Timestamp snap) {
  TxnHistory t = MakeTxn(gtid, gtid, 1, TxnHistory::Outcome::kCommitted);
  t.used[e] = true;
  t.begin[e] = snap;
  if (e == 0) t.anchor_snap = snap;
  t.ops.push_back(GetOp(e, key, v, snap));
  return t;
}

bool Flagged(const SiReport& report, SiViolation::Kind kind) {
  for (const auto& v : report.violations) {
    if (v.kind == kind) return true;
  }
  return false;
}

SiReport Check(const std::vector<TxnHistory>& history) {
  return CheckSnapshotIsolation(history, SiCheckOptions{});
}

// ---------------------------------------------------- synthetic histories

TEST(SiCheckerTest, CleanHistoryPasses) {
  std::vector<TxnHistory> h;
  h.push_back(Writer(1, 0, 1, "a", 4, 5));
  h.push_back(Writer(2, 0, 1, "b", 7, 8));
  h.push_back(Reader(3, 0, 1, "a", 6));
  h.push_back(Reader(4, 0, 1, "b", 8));
  h.push_back(Reader(5, 0, 1, std::nullopt, 3));
  SiReport r = Check(h);
  EXPECT_TRUE(r.ok()) << r.Summary();
  EXPECT_EQ(r.txns, 5u);
  EXPECT_EQ(r.reads, 3u);
  EXPECT_EQ(r.writes, 2u);
}

TEST(SiCheckerTest, StaleReadFlagged) {
  // Snapshot 9 covers the cts=8 version but the reader saw the cts=5 one:
  // a non-monotone snapshot.
  std::vector<TxnHistory> h;
  h.push_back(Writer(1, 0, 1, "a", 4, 5));
  h.push_back(Writer(2, 0, 1, "b", 7, 8));
  h.push_back(Reader(3, 0, 1, "a", 9));
  SiReport r = Check(h);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(Flagged(r, SiViolation::Kind::kStaleRead)) << r.Summary();
}

TEST(SiCheckerTest, FutureReadFlagged) {
  std::vector<TxnHistory> h;
  h.push_back(Writer(1, 0, 1, "a", 4, 5));
  h.push_back(Writer(2, 0, 1, "b", 7, 8));
  h.push_back(Reader(3, 0, 1, "b", 6));  // sees cts=8 from snapshot 6
  SiReport r = Check(h);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(Flagged(r, SiViolation::Kind::kFutureRead)) << r.Summary();
}

TEST(SiCheckerTest, MissedVisibleVersionFlagged) {
  std::vector<TxnHistory> h;
  h.push_back(Writer(1, 0, 1, "a", 4, 5));
  h.push_back(Reader(2, 0, 1, std::nullopt, 6));  // "a" is visible
  SiReport r = Check(h);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(Flagged(r, SiViolation::Kind::kStaleRead)) << r.Summary();
}

TEST(SiCheckerTest, DirtyReadOfAbortedWriteFlagged) {
  std::vector<TxnHistory> h;
  TxnHistory aborted = Writer(1, 0, 1, "ghost", 4, 0);
  aborted.outcome = TxnHistory::Outcome::kAborted;
  aborted.commit[0] = 0;
  h.push_back(std::move(aborted));
  h.push_back(Reader(2, 0, 1, "ghost", 6));
  SiReport r = Check(h);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(Flagged(r, SiViolation::Kind::kDirtyRead)) << r.Summary();
}

TEST(SiCheckerTest, LostUpdateFlagged) {
  // T2 commits over T1's version from a snapshot that predates it:
  // first-committer-wins violated.
  std::vector<TxnHistory> h;
  h.push_back(Writer(1, 0, 1, "a", 4, 5));
  h.push_back(Writer(2, 0, 1, "b", 3, 8));  // snap 3 < T1's cts 5
  SiReport r = Check(h);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(Flagged(r, SiViolation::Kind::kLostUpdate)) << r.Summary();
}

TEST(SiCheckerTest, LostUpdateExemptAtReadCommitted) {
  std::vector<TxnHistory> h;
  h.push_back(Writer(1, 0, 1, "a", 4, 5));
  TxnHistory rc = Writer(2, 0, 1, "b", 3, 8);
  rc.iso = IsolationLevel::kReadCommitted;
  h.push_back(std::move(rc));
  EXPECT_TRUE(Check(h).ok());
}

TEST(SiCheckerTest, ReadYourWritesFlagged) {
  std::vector<TxnHistory> h;
  TxnHistory t = MakeTxn(1, 1, 1, TxnHistory::Outcome::kCommitted);
  t.used[0] = t.wrote[0] = true;
  t.begin[0] = 4;
  t.commit[0] = 9;
  t.anchor_snap = 4;
  t.ops.push_back(PutOp(0, 1, "mine", 4));
  t.ops.push_back(GetOp(0, 1, std::string("other"), 4));
  h.push_back(std::move(t));
  SiReport r = Check(h);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(Flagged(r, SiViolation::Kind::kReadYourWrites)) << r.Summary();
}

TEST(SiCheckerTest, TornCrossPairFlagged) {
  // Writer committed (ca=10, co=20); a snapshot pair (10, 19) sees its
  // anchor half (inclusive visibility) but not its other half.
  std::vector<TxnHistory> h;
  h.push_back(CrossWriter(1, 1, "w", 5, 6, 10, 20));
  TxnHistory r = MakeTxn(2, 2, 1, TxnHistory::Outcome::kCommitted);
  r.anchor_snap = 10;
  r.used[0] = r.used[1] = true;
  r.begin[0] = 10;
  r.begin[1] = 19;
  r.snap_pairs.emplace_back(10, 19);
  h.push_back(std::move(r));
  SiReport rep = Check(h);
  ASSERT_FALSE(rep.ok());
  EXPECT_TRUE(Flagged(rep, SiViolation::Kind::kCrossSkew)) << rep.Summary();
}

TEST(SiCheckerTest, WellNestedCrossPairsPass) {
  std::vector<TxnHistory> h;
  h.push_back(CrossWriter(1, 1, "w1", 5, 6, 10, 20));
  h.push_back(CrossWriter(2, 2, "w2", 11, 21, 14, 25));
  TxnHistory r = MakeTxn(3, 3, 1, TxnHistory::Outcome::kCommitted);
  r.anchor_snap = 12;
  r.used[0] = r.used[1] = true;
  r.begin[0] = 12;
  r.begin[1] = 22;
  r.snap_pairs.emplace_back(12, 22);  // covers w1 fully, excludes w2 fully
  h.push_back(std::move(r));
  SiReport rep = Check(h);
  EXPECT_TRUE(rep.ok()) << rep.Summary();
  EXPECT_EQ(rep.pairs, 2u);
}

TEST(SiCheckerTest, InvertedCommitPairsFlagged) {
  std::vector<TxnHistory> h;
  h.push_back(CrossWriter(1, 1, "w1", 5, 6, 10, 20));
  h.push_back(CrossWriter(2, 2, "w2", 5, 6, 12, 18));  // later anchor, earlier other
  SiReport r = Check(h);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(Flagged(r, SiViolation::Kind::kPairInversion)) << r.Summary();
}

TEST(SiCheckerTest, CsrContainmentFlagged) {
  std::vector<TxnHistory> h;
  h.push_back(CrossWriter(1, 1, "w", 5, 6, 10, 20));
  SiCheckOptions opts;
  opts.have_csr_dump = true;
  // Published mappings know nothing of the committed (10, 20) pair.
  opts.csr_mappings.push_back({8, 15, 15});
  SiReport r = CheckSnapshotIsolation(h, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(Flagged(r, SiViolation::Kind::kCsrMismatch)) << r.Summary();

  // With the pair inside a published interval the history is clean.
  opts.csr_mappings.push_back({10, 18, 22});
  EXPECT_TRUE(CheckSnapshotIsolation(h, opts).ok());
}

TEST(SiCheckerTest, SessionOrderFlagged) {
  std::vector<TxnHistory> h;
  TxnHistory first = Writer(1, 0, 1, "a", 4, 9);
  first.session = 7;
  first.seq = 1;
  TxnHistory second = Reader(2, 0, 1, std::nullopt, 5);  // began before 9
  second.session = 7;
  second.seq = 2;
  h.push_back(std::move(first));
  h.push_back(std::move(second));
  SiReport r = Check(h);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(Flagged(r, SiViolation::Kind::kSessionOrder)) << r.Summary();
}

// ------------------------------------------------------- recovery audits

TEST(SiCheckerTest, RecoveredStateCleanPasses) {
  std::vector<TxnHistory> h;
  h.push_back(Writer(1, 0, 1, "a", 4, 5));
  h.push_back(Writer(2, 0, 1, "b", 6, 8));
  FinalStateRows rows[kNumEngines];
  rows[0][{kTable, MakeKey(1)}] = "b";
  EXPECT_TRUE(CheckRecoveredState(h, rows, SiCheckOptions{}).ok());
}

TEST(SiCheckerTest, AcknowledgedWriteLostFlagged) {
  std::vector<TxnHistory> h;
  h.push_back(Writer(1, 0, 1, "a", 4, 5));
  h.push_back(Writer(2, 0, 1, "b", 6, 8));  // acked, but "a" recovered
  FinalStateRows rows[kNumEngines];
  rows[0][{kTable, MakeKey(1)}] = "a";
  SiReport r = CheckRecoveredState(h, rows, SiCheckOptions{});
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(Flagged(r, SiViolation::Kind::kDurabilityLost)) << r.Summary();
}

TEST(SiCheckerTest, CorruptRecoveredValueFlagged) {
  std::vector<TxnHistory> h;
  h.push_back(Writer(1, 0, 1, "a", 4, 5));
  FinalStateRows rows[kNumEngines];
  rows[0][{kTable, MakeKey(1)}] = "garbage";
  SiReport r = CheckRecoveredState(h, rows, SiCheckOptions{});
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(Flagged(r, SiViolation::Kind::kCorruptState)) << r.Summary();
}

TEST(SiCheckerTest, TornRecoveryFlagged) {
  // Unacked cross-engine writer: its mem half survived recovery, its stor
  // half provably rolled back — all-or-nothing violated.
  std::vector<TxnHistory> h;
  TxnHistory w = CrossWriter(1, 1, "w", 5, 6, 10, 20);
  w.outcome = TxnHistory::Outcome::kUnacked;
  h.push_back(std::move(w));
  FinalStateRows rows[kNumEngines];
  rows[0][{kTable, MakeKey(1)}] = "w-m";  // survived
  // stor side: key absent -> provably not applied
  SiReport r = CheckRecoveredState(h, rows, SiCheckOptions{});
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(Flagged(r, SiViolation::Kind::kTornRecovery)) << r.Summary();
}

TEST(SiCheckerTest, UnackedTxnMayVanishEntirely) {
  std::vector<TxnHistory> h;
  TxnHistory w = CrossWriter(1, 1, "w", 5, 6, 10, 20);
  w.outcome = TxnHistory::Outcome::kUnacked;
  h.push_back(std::move(w));
  FinalStateRows rows[kNumEngines];  // both halves rolled back: fine
  EXPECT_TRUE(CheckRecoveredState(h, rows, SiCheckOptions{}).ok());
}

// ----------------------------------------------- recorder round-trip

TEST(SiCheckerTest, RecorderRoundTripsRealWorkload) {
  DatabaseOptions opts = test::FastOptions();
  opts.record_history = true;
  Database db(opts);
  auto mem_t = *db.CreateTable("m", EngineKind::kMem);
  auto stor_t = *db.CreateTable("s", EngineKind::kStor);
  ASSERT_NE(db.recorder(), nullptr);

  int committed = 0;
  for (int i = 0; i < 50; ++i) {
    auto txn = db.Begin();
    uint64_t k = static_cast<uint64_t>(i % 5);
    std::string v = "v" + std::to_string(i);
    ASSERT_TRUE(txn->Put(mem_t, MakeKey(k), v).ok());
    ASSERT_TRUE(txn->Put(stor_t, MakeKey(k), v).ok());
    std::string got;
    ASSERT_TRUE(txn->Get(mem_t, MakeKey(k), &got).ok());
    EXPECT_EQ(got, v);
    if (txn->Commit().ok()) ++committed;
  }
  {
    auto reader = db.Begin();
    std::string got;
    ASSERT_TRUE(reader->Get(mem_t, MakeKey(0), &got).ok());
    ASSERT_TRUE(reader->Get(stor_t, MakeKey(0), &got).ok());
    ASSERT_TRUE(reader->Commit().ok());
  }

  auto history = db.recorder()->Fold();
  EXPECT_EQ(history.size(), static_cast<size_t>(51));
  SiCheckOptions check;
  check.anchor_index = db.anchor_index();
  check.have_csr_dump = true;
  Timestamp floor = 0;
  for (const auto& m : db.csr().DumpMappings(&floor)) {
    check.csr_mappings.push_back({m.key, m.vmin, m.vmax});
  }
  check.csr_floor = floor;
  SiReport report = CheckSnapshotIsolation(history, check);
  EXPECT_TRUE(report.ok()) << report.Summary() << "\n"
                           << DumpHistory(history);
  EXPECT_EQ(static_cast<int>(report.pairs), committed);
  // Folding drained the shards.
  EXPECT_EQ(db.recorder()->Size(), 0u);
}

TEST(SiCheckerTest, RecorderOffByDefault) {
  Database db(test::FastOptions());
  EXPECT_EQ(db.recorder(), nullptr);
}

// ---------------------------------------------------------- mutation test
//
// Weakens the Algorithm 2 commit gate and replays the Figure 2(b)
// interleaving the gate exists to kill:
//
//   1. R takes its anchor snapshot sa and reads mem (sees pre-W state).
//   2. W pre-commits in both engines (anchor cts ca > sa; stor ser co).
//   3. R crosses into stordb: with no usable CSR candidate its selection
//      falls back to the latest stor snapshot, which already includes co.
//      R's read then waits on W's pre-committed row.
//   4. W runs the CSR commit check. R's mapping (sa -> v >= co) at an
//      earlier anchor position makes the low bound fail: with the gate ON
//      W must abort (R then reads pre-W state — consistent). With the gate
//      weakened W commits and R observes W's stor half but not its mem
//      half: skew the checker must flag.

struct MutationResult {
  Status gate;                       // CommitCheck outcome for W
  Status stor_read;                  // R's stordb read outcome
  std::string stor_value;
  SiReport report;
};

MutationResult RunWeakenedGateSchedule(bool weaken) {
  DatabaseOptions opts = test::FastOptions();
  opts.record_history = true;
  Database db(opts);
  auto mem_t = *db.CreateTable("m", EngineKind::kMem);
  auto stor_t = *db.CreateTable("s", EngineKind::kStor);
  db.csr().TestOnlyWeakenCommitGate(weaken);

  // Seed only the mem side (an anchor-only commit leaves the CSR empty, so
  // R's selection below must take the latest-snapshot fallback).
  {
    auto seed = db.Begin();
    EXPECT_TRUE(seed->Put(mem_t, MakeKey(1), "m0").ok());
    EXPECT_TRUE(seed->Commit().ok());
  }

  std::mutex mu;
  std::condition_variable cv;
  int step = 0;  // 1: R holds sa + mem read; 2: W pre-committed
  auto advance = [&](int s) {
    std::lock_guard<std::mutex> lk(mu);
    step = s;
    cv.notify_all();
  };
  auto wait_for = [&](int s) {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return step >= s; });
  };

  MutationResult result;
  std::thread reader([&] {
    auto r = db.Begin(IsolationLevel::kSnapshot);
    std::string v;
    EXPECT_TRUE(r->Get(mem_t, MakeKey(1), &v).ok());
    EXPECT_EQ(v, "m0");
    advance(1);
    wait_for(2);
    // Crossing into stordb: selection + the read that parks on W's
    // pre-committed row until W's fate is decided.
    result.stor_read = r->Get(stor_t, MakeKey(1), &result.stor_value);
    r->Abort();  // outcome of R itself is not under test
  });

  wait_for(1);
  // W, driven manually so the schedule can interleave R between its
  // pre-commit and its commit check (same idiom as recovery_test).
  EngineIface* mem = db.engine(0);
  EngineIface* stor = db.engine(1);
  GlobalTxnId gtid = db.NextGtid();
  Timestamp w_mem_begin = mem->LatestSnapshot();
  Timestamp w_stor_begin = stor->LatestSnapshot();
  auto t_mem = mem->Begin(IsolationLevel::kSnapshot, kMaxTimestamp);
  auto t_stor = stor->Begin(IsolationLevel::kSnapshot, kMaxTimestamp);
  EXPECT_TRUE(mem->Put(t_mem.get(), mem_t.local_id, MakeKey(1), "m1").ok());
  EXPECT_TRUE(
      stor->Put(t_stor.get(), stor_t.local_id, MakeKey(1), "s1").ok());
  Timestamp ca = 0, co = 0;
  EXPECT_TRUE(mem->PreCommit(t_mem.get(), gtid, true, &ca).ok());
  EXPECT_TRUE(stor->PreCommit(t_stor.get(), gtid, true, &co).ok());
  advance(2);
  // Wait until R's crossing installed its CSR mapping (lock-free count).
  while (db.csr().EntryCount() == 0) {
    std::this_thread::yield();
  }
  result.gate = db.csr().CommitCheck(ca, co, /*anchor_engine_wrote=*/true,
                                     /*other_engine_wrote=*/true);
  TxnHistory w;
  w.gtid = gtid;
  w.session = 999;
  w.seq = 1;
  w.anchor_snap = w_mem_begin;
  w.used[0] = w.used[1] = w.wrote[0] = w.wrote[1] = true;
  w.begin[0] = w_mem_begin;
  w.begin[1] = w_stor_begin;
  HistOp p0 = PutOp(0, 1, "m1", w_mem_begin);
  HistOp p1 = PutOp(1, 1, "s1", w_stor_begin);
  p0.table = mem_t.local_id;
  p1.table = stor_t.local_id;
  w.ops.push_back(std::move(p0));
  w.ops.push_back(std::move(p1));
  if (result.gate.ok()) {
    mem->PostCommit(t_mem.get(), gtid, true);
    stor->PostCommit(t_stor.get(), gtid, true);
    w.outcome = TxnHistory::Outcome::kCommitted;
    w.commit[0] = ca;
    w.commit[1] = co;
    w.post_committed[0] = w.post_committed[1] = true;
  } else {
    mem->Abort(t_mem.get());
    stor->Abort(t_stor.get());
    w.outcome = TxnHistory::Outcome::kAborted;
  }
  db.recorder()->Record(std::make_unique<TxnHistory>(w));
  reader.join();

  auto history = db.recorder()->Fold();
  SiCheckOptions check;
  check.anchor_index = db.anchor_index();
  result.report = CheckSnapshotIsolation(history, check);
  return result;
}

TEST(SiCheckerTest, CommitGateKillsFigure2bSkew) {
  MutationResult r = RunWeakenedGateSchedule(/*weaken=*/false);
  // The gate must reject W: R's crossing registered an other-engine view
  // at an earlier anchor position that already covers W's stor commit.
  EXPECT_FALSE(r.gate.ok()) << "commit gate failed to abort the skew";
  EXPECT_TRUE(r.stor_read.IsNotFound())
      << "R must see pre-W stordb state, got " << r.stor_value;
  EXPECT_TRUE(r.report.ok()) << r.report.Summary();
}

TEST(SiCheckerTest, WeakenedCommitGateCaughtByChecker) {
  MutationResult r = RunWeakenedGateSchedule(/*weaken=*/true);
  ASSERT_TRUE(r.gate.ok()) << "weakened gate must admit the commit";
  // The skew really happened: R saw W's stor half...
  ASSERT_TRUE(r.stor_read.ok());
  EXPECT_EQ(r.stor_value, "s1");
  // ...and the checker flags it.
  ASSERT_FALSE(r.report.ok())
      << "checker missed the skew the weakened gate let through";
  EXPECT_TRUE(Flagged(r.report, SiViolation::Kind::kCrossSkew))
      << r.report.Summary();
}

}  // namespace
}  // namespace skeena
