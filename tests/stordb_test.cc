#include "stordb/stor_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/random.h"
#include "stordb/buffer_pool.h"
#include "stordb/lock_manager.h"
#include "stordb/page.h"

namespace skeena::stordb {
namespace {

// -------------------------------------------------------------- Page layout

TEST(PageTest, RidPacksAndUnpacks) {
  Rid rid = MakeRid(513, 0xabcdef01, 777);
  EXPECT_EQ(RidTable(rid), 513u);
  EXPECT_EQ(RidPage(rid), 0xabcdef01u);
  EXPECT_EQ(RidSlot(rid), 777u);
}

TEST(PageTest, RowHeaderRoundTrip) {
  uint8_t slot[512] = {};
  RowHeader hdr;
  hdr.flags = RowHeader::kFlagInUse | RowHeader::kFlagDeleted;
  hdr.tid = 42;
  hdr.roll_ptr = 0xdeadbeef;
  hdr.vlen = 100;
  Key key = MakeKey(7);
  EncodeRowHeader(slot, hdr, key);

  RowHeader out;
  Key out_key;
  DecodeRowHeader(slot, &out, &out_key);
  EXPECT_TRUE(out.in_use());
  EXPECT_TRUE(out.deleted());
  EXPECT_EQ(out.tid, 42u);
  EXPECT_EQ(out.roll_ptr, 0xdeadbeefu);
  EXPECT_EQ(out.vlen, 100u);
  EXPECT_EQ(out_key, key);
}

TEST(PageTest, SlotsPerPageArithmetic) {
  // 232-byte rows (the paper's microbenchmark row size).
  size_t per_page = SlotsPerPage(232);
  EXPECT_GT(per_page, 50u);
  EXPECT_LE(SlotOffset(static_cast<uint16_t>(per_page - 1), 232) +
                RowSlotSize(232),
            kPageSize);
}

// -------------------------------------------------------------- Buffer pool

class BufferPoolTest : public ::testing::Test {
 protected:
  BufferPoolTest() : device_(std::make_unique<MemDevice>()) {}

  std::unique_ptr<BufferPool> MakePool(size_t pages) {
    return std::make_unique<BufferPool>(
        pages, [this](TableId) { return device_.get(); }, 2);
  }

  std::unique_ptr<MemDevice> device_;
};

TEST_F(BufferPoolTest, NewPageThenFetchHits) {
  auto pool = MakePool(16);
  PageId pid = MakePageId(0, 3);
  {
    auto page = pool->NewPage(pid);
    ASSERT_TRUE(page.ok());
    page->LockExclusive();
    page->data()[100] = 0x5a;
    page->UnlockExclusive();
  }
  auto again = pool->FetchPage(pid);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->data()[100], 0x5a);
  EXPECT_GE(pool->hits(), 1u);
}

TEST_F(BufferPoolTest, EvictionWritesBackDirtyPages) {
  auto pool = MakePool(4);
  for (uint32_t p = 0; p < 16; ++p) {
    auto page = pool->NewPage(MakePageId(0, p));
    ASSERT_TRUE(page.ok());
    page->LockExclusive();
    page->data()[0] = static_cast<uint8_t>(p + 1);
    page->UnlockExclusive();
  }
  for (uint32_t p = 0; p < 16; ++p) {
    auto page = pool->FetchPage(MakePageId(0, p));
    ASSERT_TRUE(page.ok());
    EXPECT_EQ(page->data()[0], static_cast<uint8_t>(p + 1)) << "page " << p;
  }
  EXPECT_GT(pool->misses(), 0u);
  EXPECT_GT(device_->bytes_written(), 0u);
}

TEST_F(BufferPoolTest, PinnedPagesAreNotEvicted) {
  auto pool = MakePool(4);
  auto pinned = pool->NewPage(MakePageId(0, 0));
  ASSERT_TRUE(pinned.ok());
  pinned->LockExclusive();
  pinned->data()[0] = 0x77;
  pinned->UnlockExclusive();
  for (uint32_t p = 1; p < 40; ++p) {
    auto page = pool->NewPage(MakePageId(0, p));
    ASSERT_TRUE(page.ok());
  }
  EXPECT_EQ(pinned->data()[0], 0x77);
}

TEST_F(BufferPoolTest, AllPinnedReportsBusy) {
  auto pool = MakePool(2);
  auto p1 = pool->NewPage(MakePageId(0, 0));
  auto p2 = pool->NewPage(MakePageId(0, 1));
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  auto p3 = pool->FetchPage(MakePageId(0, 2));
  EXPECT_FALSE(p3.ok());
  EXPECT_EQ(p3.status().code(), StatusCode::kBusy);
}

TEST_F(BufferPoolTest, HitRatioTracksPoolSizing) {
  auto small = MakePool(4);
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    auto page = small->FetchPage(MakePageId(0, rng.Uniform(64)));
    ASSERT_TRUE(page.ok());
  }
  double small_ratio = small->HitRatio();

  device_ = std::make_unique<MemDevice>();
  auto big = MakePool(128);
  for (int i = 0; i < 500; ++i) {
    auto page = big->FetchPage(MakePageId(0, rng.Uniform(64)));
    ASSERT_TRUE(page.ok());
  }
  EXPECT_GT(big->HitRatio(), small_ratio)
      << "a pool covering the working set must hit more";
}

TEST_F(BufferPoolTest, ConcurrentFetchersSeeConsistentPages) {
  auto pool = MakePool(8);
  for (uint32_t p = 0; p < 32; ++p) {
    auto page = pool->NewPage(MakePageId(0, p));
    ASSERT_TRUE(page.ok());
    page->LockExclusive();
    std::memset(page->data(), static_cast<int>(p + 1), kPageSize);
    page->UnlockExclusive();
  }
  std::atomic<uint64_t> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(t);
      for (int i = 0; i < 2000; ++i) {
        uint32_t p = static_cast<uint32_t>(rng.Uniform(32));
        auto page = pool->FetchPage(MakePageId(0, p));
        if (!page.ok()) continue;  // transiently all-pinned
        page->LockShared();
        uint8_t first = page->data()[0];
        uint8_t last = page->data()[kPageSize - 1];
        page->UnlockShared();
        if (first != static_cast<uint8_t>(p + 1) || first != last) {
          errors.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0u);
}

// ------------------------------------------------------------- Lock manager

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager lm;
  EXPECT_TRUE(lm.Lock(1, 100, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Lock(2, 100, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Holds(1, 100, LockMode::kShared));
  EXPECT_TRUE(lm.Holds(2, 100, LockMode::kShared));
  lm.ReleaseAll(1, {100});
  lm.ReleaseAll(2, {100});
}

TEST(LockManagerTest, ExclusiveBlocksUntilRelease) {
  LockManager lm;
  ASSERT_TRUE(lm.Lock(1, 100, LockMode::kExclusive).ok());
  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    EXPECT_TRUE(lm.Lock(2, 100, LockMode::kExclusive).ok());
    granted.store(true);
    lm.ReleaseAll(2, {100});
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(granted.load());
  lm.ReleaseAll(1, {100});
  waiter.join();
  EXPECT_TRUE(granted.load());
}

TEST(LockManagerTest, ReentrantAndCovering) {
  LockManager lm;
  ASSERT_TRUE(lm.Lock(1, 5, LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Lock(1, 5, LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Lock(1, 5, LockMode::kShared).ok()) << "X covers S";
  lm.ReleaseAll(1, {5});
}

TEST(LockManagerTest, UpgradeWhenSoleHolder) {
  LockManager lm;
  ASSERT_TRUE(lm.Lock(1, 5, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Lock(1, 5, LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Holds(1, 5, LockMode::kExclusive));
  lm.ReleaseAll(1, {5});
}

TEST(LockManagerTest, DeadlockDetected) {
  LockManager::Options opts;
  opts.wait_timeout_ms = 5000;  // detection must fire well before timeout
  LockManager lm(opts);
  ASSERT_TRUE(lm.Lock(1, 100, LockMode::kExclusive).ok());
  ASSERT_TRUE(lm.Lock(2, 200, LockMode::kExclusive).ok());

  std::atomic<int> deadlocks{0};
  std::thread t1([&] {
    Status s = lm.Lock(1, 200, LockMode::kExclusive);
    if (s.IsDeadlock()) {
      deadlocks.fetch_add(1);
      lm.ReleaseAll(1, {100});
    } else {
      lm.ReleaseAll(1, {100, 200});
    }
  });
  std::thread t2([&] {
    Status s = lm.Lock(2, 100, LockMode::kExclusive);
    if (s.IsDeadlock()) {
      deadlocks.fetch_add(1);
      lm.ReleaseAll(2, {200});
    } else {
      lm.ReleaseAll(2, {100, 200});
    }
  });
  t1.join();
  t2.join();
  EXPECT_GE(deadlocks.load(), 1) << "cycle must be broken by detection";
  EXPECT_GE(lm.deadlocks(), 1u);
}

TEST(LockManagerTest, UpgradeDeadlockDetected) {
  LockManager::Options opts;
  opts.wait_timeout_ms = 5000;
  LockManager lm(opts);
  ASSERT_TRUE(lm.Lock(1, 9, LockMode::kShared).ok());
  ASSERT_TRUE(lm.Lock(2, 9, LockMode::kShared).ok());
  std::atomic<int> deadlocks{0};
  std::thread t1([&] {
    Status s = lm.Lock(1, 9, LockMode::kExclusive);
    if (s.IsDeadlock()) deadlocks.fetch_add(1);
    lm.ReleaseAll(1, {9});
  });
  std::thread t2([&] {
    Status s = lm.Lock(2, 9, LockMode::kExclusive);
    if (s.IsDeadlock()) deadlocks.fetch_add(1);
    lm.ReleaseAll(2, {9});
  });
  t1.join();
  t2.join();
  EXPECT_GE(deadlocks.load(), 1);
}

TEST(LockManagerTest, TimeoutBackstop) {
  LockManager::Options opts;
  opts.wait_timeout_ms = 50;
  LockManager lm(opts);
  ASSERT_TRUE(lm.Lock(1, 100, LockMode::kExclusive).ok());
  Status s = lm.Lock(2, 100, LockMode::kExclusive);
  EXPECT_TRUE(s.code() == StatusCode::kTimedOut);
  lm.ReleaseAll(1, {100});
}

// ----------------------------------------------------------------- TrxSys

TEST(TrxSysTest, NativeViewVisibility) {
  TrxSys sys;
  uint64_t t1 = sys.AssignTid();  // active
  ReadView view = sys.CreateReadView(0);
  uint64_t t2 = sys.AssignTid();  // born after the view

  EXPECT_TRUE(TrxSys::VisibleInNativeView(view, 1)) << "genesis visible";
  EXPECT_FALSE(TrxSys::VisibleInNativeView(view, t1)) << "active at creation";
  EXPECT_FALSE(TrxSys::VisibleInNativeView(view, t2)) << "born later";

  sys.AssignSerNo(t1);
  sys.MarkCommitted(t1);
  // The old view still must not see t1 (it was active at creation).
  EXPECT_FALSE(TrxSys::VisibleInNativeView(view, t1));
  // A fresh view sees it.
  ReadView fresh = sys.CreateReadView(0);
  EXPECT_TRUE(TrxSys::VisibleInNativeView(fresh, t1));
  sys.MarkCommitted(t2);
}

TEST(TrxSysTest, CrossViewFollowsCommitOrderNotTidOrder) {
  // The subtle case from DESIGN.md: an old TID that commits late (large
  // serialisation_no) must stay invisible to a view adjusted to an earlier
  // commit-order snapshot, even though its TID is below every watermark.
  TrxSys sys;
  uint64_t t_old = sys.AssignTid();  // small TID
  uint64_t t_new = sys.AssignTid();

  uint64_t ser_new = sys.AssignSerNo(t_new);
  sys.MarkCommitted(t_new);
  uint64_t ser_old = sys.AssignSerNo(t_old);  // commits later!
  sys.MarkCommitted(t_old);
  ASSERT_LT(ser_new, ser_old);
  ASSERT_LT(t_old, t_new);

  // View adjusted to the commit-order point of t_new.
  ReadView view = sys.CreateReadView(0);
  view.AdjustForCrossEngine(ser_new);
  EXPECT_TRUE(sys.Visible(view, t_new));
  EXPECT_FALSE(sys.Visible(view, t_old))
      << "late commit with old TID leaked into an adjusted view";
}

TEST(TrxSysTest, CrossViewWaitsOutPreCommitted) {
  TrxSys sys;
  uint64_t t = sys.AssignTid();
  uint64_t ser = sys.AssignSerNo(t);  // pre-committed, not yet committed

  ReadView view = sys.CreateReadView(0);
  view.AdjustForCrossEngine(ser);

  std::atomic<bool> visible{false};
  std::thread reader([&] { visible.store(sys.Visible(view, t)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  sys.MarkCommitted(t);  // resolves the spin
  reader.join();
  EXPECT_TRUE(visible.load());
}

TEST(TrxSysTest, WatermarkAdjustClamp) {
  ReadView view;
  view.high_water = 100;
  view.low_water = 90;
  view.AdjustForCrossEngine(50);
  EXPECT_EQ(view.ser_limit, 50u);
  EXPECT_EQ(view.high_water, 51u);
  EXPECT_EQ(view.low_water, 51u) << "paper Section 5: clamp both";
}

TEST(TrxSysTest, PurgedStatesReadAsAncientCommits) {
  TrxSys sys;
  uint64_t t = sys.AssignTid();
  sys.AssignSerNo(t);
  sys.MarkCommitted(t);
  sys.PurgeStates(1 << 20);
  sys.PurgeStates(1 << 20);  // aborted entries need two rounds
  auto st = sys.GetState(t);
  EXPECT_EQ(st.state, TxnState::kCommitted);
  EXPECT_TRUE(sys.VisibleInCrossView(t, 1));
}

// The O(ripe) purge FIFOs must preserve the aborted entries' one-round
// grace: an aborted state survives the purge round that could first see
// it, so a reader holding a microseconds-stale row copy never mistakes
// the aborted writer for an anciently-committed one.
TEST(TrxSysTest, AbortedStatesSurviveOnePurgeRound) {
  TrxSys sys;
  uint64_t t = sys.AssignTid();
  sys.MarkAborting(t);
  sys.FinishAbort(t);
  sys.PurgeStates(1 << 20);
  EXPECT_EQ(sys.GetState(t).state, TxnState::kAborted)
      << "aborted entry purged without its grace round";
  sys.PurgeStates(1 << 20);
  EXPECT_EQ(sys.GetState(t).state, TxnState::kCommitted)
      << "grace round over: entry should read as anciently committed";
}

// Committed entries above the floor are retained; the FIFO prefix pop
// must not purge past the first unripe ser.
TEST(TrxSysTest, PurgeStopsAtTheFloor) {
  TrxSys sys;
  uint64_t t1 = sys.AssignTid();
  uint64_t ser1 = sys.AssignSerNo(t1);
  sys.MarkCommitted(t1);
  uint64_t t2 = sys.AssignTid();
  uint64_t ser2 = sys.AssignSerNo(t2);
  sys.MarkCommitted(t2);
  ASSERT_LT(ser1, ser2);
  size_t purged = sys.PurgeStates(ser2);  // ripe: genesis + t1, not t2
  EXPECT_EQ(purged, 2u);
  EXPECT_EQ(sys.GetState(t2).ser, ser2) << "t2's entry must survive";
  EXPECT_EQ(sys.PurgeStates(ser2 + 1), 1u);
}

// --------------------------------------------------------------- StorEngine

class StorEngineTest : public ::testing::Test {
 protected:
  StorEngineTest() { Reset(StorEngine::Options{}); }

  void Reset(StorEngine::Options opts) {
    engine_ = std::make_unique<StorEngine>(std::make_unique<MemDevice>(),
                                           opts);
    table_ = engine_->CreateTable("t", 256);
  }

  void CommitPut(uint64_t key, const std::string& value) {
    auto txn = engine_->Begin(IsolationLevel::kSnapshot);
    ASSERT_TRUE(engine_->Put(txn.get(), table_, MakeKey(key), value).ok());
    ASSERT_TRUE(engine_->PreCommit(txn.get(), gtid_++, false).ok());
    engine_->PostCommit(txn.get(), 0, false);
  }

  std::unique_ptr<StorEngine> engine_;
  TableId table_ = 0;
  GlobalTxnId gtid_ = 1;
};

TEST_F(StorEngineTest, PutGetRoundTrip) {
  CommitPut(1, "hello");
  auto txn = engine_->Begin(IsolationLevel::kSnapshot);
  std::string v;
  ASSERT_TRUE(engine_->Get(txn.get(), table_, MakeKey(1), &v).ok());
  EXPECT_EQ(v, "hello");
  engine_->Abort(txn.get());
}

TEST_F(StorEngineTest, UpdateInPlaceWithUndoVisibility) {
  CommitPut(1, "v1");
  auto old_reader = engine_->Begin(IsolationLevel::kSnapshot);
  std::string v;
  ASSERT_TRUE(engine_->Get(old_reader.get(), table_, MakeKey(1), &v).ok());
  ASSERT_EQ(v, "v1");

  CommitPut(1, "v2");

  // The old reader reconstructs v1 through the undo chain.
  ASSERT_TRUE(engine_->Get(old_reader.get(), table_, MakeKey(1), &v).ok());
  EXPECT_EQ(v, "v1");
  engine_->Abort(old_reader.get());

  auto fresh = engine_->Begin(IsolationLevel::kSnapshot);
  ASSERT_TRUE(engine_->Get(fresh.get(), table_, MakeKey(1), &v).ok());
  EXPECT_EQ(v, "v2");
  engine_->Abort(fresh.get());
}

TEST_F(StorEngineTest, UncommittedWriteInvisibleViaUndo) {
  CommitPut(1, "base");
  auto writer = engine_->Begin(IsolationLevel::kSnapshot);
  ASSERT_TRUE(engine_->Put(writer.get(), table_, MakeKey(1), "dirty").ok());
  auto reader = engine_->Begin(IsolationLevel::kSnapshot);
  std::string v;
  ASSERT_TRUE(engine_->Get(reader.get(), table_, MakeKey(1), &v).ok());
  EXPECT_EQ(v, "base") << "in-place dirty write must be hidden by undo";
  engine_->Abort(reader.get());
  engine_->Abort(writer.get());
}

TEST_F(StorEngineTest, RollbackRestoresOldImage) {
  CommitPut(1, "keep");
  auto txn = engine_->Begin(IsolationLevel::kSnapshot);
  ASSERT_TRUE(engine_->Put(txn.get(), table_, MakeKey(1), "scrap").ok());
  ASSERT_TRUE(engine_->Put(txn.get(), table_, MakeKey(2), "insert").ok());
  engine_->Abort(txn.get());

  auto reader = engine_->Begin(IsolationLevel::kSnapshot);
  std::string v;
  ASSERT_TRUE(engine_->Get(reader.get(), table_, MakeKey(1), &v).ok());
  EXPECT_EQ(v, "keep");
  EXPECT_TRUE(
      engine_->Get(reader.get(), table_, MakeKey(2), &v).IsNotFound())
      << "rolled-back insert must be invisible";
  engine_->Abort(reader.get());
}

TEST_F(StorEngineTest, DeleteThenReadNotFound) {
  CommitPut(1, "x");
  auto txn = engine_->Begin(IsolationLevel::kSnapshot);
  ASSERT_TRUE(engine_->Delete(txn.get(), table_, MakeKey(1)).ok());
  ASSERT_TRUE(engine_->PreCommit(txn.get(), gtid_++, false).ok());
  engine_->PostCommit(txn.get(), 0, false);

  auto reader = engine_->Begin(IsolationLevel::kSnapshot);
  std::string v;
  EXPECT_TRUE(
      engine_->Get(reader.get(), table_, MakeKey(1), &v).IsNotFound());
  engine_->Abort(reader.get());
}

TEST_F(StorEngineTest, WriteConflictFirstUpdaterWins) {
  CommitPut(1, "base");
  auto t1 = engine_->Begin(IsolationLevel::kSnapshot);
  std::string v;
  ASSERT_TRUE(engine_->Get(t1.get(), table_, MakeKey(1), &v).ok());

  CommitPut(1, "newer");

  // t1 now tries to update a row whose latest version is invisible to it.
  EXPECT_TRUE(engine_->Put(t1.get(), table_, MakeKey(1), "t1").IsAborted());
}

TEST_F(StorEngineTest, BlockedWriterAbortsAfterWinnerCommits) {
  CommitPut(1, "base");
  auto winner = engine_->Begin(IsolationLevel::kSnapshot);
  ASSERT_TRUE(engine_->Put(winner.get(), table_, MakeKey(1), "w").ok());

  std::atomic<bool> loser_aborted{false};
  std::thread loser_thread([&] {
    auto loser = engine_->Begin(IsolationLevel::kSnapshot);
    std::string v;
    ASSERT_TRUE(engine_->Get(loser.get(), table_, MakeKey(1), &v).ok());
    // Blocks on the record X lock, then fails the visibility re-check.
    Status s = engine_->Put(loser.get(), table_, MakeKey(1), "l");
    loser_aborted.store(s.IsAborted());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_TRUE(engine_->PreCommit(winner.get(), gtid_++, false).ok());
  engine_->PostCommit(winner.get(), 0, false);
  loser_thread.join();
  EXPECT_TRUE(loser_aborted.load());
}

TEST_F(StorEngineTest, AbortAfterPreCommitRollsBack) {
  CommitPut(1, "base");
  auto txn = engine_->Begin(IsolationLevel::kSnapshot);
  ASSERT_TRUE(engine_->Put(txn.get(), table_, MakeKey(1), "doomed").ok());
  ASSERT_TRUE(engine_->PreCommit(txn.get(), gtid_++, true).ok());
  EXPECT_NE(txn->ser_no(), 0u);
  engine_->Abort(txn.get());  // Skeena commit-check failure path

  auto reader = engine_->Begin(IsolationLevel::kSnapshot);
  std::string v;
  ASSERT_TRUE(engine_->Get(reader.get(), table_, MakeKey(1), &v).ok());
  EXPECT_EQ(v, "base");
  engine_->Abort(reader.get());
}

TEST_F(StorEngineTest, CrossEngineViewSeesExactlyThroughSerLimit) {
  CommitPut(1, "epoch1");  // some ser s1
  uint64_t limit = engine_->LatestSnapshot();
  CommitPut(1, "epoch2");  // newer commit, beyond the limit

  auto txn = engine_->Begin(IsolationLevel::kSnapshot, limit);
  std::string v;
  ASSERT_TRUE(engine_->Get(txn.get(), table_, MakeKey(1), &v).ok());
  EXPECT_EQ(v, "epoch1")
      << "CSR-selected snapshot must cut off at the commit-order limit";
  engine_->Abort(txn.get());
}

TEST_F(StorEngineTest, ScanVisibleRowsInOrder) {
  for (uint64_t k = 0; k < 30; ++k) CommitPut(k, "v" + std::to_string(k));
  auto txn = engine_->Begin(IsolationLevel::kSnapshot);
  uint64_t expected = 5;
  size_t n = 0;
  ASSERT_TRUE(engine_
                  ->Scan(txn.get(), table_, MakeKey(5), 10,
                         [&](const Key& key, const std::string& value) {
                           EXPECT_EQ(KeyPrefixU64(key), expected);
                           EXPECT_EQ(value, "v" + std::to_string(expected));
                           expected++;
                           n++;
                           return true;
                         })
                  .ok());
  EXPECT_EQ(n, 10u);
  engine_->Abort(txn.get());
}

TEST_F(StorEngineTest, SerializableReadsBlockWriters) {
  CommitPut(1, "base");
  auto reader = engine_->Begin(IsolationLevel::kSerializable);
  std::string v;
  ASSERT_TRUE(engine_->Get(reader.get(), table_, MakeKey(1), &v).ok());

  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    auto w = engine_->Begin(IsolationLevel::kSnapshot);
    Status s = engine_->Put(w.get(), table_, MakeKey(1), "w");
    if (s.ok()) {
      if (engine_->PreCommit(w.get(), 999, false).ok()) {
        engine_->PostCommit(w.get(), 0, false);
      }
    }
    writer_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(writer_done.load()) << "S lock must block the X writer";
  ASSERT_TRUE(engine_->PreCommit(reader.get(), gtid_++, false).ok());
  engine_->PostCommit(reader.get(), 0, false);
  writer.join();
  EXPECT_TRUE(writer_done.load());
}

TEST_F(StorEngineTest, StorageResidentWorkloadTouchesDevice) {
  StorEngine::Options opts;
  opts.buffer_pool_pages = 8;  // much smaller than the data
  Reset(opts);
  for (uint64_t k = 0; k < 2000; ++k) {
    CommitPut(k, std::string(200, static_cast<char>('a' + (k % 26))));
  }
  engine_->pool()->ResetStats();
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    auto txn = engine_->Begin(IsolationLevel::kSnapshot);
    std::string v;
    uint64_t k = rng.Uniform(2000);
    ASSERT_TRUE(engine_->Get(txn.get(), table_, MakeKey(k), &v).ok());
    EXPECT_EQ(v[0], static_cast<char>('a' + (k % 26)));
    engine_->Abort(txn.get());
  }
  EXPECT_LT(engine_->pool()->HitRatio(), 0.5)
      << "tiny pool over large data must miss";
}

TEST_F(StorEngineTest, RecoverReplaysCommittedOnly) {
  auto dev = std::make_unique<MemDevice>();
  MemDevice* raw = dev.get();
  std::vector<uint8_t> log_bytes;
  {
    StorEngine engine(std::move(dev), StorEngine::Options{});
    TableId t = engine.CreateTable("r", 256);
    auto c = engine.Begin(IsolationLevel::kSnapshot);
    ASSERT_TRUE(engine.Put(c.get(), t, MakeKey(1), "committed").ok());
    ASSERT_TRUE(engine.PreCommit(c.get(), 21, false).ok());
    engine.PostCommit(c.get(), 21, false);

    auto a = engine.Begin(IsolationLevel::kSnapshot);
    ASSERT_TRUE(engine.Put(a.get(), t, MakeKey(2), "aborted").ok());
    ASSERT_TRUE(engine.PreCommit(a.get(), 22, false).ok());
    engine.Abort(a.get());
    engine.log()->Flush();
    log_bytes.resize(raw->Size());
    raw->ReadAt(0, log_bytes);
  }
  auto dev2 = std::make_unique<MemDevice>();
  uint64_t off;
  dev2->Append(log_bytes, &off);
  StorEngine recovered(std::move(dev2), StorEngine::Options{});
  TableId t2 = recovered.CreateTable("r", 256);
  ASSERT_TRUE(recovered.Recover({}).ok());

  auto reader = recovered.Begin(IsolationLevel::kSnapshot);
  std::string v;
  ASSERT_TRUE(recovered.Get(reader.get(), t2, MakeKey(1), &v).ok());
  EXPECT_EQ(v, "committed");
  EXPECT_TRUE(recovered.Get(reader.get(), t2, MakeKey(2), &v).IsNotFound());
  recovered.Abort(reader.get());
}

TEST_F(StorEngineTest, ConcurrentContendedCounterExact) {
  CommitPut(0, "0");
  constexpr int kThreads = 4;
  constexpr int kIncrements = 50;
  std::atomic<GlobalTxnId> gtid{100};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements;) {
        auto txn = engine_->Begin(IsolationLevel::kSnapshot);
        std::string v;
        if (!engine_->Get(txn.get(), table_, MakeKey(0), &v).ok()) {
          engine_->Abort(txn.get());
          continue;
        }
        if (!engine_
                 ->Put(txn.get(), table_, MakeKey(0),
                       std::to_string(std::stoi(v) + 1))
                 .ok()) {
          continue;
        }
        if (engine_->PreCommit(txn.get(), gtid.fetch_add(1), false).ok()) {
          engine_->PostCommit(txn.get(), 0, false);
          i++;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  auto txn = engine_->Begin(IsolationLevel::kSnapshot);
  std::string v;
  ASSERT_TRUE(engine_->Get(txn.get(), table_, MakeKey(0), &v).ok());
  EXPECT_EQ(v, std::to_string(kThreads * kIncrements));
  engine_->Abort(txn.get());
}

}  // namespace
}  // namespace skeena::stordb
