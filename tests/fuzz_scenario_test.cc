// Adversarial scenario fuzzer: randomized seeded schedules — uniform
// mixes, abort storms, engine-skewed contention, read-committed mixes,
// buffer-pool eviction pressure, crash-during-commit — with every
// transaction recorded and every history fed through the black-box SI
// checker (core/history.h). A failing seed prints a one-line repro header
// (scenario + seed) and writes the full history dump where CI picks it up
// as an artifact (SKEENA_FUZZ_DUMP_DIR).
//
// Quick gate: fixed seeds per scenario family (tests not named Stress).
// Slow lane: SKEENA_FUZZ_SEEDS random seeds across all families
// (fuzz_scenario_stress, nightly-style).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "core/history.h"
#include "core/skeena.h"
#include "repl/applier.h"
#include "repl/shipper.h"
#include "support/db_fixtures.h"

namespace skeena {
namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

struct ScenarioConfig {
  const char* name;
  int threads = 4;
  int txns_per_thread = 120;
  int keys = 16;
  int max_ops = 6;
  double p_stor = 0.5;    // per-op engine bias
  double p_write = 0.5;   // write vs read
  double p_delete = 0.1;  // of writes
  double p_scan = 0.1;    // of reads
  double p_abort = 0.05;  // explicit rollback before commit
  double p_rc = 0.0;      // read-committed fraction
  size_t buffer_pool_pages = 2048;
  size_t pool_shards = 8;
  int value_pad = 0;  // inflate values (page churn)
  DeviceLatency data_latency = DeviceLatency::Tmpfs();
};

ScenarioConfig UniformMix() { return ScenarioConfig{"uniform_mix"}; }

ScenarioConfig AbortStorm() {
  ScenarioConfig c{"abort_storm"};
  c.threads = 6;
  c.keys = 4;  // heavy write-write contention
  c.p_write = 0.7;
  c.p_abort = 0.3;
  return c;
}

ScenarioConfig EngineSkew(bool stor_heavy) {
  ScenarioConfig c{stor_heavy ? "engine_skew_stor" : "engine_skew_mem"};
  c.p_stor = stor_heavy ? 0.9 : 0.1;
  c.keys = 8;
  return c;
}

ScenarioConfig ReadCommittedMix() {
  ScenarioConfig c{"read_committed_mix"};
  c.p_rc = 0.5;
  c.keys = 8;
  return c;
}

ScenarioConfig EvictionPressure() {
  ScenarioConfig c{"eviction_pressure"};
  c.p_stor = 0.95;
  c.p_write = 0.6;
  // Slots are allocated densely in write order (~54 rows/page at
  // max_value_size 256), so ~1.5k distinct written keys span ~30 pages;
  // an 8-frame pool keeps every shard far below the working set.
  c.keys = 4096;
  c.buffer_pool_pages = 8;
  c.pool_shards = 2;
  c.value_pad = 200;
  c.threads = 8;
  c.txns_per_thread = 300;
  // Slow-device table-space latency (10x the paper's SSD write cost)
  // widens the dirty write-back window as far as is plausible, giving
  // refetch-during-writeback (the flush-wait path) its best chance.
  c.data_latency = DeviceLatency{.read_ns = 80'000, .write_ns = 200'000,
                                 .sync_ns = 100'000};
  return c;
}

void WriteFailureDump(const char* scenario, uint64_t seed,
                      const std::vector<TxnHistory>& history,
                      const SiReport& report) {
  const char* env = std::getenv("SKEENA_FUZZ_DUMP_DIR");
  std::filesystem::path dir =
      env != nullptr && env[0] != '\0'
          ? std::filesystem::path(env)
          : std::filesystem::temp_directory_path() / "skeena_fuzz_dumps";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  std::filesystem::path file =
      dir / ("fuzz_" + std::string(scenario) + "_seed" +
             std::to_string(seed) + ".txt");
  std::ofstream out(file);
  out << "FUZZ FAILURE scenario=" << scenario << " seed=" << seed << "\n"
      << report.Summary(64) << "\n--- history ---\n"
      << DumpHistory(history);
  // The one line to grep for in CI output; the dump is the artifact.
  std::fprintf(stderr, "FUZZ FAILURE scenario=%s seed=%llu dump=%s\n",
               scenario, static_cast<unsigned long long>(seed),
               file.string().c_str());
}

struct PoolNumbers {
  uint64_t fetches = 0;
  uint64_t misses = 0;
  uint64_t flush_waits = 0;
  uint64_t write_backs = 0;
};

/// Runs one seeded scenario and checks the recorded history. Returns the
/// checker's report (already dumped on failure).
SiReport RunScenario(const ScenarioConfig& cfg, uint64_t seed,
                     PoolNumbers* pool_out = nullptr) {
  DatabaseOptions opts = test::FastOptions();
  opts.record_history = true;
  opts.stor.buffer_pool_pages = cfg.buffer_pool_pages;
  opts.stor.pool_shards = cfg.pool_shards;
  opts.stor.data_latency = cfg.data_latency;
  Database db(opts);
  auto mem_t = *db.CreateTable("m", EngineKind::kMem);
  auto stor_t = *db.CreateTable("s", EngineKind::kStor);

  std::mutex err_mu;
  std::vector<std::string> errors;
  auto fail = [&](std::string msg) {
    std::lock_guard<std::mutex> lk(err_mu);
    errors.push_back(std::move(msg));
  };

  std::vector<std::thread> workers;
  for (int t = 0; t < cfg.threads; ++t) {
    workers.emplace_back([&, t] {
      std::mt19937_64 rng(SplitMix64(seed) ^ SplitMix64(t + 1));
      std::uniform_real_distribution<double> uni(0.0, 1.0);
      auto chance = [&](double p) { return uni(rng) < p; };
      for (int i = 0; i < cfg.txns_per_thread; ++i) {
        auto txn = db.Begin(chance(cfg.p_rc) ? IsolationLevel::kReadCommitted
                                             : IsolationLevel::kSnapshot);
        int nops = 1 + static_cast<int>(rng() % cfg.max_ops);
        bool dead = false;
        for (int op = 0; op < nops && !dead; ++op) {
          const TableHandle& tbl = chance(cfg.p_stor) ? stor_t : mem_t;
          Key key = MakeKey(rng() % cfg.keys);
          Status s;
          if (chance(cfg.p_write)) {
            if (chance(cfg.p_delete)) {
              s = txn->Delete(tbl, key);
              if (s.IsNotFound()) s = Status::OK();  // nothing to delete
            } else {
              std::string v = "v" + std::to_string(seed) + "." +
                              std::to_string(t) + "." + std::to_string(i) +
                              "." + std::to_string(op);
              v.append(static_cast<size_t>(cfg.value_pad), 'x');
              s = txn->Put(tbl, key, v);
            }
          } else if (chance(cfg.p_scan)) {
            s = txn->Scan(tbl, MakeKey(rng() % cfg.keys), 4,
                          [](const Key&, const std::string&) {
                            return true;
                          });
          } else {
            std::string v;
            s = txn->Get(tbl, key, &v);
            if (s.IsNotFound()) s = Status::OK();
          }
          if (!s.ok()) {
            // kBusy is transient capacity pushback (all frames of a tiny
            // buffer pool pinned mid-I/O, insert races); a real client
            // aborts and retries, so the scenario does the same.
            if (!s.IsAnyAbort() && s.code() != StatusCode::kBusy) {
              fail("unexpected op status: " + s.ToString());
            }
            dead = true;  // engine aborted the transaction under us
          }
        }
        if (dead) {
          txn->Abort();  // idempotent
          continue;
        }
        if (chance(cfg.p_abort)) {
          txn->Abort();
          continue;
        }
        Status c = txn->Commit();
        if (!c.ok() && !c.IsAnyAbort() && c.code() != StatusCode::kBusy) {
          fail("unexpected commit status: " + c.ToString());
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  for (const auto& e : errors) ADD_FAILURE() << cfg.name << ": " << e;

  if (pool_out != nullptr) {
    auto* pool = db.stor()->engine()->pool();
    pool_out->fetches = pool->hits() + pool->misses();
    pool_out->misses = pool->misses();
    pool_out->flush_waits = pool->flush_waits();
    pool_out->write_backs = pool->write_backs();
  }

  auto history = db.recorder()->Fold();
  SiCheckOptions check;
  check.anchor_index = db.anchor_index();
  check.have_csr_dump = true;
  Timestamp floor = 0;
  for (const auto& m : db.csr().DumpMappings(&floor)) {
    check.csr_mappings.push_back({m.key, m.vmin, m.vmax});
  }
  check.csr_floor = floor;
  SiReport report = CheckSnapshotIsolation(history, check);
  if (!report.ok()) WriteFailureDump(cfg.name, seed, history, report);
  return report;
}

// ------------------------------------------------ crash-during-commit

/// File-backed run: a concurrent workload phase, then a few cross-engine
/// commits "crashed" between their two post-commits (the recovery_test
/// idiom, driven through the real CSR gate), then reopen + Recover + a
/// full scan audited against the recorded history.
SiReport RunCrashScenario(uint64_t seed) {
  std::string dir =
      (std::filesystem::temp_directory_path() /
       ("skeena_fuzz_crash_" + std::to_string(seed)))
          .string();
  std::filesystem::remove_all(dir);

  std::vector<TxnHistory> history;
  SiCheckOptions check;
  {
    DatabaseOptions opts;
    opts.data_dir = dir;
    opts.mem.log.flush_interval_us = 20;
    opts.stor.log.flush_interval_us = 20;
    opts.record_history = true;
    Database db(opts);
    auto mem_t = *db.CreateTable("m", EngineKind::kMem);
    auto stor_t = *db.CreateTable("s", EngineKind::kStor);

    std::vector<std::thread> workers;
    for (int t = 0; t < 3; ++t) {
      workers.emplace_back([&, t] {
        std::mt19937_64 rng(SplitMix64(seed) ^ SplitMix64(100 + t));
        for (int i = 0; i < 40; ++i) {
          auto txn = db.Begin();
          Key key = MakeKey(rng() % 12);
          std::string v = "c" + std::to_string(seed) + "." +
                          std::to_string(t) + "." + std::to_string(i);
          bool cross = (rng() & 1) != 0;
          Status s = txn->Put((rng() & 2) != 0 ? stor_t : mem_t, key, v);
          if (s.ok() && cross) {
            s = txn->Put((rng() & 2) != 0 ? mem_t : stor_t, key, v);
          }
          if (s.ok()) (void)txn->Commit();
        }
      });
    }
    for (auto& w : workers) w.join();
    history = db.recorder()->Fold();

    // Torn commits on dedicated keys: pre-commit both, pass the real
    // commit gate, then "crash" after post-committing only a subset of
    // the engines. Commit-end reaches a log only for post-committed
    // sides, so recovery must keep the transaction iff BOTH made it.
    std::mt19937_64 rng(SplitMix64(seed) ^ 0xdeadull);
    EngineIface* mem = db.engine(0);
    EngineIface* stor = db.engine(1);
    for (int j = 0; j < 4; ++j) {
      uint64_t k = 100 + static_cast<uint64_t>(j);
      GlobalTxnId gtid = db.NextGtid();
      Timestamp mem_begin = mem->LatestSnapshot();
      Timestamp stor_begin = stor->LatestSnapshot();
      auto t_mem = mem->Begin(IsolationLevel::kSnapshot, kMaxTimestamp);
      auto t_stor = stor->Begin(IsolationLevel::kSnapshot, kMaxTimestamp);
      std::string mv = "torn-m" + std::to_string(seed) + "." +
                       std::to_string(j);
      std::string sv = "torn-s" + std::to_string(seed) + "." +
                       std::to_string(j);
      if (!mem->Put(t_mem.get(), mem_t.local_id, MakeKey(k), mv).ok() ||
          !stor->Put(t_stor.get(), stor_t.local_id, MakeKey(k), sv).ok()) {
        mem->Abort(t_mem.get());
        stor->Abort(t_stor.get());
        continue;
      }
      Timestamp ca = 0, co = 0;
      if (!mem->PreCommit(t_mem.get(), gtid, true, &ca).ok() ||
          !stor->PreCommit(t_stor.get(), gtid, true, &co).ok()) {
        mem->Abort(t_mem.get());
        stor->Abort(t_stor.get());
        continue;
      }
      TxnHistory w;
      w.gtid = gtid;
      w.session = 90000 + static_cast<uint64_t>(j);
      w.seq = 1;
      w.anchor_snap = mem_begin;
      w.used[0] = w.used[1] = w.wrote[0] = w.wrote[1] = true;
      w.begin[0] = mem_begin;
      w.begin[1] = stor_begin;
      HistOp pm;
      pm.kind = HistOpKind::kPut;
      pm.engine = 0;
      pm.table = mem_t.local_id;
      pm.key = MakeKey(k);
      pm.value = mv;
      pm.snapshot = mem_begin;
      HistOp ps = pm;
      ps.engine = 1;
      ps.table = stor_t.local_id;
      ps.value = sv;
      ps.snapshot = stor_begin;
      w.ops.push_back(pm);
      w.ops.push_back(ps);
      if (db.csr().CommitCheck(ca, co, true, true).ok()) {
        int variant = 1 + static_cast<int>(rng() % 3);  // mem / stor / both
        if ((variant & 1) != 0) {
          mem->PostCommit(t_mem.get(), gtid, true);
          w.post_committed[0] = true;
        } else {
          mem->Abort(t_mem.get());
        }
        if ((variant & 2) != 0) {
          stor->PostCommit(t_stor.get(), gtid, true);
          w.post_committed[1] = true;
        } else {
          stor->Abort(t_stor.get());
        }
        mem->FlushLog();
        stor->FlushLog();
        w.outcome = TxnHistory::Outcome::kUnacked;
        w.commit[0] = ca;
        w.commit[1] = co;
      } else {
        mem->Abort(t_mem.get());
        stor->Abort(t_stor.get());
        w.outcome = TxnHistory::Outcome::kAborted;
      }
      history.push_back(std::move(w));
    }

    check.anchor_index = db.anchor_index();
    check.have_csr_dump = true;
    Timestamp floor = 0;
    for (const auto& m : db.csr().DumpMappings(&floor)) {
      check.csr_mappings.push_back({m.key, m.vmin, m.vmax});
    }
    check.csr_floor = floor;
  }  // "crash": close the database

  SiReport report;
  {
    DatabaseOptions opts;
    opts.data_dir = dir;
    opts.mem.log.flush_interval_us = 20;
    opts.stor.log.flush_interval_us = 20;
    Database db(opts);
    Status rec = db.Recover();
    if (!rec.ok()) {
      ADD_FAILURE() << "recovery failed for seed " << seed << ": "
                    << rec.ToString();
      std::filesystem::remove_all(dir);
      return report;
    }
    auto mem_t = *db.GetTable("m");
    auto stor_t = *db.GetTable("s");
    FinalStateRows rows[kNumEngines];
    auto reader = db.Begin();
    for (int e = 0; e < kNumEngines; ++e) {
      const TableHandle& tbl = e == 0 ? mem_t : stor_t;
      Status s = reader->Scan(tbl, MakeKey(0), 0,
                              [&](const Key& k, const std::string& v) {
                                rows[e][{tbl.local_id, k}] = v;
                                return true;
                              });
      if (!s.ok()) ADD_FAILURE() << "post-recovery scan: " << s.ToString();
    }
    report = CheckSnapshotIsolation(history, check);
    SiReport audit = CheckRecoveredState(history, rows, check);
    report.violations.insert(report.violations.end(),
                             audit.violations.begin(),
                             audit.violations.end());
    if (!report.ok()) {
      WriteFailureDump("crash_during_commit", seed, history, report);
    }
  }
  std::filesystem::remove_all(dir);
  return report;
}

// ------------------------------------------------- replication chaos

/// Primary + live replica with a chaos schedule severing the replication
/// channel mid-stream: hard kills (KillChannel) and mid-frame TCP cuts
/// (TestOnlyCutAfterBytes) land between log segments and CSR installs at
/// random. Replica readers run throughout. The audit is three-fold:
/// byte-identical scans after catch-up, a CheckRecoveredState-style
/// final-state audit of the REPLICA's rows against the primary's writer
/// history, and the merged history through the SI checker in replica mode
/// with the replica's replayed CSR dump.
SiReport RunReplicationChaosScenario(uint64_t seed) {
  constexpr uint64_t kSessionFloor = 1'000'000;
  constexpr GlobalTxnId kGtidOffset = 1'000'000'000;

  repl::CsrInstallJournal journal;
  DatabaseOptions popts = test::FastOptions();
  popts.record_history = true;
  popts.csr.install_observer = journal.Observer();
  Database primary(popts);
  auto p_mem = *primary.CreateTable("m", EngineKind::kMem);
  auto p_stor = *primary.CreateTable("s", EngineKind::kStor);

  DatabaseOptions ropts = test::FastOptions();
  ropts.replica = true;
  ropts.record_history = true;
  Database replica_db(ropts);
  auto r_mem = *replica_db.CreateTable("m", EngineKind::kMem);
  auto r_stor = *replica_db.CreateTable("s", EngineKind::kStor);

  repl::Shipper shipper(&primary, &journal);
  SiReport report;
  if (Status s = shipper.Start(); !s.ok()) {
    ADD_FAILURE() << "shipper start: " << s.ToString();
    return report;
  }
  repl::Replica::Options aopts;
  aopts.port = shipper.port();
  repl::Replica replica(&replica_db, aopts);
  if (Status s = replica.Start(); !s.ok()) {
    ADD_FAILURE() << "replica start: " << s.ToString();
    shipper.Stop();
    return report;
  }

  std::atomic<bool> readers_stop{false};
  std::vector<std::thread> workers;
  // Primary writers: random single-engine and cross-engine commits over a
  // small key space so the stream carries all record/group shapes.
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&, t] {
      std::mt19937_64 rng(SplitMix64(seed) ^ SplitMix64(500 + t));
      for (int i = 0; i < 100; ++i) {
        auto txn = primary.Begin(IsolationLevel::kSnapshot);
        int nops = 1 + static_cast<int>(rng() % 4);
        bool dead = false;
        for (int op = 0; op < nops && !dead; ++op) {
          const TableHandle& tbl = (rng() & 1) != 0 ? p_stor : p_mem;
          Key key = MakeKey(rng() % 12);
          Status s;
          if (rng() % 10 == 0) {
            s = txn->Delete(tbl, key);
            if (s.IsNotFound()) s = Status::OK();
          } else {
            s = txn->Put(tbl, key,
                         "r" + std::to_string(seed) + "." + std::to_string(t) +
                             "." + std::to_string(i) + "." +
                             std::to_string(op));
          }
          if (!s.ok()) dead = true;
        }
        if (dead) {
          txn->Abort();
          continue;
        }
        (void)txn->Commit();  // CSR aborts are a legal outcome
      }
    });
  }
  // Replica readers: snapshot reads from both engines through the gate,
  // recorded for the replica-mode SI check.
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      std::mt19937_64 rng(SplitMix64(seed) ^ SplitMix64(900 + r));
      std::string v;
      while (!readers_stop.load(std::memory_order_acquire)) {
        auto txn = replica_db.Begin(IsolationLevel::kSnapshot);
        Key key = MakeKey(rng() % 12);
        Status s1 = txn->Get(r_mem, key, &v);
        Status s2 = txn->Get(r_stor, key, &v);
        if ((s1.ok() || s1.IsNotFound()) && (s2.ok() || s2.IsNotFound())) {
          (void)txn->Commit();
        } else {
          txn->Abort();
        }
      }
    });
  }
  // Chaos: sever the channel a few times while the stream is hot — hard
  // kills and mid-frame cuts, at seed-derived instants.
  std::thread chaos([&] {
    std::mt19937_64 rng(SplitMix64(seed) ^ 0xc4a05ull);
    int disruptions = 3 + static_cast<int>(rng() % 3);
    for (int i = 0; i < disruptions; ++i) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(3 + rng() % 20));
      if ((rng() & 1) != 0) {
        replica.KillChannel();
      } else {
        shipper.TestOnlyCutAfterBytes(rng() % 2000);
      }
    }
  });
  for (auto& w : workers) w.join();
  chaos.join();

  // Quiesced: the replica must reach the primary's exact stream positions
  // through however many resumed sessions the chaos forced.
  Lsn mem_lsn = primary.engine(EngineKind::kMem)->CurrentLsn();
  Lsn stor_lsn = primary.engine(EngineKind::kStor)->CurrentLsn();
  bool caught_up = replica.WaitCaughtUp(mem_lsn, stor_lsn, journal.size(),
                                        std::chrono::milliseconds(15'000));
  readers_stop.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();
  if (!caught_up) {
    ADD_FAILURE() << "replication_chaos seed=" << seed
                  << ": replica failed to catch up after channel chaos";
    replica.Stop();
    shipper.Stop();
    return report;
  }

  // Scan both sides; byte-identical is the resume correctness bar.
  FinalStateRows replica_rows[kNumEngines];
  for (int side = 0; side < 2; ++side) {
    Database& db = side == 0 ? primary : replica_db;
    FinalStateRows rows[kNumEngines];
    auto reader = db.Begin(IsolationLevel::kSnapshot);
    for (int e = 0; e < kNumEngines; ++e) {
      const TableHandle& tbl = side == 0 ? (e == 0 ? p_mem : p_stor)
                                         : (e == 0 ? r_mem : r_stor);
      Status s = reader->Scan(tbl, MakeKey(0), 0,
                              [&](const Key& k, const std::string& v) {
                                rows[e][{tbl.local_id, k}] = v;
                                return true;
                              });
      if (!s.ok()) ADD_FAILURE() << "final scan: " << s.ToString();
    }
    (void)reader->Commit();
    if (side == 0) {
      for (int e = 0; e < kNumEngines; ++e) {
        replica_rows[e] = std::move(rows[e]);  // reused below for primary
      }
    } else {
      for (int e = 0; e < kNumEngines; ++e) {
        if (rows[e] != replica_rows[e]) {
          ADD_FAILURE() << "replication_chaos seed=" << seed << ": engine "
                        << e << " replica state diverged from primary ("
                        << rows[e].size() << " vs " << replica_rows[e].size()
                        << " rows)";
        }
        replica_rows[e] = std::move(rows[e]);
      }
    }
  }

  // Merge the two folds (replica ids shifted above every primary id).
  std::vector<TxnHistory> history = primary.recorder()->Fold();
  for (TxnHistory& t : replica_db.recorder()->Fold()) {
    t.session += kSessionFloor;
    t.gtid += kGtidOffset;
    history.push_back(std::move(t));
  }
  std::stable_sort(history.begin(), history.end(),
                   [](const TxnHistory& a, const TxnHistory& b) {
                     return a.session != b.session ? a.session < b.session
                                                   : a.seq < b.seq;
                   });

  SiCheckOptions check;
  check.anchor_index = primary.anchor_index();
  check.have_csr_dump = true;
  Timestamp floor = 0;
  for (const auto& m : replica_db.csr().DumpMappings(&floor)) {
    check.csr_mappings.push_back({m.key, m.vmin, m.vmax});
  }
  check.csr_floor = floor;
  check.replica_session_floor = kSessionFloor;
  report = CheckSnapshotIsolation(history, check);
  // Recovered-state-style audit: the replica's final rows must be exactly
  // producible by the primary's acknowledged writer history.
  SiReport audit = CheckRecoveredState(history, replica_rows, check);
  report.violations.insert(report.violations.end(), audit.violations.begin(),
                           audit.violations.end());
  if (!report.ok()) {
    WriteFailureDump("replication_chaos", seed, history, report);
  }
  replica.Stop();
  shipper.Stop();
  return report;
}

// ------------------------------------------------------------ quick gate

void ExpectClean(const ScenarioConfig& cfg, uint64_t seed) {
  SiReport r = RunScenario(cfg, seed);
  EXPECT_TRUE(r.ok()) << cfg.name << " seed=" << seed << "\n" << r.Summary();
  EXPECT_GT(r.txns, 0u);
}

constexpr uint64_t kQuickSeeds[] = {0xA11CE, 0xB0B, 0xC0FFEE, 0xD1CE};

TEST(FuzzScenarioTest, UniformMixFixedSeeds) {
  for (uint64_t s : kQuickSeeds) ExpectClean(UniformMix(), s);
}

TEST(FuzzScenarioTest, AbortStormFixedSeeds) {
  for (uint64_t s : kQuickSeeds) ExpectClean(AbortStorm(), s);
}

TEST(FuzzScenarioTest, EngineSkewFixedSeeds) {
  for (uint64_t s : kQuickSeeds) {
    ExpectClean(EngineSkew(true), s);
    ExpectClean(EngineSkew(false), s);
  }
}

TEST(FuzzScenarioTest, ReadCommittedMixFixedSeeds) {
  for (uint64_t s : kQuickSeeds) ExpectClean(ReadCommittedMix(), s);
}

TEST(FuzzScenarioTest, EvictionPressureFixedSeeds) {
  uint64_t total_fetches = 0, total_waits = 0, total_wb = 0;
  for (uint64_t s : kQuickSeeds) {
    PoolNumbers pool;
    SiReport r = RunScenario(EvictionPressure(), s, &pool);
    EXPECT_TRUE(r.ok()) << "eviction_pressure seed=" << s << "\n"
                        << r.Summary();
    total_fetches += pool.fetches;
    total_waits += pool.flush_waits;
    total_wb += pool.write_backs;
    std::fprintf(stderr, "  seed=%llu fetches=%llu misses=%llu wb=%llu\n",
                 (unsigned long long)s, (unsigned long long)pool.fetches,
                 (unsigned long long)pool.misses,
                 (unsigned long long)pool.write_backs);
  }
  // The scenario must actually churn dirty pages through eviction, or the
  // flush-wait number below is vacuously zero.
  EXPECT_GT(total_wb, 0u);
  // Satellite measurement for the flush-wait thundering-herd question
  // (see DESIGN.md "Buffer pool"): waits per 10k fetches under forced
  // eviction churn.
  double per_10k = total_fetches == 0
                       ? 0.0
                       : 1e4 * static_cast<double>(total_waits) /
                             static_cast<double>(total_fetches);
  ::testing::Test::RecordProperty("flush_waits_per_10k_fetches",
                                  std::to_string(per_10k));
  std::fprintf(stderr,
               "eviction_pressure: %llu fetches, %llu dirty write-backs, "
               "%llu flush waits (%.2f per 10k fetches)\n",
               static_cast<unsigned long long>(total_fetches),
               static_cast<unsigned long long>(total_wb),
               static_cast<unsigned long long>(total_waits), per_10k);
}

TEST(FuzzScenarioTest, CrashDuringCommitFixedSeeds) {
  for (uint64_t s : kQuickSeeds) {
    SiReport r = RunCrashScenario(s);
    EXPECT_TRUE(r.ok()) << "crash_during_commit seed=" << s << "\n"
                        << r.Summary();
  }
}

TEST(FuzzScenarioTest, ReplicationChaosFixedSeeds) {
  for (uint64_t s : kQuickSeeds) {
    SiReport r = RunReplicationChaosScenario(s);
    EXPECT_TRUE(r.ok()) << "replication_chaos seed=" << s << "\n"
                        << r.Summary();
  }
}

// -------------------------------------------------------- slow stress lane

TEST(FuzzScenarioStress, RandomSeedsAllFamilies) {
  int n = 16;
  if (const char* env = std::getenv("SKEENA_FUZZ_SEEDS")) {
    n = std::max(1, std::atoi(env));
  }
  std::random_device rd;
  for (int i = 0; i < n; ++i) {
    uint64_t seed = (static_cast<uint64_t>(rd()) << 32) ^ rd();
    std::fprintf(stderr, "fuzz stress round %d/%d seed=%llu\n", i + 1, n,
                 static_cast<unsigned long long>(seed));
    ExpectClean(UniformMix(), seed);
    ExpectClean(AbortStorm(), seed);
    ExpectClean(EngineSkew(true), seed);
    ExpectClean(EngineSkew(false), seed);
    ExpectClean(ReadCommittedMix(), seed);
    ExpectClean(EvictionPressure(), seed);
    SiReport r = RunCrashScenario(seed);
    EXPECT_TRUE(r.ok()) << "crash_during_commit seed=" << seed << "\n"
                        << r.Summary();
    r = RunReplicationChaosScenario(seed);
    EXPECT_TRUE(r.ok()) << "replication_chaos seed=" << seed << "\n"
                        << r.Summary();
    if (::testing::Test::HasFailure()) break;  // keep the failing seed hot
  }
}

}  // namespace
}  // namespace skeena
