// Pinned-reader torture tests for the unified epoch-based reclamation
// (docs/RECLAMATION.md): a reader pinned on an old snapshot keeps reading
// while writers churn version chains / undo lists, the GC floors advance,
// and retired garbage flows through the EpochManager. The reader must
// always observe exactly its snapshot's values — and, under ASan/TSan,
// must never touch freed memory. These replace the floor-specific tests of
// the deleted two-level published/apply design.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "support/db_fixtures.h"

namespace skeena {
namespace {

using memdb::MemEngine;
using memdb::MemTxn;
using stordb::StorEngine;
using stordb::StorTxn;

constexpr int kKeys = 16;

std::string SeedValue(int k) { return "seed-" + std::to_string(k); }

int TortureMillis() { return test::FullSweep() ? 2000 : 300; }

// ------------------------------------------------------------------ memdb

TEST(MemReclaimTortureTest, PinnedReaderNeverObservesFreedVersions) {
  MemEngine::Options opts;
  opts.enable_logging = false;
  opts.gc_interval = 4;  // advance the floor aggressively
  MemEngine engine(nullptr, opts);
  TableId t = engine.CreateTable("torture");

  std::atomic<uint64_t> gtid{1};
  auto commit_put = [&](int key, const std::string& value) {
    auto txn = engine.Begin(IsolationLevel::kSnapshot);
    if (!engine.Put(txn.get(), t, MakeKey(key), value).ok()) return false;
    uint64_t g = gtid.fetch_add(1);
    if (!engine.PreCommit(txn.get(), g, false).ok()) return false;
    engine.PostCommit(txn.get(), g, false);
    return true;
  };

  // Two generations of seed data, so versions *older* than the pinned
  // snapshot exist and stay prunable while the reader lives.
  for (int k = 0; k < kKeys; ++k) ASSERT_TRUE(commit_put(k, "pre-" + std::to_string(k)));
  for (int k = 0; k < kKeys; ++k) ASSERT_TRUE(commit_put(k, SeedValue(k)));

  // The pinned reader: registered once, then read concurrently with churn.
  auto reader = engine.Begin(IsolationLevel::kSnapshot);
  ASSERT_NE(reader, nullptr);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> churn_commits{0};

  std::vector<std::thread> writers;
  for (int w = 0; w < 3; ++w) {
    writers.emplace_back([&, w] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        int key = static_cast<int>((w * 7 + i) % kKeys);
        if (commit_put(key, "churn-" + std::to_string(i))) {
          churn_commits.fetch_add(1, std::memory_order_relaxed);
        }
        i++;
      }
    });
  }

  // Fresh short-lived readers race registration against floor advances.
  std::thread fresh_reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto txn = engine.Begin(IsolationLevel::kSnapshot);
      std::string v;
      for (int k = 0; k < kKeys; ++k) {
        ASSERT_TRUE(engine.Get(txn.get(), t, MakeKey(k), &v).ok());
        ASSERT_FALSE(v.empty());
      }
      engine.Abort(txn.get());
    }
  });

  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(TortureMillis());
  std::string v;
  uint64_t reads = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    for (int k = 0; k < kKeys; ++k) {
      ASSERT_TRUE(engine.Get(reader.get(), t, MakeKey(k), &v).ok());
      ASSERT_EQ(v, SeedValue(k))
          << "pinned snapshot must keep resolving to its own version";
      reads++;
    }
  }
  stop.store(true);
  for (auto& th : writers) th.join();
  fresh_reader.join();

  EXPECT_GT(reads, 0u);
  EXPECT_GT(churn_commits.load(), 0u);
  // Reclamation must have proceeded *while* the reader stayed pinned: the
  // pre-seed generation (older than the pinned snapshot) and churned
  // intermediates above later floors are unlinked and epoch-freed.
  EXPECT_GT(engine.stats().versions_pruned, 0u);
  EXPECT_GT(engine.epoch().FreedCount(), 0u);
  EXPECT_LE(engine.GcFloor(), reader->begin_ts())
      << "the floor may never pass a registered snapshot";

  // Release the reader; churn a little more so the floor passes its
  // snapshot and the held-back versions drain through the epoch manager.
  engine.Abort(reader.get());
  uint64_t freed_before = engine.epoch().FreedCount();
  for (int i = 0; i < 64; ++i) ASSERT_TRUE(commit_put(i % kKeys, "post"));
  for (int i = 0; i < 4; ++i) engine.epoch().TryAdvance();
  EXPECT_GT(engine.epoch().FreedCount(), freed_before);
}

// ------------------------------------------------------------------ stordb

TEST(StorReclaimTortureTest, PinnedViewNeverObservesFreedUndos) {
  StorEngine::Options opts;
  opts.enable_logging = false;
  opts.purge_interval = 4;  // purge aggressively
  StorEngine engine(nullptr, opts);
  TableId t = engine.CreateTable("torture", 64);

  std::atomic<uint64_t> gtid{1};
  auto commit_put = [&](int key, const std::string& value) {
    auto txn = engine.Begin(IsolationLevel::kSnapshot);
    if (!engine.Put(txn.get(), t, MakeKey(key), value).ok()) return false;
    uint64_t g = gtid.fetch_add(1);
    if (!engine.PreCommit(txn.get(), g, false).ok()) {
      return false;
    }
    engine.PostCommit(txn.get(), g, false);
    return true;
  };

  for (int k = 0; k < kKeys; ++k) ASSERT_TRUE(commit_put(k, SeedValue(k)));

  // The pinned view: materialized by the first read, then held while
  // writers stack undo records on every row and the purge floor advances.
  auto reader = engine.Begin(IsolationLevel::kSnapshot);
  ASSERT_NE(reader, nullptr);
  {
    std::string v;
    ASSERT_TRUE(engine.Get(reader.get(), t, MakeKey(0), &v).ok());
    ASSERT_EQ(v, SeedValue(0));
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> churn_commits{0};

  std::vector<std::thread> writers;
  for (int w = 0; w < 3; ++w) {
    writers.emplace_back([&, w] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        int key = static_cast<int>((w * 5 + i) % kKeys);
        // Lock conflicts abort some churn transactions — fine, retry with
        // the next key; aborted writers exercise the abort retire path.
        if (commit_put(key, "churn-" + std::to_string(i))) {
          churn_commits.fetch_add(1, std::memory_order_relaxed);
        }
        i++;
      }
    });
  }

  std::thread fresh_reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto txn = engine.Begin(IsolationLevel::kSnapshot);
      std::string v;
      for (int k = 0; k < kKeys; ++k) {
        Status s = engine.Get(txn.get(), t, MakeKey(k), &v);
        ASSERT_TRUE(s.ok()) << s.ToString();
        ASSERT_FALSE(v.empty());
      }
      engine.Abort(txn.get());
    }
  });

  // The pinned reader's Gets walk ever-deeper roll chains (current row
  // image back to the seed image) while ripe batches flow to the epoch
  // manager — exactly the unlink-vs-walk race the epoch pin covers.
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(TortureMillis());
  std::string v;
  uint64_t reads = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    for (int k = 0; k < kKeys; ++k) {
      ASSERT_TRUE(engine.Get(reader.get(), t, MakeKey(k), &v).ok());
      ASSERT_EQ(v, SeedValue(k))
          << "pinned view must keep reconstructing its own row images";
      reads++;
    }
  }
  stop.store(true);
  for (auto& th : writers) th.join();
  fresh_reader.join();

  EXPECT_GT(reads, 0u);
  EXPECT_GT(churn_commits.load(), 0u);

  // Release the view, churn more: the floor passes the backlog and the
  // undo batches drain through the epoch manager.
  engine.Abort(reader.get());
  for (int i = 0; i < 256; ++i) commit_put(i % kKeys, "post");
  for (int i = 0; i < 4; ++i) engine.epoch().TryAdvance();
  EXPECT_GT(engine.stats().undo_purged, 0u);
  EXPECT_GT(engine.epoch().FreedCount(), 0u);
}

// Undo batches are intrusive chains (UndoRecord::next_in_txn): a finished
// write transaction hands one head pointer to the pending FIFO, with no
// per-transaction container allocation. This asserts the whole lifecycle
// is leak-free with an allocation count: records drain through purge +
// epoch while running, and exactly zero UndoRecord allocations survive
// the engine (pending FIFO, epoch limbo, and leftover txns included).
TEST(StorReclaimTortureTest, UndoAllocationsDrainToZero) {
  ASSERT_EQ(stordb::UndoRecord::LiveCount(), 0u);
  {
    StorEngine::Options opts;
    opts.enable_logging = false;
    opts.purge_interval = 16;  // let a pending backlog build up
    StorEngine engine(nullptr, opts);
    TableId t = engine.CreateTable("drain", 64);

    uint64_t gtid = 1;
    auto commit_put = [&](int key, const std::string& value) {
      auto txn = engine.Begin(IsolationLevel::kSnapshot);
      ASSERT_TRUE(engine.Put(txn.get(), t, MakeKey(key), value).ok());
      ASSERT_TRUE(engine.PreCommit(txn.get(), gtid, false).ok());
      engine.PostCommit(txn.get(), gtid, false);
      ++gtid;
    };

    // Mixed commits and aborts stack undo records on a few rows; the
    // abort retire path tags batches with the live counter, so they need
    // later commits before the floor passes them.
    for (int i = 0; i < 64; ++i) {
      if (i % 5 == 0) {
        auto txn = engine.Begin(IsolationLevel::kSnapshot);
        ASSERT_TRUE(engine.Put(txn.get(), t, MakeKey(i % 8), "doomed").ok());
        engine.Abort(txn.get());
      } else {
        commit_put(i % 8, "v" + std::to_string(i));
      }
    }
    size_t live_after_churn = stordb::UndoRecord::LiveCount();
    ASSERT_GT(live_after_churn, 0u);

    // No active views: further commits push the purge floor past the
    // backlog and the epoch manager frees the ripe chains while the
    // engine is still running.
    for (int i = 0; i < 64; ++i) commit_put(i % 8, "drain");
    for (int i = 0; i < 4; ++i) engine.epoch().TryAdvance();
    EXPECT_LT(stordb::UndoRecord::LiveCount(), live_after_churn);
    EXPECT_GT(engine.stats().undo_purged, 0u);

    // A transaction destroyed while still holding its batch (never
    // finished) must free it in the StorTxn destructor.
    auto leftover = engine.Begin(IsolationLevel::kSnapshot);
    ASSERT_TRUE(engine.Put(leftover.get(), t, MakeKey(0), "leftover").ok());
    engine.Abort(leftover.get());
  }
  EXPECT_EQ(stordb::UndoRecord::LiveCount(), 0u);
}

// ------------------------------------------------- shared domain (Database)

// One Database-owned epoch domain covers the CSR, memdb versions and
// stordb undos at once: a long-lived cross-engine snapshot transaction
// must keep BOTH engines' floors down (via the anchor registry + CSR
// MinSelectableValue providers) while cross-engine churn retires into the
// shared manager from all three sources.
TEST(SharedDomainTortureTest, CrossEngineReaderStaysConsistentUnderChurn) {
  Database db(test::FastOptions());
  TableHandle mem_t = *db.CreateTable("mem_t", EngineKind::kMem);
  TableHandle stor_t = *db.CreateTable("stor_t", EngineKind::kStor);

  auto commit_pair = [&](int key, uint64_t i) {
    auto txn = db.Begin(IsolationLevel::kSnapshot);
    std::string v = std::to_string(i);
    if (!txn->Put(mem_t, MakeKey(key), v).ok()) return false;
    if (!txn->Put(stor_t, MakeKey(key), v).ok()) return false;
    return txn->Commit().ok();
  };
  for (int k = 0; k < kKeys; ++k) ASSERT_TRUE(commit_pair(k, 0));

  // Long-lived reader: first accesses pin its anchor snapshot and the
  // CSR-selected stordb snapshot; both engines' reclamation must respect
  // them for the transaction's whole lifetime.
  auto reader = db.Begin(IsolationLevel::kSnapshot);
  std::vector<std::string> pinned_mem(kKeys), pinned_stor(kKeys);
  for (int k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(reader->Get(mem_t, MakeKey(k), &pinned_mem[k]).ok());
    ASSERT_TRUE(reader->Get(stor_t, MakeKey(k), &pinned_stor[k]).ok());
    ASSERT_EQ(pinned_mem[k], pinned_stor[k]) << "cross-engine skew";
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      uint64_t i = 1;
      while (!stop.load(std::memory_order_relaxed)) {
        commit_pair(static_cast<int>((w * 3 + i) % kKeys), i);
        i++;
      }
    });
  }

  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(TortureMillis());
  while (std::chrono::steady_clock::now() < deadline) {
    for (int k = 0; k < kKeys; ++k) {
      std::string m, s;
      ASSERT_TRUE(reader->Get(mem_t, MakeKey(k), &m).ok());
      ASSERT_TRUE(reader->Get(stor_t, MakeKey(k), &s).ok());
      ASSERT_EQ(m, pinned_mem[k]) << "snapshot read must be stable";
      ASSERT_EQ(s, pinned_stor[k]) << "snapshot read must be stable";
    }
  }
  stop.store(true);
  for (auto& th : writers) th.join();
  ASSERT_TRUE(reader->Commit().ok());

  // All three retire sources share one domain; churn must have driven it.
  EXPECT_GT(db.epoch().FreedCount(), 0u);
}

}  // namespace
}  // namespace skeena
