#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/active_registry.h"
#include "common/encoding.h"
#include "common/histogram.h"
#include "common/random.h"
#include "common/sharded_counter.h"
#include "common/status.h"

namespace skeena {
namespace {

// ----------------------------------------------------------------- Status

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesMessage) {
  Status s = Status::NotFound("missing row");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: missing row");
}

TEST(StatusTest, AbortFamilies) {
  EXPECT_TRUE(Status::Aborted().IsAnyAbort());
  EXPECT_TRUE(Status::SkeenaAbort().IsAnyAbort());
  EXPECT_TRUE(Status::Deadlock().IsAnyAbort());
  EXPECT_TRUE(Status::TimedOut().IsAnyAbort());
  EXPECT_FALSE(Status::NotFound().IsAnyAbort());
  EXPECT_FALSE(Status::IOError().IsAnyAbort());
}

TEST(StatusTest, SkeenaAbortDistinctFromEngineAbort) {
  // Section 6.9 attributes aborts to Skeena vs engines; the codes must not
  // collapse.
  EXPECT_TRUE(Status::SkeenaAbort().IsSkeenaAbort());
  EXPECT_FALSE(Status::SkeenaAbort().IsAborted());
  EXPECT_FALSE(Status::Aborted().IsSkeenaAbort());
}

TEST(ResultTest, ValueAndStatus) {
  Result<int> ok_result(42);
  ASSERT_TRUE(ok_result.ok());
  EXPECT_EQ(*ok_result, 42);

  Result<int> err(Status::IOError("disk gone"));
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kIOError);
}

// --------------------------------------------------------------- Encoding

TEST(EncodingTest, KeyOrderMatchesIntegerOrder) {
  for (uint64_t a : {0ull, 1ull, 255ull, 256ull, 1ull << 32, ~0ull}) {
    for (uint64_t b : {0ull, 1ull, 255ull, 256ull, 1ull << 32, ~0ull}) {
      EXPECT_EQ(MakeKey(a) < MakeKey(b), a < b) << a << " vs " << b;
    }
  }
}

TEST(EncodingTest, CompositeKeysOrderLexicographically) {
  KeyBuilder b1, b2, b3;
  b1.AppendU16(3).AppendU8(1).AppendU32(100);
  b2.AppendU16(3).AppendU8(1).AppendU32(101);
  b3.AppendU16(3).AppendU8(2).AppendU32(0);
  EXPECT_LT(b1.Build(), b2.Build());
  EXPECT_LT(b2.Build(), b3.Build());
}

TEST(EncodingTest, PrefixIsLowerBoundOfItsRange) {
  // A key with only a prefix set is <= every key sharing that prefix.
  KeyBuilder prefix;
  prefix.AppendU16(7).AppendU8(3);
  KeyBuilder full;
  full.AppendU16(7).AppendU8(3).AppendU32(12345);
  EXPECT_LE(prefix.Build(), full.Build());
  EXPECT_TRUE(KeyHasPrefix(full.Build(), prefix.Build(), 3));
  KeyBuilder other;
  other.AppendU16(7).AppendU8(4);
  EXPECT_FALSE(KeyHasPrefix(other.Build(), prefix.Build(), 3));
}

TEST(EncodingTest, RoundTripU64) {
  Key k = MakeKey(0xdeadbeefcafe1234ull);
  EXPECT_EQ(KeyPrefixU64(k), 0xdeadbeefcafe1234ull);
}

TEST(EncodingTest, HashIsStable) {
  KeyBuilder a, b;
  a.AppendHash64("BARBARBAR");
  b.AppendHash64("BARBARBAR");
  EXPECT_EQ(a.Build(), b.Build());
  KeyBuilder c;
  c.AppendHash64("BARBAROUGHT");
  EXPECT_NE(a.Build(), c.Build());
}

// ----------------------------------------------------------------- Random

TEST(RandomTest, UniformStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = rng.UniformRange(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RandomTest, DeterministicGivenSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, ZipfianSkewsTowardHead) {
  ZipfianGenerator zipf(1000, 0.99, 42);
  std::vector<uint64_t> counts(1000, 0);
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    uint64_t v = zipf.Next();
    ASSERT_LT(v, 1000u);
    counts[v]++;
  }
  // Head items dominate under theta=0.99.
  uint64_t head = 0;
  for (int i = 0; i < 10; ++i) head += counts[i];
  EXPECT_GT(head, kDraws / 4) << "zipf(0.99) head mass too small";
}

TEST(RandomTest, ZipfianUniformWhenThetaZero) {
  ZipfianGenerator zipf(100, 0.0, 43);
  std::vector<uint64_t> counts(100, 0);
  for (int i = 0; i < 100000; ++i) counts[zipf.Next()]++;
  for (int i = 0; i < 100; ++i) {
    EXPECT_GT(counts[i], 500u);
    EXPECT_LT(counts[i], 2000u);
  }
}

TEST(RandomTest, NURandWithinBounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = rng.NURand(255, 0, 999, 123);
    EXPECT_LE(v, 999u);
  }
}

// -------------------------------------------------------------- Histogram

TEST(HistogramTest, PercentilesOrdered) {
  Histogram h;
  for (uint64_t i = 1; i <= 10000; ++i) h.Record(i * 1000);
  EXPECT_EQ(h.count(), 10000u);
  EXPECT_LE(h.Percentile(50), h.Percentile(95));
  EXPECT_LE(h.Percentile(95), h.Percentile(99));
  EXPECT_LE(h.Percentile(99), h.max());
}

TEST(HistogramTest, PercentileApproximatesRank) {
  Histogram h;
  for (uint64_t i = 1; i <= 100000; ++i) h.Record(i);
  // Log-bucketing gives <=6.25% relative error.
  uint64_t p50 = h.Percentile(50);
  EXPECT_GT(p50, 45000u);
  EXPECT_LT(p50, 56000u);
  uint64_t p95 = h.Percentile(95);
  EXPECT_GT(p95, 88000u);
  EXPECT_LT(p95, 103000u);
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a, b;
  a.Record(100);
  b.Record(1000000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 100u);
  EXPECT_EQ(a.max(), 1000000u);
}

TEST(HistogramTest, MeanExact) {
  Histogram h;
  h.Record(10);
  h.Record(20);
  h.Record(30);
  EXPECT_DOUBLE_EQ(h.Mean(), 20.0);
}

// --------------------------------------------------------- ShardedCounter

TEST(ShardedCounterTest, ExactByDefault) {
  ShardedCounter c;
  c.Add(5);
  EXPECT_EQ(c.Read(), 5u);
  c.Add(3);
  EXPECT_EQ(c.Read(), 8u);  // no cache: every Read folds fresh
}

TEST(ShardedCounterTest, CachedReadStalenessIsBounded) {
  constexpr uint64_t kTickNs = 2'000'000;  // 2 ms
  ShardedCounter c(kTickNs);
  c.Add(5);
  EXPECT_EQ(c.Read(), 5u);  // first read: no cache yet, folds fresh
  c.Add(3);
  // Within the tick a read may serve the cached fold — bounded staleness,
  // never below a previously returned value, never above the true total.
  uint64_t mid = c.Read();
  EXPECT_GE(mid, 5u);
  EXPECT_LE(mid, 8u);
  // Past the tick every read must reflect increments older than one tick:
  // the staleness bound, not eventual consistency.
  std::this_thread::sleep_for(std::chrono::nanoseconds(2 * kTickNs));
  EXPECT_EQ(c.Read(), 8u);
}

TEST(ShardedCounterTest, CachedReadMonotoneUnderConcurrency) {
  ShardedCounter c(/*read_cache_ns=*/20'000);
  std::atomic<bool> stop{false};
  std::vector<std::thread> adders;
  for (int t = 0; t < 4; ++t) {
    adders.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) c.Add(1);
    });
  }
  // Several concurrent readers, each checking its own observation
  // sequence: Read() must return the CAS-maxed cache (not a private
  // possibly-stale fold), or a preempted refresher makes the counter
  // appear to run backwards across readers.
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      uint64_t last = 0;
      for (int i = 0; i < 20000; ++i) {
        uint64_t v = c.Read();
        ASSERT_GE(v, last) << "cached fold went backwards";
        last = v;
      }
    });
  }
  for (auto& th : readers) th.join();
  stop.store(true);
  for (auto& th : adders) th.join();
  uint64_t quiesced = c.Read();
  std::this_thread::sleep_for(std::chrono::microseconds(50));
  EXPECT_GE(c.Read(), quiesced);
}

// --------------------------------------------------- ActiveSnapshotRegistry

TEST(ActiveRegistryTest, MinOfRegisteredSnapshots) {
  ActiveSnapshotRegistry reg(16);
  size_t s1 = reg.Acquire();
  size_t s2 = reg.Acquire();
  reg.BeginAcquire(s1);
  reg.SetSnapshot(s1, 100);
  reg.BeginAcquire(s2);
  reg.SetSnapshot(s2, 50);
  EXPECT_EQ(reg.MinActive(999), 50u);
  reg.Release(s2);
  EXPECT_EQ(reg.MinActive(999), 100u);
  reg.Release(s1);
  EXPECT_EQ(reg.MinActive(999), 999u);  // fallback when empty
}

TEST(ActiveRegistryTest, AcquiringSlotsAreWaitedOut) {
  // A slot mid-registration makes the scan wait — ignoring it would let a
  // registrant that read the clock before the scan began slip under the
  // returned minimum (see the class docs). Once the snapshot lands, the
  // scan must report it, not the fallback.
  ActiveSnapshotRegistry reg(16);
  size_t s = reg.Acquire();
  reg.BeginAcquire(s);
  std::thread finisher([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    reg.SetSnapshot(s, 7);
  });
  EXPECT_EQ(reg.MinActive(77), 7u);
  finisher.join();
  reg.Release(s);
}

TEST(ActiveRegistryTest, SlotsRecycledThroughFreeList) {
  ActiveSnapshotRegistry reg(4);
  std::set<size_t> seen;
  for (int i = 0; i < 100; ++i) {
    size_t s = reg.Acquire();
    seen.insert(s);
    reg.BeginAcquire(s);
    reg.SetSnapshot(s, 1);
    reg.Release(s);
  }
  // Sequential acquire/release must reuse a single slot, not claim 100.
  EXPECT_LE(seen.size(), 2u);
}

// Regression: slot claims past the initial capacity used to be guarded by
// an assert() only — compiled out in release builds, slot 1025 of a
// 1024-slot registry silently wrote out of bounds. The registry now grows
// chunk by chunk and MinActive scans across chunk boundaries.
TEST(ActiveRegistryTest, GrowsBeyondInitialCapacity) {
  ActiveSnapshotRegistry reg(4);  // chunk size 4
  std::vector<size_t> slots;
  for (size_t i = 0; i < 100; ++i) {
    size_t s = reg.ClaimSlot();
    EXPECT_EQ(s, i);
    slots.push_back(s);
    reg.BeginAcquire(s);
    reg.SetSnapshot(s, 1000 + static_cast<Timestamp>(i));
  }
  // The oldest snapshot lives in the first chunk, the scan must cross all
  // allocated chunks to find it.
  EXPECT_EQ(reg.MinActive(1), 1000u);
  reg.SetSnapshot(slots[77], 7);  // chunk 19
  EXPECT_EQ(reg.MinActive(1), 7u);
  for (size_t s : slots) reg.Clear(s);
  EXPECT_EQ(reg.MinActive(42), 42u);
}

TEST(ActiveRegistryTest, ConcurrentGrowthWithScans) {
  ActiveSnapshotRegistry reg(2);  // force chunk growth under contention
  std::atomic<bool> stop{false};
  std::vector<std::thread> claimers;
  for (int t = 0; t < 4; ++t) {
    claimers.emplace_back([&, t] {
      for (int i = 0; i < 8; ++i) {
        size_t s = reg.ClaimSlot();
        reg.BeginAcquire(s);
        reg.SetSnapshot(s, 100 + static_cast<Timestamp>(t));
      }
    });
  }
  std::thread scanner([&] {
    while (!stop.load()) {
      Timestamp m = reg.MinActive(5000);
      EXPECT_GE(m, 100u);
    }
  });
  for (auto& th : claimers) th.join();
  stop.store(true);
  scanner.join();
  EXPECT_EQ(reg.MinActive(5000), 100u);
}

#ifdef GTEST_HAS_DEATH_TEST
TEST(ActiveRegistryDeathTest, RegisteringTheSentinelValueFailsLoudly) {
  // kMaxTimestamp doubles as the acquiring sentinel; registering it as a
  // real snapshot would make MinActive's sentinel wait spin for the whole
  // registration lifetime, so it must die loudly instead.
  EXPECT_DEATH(
      {
        ActiveSnapshotRegistry reg(4);
        size_t s = reg.Acquire();
        reg.BeginAcquire(s);
        reg.SetSnapshot(s, ActiveSnapshotRegistry::kAcquiringSentinel);
      },
      "cannot be registered");
}

TEST(ActiveRegistryDeathTest, ExhaustingAbsoluteCapacityFailsLoudly) {
  // Capacity = chunk size * 64 chunks; the claim past it must abort with a
  // diagnostic in every build type instead of writing out of bounds.
  EXPECT_DEATH(
      {
        ActiveSnapshotRegistry reg(1);
        for (int i = 0; i < 70; ++i) reg.ClaimSlot();
      },
      "slot capacity exhausted");
}
#endif

// Regression: Release() used to push the slot into the *releasing* thread's
// TLS cache, spilled back only at thread exit. Under acquire-on-one-thread /
// release-on-another handoff (worker pools), the acquiring thread never saw
// slots come back and claimed fresh ones until the hard capacity abort. The
// cache is now capped and spills excess to the shared pool.
TEST(ActiveRegistryTest, CrossThreadHandoffRecyclesSlots) {
  ActiveSnapshotRegistry reg(2);  // hard capacity 2 * 64 = 128 slots
  std::mutex mu;
  std::condition_variable cv;
  std::deque<size_t> handoff;
  bool done = false;
  std::thread releaser([&] {
    std::unique_lock<std::mutex> lock(mu);
    while (true) {
      cv.wait(lock, [&] { return !handoff.empty() || done; });
      while (!handoff.empty()) {
        size_t s = handoff.front();
        handoff.pop_front();
        lock.unlock();
        reg.Release(s);
        lock.lock();
        cv.notify_all();
      }
      if (done) return;
    }
  });
  std::set<size_t> seen;
  for (int i = 0; i < 1000; ++i) {
    size_t s = reg.Acquire();
    seen.insert(s);
    reg.BeginAcquire(s);
    reg.SetSnapshot(s, 1);
    std::unique_lock<std::mutex> lock(mu);
    handoff.push_back(s);
    cv.notify_all();
    // Bound the slots in flight so recycling has a chance to keep up.
    cv.wait(lock, [&] { return handoff.size() < 4; });
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    done = true;
    cv.notify_all();
  }
  releaser.join();
  // Slots must flow back through the shared spill pool rather than strand
  // in the releaser's TLS cache: total claims stay far below capacity.
  EXPECT_LT(seen.size(), 64u);
}

TEST(ActiveRegistryTest, ConcurrentChurn) {
  ActiveSnapshotRegistry reg(256);
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(t);
      while (!stop.load()) {
        size_t s = reg.Acquire();
        reg.BeginAcquire(s);
        reg.SetSnapshot(s, 10 + rng.Uniform(100));
        reg.Release(s);
      }
    });
  }
  for (int i = 0; i < 1000; ++i) {
    Timestamp m = reg.MinActive(1000);
    EXPECT_GE(m, 10u);  // never below any registered value
  }
  stop.store(true);
  for (auto& th : threads) th.join();
}

}  // namespace
}  // namespace skeena
