#include "common/parking_lot.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace skeena {
namespace {

/// Every case runs against both backends: the futex path (Linux) and the
/// hashed condvar-bucket fallback, which must implement the identical
/// protocol (the backend swap itself is safe here because no thread is
/// parked between cases).
class ParkingLotTest
    : public ::testing::TestWithParam<ParkingLot::Backend> {
 protected:
  void SetUp() override {
#if !defined(__linux__)
    if (GetParam() == ParkingLot::Backend::kFutex) {
      GTEST_SKIP() << "futex backend is Linux-only";
    }
#endif
    previous_ = ParkingLot::backend();
    ParkingLot::SetBackendForTest(GetParam());
  }
  void TearDown() override { ParkingLot::SetBackendForTest(previous_); }

 private:
  ParkingLot::Backend previous_ = ParkingLot::Backend::kFutex;
};

TEST_P(ParkingLotTest, ParkReturnsImmediatelyWhenWordAlreadyMoved) {
  std::atomic<uint32_t> word{1};
  ParkingLot::Stats before = ParkingLot::stats();
  ParkingLot::Park(word, 0);  // must not block: word != expected
  ParkingLot::Stats after = ParkingLot::stats();
  EXPECT_GT(after.immediate_parks, before.immediate_parks);
}

TEST_P(ParkingLotTest, WakeAllReleasesEveryParkedThread) {
  std::atomic<uint32_t> word{0};
  std::atomic<int> entered{0};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      entered.fetch_add(1);
      // Spurious wakes just re-enter the loop; only the word release exits.
      while (word.load(std::memory_order_acquire) == 0) {
        ParkingLot::Park(word, 0);
      }
    });
  }
  while (entered.load() < kThreads) std::this_thread::yield();
  // Give the threads a moment to actually park (not required for
  // correctness — an early WakeAll is simply a no-op and the parks return
  // immediately on the changed word).
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  word.store(1, std::memory_order_release);
  ParkingLot::WakeAll(word);
  for (auto& th : threads) th.join();  // completion == no lost wakeup
}

// Park-vs-unpark ordering: an eventcount-style ping-pong where each round
// re-reads the word before parking. A waker that bumps the word between
// the read and the park must make that park return immediately — any lost
// wakeup deadlocks the test (caught by the suite timeout).
TEST_P(ParkingLotTest, NoLostWakeupUnderRapidWakeRaces) {
  constexpr uint32_t kRounds = 5000;
  std::atomic<uint32_t> word{0};
  std::atomic<uint32_t> consumed{0};
  std::thread consumer([&] {
    for (uint32_t i = 1; i <= kRounds; ++i) {
      while (true) {
        uint32_t cur = word.load(std::memory_order_acquire);
        if (cur >= i) break;
        ParkingLot::Park(word, cur);
      }
      consumed.store(i, std::memory_order_release);
    }
  });
  for (uint32_t i = 0; i < kRounds; ++i) {
    word.fetch_add(1, std::memory_order_seq_cst);
    ParkingLot::WakeAll(word);
  }
  consumer.join();
  EXPECT_EQ(consumed.load(), kRounds);
}

TEST_P(ParkingLotTest, WakeOneReleasesAtLeastOneWaiter) {
  std::atomic<uint32_t> word{0};
  std::atomic<int> released{0};
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      while (word.load(std::memory_order_acquire) == 0) {
        ParkingLot::Park(word, 0);
      }
      released.fetch_add(1);
      // Baton pattern: WakeOne releases a single waiter, which passes the
      // wake along — the classic shape for one-at-a-time handoff.
      ParkingLot::WakeOne(word);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  word.store(1, std::memory_order_release);
  ParkingLot::WakeOne(word);
  for (auto& th : threads) th.join();
  EXPECT_EQ(released.load(), kThreads);
}

// Thread churn: waves of short-lived threads park on words that live on
// (and die with) each wave's stack, while a persistent waker hammers a
// shared word. Exercises bucket reuse across addresses and thread exit
// with no parked-state leakage.
TEST_P(ParkingLotTest, ThreadChurnAcrossManyWordsIsSafe) {
  std::atomic<bool> done{false};
  std::atomic<uint32_t> shared{0};
  std::thread waker([&] {
    while (!done.load(std::memory_order_acquire)) {
      shared.fetch_add(1, std::memory_order_seq_cst);
      ParkingLot::WakeAll(shared);
      std::this_thread::yield();
    }
  });
  constexpr int kWaves = 6;
  constexpr int kPerWave = 8;
  for (int wave = 0; wave < kWaves; ++wave) {
    std::vector<std::thread> threads;
    std::atomic<uint32_t> local{0};
    for (int t = 0; t < kPerWave; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < 50; ++i) {
          // Parks on the shared word block at most one waker round.
          ParkingLot::Park(shared, shared.load(std::memory_order_acquire));
          // Parks on the wave-local word never block: the value moved.
          ParkingLot::Park(local, 1u);
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  done.store(true, std::memory_order_release);
  waker.join();
}

// Regression (condvar fallback): more distinct words than buckets forces
// hash collisions, so WakeOne on one word shares a bucket with waiters of
// other words. A fallback that forwards WakeOne to notify_one can hand the
// single notify to a colliding waiter — which re-parks and swallows it,
// stranding the intended thread forever (caught here by the suite
// timeout). The fix wakes the whole bucket; futex queues are per-word and
// pass trivially.
TEST_P(ParkingLotTest, WakeOneIsNotSwallowedByBucketCollisions) {
  constexpr int kWords = 80;  // > the fallback's 64 buckets: pigeonhole
  std::vector<std::atomic<uint32_t>> words(kWords);
  std::atomic<int> started{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kWords; ++i) {
    threads.emplace_back([&, i] {
      started.fetch_add(1);
      while (words[i].load(std::memory_order_acquire) == 0) {
        ParkingLot::Park(words[i], 0);
      }
    });
  }
  while (started.load() < kWords) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  for (int i = 0; i < kWords; ++i) {
    words[i].store(1, std::memory_order_release);
    ParkingLot::WakeOne(words[i]);  // one notify per word, ever
  }
  for (auto& th : threads) th.join();  // completion == no swallowed wake
}

TEST_P(ParkingLotTest, StatsCountParksAndWakes) {
  std::atomic<uint32_t> word{0};
  ParkingLot::Stats before = ParkingLot::stats();
  std::thread waiter([&] {
    while (word.load(std::memory_order_acquire) == 0) {
      ParkingLot::Park(word, 0);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  word.store(1, std::memory_order_release);
  ParkingLot::WakeAll(word);
  waiter.join();
  ParkingLot::Stats after = ParkingLot::stats();
  EXPECT_GT(after.wakes, before.wakes);
  EXPECT_GE(after.parks + after.immediate_parks,
            before.parks + before.immediate_parks);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, ParkingLotTest,
    ::testing::Values(ParkingLot::Backend::kFutex,
                      ParkingLot::Backend::kCondvar),
    [](const ::testing::TestParamInfo<ParkingLot::Backend>& info) {
      return info.param == ParkingLot::Backend::kFutex ? "futex" : "condvar";
    });

}  // namespace
}  // namespace skeena
