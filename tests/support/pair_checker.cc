#include "support/pair_checker.h"

#include <atomic>
#include <sstream>
#include <thread>

#include "common/random.h"

namespace skeena::test {

PairCheckerResult RunPairConsistency(Database& db, const TableHandle& mem_t,
                                     const TableHandle& stor_t,
                                     const PairCheckerConfig& cfg) {
  {
    auto init = db.Begin();
    for (int k = 0; k < cfg.num_pairs; ++k) {
      init->Put(mem_t, MakeKey(k), "0");
      init->Put(stor_t, MakeKey(k), "0");
    }
    init->Commit();
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};
  std::mutex torn_mu;
  PairCheckerResult torn_sample;
  std::atomic<uint64_t> regressions{0};
  std::atomic<uint64_t> commits{0};
  std::atomic<uint64_t> reads{0};
  std::vector<std::atomic<int64_t>> watermark(cfg.num_pairs);
  for (auto& w : watermark) w.store(0);

  std::vector<std::thread> writers;
  writers.reserve(cfg.writer_threads);
  for (int t = 0; t < cfg.writer_threads; ++t) {
    writers.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) * 31 + 7);
      while (!stop.load()) {
        int k = static_cast<int>(rng.Uniform(cfg.num_pairs));
        auto txn = db.Begin(cfg.iso);
        std::string v;
        if (!txn->Get(mem_t, MakeKey(k), &v).ok()) continue;
        std::string next = std::to_string(std::stoll(v) + 1);
        if (!txn->Put(mem_t, MakeKey(k), next).ok()) continue;
        if (!txn->Put(stor_t, MakeKey(k), next).ok()) continue;
        if (txn->Commit().ok()) commits.fetch_add(1);
      }
    });
  }

  std::vector<std::thread> readers;
  readers.reserve(cfg.reader_threads);
  for (int t = 0; t < cfg.reader_threads; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) * 17 + 3);
      // Snapshots begun later by this thread cannot be older, so per-key
      // observations within one reader must be non-decreasing.
      std::vector<int64_t> last_seen(cfg.num_pairs, 0);
      while (!stop.load()) {
        int k = static_cast<int>(rng.Uniform(cfg.num_pairs));
        auto txn = db.Begin(cfg.iso);
        std::string a, b;
        // Randomize which engine is read first (either crossing direction
        // must be safe).
        bool mem_first = rng.Uniform(2) == 0;
        Status s1 = mem_first ? txn->Get(mem_t, MakeKey(k), &a)
                              : txn->Get(stor_t, MakeKey(k), &b);
        Status s2 = mem_first ? txn->Get(stor_t, MakeKey(k), &b)
                              : txn->Get(mem_t, MakeKey(k), &a);
        if (!s1.ok() || !s2.ok()) continue;
        reads.fetch_add(1);
        int64_t av = std::stoll(a), bv = std::stoll(b);
        if (cfg.iso != IsolationLevel::kReadCommitted && av != bv) {
          if (torn.fetch_add(1) == 0) {
            std::lock_guard<std::mutex> lock(torn_mu);
            torn_sample.torn_key = k;
            torn_sample.torn_mem = av;
            torn_sample.torn_stor = bv;
            torn_sample.torn_mem_first = mem_first;
          }
        }
        int64_t lo = std::min(av, bv);
        if (lo < last_seen[k]) regressions.fetch_add(1);
        last_seen[k] = std::max(last_seen[k], lo);
        int64_t prev = watermark[k].load();
        while (lo > prev && !watermark[k].compare_exchange_weak(prev, lo)) {
        }
        txn->Abort();
      }
    });
  }

  std::this_thread::sleep_for(cfg.duration);
  stop.store(true);
  for (auto& th : writers) th.join();
  for (auto& th : readers) th.join();

  PairCheckerResult result;
  result.commits = commits.load();
  result.reads = reads.load();
  result.torn = torn.load();
  result.regressions = regressions.load();
  result.watermark.reserve(cfg.num_pairs);
  for (auto& w : watermark) result.watermark.push_back(w.load());
  result.torn_key = torn_sample.torn_key;
  result.torn_mem = torn_sample.torn_mem;
  result.torn_stor = torn_sample.torn_stor;
  result.torn_mem_first = torn_sample.torn_mem_first;
  return result;
}

bool AuditPairs(Database& db, const TableHandle& mem_t,
                const TableHandle& stor_t, const PairCheckerResult& result,
                std::string* error) {
  auto audit = db.Begin(IsolationLevel::kSnapshot);
  for (size_t k = 0; k < result.watermark.size(); ++k) {
    std::string a, b;
    Status sa = audit->Get(mem_t, MakeKey(k), &a);
    Status sb = audit->Get(stor_t, MakeKey(k), &b);
    std::ostringstream msg;
    if (!sa.ok() || !sb.ok()) {
      msg << "pair " << k << ": audit read failed";
    } else if (a != b) {
      msg << "pair " << k << ": torn at audit (" << a << " vs " << b << ")";
    } else if (std::stoll(a) < result.watermark[k]) {
      msg << "pair " << k << ": final value " << a << " below watermark "
          << result.watermark[k];
    } else {
      continue;
    }
    if (error != nullptr) *error = msg.str();
    return false;
  }
  return true;
}

}  // namespace skeena::test
