#ifndef SKEENA_TESTS_SUPPORT_DB_FIXTURES_H_
#define SKEENA_TESTS_SUPPORT_DB_FIXTURES_H_

// Shared test scaffolding. Every suite that stands up a Database should use
// these helpers instead of re-declaring its own options/fixture so that
// test-wide tuning (log flush intervals, sweep gating) lives in one place.

#include <gtest/gtest.h>

#include "common/env.h"
#include "core/skeena.h"

namespace skeena::test {

/// Database options tuned for tests: log flushers poll every 20 us so group
/// commit drains in microseconds instead of the production default.
inline DatabaseOptions FastOptions(bool skeena_on = true) {
  DatabaseOptions opts;
  opts.enable_skeena = skeena_on;
  opts.mem.log.flush_interval_us = 20;
  opts.stor.log.flush_interval_us = 20;
  return opts;
}

/// True when SKEENA_FULL_SWEEP=1: property sweeps run at paper-validation
/// length instead of the CI-friendly default.
inline bool FullSweep() { return GetEnvBool("SKEENA_FULL_SWEEP", false); }

/// Fixture owning a fast-options Database with one table in each engine.
class CrossEngineTest : public ::testing::Test {
 protected:
  explicit CrossEngineTest(DatabaseOptions opts = FastOptions())
      : db_(opts),
        mem_table_(*db_.CreateTable("mem_t", EngineKind::kMem)),
        stor_table_(*db_.CreateTable("stor_t", EngineKind::kStor)) {}

  Database db_;
  TableHandle mem_table_;
  TableHandle stor_table_;
};

}  // namespace skeena::test

#endif  // SKEENA_TESTS_SUPPORT_DB_FIXTURES_H_
