#ifndef SKEENA_TESTS_SUPPORT_PAIR_CHECKER_H_
#define SKEENA_TESTS_SUPPORT_PAIR_CHECKER_H_

// Cross-engine pair-consistency checker (the observational form of the
// paper's Section 4.8 correctness conditions): writers bump a (mem, stor)
// key pair atomically with identical monotone values; snapshot readers must
// never see the pair torn, and committed values must never move backward.
//
// Extracted from property_test.cc so concurrency suites can reuse one
// audited implementation instead of re-rolling the thread scaffolding.

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "core/skeena.h"

namespace skeena::test {

struct PairCheckerConfig {
  int writer_threads = 2;
  int reader_threads = 2;
  int num_pairs = 4;
  IsolationLevel iso = IsolationLevel::kSnapshot;
  std::chrono::milliseconds duration{250};
};

struct PairCheckerResult {
  uint64_t commits = 0;
  uint64_t reads = 0;
  /// Snapshot reader observed unequal pair halves (never counted at
  /// read-committed, where tearing is permitted).
  uint64_t torn = 0;
  /// A reader thread saw a pair value lower than one it had already
  /// observed for the same key in an earlier (thus older-snapshot) txn.
  uint64_t regressions = 0;
  /// Per-pair high-water mark across all reads.
  std::vector<int64_t> watermark;
  /// Diagnostics for the first torn observation (valid when torn > 0):
  /// pair key, both values, and which engine was read first.
  int torn_key = -1;
  int64_t torn_mem = 0;
  int64_t torn_stor = 0;
  bool torn_mem_first = false;
};

/// Seeds every pair to "0" in one transaction, then runs the configured
/// writers and readers for cfg.duration.
PairCheckerResult RunPairConsistency(Database& db, const TableHandle& mem_t,
                                     const TableHandle& stor_t,
                                     const PairCheckerConfig& cfg);

/// Final audit under a fresh snapshot: every pair equal and >= its
/// watermark. Returns true on success; otherwise fills *error.
bool AuditPairs(Database& db, const TableHandle& mem_t,
                const TableHandle& stor_t, const PairCheckerResult& result,
                std::string* error);

}  // namespace skeena::test

#endif  // SKEENA_TESTS_SUPPORT_PAIR_CHECKER_H_
