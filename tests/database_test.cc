#include "core/database.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "core/skeena.h"

namespace skeena {
namespace {

TEST(DatabaseTest, TablesRouteToDeclaredEngines) {
  Database db{DatabaseOptions{}};
  auto m = db.CreateTable("m", EngineKind::kMem);
  auto s = db.CreateTable("s", EngineKind::kStor);
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(m->engine_index, 0);
  EXPECT_EQ(s->engine_index, 1);
  EXPECT_EQ(db.engine(EngineKind::kMem)->kind(), EngineKind::kMem);
  EXPECT_EQ(db.engine(EngineKind::kStor)->kind(), EngineKind::kStor);
}

TEST(DatabaseTest, DefaultIsolationFlowsToTransactions) {
  DatabaseOptions opts;
  opts.default_isolation = IsolationLevel::kSerializable;
  Database db(opts);
  auto txn = db.Begin();
  EXPECT_EQ(txn->isolation(), IsolationLevel::kSerializable);
  auto txn2 = db.Begin(IsolationLevel::kReadCommitted);
  EXPECT_EQ(txn2->isolation(), IsolationLevel::kReadCommitted);
}

TEST(DatabaseTest, GtidsAreUnique) {
  Database db{DatabaseOptions{}};
  auto a = db.Begin();
  auto b = db.Begin();
  EXPECT_NE(a->gtid(), b->gtid());
}

TEST(DatabaseTest, StatsAggregateEngineCounters) {
  Database db{DatabaseOptions{}};
  auto m = *db.CreateTable("m", EngineKind::kMem);
  auto s = *db.CreateTable("s", EngineKind::kStor);
  for (int i = 0; i < 5; ++i) {
    auto txn = db.Begin();
    ASSERT_TRUE(txn->Put(m, MakeKey(i), "x").ok());
    ASSERT_TRUE(txn->Put(s, MakeKey(i), "x").ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto stats = db.stats();
  EXPECT_EQ(stats.mem.commits, 5u);
  EXPECT_EQ(stats.stor.commits, 5u);
  EXPECT_GE(stats.csr.mappings, 5u);
  EXPECT_EQ(stats.commits_completed, 5u);
}

TEST(DatabaseTest, NameBasedAccessors) {
  Database db{DatabaseOptions{}};
  ASSERT_TRUE(db.CreateTable("inventory", EngineKind::kStor).ok());
  auto txn = db.Begin();
  ASSERT_TRUE(txn->Put("inventory", MakeKey(1), "10 units").ok());
  std::string v;
  ASSERT_TRUE(txn->Get("inventory", MakeKey(1), &v).ok());
  EXPECT_EQ(v, "10 units");
  EXPECT_TRUE(txn->Get("nope", MakeKey(1), &v).IsNotFound());
  ASSERT_TRUE(txn->Commit().ok());
}

TEST(DatabaseTest, CatalogPersistsAcrossReopen) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     "skeena_catalog_test")
                        .string();
  std::filesystem::remove_all(dir);
  DatabaseOptions opts;
  opts.data_dir = dir;
  {
    Database db(opts);
    ASSERT_TRUE(db.CreateTable("alpha", EngineKind::kMem).ok());
    ASSERT_TRUE(db.CreateTable("beta", EngineKind::kStor, 512).ok());
  }
  {
    Database db(opts);
    auto alpha = db.GetTable("alpha");
    auto beta = db.GetTable("beta");
    ASSERT_TRUE(alpha.ok());
    ASSERT_TRUE(beta.ok());
    EXPECT_EQ(alpha->home, EngineKind::kMem);
    EXPECT_EQ(beta->home, EngineKind::kStor);
  }
  std::filesystem::remove_all(dir);
}

TEST(DatabaseTest, ValueSizeLimitEnforcedByStorEngine) {
  Database db{DatabaseOptions{}};
  auto s = *db.CreateTable("s", EngineKind::kStor, /*max_value_size=*/64);
  auto txn = db.Begin();
  std::string big(65, 'x');
  Status st = txn->Put(s, MakeKey(1), big);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  std::string ok_value(64, 'x');
  EXPECT_TRUE(txn->Put(s, MakeKey(1), ok_value).ok());
  EXPECT_TRUE(txn->Commit().ok());
}

TEST(DatabaseTest, ReadCommittedCrossEngineRefresh) {
  Database db{DatabaseOptions{}};
  auto m = *db.CreateTable("m", EngineKind::kMem);
  auto s = *db.CreateTable("s", EngineKind::kStor);
  {
    auto init = db.Begin();
    ASSERT_TRUE(init->Put(m, MakeKey(1), "m1").ok());
    ASSERT_TRUE(init->Put(s, MakeKey(1), "s1").ok());
    ASSERT_TRUE(init->Commit().ok());
  }
  auto rc = db.Begin(IsolationLevel::kReadCommitted);
  std::string v;
  ASSERT_TRUE(rc->Get(m, MakeKey(1), &v).ok());
  ASSERT_TRUE(rc->Get(s, MakeKey(1), &v).ok());
  EXPECT_EQ(v, "s1");
  {
    auto w = db.Begin();
    ASSERT_TRUE(w->Put(m, MakeKey(1), "m2").ok());
    ASSERT_TRUE(w->Put(s, MakeKey(1), "s2").ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  // Read committed: both engines refresh per access.
  ASSERT_TRUE(rc->Get(m, MakeKey(1), &v).ok());
  EXPECT_EQ(v, "m2");
  ASSERT_TRUE(rc->Get(s, MakeKey(1), &v).ok());
  EXPECT_EQ(v, "s2");
}

TEST(DatabaseTest, SnapshotTransactionsDoNotRefresh) {
  Database db{DatabaseOptions{}};
  auto s = *db.CreateTable("s", EngineKind::kStor);
  {
    auto init = db.Begin();
    ASSERT_TRUE(init->Put(s, MakeKey(1), "v1").ok());
    ASSERT_TRUE(init->Commit().ok());
  }
  auto si = db.Begin(IsolationLevel::kSnapshot);
  std::string v;
  ASSERT_TRUE(si->Get(s, MakeKey(1), &v).ok());
  {
    auto w = db.Begin();
    ASSERT_TRUE(w->Put(s, MakeKey(1), "v2").ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  ASSERT_TRUE(si->Get(s, MakeKey(1), &v).ok());
  EXPECT_EQ(v, "v1");
}

TEST(DatabaseTest, ManySequentialCrossTransactions) {
  Database db{DatabaseOptions{}};
  auto m = *db.CreateTable("m", EngineKind::kMem);
  auto s = *db.CreateTable("s", EngineKind::kStor);
  for (int i = 0; i < 500; ++i) {
    auto txn = db.Begin();
    ASSERT_TRUE(txn->Put(m, MakeKey(i % 10), std::to_string(i)).ok());
    ASSERT_TRUE(txn->Put(s, MakeKey(i % 10), std::to_string(i)).ok());
    ASSERT_TRUE(txn->Commit().ok()) << "iteration " << i;
  }
  auto r = db.Begin();
  std::string mv, sv;
  ASSERT_TRUE(r->Get(m, MakeKey(9), &mv).ok());
  ASSERT_TRUE(r->Get(s, MakeKey(9), &sv).ok());
  EXPECT_EQ(mv, sv);
  EXPECT_EQ(mv, "499");
}

TEST(DatabaseTest, MemGcPrunesDuringCrossWorkload) {
  DatabaseOptions opts;
  opts.mem.gc_interval = 8;
  Database db(opts);
  auto m = *db.CreateTable("m", EngineKind::kMem);
  for (int i = 0; i < 500; ++i) {
    auto txn = db.Begin();
    ASSERT_TRUE(txn->Put(m, MakeKey(1), std::to_string(i)).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  EXPECT_GT(db.stats().mem.versions_pruned, 100u);
}

}  // namespace
}  // namespace skeena
