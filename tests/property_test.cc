// Property-based sweeps (TEST_P) over randomized cross-engine histories.
//
// Core invariant ("pair consistency"): writers update a (mem, stor) key
// pair atomically with identical monotone values; any snapshot reader must
// observe equal values for the pair, and values must never move backward
// across readers ordered by commit time. This is exactly what the
// correctness conditions of paper Section 4.8 (DSI Rules 1-8) guarantee
// observationally.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/skeena.h"

namespace skeena {
namespace {

struct SweepParam {
  int writer_threads;
  int reader_threads;
  int num_pairs;
  IsolationLevel iso;
  EngineKind anchor;
  size_t csr_capacity;
};

std::string ParamName(const ::testing::TestParamInfo<SweepParam>& info) {
  const SweepParam& p = info.param;
  std::string s = "w" + std::to_string(p.writer_threads) + "r" +
                  std::to_string(p.reader_threads) + "k" +
                  std::to_string(p.num_pairs) + "_" +
                  std::string(IsolationLevelToString(p.iso)) + "_anchor" +
                  std::string(EngineKindToString(p.anchor)) + "_cap" +
                  std::to_string(p.csr_capacity);
  for (char& c : s) {
    if (c == '-') c = '_';
  }
  return s;
}

class CrossEngineConsistencySweep
    : public ::testing::TestWithParam<SweepParam> {};

TEST_P(CrossEngineConsistencySweep, PairsNeverTorn) {
  const SweepParam& p = GetParam();
  DatabaseOptions opts;
  opts.anchor = p.anchor;
  opts.csr.partition_capacity = p.csr_capacity;
  opts.csr.recycle_period = 500;
  opts.mem.log.flush_interval_us = 20;
  opts.stor.log.flush_interval_us = 20;
  Database db(opts);
  auto mem_t = *db.CreateTable("m", EngineKind::kMem);
  auto stor_t = *db.CreateTable("s", EngineKind::kStor);
  {
    auto init = db.Begin();
    for (int k = 0; k < p.num_pairs; ++k) {
      ASSERT_TRUE(init->Put(mem_t, MakeKey(k), "0").ok());
      ASSERT_TRUE(init->Put(stor_t, MakeKey(k), "0").ok());
    }
    ASSERT_TRUE(init->Commit().ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};
  std::atomic<uint64_t> regressions{0};
  std::atomic<uint64_t> commits{0};
  std::atomic<uint64_t> reads{0};

  std::vector<std::thread> writers;
  for (int t = 0; t < p.writer_threads; ++t) {
    writers.emplace_back([&, t] {
      Rng rng(t * 31 + 7);
      while (!stop.load()) {
        int k = static_cast<int>(rng.Uniform(p.num_pairs));
        auto txn = db.Begin(p.iso);
        std::string v;
        if (!txn->Get(mem_t, MakeKey(k), &v).ok()) continue;
        std::string next = std::to_string(std::stoll(v) + 1);
        if (!txn->Put(mem_t, MakeKey(k), next).ok()) continue;
        if (!txn->Put(stor_t, MakeKey(k), next).ok()) continue;
        if (txn->Commit().ok()) commits.fetch_add(1);
      }
    });
  }

  std::vector<std::thread> readers;
  // Per-pair high-water marks across reads (monotonicity check).
  std::vector<std::atomic<int64_t>> watermark(p.num_pairs);
  for (auto& w : watermark) w.store(0);
  for (int t = 0; t < p.reader_threads; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(t * 17 + 3);
      while (!stop.load()) {
        int k = static_cast<int>(rng.Uniform(p.num_pairs));
        auto txn = db.Begin(p.iso);
        std::string a, b;
        // Randomize which engine is read first (either crossing
        // direction must be safe).
        bool mem_first = rng.Uniform(2) == 0;
        Status s1 = mem_first ? txn->Get(mem_t, MakeKey(k), &a)
                              : txn->Get(stor_t, MakeKey(k), &b);
        Status s2 = mem_first ? txn->Get(stor_t, MakeKey(k), &b)
                              : txn->Get(mem_t, MakeKey(k), &a);
        if (!s1.ok() || !s2.ok()) continue;
        reads.fetch_add(1);
        int64_t av = std::stoll(a), bv = std::stoll(b);
        if (p.iso != IsolationLevel::kReadCommitted && av != bv) {
          torn.fetch_add(1);
        }
        // Committed state never moves backward.
        int64_t lo = std::min(av, bv);
        int64_t prev = watermark[k].load();
        while (lo > prev && !watermark[k].compare_exchange_weak(prev, lo)) {
        }
        txn->Abort();
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(1500));
  stop.store(true);
  for (auto& th : writers) th.join();
  for (auto& th : readers) th.join();

  EXPECT_GT(commits.load(), 20u) << "no progress";
  EXPECT_GT(reads.load(), 20u);
  EXPECT_EQ(torn.load(), 0u) << "snapshot saw a torn cross-engine pair";
  EXPECT_EQ(regressions.load(), 0u);

  // Final audit: all pairs equal and >= watermark.
  auto audit = db.Begin(IsolationLevel::kSnapshot);
  for (int k = 0; k < p.num_pairs; ++k) {
    std::string a, b;
    ASSERT_TRUE(audit->Get(mem_t, MakeKey(k), &a).ok());
    ASSERT_TRUE(audit->Get(stor_t, MakeKey(k), &b).ok());
    EXPECT_EQ(a, b) << "pair " << k;
    EXPECT_GE(std::stoll(a), watermark[k].load()) << "pair " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrossEngineConsistencySweep,
    ::testing::Values(
        // Baseline SI, mem anchor.
        SweepParam{2, 2, 4, IsolationLevel::kSnapshot, EngineKind::kMem,
                   1000},
        // High contention: single pair.
        SweepParam{4, 2, 1, IsolationLevel::kSnapshot, EngineKind::kMem,
                   1000},
        // Serializable.
        SweepParam{2, 2, 4, IsolationLevel::kSerializable, EngineKind::kMem,
                   1000},
        // Tiny CSR partitions: constant sealing + recycling under load.
        SweepParam{4, 2, 8, IsolationLevel::kSnapshot, EngineKind::kMem, 8},
        // Anchor ablation: storage engine anchors the CSR.
        SweepParam{2, 2, 4, IsolationLevel::kSnapshot, EngineKind::kStor,
                   1000},
        // Wider fan-out.
        SweepParam{6, 4, 16, IsolationLevel::kSnapshot, EngineKind::kMem,
                   1000}),
    ParamName);

// Serializable cross-engine histories must be equivalent to some serial
// order. We check a classic necessary condition cheaply: under the
// "doubling" workload (each txn doubles one pair member and increments the
// other), torn observations or lost updates would break the algebraic
// relation between the two engines' values.
class SerializableSweep : public ::testing::TestWithParam<int> {};

TEST_P(SerializableSweep, DisjointIncrementsAreExact) {
  int threads = GetParam();
  DatabaseOptions opts;
  opts.mem.log.flush_interval_us = 20;
  opts.stor.log.flush_interval_us = 20;
  Database db(opts);
  auto mem_t = *db.CreateTable("m", EngineKind::kMem);
  auto stor_t = *db.CreateTable("s", EngineKind::kStor);
  {
    auto init = db.Begin();
    ASSERT_TRUE(init->Put(mem_t, MakeKey(0), "0").ok());
    ASSERT_TRUE(init->Put(stor_t, MakeKey(0), "0").ok());
    ASSERT_TRUE(init->Commit().ok());
  }
  constexpr int kPerThread = 40;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread;) {
        auto txn = db.Begin(IsolationLevel::kSerializable);
        std::string mv, sv;
        if (!txn->Get(mem_t, MakeKey(0), &mv).ok()) continue;
        if (!txn->Get(stor_t, MakeKey(0), &sv).ok()) continue;
        if (std::stoll(mv) != std::stoll(sv)) {
          FAIL() << "serializable read saw unequal pair";
        }
        if (!txn->Put(mem_t, MakeKey(0), std::to_string(std::stoll(mv) + 1))
                 .ok())
          continue;
        if (!txn->Put(stor_t, MakeKey(0), std::to_string(std::stoll(sv) + 1))
                 .ok())
          continue;
        if (txn->Commit().ok()) i++;
      }
    });
  }
  for (auto& th : workers) th.join();
  auto reader = db.Begin();
  std::string mv, sv;
  ASSERT_TRUE(reader->Get(mem_t, MakeKey(0), &mv).ok());
  ASSERT_TRUE(reader->Get(stor_t, MakeKey(0), &sv).ok());
  EXPECT_EQ(std::stoll(mv), threads * kPerThread);
  EXPECT_EQ(mv, sv);
}

INSTANTIATE_TEST_SUITE_P(Threads, SerializableSweep,
                         ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace skeena
