// Property-based sweeps (TEST_P) over randomized cross-engine histories.
//
// Core invariant ("pair consistency"): writers update a (mem, stor) key
// pair atomically with identical monotone values; any snapshot reader must
// observe equal values for the pair, and values must never move backward
// across readers ordered by commit time. This is exactly what the
// correctness conditions of paper Section 4.8 (DSI Rules 1-8) guarantee
// observationally. The checker itself lives in tests/support/pair_checker.h.
//
// The default sweep is CI-sized (short durations, trimmed parameter grid).
// Set SKEENA_FULL_SWEEP=1 for the paper-validation run: every parameter
// point, longer mixing time, and higher commit quotas.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/skeena.h"
#include "support/db_fixtures.h"
#include "support/pair_checker.h"

namespace skeena {
namespace {

using test::FullSweep;
using test::PairCheckerConfig;
using test::PairCheckerResult;

struct SweepParam {
  int writer_threads;
  int reader_threads;
  int num_pairs;
  IsolationLevel iso;
  EngineKind anchor;
  size_t csr_capacity;
  /// Parameter points marked full-only GTEST_SKIP unless SKEENA_FULL_SWEEP=1.
  bool full_only;
};

std::string ParamName(const ::testing::TestParamInfo<SweepParam>& info) {
  const SweepParam& p = info.param;
  std::string s = "w" + std::to_string(p.writer_threads) + "r" +
                  std::to_string(p.reader_threads) + "k" +
                  std::to_string(p.num_pairs) + "_" +
                  std::string(IsolationLevelToString(p.iso)) + "_anchor" +
                  std::string(EngineKindToString(p.anchor)) + "_cap" +
                  std::to_string(p.csr_capacity);
  for (char& c : s) {
    if (c == '-') c = '_';
  }
  return s;
}

class CrossEngineConsistencySweep
    : public ::testing::TestWithParam<SweepParam> {};

TEST_P(CrossEngineConsistencySweep, PairsNeverTorn) {
  const SweepParam& p = GetParam();
  if (p.full_only && !FullSweep()) {
    GTEST_SKIP() << "set SKEENA_FULL_SWEEP=1 to run this parameter point";
  }
  DatabaseOptions opts = test::FastOptions();
  opts.anchor = p.anchor;
  opts.csr.partition_capacity = p.csr_capacity;
  opts.csr.recycle_period = 500;
  Database db(opts);
  auto mem_t = *db.CreateTable("m", EngineKind::kMem);
  auto stor_t = *db.CreateTable("s", EngineKind::kStor);

  PairCheckerConfig cfg;
  cfg.writer_threads = p.writer_threads;
  cfg.reader_threads = p.reader_threads;
  cfg.num_pairs = p.num_pairs;
  cfg.iso = p.iso;
  cfg.duration = std::chrono::milliseconds(FullSweep() ? 1500 : 250);
  PairCheckerResult r = test::RunPairConsistency(db, mem_t, stor_t, cfg);

  const uint64_t quota = FullSweep() ? 20 : 5;
  EXPECT_GT(r.commits, quota) << "no progress";
  EXPECT_GT(r.reads, quota);
  EXPECT_EQ(r.torn, 0u) << "snapshot saw a torn cross-engine pair: key "
                        << r.torn_key << " mem=" << r.torn_mem
                        << " stor=" << r.torn_stor << " (read "
                        << (r.torn_mem_first ? "mem" : "stor") << " first)";
  EXPECT_EQ(r.regressions, 0u) << "a reader observed state moving backward";

  std::string error;
  EXPECT_TRUE(test::AuditPairs(db, mem_t, stor_t, r, &error)) << error;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrossEngineConsistencySweep,
    ::testing::Values(
        // Baseline SI, mem anchor.
        SweepParam{2, 2, 4, IsolationLevel::kSnapshot, EngineKind::kMem, 1000,
                   false},
        // High contention: single pair.
        SweepParam{4, 2, 1, IsolationLevel::kSnapshot, EngineKind::kMem, 1000,
                   true},
        // Serializable.
        SweepParam{2, 2, 4, IsolationLevel::kSerializable, EngineKind::kMem,
                   1000, false},
        // Tiny CSR partitions: constant sealing + recycling under load.
        SweepParam{4, 2, 8, IsolationLevel::kSnapshot, EngineKind::kMem, 8,
                   false},
        // Anchor ablation: storage engine anchors the CSR.
        SweepParam{2, 2, 4, IsolationLevel::kSnapshot, EngineKind::kStor,
                   1000, false},
        // Wider fan-out.
        SweepParam{6, 4, 16, IsolationLevel::kSnapshot, EngineKind::kMem,
                   1000, true}),
    ParamName);

// Serializable cross-engine histories must be equivalent to some serial
// order. We check a classic necessary condition cheaply: under the
// "doubling" workload (each txn doubles one pair member and increments the
// other), torn observations or lost updates would break the algebraic
// relation between the two engines' values.
class SerializableSweep : public ::testing::TestWithParam<int> {};

TEST_P(SerializableSweep, DisjointIncrementsAreExact) {
  int threads = GetParam();
  if (threads > 4 && !FullSweep()) {
    GTEST_SKIP() << "set SKEENA_FULL_SWEEP=1 to run the wide thread counts";
  }
  Database db(test::FastOptions());
  auto mem_t = *db.CreateTable("m", EngineKind::kMem);
  auto stor_t = *db.CreateTable("s", EngineKind::kStor);
  {
    auto init = db.Begin();
    ASSERT_TRUE(init->Put(mem_t, MakeKey(0), "0").ok());
    ASSERT_TRUE(init->Put(stor_t, MakeKey(0), "0").ok());
    ASSERT_TRUE(init->Commit().ok());
  }
  const int per_thread = FullSweep() ? 40 : 12;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < per_thread;) {
        auto txn = db.Begin(IsolationLevel::kSerializable);
        std::string mv, sv;
        if (!txn->Get(mem_t, MakeKey(0), &mv).ok()) continue;
        if (!txn->Get(stor_t, MakeKey(0), &sv).ok()) continue;
        if (std::stoll(mv) != std::stoll(sv)) {
          FAIL() << "serializable read saw unequal pair";
        }
        if (!txn->Put(mem_t, MakeKey(0), std::to_string(std::stoll(mv) + 1))
                 .ok())
          continue;
        if (!txn->Put(stor_t, MakeKey(0), std::to_string(std::stoll(sv) + 1))
                 .ok())
          continue;
        if (txn->Commit().ok()) i++;
      }
    });
  }
  for (auto& th : workers) th.join();
  auto reader = db.Begin();
  std::string mv, sv;
  ASSERT_TRUE(reader->Get(mem_t, MakeKey(0), &mv).ok());
  ASSERT_TRUE(reader->Get(stor_t, MakeKey(0), &sv).ok());
  EXPECT_EQ(std::stoll(mv), threads * per_thread);
  EXPECT_EQ(mv, sv);
}

INSTANTIATE_TEST_SUITE_P(Threads, SerializableSweep,
                         ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace skeena
