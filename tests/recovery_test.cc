// Cross-engine durability and recovery (paper Section 4.6): each engine
// recovers from its own log; cross-engine transactions are rolled back
// unless their commit-end record is durable in *both* logs.

#include <gtest/gtest.h>

#include <filesystem>

#include "core/skeena.h"
#include "log/log_manager.h"
#include "log/segmented_device.h"

namespace skeena {
namespace {

class RecoveryTest : public ::testing::Test {
 protected:
  RecoveryTest() {
    dir_ = (std::filesystem::temp_directory_path() /
            ("skeena_recovery_" +
             std::to_string(::testing::UnitTest::GetInstance()
                                ->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name()))
               .string();
    std::filesystem::remove_all(dir_);
  }
  ~RecoveryTest() override { std::filesystem::remove_all(dir_); }

  DatabaseOptions FileOptions() {
    DatabaseOptions opts;
    opts.data_dir = dir_;
    opts.mem.log.flush_interval_us = 20;
    opts.stor.log.flush_interval_us = 20;
    return opts;
  }

  std::string dir_;
};

TEST_F(RecoveryTest, CommittedCrossTxnSurvivesRestart) {
  {
    Database db(FileOptions());
    auto mem_t = *db.CreateTable("m", EngineKind::kMem);
    auto stor_t = *db.CreateTable("s", EngineKind::kStor);
    auto txn = db.Begin();
    ASSERT_TRUE(txn->Put(mem_t, MakeKey(1), "mem-data").ok());
    ASSERT_TRUE(txn->Put(stor_t, MakeKey(1), "stor-data").ok());
    ASSERT_TRUE(txn->Commit().ok());  // waits for both logs durable
  }
  {
    Database db(FileOptions());  // catalog reloaded from disk
    ASSERT_TRUE(db.Recover().ok());
    auto mem_t = *db.GetTable("m");
    auto stor_t = *db.GetTable("s");
    auto reader = db.Begin();
    std::string v;
    ASSERT_TRUE(reader->Get(mem_t, MakeKey(1), &v).ok());
    EXPECT_EQ(v, "mem-data");
    ASSERT_TRUE(reader->Get(stor_t, MakeKey(1), &v).ok());
    EXPECT_EQ(v, "stor-data");
  }
}

TEST_F(RecoveryTest, ManyTransactionsReplayInOrder) {
  {
    Database db(FileOptions());
    auto mem_t = *db.CreateTable("m", EngineKind::kMem);
    auto stor_t = *db.CreateTable("s", EngineKind::kStor);
    for (int i = 0; i < 50; ++i) {
      auto txn = db.Begin();
      ASSERT_TRUE(txn->Put(mem_t, MakeKey(i % 7), std::to_string(i)).ok());
      ASSERT_TRUE(txn->Put(stor_t, MakeKey(i % 7), std::to_string(i)).ok());
      ASSERT_TRUE(txn->Commit().ok());
    }
  }
  {
    Database db(FileOptions());
    ASSERT_TRUE(db.Recover().ok());
    auto mem_t = *db.GetTable("m");
    auto stor_t = *db.GetTable("s");
    auto reader = db.Begin();
    for (int k = 0; k < 7; ++k) {
      // Last writer of key k is the largest i < 50 with i % 7 == k.
      int last = 49 - ((49 - k) % 7);
      std::string v;
      ASSERT_TRUE(reader->Get(mem_t, MakeKey(k), &v).ok());
      EXPECT_EQ(v, std::to_string(last)) << "mem key " << k;
      ASSERT_TRUE(reader->Get(stor_t, MakeKey(k), &v).ok());
      EXPECT_EQ(v, std::to_string(last)) << "stor key " << k;
    }
  }
}

TEST_F(RecoveryTest, PartiallyCommittedCrossTxnRolledBack) {
  // Crash between the two post-commits: the mem log carries commit-end,
  // the stor log does not. Recovery must roll back BOTH sides.
  {
    Database db(FileOptions());
    auto mem_t = *db.CreateTable("m", EngineKind::kMem);
    auto stor_t = *db.CreateTable("s", EngineKind::kStor);

    // A fully committed transaction for contrast.
    auto ok_txn = db.Begin();
    ASSERT_TRUE(ok_txn->Put(mem_t, MakeKey(1), "keep-m").ok());
    ASSERT_TRUE(ok_txn->Put(stor_t, MakeKey(1), "keep-s").ok());
    ASSERT_TRUE(ok_txn->Commit().ok());

    // Drive the "crashing" transaction manually to stop mid-commit.
    EngineIface* mem = db.engine(0);
    EngineIface* stor = db.engine(1);
    GlobalTxnId gtid = db.NextGtid();
    auto t_mem = mem->Begin(IsolationLevel::kSnapshot, kMaxTimestamp);
    auto t_stor = stor->Begin(IsolationLevel::kSnapshot, kMaxTimestamp);
    ASSERT_TRUE(
        mem->Put(t_mem.get(), (*db.GetTable("m")).local_id, MakeKey(2),
                 "torn-m")
            .ok());
    ASSERT_TRUE(
        stor->Put(t_stor.get(), (*db.GetTable("s")).local_id, MakeKey(2),
                  "torn-s")
            .ok());
    Timestamp cts;
    ASSERT_TRUE(mem->PreCommit(t_mem.get(), gtid, true, &cts).ok());
    ASSERT_TRUE(stor->PreCommit(t_stor.get(), gtid, true, &cts).ok());
    // Post-commit ONLY the mem side; "crash" before the stor side.
    mem->PostCommit(t_mem.get(), gtid, true);
    mem->FlushLog();
    stor->FlushLog();
    // The stor sub-transaction is intentionally leaked as "in flight";
    // roll it back so the Database destructor is clean, but its commit-end
    // never reaches the log.
    stor->Abort(t_stor.get());
  }
  {
    Database db(FileOptions());
    ASSERT_TRUE(db.Recover().ok());
    auto mem_t = *db.GetTable("m");
    auto stor_t = *db.GetTable("s");
    auto reader = db.Begin();
    std::string v;
    ASSERT_TRUE(reader->Get(mem_t, MakeKey(1), &v).ok());
    EXPECT_EQ(v, "keep-m");
    ASSERT_TRUE(reader->Get(stor_t, MakeKey(1), &v).ok());
    EXPECT_EQ(v, "keep-s");
    EXPECT_TRUE(reader->Get(mem_t, MakeKey(2), &v).IsNotFound())
        << "mem half of the torn cross-engine txn must be rolled back";
    EXPECT_TRUE(reader->Get(stor_t, MakeKey(2), &v).IsNotFound())
        << "stor half must not appear either";
  }
}

TEST_F(RecoveryTest, SingleEngineTxnsUnaffectedByCrossRollback) {
  {
    Database db(FileOptions());
    auto mem_t = *db.CreateTable("m", EngineKind::kMem);
    auto stor_t = *db.CreateTable("s", EngineKind::kStor);
    // Single-engine commits interleaved with a torn cross txn.
    auto a = db.Begin();
    ASSERT_TRUE(a->Put(mem_t, MakeKey(10), "solo-m").ok());
    ASSERT_TRUE(a->Commit().ok());
    auto b = db.Begin();
    ASSERT_TRUE(b->Put(stor_t, MakeKey(10), "solo-s").ok());
    ASSERT_TRUE(b->Commit().ok());

    EngineIface* mem = db.engine(0);
    GlobalTxnId gtid = db.NextGtid();
    auto t_mem = mem->Begin(IsolationLevel::kSnapshot, kMaxTimestamp);
    ASSERT_TRUE(mem->Put(t_mem.get(), mem_t.local_id, MakeKey(11), "torn")
                    .ok());
    Timestamp cts;
    ASSERT_TRUE(mem->PreCommit(t_mem.get(), gtid, true, &cts).ok());
    mem->PostCommit(t_mem.get(), gtid, true);  // cross, but stor never logs
    mem->FlushLog();
  }
  {
    Database db(FileOptions());
    ASSERT_TRUE(db.Recover().ok());
    auto reader = db.Begin();
    std::string v;
    ASSERT_TRUE(reader->Get(*db.GetTable("m"), MakeKey(10), &v).ok());
    EXPECT_EQ(v, "solo-m");
    ASSERT_TRUE(reader->Get(*db.GetTable("s"), MakeKey(10), &v).ok());
    EXPECT_EQ(v, "solo-s");
    EXPECT_TRUE(reader->Get(*db.GetTable("m"), MakeKey(11), &v).IsNotFound());
  }
}

TEST_F(RecoveryTest, RecoveredDatabaseAcceptsNewTransactions) {
  {
    Database db(FileOptions());
    auto mem_t = *db.CreateTable("m", EngineKind::kMem);
    auto stor_t = *db.CreateTable("s", EngineKind::kStor);
    auto txn = db.Begin();
    ASSERT_TRUE(txn->Put(mem_t, MakeKey(1), "one").ok());
    ASSERT_TRUE(txn->Put(stor_t, MakeKey(1), "one").ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  {
    Database db(FileOptions());
    ASSERT_TRUE(db.Recover().ok());
    auto mem_t = *db.GetTable("m");
    auto stor_t = *db.GetTable("s");
    // Timestamps must have advanced past recovered commits: new writes win.
    auto txn = db.Begin();
    ASSERT_TRUE(txn->Put(mem_t, MakeKey(1), "two").ok());
    ASSERT_TRUE(txn->Put(stor_t, MakeKey(1), "two").ok());
    ASSERT_TRUE(txn->Commit().ok());
    auto reader = db.Begin();
    std::string v;
    ASSERT_TRUE(reader->Get(mem_t, MakeKey(1), &v).ok());
    EXPECT_EQ(v, "two");
    ASSERT_TRUE(reader->Get(stor_t, MakeKey(1), &v).ok());
    EXPECT_EQ(v, "two");
  }
}

TEST_F(RecoveryTest, TornLogTailIgnored) {
  {
    Database db(FileOptions());
    auto mem_t = *db.CreateTable("m", EngineKind::kMem);
    auto txn = db.Begin();
    ASSERT_TRUE(txn->Put(mem_t, MakeKey(1), "good").ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  // Corrupt the mem log (a segmented-device directory) with a torn frame
  // right after the valid tail: a plausible header whose payload never
  // fully hit the disk.
  {
    auto dev = SegmentedLogDevice::Open(dir_ + "/mem.log");
    ASSERT_TRUE(dev.ok());
    LogReader scan(dev->get());
    std::string rec;
    while (scan.Next(&rec)) {
    }
    const uint64_t end = scan.offset();
    std::string torn;
    uint32_t bogus_len = 1 << 20;
    uint32_t bogus_check = 0xfeedface;
    torn.append(reinterpret_cast<const char*>(&bogus_len), 4);
    torn.append(reinterpret_cast<const char*>(&bogus_check), 4);
    torn += "partial-payload";
    ASSERT_TRUE(
        (*dev)
            ->WriteAt(end, {reinterpret_cast<const uint8_t*>(torn.data()),
                            torn.size()})
            .ok());
    ASSERT_TRUE((*dev)->Sync().ok());
  }
  {
    Database db(FileOptions());
    ASSERT_TRUE(db.Recover().ok()) << "torn tail must not fail recovery";
    auto reader = db.Begin();
    std::string v;
    ASSERT_TRUE(reader->Get(*db.GetTable("m"), MakeKey(1), &v).ok());
    EXPECT_EQ(v, "good");
  }
}

TEST_F(RecoveryTest, LegacyFileBackendStillRecovers) {
  auto legacy = [this] {
    DatabaseOptions opts = FileOptions();
    opts.log_backend = DatabaseOptions::LogBackend::kFile;
    return opts;
  };
  {
    Database db(legacy());
    auto mem_t = *db.CreateTable("m", EngineKind::kMem);
    auto stor_t = *db.CreateTable("s", EngineKind::kStor);
    auto txn = db.Begin();
    ASSERT_TRUE(txn->Put(mem_t, MakeKey(1), "mem-file").ok());
    ASSERT_TRUE(txn->Put(stor_t, MakeKey(1), "stor-file").ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  {
    Database db(legacy());
    ASSERT_TRUE(db.Recover().ok());
    auto reader = db.Begin();
    std::string v;
    ASSERT_TRUE(reader->Get(*db.GetTable("m"), MakeKey(1), &v).ok());
    EXPECT_EQ(v, "mem-file");
    ASSERT_TRUE(reader->Get(*db.GetTable("s"), MakeKey(1), &v).ok());
    EXPECT_EQ(v, "stor-file");
  }
}

TEST_F(RecoveryTest, FileBackedDataDirReopensUnderSegmentedDefault) {
  // A data dir created under the legacy kFile layout has plain files where
  // the segmented backend wants directories. Reopening with the segmented
  // default must fall back to the file layout instead of losing the log.
  {
    DatabaseOptions opts = FileOptions();
    opts.log_backend = DatabaseOptions::LogBackend::kFile;
    Database db(opts);
    auto mem_t = *db.CreateTable("m", EngineKind::kMem);
    auto txn = db.Begin();
    ASSERT_TRUE(txn->Put(mem_t, MakeKey(7), "from-file-era").ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  {
    Database db(FileOptions());  // default backend: segmented
    ASSERT_TRUE(db.Recover().ok());
    auto reader = db.Begin();
    std::string v;
    ASSERT_TRUE(reader->Get(*db.GetTable("m"), MakeKey(7), &v).ok());
    EXPECT_EQ(v, "from-file-era");
  }
}

}  // namespace
}  // namespace skeena
