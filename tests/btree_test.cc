#include "index/btree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <thread>
#include <vector>

#include "common/random.h"

namespace skeena {
namespace {

TEST(BTreeTest, EmptyTree) {
  BTree tree;
  uint64_t v = 0;
  EXPECT_FALSE(tree.Lookup(MakeKey(1), &v));
  EXPECT_EQ(tree.size(), 0u);
  size_t visited = tree.ScanFrom(kMinKey, [](const Key&, uint64_t) {
    return true;
  });
  EXPECT_EQ(visited, 0u);
}

TEST(BTreeTest, InsertLookup) {
  BTree tree;
  EXPECT_TRUE(tree.Insert(MakeKey(5), 50));
  EXPECT_TRUE(tree.Insert(MakeKey(3), 30));
  EXPECT_FALSE(tree.Insert(MakeKey(5), 99)) << "duplicate insert must fail";
  uint64_t v = 0;
  ASSERT_TRUE(tree.Lookup(MakeKey(5), &v));
  EXPECT_EQ(v, 50u) << "failed duplicate insert must not clobber";
  ASSERT_TRUE(tree.Lookup(MakeKey(3), &v));
  EXPECT_EQ(v, 30u);
  EXPECT_FALSE(tree.Lookup(MakeKey(4), &v));
  EXPECT_EQ(tree.size(), 2u);
}

TEST(BTreeTest, UpsertOverwrites) {
  BTree tree;
  EXPECT_TRUE(tree.Upsert(MakeKey(7), 1));
  EXPECT_FALSE(tree.Upsert(MakeKey(7), 2));
  uint64_t v = 0;
  ASSERT_TRUE(tree.Lookup(MakeKey(7), &v));
  EXPECT_EQ(v, 2u);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(BTreeTest, ManyInsertsSplitAndStaySorted) {
  BTree tree;
  constexpr uint64_t kN = 10000;
  // Insert in a scrambled order to exercise splits everywhere.
  std::vector<uint64_t> keys(kN);
  for (uint64_t i = 0; i < kN; ++i) keys[i] = i;
  Rng rng(11);
  for (uint64_t i = kN - 1; i > 0; --i) {
    std::swap(keys[i], keys[rng.Uniform(i + 1)]);
  }
  for (uint64_t k : keys) ASSERT_TRUE(tree.Insert(MakeKey(k), k * 10));
  EXPECT_EQ(tree.size(), kN);
  EXPECT_GT(tree.Height(), 2u);

  for (uint64_t k = 0; k < kN; ++k) {
    uint64_t v = 0;
    ASSERT_TRUE(tree.Lookup(MakeKey(k), &v)) << k;
    EXPECT_EQ(v, k * 10);
  }

  // Full scan returns every key in order.
  uint64_t expected = 0;
  size_t n = tree.ScanFrom(kMinKey, [&](const Key& key, uint64_t value) {
    EXPECT_EQ(KeyPrefixU64(key), expected);
    EXPECT_EQ(value, expected * 10);
    expected++;
    return true;
  });
  EXPECT_EQ(n, kN);
}

TEST(BTreeTest, ScanFromMidpointAndEarlyStop) {
  BTree tree;
  for (uint64_t k = 0; k < 100; ++k) tree.Insert(MakeKey(k * 2), k);
  // Lower bound between keys: starts at the next key up.
  std::vector<uint64_t> seen;
  tree.ScanFrom(MakeKey(51), [&](const Key& key, uint64_t) {
    seen.push_back(KeyPrefixU64(key));
    return seen.size() < 5;
  });
  ASSERT_EQ(seen.size(), 5u);
  EXPECT_EQ(seen.front(), 52u);
  EXPECT_EQ(seen.back(), 60u);
}

TEST(BTreeTest, ScanRespectsExactLowerBound) {
  BTree tree;
  tree.Insert(MakeKey(10), 1);
  tree.Insert(MakeKey(20), 2);
  std::vector<uint64_t> seen;
  tree.ScanFrom(MakeKey(10), [&](const Key& key, uint64_t) {
    seen.push_back(KeyPrefixU64(key));
    return true;
  });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], 10u) << "lower bound is inclusive";
}

TEST(BTreeTest, PrefixScanOverCompositeKeys) {
  // TPC-C style (w_id, d_id, o_id) keys: scanning a (w_id, d_id) prefix
  // must deliver exactly that district's orders in order.
  BTree tree;
  for (uint16_t w = 1; w <= 3; ++w) {
    for (uint8_t d = 1; d <= 3; ++d) {
      for (uint32_t o = 1; o <= 10; ++o) {
        KeyBuilder b;
        b.AppendU16(w).AppendU8(d).AppendU32(o);
        tree.Insert(b.Build(), w * 1000 + d * 100 + o);
      }
    }
  }
  KeyBuilder prefix;
  prefix.AppendU16(2).AppendU8(2);
  size_t count = 0;
  uint32_t last_o = 0;
  tree.ScanFrom(prefix.Build(), [&](const Key& key, uint64_t value) {
    if (!KeyHasPrefix(key, prefix.Build(), 3)) return false;
    EXPECT_EQ(value / 100, 22u);
    EXPECT_GT(static_cast<uint32_t>(value % 100), last_o);
    last_o = static_cast<uint32_t>(value % 100);
    count++;
    return true;
  });
  EXPECT_EQ(count, 10u);
}

TEST(BTreeTest, DescendingOrderViaComplementEncoding) {
  // Order-Status wants the newest order first; we encode o_id complements.
  BTree tree;
  for (uint32_t o = 1; o <= 100; ++o) {
    KeyBuilder b;
    b.AppendU16(1).AppendU32(~o);
    tree.Insert(b.Build(), o);
  }
  KeyBuilder prefix;
  prefix.AppendU16(1);
  uint64_t first = 0;
  tree.ScanFrom(prefix.Build(), [&](const Key&, uint64_t value) {
    first = value;
    return false;  // newest only
  });
  EXPECT_EQ(first, 100u);
}

TEST(BTreeTest, ConcurrentDisjointInserts) {
  BTree tree;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        uint64_t k = static_cast<uint64_t>(t) * kPerThread + i;
        ASSERT_TRUE(tree.Insert(MakeKey(k), k));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(tree.size(), kThreads * kPerThread);
  for (uint64_t k = 0; k < kThreads * kPerThread; ++k) {
    uint64_t v = 0;
    ASSERT_TRUE(tree.Lookup(MakeKey(k), &v)) << k;
    ASSERT_EQ(v, k);
  }
}

TEST(BTreeTest, ConcurrentOverlappingInsertsExactlyOneWinner) {
  BTree tree;
  constexpr int kThreads = 8;
  constexpr uint64_t kKeys = 5000;
  std::atomic<uint64_t> wins{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t k = 0; k < kKeys; ++k) {
        if (tree.Insert(MakeKey(k), t)) wins.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wins.load(), kKeys) << "each key must have exactly one winner";
  EXPECT_EQ(tree.size(), kKeys);
}

TEST(BTreeTest, ConcurrentReadersDuringInserts) {
  BTree tree;
  constexpr uint64_t kN = 50000;
  std::atomic<bool> done{false};
  std::atomic<uint64_t> reader_errors{0};

  std::thread writer([&] {
    for (uint64_t k = 0; k < kN; ++k) tree.Insert(MakeKey(k), k + 1);
    done.store(true);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(t + 100);
      while (!done.load()) {
        uint64_t k = rng.Uniform(kN);
        uint64_t v = 0;
        if (tree.Lookup(MakeKey(k), &v) && v != k + 1) {
          reader_errors.fetch_add(1);
        }
      }
    });
  }
  std::thread scanner([&] {
    while (!done.load()) {
      uint64_t prev = 0;
      bool first = true;
      tree.ScanFrom(kMinKey, [&](const Key& key, uint64_t) {
        uint64_t k = KeyPrefixU64(key);
        if (!first && k <= prev) reader_errors.fetch_add(1);
        prev = k;
        first = false;
        return true;
      });
    }
  });

  writer.join();
  for (auto& th : readers) th.join();
  scanner.join();
  EXPECT_EQ(reader_errors.load(), 0u);
  EXPECT_EQ(tree.size(), kN);
}

// Property sweep: model-check against std::map across sizes and patterns.
class BTreeModelTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(BTreeModelTest, MatchesStdMap) {
  auto [pattern, n] = GetParam();
  BTree tree;
  std::map<Key, uint64_t> model;
  Rng rng(pattern * 1000 + static_cast<int>(n));
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t k;
    switch (pattern) {
      case 0: k = i; break;                      // ascending
      case 1: k = n - i; break;                  // descending
      case 2: k = rng.Uniform(n * 2); break;     // random sparse
      default: k = rng.Uniform(n / 4 + 1); break;  // heavy duplicates
    }
    Key key = MakeKey(k);
    bool inserted = tree.Insert(key, i);
    bool model_inserted = model.emplace(key, i).second;
    ASSERT_EQ(inserted, model_inserted) << "key " << k << " at step " << i;
  }
  ASSERT_EQ(tree.size(), model.size());
  // Every model entry present with the right value.
  for (const auto& [key, value] : model) {
    uint64_t v = 0;
    ASSERT_TRUE(tree.Lookup(key, &v));
    ASSERT_EQ(v, value);
  }
  // Scan equals ordered model iteration.
  auto it = model.begin();
  tree.ScanFrom(kMinKey, [&](const Key& key, uint64_t value) {
    EXPECT_NE(it, model.end());
    EXPECT_EQ(key, it->first);
    EXPECT_EQ(value, it->second);
    ++it;
    return true;
  });
  EXPECT_EQ(it, model.end());
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, BTreeModelTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(10ull, 100ull, 1000ull, 20000ull)));

}  // namespace
}  // namespace skeena
