#include "memdb/mem_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/random.h"
#include "log/storage_device.h"

namespace skeena::memdb {
namespace {

class MemEngineTest : public ::testing::Test {
 protected:
  MemEngineTest()
      : engine_(std::make_unique<MemDevice>(), MemEngine::Options{}) {
    table_ = engine_.CreateTable("t");
  }

  // Helper committing a single put as its own transaction.
  void CommitPut(uint64_t key, const std::string& value) {
    auto txn = engine_.Begin(IsolationLevel::kSnapshot);
    ASSERT_TRUE(engine_.Put(txn.get(), table_, MakeKey(key), value).ok());
    ASSERT_TRUE(engine_.PreCommit(txn.get(), NextGtid(), false).ok());
    engine_.PostCommit(txn.get(), 0, false);
  }

  GlobalTxnId NextGtid() { return gtid_++; }

  MemEngine engine_;
  TableId table_;
  GlobalTxnId gtid_ = 1;
};

TEST_F(MemEngineTest, GetMissingIsNotFound) {
  auto txn = engine_.Begin(IsolationLevel::kSnapshot);
  std::string v;
  EXPECT_TRUE(engine_.Get(txn.get(), table_, MakeKey(1), &v).IsNotFound());
  engine_.Abort(txn.get());
}

TEST_F(MemEngineTest, CommitMakesVisible) {
  CommitPut(1, "hello");
  auto txn = engine_.Begin(IsolationLevel::kSnapshot);
  std::string v;
  ASSERT_TRUE(engine_.Get(txn.get(), table_, MakeKey(1), &v).ok());
  EXPECT_EQ(v, "hello");
  engine_.Abort(txn.get());
}

TEST_F(MemEngineTest, ReadOwnWrites) {
  auto txn = engine_.Begin(IsolationLevel::kSnapshot);
  ASSERT_TRUE(engine_.Put(txn.get(), table_, MakeKey(1), "mine").ok());
  std::string v;
  ASSERT_TRUE(engine_.Get(txn.get(), table_, MakeKey(1), &v).ok());
  EXPECT_EQ(v, "mine");
  engine_.Abort(txn.get());
}

TEST_F(MemEngineTest, UncommittedInvisibleToOthers) {
  auto writer = engine_.Begin(IsolationLevel::kSnapshot);
  ASSERT_TRUE(engine_.Put(writer.get(), table_, MakeKey(1), "dirty").ok());
  auto reader = engine_.Begin(IsolationLevel::kSnapshot);
  std::string v;
  EXPECT_TRUE(
      engine_.Get(reader.get(), table_, MakeKey(1), &v).IsNotFound());
  engine_.Abort(writer.get());
  engine_.Abort(reader.get());
}

TEST_F(MemEngineTest, SnapshotIgnoresLaterCommits) {
  CommitPut(1, "v1");
  auto reader = engine_.Begin(IsolationLevel::kSnapshot);
  CommitPut(1, "v2");
  std::string v;
  ASSERT_TRUE(engine_.Get(reader.get(), table_, MakeKey(1), &v).ok());
  EXPECT_EQ(v, "v1") << "snapshot must see the version at begin time";
  engine_.Abort(reader.get());

  auto fresh = engine_.Begin(IsolationLevel::kSnapshot);
  ASSERT_TRUE(engine_.Get(fresh.get(), table_, MakeKey(1), &v).ok());
  EXPECT_EQ(v, "v2");
  engine_.Abort(fresh.get());
}

TEST_F(MemEngineTest, DeleteProducesTombstone) {
  CommitPut(1, "x");
  auto txn = engine_.Begin(IsolationLevel::kSnapshot);
  ASSERT_TRUE(engine_.Delete(txn.get(), table_, MakeKey(1)).ok());
  ASSERT_TRUE(engine_.PreCommit(txn.get(), NextGtid(), false).ok());
  engine_.PostCommit(txn.get(), 0, false);

  auto reader = engine_.Begin(IsolationLevel::kSnapshot);
  std::string v;
  EXPECT_TRUE(
      engine_.Get(reader.get(), table_, MakeKey(1), &v).IsNotFound());
  engine_.Abort(reader.get());
}

TEST_F(MemEngineTest, FirstCommitterWins) {
  CommitPut(1, "base");
  auto t1 = engine_.Begin(IsolationLevel::kSnapshot);
  auto t2 = engine_.Begin(IsolationLevel::kSnapshot);
  ASSERT_TRUE(engine_.Put(t1.get(), table_, MakeKey(1), "t1").ok());
  ASSERT_TRUE(engine_.Put(t2.get(), table_, MakeKey(1), "t2").ok());

  ASSERT_TRUE(engine_.PreCommit(t1.get(), NextGtid(), false).ok());
  engine_.PostCommit(t1.get(), 0, false);

  // t2 wrote the same record under an older snapshot: must abort.
  EXPECT_TRUE(engine_.PreCommit(t2.get(), NextGtid(), false).IsAborted());
  EXPECT_EQ(t2->state(), MemTxn::State::kAborted);

  auto reader = engine_.Begin(IsolationLevel::kSnapshot);
  std::string v;
  ASSERT_TRUE(engine_.Get(reader.get(), table_, MakeKey(1), &v).ok());
  EXPECT_EQ(v, "t1");
  engine_.Abort(reader.get());
}

TEST_F(MemEngineTest, WriteConflictDetectedEarlyOnPut) {
  CommitPut(1, "base");
  auto t1 = engine_.Begin(IsolationLevel::kSnapshot);
  CommitPut(1, "newer");
  // t1's snapshot no longer covers the record head.
  EXPECT_TRUE(engine_.Put(t1.get(), table_, MakeKey(1), "t1").IsAborted());
}

TEST_F(MemEngineTest, AbortAfterPreCommitInstallsNothing) {
  // Skeena's commit check can fail after pre-commit (Section 4.5); the
  // engine must then abort without any shared-state effects.
  CommitPut(1, "base");
  auto txn = engine_.Begin(IsolationLevel::kSnapshot);
  ASSERT_TRUE(engine_.Put(txn.get(), table_, MakeKey(1), "doomed").ok());
  ASSERT_TRUE(engine_.PreCommit(txn.get(), NextGtid(), true).ok());
  EXPECT_NE(txn->commit_ts(), kInvalidTimestamp);
  engine_.Abort(txn.get());

  auto reader = engine_.Begin(IsolationLevel::kSnapshot);
  std::string v;
  ASSERT_TRUE(engine_.Get(reader.get(), table_, MakeKey(1), &v).ok());
  EXPECT_EQ(v, "base");
  engine_.Abort(reader.get());
}

TEST_F(MemEngineTest, SerializableReadValidationAbortsOnChange) {
  CommitPut(1, "base");
  auto t1 = engine_.Begin(IsolationLevel::kSerializable);
  std::string v;
  ASSERT_TRUE(engine_.Get(t1.get(), table_, MakeKey(1), &v).ok());
  ASSERT_TRUE(engine_.Put(t1.get(), table_, MakeKey(2), "out").ok());

  CommitPut(1, "interloper");  // invalidates t1's read

  EXPECT_TRUE(engine_.PreCommit(t1.get(), NextGtid(), false).IsAborted())
      << "anti-dependency must abort under serializable (commit ordering)";
}

TEST_F(MemEngineTest, SerializableDisjointCommits) {
  CommitPut(1, "a");
  CommitPut(2, "b");
  auto t1 = engine_.Begin(IsolationLevel::kSerializable);
  std::string v;
  ASSERT_TRUE(engine_.Get(t1.get(), table_, MakeKey(1), &v).ok());
  ASSERT_TRUE(engine_.Put(t1.get(), table_, MakeKey(3), "c").ok());
  ASSERT_TRUE(engine_.PreCommit(t1.get(), NextGtid(), false).ok());
  engine_.PostCommit(t1.get(), 0, false);
  EXPECT_EQ(t1->state(), MemTxn::State::kCommitted);
}

TEST_F(MemEngineTest, SnapshotSkipsSerializableValidation) {
  CommitPut(1, "base");
  auto t1 = engine_.Begin(IsolationLevel::kSnapshot);
  std::string v;
  ASSERT_TRUE(engine_.Get(t1.get(), table_, MakeKey(1), &v).ok());
  ASSERT_TRUE(engine_.Put(t1.get(), table_, MakeKey(2), "w").ok());
  CommitPut(1, "newer");
  // Under SI a pure read-write (anti) dependency does not abort.
  EXPECT_TRUE(engine_.PreCommit(t1.get(), NextGtid(), false).ok());
  engine_.PostCommit(t1.get(), 0, false);
}

TEST_F(MemEngineTest, ScanDeliversVisibleSortedRows) {
  for (uint64_t k = 0; k < 50; ++k) {
    CommitPut(k, "v" + std::to_string(k));
  }
  auto txn = engine_.Begin(IsolationLevel::kSnapshot);
  uint64_t expected = 10;
  size_t n = 0;
  ASSERT_TRUE(engine_
                  .Scan(txn.get(), table_, MakeKey(10), 0,
                        [&](const Key& key, const std::string& value) {
                          EXPECT_EQ(KeyPrefixU64(key), expected);
                          EXPECT_EQ(value, "v" + std::to_string(expected));
                          expected++;
                          n++;
                          return true;
                        })
                  .ok());
  EXPECT_EQ(n, 40u);
  engine_.Abort(txn.get());
}

TEST_F(MemEngineTest, ScanHonorsLimitAndOwnWrites) {
  for (uint64_t k = 0; k < 10; ++k) CommitPut(k, "old");
  auto txn = engine_.Begin(IsolationLevel::kSnapshot);
  ASSERT_TRUE(engine_.Put(txn.get(), table_, MakeKey(3), "own").ok());
  ASSERT_TRUE(engine_.Delete(txn.get(), table_, MakeKey(4)).ok());
  std::vector<std::string> got;
  ASSERT_TRUE(engine_
                  .Scan(txn.get(), table_, MakeKey(2), 3,
                        [&](const Key&, const std::string& value) {
                          got.push_back(value);
                          return true;
                        })
                  .ok());
  // Keys 2 ("old"), 3 ("own"), 5 ("old") — 4 is tombstoned in this txn.
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], "old");
  EXPECT_EQ(got[1], "own");
  EXPECT_EQ(got[2], "old");
  engine_.Abort(txn.get());
}

TEST_F(MemEngineTest, ReadCommittedSeesRefreshedSnapshots) {
  CommitPut(1, "v1");
  auto txn = engine_.Begin(IsolationLevel::kReadCommitted);
  std::string v;
  ASSERT_TRUE(engine_.Get(txn.get(), table_, MakeKey(1), &v).ok());
  EXPECT_EQ(v, "v1");
  CommitPut(1, "v2");
  engine_.RefreshSnapshot(txn.get());
  ASSERT_TRUE(engine_.Get(txn.get(), table_, MakeKey(1), &v).ok());
  EXPECT_EQ(v, "v2") << "refreshed snapshot must observe the later commit";
  engine_.Abort(txn.get());
}

TEST_F(MemEngineTest, VersionChainsPrunedAfterHorizonAdvance) {
  MemEngine::Options opts;
  opts.gc_interval = 1;  // recompute horizon every commit
  MemEngine engine(std::make_unique<MemDevice>(), opts);
  TableId t = engine.CreateTable("gc");
  for (int i = 0; i < 200; ++i) {
    auto txn = engine.Begin(IsolationLevel::kSnapshot);
    ASSERT_TRUE(
        engine.Put(txn.get(), t, MakeKey(7), "v" + std::to_string(i)).ok());
    ASSERT_TRUE(engine.PreCommit(txn.get(), i + 1, false).ok());
    engine.PostCommit(txn.get(), i + 1, false);
  }
  EXPECT_GT(engine.stats().versions_pruned, 100u)
      << "repeated updates with no active readers must prune old versions";
}

TEST_F(MemEngineTest, ActiveReaderBlocksPruningOfItsVersion) {
  MemEngine::Options opts;
  opts.gc_interval = 1;
  MemEngine engine(std::make_unique<MemDevice>(), opts);
  TableId t = engine.CreateTable("gc");
  {
    auto txn = engine.Begin(IsolationLevel::kSnapshot);
    ASSERT_TRUE(engine.Put(txn.get(), t, MakeKey(7), "pinned").ok());
    ASSERT_TRUE(engine.PreCommit(txn.get(), 1, false).ok());
    engine.PostCommit(txn.get(), 1, false);
  }
  auto reader = engine.Begin(IsolationLevel::kSnapshot);
  for (int i = 0; i < 50; ++i) {
    auto txn = engine.Begin(IsolationLevel::kSnapshot);
    ASSERT_TRUE(engine.Put(txn.get(), t, MakeKey(7), "x").ok());
    ASSERT_TRUE(engine.PreCommit(txn.get(), i + 2, false).ok());
    engine.PostCommit(txn.get(), i + 2, false);
  }
  std::string v;
  ASSERT_TRUE(engine.Get(reader.get(), t, MakeKey(7), &v).ok());
  EXPECT_EQ(v, "pinned") << "old version must survive while a reader needs it";
  engine.Abort(reader.get());
}

TEST_F(MemEngineTest, ConcurrentCountersNoLostUpdates) {
  // N threads increment disjoint counters; per-key totals must be exact.
  constexpr int kThreads = 8;
  constexpr int kIncrements = 300;
  std::vector<std::thread> threads;
  for (uint64_t k = 0; k < kThreads; ++k) CommitPut(k, "0");
  std::atomic<GlobalTxnId> gtid{1000};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIncrements;) {
        auto txn = engine_.Begin(IsolationLevel::kSnapshot);
        std::string v;
        if (!engine_.Get(txn.get(), table_, MakeKey(t), &v).ok()) {
          engine_.Abort(txn.get());
          continue;
        }
        int cur = std::stoi(v);
        if (!engine_
                 .Put(txn.get(), table_, MakeKey(t), std::to_string(cur + 1))
                 .ok()) {
          continue;  // Put aborts internally on conflict
        }
        if (engine_.PreCommit(txn.get(), gtid.fetch_add(1), false).ok()) {
          engine_.PostCommit(txn.get(), 0, false);
          i++;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (uint64_t k = 0; k < kThreads; ++k) {
    auto txn = engine_.Begin(IsolationLevel::kSnapshot);
    std::string v;
    ASSERT_TRUE(engine_.Get(txn.get(), table_, MakeKey(k), &v).ok());
    EXPECT_EQ(v, std::to_string(kIncrements));
    engine_.Abort(txn.get());
  }
}

TEST_F(MemEngineTest, ContendedSingleCounterExactUnderConflicts) {
  CommitPut(0, "0");
  constexpr int kThreads = 4;
  constexpr int kIncrements = 100;
  std::vector<std::thread> threads;
  std::atomic<GlobalTxnId> gtid{5000};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements;) {
        auto txn = engine_.Begin(IsolationLevel::kSnapshot);
        std::string v;
        if (!engine_.Get(txn.get(), table_, MakeKey(0), &v).ok()) {
          engine_.Abort(txn.get());
          continue;
        }
        if (!engine_
                 .Put(txn.get(), table_, MakeKey(0),
                      std::to_string(std::stoi(v) + 1))
                 .ok()) {
          continue;
        }
        if (engine_.PreCommit(txn.get(), gtid.fetch_add(1), false).ok()) {
          engine_.PostCommit(txn.get(), 0, false);
          i++;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  auto txn = engine_.Begin(IsolationLevel::kSnapshot);
  std::string v;
  ASSERT_TRUE(engine_.Get(txn.get(), table_, MakeKey(0), &v).ok());
  EXPECT_EQ(v, std::to_string(kThreads * kIncrements))
      << "first-committer-wins must prevent every lost update";
  engine_.Abort(txn.get());
}

TEST_F(MemEngineTest, RecoverReplaysCommittedOnly) {
  auto dev = std::make_unique<MemDevice>();
  MemDevice* raw = dev.get();
  {
    MemEngine engine(std::move(dev), MemEngine::Options{});
    TableId t = engine.CreateTable("r");
    auto c = engine.Begin(IsolationLevel::kSnapshot);
    ASSERT_TRUE(engine.Put(c.get(), t, MakeKey(1), "committed").ok());
    ASSERT_TRUE(engine.PreCommit(c.get(), 11, false).ok());
    engine.PostCommit(c.get(), 11, false);

    auto a = engine.Begin(IsolationLevel::kSnapshot);
    ASSERT_TRUE(engine.Put(a.get(), t, MakeKey(2), "aborted").ok());
    ASSERT_TRUE(engine.PreCommit(a.get(), 12, false).ok());
    engine.Abort(a.get());  // pre-committed (logged data) but never ended
    engine.log()->Flush();

    // Copy the log into a fresh device to simulate a crash + restart.
    // (~MemEngine flushes; we reread the same bytes.)
    std::vector<uint8_t> snapshot(raw->Size());
    raw->ReadAt(0, snapshot);
    auto dev2 = std::make_unique<MemDevice>();
    uint64_t off;
    dev2->Append(snapshot, &off);

    MemEngine recovered(std::move(dev2), MemEngine::Options{});
    TableId t2 = recovered.CreateTable("r");
    ASSERT_TRUE(recovered.Recover({}).ok());
    auto reader = recovered.Begin(IsolationLevel::kSnapshot);
    std::string v;
    ASSERT_TRUE(recovered.Get(reader.get(), t2, MakeKey(1), &v).ok());
    EXPECT_EQ(v, "committed");
    EXPECT_TRUE(
        recovered.Get(reader.get(), t2, MakeKey(2), &v).IsNotFound())
        << "data of non-committed transactions must not be replayed";
    recovered.Abort(reader.get());
  }
}

}  // namespace
}  // namespace skeena::memdb
