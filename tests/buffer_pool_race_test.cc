// Deterministic interleaving tests for the buffer pool's frame lifecycle
// (state machine + in-flight write-back table, DESIGN.md "Buffer pool frame
// lifecycle"). A BlockingStorageDevice gates WriteAt/ReadAt on condition
// variables to hold the evict-vs-refetch window open on purpose:
//
//  * a refetch racing an in-flight dirty write-back must park on the flush
//    ticket, never read the pre-write-back device image (torn/stale read);
//  * failed loads unmap the frame instead of leaving a poisoned mapping;
//  * failed write-backs restore the victim's old identity instead of
//    losing the only copy of the page.
//
// The TorturePinEvictFlush storm (capacity ≪ working set, 16 threads of
// pin/evict/flush) is registered separately under the `slow` label and is
// the TSan repeat-gate target in CI.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "common/random.h"
#include "log/storage_device.h"
#include "stordb/buffer_pool.h"

namespace skeena::stordb {
namespace {

using namespace std::chrono_literals;

/// Wraps a MemDevice; individual WriteAt/ReadAt calls can be armed to
/// block (until released) or fail once, keyed by byte offset — enough to
/// pin the pool mid-eviction at an exact page boundary.
class BlockingStorageDevice : public StorageDevice {
 public:
  /// The next WriteAt covering `offset` signals WaitUntilWriteBlocked()
  /// and parks until ReleaseWrites().
  void BlockNextWriteAt(uint64_t offset) {
    std::lock_guard<std::mutex> lock(gate_mu_);
    block_write_armed_ = true;
    block_write_off_ = offset;
    write_released_ = false;
  }
  void WaitUntilWriteBlocked() {
    std::unique_lock<std::mutex> lock(gate_mu_);
    gate_cv_.wait(lock, [&] { return write_blocked_; });
  }
  void ReleaseWrites() {
    std::lock_guard<std::mutex> lock(gate_mu_);
    write_released_ = true;
    gate_cv_.notify_all();
  }
  void FailNextWriteAt(uint64_t offset) {
    std::lock_guard<std::mutex> lock(gate_mu_);
    fail_write_armed_ = true;
    fail_write_off_ = offset;
  }
  void FailNextReadAt(uint64_t offset) {
    std::lock_guard<std::mutex> lock(gate_mu_);
    fail_read_armed_ = true;
    fail_read_off_ = offset;
  }

  Status Append(std::span<const uint8_t> data, uint64_t* offset) override {
    return inner_.Append(data, offset);
  }
  Status WriteAt(uint64_t offset, std::span<const uint8_t> data) override {
    {
      std::unique_lock<std::mutex> lock(gate_mu_);
      if (fail_write_armed_ && offset == fail_write_off_) {
        fail_write_armed_ = false;
        return Status::IOError("injected write failure");
      }
      if (block_write_armed_ && offset == block_write_off_) {
        block_write_armed_ = false;
        write_blocked_ = true;
        gate_cv_.notify_all();
        gate_cv_.wait(lock, [&] { return write_released_; });
        write_blocked_ = false;
      }
    }
    return inner_.WriteAt(offset, data);
  }
  Status ReadAt(uint64_t offset, std::span<uint8_t> out) const override {
    {
      std::lock_guard<std::mutex> lock(gate_mu_);
      if (fail_read_armed_ && offset == fail_read_off_) {
        fail_read_armed_ = false;
        return Status::IOError("injected read failure");
      }
    }
    return inner_.ReadAt(offset, out);
  }
  Status Sync() override { return inner_.Sync(); }
  uint64_t Size() const override { return inner_.Size(); }
  uint64_t bytes_read() const override { return inner_.bytes_read(); }
  uint64_t bytes_written() const override { return inner_.bytes_written(); }

 private:
  MemDevice inner_;
  mutable std::mutex gate_mu_;
  mutable std::condition_variable gate_cv_;
  bool block_write_armed_ = false;
  uint64_t block_write_off_ = 0;
  bool write_blocked_ = false;
  bool write_released_ = false;
  bool fail_write_armed_ = false;
  uint64_t fail_write_off_ = 0;
  mutable bool fail_read_armed_ = false;
  mutable uint64_t fail_read_off_ = 0;
};

constexpr uint64_t PageOffset(uint32_t page_no) {
  return static_cast<uint64_t>(page_no) * kPageSize;
}

class BufferPoolRaceTest : public ::testing::Test {
 protected:
  std::unique_ptr<BufferPool> MakePool(size_t pages, size_t shards = 1) {
    return std::make_unique<BufferPool>(
        pages, [this](TableId) { return &device_; }, shards);
  }

  /// Fetch that tolerates transient all-pinned windows (tiny pools +
  /// concurrent evictors legitimately return Busy).
  Result<PageGuard> FetchRetry(BufferPool* pool, PageId pid) {
    for (;;) {
      auto page = pool->FetchPage(pid);
      if (page.ok() || page.status().code() != StatusCode::kBusy) return page;
      std::this_thread::yield();
    }
  }

  void StampPage(BufferPool* pool, PageId pid, uint8_t fill) {
    auto page = pool->NewPage(pid);
    ASSERT_TRUE(page.ok()) << page.status().ToString();
    page->LockExclusive();
    std::memset(page->data(), fill, kPageSize);
    page->UnlockExclusive();
  }

  /// Reads first/middle/last under the shared latch.
  static std::array<uint8_t, 3> SamplePage(PageGuard& guard) {
    guard.LockShared();
    std::array<uint8_t, 3> s = {guard.data()[0], guard.data()[kPageSize / 2],
                                guard.data()[kPageSize - 1]};
    guard.UnlockShared();
    return s;
  }

  BlockingStorageDevice device_;
};

// (a) Evict-dirty vs. refetch: while the dirty write-back of an evicted
// page is in flight, a refetch of that page must park on the flush ticket
// — not load the not-yet-written device image into another frame.
TEST_F(BufferPoolRaceTest, RefetchParksBehindInFlightWriteBack) {
  auto pool = MakePool(1);
  const PageId a = MakePageId(0, 0), b = MakePageId(0, 1);
  StampPage(pool.get(), a, 0x5c);  // dirty, never flushed: device holds zeros

  device_.BlockNextWriteAt(PageOffset(0));
  std::thread evictor([&] {
    auto page = FetchRetry(pool.get(), b);  // evicts a, blocks in WriteAt(a)
    ASSERT_TRUE(page.ok()) << page.status().ToString();
  });
  device_.WaitUntilWriteBlocked();

  std::atomic<bool> fetched{false};
  std::array<uint8_t, 3> sample{};
  std::thread refetcher([&] {
    auto page = FetchRetry(pool.get(), a);
    ASSERT_TRUE(page.ok()) << page.status().ToString();
    sample = SamplePage(page.value());
    fetched.store(true);
  });

  // The refetcher must be parked: the write-back has not reached the
  // device, so any completed fetch here could only have returned stale or
  // torn bytes (the seed bug this suite regression-gates).
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(fetched.load())
      << "refetch completed while the evicted page's write-back was in flight";

  device_.ReleaseWrites();
  evictor.join();
  refetcher.join();
  EXPECT_EQ(sample, (std::array<uint8_t, 3>{0x5c, 0x5c, 0x5c}));
  EXPECT_GE(pool->flush_waits(), 1u);
  EXPECT_EQ(pool->write_backs(), 1u);
}

// (b) The stale-image variant: the device already holds an OLDER image of
// the page; a refetch racing the eviction must return the latest bytes
// (linearizable with the last UnlockExclusive), never resurrect the old
// device image.
TEST_F(BufferPoolRaceTest, RefetchNeverSeesPreWritebackImage) {
  auto pool = MakePool(1);
  const PageId a = MakePageId(0, 0), b = MakePageId(0, 1);
  StampPage(pool.get(), a, 0x11);
  ASSERT_TRUE(pool->FlushAll().ok());  // device image of a = 0x11
  {
    auto page = FetchRetry(pool.get(), a);
    ASSERT_TRUE(page.ok());
    page->LockExclusive();
    std::memset(page->data(), 0x22, kPageSize);
    page->UnlockExclusive();  // frame = 0x22 dirty; device still 0x11
  }

  device_.BlockNextWriteAt(PageOffset(0));
  std::thread evictor([&] {
    auto page = FetchRetry(pool.get(), b);
    ASSERT_TRUE(page.ok()) << page.status().ToString();
  });
  device_.WaitUntilWriteBlocked();

  std::array<uint8_t, 3> sample{};
  std::thread refetcher([&] {
    auto page = FetchRetry(pool.get(), a);
    ASSERT_TRUE(page.ok()) << page.status().ToString();
    sample = SamplePage(page.value());
  });
  std::this_thread::sleep_for(20ms);
  device_.ReleaseWrites();
  evictor.join();
  refetcher.join();
  EXPECT_EQ(sample, (std::array<uint8_t, 3>{0x22, 0x22, 0x22}))
      << "refetch resurrected the pre-write-back device image";
}

// (c) Loader failure: a failed ReadAt must unmap the frame. At seed the
// mapping survived with loaded=true, so the next fetch "hit" a frame full
// of the previous page's bytes.
TEST_F(BufferPoolRaceTest, FailedLoadUnmapsInsteadOfPoisoning) {
  auto pool = MakePool(1);
  const PageId a = MakePageId(0, 0), b = MakePageId(0, 1);
  StampPage(pool.get(), a, 0x33);
  ASSERT_TRUE(pool->FlushAll().ok());
  StampPage(pool.get(), b, 0x44);  // evicts a (clean); frame now holds b

  device_.FailNextReadAt(PageOffset(0));
  auto bad = pool->FetchPage(a);  // evicts b (write-back ok), load fails
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kIOError);

  {
    // The device healed: the retry must come back with a's real bytes, not
    // "hit" a poisoned mapping holding b's (or garbage) data.
    auto good = FetchRetry(pool.get(), a);
    ASSERT_TRUE(good.ok()) << good.status().ToString();
    EXPECT_EQ(SamplePage(good.value()),
              (std::array<uint8_t, 3>{0x33, 0x33, 0x33}));
  }
  auto bpage = FetchRetry(pool.get(), b);
  ASSERT_TRUE(bpage.ok());
  EXPECT_EQ(SamplePage(bpage.value()),
            (std::array<uint8_t, 3>{0x44, 0x44, 0x44}));
}

// (c') Write-back failure: the evicted page's only copy is the frame, so a
// failed WriteAt must restore the old mapping (still dirty) and unpublish
// the new pid.
TEST_F(BufferPoolRaceTest, FailedWriteBackRestoresVictimMapping) {
  auto pool = MakePool(1);
  const PageId a = MakePageId(0, 0), b = MakePageId(0, 1);
  StampPage(pool.get(), a, 0x55);  // dirty

  device_.FailNextWriteAt(PageOffset(0));
  auto bad = pool->FetchPage(b);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kIOError);

  {
    // `a` survived the failed eviction: still mapped, bytes intact.
    auto page = FetchRetry(pool.get(), a);
    ASSERT_TRUE(page.ok()) << page.status().ToString();
    EXPECT_EQ(SamplePage(page.value()),
              (std::array<uint8_t, 3>{0x55, 0x55, 0x55}));
    EXPECT_GE(pool->hits(), 1u);
  }

  {
    // Device healed: the eviction path works again.
    auto bpage = FetchRetry(pool.get(), b);
    ASSERT_TRUE(bpage.ok()) << bpage.status().ToString();
  }
  auto apage = FetchRetry(pool.get(), a);
  ASSERT_TRUE(apage.ok()) << apage.status().ToString();
  EXPECT_EQ(SamplePage(apage.value()),
            (std::array<uint8_t, 3>{0x55, 0x55, 0x55}));
}

// (e) WakeOne baton chain: write-back completion wakes a single parked
// fetcher and each woken fetcher passes the baton to the next, so a herd
// parked behind one in-flight flush must drain completely — a dropped
// baton strands a waiter and hangs this test at the joins.
TEST_F(BufferPoolRaceTest, WakeChainDrainsEveryParkedWaiter) {
  auto pool = MakePool(1);
  const PageId a = MakePageId(0, 0), b = MakePageId(0, 1);
  StampPage(pool.get(), a, 0x7e);  // dirty: eviction must write it back

  device_.BlockNextWriteAt(PageOffset(0));
  std::thread evictor([&] {
    auto page = FetchRetry(pool.get(), b);  // evicts a, blocks in WriteAt(a)
    ASSERT_TRUE(page.ok()) << page.status().ToString();
  });
  device_.WaitUntilWriteBlocked();

  constexpr int kWaiters = 8;
  std::atomic<int> completed{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      auto page = FetchRetry(pool.get(), a);
      ASSERT_TRUE(page.ok()) << page.status().ToString();
      EXPECT_EQ(SamplePage(page.value()),
                (std::array<uint8_t, 3>{0x7e, 0x7e, 0x7e}));
      completed.fetch_add(1);
    });
  }
  // Every waiter has entered the flush-wait path at least once before the
  // write-back is released; none may have completed a fetch.
  while (pool->flush_waits() < kWaiters) std::this_thread::sleep_for(1ms);
  EXPECT_EQ(completed.load(), 0);

  device_.ReleaseWrites();
  evictor.join();
  for (auto& w : waiters) w.join();
  EXPECT_EQ(completed.load(), kWaiters);
  EXPECT_EQ(pool->write_backs(), 1u);
}

// Pin/evict/flush torture: capacity ≪ working set so every fetch fights
// the evictors, one thread checkpoints concurrently, and every read
// validates the page's uniform stamp (a torn or re-homed frame shows up as
// a byte from another page or the zero device image). Registered under the
// `slow` label; CI's TSan job grinds it with --repeat until-fail.
TEST_F(BufferPoolRaceTest, TorturePinEvictFlush) {
  constexpr uint32_t kPages = 64;
  constexpr int kThreads = 16;
  auto pool = MakePool(8, 2);
  for (uint32_t p = 0; p < kPages; ++p) {
    StampPage(pool.get(), MakePageId(0, p), static_cast<uint8_t>(p + 1));
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) * 7919 + 1);
      while (!stop.load(std::memory_order_acquire)) {
        uint32_t p = static_cast<uint32_t>(rng.Uniform(kPages));
        uint8_t want = static_cast<uint8_t>(p + 1);
        auto page = pool->FetchPage(MakePageId(0, p));
        if (!page.ok()) continue;  // transiently all-pinned
        if (rng.Uniform(10) < 8) {
          page->LockShared();
          uint8_t first = page->data()[0];
          uint8_t mid = page->data()[kPageSize / 2];
          uint8_t last = page->data()[kPageSize - 1];
          page->UnlockShared();
          if (first != want || mid != want || last != want) {
            mismatches.fetch_add(1);
          }
        } else {
          page->LockExclusive();
          std::memset(page->data(), want, kPageSize);
          page->UnlockExclusive();
        }
      }
    });
  }
  std::thread flusher([&] {
    while (!stop.load(std::memory_order_acquire)) {
      EXPECT_TRUE(pool->FlushAll().ok());
      std::this_thread::sleep_for(1ms);
    }
  });
  std::this_thread::sleep_for(2s);
  stop.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  flusher.join();
  EXPECT_EQ(mismatches.load(), 0u);

  // Final sweep: every page still carries its stamp end to end.
  for (uint32_t p = 0; p < kPages; ++p) {
    auto page = FetchRetry(pool.get(), MakePageId(0, p));
    ASSERT_TRUE(page.ok()) << page.status().ToString();
    uint8_t want = static_cast<uint8_t>(p + 1);
    EXPECT_EQ(SamplePage(page.value()), (std::array<uint8_t, 3>{want, want, want}))
        << "page " << p;
  }
}

}  // namespace
}  // namespace skeena::stordb
