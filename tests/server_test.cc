// Server front-end tests: SKNA wire-codec round trips pinned to the byte
// offsets of docs/PROTOCOL.md, a malformed-input corpus asserting
// reject-and-survive (never crash, never leak the connection's
// transaction), pipelining semantics, disconnect orphan-abort, and the
// localhost mixed-workload smoke that the CI `server-smoke` job runs with
// history recording + the black-box SI checker.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/encoding.h"
#include "core/database.h"
#include "core/history.h"
#include "core/transaction.h"
#include "server/client.h"
#include "server/server.h"
#include "server/wire.h"

namespace skeena::server {
namespace {

using skeena::Key;
using skeena::MakeKey;

std::string Hex(std::string_view s) {
  static const char* d = "0123456789abcdef";
  std::string out;
  for (unsigned char c : s) {
    out.push_back(d[c >> 4]);
    out.push_back(d[c & 15]);
    out.push_back(' ');
  }
  return out;
}

std::string Bytes(std::initializer_list<int> bs) {
  std::string out;
  for (int b : bs) out.push_back(static_cast<char>(b));
  return out;
}

/// Extracts exactly one frame from a complete buffer.
Frame MustExtract(std::string_view buf) {
  size_t consumed = 0;
  Frame f;
  Err err;
  uint64_t hint;
  EXPECT_EQ(ExtractFrame(buf, &consumed, &f, &err, &hint),
            ParseResult::kFrame);
  EXPECT_EQ(consumed, buf.size());
  return f;
}

bool WaitFor(const std::function<bool()>& pred,
             std::chrono::milliseconds timeout = std::chrono::seconds(10)) {
  auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

// ===========================================================================
// Codec: frame layout + worked examples, byte for byte
// ===========================================================================

TEST(WireTest, FrameHeaderLayoutMatchesSpec) {
  // PROTOCOL.md "Frame layout": u32 len at 0, u64 request_id at 4, u8
  // opcode at 12, body at 13; len counts request_id + opcode + body.
  std::string f = EncodePing(0x1122334455667788ull);
  ASSERT_EQ(f.size(), kHeaderBytes);
  uint32_t len;
  std::memcpy(&len, f.data(), 4);
  EXPECT_EQ(len, kLenOverhead);  // empty body
  uint64_t rid;
  std::memcpy(&rid, f.data() + 4, 8);
  EXPECT_EQ(rid, 0x1122334455667788ull);
  EXPECT_EQ(static_cast<uint8_t>(f[12]), 0x07);  // PING
}

TEST(WireTest, WorkedExample1BytesExact) {
  // PROTOCOL.md "Worked example 1 — single-statement commit".
  std::string begin = EncodeBegin(7, IsolationLevel::kSnapshot);
  EXPECT_EQ(Hex(begin),
            Hex(Bytes({0x0a, 0, 0, 0, 7, 0, 0, 0, 0, 0, 0, 0, 0x03, 0x01})));

  std::string exec = EncodeExec(8, {Stmt::Put(0, MakeKey(1), "hi")});
  std::string want = Bytes({0x26, 0, 0, 0, 8, 0, 0, 0, 0, 0, 0, 0, 0x04,
                            0x01, 0x00,                    // count = 1
                            0x02,                          // kind = PUT
                            0, 0, 0, 0,                    // table_token
                            0, 0, 0, 0, 0, 0, 0, 1,        // key (big-endian 1)
                            0, 0, 0, 0, 0, 0, 0, 0,        //
                            0x02, 0, 0, 0,                 // value_len
                            'h', 'i'});
  EXPECT_EQ(Hex(exec), Hex(want));
  EXPECT_EQ(exec.size(), 42u);

  std::string commit = EncodeCommit(9);
  EXPECT_EQ(Hex(commit),
            Hex(Bytes({0x09, 0, 0, 0, 9, 0, 0, 0, 0, 0, 0, 0, 0x05})));

  // Responses.
  EXPECT_EQ(Hex(EncodeBeginOk(7, 42)),
            Hex(Bytes({0x11, 0, 0, 0, 7, 0, 0, 0, 0, 0, 0, 0, 0x83,
                       0x2a, 0, 0, 0, 0, 0, 0, 0})));
  StmtResult put_ok;
  put_ok.kind = Stmt::Kind::kPut;
  EXPECT_EQ(Hex(EncodeExecOk(8, {put_ok})),
            Hex(Bytes({0x0c, 0, 0, 0, 8, 0, 0, 0, 0, 0, 0, 0, 0x84,
                       0x01, 0x00, 0x00})));
  EXPECT_EQ(Hex(EncodeCommitOk(9)),
            Hex(Bytes({0x09, 0, 0, 0, 9, 0, 0, 0, 0, 0, 0, 0, 0x85})));
}

TEST(WireTest, WorkedExample2BytesExact) {
  // PROTOCOL.md "Worked example 2 — batched multi-statement frame".
  std::string exec =
      EncodeExec(11, {Stmt::Put(0, MakeKey(1), "v1"), Stmt::Get(0, MakeKey(1)),
                      Stmt::Scan(0, MakeKey(0), 10)});
  ASSERT_EQ(exec.size(), 88u);
  uint32_t len;
  std::memcpy(&len, exec.data(), 4);
  EXPECT_EQ(len, 84u);
  EXPECT_EQ(static_cast<uint8_t>(exec[12]), 0x04);
  // count at body offset 0 (frame offset 13); statement kinds at the
  // statement starts: 15, 15+27=42, 42+21=63.
  EXPECT_EQ(static_cast<uint8_t>(exec[13]), 3);
  EXPECT_EQ(static_cast<uint8_t>(exec[15]), 2);  // PUT
  EXPECT_EQ(static_cast<uint8_t>(exec[42]), 1);  // GET
  EXPECT_EQ(static_cast<uint8_t>(exec[63]), 4);  // SCAN

  StmtResult put_ok;
  put_ok.kind = Stmt::Kind::kPut;
  StmtResult get_hit;
  get_hit.kind = Stmt::Kind::kGet;
  get_hit.found = true;
  get_hit.value = "v1";
  StmtResult scan_one;
  scan_one.kind = Stmt::Kind::kScan;
  scan_one.rows.emplace_back(MakeKey(1), "v1");
  std::string rsp = EncodeExecOk(11, {put_ok, get_hit, scan_one});
  ASSERT_EQ(rsp.size(), 51u);
  std::memcpy(&len, rsp.data(), 4);
  EXPECT_EQ(len, 47u);
  std::string want = Bytes({0x2f, 0, 0, 0, 0x0b, 0, 0, 0, 0, 0, 0, 0, 0x84,
                            0x03, 0x00,              // count = 3
                            0x00,                    // PUT: status OK
                            0x00, 0x01,              // GET: OK, found
                            0x02, 0, 0, 0, 'v', '1',
                            0x00,                    // SCAN: status OK
                            0x01, 0, 0, 0,           // row_count = 1
                            0, 0, 0, 0, 0, 0, 0, 1,  // row key
                            0, 0, 0, 0, 0, 0, 0, 0,
                            0x02, 0, 0, 0, 'v', '1'});
  EXPECT_EQ(Hex(rsp), Hex(want));
}

// ===========================================================================
// Codec: round trips for every opcode
// ===========================================================================

TEST(WireTest, RoundTripRequests) {
  {
    Frame f = MustExtract(EncodeHello(1));
    EXPECT_EQ(f.opcode, static_cast<uint8_t>(Op::kHello));
    uint8_t version;
    Err err;
    ASSERT_TRUE(DecodeHelloBody(f.body, &version, &err));
    EXPECT_EQ(version, kProtocolVersion);
  }
  {
    Frame f = MustExtract(EncodeOpenTable(2, "accounts"));
    std::string name;
    ASSERT_TRUE(DecodeOpenTableBody(f.body, &name));
    EXPECT_EQ(name, "accounts");
  }
  for (auto iso : {IsolationLevel::kReadCommitted, IsolationLevel::kSnapshot,
                   IsolationLevel::kSerializable}) {
    Frame f = MustExtract(EncodeBegin(3, iso));
    IsolationLevel got;
    ASSERT_TRUE(DecodeBeginBody(f.body, &got));
    EXPECT_EQ(got, iso);
  }
  {
    std::vector<Stmt> in = {Stmt::Get(0, MakeKey(1)),
                            Stmt::Put(1, MakeKey(2), "val"),
                            Stmt::Delete(2, MakeKey(3)),
                            Stmt::Scan(3, MakeKey(0), 7)};
    Frame f = MustExtract(EncodeExec(4, in));
    std::vector<Stmt> out;
    ASSERT_TRUE(DecodeExecBody(f.body, &out));
    ASSERT_EQ(out.size(), in.size());
    for (size_t i = 0; i < in.size(); ++i) {
      EXPECT_EQ(out[i].kind, in[i].kind);
      EXPECT_EQ(out[i].table, in[i].table);
      EXPECT_EQ(out[i].key, in[i].key);
    }
    EXPECT_EQ(out[1].value, "val");
    EXPECT_EQ(out[3].scan_limit, 7u);
  }
  for (auto [frame, op] :
       std::vector<std::pair<std::string, Op>>{{EncodeCommit(5), Op::kCommit},
                                               {EncodeAbort(6), Op::kAbort},
                                               {EncodePing(7), Op::kPing}}) {
    Frame f = MustExtract(frame);
    EXPECT_EQ(f.opcode, static_cast<uint8_t>(op));
    EXPECT_TRUE(f.body.empty());
  }
}

TEST(WireTest, RoundTripResponses) {
  {
    Frame f = MustExtract(EncodeHelloOk(1, 1, 0));
    uint8_t version, flags;
    ASSERT_TRUE(DecodeHelloOkBody(f.body, &version, &flags));
    EXPECT_EQ(version, 1);
  }
  {
    Frame f = MustExtract(EncodeTableOk(2, 5, EngineKind::kStor));
    uint32_t token;
    EngineKind engine;
    ASSERT_TRUE(DecodeTableOkBody(f.body, &token, &engine));
    EXPECT_EQ(token, 5u);
    EXPECT_EQ(engine, EngineKind::kStor);
  }
  {
    Frame f = MustExtract(EncodeBeginOk(3, 999));
    GlobalTxnId gtid;
    ASSERT_TRUE(DecodeBeginOkBody(f.body, &gtid));
    EXPECT_EQ(gtid, 999u);
  }
  {
    // Every result shape: GET hit, GET miss, PUT ok, DELETE not-found,
    // SCAN with rows, and a statement-level abort.
    StmtResult get_hit, get_miss, put_ok, del_nf, scan, aborted;
    get_hit.kind = Stmt::Kind::kGet;
    get_hit.found = true;
    get_hit.value = "payload";
    get_miss.kind = Stmt::Kind::kGet;
    put_ok.kind = Stmt::Kind::kPut;
    del_nf.kind = Stmt::Kind::kDelete;
    del_nf.status = Err::kNotFound;
    scan.kind = Stmt::Kind::kScan;
    scan.rows.emplace_back(MakeKey(1), "a");
    scan.rows.emplace_back(MakeKey(2), "b");
    aborted.kind = Stmt::Kind::kPut;
    aborted.status = Err::kAborted;
    std::vector<StmtResult> in = {get_hit, get_miss, put_ok,
                                  del_nf,  scan,     aborted};
    std::vector<Stmt::Kind> kinds;
    for (const StmtResult& r : in) kinds.push_back(r.kind);
    Frame f = MustExtract(EncodeExecOk(4, in));
    std::vector<StmtResult> out;
    ASSERT_TRUE(DecodeExecOkBody(f.body, kinds, &out));
    ASSERT_EQ(out.size(), in.size());
    EXPECT_TRUE(out[0].found);
    EXPECT_EQ(out[0].value, "payload");
    EXPECT_FALSE(out[1].found);
    EXPECT_EQ(out[3].status, Err::kNotFound);
    ASSERT_EQ(out[4].rows.size(), 2u);
    EXPECT_EQ(out[4].rows[1].second, "b");
    EXPECT_EQ(out[5].status, Err::kAborted);
    EXPECT_TRUE(ErrIsAbort(out[5].status));
  }
  for (auto [frame, op] :
       std::vector<std::pair<std::string, Op>>{{EncodeCommitOk(5),
                                                Op::kCommitOk},
                                               {EncodeAbortOk(6), Op::kAbortOk},
                                               {EncodePong(7), Op::kPong}}) {
    Frame f = MustExtract(frame);
    EXPECT_EQ(f.opcode, static_cast<uint8_t>(op));
    EXPECT_TRUE(f.body.empty());
  }
  for (Op op : {Op::kTxnErr, Op::kProtoErr}) {
    Frame f = MustExtract(EncodeErr(8, op, Err::kDeadlock, "victim"));
    EXPECT_EQ(f.opcode, static_cast<uint8_t>(op));
    Err code;
    std::string msg;
    ASSERT_TRUE(DecodeErrBody(f.body, &code, &msg));
    EXPECT_EQ(code, Err::kDeadlock);
    EXPECT_EQ(msg, "victim");
  }
}

TEST(WireTest, StatusProjectionRoundTrip) {
  // PROTOCOL.md: codes 1..10 are the wire projection of StatusCode, and
  // 2..5 are exactly the IsAnyAbort band.
  EXPECT_EQ(ErrFromStatus(Status::NotFound("")), Err::kNotFound);
  EXPECT_EQ(ErrFromStatus(Status::Aborted("")), Err::kAborted);
  EXPECT_EQ(ErrFromStatus(Status::SkeenaAbort("")), Err::kSkeenaAbort);
  EXPECT_EQ(ErrFromStatus(Status::Deadlock("")), Err::kDeadlock);
  EXPECT_EQ(ErrFromStatus(Status::TimedOut("")), Err::kTimedOut);
  for (Err e : {Err::kAborted, Err::kSkeenaAbort, Err::kDeadlock,
                Err::kTimedOut}) {
    EXPECT_TRUE(ErrIsAbort(e));
    EXPECT_TRUE(ErrToStatus(e, "").IsAnyAbort());
  }
  EXPECT_FALSE(ErrIsAbort(Err::kNotFound));
  EXPECT_FALSE(ErrIsAbort(Err::kBusy));
}

// ===========================================================================
// Codec: extraction and the malformed-body corpus (decoder level)
// ===========================================================================

TEST(WireTest, ExtractNeedsWholeFrame) {
  std::string frame = EncodeOpenTable(1, "t");
  for (size_t n = 0; n < frame.size(); ++n) {
    size_t consumed = 0;
    Frame f;
    Err err;
    uint64_t hint;
    EXPECT_EQ(ExtractFrame(std::string_view(frame).substr(0, n), &consumed,
                           &f, &err, &hint),
              ParseResult::kNeedMore)
        << "prefix length " << n;
    EXPECT_EQ(consumed, 0u);
  }
  MustExtract(frame);
}

TEST(WireTest, ExtractPipelinedFrames) {
  std::string buf = EncodeBegin(1, IsolationLevel::kSnapshot) +
                    EncodeCommit(2) + EncodePing(3);
  size_t consumed = 0;
  std::vector<uint8_t> ops;
  for (;;) {
    Frame f;
    Err err;
    uint64_t hint;
    ParseResult r = ExtractFrame(std::string_view(buf).substr(consumed),
                                 &consumed, &f, &err, &hint);
    if (r != ParseResult::kFrame) break;
    ops.push_back(f.opcode);
  }
  EXPECT_EQ(consumed, buf.size());
  EXPECT_EQ(ops, (std::vector<uint8_t>{0x03, 0x05, 0x07}));
}

TEST(WireTest, ExtractRejectsBadLen) {
  // len < 9 (here: 8) → ERR_BAD_FRAME, request id carried in the hint.
  std::string bad = Bytes({8, 0, 0, 0, 0x2a, 0, 0, 0, 0, 0, 0, 0, 0x07});
  size_t consumed = 0;
  Frame f;
  Err err;
  uint64_t hint;
  EXPECT_EQ(ExtractFrame(bad, &consumed, &f, &err, &hint),
            ParseResult::kError);
  EXPECT_EQ(err, Err::kBadFrame);
  EXPECT_EQ(hint, 0x2au);

  // len > 1 MiB → ERR_FRAME_TOO_BIG, rejected from the 4 header bytes
  // alone (no buffering): only the length prefix is present here.
  uint32_t big = kMaxFrameLen + 1;
  std::string prefix(4, '\0');
  std::memcpy(prefix.data(), &big, 4);
  EXPECT_EQ(ExtractFrame(prefix, &consumed, &f, &err, &hint),
            ParseResult::kError);
  EXPECT_EQ(err, Err::kFrameTooBig);
  EXPECT_EQ(hint, 0u);  // header not readable yet
}

TEST(WireTest, MalformedBodiesRejected) {
  uint8_t version;
  Err err;
  // Handshake: wrong magic, version 0, truncated, trailing garbage.
  EXPECT_FALSE(DecodeHelloBody("NOPE\x01\x00", &version, &err));
  EXPECT_EQ(err, Err::kBadMagic);
  EXPECT_FALSE(DecodeHelloBody(Bytes({'S', 'K', 'N', 'A', 0, 0}), &version,
                               &err));
  EXPECT_EQ(err, Err::kBadVersion);
  EXPECT_FALSE(DecodeHelloBody("SKN", &version, &err));
  EXPECT_EQ(err, Err::kBadFrame);
  EXPECT_FALSE(DecodeHelloBody("SKNA\x01\x00\x00", &version, &err));
  EXPECT_EQ(err, Err::kBadFrame);

  std::string name;
  EXPECT_FALSE(DecodeOpenTableBody(Bytes({0, 0}), &name));    // len 0
  EXPECT_FALSE(DecodeOpenTableBody(Bytes({5, 0, 'a'}), &name));  // short
  std::string oversized = Bytes({0x2b, 0x01});  // 299 > kMaxTableName
  oversized += std::string(299, 'x');
  EXPECT_FALSE(DecodeOpenTableBody(oversized, &name));

  IsolationLevel iso;
  EXPECT_FALSE(DecodeBeginBody(Bytes({3}), &iso));    // unknown level
  EXPECT_FALSE(DecodeBeginBody(Bytes({1, 0}), &iso));  // trailing byte
  EXPECT_FALSE(DecodeBeginBody("", &iso));

  std::vector<Stmt> stmts;
  EXPECT_FALSE(DecodeExecBody(Bytes({0, 0}), &stmts));  // count 0
  std::string toomany = Bytes({0x01, 0x10});            // count 4097
  EXPECT_FALSE(DecodeExecBody(toomany, &stmts));
  // kind 9 is not a statement kind.
  std::string badkind = Bytes({1, 0, 9});
  badkind += std::string(20, '\0');
  EXPECT_FALSE(DecodeExecBody(badkind, &stmts));
  // Statement truncated mid-key.
  std::string truncated = Bytes({1, 0, 1, 0, 0, 0, 0, 1, 2, 3});
  EXPECT_FALSE(DecodeExecBody(truncated, &stmts));
  // PUT whose value_len runs past the frame end.
  std::string overrun = Bytes({1, 0, 2});
  overrun += std::string(4, '\0');   // table
  overrun += std::string(16, '\0');  // key
  overrun += Bytes({0xff, 0xff, 0, 0});  // value_len = 65535, no bytes
  EXPECT_FALSE(DecodeExecBody(overrun, &stmts));
  // Trailing bytes after a valid statement.
  std::string trailing = EncodeExec(1, {Stmt::Get(0, MakeKey(1))});
  std::string body = trailing.substr(kHeaderBytes) + "x";
  EXPECT_FALSE(DecodeExecBody(body, &stmts));

  std::vector<StmtResult> results;
  // Result count disagrees with the request's statement count.
  StmtResult ok_put;
  ok_put.kind = Stmt::Kind::kPut;
  std::string two = EncodeExecOk(1, {ok_put, ok_put}).substr(kHeaderBytes);
  EXPECT_FALSE(DecodeExecOkBody(two, {Stmt::Kind::kPut}, &results));

  Err code;
  std::string msg;
  EXPECT_FALSE(DecodeErrBody(Bytes({1, 5, 0, 0, 0, 'a'}), &code, &msg));
}

// ===========================================================================
// Live server fixture
// ===========================================================================

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions opts;
    opts.record_history = true;
    db_ = std::make_unique<Database>(opts);
    ASSERT_TRUE(db_->CreateTable("mem_t", EngineKind::kMem, 16384).ok());
    ASSERT_TRUE(db_->CreateTable("stor_t", EngineKind::kStor).ok());
    server_ = std::make_unique<Server>(db_.get(), server_opts_);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    if (server_) server_->Stop();
    EXPECT_EQ(db_->active_transactions(), 0)
        << "a transaction outlived its connection";
  }

  Status Connect(Client* c) {
    return c->Connect("127.0.0.1", server_->port());
  }

  /// Connects a raw socket with no handshake (hostile-client tests).
  int RawConnect() {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server_->port());
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    return fd;
  }

  /// True once every live transaction has been retired (orphans aborted).
  bool Quiesced() { return WaitFor([&] { return db_->active_transactions() == 0; }); }

  /// The server still accepts and serves new connections.
  void ExpectServerAlive() {
    Client probe;
    ASSERT_TRUE(Connect(&probe).ok());
    EXPECT_TRUE(probe.Ping().ok());
  }

  ServerOptions server_opts_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, HandshakeAndPing) {
  Client c;
  ASSERT_TRUE(Connect(&c).ok());
  EXPECT_EQ(c.negotiated_version(), kProtocolVersion);
  EXPECT_TRUE(c.Ping().ok());
}

TEST_F(ServerTest, ReHelloIsIdempotent) {
  Client c;
  ASSERT_TRUE(Connect(&c).ok());
  ASSERT_TRUE(c.SendRaw(EncodeHello(99)).ok());
  Response rsp;
  ASSERT_TRUE(c.RecvResponse(&rsp).ok());
  EXPECT_EQ(rsp.op, Op::kHelloOk);
  EXPECT_EQ(rsp.request_id, 99u);
  EXPECT_TRUE(c.Ping().ok());
}

TEST_F(ServerTest, OpenTableResolvesAndRejectsUnknown) {
  Client c;
  ASSERT_TRUE(Connect(&c).ok());
  auto t0 = c.OpenTable("mem_t");
  ASSERT_TRUE(t0.ok());
  EXPECT_EQ(*t0, 0u);  // dense per-connection tokens, in open order
  auto t1 = c.OpenTable("stor_t");
  ASSERT_TRUE(t1.ok());
  EXPECT_EQ(*t1, 1u);
  auto missing = c.OpenTable("no_such_table");
  EXPECT_TRUE(missing.status().IsNotFound());
  EXPECT_TRUE(c.Ping().ok());  // connection survives a TXN_ERR
}

TEST_F(ServerTest, CommitIsVisibleAcrossConnections) {
  Client writer;
  ASSERT_TRUE(Connect(&writer).ok());
  auto mem_t = writer.OpenTable("mem_t");
  auto stor_t = writer.OpenTable("stor_t");
  ASSERT_TRUE(mem_t.ok() && stor_t.ok());
  ASSERT_TRUE(writer.Begin().ok());
  ASSERT_TRUE(writer.Put(*mem_t, MakeKey(1), "mem-value").ok());
  ASSERT_TRUE(writer.Put(*stor_t, MakeKey(2), "stor-value").ok());
  ASSERT_TRUE(writer.Commit().ok());

  Client reader;
  ASSERT_TRUE(Connect(&reader).ok());
  auto r_mem = reader.OpenTable("mem_t");
  auto r_stor = reader.OpenTable("stor_t");
  ASSERT_TRUE(reader.Begin().ok());
  std::string value;
  bool found = false;
  ASSERT_TRUE(reader.Get(*r_mem, MakeKey(1), &value, &found).ok());
  EXPECT_TRUE(found);
  EXPECT_EQ(value, "mem-value");
  ASSERT_TRUE(reader.Get(*r_stor, MakeKey(2), &value, &found).ok());
  EXPECT_TRUE(found);
  EXPECT_EQ(value, "stor-value");
  ASSERT_TRUE(reader.Get(*r_mem, MakeKey(777), &value, &found).ok());
  EXPECT_FALSE(found);  // miss is status OK + found = 0, not an error
  EXPECT_TRUE(reader.Commit().ok());
}

TEST_F(ServerTest, BatchedExecAllKinds) {
  Client c;
  ASSERT_TRUE(Connect(&c).ok());
  auto t = c.OpenTable("mem_t");
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(c.Begin().ok());
  auto results = c.Exec({Stmt::Put(*t, MakeKey(1), "v1"),
                         Stmt::Put(*t, MakeKey(2), "v2"),
                         Stmt::Get(*t, MakeKey(1)),
                         Stmt::Delete(*t, MakeKey(2)),
                         Stmt::Get(*t, MakeKey(2)),
                         Stmt::Scan(*t, MakeKey(0), 10)});
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 6u);
  EXPECT_EQ((*results)[0].status, Err::kOk);
  EXPECT_TRUE((*results)[2].found);
  EXPECT_EQ((*results)[2].value, "v1");
  EXPECT_EQ((*results)[3].status, Err::kOk);
  EXPECT_FALSE((*results)[4].found);  // deleted in the same batch
  ASSERT_EQ((*results)[5].rows.size(), 1u);
  EXPECT_EQ((*results)[5].rows[0].second, "v1");
  EXPECT_TRUE(c.Commit().ok());
}

TEST_F(ServerTest, TxnStateErrorsKeepConnectionAlive) {
  Client c;
  ASSERT_TRUE(Connect(&c).ok());
  auto t = c.OpenTable("mem_t");
  ASSERT_TRUE(t.ok());

  // EXEC / COMMIT with no open transaction → ERR_NO_TXN.
  ASSERT_TRUE(c.SendRaw(EncodeExec(50, {Stmt::Get(*t, MakeKey(1))})).ok());
  Response rsp;
  ASSERT_TRUE(c.RecvResponse(&rsp).ok());
  EXPECT_EQ(rsp.op, Op::kTxnErr);
  EXPECT_EQ(rsp.err_code(), Err::kNoTxn);
  ASSERT_TRUE(c.SendRaw(EncodeCommit(51)).ok());
  ASSERT_TRUE(c.RecvResponse(&rsp).ok());
  EXPECT_EQ(rsp.err_code(), Err::kNoTxn);

  // ABORT with no transaction is idempotent, not an error.
  EXPECT_TRUE(c.Abort().ok());

  // BEGIN while open → ERR_TXN_OPEN; the open transaction is untouched.
  ASSERT_TRUE(c.Begin().ok());
  ASSERT_TRUE(c.SendRaw(EncodeBegin(52, IsolationLevel::kSnapshot)).ok());
  ASSERT_TRUE(c.RecvResponse(&rsp).ok());
  EXPECT_EQ(rsp.op, Op::kTxnErr);
  EXPECT_EQ(rsp.err_code(), Err::kTxnOpen);
  EXPECT_TRUE(c.Put(*t, MakeKey(9), "still-open").ok());
  EXPECT_TRUE(c.Commit().ok());

  // Unknown table_token is a statement-level ERR_INVALID; the
  // transaction stays open.
  ASSERT_TRUE(c.Begin().ok());
  auto results = c.Exec({Stmt::Get(12345, MakeKey(1))});
  ASSERT_TRUE(results.ok());
  EXPECT_EQ((*results)[0].status, Err::kInvalid);
  EXPECT_TRUE(c.Commit().ok());
}

TEST_F(ServerTest, PipelinedTransactionOneRoundTrip) {
  Client c;
  ASSERT_TRUE(Connect(&c).ok());
  auto t = c.OpenTable("mem_t");
  ASSERT_TRUE(t.ok());

  // PROTOCOL.md "Pipelining": BEGIN + EXEC + COMMIT written in one send;
  // responses come back in order with request ids echoed verbatim.
  std::string burst = EncodeBegin(101, IsolationLevel::kSnapshot);
  burst += EncodeExec(102, {Stmt::Put(*t, MakeKey(42), "pipelined")});
  burst += EncodeCommit(103);
  ASSERT_TRUE(c.SendRaw(burst).ok());

  Response rsp;
  ASSERT_TRUE(c.RecvResponse(&rsp).ok());
  EXPECT_EQ(rsp.op, Op::kBeginOk);
  EXPECT_EQ(rsp.request_id, 101u);
  ASSERT_TRUE(c.RecvResponse(&rsp).ok());
  EXPECT_EQ(rsp.op, Op::kExecOk);
  EXPECT_EQ(rsp.request_id, 102u);
  ASSERT_TRUE(c.RecvResponse(&rsp).ok());
  EXPECT_EQ(rsp.op, Op::kCommitOk);
  EXPECT_EQ(rsp.request_id, 103u);
}

TEST_F(ServerTest, PipelinedAbortTailReportsNoTxn) {
  Client c;
  ASSERT_TRUE(Connect(&c).ok());
  auto t = c.OpenTable("mem_t");
  ASSERT_TRUE(t.ok());

  // An ABORT racing ahead of a pipelined COMMIT: the COMMIT must answer
  // ERR_NO_TXN (the documented "tail of a prior abort").
  std::string burst = EncodeBegin(1, IsolationLevel::kSnapshot);
  burst += EncodeExec(2, {Stmt::Put(*t, MakeKey(5), "doomed")});
  burst += EncodeAbort(3);
  burst += EncodeCommit(4);
  ASSERT_TRUE(c.SendRaw(burst).ok());

  Response rsp;
  ASSERT_TRUE(c.RecvResponse(&rsp).ok());
  EXPECT_EQ(rsp.op, Op::kBeginOk);
  ASSERT_TRUE(c.RecvResponse(&rsp).ok());
  EXPECT_EQ(rsp.op, Op::kExecOk);
  ASSERT_TRUE(c.RecvResponse(&rsp).ok());
  EXPECT_EQ(rsp.op, Op::kAbortOk);
  ASSERT_TRUE(c.RecvResponse(&rsp).ok());
  EXPECT_EQ(rsp.op, Op::kTxnErr);
  EXPECT_EQ(rsp.err_code(), Err::kNoTxn);

  // The aborted write must not be visible.
  ASSERT_TRUE(c.Begin().ok());
  std::string value;
  bool found = true;
  ASSERT_TRUE(c.Get(*t, MakeKey(5), &value, &found).ok());
  EXPECT_FALSE(found);
  EXPECT_TRUE(c.Commit().ok());
}

TEST_F(ServerTest, FramesSplitAcrossWritesReassemble) {
  Client c;
  ASSERT_TRUE(Connect(&c).ok());
  // Dribble a PING one byte at a time: partial reads must reassemble.
  std::string ping = EncodePing(7);
  for (char b : ping) {
    ASSERT_TRUE(c.SendRaw(std::string_view(&b, 1)).ok());
  }
  Response rsp;
  ASSERT_TRUE(c.RecvResponse(&rsp).ok());
  EXPECT_EQ(rsp.op, Op::kPong);
  EXPECT_EQ(rsp.request_id, 7u);
}

TEST_F(ServerTest, MidTransactionDisconnectAbortsOrphan) {
  uint64_t before = server_->stats().txns_aborted_on_disconnect;
  {
    Client c;
    ASSERT_TRUE(Connect(&c).ok());
    auto t = c.OpenTable("mem_t");
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(c.Begin().ok());
    ASSERT_TRUE(c.Put(*t, MakeKey(100), "never-committed").ok());
    ASSERT_EQ(db_->active_transactions(), 1);
    c.Close();  // mid-transaction disconnect
  }
  ASSERT_TRUE(Quiesced());
  EXPECT_TRUE(WaitFor([&] {
    return server_->stats().txns_aborted_on_disconnect == before + 1;
  }));

  // The orphan was rolled back: its write is invisible.
  Client probe;
  ASSERT_TRUE(Connect(&probe).ok());
  auto t = probe.OpenTable("mem_t");
  ASSERT_TRUE(probe.Begin().ok());
  std::string value;
  bool found = true;
  ASSERT_TRUE(probe.Get(*t, MakeKey(100), &value, &found).ok());
  EXPECT_FALSE(found);
  EXPECT_TRUE(probe.Commit().ok());
}

TEST_F(ServerTest, StopAbortsEveryOrphan) {
  Client a, b;
  ASSERT_TRUE(Connect(&a).ok());
  ASSERT_TRUE(Connect(&b).ok());
  auto ta = a.OpenTable("mem_t");
  auto tb = b.OpenTable("stor_t");
  ASSERT_TRUE(a.Begin().ok());
  ASSERT_TRUE(b.Begin().ok());
  ASSERT_TRUE(a.Put(*ta, MakeKey(1), "x").ok());
  ASSERT_TRUE(b.Put(*tb, MakeKey(2), "y").ok());
  ASSERT_EQ(db_->active_transactions(), 2);
  server_->Stop();
  EXPECT_EQ(db_->active_transactions(), 0);
  EXPECT_EQ(server_->stats().txns_aborted_on_disconnect, 2u);
}

// ---------------------------------------------------------------------------
// Hostile inputs against the live server: every entry must produce a
// PROTO_ERR with the documented code, close the connection, abort the open
// transaction, and leave the server serving other connections.
// ---------------------------------------------------------------------------

struct HostileInput {
  const char* name;
  std::string bytes;
  Err want;
};

TEST_F(ServerTest, MalformedFrameCorpusRejectAndSurvive) {
  std::string oversized_prefix(4, '\0');
  uint32_t big = kMaxFrameLen + 1;
  std::memcpy(oversized_prefix.data(), &big, 4);
  oversized_prefix += Bytes({9, 0, 0, 0, 0, 0, 0, 0, 0x07});

  // len matches the bytes on the wire (a shorter len would just make the
  // server wait for the rest of the frame); the truncation is inside the
  // body: count=1 but only 2 of the GET statement's 21 bytes follow.
  std::string truncated_stmt =
      Bytes({0x0d, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0x04, 1, 0, 1, 0});

  std::vector<HostileInput> corpus = {
      {"len-below-minimum",
       Bytes({8, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0x07}), Err::kBadFrame},
      {"oversized-length-prefix", oversized_prefix, Err::kFrameTooBig},
      {"unknown-opcode", Bytes({9, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0x42}),
       Err::kBadOpcode},
      {"response-opcode-as-request",
       Bytes({9, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0x85}), Err::kBadOpcode},
      {"exec-count-zero",
       Bytes({0x0b, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0x04, 0, 0}),
       Err::kBadFrame},
      {"exec-truncated-statement", truncated_stmt, Err::kBadFrame},
      {"exec-trailing-garbage",
       [] {
         std::string f = EncodeExec(1, {Stmt::Get(0, MakeKey(1))});
         f.push_back('x');
         uint32_t len;
         std::memcpy(&len, f.data(), 4);
         len += 1;
         std::memcpy(f.data(), &len, 4);
         return f;
       }(),
       Err::kBadFrame},
      {"begin-unknown-isolation",
       Bytes({0x0a, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0x03, 9}),
       Err::kBadFrame},
      {"open-table-length-mismatch",
       Bytes({0x0e, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0x02, 9, 0, 'a', 'b',
              'c'}),
       Err::kBadFrame},
      {"commit-with-body",
       Bytes({0x0a, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0x05, 0}),
       Err::kBadFrame},
  };

  for (const HostileInput& hostile : corpus) {
    SCOPED_TRACE(hostile.name);
    Client c;
    ASSERT_TRUE(Connect(&c).ok());
    auto t = c.OpenTable("mem_t");
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(c.Begin().ok());
    ASSERT_TRUE(c.Put(*t, MakeKey(200), "doomed").ok());
    ASSERT_TRUE(c.SendRaw(hostile.bytes).ok());

    Response rsp;
    Status s = c.RecvResponse(&rsp);
    ASSERT_TRUE(s.ok()) << s.ToString();
    EXPECT_EQ(rsp.op, Op::kProtoErr);
    EXPECT_EQ(rsp.err_code(), hostile.want) << rsp.err_message();
    // After PROTO_ERR the server closes the connection.
    EXPECT_TRUE(WaitFor([&] { return !c.RecvResponse(&rsp).ok(); }));
    // ... and the open transaction was aborted, not leaked.
    ASSERT_TRUE(Quiesced());
    ExpectServerAlive();
  }
  EXPECT_GE(server_->stats().protocol_errors, 10u);
}

TEST_F(ServerTest, GarbageHandshakeRejected) {
  struct HandshakeCase {
    const char* name;
    std::string bytes;
    Err want;
  };
  std::vector<HandshakeCase> cases = {
      {"bad-magic", Bytes({0x0f, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0x01, 'N',
                           'O', 'P', 'E', 1, 0}),
       Err::kBadMagic},
      {"version-zero", Bytes({0x0f, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0x01,
                              'S', 'K', 'N', 'A', 0, 0}),
       Err::kBadVersion},
      {"short-hello-body",
       Bytes({0x0c, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0x01, 'S', 'K', 'N'}),
       Err::kBadFrame},
      {"first-frame-not-hello",
       Bytes({9, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0x07}), Err::kNotReady},
  };
  for (const HandshakeCase& hc : cases) {
    SCOPED_TRACE(hc.name);
    int fd = RawConnect();
    ASSERT_EQ(::send(fd, hc.bytes.data(), hc.bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(hc.bytes.size()));
    // Read until close; the last (only) frame must be the PROTO_ERR.
    std::string got;
    char buf[4096];
    for (;;) {
      ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) break;
      got.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    Frame f = MustExtract(got);
    EXPECT_EQ(f.opcode, static_cast<uint8_t>(Op::kProtoErr));
    Err code;
    std::string msg;
    ASSERT_TRUE(DecodeErrBody(f.body, &code, &msg));
    EXPECT_EQ(code, hc.want);
    ExpectServerAlive();
  }
}

TEST_F(ServerTest, TruncatedFrameThenEofJustCloses) {
  // A client that dies mid-frame: the server discards the partial input
  // and closes without a response. Nothing to assert but survival.
  int fd = RawConnect();
  std::string partial = EncodeHello(1).substr(0, 7);
  ASSERT_EQ(::send(fd, partial.data(), partial.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(partial.size()));
  ::close(fd);
  EXPECT_TRUE(WaitFor([&] {
    Server::Stats s = server_->stats();
    return s.connections_closed >= 1 && s.connections_accepted >= 1;
  }));
  ExpectServerAlive();
}

TEST_F(ServerTest, SlowReaderIsDisconnectedAndAborted) {
  // Re-start with a tiny response backlog cap.
  server_->Stop();
  server_opts_.max_outbuf_bytes = 64 * 1024;
  server_ = std::make_unique<Server>(db_.get(), server_opts_);
  ASSERT_TRUE(server_->Start().ok());

  // Seed an 8 KiB row, then pipeline thousands of GETs for it without
  // reading any responses: the backlog (~32 MiB) must blow the 64 KiB cap
  // long before kernel socket buffers can absorb it.
  Client seed;
  ASSERT_TRUE(Connect(&seed).ok());
  auto t = seed.OpenTable("mem_t");
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(seed.Begin().ok());
  ASSERT_TRUE(seed.Put(*t, MakeKey(1), std::string(8192, 'z')).ok());
  ASSERT_TRUE(seed.Commit().ok());

  Client c;
  ASSERT_TRUE(Connect(&c).ok());
  auto t2 = c.OpenTable("mem_t");
  ASSERT_TRUE(t2.ok());
  ASSERT_TRUE(c.Begin().ok());
  std::string burst;
  for (int i = 0; i < 4000; ++i) {
    burst += EncodeExec(1000 + i, {Stmt::Get(*t2, MakeKey(1))});
  }
  c.SendRaw(burst);  // sends may fail once the server disconnects us

  // Without reading a byte, the connection must eventually die...
  EXPECT_TRUE(WaitFor([&] {
    Response rsp;
    // Drain whatever was flushed before the cap tripped; stop on error.
    return !c.RecvResponse(&rsp).ok();
  }, std::chrono::seconds(30)));
  // ... and the orphaned transaction must be aborted.
  ASSERT_TRUE(Quiesced());
  EXPECT_GE(server_->stats().txns_aborted_on_disconnect, 1u);
  ExpectServerAlive();
}

// ---------------------------------------------------------------------------
// Mixed-workload smoke over localhost: the core of the CI `server-smoke`
// job. Many client threads run read/write transactions through the wire;
// afterwards the recorded history must pass the black-box SI checker and
// no transaction may outlive its connection.
// ---------------------------------------------------------------------------

TEST_F(ServerTest, MixedWorkloadHistoryPassesSiCheck) {
  constexpr int kThreads = 8;
  constexpr int kTxnsPerThread = 25;
  std::atomic<int> committed{0};

  std::vector<std::thread> threads;
  for (int tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      Client c;
      ASSERT_TRUE(Connect(&c).ok());
      auto mem_t = c.OpenTable("mem_t");
      auto stor_t = c.OpenTable("stor_t");
      ASSERT_TRUE(mem_t.ok() && stor_t.ok());
      for (int i = 0; i < kTxnsPerThread; ++i) {
        // Cross-engine read-modify-write over a small hot key range;
        // aborts are expected (and retried as fresh transactions).
        uint64_t k = static_cast<uint64_t>((tid * kTxnsPerThread + i) % 16);
        if (!c.Begin().ok()) continue;
        auto results = c.Exec({Stmt::Get(*mem_t, MakeKey(k)),
                               Stmt::Put(*mem_t, MakeKey(k),
                                         "m" + std::to_string(i)),
                               Stmt::Put(*stor_t, MakeKey(k),
                                         "s" + std::to_string(i))});
        if (!results.ok()) continue;  // aborted under the batch
        bool dead = false;
        for (const StmtResult& r : *results) {
          if (r.status != Err::kOk && r.status != Err::kNotFound) dead = true;
        }
        if (dead) {
          c.Abort();
          continue;
        }
        if (c.Commit().ok()) committed.fetch_add(1);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_GT(committed.load(), 0);

  // Clean shutdown: all connections drained, no orphaned transactions.
  server_->Stop();
  ASSERT_EQ(db_->active_transactions(), 0);

  auto history = db_->recorder()->Fold();
  EXPECT_GE(history.size(), static_cast<size_t>(committed.load()));
  SiCheckOptions check;
  check.anchor_index = db_->anchor_index();
  check.have_csr_dump = true;
  // Worker-pool threads multiplex connections, so thread-derived sessions
  // interleave unrelated clients (see SiCheckOptions::check_session_order).
  check.check_session_order = false;
  Timestamp floor = 0;
  for (const auto& m : db_->csr().DumpMappings(&floor)) {
    check.csr_mappings.push_back({m.key, m.vmin, m.vmax});
  }
  check.csr_floor = floor;
  SiReport report = CheckSnapshotIsolation(history, check);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

}  // namespace
}  // namespace skeena::server
