// Failure injection: I/O errors from the device layer must surface as
// Status (never crash or corrupt), and the system must keep functioning on
// the paths that don't touch the failed device.

#include <gtest/gtest.h>

#include <atomic>

#include "log/log_manager.h"
#include "log/storage_device.h"
#include "stordb/stor_engine.h"

namespace skeena {
namespace {

/// Wraps a MemDevice and fails operations on command.
class FlakyDevice : public StorageDevice {
 public:
  std::atomic<bool> fail_reads{false};
  std::atomic<bool> fail_writes{false};
  mutable std::atomic<uint64_t> reads_attempted{0};

  Status Append(std::span<const uint8_t> data, uint64_t* offset) override {
    if (fail_writes.load()) return Status::IOError("injected append failure");
    return inner_.Append(data, offset);
  }
  Status WriteAt(uint64_t offset, std::span<const uint8_t> data) override {
    if (fail_writes.load()) return Status::IOError("injected write failure");
    return inner_.WriteAt(offset, data);
  }
  Status ReadAt(uint64_t offset, std::span<uint8_t> out) const override {
    reads_attempted.fetch_add(1);
    if (fail_reads.load()) return Status::IOError("injected read failure");
    return inner_.ReadAt(offset, out);
  }
  Status Sync() override {
    if (fail_writes.load()) return Status::IOError("injected sync failure");
    return inner_.Sync();
  }
  uint64_t Size() const override { return inner_.Size(); }
  uint64_t bytes_read() const override { return inner_.bytes_read(); }
  uint64_t bytes_written() const override { return inner_.bytes_written(); }

 private:
  MemDevice inner_;
};

TEST(FailureTest, BufferPoolMissSurfacesReadError) {
  auto flaky = std::make_unique<FlakyDevice>();
  FlakyDevice* dev = flaky.get();

  stordb::StorEngine::Options opts;
  opts.buffer_pool_pages = 8;  // tiny: forces evictions + re-reads
  opts.device_factory = [&](const std::string&) {
    // The engine owns exactly one table in this test.
    return std::move(flaky);
  };
  stordb::StorEngine engine(std::make_unique<MemDevice>(), opts);
  TableId t = engine.CreateTable("t", 200);

  // Load enough rows to overflow the pool.
  for (uint64_t k = 0; k < 600; ++k) {
    auto txn = engine.Begin(IsolationLevel::kSnapshot);
    ASSERT_TRUE(engine.Put(txn.get(), t, MakeKey(k), std::string(64, 'x'))
                    .ok());
    ASSERT_TRUE(engine.PreCommit(txn.get(), k + 1, false).ok());
    engine.PostCommit(txn.get(), k + 1, false);
  }

  dev->fail_reads.store(true);
  // Sweep until some Get needs a device read; it must fail cleanly.
  bool saw_error = false;
  for (uint64_t k = 0; k < 600 && !saw_error; ++k) {
    auto txn = engine.Begin(IsolationLevel::kSnapshot);
    std::string v;
    Status s = engine.Get(txn.get(), t, MakeKey(k), &v);
    if (!s.ok() && s.code() == StatusCode::kIOError) saw_error = true;
    engine.Abort(txn.get());
  }
  EXPECT_TRUE(saw_error) << "pool misses must surface device errors";

  dev->fail_reads.store(false);
  // The engine recovers once the device heals.
  auto txn = engine.Begin(IsolationLevel::kSnapshot);
  std::string v;
  EXPECT_TRUE(engine.Get(txn.get(), t, MakeKey(1), &v).ok());
  engine.Abort(txn.get());
}

TEST(FailureTest, LogFlushErrorDoesNotAdvanceDurableLsn) {
  auto flaky = std::make_unique<FlakyDevice>();
  FlakyDevice* dev = flaky.get();
  LogManager::Options opts;
  opts.auto_flush = false;
  LogManager log(std::move(flaky), opts);

  uint8_t payload[32] = {};
  Lsn lsn = log.Append(payload);
  dev->fail_writes.store(true);
  EXPECT_FALSE(log.Flush().ok());
  EXPECT_LT(log.DurableLsn(), lsn)
      << "a failed flush must not claim durability";

  dev->fail_writes.store(false);
  EXPECT_TRUE(log.Flush().ok());
  EXPECT_GE(log.DurableLsn(), lsn);
}

TEST(FailureTest, LogRetainsRecordsAcrossFailedFlush) {
  auto flaky = std::make_unique<FlakyDevice>();
  FlakyDevice* dev = flaky.get();
  LogManager::Options opts;
  opts.auto_flush = false;
  LogManager log(std::move(flaky), opts);

  uint8_t a[4] = {1, 2, 3, 4};
  log.Append(a);
  dev->fail_writes.store(true);
  EXPECT_FALSE(log.Flush().ok());
  dev->fail_writes.store(false);
  uint8_t b[4] = {5, 6, 7, 8};
  log.Append(b);
  ASSERT_TRUE(log.Flush().ok());

  LogReader reader(log.device());
  std::string rec;
  std::vector<std::string> records;
  while (reader.Next(&rec)) records.push_back(rec);
  // Both records eventually durable, in order, exactly once.
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], std::string("\x01\x02\x03\x04", 4));
  EXPECT_EQ(records[1], std::string("\x05\x06\x07\x08", 4));
}

}  // namespace
}  // namespace skeena
