// Isolation-level semantics across engines (paper Table 2): what each
// level must show, and what it is allowed to show.

#include <gtest/gtest.h>

#include "core/skeena.h"
#include "support/db_fixtures.h"

namespace skeena {
namespace {

class IsolationTest : public ::testing::Test {
 protected:
  IsolationTest() : db_(test::FastOptions()) {
    mem_ = *db_.CreateTable("m", EngineKind::kMem);
    stor_ = *db_.CreateTable("s", EngineKind::kStor);
    auto init = db_.Begin();
    EXPECT_TRUE(init->Put(mem_, MakeKey(1), "m0").ok());
    EXPECT_TRUE(init->Put(stor_, MakeKey(1), "s0").ok());
    EXPECT_TRUE(init->Commit().ok());
  }

  void CommitBoth(const std::string& mv, const std::string& sv) {
    auto txn = db_.Begin();
    ASSERT_TRUE(txn->Put(mem_, MakeKey(1), mv).ok());
    ASSERT_TRUE(txn->Put(stor_, MakeKey(1), sv).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }

  Database db_;
  TableHandle mem_;
  TableHandle stor_;
};

// ---------------------------------------------------------- read committed

TEST_F(IsolationTest, ReadCommittedNonRepeatableReadsAllowed) {
  auto rc = db_.Begin(IsolationLevel::kReadCommitted);
  std::string v1, v2;
  ASSERT_TRUE(rc->Get(mem_, MakeKey(1), &v1).ok());
  CommitBoth("m1", "s1");
  ASSERT_TRUE(rc->Get(mem_, MakeKey(1), &v2).ok());
  EXPECT_EQ(v1, "m0");
  EXPECT_EQ(v2, "m1") << "RC must see each statement's latest committed";
}

TEST_F(IsolationTest, ReadCommittedNeverSeesUncommitted) {
  auto writer = db_.Begin();
  ASSERT_TRUE(writer->Put(mem_, MakeKey(1), "dirty-m").ok());
  ASSERT_TRUE(writer->Put(stor_, MakeKey(1), "dirty-s").ok());

  auto rc = db_.Begin(IsolationLevel::kReadCommitted);
  std::string v;
  ASSERT_TRUE(rc->Get(mem_, MakeKey(1), &v).ok());
  EXPECT_EQ(v, "m0");
  ASSERT_TRUE(rc->Get(stor_, MakeKey(1), &v).ok());
  EXPECT_EQ(v, "s0");
  writer->Abort();
}

TEST_F(IsolationTest, ReadCommittedStillNotTornAcrossEnginesPerAccessPair) {
  // Even under RC, a *single* access sees a committed state; the cross
  // engine pair read back-to-back may legally mix versions.
  CommitBoth("m1", "s1");
  auto rc = db_.Begin(IsolationLevel::kReadCommitted);
  std::string mv, sv;
  ASSERT_TRUE(rc->Get(mem_, MakeKey(1), &mv).ok());
  ASSERT_TRUE(rc->Get(stor_, MakeKey(1), &sv).ok());
  EXPECT_TRUE(mv == "m1");
  EXPECT_TRUE(sv == "s1");
}

// -------------------------------------------------------------- snapshot

TEST_F(IsolationTest, SnapshotRepeatableAcrossBothEngines) {
  auto si = db_.Begin(IsolationLevel::kSnapshot);
  std::string v;
  ASSERT_TRUE(si->Get(mem_, MakeKey(1), &v).ok());
  EXPECT_EQ(v, "m0");
  CommitBoth("m1", "s1");
  CommitBoth("m2", "s2");
  ASSERT_TRUE(si->Get(mem_, MakeKey(1), &v).ok());
  EXPECT_EQ(v, "m0") << "repeatable within the snapshot";
  ASSERT_TRUE(si->Get(stor_, MakeKey(1), &v).ok());
  EXPECT_EQ(v, "s0") << "the stor side must match the mem side's epoch";
}

TEST_F(IsolationTest, SnapshotFirstCommitterWinsInBothEngines) {
  for (EngineKind home : {EngineKind::kMem, EngineKind::kStor}) {
    const TableHandle& t = home == EngineKind::kMem ? mem_ : stor_;
    auto a = db_.Begin(IsolationLevel::kSnapshot);
    auto b = db_.Begin(IsolationLevel::kSnapshot);
    std::string v;
    ASSERT_TRUE(a->Get(t, MakeKey(1), &v).ok());
    ASSERT_TRUE(b->Get(t, MakeKey(1), &v).ok());
    ASSERT_TRUE(a->Put(t, MakeKey(1), "a").ok());
    ASSERT_TRUE(a->Commit().ok());
    Status s = b->Put(t, MakeKey(1), "b");
    Status c = s.ok() ? b->Commit() : s;
    EXPECT_TRUE(c.IsAnyAbort())
        << EngineKindToString(home) << ": second writer must lose";
  }
}

TEST_F(IsolationTest, SnapshotReadOnlyNeverAborts) {
  for (int i = 0; i < 50; ++i) {
    auto reader = db_.Begin(IsolationLevel::kSnapshot);
    std::string mv, sv;
    ASSERT_TRUE(reader->Get(mem_, MakeKey(1), &mv).ok());
    CommitBoth("m" + std::to_string(i), "s" + std::to_string(i));
    ASSERT_TRUE(reader->Get(stor_, MakeKey(1), &sv).ok());
    EXPECT_TRUE(reader->Commit().ok())
        << "read-only snapshot transactions must always commit";
  }
}

// ----------------------------------------------------------- serializable

TEST_F(IsolationTest, SerializableReadersAbortOnStaleCommit) {
  auto t = db_.Begin(IsolationLevel::kSerializable);
  std::string v;
  ASSERT_TRUE(t->Get(mem_, MakeKey(1), &v).ok());
  CommitBoth("m1", "s1");  // invalidates t's read
  ASSERT_TRUE(t->Put(stor_, MakeKey(2), "out").ok());
  Status s = t->Commit();
  EXPECT_TRUE(s.IsAnyAbort())
      << "anti-dependency must abort the serializable reader";
}

TEST_F(IsolationTest, SerializableCommitsWhenReadsStable) {
  auto t = db_.Begin(IsolationLevel::kSerializable);
  std::string v;
  ASSERT_TRUE(t->Get(mem_, MakeKey(1), &v).ok());
  ASSERT_TRUE(t->Get(stor_, MakeKey(1), &v).ok());
  ASSERT_TRUE(t->Put(mem_, MakeKey(2), "new").ok());
  EXPECT_TRUE(t->Commit().ok());
}

TEST_F(IsolationTest, MixedLevelsCoexist) {
  // Different concurrent transactions at different levels (the paper's
  // full-functionality principle, Section 3). The serializable reader
  // touches a key the writer leaves alone — its S lock would otherwise
  // block the writer by design (2PL).
  {
    auto extra = db_.Begin();
    ASSERT_TRUE(extra->Put(stor_, MakeKey(2), "aside").ok());
    ASSERT_TRUE(extra->Commit().ok());
  }
  auto si = db_.Begin(IsolationLevel::kSnapshot);
  auto rc = db_.Begin(IsolationLevel::kReadCommitted);
  auto ser = db_.Begin(IsolationLevel::kSerializable);
  std::string v;
  ASSERT_TRUE(si->Get(mem_, MakeKey(1), &v).ok());
  ASSERT_TRUE(ser->Get(stor_, MakeKey(2), &v).ok());
  CommitBoth("m1", "s1");
  ASSERT_TRUE(rc->Get(mem_, MakeKey(1), &v).ok());
  EXPECT_EQ(v, "m1");
  ASSERT_TRUE(si->Get(mem_, MakeKey(1), &v).ok());
  EXPECT_EQ(v, "m0");
  EXPECT_TRUE(si->Commit().ok());
  EXPECT_TRUE(rc->Commit().ok());
  EXPECT_TRUE(ser->Commit().ok()) << "untouched read set: stable";
}

// Parameterized: the pair-consistency guarantee must hold at SI and
// serializable for either first-touched engine.
class IsolationOrderSweep
    : public ::testing::TestWithParam<std::tuple<IsolationLevel, bool>> {};

TEST_P(IsolationOrderSweep, ConsistentPairEitherCrossingDirection) {
  auto [iso, mem_first] = GetParam();
  DatabaseOptions opts;
  Database db(opts);
  auto m = *db.CreateTable("m", EngineKind::kMem);
  auto s = *db.CreateTable("s", EngineKind::kStor);
  {
    auto init = db.Begin();
    ASSERT_TRUE(init->Put(m, MakeKey(1), "0").ok());
    ASSERT_TRUE(init->Put(s, MakeKey(1), "0").ok());
    ASSERT_TRUE(init->Commit().ok());
  }
  for (int i = 1; i <= 20; ++i) {
    auto w = db.Begin(IsolationLevel::kSnapshot);
    ASSERT_TRUE(w->Put(m, MakeKey(1), std::to_string(i)).ok());
    ASSERT_TRUE(w->Put(s, MakeKey(1), std::to_string(i)).ok());
    ASSERT_TRUE(w->Commit().ok());

    auto r = db.Begin(iso);
    std::string a, b;
    if (mem_first) {
      ASSERT_TRUE(r->Get(m, MakeKey(1), &a).ok());
      ASSERT_TRUE(r->Get(s, MakeKey(1), &b).ok());
    } else {
      ASSERT_TRUE(r->Get(s, MakeKey(1), &b).ok());
      ASSERT_TRUE(r->Get(m, MakeKey(1), &a).ok());
    }
    EXPECT_EQ(a, b) << "iteration " << i;
    r->Abort();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IsolationOrderSweep,
    ::testing::Combine(::testing::Values(IsolationLevel::kSnapshot,
                                         IsolationLevel::kSerializable),
                       ::testing::Bool()));

}  // namespace
}  // namespace skeena
