// Range-scan semantics across both engines: ordering, limits, tombstones,
// own-write merging, prefix scans and snapshot stability — the machinery
// TPC-C's Delivery / Order-Status / Stock-Level lean on.

#include <gtest/gtest.h>

#include "core/skeena.h"

namespace skeena {
namespace {

class ScanTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  ScanTest() : db_(DatabaseOptions{}) {
    table_ = *db_.CreateTable("t", GetParam());
  }

  void CommitRange(uint64_t from, uint64_t to, const std::string& prefix) {
    auto txn = db_.Begin();
    for (uint64_t k = from; k < to; ++k) {
      ASSERT_TRUE(
          txn->Put(table_, MakeKey(k), prefix + std::to_string(k)).ok());
    }
    ASSERT_TRUE(txn->Commit().ok());
  }

  std::vector<uint64_t> ScanKeys(Transaction* txn, uint64_t lower,
                                 size_t limit) {
    std::vector<uint64_t> keys;
    EXPECT_TRUE(txn->Scan(table_, MakeKey(lower), limit,
                          [&](const Key& key, const std::string&) {
                            keys.push_back(KeyPrefixU64(key));
                            return true;
                          })
                    .ok());
    return keys;
  }

  Database db_;
  TableHandle table_;
};

TEST_P(ScanTest, FullScanSortedAndComplete) {
  CommitRange(0, 100, "v");
  auto txn = db_.Begin();
  auto keys = ScanKeys(txn.get(), 0, 0);
  ASSERT_EQ(keys.size(), 100u);
  for (uint64_t i = 0; i < 100; ++i) EXPECT_EQ(keys[i], i);
}

TEST_P(ScanTest, LowerBoundInclusive) {
  CommitRange(0, 10, "v");
  auto txn = db_.Begin();
  auto keys = ScanKeys(txn.get(), 5, 0);
  ASSERT_FALSE(keys.empty());
  EXPECT_EQ(keys.front(), 5u);
}

TEST_P(ScanTest, LimitCountsOnlyVisibleRows) {
  CommitRange(0, 20, "v");
  {
    auto del = db_.Begin();
    for (uint64_t k = 0; k < 20; k += 2) {
      ASSERT_TRUE(del->Delete(table_, MakeKey(k)).ok());
    }
    ASSERT_TRUE(del->Commit().ok());
  }
  auto txn = db_.Begin();
  auto keys = ScanKeys(txn.get(), 0, 5);
  ASSERT_EQ(keys.size(), 5u) << "tombstones must not count toward the limit";
  EXPECT_EQ(keys, (std::vector<uint64_t>{1, 3, 5, 7, 9}));
}

TEST_P(ScanTest, OwnWritesVisibleInScan) {
  CommitRange(0, 5, "old");
  auto txn = db_.Begin();
  ASSERT_TRUE(txn->Put(table_, MakeKey(2), "mine").ok());
  ASSERT_TRUE(txn->Put(table_, MakeKey(10), "mine-new").ok());
  ASSERT_TRUE(txn->Delete(table_, MakeKey(3)).ok());
  std::vector<std::string> values;
  ASSERT_TRUE(txn->Scan(table_, kMinKey, 0,
                        [&](const Key&, const std::string& v) {
                          values.push_back(v);
                          return true;
                        })
                  .ok());
  // 0,1 old; 2 mine; 3 deleted; 4 old; 10 mine-new.
  ASSERT_EQ(values.size(), 5u);
  EXPECT_EQ(values[2], "mine");
  EXPECT_EQ(values[4], "mine-new");
  txn->Abort();
}

TEST_P(ScanTest, SnapshotStableAgainstConcurrentInserts) {
  CommitRange(0, 10, "v");
  auto reader = db_.Begin(IsolationLevel::kSnapshot);
  // Pin the snapshot with one access.
  std::string v;
  ASSERT_TRUE(reader->Get(table_, MakeKey(0), &v).ok());
  CommitRange(100, 120, "later");
  auto keys = ScanKeys(reader.get(), 0, 0);
  EXPECT_EQ(keys.size(), 10u)
      << "rows committed after the snapshot must not appear";
}

TEST_P(ScanTest, EarlyStopViaCallback) {
  CommitRange(0, 50, "v");
  auto txn = db_.Begin();
  int visited = 0;
  ASSERT_TRUE(txn->Scan(table_, kMinKey, 0,
                        [&](const Key&, const std::string&) {
                          visited++;
                          return visited < 7;
                        })
                  .ok());
  EXPECT_EQ(visited, 7);
}

TEST_P(ScanTest, PrefixScanIsolatesComposite) {
  // (group, member) composite keys: scanning group 2 must not bleed.
  auto txn = db_.Begin();
  for (uint16_t g = 1; g <= 3; ++g) {
    for (uint32_t m = 1; m <= 5; ++m) {
      KeyBuilder b;
      b.AppendU16(g).AppendU32(m);
      ASSERT_TRUE(txn->Put(table_, b.Build(), "x").ok());
    }
  }
  ASSERT_TRUE(txn->Commit().ok());

  auto reader = db_.Begin();
  KeyBuilder prefix;
  prefix.AppendU16(2);
  int n = 0;
  ASSERT_TRUE(reader->Scan(table_, prefix.Build(), 0,
                           [&](const Key& key, const std::string&) {
                             if (!KeyHasPrefix(key, prefix.Build(), 2)) {
                               return false;
                             }
                             n++;
                             return true;
                           })
                  .ok());
  EXPECT_EQ(n, 5);
}

TEST_P(ScanTest, EmptyRangeReturnsNothing) {
  CommitRange(0, 10, "v");
  auto txn = db_.Begin();
  auto keys = ScanKeys(txn.get(), 1000, 0);
  EXPECT_TRUE(keys.empty());
}

TEST_P(ScanTest, UncommittedRowsOfOthersInvisible) {
  CommitRange(0, 5, "v");
  auto writer = db_.Begin();
  ASSERT_TRUE(writer->Put(table_, MakeKey(50), "dirty").ok());
  auto reader = db_.Begin();
  auto keys = ScanKeys(reader.get(), 0, 0);
  EXPECT_EQ(keys.size(), 5u);
  writer->Abort();
}

INSTANTIATE_TEST_SUITE_P(
    BothEngines, ScanTest,
    ::testing::Values(EngineKind::kMem, EngineKind::kStor),
    [](const ::testing::TestParamInfo<EngineKind>& info) {
      return std::string(EngineKindToString(info.param));
    });

// Cross-engine scan: one transaction scanning tables in both engines under
// one snapshot (the Stock-Level pattern with split placement).
TEST(CrossScanTest, TwoEngineScansShareTheSnapshot) {
  Database db{DatabaseOptions{}};
  auto m = *db.CreateTable("m", EngineKind::kMem);
  auto s = *db.CreateTable("s", EngineKind::kStor);
  {
    auto init = db.Begin();
    for (uint64_t k = 0; k < 10; ++k) {
      ASSERT_TRUE(init->Put(m, MakeKey(k), "epoch0").ok());
      ASSERT_TRUE(init->Put(s, MakeKey(k), "epoch0").ok());
    }
    ASSERT_TRUE(init->Commit().ok());
  }
  auto reader = db.Begin(IsolationLevel::kSnapshot);
  size_t mem_rows = 0;
  ASSERT_TRUE(reader->Scan(m, kMinKey, 0,
                           [&](const Key&, const std::string& v) {
                             EXPECT_EQ(v, "epoch0");
                             mem_rows++;
                             return true;
                           })
                  .ok());
  {  // bump everything to epoch1 behind the reader's back
    auto w = db.Begin();
    for (uint64_t k = 0; k < 10; ++k) {
      ASSERT_TRUE(w->Put(m, MakeKey(k), "epoch1").ok());
      ASSERT_TRUE(w->Put(s, MakeKey(k), "epoch1").ok());
    }
    ASSERT_TRUE(w->Commit().ok());
  }
  size_t stor_rows = 0;
  ASSERT_TRUE(reader->Scan(s, kMinKey, 0,
                           [&](const Key&, const std::string& v) {
                             EXPECT_EQ(v, "epoch0")
                                 << "stor scan skewed past the mem scan";
                             stor_rows++;
                             return true;
                           })
                  .ok());
  EXPECT_EQ(mem_rows, 10u);
  EXPECT_EQ(stor_rows, 10u);
}

}  // namespace
}  // namespace skeena
