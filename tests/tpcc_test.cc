// End-to-end validation of the TPC-C implementation used by the paper's
// Figures 13-16: population invariants, the five transactions, the spec's
// consistency conditions under concurrency, and table-placement variants.

#include "bench/common/tpcc.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace skeena::bench {
namespace {

TpccConfig SmallConfig() {
  TpccConfig cfg;
  cfg.warehouses = 2;
  cfg.districts_per_wh = 4;
  cfg.customers_per_district = 30;
  cfg.items = 200;
  cfg.pool_fraction = 2.0;
  return cfg;
}

TEST(TpccTest, PopulationSatisfiesConsistency) {
  Tpcc tpcc(SmallConfig());
  EXPECT_TRUE(tpcc.CheckConsistency().ok());
}

TEST(TpccTest, NewOrderAdvancesDistrictCounter) {
  Tpcc tpcc(SmallConfig());
  Rng rng(1);
  uint64_t q = 0;
  int committed = 0;
  for (int i = 0; i < 20; ++i) {
    if (tpcc.NewOrder(rng, 1, &q).ok()) committed++;
  }
  EXPECT_GT(committed, 0);
  EXPECT_TRUE(tpcc.CheckConsistency().ok())
      << "order ids must stay dense per district";
}

TEST(TpccTest, PaymentUpdatesYtdConsistently) {
  Tpcc tpcc(SmallConfig());
  Rng rng(2);
  uint64_t q = 0;
  for (int i = 0; i < 30; ++i) {
    tpcc.Payment(rng, 1, &q);
  }
  EXPECT_TRUE(tpcc.CheckConsistency().ok())
      << "W_YTD must equal sum of D_YTD after payments";
}

TEST(TpccTest, DeliveryDrainsNewOrders) {
  TpccConfig cfg = SmallConfig();
  cfg.warehouses = 1;
  Tpcc tpcc(cfg);
  Rng rng(3);
  uint64_t q = 0;
  // The load leaves 1/3 of orders undelivered; repeated Delivery must
  // drain them and keep consistency.
  for (int i = 0; i < cfg.customers_per_district; ++i) {
    Status s = tpcc.Delivery(rng, 1, &q);
    ASSERT_TRUE(s.ok() || s.IsAnyAbort()) << s.ToString();
  }
  EXPECT_TRUE(tpcc.CheckConsistency().ok());
}

TEST(TpccTest, OrderStatusAndStockLevelAreReadOnly) {
  Tpcc tpcc(SmallConfig());
  Rng rng(4);
  uint64_t q0 = 0;
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(tpcc.OrderStatus(rng, 1, &q0).ok());
    EXPECT_TRUE(tpcc.StockLevel(rng, 1, &q0).ok());
  }
  EXPECT_GT(q0, 40u) << "queries must be counted";
  auto stats = tpcc.db()->stats();
  EXPECT_EQ(stats.mem.commits + stats.stor.commits,
            stats.mem.commits + stats.stor.commits);
  EXPECT_TRUE(tpcc.CheckConsistency().ok());
}

TEST(TpccTest, MixRunsAllTransactionTypes) {
  Tpcc tpcc(SmallConfig());
  Rng rng(5);
  uint64_t q = 0;
  int committed = 0;
  for (int i = 0; i < 200; ++i) {
    Status s = tpcc.RunMix(0, rng, &q);
    if (s.ok()) committed++;
    ASSERT_TRUE(s.ok() || s.IsAnyAbort()) << s.ToString();
  }
  EXPECT_GT(committed, 150);
  EXPECT_TRUE(tpcc.CheckConsistency().ok());
}

// The paper's placement experiments: the same workload must stay correct
// for every home-engine assignment.
class TpccPlacementTest : public ::testing::TestWithParam<size_t> {};

TEST_P(TpccPlacementTest, ConsistencyHoldsUnderConcurrencyPerPlacement) {
  size_t n_mem = GetParam();
  TpccConfig cfg = SmallConfig();
  const auto& order = Tpcc::PlacementOrder();
  for (size_t i = 0; i < n_mem && i < order.size(); ++i) {
    cfg.mem_tables.insert(order[i]);
  }
  Tpcc tpcc(cfg);

  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  std::atomic<uint64_t> commits{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(100 + t);
      uint64_t q = 0;
      for (int i = 0; i < 100; ++i) {
        if (tpcc.RunMix(t, rng, &q).ok()) commits.fetch_add(1);
      }
    });
  }
  for (auto& th : workers) th.join();
  EXPECT_GT(commits.load(), 100u);
  EXPECT_TRUE(tpcc.CheckConsistency().ok())
      << "placement with " << n_mem << " memory tables broke consistency";
}

INSTANTIATE_TEST_SUITE_P(Placements, TpccPlacementTest,
                         ::testing::Values(0, 1, 3, 7, 9));

TEST(TpccTest, CrossEnginePlacementProducesCsrTraffic) {
  TpccConfig cfg = SmallConfig();
  cfg.mem_tables = {"customer", "item"};  // New-Order-Opt
  Tpcc tpcc(cfg);
  Rng rng(6);
  uint64_t q = 0;
  for (int i = 0; i < 50; ++i) tpcc.RunMix(0, rng, &q);
  EXPECT_GT(tpcc.db()->stats().csr.accesses, 0u);
}

TEST(TpccTest, SkeenaOffStillRunsButUncoordinated) {
  TpccConfig cfg = SmallConfig();
  cfg.skeena_on = false;
  cfg.mem_tables = {"customer"};
  Tpcc tpcc(cfg);
  Rng rng(7);
  uint64_t q = 0;
  int committed = 0;
  for (int i = 0; i < 100; ++i) {
    if (tpcc.RunMix(0, rng, &q).ok()) committed++;
  }
  EXPECT_GT(committed, 50);
  EXPECT_EQ(tpcc.db()->stats().csr.accesses, 0u);
}

TEST(TpccTest, FixedHomeWarehouseBindsThreads) {
  TpccConfig cfg = SmallConfig();
  cfg.fixed_home_warehouse = true;
  Tpcc tpcc(cfg);
  Rng rng(8);
  EXPECT_EQ(tpcc.HomeWarehouse(0, rng), 1);
  EXPECT_EQ(tpcc.HomeWarehouse(1, rng), 2);
  EXPECT_EQ(tpcc.HomeWarehouse(2, rng), 1);  // wraps around 2 warehouses
}

}  // namespace
}  // namespace skeena::bench
