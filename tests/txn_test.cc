#include "core/transaction.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/skeena.h"
#include "support/db_fixtures.h"

namespace skeena {
namespace {

using test::FastOptions;

class TxnTest : public ::testing::Test {
 protected:
  TxnTest() : db_(test::FastOptions()) {
    mem_table_ = *db_.CreateTable("mem_t", EngineKind::kMem);
    stor_table_ = *db_.CreateTable("stor_t", EngineKind::kStor);
  }

  Database db_;
  TableHandle mem_table_;
  TableHandle stor_table_;
};

TEST_F(TxnTest, CatalogRoutesTables) {
  auto h = db_.GetTable("mem_t");
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->home, EngineKind::kMem);
  auto h2 = db_.GetTable("stor_t");
  ASSERT_TRUE(h2.ok());
  EXPECT_EQ(h2->home, EngineKind::kStor);
  EXPECT_TRUE(db_.GetTable("nope").status().IsNotFound());
  EXPECT_TRUE(db_.CreateTable("mem_t", EngineKind::kMem).status().code() ==
              StatusCode::kAlreadyExists);
}

TEST_F(TxnTest, SingleEngineMemCommit) {
  auto txn = db_.Begin();
  ASSERT_TRUE(txn->Put(mem_table_, MakeKey(1), "v").ok());
  EXPECT_FALSE(txn->is_cross_engine());
  ASSERT_TRUE(txn->Commit().ok());

  auto reader = db_.Begin();
  std::string v;
  ASSERT_TRUE(reader->Get(mem_table_, MakeKey(1), &v).ok());
  EXPECT_EQ(v, "v");
}

TEST_F(TxnTest, SingleEngineStorCommit) {
  auto txn = db_.Begin();
  ASSERT_TRUE(txn->Put(stor_table_, MakeKey(1), "v").ok());
  ASSERT_TRUE(txn->Commit().ok());
  auto reader = db_.Begin();
  std::string v;
  ASSERT_TRUE(reader->Get(stor_table_, MakeKey(1), &v).ok());
  EXPECT_EQ(v, "v");
}

TEST_F(TxnTest, CrossEngineCommitVisibleEverywhere) {
  auto txn = db_.Begin();
  ASSERT_TRUE(txn->Put(mem_table_, MakeKey(1), "m").ok());
  ASSERT_TRUE(txn->Put(stor_table_, MakeKey(1), "s").ok());
  EXPECT_TRUE(txn->is_cross_engine());
  ASSERT_TRUE(txn->Commit().ok());

  auto reader = db_.Begin();
  std::string v;
  ASSERT_TRUE(reader->Get(mem_table_, MakeKey(1), &v).ok());
  EXPECT_EQ(v, "m");
  ASSERT_TRUE(reader->Get(stor_table_, MakeKey(1), &v).ok());
  EXPECT_EQ(v, "s");
}

TEST_F(TxnTest, AbortRollsBackBothEngines) {
  {
    auto setup = db_.Begin();
    ASSERT_TRUE(setup->Put(mem_table_, MakeKey(1), "m0").ok());
    ASSERT_TRUE(setup->Put(stor_table_, MakeKey(1), "s0").ok());
    ASSERT_TRUE(setup->Commit().ok());
  }
  auto txn = db_.Begin();
  ASSERT_TRUE(txn->Put(mem_table_, MakeKey(1), "m1").ok());
  ASSERT_TRUE(txn->Put(stor_table_, MakeKey(1), "s1").ok());
  txn->Abort();

  auto reader = db_.Begin();
  std::string v;
  ASSERT_TRUE(reader->Get(mem_table_, MakeKey(1), &v).ok());
  EXPECT_EQ(v, "m0");
  ASSERT_TRUE(reader->Get(stor_table_, MakeKey(1), &v).ok());
  EXPECT_EQ(v, "s0");
}

TEST_F(TxnTest, DestructorAbortsActiveTransaction) {
  {
    auto txn = db_.Begin();
    ASSERT_TRUE(txn->Put(mem_table_, MakeKey(9), "leak").ok());
    // dropped without Commit()
  }
  auto reader = db_.Begin();
  std::string v;
  EXPECT_TRUE(reader->Get(mem_table_, MakeKey(9), &v).IsNotFound());
}

TEST_F(TxnTest, CommitTwiceRejected) {
  auto txn = db_.Begin();
  ASSERT_TRUE(txn->Put(mem_table_, MakeKey(1), "v").ok());
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_FALSE(txn->Commit().ok());
  EXPECT_FALSE(txn->Put(mem_table_, MakeKey(2), "w").ok());
}

TEST_F(TxnTest, EmptyTransactionCommits) {
  auto txn = db_.Begin();
  EXPECT_TRUE(txn->Commit().ok());
}

TEST_F(TxnTest, EngineConflictAbortsWholeCrossTxn) {
  {
    auto setup = db_.Begin();
    ASSERT_TRUE(setup->Put(mem_table_, MakeKey(1), "base").ok());
    ASSERT_TRUE(setup->Put(stor_table_, MakeKey(1), "base").ok());
    ASSERT_TRUE(setup->Commit().ok());
  }
  auto t1 = db_.Begin();
  std::string v;
  ASSERT_TRUE(t1->Get(mem_table_, MakeKey(1), &v).ok());  // pin snapshot
  ASSERT_TRUE(t1->Put(stor_table_, MakeKey(1), "t1-stor").ok());

  {  // interloper bumps the mem key
    auto t2 = db_.Begin();
    ASSERT_TRUE(t2->Put(mem_table_, MakeKey(1), "newer").ok());
    ASSERT_TRUE(t2->Commit().ok());
  }

  // t1's mem write now conflicts; the whole cross-engine txn must die and
  // leave the stor side untouched.
  Status s = t1->Put(mem_table_, MakeKey(1), "t1-mem");
  ASSERT_TRUE(s.IsAnyAbort());
  auto reader = db_.Begin();
  ASSERT_TRUE(reader->Get(stor_table_, MakeKey(1), &v).ok());
  EXPECT_EQ(v, "base") << "stor sub-transaction must have been rolled back";
}

TEST_F(TxnTest, SnapshotIsolationAcrossEngines) {
  {
    auto setup = db_.Begin();
    ASSERT_TRUE(setup->Put(mem_table_, MakeKey(1), "m1").ok());
    ASSERT_TRUE(setup->Put(stor_table_, MakeKey(1), "s1").ok());
    ASSERT_TRUE(setup->Commit().ok());
  }
  auto reader = db_.Begin(IsolationLevel::kSnapshot);
  std::string v;
  ASSERT_TRUE(reader->Get(mem_table_, MakeKey(1), &v).ok());
  EXPECT_EQ(v, "m1");

  {  // concurrent cross-engine update
    auto w = db_.Begin();
    ASSERT_TRUE(w->Put(mem_table_, MakeKey(1), "m2").ok());
    ASSERT_TRUE(w->Put(stor_table_, MakeKey(1), "s2").ok());
    ASSERT_TRUE(w->Commit().ok());
  }

  // Reader crosses into stor only now; the CSR must hand it the snapshot
  // matching its anchor position — before the update.
  ASSERT_TRUE(reader->Get(stor_table_, MakeKey(1), &v).ok());
  EXPECT_EQ(v, "s1") << "cross-engine snapshot skewed forward";
}

TEST_F(TxnTest, ReadCommittedSeesLatestPerAccess) {
  {
    auto setup = db_.Begin();
    ASSERT_TRUE(setup->Put(stor_table_, MakeKey(1), "v1").ok());
    ASSERT_TRUE(setup->Commit().ok());
  }
  auto rc = db_.Begin(IsolationLevel::kReadCommitted);
  std::string v;
  ASSERT_TRUE(rc->Get(stor_table_, MakeKey(1), &v).ok());
  EXPECT_EQ(v, "v1");
  {
    auto w = db_.Begin();
    ASSERT_TRUE(w->Put(stor_table_, MakeKey(1), "v2").ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  ASSERT_TRUE(rc->Get(stor_table_, MakeKey(1), &v).ok());
  EXPECT_EQ(v, "v2") << "read committed must refresh its snapshot";
}

TEST_F(TxnTest, ScanThroughTransactionApi) {
  auto setup = db_.Begin();
  for (uint64_t k = 0; k < 20; ++k) {
    ASSERT_TRUE(
        setup->Put(stor_table_, MakeKey(k), "v" + std::to_string(k)).ok());
  }
  ASSERT_TRUE(setup->Commit().ok());

  auto txn = db_.Begin();
  size_t n = 0;
  ASSERT_TRUE(txn->Scan(stor_table_, MakeKey(5), 7,
                        [&](const Key&, const std::string&) {
                          n++;
                          return true;
                        })
                  .ok());
  EXPECT_EQ(n, 7u);
}

TEST_F(TxnTest, CommitWaitsForDurability) {
  auto txn = db_.Begin();
  ASSERT_TRUE(txn->Put(mem_table_, MakeKey(1), "d").ok());
  ASSERT_TRUE(txn->Put(stor_table_, MakeKey(1), "d").ok());
  ASSERT_TRUE(txn->Commit().ok());
  // After a successful commit both logs must cover the transaction.
  EXPECT_GE(db_.engine(0)->DurableLsn(), db_.engine(0)->CurrentLsn());
  EXPECT_GE(db_.engine(1)->DurableLsn(), db_.engine(1)->CurrentLsn());
}

TEST_F(TxnTest, StatsCountCsrTraffic) {
  // Anchor-only transactions must not touch the CSR (ERMIA-S == ERMIA).
  for (int i = 0; i < 10; ++i) {
    auto txn = db_.Begin();
    ASSERT_TRUE(txn->Put(mem_table_, MakeKey(i), "x").ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  EXPECT_EQ(db_.stats().csr.accesses, 0u);

  // Slow-engine transactions are effectively cross-engine (Section 4.3).
  for (int i = 0; i < 10; ++i) {
    auto txn = db_.Begin();
    ASSERT_TRUE(txn->Put(stor_table_, MakeKey(i), "x").ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto stats = db_.stats();
  EXPECT_GT(stats.csr.accesses, 0u);
  // All with the same anchor snapshot -> a single CSR key (Section 6.3).
  EXPECT_LE(db_.csr().EntryCount(), 1u);
}

TEST(TxnConfigTest, SkeenaOffCommitsIndependently) {
  DatabaseOptions opts = FastOptions();
  opts.enable_skeena = false;
  Database db(opts);
  auto mem_t = *db.CreateTable("m", EngineKind::kMem);
  auto stor_t = *db.CreateTable("s", EngineKind::kStor);
  auto txn = db.Begin();
  ASSERT_TRUE(txn->Put(mem_t, MakeKey(1), "m").ok());
  ASSERT_TRUE(txn->Put(stor_t, MakeKey(1), "s").ok());
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_EQ(db.stats().csr.accesses, 0u) << "no CSR traffic with Skeena off";
}

TEST(TxnConfigTest, StorAnchorAblationWorks) {
  DatabaseOptions opts = FastOptions();
  opts.anchor = EngineKind::kStor;  // heavyweight anchor (Section 4.3 note)
  Database db(opts);
  auto mem_t = *db.CreateTable("m", EngineKind::kMem);
  auto stor_t = *db.CreateTable("s", EngineKind::kStor);
  for (int i = 0; i < 20; ++i) {
    auto txn = db.Begin();
    ASSERT_TRUE(txn->Put(stor_t, MakeKey(i), "s").ok());
    ASSERT_TRUE(txn->Put(mem_t, MakeKey(i), "m").ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto reader = db.Begin();
  std::string v;
  ASSERT_TRUE(reader->Get(mem_t, MakeKey(19), &v).ok());
  EXPECT_EQ(v, "m");
  // With stordb anchoring, mem-only transactions now pay the CSR.
  EXPECT_GT(db.stats().csr.accesses, 0u);
}

TEST(TxnConfigTest, SyncCommitModeWorks) {
  DatabaseOptions opts = FastOptions();
  opts.pipeline.mode = CommitPipeline::Mode::kSync;
  Database db(opts);
  auto mem_t = *db.CreateTable("m", EngineKind::kMem);
  auto txn = db.Begin();
  ASSERT_TRUE(txn->Put(mem_t, MakeKey(1), "v").ok());
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_GE(db.engine(0)->DurableLsn(), db.engine(0)->CurrentLsn());
}

TEST(TxnConfigTest, PartitionedCommitQueues) {
  DatabaseOptions opts = FastOptions();
  opts.pipeline.num_queues = 4;
  Database db(opts);
  auto mem_t = *db.CreateTable("m", EngineKind::kMem);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        auto txn = db.Begin();
        ASSERT_TRUE(
            txn->Put(mem_t, MakeKey(t * 1000 + i), "v").ok());
        ASSERT_TRUE(txn->Commit().ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GE(db.pipeline().completed(), 200u);
}

}  // namespace
}  // namespace skeena
