// End-to-end multi-threaded workloads over the full stack, checking the
// cross-engine ACID properties of paper Section 2.2.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/skeena.h"
#include "support/db_fixtures.h"

namespace skeena {
namespace {

using test::FastOptions;

int64_t ParseBalance(const std::string& s) { return std::stoll(s); }

// The intro's financial application: accounts split across a fast memory
// table (hot accounts) and a storage table (cold accounts). Transfers move
// money across engines in one ACID transaction; auditors must always see
// the invariant total.
class BankTest : public ::testing::Test {
 protected:
  static constexpr int kAccountsPerEngine = 16;
  static constexpr int64_t kInitialBalance = 1000;

  BankTest() : db_(FastOptions()) {
    hot_ = *db_.CreateTable("hot_accounts", EngineKind::kMem);
    cold_ = *db_.CreateTable("cold_accounts", EngineKind::kStor);
    auto txn = db_.Begin();
    for (int i = 0; i < kAccountsPerEngine; ++i) {
      EXPECT_TRUE(txn->Put(hot_, MakeKey(i),
                           std::to_string(kInitialBalance))
                      .ok());
      EXPECT_TRUE(txn->Put(cold_, MakeKey(i),
                           std::to_string(kInitialBalance))
                      .ok());
    }
    EXPECT_TRUE(txn->Commit().ok());
  }

  int64_t TotalExpected() const {
    return 2ll * kAccountsPerEngine * kInitialBalance;
  }

  // Reads all accounts in one cross-engine snapshot; returns the sum.
  bool Audit(int64_t* total) {
    auto txn = db_.Begin(IsolationLevel::kSnapshot);
    int64_t sum = 0;
    for (int i = 0; i < kAccountsPerEngine; ++i) {
      std::string v;
      if (!txn->Get(hot_, MakeKey(i), &v).ok()) return false;
      sum += ParseBalance(v);
      if (!txn->Get(cold_, MakeKey(i), &v).ok()) return false;
      sum += ParseBalance(v);
    }
    txn->Abort();
    *total = sum;
    return true;
  }

  Database db_;
  TableHandle hot_;
  TableHandle cold_;
};

TEST_F(BankTest, CrossEngineTransfersPreserveTotal) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> transfers{0};
  std::atomic<uint64_t> bad_audits{0};
  std::atomic<uint64_t> audits{0};

  std::vector<std::thread> movers;
  for (int t = 0; t < 4; ++t) {
    movers.emplace_back([&, t] {
      Rng rng(t + 1);
      while (!stop.load()) {
        int from = static_cast<int>(rng.Uniform(kAccountsPerEngine));
        int to = static_cast<int>(rng.Uniform(kAccountsPerEngine));
        int64_t amount = 1 + static_cast<int64_t>(rng.Uniform(50));
        auto txn = db_.Begin();
        std::string fv, tv;
        // Hot -> cold transfer: one account per engine.
        if (!txn->Get(hot_, MakeKey(from), &fv).ok()) continue;
        if (!txn->Get(cold_, MakeKey(to), &tv).ok()) continue;
        int64_t fb = ParseBalance(fv);
        if (fb < amount) {
          txn->Abort();
          continue;
        }
        if (!txn->Put(hot_, MakeKey(from), std::to_string(fb - amount)).ok())
          continue;
        if (!txn->Put(cold_, MakeKey(to),
                      std::to_string(ParseBalance(tv) + amount))
                 .ok())
          continue;
        if (txn->Commit().ok()) transfers.fetch_add(1);
      }
    });
  }

  std::vector<std::thread> auditors;
  for (int a = 0; a < 2; ++a) {
    auditors.emplace_back([&] {
      while (!stop.load()) {
        int64_t total = 0;
        if (!Audit(&total)) continue;
        audits.fetch_add(1);
        if (total != TotalExpected()) bad_audits.fetch_add(1);
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::seconds(2));
  stop.store(true);
  for (auto& th : movers) th.join();
  for (auto& th : auditors) th.join();

  EXPECT_GT(transfers.load(), 50u) << "workload made no progress";
  EXPECT_GT(audits.load(), 10u);
  EXPECT_EQ(bad_audits.load(), 0u)
      << "an audit observed a torn cross-engine transfer";

  int64_t final_total = 0;
  ASSERT_TRUE(Audit(&final_total));
  EXPECT_EQ(final_total, TotalExpected());
}

TEST_F(BankTest, SerializableTransfersAlsoPreserveTotal) {
  std::atomic<uint64_t> transfers{0};
  std::vector<std::thread> movers;
  for (int t = 0; t < 4; ++t) {
    movers.emplace_back([&, t] {
      Rng rng(t + 10);
      for (int i = 0; i < 100; ++i) {
        int from = static_cast<int>(rng.Uniform(kAccountsPerEngine));
        int to = static_cast<int>(rng.Uniform(kAccountsPerEngine));
        auto txn = db_.Begin(IsolationLevel::kSerializable);
        std::string fv, tv;
        if (!txn->Get(hot_, MakeKey(from), &fv).ok()) continue;
        if (!txn->Get(cold_, MakeKey(to), &tv).ok()) continue;
        if (!txn->Put(hot_, MakeKey(from),
                      std::to_string(ParseBalance(fv) - 1))
                 .ok())
          continue;
        if (!txn->Put(cold_, MakeKey(to),
                      std::to_string(ParseBalance(tv) + 1))
                 .ok())
          continue;
        if (txn->Commit().ok()) transfers.fetch_add(1);
      }
    });
  }
  for (auto& th : movers) th.join();
  EXPECT_GT(transfers.load(), 0u);
  int64_t total = 0;
  ASSERT_TRUE(Audit(&total));
  EXPECT_EQ(total, TotalExpected());
}

TEST(IntegrationTest, MixedSingleAndCrossEngineWorkload) {
  Database db(FastOptions());
  auto mem_t = *db.CreateTable("m", EngineKind::kMem);
  auto stor_t = *db.CreateTable("s", EngineKind::kStor);

  std::atomic<uint64_t> commits{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 6; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(t + 77);
      for (int i = 0; i < 200; ++i) {
        auto txn = db.Begin();
        bool ok = true;
        switch (rng.Uniform(3)) {
          case 0:  // mem-only
            ok = txn->Put(mem_t, MakeKey(rng.Uniform(64)), "m").ok();
            break;
          case 1:  // stor-only
            ok = txn->Put(stor_t, MakeKey(rng.Uniform(64)), "s").ok();
            break;
          default: {  // cross-engine read-modify-write
            std::string v;
            Status g = txn->Get(mem_t, MakeKey(rng.Uniform(64)), &v);
            ok = (g.ok() || g.IsNotFound()) &&
                 txn->Put(stor_t, MakeKey(rng.Uniform(64)), "x").ok();
            break;
          }
        }
        if (ok && txn->Commit().ok()) commits.fetch_add(1);
      }
    });
  }
  for (auto& th : workers) th.join();
  EXPECT_GT(commits.load(), 600u);

  auto stats = db.stats();
  EXPECT_GT(stats.csr.mappings, 0u);
  EXPECT_EQ(stats.csr.commit_aborts + stats.csr.select_aborts +
                stats.mem.aborts + stats.stor.aborts,
            stats.mem.aborts + stats.stor.aborts +
                stats.csr.commit_aborts + stats.csr.select_aborts)
      << "(smoke) stats accessible";
}

TEST(IntegrationTest, LongReaderCoexistsWithWriters) {
  // CSR recycling must never reclaim the partition a long-running reader's
  // anchor snapshot lives in (Section 4.4).
  DatabaseOptions opts = FastOptions();
  opts.csr.partition_capacity = 32;
  opts.csr.recycle_period = 64;
  Database db(opts);
  auto mem_t = *db.CreateTable("m", EngineKind::kMem);
  auto stor_t = *db.CreateTable("s", EngineKind::kStor);
  {
    auto init = db.Begin();
    ASSERT_TRUE(init->Put(mem_t, MakeKey(0), "init").ok());
    ASSERT_TRUE(init->Put(stor_t, MakeKey(0), "init").ok());
    ASSERT_TRUE(init->Commit().ok());
  }

  auto long_reader = db.Begin();
  std::string v;
  ASSERT_TRUE(long_reader->Get(mem_t, MakeKey(0), &v).ok());  // pin anchor

  // Lots of cross-engine commits to churn CSR partitions.
  for (int i = 0; i < 2000; ++i) {
    auto txn = db.Begin();
    ASSERT_TRUE(txn->Put(mem_t, MakeKey(1 + (i % 16)), "w").ok());
    ASSERT_TRUE(txn->Put(stor_t, MakeKey(1 + (i % 16)), "w").ok());
    ASSERT_TRUE(txn->Commit().ok());
  }

  // The long reader can still cross into stor with its old snapshot: while
  // it lives, its anchor snapshot pins the recycling horizon (Section 4.4).
  Status s = long_reader->Get(stor_t, MakeKey(0), &v);
  EXPECT_TRUE(s.ok()) << s.ToString()
                      << " (recycling dropped a needed partition)";
  if (s.ok()) {
    EXPECT_EQ(v, "init");
  }
  EXPECT_EQ(db.stats().csr.partitions_recycled, 0u)
      << "partitions covering a live snapshot must not be recycled";
  long_reader->Abort();

  // With the pin gone, continued churn lets recycling reclaim partitions.
  for (int i = 0; i < 2000; ++i) {
    auto txn = db.Begin();
    ASSERT_TRUE(txn->Put(mem_t, MakeKey(1 + (i % 16)), "w").ok());
    ASSERT_TRUE(txn->Put(stor_t, MakeKey(1 + (i % 16)), "w").ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  EXPECT_GT(db.stats().csr.partitions_recycled, 0u);
}

TEST(IntegrationTest, HighContentionCrossCounterExact) {
  Database db(FastOptions());
  auto mem_t = *db.CreateTable("m", EngineKind::kMem);
  auto stor_t = *db.CreateTable("s", EngineKind::kStor);
  {
    auto init = db.Begin();
    ASSERT_TRUE(init->Put(mem_t, MakeKey(0), "0").ok());
    ASSERT_TRUE(init->Put(stor_t, MakeKey(0), "0").ok());
    ASSERT_TRUE(init->Commit().ok());
  }
  constexpr int kThreads = 4;
  constexpr int kIncrements = 50;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kIncrements;) {
        auto txn = db.Begin();
        std::string mv, sv;
        if (!txn->Get(mem_t, MakeKey(0), &mv).ok()) continue;
        if (!txn->Get(stor_t, MakeKey(0), &sv).ok()) continue;
        if (!txn->Put(mem_t, MakeKey(0),
                      std::to_string(std::stoll(mv) + 1))
                 .ok())
          continue;
        if (!txn->Put(stor_t, MakeKey(0),
                      std::to_string(std::stoll(sv) + 1))
                 .ok())
          continue;
        if (txn->Commit().ok()) i++;
      }
    });
  }
  for (auto& th : workers) th.join();
  auto reader = db.Begin();
  std::string mv, sv;
  ASSERT_TRUE(reader->Get(mem_t, MakeKey(0), &mv).ok());
  ASSERT_TRUE(reader->Get(stor_t, MakeKey(0), &sv).ok());
  EXPECT_EQ(mv, std::to_string(kThreads * kIncrements));
  EXPECT_EQ(sv, mv) << "both engine counters must advance in lockstep";
}

}  // namespace
}  // namespace skeena
