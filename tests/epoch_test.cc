#include "common/epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace skeena {
namespace {

// Drives the epoch forward far enough that anything retired before the
// calls must have ripened (grace period is two advances).
void Churn(EpochManager& mgr, int rounds = 5) {
  for (int i = 0; i < rounds; ++i) mgr.TryAdvance();
}

TEST(EpochTest, RetireWithoutReadersFreesAfterGracePeriod) {
  EpochManager mgr;
  bool freed = false;
  mgr.RetireRaw(&freed, [](void* p) { *static_cast<bool*>(p) = true; });
  EXPECT_FALSE(freed) << "freed immediately, no grace period";
  Churn(mgr);
  EXPECT_TRUE(freed);
  EXPECT_EQ(mgr.RetiredCount(), 0u);
  EXPECT_EQ(mgr.FreedCount(), 1u);
}

TEST(EpochTest, GuardNestingPinsUntilOutermostExit) {
  EpochManager mgr;
  bool freed = false;
  {
    EpochGuard outer(mgr);
    {
      EpochGuard inner(mgr);  // nested: same thread, same slot
      mgr.RetireRaw(&freed, [](void* p) { *static_cast<bool*>(p) = true; });
      Churn(mgr);
      EXPECT_FALSE(freed) << "reclaimed under a nested guard";
    }
    // Inner exit must not unpin: the outer guard still protects reads.
    Churn(mgr);
    EXPECT_FALSE(freed) << "inner Exit unpinned the outer guard";
  }
  Churn(mgr);
  EXPECT_TRUE(freed);
}

TEST(EpochTest, NoReclamationWhileAnotherThreadIsPinned) {
  EpochManager mgr;
  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};
  std::thread reader([&] {
    EpochGuard g(mgr);
    pinned.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!pinned.load()) std::this_thread::yield();

  bool freed = false;
  mgr.RetireRaw(&freed, [](void* p) { *static_cast<bool*>(p) = true; });
  Churn(mgr, 10);
  EXPECT_FALSE(freed) << "object reclaimed while a reader was pinned";
  EXPECT_EQ(mgr.RetiredCount(), 1u);

  release.store(true);
  reader.join();
  Churn(mgr);
  EXPECT_TRUE(freed);
}

TEST(EpochTest, DeferredRetireOrderingIsFifoWithinAnEpoch) {
  EpochManager mgr;
  static std::vector<int>* order = nullptr;
  std::vector<int> local;
  order = &local;
  int a = 1, b = 2, c = 3;
  auto record = [](void* p) { order->push_back(*static_cast<int*>(p)); };
  {
    EpochGuard g(mgr);  // hold the epoch so all three land in the same one
    mgr.RetireRaw(&a, record);
    mgr.RetireRaw(&b, record);
    mgr.RetireRaw(&c, record);
    EXPECT_TRUE(local.empty());
  }
  Churn(mgr);
  ASSERT_EQ(local.size(), 3u);
  EXPECT_EQ(local, (std::vector<int>{1, 2, 3}));
  order = nullptr;
}

TEST(EpochTest, DestructorDrainsLimbo) {
  int freed = 0;
  {
    EpochManager mgr;
    static int* counter = nullptr;
    counter = &freed;
    int x = 0;
    mgr.RetireRaw(&x, [](void*) { (*counter)++; });
    // No advance: the entry is still in limbo at destruction.
  }
  EXPECT_EQ(freed, 1);
}

TEST(EpochTest, TemplateRetireDeletesTypedObject) {
  struct Tracked {
    explicit Tracked(std::atomic<int>* d) : deleted(d) {}
    ~Tracked() { deleted->fetch_add(1); }
    std::atomic<int>* deleted;
  };
  std::atomic<int> deleted{0};
  EpochManager mgr;
  mgr.Retire(new Tracked(&deleted));
  Churn(mgr);
  EXPECT_EQ(deleted.load(), 1);
}

TEST(EpochTest, ManyThreadsEnterExitAndRetireConcurrently) {
  EpochManager mgr;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::atomic<uint64_t> deleted{0};
  struct Node {
    explicit Node(std::atomic<uint64_t>* d) : deleted(d) { value = 42; }
    ~Node() {
      EXPECT_EQ(value, 42) << "freed twice or corrupted";
      value = 0;
      deleted->fetch_add(1);
    }
    int value;
    std::atomic<uint64_t>* deleted;
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        EpochGuard g(mgr);
        if (i % 4 == 0) mgr.Retire(new Node(&deleted));
      }
    });
  }
  for (auto& th : threads) th.join();
  Churn(mgr, 10);
  EXPECT_EQ(deleted.load(), uint64_t{kThreads} * (kIters / 4));
  EXPECT_EQ(mgr.RetiredCount(), 0u);
}

TEST(EpochTest, ThreadExitReleasesSlotForReuse) {
  EpochManager mgr;
  // Many short-lived threads: without slot release on thread exit this
  // would exhaust the (bounded) slot table.
  for (int i = 0; i < 500; ++i) {
    std::thread([&] {
      EpochGuard g(mgr);
      mgr.TryAdvance();
    }).join();
  }
  bool freed = false;
  mgr.RetireRaw(&freed, [](void* p) { *static_cast<bool*>(p) = true; });
  Churn(mgr);
  EXPECT_TRUE(freed) << "a dead thread's slot still reads as pinned";
}

}  // namespace
}  // namespace skeena
