// common/encoding.h coverage: the binary-comparable Key contract. Every
// index (B+-tree, hash, CSR) assumes byte-wise lexicographic order of the
// encoded key equals the logical order of the fields that built it; these
// are randomized property checks of that assumption plus round-trip and
// payload-helper coverage.

#include "common/encoding.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/random.h"

namespace skeena {
namespace {

int KeyCompare(const Key& a, const Key& b) {
  return std::memcmp(a.data(), b.data(), a.size());
}

int Sign(int v) { return v < 0 ? -1 : (v > 0 ? 1 : 0); }

// Mix of adversarial and random values: byte-boundary neighbors are where a
// little-endian or sign-extension bug would reorder keys.
std::vector<uint64_t> InterestingU64s() {
  std::vector<uint64_t> vals = {0, 1, 0x7f, 0x80, 0xff, 0x100, 0xffff,
                                0x10000, 0x7fffffffull, 0x80000000ull,
                                0xffffffffull, 0x100000000ull,
                                0x7fffffffffffffffull, 0x8000000000000000ull,
                                0xffffffffffffffffull};
  Rng rng(1234);
  for (int i = 0; i < 500; ++i) {
    uint64_t v = rng.Next();
    // Bias toward small values and shared high bytes, where prefix
    // collisions make ordering bugs visible.
    vals.push_back(v >> rng.Uniform(64));
  }
  return vals;
}

TEST(EncodingTest, MakeKeyRoundTripsU64) {
  for (uint64_t v : InterestingU64s()) {
    EXPECT_EQ(KeyPrefixU64(MakeKey(v)), v);
  }
}

TEST(EncodingTest, MakeKeyMemcmpOrderEqualsNumericOrder) {
  std::vector<uint64_t> vals = InterestingU64s();
  for (size_t i = 0; i < vals.size(); ++i) {
    for (size_t j = 0; j < vals.size(); ++j) {
      uint64_t a = vals[i], b = vals[j];
      int numeric = a < b ? -1 : (a > b ? 1 : 0);
      EXPECT_EQ(Sign(KeyCompare(MakeKey(a), MakeKey(b))), numeric)
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(EncodingTest, SortingKeysMatchesSortingValues) {
  Rng rng(99);
  std::vector<uint64_t> vals;
  for (int i = 0; i < 2000; ++i) vals.push_back(rng.Next() >> rng.Uniform(64));
  std::vector<Key> keys;
  keys.reserve(vals.size());
  for (uint64_t v : vals) keys.push_back(MakeKey(v));

  std::sort(vals.begin(), vals.end());
  std::sort(keys.begin(), keys.end(),
            [](const Key& a, const Key& b) { return KeyCompare(a, b) < 0; });
  for (size_t i = 0; i < vals.size(); ++i) {
    EXPECT_EQ(KeyPrefixU64(keys[i]), vals[i]) << "rank " << i;
  }
}

// Composite (u32, u16, u64) keys must order like the field tuple: the
// most-significant field dominates, ties fall through to later fields.
TEST(EncodingTest, CompositeKeyOrderEqualsTupleOrder) {
  struct Tuple {
    uint32_t a;
    uint16_t b;
    uint64_t c;
  };
  auto encode = [](const Tuple& t) {
    KeyBuilder kb;
    kb.AppendU32(t.a).AppendU16(t.b).AppendU64(t.c);
    return kb.Build();
  };
  Rng rng(7);
  std::vector<Tuple> tuples;
  for (int i = 0; i < 300; ++i) {
    // Small per-field ranges force ties in every position.
    tuples.push_back(Tuple{static_cast<uint32_t>(rng.Uniform(4)),
                           static_cast<uint16_t>(rng.Uniform(3)),
                           rng.Uniform(4)});
  }
  for (const Tuple& x : tuples) {
    for (const Tuple& y : tuples) {
      auto xt = std::make_tuple(x.a, x.b, x.c);
      auto yt = std::make_tuple(y.a, y.b, y.c);
      int tuple_order = xt < yt ? -1 : (yt < xt ? 1 : 0);
      EXPECT_EQ(Sign(KeyCompare(encode(x), encode(y))), tuple_order)
          << "(" << x.a << "," << x.b << "," << x.c << ") vs (" << y.a << ","
          << y.b << "," << y.c << ")";
    }
  }
}

// A prefix-only key is the smallest key carrying that prefix, so it is a
// correct range-scan lower bound for the prefix.
TEST(EncodingTest, PrefixKeyIsScanLowerBound) {
  Rng rng(21);
  for (int i = 0; i < 200; ++i) {
    uint32_t table = static_cast<uint32_t>(rng.Uniform(1000));
    KeyBuilder prefix_only;
    prefix_only.AppendU32(table);
    ASSERT_EQ(prefix_only.size(), 4u);

    KeyBuilder full;
    full.AppendU32(table).AppendU64(rng.Next());
    EXPECT_TRUE(KeyHasPrefix(full.Build(), prefix_only.Build(), 4));
    EXPECT_LE(KeyCompare(prefix_only.Build(), full.Build()), 0);

    KeyBuilder next_prefix;
    next_prefix.AppendU32(table + 1);
    EXPECT_LT(KeyCompare(full.Build(), next_prefix.Build()), 0)
        << "key for table " << table << " sorted past the next prefix";
  }
}

TEST(EncodingTest, MinAndMaxKeysBracketEverything) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    Key k = MakeKey(rng.Next());
    EXPECT_LE(KeyCompare(kMinKey, k), 0);
    EXPECT_LE(KeyCompare(k, MaxKey()), 0);
  }
  EXPECT_EQ(KeyPrefixU64(kMinKey), 0u);
}

TEST(EncodingTest, HashedStringsAreStableAndPrefixScannable) {
  auto key_for = [](uint32_t table, std::string_view name) {
    KeyBuilder kb;
    kb.AppendU32(table).AppendHash64(name);
    return kb.Build();
  };
  // Equal strings map to equal bytes (required for point lookups on
  // hash-indexed string fields)...
  EXPECT_EQ(KeyCompare(key_for(7, "BARBARBAR"), key_for(7, "BARBARBAR")), 0);
  // ...and the containing prefix still routes the scan.
  EXPECT_TRUE(KeyHasPrefix(key_for(7, "BARBARBAR"), key_for(7, "OUGHTPRES"), 4));
  EXPECT_NE(KeyCompare(key_for(7, "BARBARBAR"), key_for(7, "OUGHTPRES")), 0);
  EXPECT_FALSE(KeyHasPrefix(key_for(8, "BARBARBAR"), key_for(7, "BARBARBAR"), 4));
}

TEST(EncodingTest, PayloadHelpersRoundTrip) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    uint64_t v64 = rng.Next();
    uint32_t v32 = static_cast<uint32_t>(rng.Next());
    std::string buf;
    PutU64(&buf, v64);
    PutU32(&buf, v32);
    ASSERT_EQ(buf.size(), 12u);
    EXPECT_EQ(GetU64(buf.data()), v64);
    EXPECT_EQ(GetU32(buf.data() + 8), v32);
  }
}

}  // namespace
}  // namespace skeena
