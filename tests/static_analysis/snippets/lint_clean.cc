// Control for scripts/check_invariants.py: a file every rule should pass.
// The harness asserts the linter reports ZERO findings on a scratch tree
// containing only this file — guarding against rules so broad they flag
// everything (which would make the violation assertions vacuous).
// Lexical analysis only — never compiled.
class Gauge {
 public:
  void Set(uint64_t v) {
    // relaxed-ok: diagnostic gauge, no ordering consumers.
    value_.store(v, std::memory_order_relaxed);
  }
  uint64_t Snapshot(EpochDomain& domain) {
    {
      EpochGuard guard(domain);
      last_ = Collect();
    }  // guard dropped before any wait
    cv_.WaitFor(mu_, kPollInterval);
    return last_;
  }
};
