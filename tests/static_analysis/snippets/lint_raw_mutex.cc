// Seeded violation for scripts/check_invariants.py rule raw-std-sync:
// a raw std::mutex outside common/thread_annotations.h is invisible to
// clang's thread-safety analysis. Lexical analysis only — never compiled.
class Cache {
 public:
  void Put(int k) {
    std::lock_guard<std::mutex> lock(mu_);  // BUG (intentional)
    last_ = k;
  }

 private:
  std::mutex mu_;  // BUG (intentional): use skeena::Mutex
  int last_ = 0;
};
