// Seeded violation for scripts/check_invariants.py rule
// epoch-guard-blocking: a ParkingLot park inside a live EpochGuard scope
// (the guard pins reclamation for the whole domain while the thread
// sleeps). The harness copies this file into a scratch src/ tree and
// asserts the linter flags it. Lexical analysis only — never compiled.
void Worker(EpochDomain& domain, std::atomic<uint32_t>& word) {
  EpochGuard guard(domain);
  uint32_t expected = word.load();
  ParkingLot::Park(word, expected);  // BUG (intentional): guard still live
}
