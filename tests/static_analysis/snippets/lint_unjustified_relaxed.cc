// Seeded violation for scripts/check_invariants.py rule
// unjustified-relaxed: a relaxed atomic load with no justification
// comment and no per-file allowlist entry. Lexical analysis only —
// never compiled. NOTE: the justification marker string must not appear
// anywhere near the violation line, or the rule's 3-line lookback
// window would treat this header as the justification.

uint64_t ReadStat(const std::atomic<uint64_t>& counter) {
  return counter.load(std::memory_order_relaxed);  // BUG (intentional)
}
