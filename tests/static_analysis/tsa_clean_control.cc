// Control for tests/static_analysis/run_checks.py: the CORRECT version of
// the seeded TSA violations. The harness asserts this compiles cleanly
// under -Werror=thread-safety — if it does not, the "expected failure"
// assertions on the violation snippets would be passing for the wrong
// reason (bad flags, broken include path) rather than because the
// analysis caught the bug.
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  void Add(int d) {
    skeena::MutexLock lock(mu_);
    total_ += d;
  }
  int Read() const {
    skeena::MutexLock lock(mu_);
    return total_;
  }
  int ReadLocked() const SKEENA_REQUIRES(mu_) { return total_; }
  int TwoReads() const {
    skeena::MutexLock lock(mu_);
    return ReadLocked() + total_;
  }

 private:
  mutable skeena::Mutex mu_;
  int total_ SKEENA_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Add(1);
  return c.Read() + c.TwoReads();
}
