#!/usr/bin/env python3
"""Meta-test for the static-analysis lanes (tests/static_analysis).

Two lanes are exercised against seeded violations, so that a lane that
silently stops finding bugs fails THIS test instead of rotting:

1. Thread-safety annotations (clang -Werror=thread-safety): each
   tsa_*.cc violation snippet must FAIL to compile with a thread-safety
   diagnostic, and tsa_clean_control.cc must compile cleanly (proving the
   failures come from the analysis, not broken flags). Skipped with a
   notice when no clang++ is on PATH (the build container ships GCC
   only); CI's static-analysis job always runs it.

2. scripts/check_invariants.py: each snippets/lint_*.cc violation is
   copied into a scratch tree and the named rule must flag it (exit 1);
   snippets/lint_clean.cc must produce zero findings. Orphan/uncommented
   .tsan-suppressions entries are seeded directly. This lane runs
   everywhere (pure python).

Exit codes: 0 pass, 1 fail, 77 skip (nothing could run — should not
happen since lane 2 has no external dependencies).
"""

import argparse
import os
import shutil
import subprocess
import sys
import tempfile

PASS, FAIL = 0, 1
results = []


def record(name, ok, detail=""):
    results.append((name, ok, detail))
    mark = "PASS" if ok else "FAIL"
    line = f"[{mark}] {name}"
    if detail and not ok:
        line += f"\n       {detail}"
    print(line)


# --------------------------------------------------------------------------
# Lane 1: clang thread-safety analysis on seeded violations
# --------------------------------------------------------------------------

def run_tsa_lane(repo_root, here):
    clangxx = os.environ.get("SKEENA_CLANGXX") or shutil.which("clang++")
    if clangxx is None:
        print("[SKIP] tsa lane: no clang++ on PATH "
              "(set SKEENA_CLANGXX to override)")
        return
    flags = ["-std=c++20", "-fsyntax-only", "-Wthread-safety",
             "-Werror=thread-safety", "-I", os.path.join(repo_root, "src")]

    def compile_snippet(name):
        path = os.path.join(here, name)
        proc = subprocess.run([clangxx] + flags + [path],
                              capture_output=True, text=True)
        return proc.returncode, proc.stderr

    rc, err = compile_snippet("tsa_clean_control.cc")
    record("tsa: clean control compiles", rc == 0, err[:800])
    if rc != 0:
        # Flags/include path are broken; the failure assertions below
        # would be vacuous, so don't run them.
        return

    for name in ("tsa_guarded_by_read.cc", "tsa_requires_unheld.cc"):
        rc, err = compile_snippet(name)
        ok = rc != 0 and "thread-safety" in err
        record(f"tsa: {name} rejected with a thread-safety error", ok,
               f"rc={rc} stderr={err[:800]}")


# --------------------------------------------------------------------------
# Lane 2: check_invariants.py rules on seeded violations
# --------------------------------------------------------------------------

def run_linter(repo_root, scratch):
    """Runs the invariant linter over a scratch tree with an empty
    baseline; returns (exit_code, stdout)."""
    script = os.path.join(repo_root, "scripts", "check_invariants.py")
    baseline = os.path.join(scratch, "baseline.txt")
    open(baseline, "w").close()
    proc = subprocess.run(
        [sys.executable, script, "--root", scratch, "--baseline", baseline,
         "--no-libclang"],
        capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def make_scratch(repo_root, snippet_dir, snippet):
    """Scratch tree: src/common/thread_annotations.h (the real one, so the
    raw-std-sync exemption path exists) + the snippet under src/."""
    scratch = tempfile.mkdtemp(prefix="skeena_lint_")
    common = os.path.join(scratch, "src", "common")
    os.makedirs(common)
    shutil.copy(os.path.join(repo_root, "src", "common",
                             "thread_annotations.h"), common)
    if snippet is not None:
        shutil.copy(os.path.join(snippet_dir, snippet),
                    os.path.join(scratch, "src", snippet))
    return scratch


def run_linter_lane(repo_root, here):
    snippet_dir = os.path.join(here, "snippets")
    cases = [
        ("lint_epoch_guard_park.cc", "epoch-guard-blocking"),
        ("lint_raw_mutex.cc", "raw-std-sync"),
        ("lint_unjustified_relaxed.cc", "unjustified-relaxed"),
    ]
    for snippet, rule in cases:
        scratch = make_scratch(repo_root, snippet_dir, snippet)
        try:
            rc, out = run_linter(repo_root, scratch)
            ok = rc == 1 and f"[{rule}]" in out
            record(f"lint: {snippet} flagged by {rule}", ok,
                   f"rc={rc} output={out[:800]}")
        finally:
            shutil.rmtree(scratch)

    # Orphan suppression: entry names a symbol absent from src/.
    scratch = make_scratch(repo_root, snippet_dir, None)
    try:
        with open(os.path.join(scratch, ".tsan-suppressions"), "w") as f:
            f.write("# Justified but dead: the symbol is gone.\n")
            f.write("race:skeena::GhostClass::GhostMethod\n")
        rc, out = run_linter(repo_root, scratch)
        ok = rc == 1 and "no longer exists in src/" in out
        record("lint: dead .tsan-suppressions entry flagged", ok,
               f"rc={rc} output={out[:800]}")
    finally:
        shutil.rmtree(scratch)

    # Uncommented suppression: symbol exists but carries no justification.
    scratch = make_scratch(repo_root, snippet_dir, "lint_clean.cc")
    try:
        with open(os.path.join(scratch, ".tsan-suppressions"), "w") as f:
            f.write("race:Gauge::Set\n")
        rc, out = run_linter(repo_root, scratch)
        ok = rc == 1 and "no justification comment" in out
        record("lint: uncommented .tsan-suppressions entry flagged", ok,
               f"rc={rc} output={out[:800]}")
    finally:
        shutil.rmtree(scratch)

    # Clean control: zero findings on a rule-abiding tree.
    scratch = make_scratch(repo_root, snippet_dir, "lint_clean.cc")
    try:
        rc, out = run_linter(repo_root, scratch)
        ok = rc == 0 and "findings=0" in out
        record("lint: clean control produces zero findings", ok,
               f"rc={rc} output={out[:800]}")
    finally:
        shutil.rmtree(scratch)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--repo-root", default=None)
    args = ap.parse_args()
    here = os.path.dirname(os.path.abspath(__file__))
    repo_root = args.repo_root or os.path.dirname(os.path.dirname(here))

    run_tsa_lane(repo_root, here)
    run_linter_lane(repo_root, here)

    failed = [r for r in results if not r[1]]
    print(f"\nstatic_analysis_test: {len(results) - len(failed)}/"
          f"{len(results)} checks passed")
    if failed:
        return FAIL
    if not results:
        return 77
    return PASS


if __name__ == "__main__":
    sys.exit(main())
