// Seeded violation for tests/static_analysis/run_checks.py: calls a
// SKEENA_REQUIRES(mu_) helper without the lock held. The harness asserts
// clang's -Werror=thread-safety rejects this translation unit.
#include "common/thread_annotations.h"

namespace {

class Queue {
 public:
  void PushLocked(int v) SKEENA_REQUIRES(mu_) { size_ += v; }
  // BUG (intentional): the *Locked contract is violated.
  void Push(int v) { PushLocked(v); }
  int SizeLocked() const SKEENA_REQUIRES(mu_) { return size_; }

 private:
  mutable skeena::Mutex mu_;
  int size_ SKEENA_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Queue q;
  q.Push(1);
  return 0;
}
