// Seeded violation for tests/static_analysis/run_checks.py: reads a
// GUARDED_BY field without holding its mutex. The harness compiles this
// with clang's -Werror=thread-safety and asserts the build FAILS; if it
// ever compiles, the annotation lane has silently stopped checking.
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  void Add(int d) {
    skeena::MutexLock lock(mu_);
    total_ += d;
  }
  // BUG (intentional): mu_ is not held.
  int Read() const { return total_; }

 private:
  mutable skeena::Mutex mu_;
  int total_ SKEENA_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Add(1);
  return c.Read();
}
