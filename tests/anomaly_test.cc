// Reproduces the cross-engine anomalies of paper Section 2.3 (Figures 2-3)
// and verifies Skeena prevents them while the uncoordinated baseline
// exhibits them.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/skeena.h"
#include "support/db_fixtures.h"

namespace skeena {
namespace {

using test::FastOptions;

// ---------------------------------------------------------------------------
// Issue 1b, Figure 2(b) "isolation failure": a cross-engine transaction T
// commits its mem sub-transaction; before its stor sub-transaction commits,
// a reader U starts and reads both engines. Uncoordinated, U sees T's mem
// write but not its stor write — partial results.
// ---------------------------------------------------------------------------
TEST(AnomalyTest, IsolationFailureObservableWithoutCoordination) {
  // Drive the engines directly to pin the Figure 2(b) interleaving.
  DatabaseOptions opts = FastOptions(false);
  Database db(opts);
  auto mem_t = *db.CreateTable("m", EngineKind::kMem);
  auto stor_t = *db.CreateTable("s", EngineKind::kStor);

  EngineIface* mem = db.engine(0);
  EngineIface* stor = db.engine(1);

  // Cross-engine T writes both engines...
  auto t_mem = mem->Begin(IsolationLevel::kSnapshot, kMaxTimestamp);
  auto t_stor = stor->Begin(IsolationLevel::kSnapshot, kMaxTimestamp);
  ASSERT_TRUE(mem->Put(t_mem.get(), mem_t.local_id, MakeKey(1), "T").ok());
  ASSERT_TRUE(stor->Put(t_stor.get(), stor_t.local_id, MakeKey(1), "T").ok());

  // ...commits the mem half only (stor half still in flight).
  Timestamp cts;
  ASSERT_TRUE(mem->PreCommit(t_mem.get(), 1, false, &cts).ok());
  mem->PostCommit(t_mem.get(), 1, false);

  // U begins now and reads both engines with native latest snapshots.
  auto u_mem = mem->Begin(IsolationLevel::kSnapshot, kMaxTimestamp);
  auto u_stor = stor->Begin(IsolationLevel::kSnapshot, kMaxTimestamp);
  std::string v;
  EXPECT_TRUE(mem->Get(u_mem.get(), mem_t.local_id, MakeKey(1), &v).ok())
      << "U sees T's mem write";
  EXPECT_TRUE(
      stor->Get(u_stor.get(), stor_t.local_id, MakeKey(1), &v).IsNotFound())
      << "but not T's stor write: partial results (the Fig 2(b) anomaly)";

  mem->Abort(u_mem.get());
  stor->Abort(u_stor.get());
  // Finish T.
  ASSERT_TRUE(stor->PreCommit(t_stor.get(), 1, false, &cts).ok());
  stor->PostCommit(t_stor.get(), 1, false);
}

// With Skeena the same phenomenon cannot be observed through the public
// API: a reader either orders entirely before or entirely after a
// cross-engine writer.
TEST(AnomalyTest, SkeenaPreventsPartialReads) {
  Database db(FastOptions(true));
  auto mem_t = *db.CreateTable("m", EngineKind::kMem);
  auto stor_t = *db.CreateTable("s", EngineKind::kStor);
  {
    auto init = db.Begin();
    ASSERT_TRUE(init->Put(mem_t, MakeKey(1), "0").ok());
    ASSERT_TRUE(init->Put(stor_t, MakeKey(1), "0").ok());
    ASSERT_TRUE(init->Commit().ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn_reads{0};
  std::atomic<uint64_t> reads_done{0};

  // Writer: A and B always updated together to the same value.
  std::thread writer([&] {
    for (int i = 1; i <= 600 && !stop.load(); ++i) {
      while (true) {
        auto txn = db.Begin();
        std::string val = std::to_string(i);
        if (!txn->Put(mem_t, MakeKey(1), val).ok()) continue;
        if (!txn->Put(stor_t, MakeKey(1), val).ok()) continue;
        if (txn->Commit().ok()) break;
      }
    }
    stop.store(true);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        auto txn = db.Begin();
        std::string a, b;
        if (!txn->Get(mem_t, MakeKey(1), &a).ok()) continue;
        if (!txn->Get(stor_t, MakeKey(1), &b).ok()) continue;
        if (a != b) torn_reads.fetch_add(1);
        reads_done.fetch_add(1);
        txn->Abort();
      }
    });
  }
  writer.join();
  for (auto& th : readers) th.join();
  EXPECT_GT(reads_done.load(), 100u);
  EXPECT_EQ(torn_reads.load(), 0u)
      << "Skeena must make cross-engine writes appear atomic to snapshots";
}

// The uncoordinated baseline, under the same workload, does observe torn
// pairs (this is the motivating measurement; with native latest snapshots
// the window between the two independent sub-commits is visible).
TEST(AnomalyTest, BaselineObservesTornPairs) {
  Database db(FastOptions(false));
  auto mem_t = *db.CreateTable("m", EngineKind::kMem);
  auto stor_t = *db.CreateTable("s", EngineKind::kStor);
  {
    auto init = db.Begin();
    ASSERT_TRUE(init->Put(mem_t, MakeKey(1), "0").ok());
    ASSERT_TRUE(init->Put(stor_t, MakeKey(1), "0").ok());
    ASSERT_TRUE(init->Commit().ok());
  }
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn_reads{0};

  std::thread writer([&] {
    for (int i = 1; i <= 3000 && !stop.load(); ++i) {
      auto txn = db.Begin();
      std::string val = std::to_string(i);
      if (!txn->Put(mem_t, MakeKey(1), val).ok()) continue;
      if (!txn->Put(stor_t, MakeKey(1), val).ok()) continue;
      txn->Commit();
      if (torn_reads.load() > 0) break;  // anomaly demonstrated
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        auto txn = db.Begin();
        std::string a, b;
        if (!txn->Get(mem_t, MakeKey(1), &a).ok()) continue;
        if (!txn->Get(stor_t, MakeKey(1), &b).ok()) continue;
        if (a != b) torn_reads.fetch_add(1);
        txn->Abort();
      }
    });
  }
  writer.join();
  for (auto& th : readers) th.join();
  // Not asserting >0 hard (timing dependent), but report it: in practice
  // this fires within a few hundred iterations.
  RecordProperty("torn_reads", static_cast<int>(torn_reads.load()));
  SUCCEED();
}

// ---------------------------------------------------------------------------
// Issue 2, Figure 3: write skew across engines. Each engine alone is
// serializable, but T (reads A in mem, writes B in stor) and S (writes A,
// reads B) form a cross-engine cycle. Under serializable isolation Skeena +
// commit-ordering engines must abort one of them.
// ---------------------------------------------------------------------------
TEST(AnomalyTest, CrossEngineWriteSkewPreventedUnderSerializable) {
  Database db(FastOptions(true));
  auto mem_t = *db.CreateTable("m", EngineKind::kMem);
  auto stor_t = *db.CreateTable("s", EngineKind::kStor);
  {
    auto init = db.Begin();
    ASSERT_TRUE(init->Put(mem_t, MakeKey(1), "A0").ok());    // A in mem
    ASSERT_TRUE(init->Put(stor_t, MakeKey(2), "B0").ok());   // B in stor
    ASSERT_TRUE(init->Commit().ok());
  }

  // True write skew = both commit having both read the *initial* values
  // (neither saw the other's write). If one transaction reads the other's
  // committed write, the execution is serial and both may commit legally.
  int skew = 0;
  for (int round = 0; round < 20; ++round) {
    std::string a0 = "A" + std::to_string(round);
    std::string b0 = "B" + std::to_string(round);
    {
      auto reset = db.Begin();
      ASSERT_TRUE(reset->Put(mem_t, MakeKey(1), a0).ok());
      ASSERT_TRUE(reset->Put(stor_t, MakeKey(2), b0).ok());
      ASSERT_TRUE(reset->Commit().ok());
    }
    std::atomic<bool> t_skewed{false}, s_skewed{false};
    std::thread tt([&] {
      auto t = db.Begin(IsolationLevel::kSerializable);
      std::string v;
      if (!t->Get(mem_t, MakeKey(1), &v).ok()) return;      // r(A)
      bool read_old = v == a0;
      if (!t->Put(stor_t, MakeKey(2), "B-t").ok()) return;  // w(B)
      t_skewed.store(t->Commit().ok() && read_old);
    });
    std::thread ts([&] {
      auto s = db.Begin(IsolationLevel::kSerializable);
      std::string v;
      if (!s->Get(stor_t, MakeKey(2), &v).ok()) return;     // r(B)
      bool read_old = v == b0;
      if (!s->Put(mem_t, MakeKey(1), "A-s").ok()) return;   // w(A)
      s_skewed.store(s->Commit().ok() && read_old);
    });
    tt.join();
    ts.join();
    if (t_skewed.load() && s_skewed.load()) skew++;
  }
  EXPECT_EQ(skew, 0)
      << "write skew (Fig 3 cycle) slipped through serializable mode";
}

TEST(AnomalyTest, SnapshotIsolationPermitsDisjointWriteCommits) {
  // Contrast for the serializable test: under SI the write-skew pattern is
  // not blocked by read validation. The first transaction always commits;
  // the second either commits (classic SI write skew) or hits a
  // Skeena/engine abort — never an inconsistent state. Retrying the loser
  // with a fresh snapshot must succeed.
  Database db(FastOptions(true));
  auto mem_t = *db.CreateTable("m", EngineKind::kMem);
  auto stor_t = *db.CreateTable("s", EngineKind::kStor);
  {
    auto init = db.Begin();
    ASSERT_TRUE(init->Put(mem_t, MakeKey(1), "A0").ok());
    ASSERT_TRUE(init->Put(stor_t, MakeKey(2), "B0").ok());
    ASSERT_TRUE(init->Commit().ok());
  }
  auto t = db.Begin(IsolationLevel::kSnapshot);
  auto s = db.Begin(IsolationLevel::kSnapshot);
  std::string v;
  ASSERT_TRUE(t->Get(mem_t, MakeKey(1), &v).ok());
  ASSERT_TRUE(s->Get(stor_t, MakeKey(2), &v).ok());
  ASSERT_TRUE(t->Put(stor_t, MakeKey(2), "B-t").ok());
  ASSERT_TRUE(s->Put(mem_t, MakeKey(1), "A-s").ok());
  EXPECT_TRUE(t->Commit().ok()) << "no validation blocks t under SI";
  Status s_commit = s->Commit();
  if (!s_commit.ok()) {
    EXPECT_TRUE(s_commit.IsAnyAbort()) << s_commit.ToString();
    // Retry with a fresh snapshot: disjoint writes, must succeed.
    auto retry = db.Begin(IsolationLevel::kSnapshot);
    ASSERT_TRUE(retry->Get(stor_t, MakeKey(2), &v).ok());
    ASSERT_TRUE(retry->Put(mem_t, MakeKey(1), "A-s").ok());
    EXPECT_TRUE(retry->Commit().ok());
  }
}

// ---------------------------------------------------------------------------
// Issue 1a, Figure 2(a) "skewed snapshot": two concurrent cross-engine
// readers must observe states consistent with a single cross-engine
// ordering: if R2 sees more of the mem engine than R1, it must not see
// less of the stor engine.
// ---------------------------------------------------------------------------
TEST(AnomalyTest, SnapshotOrderConsistentAcrossEngines) {
  Database db(FastOptions(true));
  auto mem_t = *db.CreateTable("m", EngineKind::kMem);
  auto stor_t = *db.CreateTable("s", EngineKind::kStor);
  {
    auto init = db.Begin();
    ASSERT_TRUE(init->Put(mem_t, MakeKey(1), "0").ok());
    ASSERT_TRUE(init->Put(stor_t, MakeKey(1), "0").ok());
    ASSERT_TRUE(init->Commit().ok());
  }
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> skew{0};

  std::thread writer([&] {
    for (int i = 1; i <= 400 && !stop.load(); ++i) {
      while (true) {
        auto txn = db.Begin();
        if (!txn->Put(mem_t, MakeKey(1), std::to_string(i)).ok()) continue;
        if (!txn->Put(stor_t, MakeKey(1), std::to_string(i)).ok()) continue;
        if (txn->Commit().ok()) break;
      }
    }
    stop.store(true);
  });

  // Reader pairs: R1 starts before R2; R2's view of each engine must be
  // >= R1's view (no "crossed" snapshots).
  std::thread checker([&] {
    while (!stop.load()) {
      auto r1 = db.Begin();
      std::string a1, b1;
      if (!r1->Get(mem_t, MakeKey(1), &a1).ok()) continue;
      if (!r1->Get(stor_t, MakeKey(1), &b1).ok()) continue;
      auto r2 = db.Begin();
      std::string a2, b2;
      if (!r2->Get(mem_t, MakeKey(1), &a2).ok()) continue;
      if (!r2->Get(stor_t, MakeKey(1), &b2).ok()) continue;
      if (std::stoi(a2) < std::stoi(a1) || std::stoi(b2) < std::stoi(b1)) {
        skew.fetch_add(1);
      }
      r1->Abort();
      r2->Abort();
    }
  });
  writer.join();
  checker.join();
  EXPECT_EQ(skew.load(), 0u) << "later reader observed an earlier snapshot";
}

}  // namespace
}  // namespace skeena
