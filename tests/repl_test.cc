// End-to-end replication suite (docs/REPLICATION.md): a live primary with
// a Shipper feeding a replica-mode Database through a Replica applier over
// a real localhost socket.
//
// The structural assertions (byte-identical scan state after catch-up,
// resume after a killed channel) are backed by a black-box one: every
// replica snapshot read is recorded and run through CheckSnapshotIsolation
// against the PRIMARY's writer history and the REPLICA's replayed CSR
// dump, in replica mode (staleness legal, torn or non-monotone reads not).
// The gate-bypass test proves the check is non-vacuous: with the
// visibility gate disabled, a cross-engine commit parked between its two
// post-commits produces a torn replica read that the checker flags.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/history.h"
#include "core/skeena.h"
#include "log/storage_device.h"
#include "repl/applier.h"
#include "repl/shipper.h"
#include "support/db_fixtures.h"

namespace skeena::test {
namespace {

using repl::CsrInstallJournal;
using repl::Replica;
using repl::Shipper;

// Session/gtid offsets applied to the replica's fold when merging the two
// histories (the recorders count independently from 1).
constexpr uint64_t kReplicaSessionFloor = 1'000'000;
constexpr GlobalTxnId kReplicaGtidOffset = 1'000'000'000;

constexpr auto kCatchUpTimeout = std::chrono::milliseconds(10'000);

std::map<Key, std::string> ScanAll(Database& db, const TableHandle& table) {
  std::map<Key, std::string> rows;
  auto txn = db.Begin(IsolationLevel::kSnapshot);
  Status s = txn->Scan(table, MakeKey(0), 0,
                       [&rows](const Key& k, const std::string& v) {
                         rows[k] = v;
                         return true;
                       });
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(txn->Commit().ok());
  return rows;
}

/// One primary + one replica wired through a live shipper on a
/// kernel-assigned localhost port. Both databases record history.
struct ReplPair {
  explicit ReplPair(DatabaseOptions primary_opts = FastOptions(),
                    bool start_replication = true) {
    primary_opts.record_history = true;
    primary_opts.csr.install_observer = journal.Observer();
    primary = std::make_unique<Database>(primary_opts);
    p_mem = *primary->CreateTable("mem_t", EngineKind::kMem);
    p_stor = *primary->CreateTable("stor_t", EngineKind::kStor);

    DatabaseOptions replica_opts = FastOptions();
    replica_opts.replica = true;
    replica_opts.record_history = true;
    replica_db = std::make_unique<Database>(replica_opts);
    // The catalog is not replicated; the replica declares the same tables
    // in the same order so the shipped records' table ids line up.
    r_mem = *replica_db->CreateTable("mem_t", EngineKind::kMem);
    r_stor = *replica_db->CreateTable("stor_t", EngineKind::kStor);

    shipper = std::make_unique<Shipper>(primary.get(), &journal);
    if (start_replication) Start();
  }

  ~ReplPair() {
    if (replica) replica->Stop();
    if (shipper) shipper->Stop();
  }

  void Start() {
    ASSERT_TRUE(shipper->Start().ok());
    Replica::Options ropts;
    ropts.port = shipper->port();
    replica = std::make_unique<Replica>(replica_db.get(), ropts);
    ASSERT_TRUE(replica->Start().ok());
  }

  Status CrossPut(uint64_t k, const std::string& v) {
    auto txn = primary->Begin(IsolationLevel::kSnapshot);
    SKEENA_RETURN_NOT_OK(txn->Put(p_mem, MakeKey(k), v));
    SKEENA_RETURN_NOT_OK(txn->Put(p_stor, MakeKey(k), v));
    return txn->Commit();
  }

  Status SinglePut(const TableHandle& t, uint64_t k, const std::string& v) {
    auto txn = primary->Begin(IsolationLevel::kSnapshot);
    SKEENA_RETURN_NOT_OK(txn->Put(t, MakeKey(k), v));
    return txn->Commit();
  }

  /// Call with primary writers quiesced: samples the primary stream
  /// targets and blocks until the replica received AND applied them.
  bool CatchUp(std::chrono::milliseconds timeout = kCatchUpTimeout) {
    Lsn mem_lsn = primary->engine(EngineKind::kMem)->CurrentLsn();
    Lsn stor_lsn = primary->engine(EngineKind::kStor)->CurrentLsn();
    return replica->WaitCaughtUp(mem_lsn, stor_lsn, journal.size(), timeout);
  }

  void ExpectStateEqual() {
    EXPECT_EQ(ScanAll(*primary, p_mem), ScanAll(*replica_db, r_mem));
    EXPECT_EQ(ScanAll(*primary, p_stor), ScanAll(*replica_db, r_stor));
  }

  /// Merges the two recorders' folds: replica sessions/gtids are shifted
  /// above every primary id, then the whole history is re-ordered by
  /// (session, seq) as the checker expects.
  std::vector<TxnHistory> MergedHistory() {
    std::vector<TxnHistory> merged = primary->recorder()->Fold();
    for (TxnHistory& t : replica_db->recorder()->Fold()) {
      t.session += kReplicaSessionFloor;
      t.gtid += kReplicaGtidOffset;
      merged.push_back(std::move(t));
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const TxnHistory& a, const TxnHistory& b) {
                       return a.session != b.session ? a.session < b.session
                                                     : a.seq < b.seq;
                     });
    return merged;
  }

  /// SI check of the merged history against the REPLICA's replayed CSR.
  SiReport Check() {
    SiCheckOptions check;
    check.anchor_index = primary->anchor_index();
    check.have_csr_dump = true;
    Timestamp floor = 0;
    for (const auto& m : replica_db->csr().DumpMappings(&floor)) {
      check.csr_mappings.push_back({m.key, m.vmin, m.vmax});
    }
    check.csr_floor = floor;
    check.replica_session_floor = kReplicaSessionFloor;
    return CheckSnapshotIsolation(MergedHistory(), check);
  }

  CsrInstallJournal journal;
  std::unique_ptr<Database> primary;
  std::unique_ptr<Database> replica_db;
  std::unique_ptr<Shipper> shipper;
  std::unique_ptr<Replica> replica;
  TableHandle p_mem, p_stor, r_mem, r_stor;
};

// ------------------------------------------------------------- basic path

TEST(ReplBasic, ShipAndReadReachesIdenticalState) {
  ReplPair rp;
  for (uint64_t k = 0; k < 16; ++k) {
    ASSERT_TRUE(rp.CrossPut(k, "cross" + std::to_string(k)).ok());
  }
  for (uint64_t k = 100; k < 108; ++k) {
    ASSERT_TRUE(rp.SinglePut(rp.p_mem, k, "mem" + std::to_string(k)).ok());
    ASSERT_TRUE(rp.SinglePut(rp.p_stor, k, "stor" + std::to_string(k)).ok());
  }
  // Overwrites and a delete exercise versioned replay, not just inserts.
  ASSERT_TRUE(rp.CrossPut(3, "cross3-v2").ok());
  {
    auto txn = rp.primary->Begin(IsolationLevel::kSnapshot);
    ASSERT_TRUE(txn->Delete(rp.p_mem, MakeKey(5)).ok());
    ASSERT_TRUE(txn->Delete(rp.p_stor, MakeKey(5)).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  ASSERT_TRUE(rp.CatchUp());
  rp.ExpectStateEqual();

  // Point reads through a replica snapshot transaction.
  auto txn = rp.replica_db->Begin(IsolationLevel::kSnapshot);
  std::string v;
  ASSERT_TRUE(txn->Get(rp.r_mem, MakeKey(3), &v).ok());
  EXPECT_EQ(v, "cross3-v2");
  ASSERT_TRUE(txn->Get(rp.r_stor, MakeKey(3), &v).ok());
  EXPECT_EQ(v, "cross3-v2");
  EXPECT_TRUE(txn->Get(rp.r_mem, MakeKey(5), &v).IsNotFound());
  ASSERT_TRUE(txn->Commit().ok());

  auto gate = rp.replica->GatePair();
  EXPECT_GT(gate.first, Timestamp{1});
  EXPECT_GT(gate.second, Timestamp{1});
  EXPECT_GE(rp.shipper->watermarks_sent(), uint64_t{1});

  SiReport report = rp.Check();
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(ReplBasic, ReplicaRejectsWrites) {
  ReplPair rp;
  ASSERT_TRUE(rp.CrossPut(1, "v").ok());
  ASSERT_TRUE(rp.CatchUp());

  auto txn = rp.replica_db->Begin(IsolationLevel::kSnapshot);
  EXPECT_EQ(txn->Put(rp.r_mem, MakeKey(1), "w").code(),
            StatusCode::kNotSupported);
  EXPECT_EQ(txn->Put(rp.r_stor, MakeKey(1), "w").code(),
            StatusCode::kNotSupported);
  EXPECT_EQ(txn->Delete(rp.r_mem, MakeKey(1)).code(),
            StatusCode::kNotSupported);
  std::string v;
  EXPECT_TRUE(txn->Get(rp.r_mem, MakeKey(1), &v).ok());  // reads still fine
  txn->Abort();
}

// --------------------------------------------------- concurrent snapshot SI

TEST(ReplConsistency, SnapshotReadsUnderLoadPassSiCheck) {
  ReplPair rp;
  for (uint64_t k = 0; k < 8; ++k) {
    ASSERT_TRUE(rp.CrossPut(k, "init").ok());
  }
  ASSERT_TRUE(rp.CatchUp());

  std::atomic<bool> writers_done{false};
  std::vector<std::thread> threads;
  // Primary writers: cross-engine updates over a small hot key set, so
  // replica readers race real pair boundaries.
  for (int w = 0; w < 3; ++w) {
    threads.emplace_back([&rp, w] {
      for (int i = 0; i < 120; ++i) {
        uint64_t k = static_cast<uint64_t>((w * 120 + i) % 8);
        std::string v = "w" + std::to_string(w) + "i" + std::to_string(i);
        auto txn = rp.primary->Begin(IsolationLevel::kSnapshot);
        if (!txn->Put(rp.p_mem, MakeKey(k), v).ok() ||
            !txn->Put(rp.p_stor, MakeKey(k), v).ok()) {
          txn->Abort();
          continue;
        }
        txn->Commit().ok();  // CSR may abort; either outcome is recorded
      }
    });
  }
  // Replica readers: each session repeatedly reads a key from both
  // engines; the recorded snap pairs feed the replica-mode checker.
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&rp, &writers_done, r] {
      std::string v;
      while (!writers_done.load(std::memory_order_acquire)) {
        uint64_t k = static_cast<uint64_t>(r * 3 % 8);
        auto txn = rp.replica_db->Begin(IsolationLevel::kSnapshot);
        Status s1 = txn->Get(rp.r_mem, MakeKey(k), &v);
        Status s2 = txn->Get(rp.r_stor, MakeKey(k), &v);
        if (s1.ok() && s2.ok()) {
          txn->Commit().ok();
        } else {
          txn->Abort();
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  writers_done.store(true, std::memory_order_release);
  for (std::thread& th : readers) th.join();

  ASSERT_TRUE(rp.CatchUp());
  rp.ExpectStateEqual();

  SiReport report = rp.Check();
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GT(report.pairs, size_t{0});  // the check actually saw cross pairs
}

// --------------------------------------------------------- kill + resume

TEST(ReplResume, KilledChannelResumesToIdenticalState) {
  ReplPair rp;
  for (uint64_t k = 0; k < 8; ++k) {
    ASSERT_TRUE(rp.CrossPut(k, "phase1").ok());
  }
  ASSERT_TRUE(rp.CatchUp());
  rp.ExpectStateEqual();

  // Sever the channel, keep writing: the resumed session must re-ship
  // exactly the missing suffix from the acknowledged-received cursors.
  rp.replica->KillChannel();
  for (uint64_t k = 0; k < 8; ++k) {
    ASSERT_TRUE(rp.CrossPut(k, "phase2").ok());
    ASSERT_TRUE(rp.SinglePut(rp.p_mem, 200 + k, "phase2m").ok());
    ASSERT_TRUE(rp.SinglePut(rp.p_stor, 300 + k, "phase2s").ok());
  }
  ASSERT_TRUE(rp.CatchUp());
  rp.ExpectStateEqual();
  EXPECT_GE(rp.replica->progress().reconnects, uint64_t{1});
  EXPECT_GE(rp.shipper->connections_served(), uint64_t{2});

  SiReport report = rp.Check();
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(ReplResume, MidFrameCutResumesToIdenticalState) {
  ReplPair rp;
  for (uint64_t k = 0; k < 8; ++k) {
    ASSERT_TRUE(rp.CrossPut(k, "phase1").ok());
  }
  ASSERT_TRUE(rp.CatchUp());

  // Cut the TCP stream a few bytes into the next frame: the replica must
  // discard the torn tail and resume without applying it twice or at all.
  rp.shipper->TestOnlyCutAfterBytes(5);
  for (uint64_t k = 0; k < 12; ++k) {
    ASSERT_TRUE(rp.CrossPut(k, "phase2-" + std::to_string(k)).ok());
  }
  ASSERT_TRUE(rp.CatchUp());
  rp.ExpectStateEqual();
  EXPECT_GE(rp.replica->progress().reconnects, uint64_t{1});

  SiReport report = rp.Check();
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// ------------------------------------------------------------- torn tail

/// Delegating device whose Sync blocks while the shared gate is closed —
/// freezes DurableLsn without stopping appends, so the primary's log grows
/// a non-durable tail the shipper must not put on the wire.
struct SyncGate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = true;

  void Close() {
    std::lock_guard<std::mutex> guard(mu);
    open = false;
  }
  void Open() {
    {
      std::lock_guard<std::mutex> guard(mu);
      open = true;
    }
    cv.notify_all();
  }
};

class GatedSyncDevice : public StorageDevice {
 public:
  explicit GatedSyncDevice(std::shared_ptr<SyncGate> gate)
      : gate_(std::move(gate)), inner_(DeviceLatency::Tmpfs()) {}

  Status Append(std::span<const uint8_t> data, uint64_t* offset) override {
    return inner_.Append(data, offset);
  }
  Status WriteAt(uint64_t offset, std::span<const uint8_t> data) override {
    return inner_.WriteAt(offset, data);
  }
  Status ReadAt(uint64_t offset, std::span<uint8_t> out) const override {
    return inner_.ReadAt(offset, out);
  }
  Status Sync() override {
    std::unique_lock<std::mutex> lock(gate_->mu);
    gate_->cv.wait(lock, [this] { return gate_->open; });
    lock.unlock();
    return inner_.Sync();
  }
  Status Truncate(uint64_t size) override { return inner_.Truncate(size); }
  uint64_t Size() const override { return inner_.Size(); }
  uint64_t bytes_read() const override { return inner_.bytes_read(); }
  uint64_t bytes_written() const override { return inner_.bytes_written(); }

 private:
  std::shared_ptr<SyncGate> gate_;
  MemDevice inner_;
};

TEST(ReplTornTail, ShipperNeverPassesDurableWatermark) {
  auto gate = std::make_shared<SyncGate>();
  DatabaseOptions opts = FastOptions();
  opts.log_device_factory = [gate](const std::string&) {
    return std::make_unique<GatedSyncDevice>(gate);
  };
  ReplPair rp(opts);

  for (uint64_t k = 0; k < 8; ++k) {
    ASSERT_TRUE(rp.CrossPut(k, "phase1").ok());
  }
  ASSERT_TRUE(rp.CatchUp());
  auto mem_before = ScanAll(*rp.replica_db, rp.r_mem);
  auto stor_before = ScanAll(*rp.replica_db, rp.r_stor);

  // Freeze durability. Any sync already past the gate finishes first so
  // the durable LSNs we sample below are the frozen ones.
  gate->Close();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  Lsn durable[kNumEngines];
  for (int e = 0; e < kNumEngines; ++e) {
    durable[e] = rp.primary->engine(e)->DurableLsn();
  }

  // Writers append a non-durable tail; their commits block on the
  // pipeline's durability wait until the gate reopens.
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&rp, w] {
      // Concurrent cross-engine committers can draw a SkeenaAbort from the
      // commit check (an ordering inversion between the engines' commit
      // timestamps); that is protocol behaviour, not a failure — retry.
      Status s;
      do {
        s = rp.CrossPut(static_cast<uint64_t>(w),
                        "phase2-" + std::to_string(w));
      } while (s.IsAnyAbort());
      ASSERT_TRUE(s.ok()) << s.ToString();
    });
  }
  // Let the appends land: the log tail is now past the durable mark.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_GT(rp.primary->engine(0)->CurrentLsn(), durable[0]);

  // The torn-tail rule, observed from outside: over a sustained window the
  // replica never receives (let alone applies) a byte past the frozen
  // durable watermark, and its visible state stays at phase 1.
  for (int poll = 0; poll < 10; ++poll) {
    auto progress = rp.replica->progress();
    for (int e = 0; e < kNumEngines; ++e) {
      EXPECT_LE(progress.recv_lsn[e], durable[e]) << "engine " << e;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(ScanAll(*rp.replica_db, rp.r_mem), mem_before);
  EXPECT_EQ(ScanAll(*rp.replica_db, rp.r_stor), stor_before);

  // Reopen (required before teardown: the log flushers block in Sync) and
  // verify the tail ships normally once it is durable.
  gate->Open();
  for (std::thread& th : writers) th.join();
  ASSERT_TRUE(rp.CatchUp());
  rp.ExpectStateEqual();

  SiReport report = rp.Check();
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// ------------------------------------------------- visibility-gate proof

/// Parks exactly one cross-engine committer inside the inter-engine
/// post-commit window (anchor results visible, other engine's not).
struct CommitPark {
  std::mutex mu;
  std::condition_variable cv;
  bool armed = false;
  bool parked = false;
  bool release = false;

  std::function<void(GlobalTxnId)> Hook() {
    return [this](GlobalTxnId) {
      std::unique_lock<std::mutex> lock(mu);
      if (!armed) return;
      armed = false;
      parked = true;
      cv.notify_all();
      cv.wait(lock, [this] { return release; });
    };
  }
  void Arm() {
    std::lock_guard<std::mutex> guard(mu);
    armed = true;
  }
  void WaitParked() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return parked; });
  }
  void Release() {
    {
      std::lock_guard<std::mutex> guard(mu);
      release = true;
    }
    cv.notify_all();
  }
};

/// Drives a replica read while one primary cross commit straddles the two
/// engines. Returns the (mem, stor) values the replica read observed for
/// the key, after ensuring the replica has applied the anchor half.
void RunStraddledCommitRead(ReplPair& rp, CommitPark& park,
                            std::string* mem_read, std::string* stor_read) {
  ASSERT_TRUE(rp.CrossPut(7, "v0").ok());
  ASSERT_TRUE(rp.CatchUp());

  park.Arm();
  std::thread writer([&rp] {
    auto txn = rp.primary->Begin(IsolationLevel::kSnapshot);
    ASSERT_TRUE(txn->Put(rp.p_mem, MakeKey(7), "v1").ok());
    ASSERT_TRUE(txn->Put(rp.p_stor, MakeKey(7), "v1").ok());
    ASSERT_TRUE(txn->Commit().ok());
  });
  park.WaitParked();

  // The writer's anchor (mem) post-commit is done: its result is visible
  // on the primary and the mem commit horizon may pass it. The stor half
  // is parked. Wait for the replica to apply up to the primary's current
  // anchor snapshot so the torn prefix is definitely replayed.
  const int anchor = rp.primary->anchor_index();
  Timestamp primary_anchor_now =
      rp.primary->engine(anchor)->LatestSnapshot();
  auto deadline = std::chrono::steady_clock::now() + kCatchUpTimeout;
  while (rp.replica->progress().applied_horizon[anchor] <
         primary_anchor_now) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "replica never applied the straddled commit's anchor half";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  {
    auto txn = rp.replica_db->Begin(IsolationLevel::kSnapshot);
    ASSERT_TRUE(txn->Get(rp.r_mem, MakeKey(7), mem_read).ok());
    ASSERT_TRUE(txn->Get(rp.r_stor, MakeKey(7), stor_read).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }

  // Record where the gate stood relative to the anchor horizon the
  // replica had applied (used by the gated variant's clamp assertion).
  park.Release();
  writer.join();
  ASSERT_TRUE(rp.CatchUp());
}

TEST(ReplGate, BypassedGateTearsAndCheckerFlagsIt) {
  CommitPark park;
  DatabaseOptions opts = FastOptions();
  opts.test_post_commit_hook = park.Hook();
  ReplPair rp(opts);
  rp.replica->TestOnlyDisableGate();  // UNSOUND on purpose

  std::string mem_read, stor_read;
  RunStraddledCommitRead(rp, park, &mem_read, &stor_read);

  // Without the gate the replica exposed the raw horizons: the read saw
  // the commit's mem half but not its stor half.
  EXPECT_EQ(mem_read, "v1");
  EXPECT_EQ(stor_read, "v0");

  // Non-vacuity: the black-box checker must flag that torn pair.
  SiReport report = rp.Check();
  ASSERT_FALSE(report.ok())
      << "gate bypass produced no violation - the SI check is vacuous";
  bool saw_cross_skew = false;
  for (const SiViolation& v : report.violations) {
    if (v.kind == SiViolation::Kind::kCrossSkew) saw_cross_skew = true;
  }
  EXPECT_TRUE(saw_cross_skew) << report.Summary();
}

TEST(ReplGate, GatePreventsTornRead) {
  CommitPark park;
  DatabaseOptions opts = FastOptions();
  opts.test_post_commit_hook = park.Hook();
  ReplPair rp(opts);

  std::string mem_read, stor_read;
  Timestamp gate_anchor_during = 0;
  Timestamp applied_anchor_during = 0;
  {
    // Sample the clamp while the commit straddles (before Release).
    // RunStraddledCommitRead does the waiting; sampling afterwards would
    // race the released writer, so wrap the read with our own sampling.
    ASSERT_TRUE(rp.CrossPut(7, "v0").ok());
    ASSERT_TRUE(rp.CatchUp());
    park.Arm();
    std::thread writer([&rp] {
      auto txn = rp.primary->Begin(IsolationLevel::kSnapshot);
      ASSERT_TRUE(txn->Put(rp.p_mem, MakeKey(7), "v1").ok());
      ASSERT_TRUE(txn->Put(rp.p_stor, MakeKey(7), "v1").ok());
      ASSERT_TRUE(txn->Commit().ok());
    });
    park.WaitParked();
    const int anchor = rp.primary->anchor_index();
    Timestamp primary_anchor_now =
        rp.primary->engine(anchor)->LatestSnapshot();
    auto deadline = std::chrono::steady_clock::now() + kCatchUpTimeout;
    while (rp.replica->progress().applied_horizon[anchor] <
           primary_anchor_now) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    applied_anchor_during = rp.replica->progress().applied_horizon[anchor];
    gate_anchor_during = rp.replica->GatePair().first;

    auto txn = rp.replica_db->Begin(IsolationLevel::kSnapshot);
    ASSERT_TRUE(txn->Get(rp.r_mem, MakeKey(7), &mem_read).ok());
    ASSERT_TRUE(txn->Get(rp.r_stor, MakeKey(7), &stor_read).ok());
    ASSERT_TRUE(txn->Commit().ok());

    park.Release();
    writer.join();
    ASSERT_TRUE(rp.CatchUp());
  }

  // The gate clamped visibility below the straddling commit: the read saw
  // NEITHER half — stale but consistent.
  EXPECT_EQ(mem_read, "v0");
  EXPECT_EQ(stor_read, "v0");
  // And the clamp genuinely engaged: the anchor gate sat strictly below
  // the anchor horizon the replica had already applied.
  EXPECT_LT(gate_anchor_during, applied_anchor_during);

  rp.ExpectStateEqual();
  SiReport report = rp.Check();
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// ------------------------------------------------ checker unit coverage

// The replica-mode checker axioms themselves, on synthetic histories (the
// live tests above exercise them end-to-end).
TEST(ReplChecker, FlagsGateRegressionAndAllowsStaleness) {
  std::vector<TxnHistory> history;

  // A primary writer committing (10, 20).
  TxnHistory w;
  w.gtid = 1;
  w.session = 1;
  w.seq = 1;
  w.outcome = TxnHistory::Outcome::kCommitted;
  w.anchor_snap = 5;
  w.wrote[0] = w.wrote[1] = true;
  w.used[0] = w.used[1] = true;
  w.commit[0] = 10;
  w.commit[1] = 20;
  history.push_back(w);

  // Replica session reads at (9, 19) — stale but legal — then regresses
  // to (8, 19), which replica mode must flag.
  TxnHistory r1;
  r1.gtid = kReplicaGtidOffset + 1;
  r1.session = kReplicaSessionFloor + 1;
  r1.seq = 1;
  r1.outcome = TxnHistory::Outcome::kCommitted;
  r1.anchor_snap = 9;
  r1.snap_pairs.emplace_back(9, 19);
  history.push_back(r1);

  TxnHistory r2 = r1;
  r2.gtid = kReplicaGtidOffset + 2;
  r2.seq = 2;
  r2.anchor_snap = 8;
  r2.snap_pairs.clear();
  r2.snap_pairs.emplace_back(8, 19);
  history.push_back(r2);

  SiCheckOptions check;
  check.anchor_index = 0;
  check.replica_session_floor = kReplicaSessionFloor;
  SiReport report = CheckSnapshotIsolation(history, check);
  ASSERT_EQ(report.violations.size(), size_t{1}) << report.Summary();
  EXPECT_EQ(report.violations[0].kind, SiViolation::Kind::kGateRegression);

  // The same stale-but-monotone history with no regression is clean.
  history.pop_back();
  report = CheckSnapshotIsolation(history, check);
  EXPECT_TRUE(report.ok()) << report.Summary();

  // Without replica mode, session-order would (correctly) not fire here
  // either, but the stale pair must not be mistaken for a torn one.
  check.replica_session_floor = 0;
  report = CheckSnapshotIsolation(history, check);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

}  // namespace
}  // namespace skeena::test
