#include "core/csr.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/random.h"

namespace skeena {
namespace {

SnapshotRegistry::Options SmallOptions(size_t capacity = 4,
                                       uint64_t recycle = 0) {
  SnapshotRegistry::Options o;
  o.partition_capacity = capacity;
  o.recycle_period = recycle;
  return o;
}

// ------------------------------------------------ Algorithm 1 (selection)

TEST(CsrSelectTest, EmptyRegistryUsesLatest) {
  SnapshotRegistry csr(SmallOptions());
  auto sel = csr.SelectSnapshot(100, [] { return Timestamp{777}; });
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(*sel, 777u);
  EXPECT_EQ(csr.EntryCount(), 1u) << "the mapping must be recorded (line 10)";
}

TEST(CsrSelectTest, PredecessorMappingWins) {
  SnapshotRegistry csr(SmallOptions(100));
  // Commit history: anchor 10 -> other 1000; anchor 20 -> other 2000.
  ASSERT_TRUE(csr.CommitCheck(10, 1000).ok());
  ASSERT_TRUE(csr.CommitCheck(20, 2000).ok());

  // A transaction with anchor snapshot 15 must select 1000 (the latest
  // other-engine snapshot mapped to a key <= 15) — NOT the latest (Fig 2a
  // prevention: taking the latest would order it after anchor-20's txn).
  auto sel = csr.SelectSnapshot(15, [] { return Timestamp{9999}; });
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(*sel, 1000u);
}

TEST(CsrSelectTest, ExactKeyMatchReusesMapping) {
  SnapshotRegistry csr(SmallOptions(100));
  ASSERT_TRUE(csr.CommitCheck(10, 1000).ok());
  auto sel = csr.SelectSnapshot(10, [] { return Timestamp{9999}; });
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(*sel, 1000u);
}

TEST(CsrSelectTest, LatestWhenNewerThanAllMappings) {
  SnapshotRegistry csr(SmallOptions(100));
  ASSERT_TRUE(csr.CommitCheck(10, 1000).ok());
  auto sel = csr.SelectSnapshot(50, [] { return Timestamp{5000}; });
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(*sel, 1000u)
      << "pred mapping at key 10 is the latest candidate <= 50";

  // Key beyond everything with no pred in range -> pred still applies;
  // only a key below all mappings with no candidates aborts or uses latest.
  auto sel2 = csr.SelectSnapshot(5, [] { return Timestamp{5000}; });
  ASSERT_TRUE(sel2.ok());
  // No mapping with key <= 5: select clamps to the successor's value (key
  // 10 -> 1000) rather than racing ahead of it.
  EXPECT_LE(*sel2, 1000u);
}

TEST(CsrSelectTest, RepeatedSameKeySelectionsStayAtOneEntry) {
  // The "InnoDB-only under Skeena" workload: the anchor snapshot never
  // moves, so the CSR must stay at one entry (paper Section 6.3).
  SnapshotRegistry csr(SmallOptions(100));
  for (int i = 0; i < 1000; ++i) {
    auto sel = csr.SelectSnapshot(42, [&] { return Timestamp(100 + i); });
    ASSERT_TRUE(sel.ok());
  }
  EXPECT_EQ(csr.EntryCount(), 1u);
  EXPECT_EQ(csr.PartitionCount(), 1u);
}

// Pins the install paths behind the located-hint refactor (the callers now
// pass the partition index / lower bound they already computed into
// InstallLocked): in-order appends, same-key interval widening, the
// out-of-order copy-on-write insert and the full-partition spawn must all
// still produce the exact mappings they did when InstallLocked re-searched.
TEST(CsrSelectTest, InstallPathsKeepExactMappingsAcrossOrderings) {
  SnapshotRegistry csr(SmallOptions(4));
  // In-order appends.
  ASSERT_TRUE(csr.CommitCheck(10, 100).ok());
  ASSERT_TRUE(csr.CommitCheck(30, 300).ok());
  EXPECT_EQ(csr.EntryCount(), 2u);
  // Out-of-order insert into the open partition (COW path): key 20 lands
  // between the published keys.
  ASSERT_TRUE(csr.CommitCheck(20, 200).ok());
  EXPECT_EQ(csr.EntryCount(), 3u);
  EXPECT_EQ(csr.PartitionCount(), 1u);
  // Same-key widen: a selection at key 20 reuses the entry (no growth).
  auto sel = csr.SelectSnapshot(20, [] { return Timestamp{9999}; });
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(*sel, 200u);
  EXPECT_EQ(csr.EntryCount(), 3u);
  // Fill the partition, then spawn: key beyond the full range opens a new
  // partition seeded with the mapping.
  ASSERT_TRUE(csr.CommitCheck(40, 400).ok());
  ASSERT_TRUE(csr.CommitCheck(50, 500).ok());
  EXPECT_EQ(csr.PartitionCount(), 2u);
  EXPECT_EQ(csr.EntryCount(), 5u);
  // Every mapping still answers exactly.
  const std::pair<Timestamp, Timestamp> expected[] = {
      {10, 100}, {20, 200}, {30, 300}, {40, 400}, {50, 500}};
  for (const auto& [a, o] : expected) {
    auto s = csr.SelectSnapshot(a, [] { return Timestamp{9999}; });
    ASSERT_TRUE(s.ok()) << "anchor " << a;
    EXPECT_EQ(*s, o) << "anchor " << a;
  }
  // Predecessor semantics unchanged across the partition boundary.
  auto mid = csr.SelectSnapshot(45, [] { return Timestamp{9999}; });
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(*mid, 400u);
}

// ---------------------------------------------- Algorithm 2 (commit check)

TEST(CsrCommitTest, InOrderCommitsPass) {
  SnapshotRegistry csr(SmallOptions(100));
  EXPECT_TRUE(csr.CommitCheck(10, 100).ok());
  EXPECT_TRUE(csr.CommitCheck(20, 200).ok());
  EXPECT_TRUE(csr.CommitCheck(30, 300).ok());
  EXPECT_EQ(csr.stats().commit_aborts, 0u);
}

TEST(CsrCommitTest, SkewedCommitRejected) {
  SnapshotRegistry csr(SmallOptions(100));
  ASSERT_TRUE(csr.CommitCheck(10, 100).ok());
  ASSERT_TRUE(csr.CommitCheck(30, 300).ok());
  // Anchor order says "between 10 and 30" but the other engine's commit is
  // after 300: inserting (20, 400) would let future transactions observe
  // the Figure 2(a) skew. Must abort.
  Status s = csr.CommitCheck(20, 400);
  EXPECT_TRUE(s.IsSkeenaAbort());
  // Symmetric: other-engine commit before 100.
  EXPECT_TRUE(csr.CommitCheck(25, 50).IsSkeenaAbort());
  EXPECT_GE(csr.stats().commit_aborts, 2u);
}

TEST(CsrCommitTest, BoundsInclusiveForReadOnlyTimestamps) {
  SnapshotRegistry csr(SmallOptions(100));
  ASSERT_TRUE(csr.CommitCheck(10, 100).ok());
  ASSERT_TRUE(csr.CommitCheck(30, 300).ok());
  // A read-only other-engine sub-transaction carries a borrowed view
  // bound: coinciding with the predecessor's value is the same view at a
  // later anchor position — legal (Algorithm 2's strict >/<).
  EXPECT_TRUE(csr.CommitCheck(20, 100, true, /*other_wrote=*/false).ok());
  EXPECT_TRUE(csr.CommitCheck(25, 300, true, /*other_wrote=*/false).ok());
}

TEST(CsrCommitTest, LowBoundStrictForRealCommits) {
  SnapshotRegistry csr(SmallOptions(100));
  ASSERT_TRUE(csr.CommitCheck(10, 100).ok());
  // A *real* other-engine commit at exactly the predecessor's value would
  // become visible to the reader that produced that bound while its anchor
  // effects stay invisible — Figure 2 skew. Must abort.
  EXPECT_TRUE(
      csr.CommitCheck(20, 100, true, /*other_wrote=*/true).IsSkeenaAbort());
  EXPECT_TRUE(csr.CommitCheck(20, 101, true, true).ok());
}

TEST(CsrCommitTest, ReaderTieAtAnchorCommitAborts) {
  SnapshotRegistry csr(SmallOptions(100));
  // A reader selected with anchor snapshot 50 and other-engine view 100
  // (e.g., raced an in-flight committer).
  auto sel = csr.SelectSnapshot(50, [] { return Timestamp{100}; });
  ASSERT_TRUE(sel.ok());
  ASSERT_EQ(*sel, 100u);
  // A dual-writer committing at anchor cts exactly 50 with other cts 200:
  // that reader sees its anchor half (visibility is inclusive) but not its
  // other half. Must abort.
  EXPECT_TRUE(csr.CommitCheck(50, 200, true, true).IsSkeenaAbort());
  // Anchor-read-only ties stay free (nothing to see in the anchor).
  EXPECT_TRUE(csr.CommitCheck(50, 200, /*anchor_wrote=*/false, true).ok());
}

TEST(CsrCommitTest, EqualAnchorKeysDoNotConstrainReadOnlyAnchors) {
  // Begin-timestamp ties (anchor-read-only transactions) may commit in any
  // other-engine order (DSI Rule 4 allows <=); values collapse to the max.
  SnapshotRegistry csr(SmallOptions(100));
  ASSERT_TRUE(csr.CommitCheck(10, 200, false, true).ok());
  EXPECT_TRUE(csr.CommitCheck(10, 100, false, true).ok());
  EXPECT_TRUE(csr.CommitCheck(10, 300, false, true).ok());
  EXPECT_EQ(csr.EntryCount(), 1u);
}

TEST(CsrCommitTest, SelectionThenCommitRoundTrip) {
  SnapshotRegistry csr(SmallOptions(100));
  ASSERT_TRUE(csr.CommitCheck(10, 100).ok());
  // Cross transaction: anchor snapshot 15 selects other snapshot 100;
  // commits at anchor 16 / other 150.
  auto sel = csr.SelectSnapshot(15, [] { return Timestamp{9999}; });
  ASSERT_TRUE(sel.ok());
  ASSERT_EQ(*sel, 100u);
  EXPECT_TRUE(csr.CommitCheck(16, 150).ok());
}

// --------------------------------------------------- Multi-index behaviour

TEST(CsrPartitionTest, FillSpawnsNewPartition) {
  SnapshotRegistry csr(SmallOptions(4));
  for (Timestamp t = 1; t <= 12; ++t) {
    ASSERT_TRUE(csr.CommitCheck(t * 10, t * 100).ok()) << t;
  }
  EXPECT_EQ(csr.PartitionCount(), 3u) << "4 keys per partition, 12 keys";
  EXPECT_EQ(csr.EntryCount(), 12u);
  // Reads spanning sealed partitions still resolve.
  auto sel = csr.SelectSnapshot(55, [] { return Timestamp{1 << 20}; });
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(*sel, 500u);
}

TEST(CsrPartitionTest, SealedPartitionsKeepServingSelection) {
  SnapshotRegistry csr(SmallOptions(4));
  for (Timestamp t = 1; t <= 8; ++t) {
    ASSERT_TRUE(csr.CommitCheck(t * 10, t * 100).ok());
  }
  ASSERT_GE(csr.PartitionCount(), 2u);
  // Key 15 falls inside the first (sealed) partition: selection keeps
  // working ("read-only [indexes] continue to serve existing transactions
  // for snapshot selection", Section 4.3) because sealed partitions are
  // immutable — the mapping Algorithm 1 would add is implied.
  auto sel = csr.SelectSnapshot(15, [] { return Timestamp{1 << 20}; });
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(*sel, 100u);
  // But a *commit* landing inside a sealed range needs a real mapping:
  // abort (Section 4.3).
  EXPECT_TRUE(csr.CommitCheck(15, 150).IsSkeenaAbort());
  EXPECT_GE(csr.stats().sealed_aborts, 1u);
}

TEST(CsrPartitionTest, SelectionBelowSealedRangeAborts) {
  SnapshotRegistry csr(SmallOptions(4));
  // First partition spans [10, 40] and is sealed once a second exists.
  for (Timestamp t = 1; t <= 8; ++t) {
    ASSERT_TRUE(csr.CommitCheck(t * 10, t * 100).ok());
  }
  // A snapshot below every key of the sealed first partition has no
  // predecessor mapping to serve and cannot record one.
  auto sel = csr.SelectSnapshot(5, [] { return Timestamp{1 << 20}; });
  EXPECT_TRUE(sel.status().IsSkeenaAbort());
  EXPECT_GE(csr.stats().sealed_aborts, 1u);
}

TEST(CsrPartitionTest, ExistingKeyInSealedPartitionStillServes) {
  SnapshotRegistry csr(SmallOptions(4));
  for (Timestamp t = 1; t <= 8; ++t) {
    ASSERT_TRUE(csr.CommitCheck(t * 10, t * 100).ok());
  }
  // Key 20 exists in the sealed partition: selection needs no new mapping.
  auto sel = csr.SelectSnapshot(20, [] { return Timestamp{1 << 20}; });
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(*sel, 200u);
}

TEST(CsrPartitionTest, CommitAcrossPartitionBoundaryKeepsBounds) {
  SnapshotRegistry csr(SmallOptions(4));
  for (Timestamp t = 1; t <= 4; ++t) {
    ASSERT_TRUE(csr.CommitCheck(t * 10, t * 100).ok());
  }
  // First key of partition 2: its true predecessor (40 -> 400) lives in
  // partition 1. A commit violating that bound must still abort.
  EXPECT_TRUE(csr.CommitCheck(50, 50).IsSkeenaAbort())
      << "cross-partition predecessor bound ignored";
  EXPECT_TRUE(csr.CommitCheck(50, 500).ok());
}

// ---------------------------------------------------------------- Recycling

TEST(CsrRecycleTest, DropsPartitionsBelowMinActive) {
  SnapshotRegistry csr(SmallOptions(4));
  Timestamp min_active = 0;
  csr.SetMinAnchorProvider([&] { return min_active; });
  for (Timestamp t = 1; t <= 16; ++t) {
    ASSERT_TRUE(csr.CommitCheck(t * 10, t * 100).ok());
  }
  ASSERT_EQ(csr.PartitionCount(), 4u);

  min_active = 5;  // everything still needed
  csr.Recycle();
  EXPECT_EQ(csr.PartitionCount(), 4u);

  min_active = 95;  // first two partitions ([10..40], [50..80]) stale
  csr.Recycle();
  EXPECT_EQ(csr.PartitionCount(), 2u);
  EXPECT_EQ(csr.stats().partitions_recycled, 2u);

  min_active = kMaxTimestamp;  // only the open partition survives
  csr.Recycle();
  EXPECT_EQ(csr.PartitionCount(), 1u);
}

TEST(CsrRecycleTest, OldTransactionAbortsAfterItsPartitionRecycled) {
  SnapshotRegistry csr(SmallOptions(4));
  csr.SetMinAnchorProvider([] { return kMaxTimestamp; });
  for (Timestamp t = 1; t <= 8; ++t) {
    ASSERT_TRUE(csr.CommitCheck(t * 10, t * 100).ok());
  }
  csr.Recycle();
  auto sel = csr.SelectSnapshot(15, [] { return Timestamp{1 << 20}; });
  EXPECT_TRUE(sel.status().IsSkeenaAbort());
}

TEST(CsrRecycleTest, AutomaticRecyclingOnAccessPeriod) {
  SnapshotRegistry::Options opts;
  opts.partition_capacity = 4;
  opts.recycle_period = 50;
  SnapshotRegistry csr(opts);
  csr.SetMinAnchorProvider([] { return kMaxTimestamp; });
  for (Timestamp t = 1; t <= 200; ++t) {
    ASSERT_TRUE(csr.CommitCheck(t * 10, t * 100).ok());
  }
  // Without recycling there would be ~50 partitions.
  EXPECT_LT(csr.PartitionCount(), 20u);
  EXPECT_GT(csr.stats().partitions_recycled, 0u);
}

// -------------------------------------------------------------- Concurrency

TEST(CsrConcurrencyTest, ParallelCommitsKeepMonotonicity) {
  SnapshotRegistry::Options opts;
  opts.partition_capacity = 256;
  SnapshotRegistry csr(opts);
  // Threads commit (anchor, other) pairs drawn from two shared counters;
  // the CSR must either accept or abort, and accepted pairs must keep the
  // cross-key monotonicity invariant validated afterwards via selection.
  std::atomic<Timestamp> anchor_clock{1};
  std::atomic<Timestamp> other_clock{1};
  std::atomic<uint64_t> accepted{0};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        Timestamp a = anchor_clock.fetch_add(1) + 1;
        Timestamp o = other_clock.fetch_add(1) + 1;
        if (csr.CommitCheck(a, o).ok()) accepted.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GT(accepted.load(), 0u);

  // Validate monotonicity: selections at increasing anchor snapshots give
  // non-decreasing other-engine snapshots.
  Timestamp last = 0;
  for (Timestamp a = 2; a < anchor_clock.load(); a += 97) {
    auto sel = csr.SelectSnapshot(a, [&] { return other_clock.load(); });
    if (!sel.ok()) continue;
    EXPECT_GE(*sel, last) << "skewed mapping admitted at anchor " << a;
    last = *sel;
  }
}

TEST(CsrConcurrencyTest, MixedSelectCommitRecycleNoCrash) {
  SnapshotRegistry::Options opts;
  opts.partition_capacity = 64;
  opts.recycle_period = 100;
  SnapshotRegistry csr(opts);
  std::atomic<Timestamp> anchor_clock{1};
  std::atomic<Timestamp> other_clock{1};
  csr.SetMinAnchorProvider([&] {
    // Conservative: everything older than (now - 200) is reclaimable.
    Timestamp now = anchor_clock.load();
    return now > 200 ? now - 200 : 0;
  });
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(t);
      for (int i = 0; i < 3000; ++i) {
        if (rng.Uniform(2) == 0) {
          Timestamp a = anchor_clock.fetch_add(1) + 1;
          Timestamp o = other_clock.fetch_add(1) + 1;
          csr.CommitCheck(a, o);
        } else {
          Timestamp a = anchor_clock.load();
          csr.SelectSnapshot(a, [&] { return other_clock.load(); });
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  SUCCEED();
}

// The TSan proof of the RCU rewrite: lock-free readers race committers and
// an explicit recycler, and every successful hit-path selection must return
// exactly the other-engine timestamp its committer published. Committers
// hand accepted (anchor, other) pairs to readers through a release/acquire
// ring, so a reader's CSR view is always at least as new as the pair it
// probes; unique anchor keys make the expected selection exact.
TEST(CsrConcurrencyTest, LockFreeReadersSeeExactPublishedMappings) {
  SnapshotRegistry::Options opts;
  opts.partition_capacity = 64;
  opts.recycle_period = 0;  // reclamation driven by a dedicated thread
  SnapshotRegistry csr(opts);

  std::atomic<Timestamp> anchor_clock{1};
  std::atomic<Timestamp> other_clock{1};
  std::atomic<Timestamp> min_active{0};
  csr.SetMinAnchorProvider([&] { return min_active.load(); });

  constexpr size_t kRing = 1024;
  // (anchor << 32) | other; 0 = not yet published.
  static_assert(sizeof(uint64_t) == 8);
  std::vector<std::atomic<uint64_t>> ring(kRing);
  std::atomic<uint64_t> published{0};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> exact_hits{0};
  std::atomic<uint64_t> recycled_aborts{0};

  constexpr int kCommitters = 3;
  constexpr int kCommitsEach = 4000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kCommitters; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kCommitsEach; ++i) {
        Timestamp a = anchor_clock.fetch_add(1) + 1;
        Timestamp o = other_clock.fetch_add(1) + 1;
        if (!csr.CommitCheck(a, o).ok()) continue;  // racing inversion
        uint64_t seq = published.fetch_add(1, std::memory_order_relaxed);
        ring[seq % kRing].store((a << 32) | o, std::memory_order_release);
        // Let the reclamation floor trail the commit frontier.
        Timestamp floor = a > 600 ? a - 600 : 0;
        Timestamp cur = min_active.load(std::memory_order_relaxed);
        while (floor > cur &&
               !min_active.compare_exchange_weak(cur, floor)) {
        }
      }
    });
  }
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + t);
      while (!stop.load(std::memory_order_acquire)) {
        uint64_t n = published.load(std::memory_order_acquire);
        if (n == 0) {
          std::this_thread::yield();
          continue;
        }
        uint64_t packed =
            ring[rng.Uniform(std::min<uint64_t>(n, kRing)) % kRing].load(
                std::memory_order_acquire);
        if (packed == 0) continue;
        Timestamp a = packed >> 32;
        Timestamp o = packed & 0xffffffffull;
        auto sel = csr.SelectSnapshot(
            a, [&] { return other_clock.load(std::memory_order_relaxed); });
        if (!sel.ok()) {
          // Only possible once the recycler dropped this anchor's range.
          EXPECT_LE(a, min_active.load()) << "live-range selection aborted";
          recycled_aborts.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        ASSERT_EQ(*sel, o) << "hit-path selection diverged from the "
                              "published mapping at anchor "
                           << a;
        exact_hits.fetch_add(1, std::memory_order_relaxed);
        // Exercise the other lock-free reads under the same races.
        Timestamp mv = csr.MinSelectableValue(a);
        EXPECT_GE(mv, o) << "GC floor below an already-published mapping";
        (void)csr.EntryCount();
      }
    });
  }
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_acquire)) {
      csr.Recycle();
      std::this_thread::yield();
    }
  });

  for (int t = 0; t < kCommitters; ++t) threads[t].join();
  // Reader scheduling is not guaranteed on an oversubscribed box (the
  // hit-count assertion below used to flake under parallel ctest when the
  // reader threads never ran before stop): drive one exact hit
  // deterministically against the newest published mapping.
  {
    uint64_t n = published.load(std::memory_order_acquire);
    ASSERT_GT(n, 0u);
    uint64_t packed = ring[(n - 1) % kRing].load(std::memory_order_acquire);
    ASSERT_NE(packed, 0u);
    Timestamp a = packed >> 32;
    Timestamp o = packed & 0xffffffffull;
    auto sel = csr.SelectSnapshot(
        a, [&] { return other_clock.load(std::memory_order_relaxed); });
    ASSERT_TRUE(sel.ok()) << "frontier mapping cannot be below the floor";
    EXPECT_EQ(*sel, o);
    exact_hits.fetch_add(1, std::memory_order_relaxed);
  }
  stop.store(true, std::memory_order_release);
  for (size_t t = kCommitters; t < threads.size(); ++t) threads[t].join();

  EXPECT_GT(exact_hits.load(), 0u) << "stress never drove the hit path";
  // The racing recycler is scheduling-dependent (on one core it may never
  // run before stop); a final explicit pass makes the reclamation
  // assertion deterministic — ~180 partitions exist and the floor trails
  // the frontier by only 600 anchors.
  csr.Recycle();
  EXPECT_GT(csr.stats().partitions_recycled, 0u)
      << "recycling reclaimed nothing despite a trailing floor";

  // Post-mortem: surviving mappings still answer monotonically.
  Timestamp last = 0;
  for (Timestamp a = min_active.load() + 1; a < anchor_clock.load();
       a += 53) {
    auto sel = csr.SelectSnapshot(a, [&] { return other_clock.load(); });
    if (!sel.ok()) continue;
    EXPECT_GE(*sel, last) << "skewed mapping admitted at anchor " << a;
    last = *sel;
  }
}

// ------------------------------------------------- Recycling (Section 4.4)

// Regression: after recycling, stale partitions are reclaimed while
// Algorithm 1 still answers from the surviving predecessor mappings —
// recycling must never take the skew-free candidate away from a live
// reader.
TEST(CsrRecycleTest, ReclaimsStalePartitionsButKeepsPredecessorMapping) {
  // recycle_period=0: only explicit Recycle() calls, so the test controls
  // exactly when reclamation happens.
  SnapshotRegistry csr(SmallOptions(/*capacity=*/4, /*recycle=*/0));
  // 40 in-order commits, 4 keys per partition -> 10 sealed-ish partitions:
  // p0 = {10..40}, p1 = {50..80}, ..., p9 = {370..400}.
  for (int i = 1; i <= 40; ++i) {
    ASSERT_TRUE(csr.CommitCheck(10 * i, 100 * i).ok());
  }
  ASSERT_EQ(csr.PartitionCount(), 10u);
  ASSERT_EQ(csr.EntryCount(), 40u);

  // Oldest active anchor snapshot: 310 (inside p7 = {290..320}).
  csr.SetMinAnchorProvider([] { return Timestamp{310}; });
  csr.Recycle();

  // p0..p6 are entirely below the active snapshot and must be gone; p7
  // survives because its range still covers 310.
  EXPECT_EQ(csr.stats().partitions_recycled, 7u);
  EXPECT_EQ(csr.PartitionCount(), 3u);
  EXPECT_EQ(csr.EntryCount(), 12u) << "stale mappings were not reclaimed";

  // Algorithm 1 for a live reader: predecessor mapping (310 -> 3100), not
  // the latest other-engine snapshot.
  auto sel = csr.SelectSnapshot(315, [] { return Timestamp{9999}; });
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(*sel, 3100u) << "recycling lost the skew-free predecessor";

  // A snapshot below the new floor lost its partition and must abort
  // rather than silently select a skewed candidate.
  auto stale = csr.SelectSnapshot(250, [] { return Timestamp{9999}; });
  EXPECT_TRUE(stale.status().IsSkeenaAbort());
  EXPECT_GE(csr.stats().select_aborts, 1u);

  // The registry keeps working after reclamation.
  EXPECT_TRUE(csr.CommitCheck(410, 4100).ok());
  auto fresh = csr.SelectSnapshot(410, [] { return Timestamp{9999}; });
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(*fresh, 4100u);
}

// The automatic path: recycle_period expiry (every N accesses) must reclaim
// without any explicit Recycle() call.
TEST(CsrRecycleTest, RecyclePeriodExpiryReclaimsAutomatically) {
  SnapshotRegistry csr(SmallOptions(/*capacity=*/4, /*recycle=*/5));
  std::atomic<Timestamp> min_active{0};
  csr.SetMinAnchorProvider([&] { return min_active.load(); });
  for (int i = 1; i <= 40; ++i) {
    ASSERT_TRUE(csr.CommitCheck(10 * i, 100 * i).ok());
  }
  ASSERT_EQ(csr.PartitionCount(), 10u);

  // All readers move past anchor 400; the next few accesses cross the
  // period boundary and must trigger reclamation on their own.
  min_active.store(400);
  for (int i = 0; i < 10; ++i) {
    auto sel = csr.SelectSnapshot(400, [] { return Timestamp{9999}; });
    ASSERT_TRUE(sel.ok());
    EXPECT_EQ(*sel, 4000u);
  }
  EXPECT_GE(csr.stats().partitions_recycled, 8u);
  EXPECT_LE(csr.PartitionCount(), 2u);
}

// --------------------------------------------------- Property sweep (TEST_P)

class CsrCapacitySweep : public ::testing::TestWithParam<size_t> {};

TEST_P(CsrCapacitySweep, AcceptedHistoryIsAlwaysSkewFree) {
  size_t capacity = GetParam();
  SnapshotRegistry::Options opts;
  opts.partition_capacity = capacity;
  SnapshotRegistry csr(opts);

  Rng rng(capacity);
  std::vector<std::pair<Timestamp, Timestamp>> accepted;
  Timestamp a = 1, o = 1;
  for (int i = 0; i < 5000; ++i) {
    a += 1 + rng.Uniform(3);
    // Sometimes propose an out-of-order other timestamp.
    Timestamp prop = (rng.Uniform(10) == 0 && o > 20) ? o - 20 : (o += 1 + rng.Uniform(3), o);
    if (csr.CommitCheck(a, prop).ok()) accepted.push_back({a, prop});
  }
  // Invariant: accepted pairs sorted by anchor must have non-decreasing
  // other timestamps among strictly increasing anchors.
  for (size_t i = 1; i < accepted.size(); ++i) {
    ASSERT_GE(accepted[i].first, accepted[i - 1].first);
    if (accepted[i].first > accepted[i - 1].first) {
      ASSERT_GE(accepted[i].second, accepted[i - 1].second)
          << "skew admitted at index " << i << " (capacity " << capacity
          << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, CsrCapacitySweep,
                         ::testing::Values(2, 8, 64, 1000));

}  // namespace
}  // namespace skeena
