// Durability walkthrough: file-backed database, cross-engine commits,
// "crash" (process state dropped), reopen + Recover() — including the
// paper's Section 4.6 guarantee that a cross-engine transaction missing a
// commit-end in either engine's log is rolled back on both sides.
//
// Build & run:   ./build/examples/durability

#include <cstdio>
#include <filesystem>

#include "core/skeena.h"

int main() {
  using namespace skeena;
  std::string dir =
      (std::filesystem::temp_directory_path() / "skeena_durability_demo")
          .string();
  std::filesystem::remove_all(dir);

  DatabaseOptions options;
  options.data_dir = dir;

  std::printf("phase 1: write through a file-backed database at %s\n",
              dir.c_str());
  {
    Database db(options);
    auto accounts = *db.CreateTable("accounts", EngineKind::kMem);
    auto ledger = *db.CreateTable("ledger", EngineKind::kStor);
    for (int i = 0; i < 10; ++i) {
      auto txn = db.Begin();
      txn->Put(accounts, MakeKey(i), "balance=" + std::to_string(100 * i));
      txn->Put(ledger, MakeKey(i), "entry-" + std::to_string(i));
      Status s = txn->Commit();  // returns only after both logs are durable
      if (!s.ok()) std::printf("commit %d failed: %s\n", i, s.ToString().c_str());
    }
    // Database object destroyed here = process "crash" after durable
    // commits (nothing else is persisted: no checkpoints needed, recovery
    // replays the logs).
  }

  std::printf("phase 2: reopen + recover\n");
  {
    Database db(options);  // catalog reloaded from disk
    Status s = db.Recover();
    std::printf("recover: %s\n", s.ToString().c_str());
    auto accounts = *db.GetTable("accounts");
    auto ledger = *db.GetTable("ledger");
    auto txn = db.Begin();
    int found = 0;
    for (int i = 0; i < 10; ++i) {
      std::string a, l;
      if (txn->Get(accounts, MakeKey(i), &a).ok() &&
          txn->Get(ledger, MakeKey(i), &l).ok()) {
        found++;
      }
    }
    std::printf("recovered %d/10 cross-engine transactions intact\n", found);
    if (found != 10) return 1;
  }

  std::filesystem::remove_all(dir);
  std::printf("done.\n");
  return 0;
}
