// Table-placement advisor: the actionable takeaway of the paper's Section
// 6.9 ("judiciously placing tables in different engines"). Runs a short
// TPC-C probe for a set of candidate placements and reports throughput and
// the estimated memory footprint each placement keeps in DRAM, so an
// operator can pick a point on the speed/cost curve.
//
// Build & run:   ./build/examples/placement_advisor

#include <cstdio>

#include "bench/common/tpcc.h"
#include "bench/common/workload.h"

namespace {

using namespace skeena;
using namespace skeena::bench;

}  // namespace

int main() {
  BenchScale scale;
  scale.full = false;
  scale.duration_ms = 300;
  scale.connections = {8};

  struct Candidate {
    std::string label;
    std::set<std::string> mem_tables;
    std::string rationale;
  };
  std::vector<Candidate> candidates = {
      {"all-InnoDB", {}, "cheapest: everything on storage"},
      {"Payment-Opt", {"customer"}, "hot CUSTOMER rows in DRAM"},
      {"New-Order-Opt", {"customer", "item"}, "order path in DRAM"},
      {"Delivery-Opt",
       {"new_orders", "orders", "order_line"},
       "kill Delivery's lock waits"},
      {"Archive",
       {"warehouse", "district", "customer", "new_orders", "orders",
        "order_line", "item", "stock"},
       "everything hot in DRAM, history archived"},
  };

  std::printf("probing %zu placements (%d connections, %llu ms each)...\n\n",
              candidates.size(), scale.connections[0],
              static_cast<unsigned long long>(scale.duration_ms));
  std::printf("%-16s %10s %12s  %s\n", "placement", "TPS", "mem tables",
              "rationale");

  double best_tps = 0;
  std::string best;
  for (const auto& cand : candidates) {
    TpccConfig cfg = ScaledTpccConfig(TpccConfig{}, scale);
    cfg.mem_tables = cand.mem_tables;
    cfg.data_latency = DeviceLatency::TmpfsStack();
    Tpcc tpcc(cfg);
    RunResult r = RunWorkload(scale.connections[0], scale.duration_ms,
                              [&tpcc](int tid, Rng& rng, uint64_t* q) {
                                return tpcc.RunMix(tid, rng, q);
                              });
    std::printf("%-16s %10.0f %12zu  %s\n", cand.label.c_str(), r.Tps(),
                cand.mem_tables.size(), cand.rationale.c_str());
    if (r.Tps() > best_tps) {
      best_tps = r.Tps();
      best = cand.label;
    }
  }
  std::printf("\nbest throughput: %s (%.0f TPS)\n", best.c_str(), best_tps);
  std::printf(
      "note: 'Archive' usually matches all-memory speed while keeping the\n"
      "append-only HISTORY table on cheap storage (paper Section 6.9).\n");
  return 0;
}
