// Demonstrates the cross-engine anomalies of paper Section 2.3 live: runs
// the same writer/reader workload twice — once with coordination disabled
// (MySQL's status quo: correctness undefined) and once with Skeena — and
// counts torn reads.
//
// Build & run:   ./build/examples/anomaly_demo

#include <atomic>
#include <cstdio>
#include <thread>

#include "core/skeena.h"

namespace {

using namespace skeena;

// Writers keep a (mem, stor) pair equal; readers report mismatches.
uint64_t CountTornReads(bool skeena_on, int seconds_tenths) {
  DatabaseOptions options;
  options.enable_skeena = skeena_on;
  Database db(options);
  TableHandle left = *db.CreateTable("left", EngineKind::kMem);
  TableHandle right = *db.CreateTable("right", EngineKind::kStor);
  {
    auto init = db.Begin();
    init->Put(left, MakeKey(1), "0");
    init->Put(right, MakeKey(1), "0");
    init->Commit();
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};
  std::atomic<uint64_t> reads{0};

  std::thread writer([&] {
    for (int i = 1; !stop.load(); ++i) {
      auto txn = db.Begin();
      std::string v = std::to_string(i);
      if (!txn->Put(left, MakeKey(1), v).ok()) continue;
      if (!txn->Put(right, MakeKey(1), v).ok()) continue;
      txn->Commit();
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        auto txn = db.Begin(IsolationLevel::kSnapshot);
        std::string a, b;
        if (!txn->Get(left, MakeKey(1), &a).ok()) continue;
        if (!txn->Get(right, MakeKey(1), &b).ok()) continue;
        reads.fetch_add(1);
        if (a != b) torn.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(
      std::chrono::milliseconds(100 * seconds_tenths));
  stop.store(true);
  writer.join();
  for (auto& th : readers) th.join();
  std::printf("  %-12s %8llu reads, %6llu torn pairs\n",
              skeena_on ? "Skeena:" : "baseline:",
              static_cast<unsigned long long>(reads.load()),
              static_cast<unsigned long long>(torn.load()));
  return torn.load();
}

}  // namespace

int main() {
  std::printf(
      "A cross-engine writer keeps one row per engine equal; snapshot\n"
      "readers check both rows. Any mismatch is a Figure 2 anomaly.\n\n");

  std::printf("Uncoordinated sub-transactions (paper Section 2.4, MySQL):\n");
  uint64_t baseline_torn = CountTornReads(/*skeena_on=*/false, 15);

  std::printf("\nWith Skeena (CSR snapshot selection + commit check):\n");
  uint64_t skeena_torn = CountTornReads(/*skeena_on=*/true, 15);

  std::printf(
      "\nresult: baseline tore %llu pairs; Skeena tore %llu (must be 0)\n",
      static_cast<unsigned long long>(baseline_torn),
      static_cast<unsigned long long>(skeena_torn));
  return skeena_torn == 0 ? 0 : 1;
}
