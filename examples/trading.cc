// The paper's motivating financial application (Section 1.1): a trading
// system keeps recent trades in a fast memory table and historical trades
// in the cheap storage engine. End-of-window archival moves rows across
// engines in one ACID transaction, while analytics read *both* engines
// under a single consistent snapshot.
//
// Build & run:   ./build/examples/trading

#include <cstdio>
#include <string>

#include "common/random.h"
#include "core/skeena.h"

namespace {

using namespace skeena;

std::string EncodeTrade(uint64_t id, int64_t amount) {
  std::string v = "trade-" + std::to_string(id) + ":" + std::to_string(amount);
  return v;
}

int64_t TradeAmount(const std::string& v) {
  return std::stoll(v.substr(v.find(':') + 1));
}

}  // namespace

int main() {
  Database db{DatabaseOptions{}};
  TableHandle live = *db.CreateTable("live_trades", EngineKind::kMem);
  TableHandle history = *db.CreateTable("trade_history", EngineKind::kStor);

  Rng rng(7);
  uint64_t next_trade = 1;
  int64_t booked_total = 0;

  // Fast path: bursts of trades land in the memory engine only.
  for (int burst = 0; burst < 5; ++burst) {
    for (int i = 0; i < 200; ++i) {
      auto txn = db.Begin();
      int64_t amount = static_cast<int64_t>(rng.UniformRange(1, 1000));
      txn->Put(live, MakeKey(next_trade), EncodeTrade(next_trade, amount));
      if (txn->Commit().ok()) {
        booked_total += amount;
        next_trade++;
      }
    }

    // Archival: move trades older than the window into the storage engine.
    // Delete-from-mem + insert-into-stor must be atomic — a crash or
    // concurrent reader must never see a trade duplicated or lost.
    uint64_t cutoff = next_trade > 150 ? next_trade - 150 : 0;
    auto archive = db.Begin();
    std::vector<std::pair<Key, std::string>> to_move;
    archive->Scan(live, kMinKey, 0,
                  [&](const Key& key, const std::string& value) {
                    if (KeyPrefixU64(key) >= cutoff) return false;
                    to_move.push_back({key, value});
                    return true;
                  });
    bool ok = true;
    for (const auto& [key, value] : to_move) {
      ok = ok && archive->Put(history, key, value).ok() &&
           archive->Delete(live, key).ok();
    }
    Status s = ok ? archive->Commit() : Status::Aborted();
    std::printf("burst %d: archived %zu trades (%s)\n", burst,
                to_move.size(), s.ToString().c_str());
  }

  // Analytics: one consistent snapshot across recent + historical trades.
  auto report = db.Begin(IsolationLevel::kSnapshot);
  int64_t live_total = 0, hist_total = 0;
  uint64_t live_count = 0, hist_count = 0;
  report->Scan(live, kMinKey, 0,
               [&](const Key&, const std::string& v) {
                 live_total += TradeAmount(v);
                 live_count++;
                 return true;
               });
  report->Scan(history, kMinKey, 0,
               [&](const Key&, const std::string& v) {
                 hist_total += TradeAmount(v);
                 hist_count++;
                 return true;
               });
  std::printf("live:      %llu trades, total %lld\n",
              static_cast<unsigned long long>(live_count),
              static_cast<long long>(live_total));
  std::printf("history:   %llu trades, total %lld\n",
              static_cast<unsigned long long>(hist_count),
              static_cast<long long>(hist_total));
  std::printf("combined:  %lld (booked %lld) -> %s\n",
              static_cast<long long>(live_total + hist_total),
              static_cast<long long>(booked_total),
              live_total + hist_total == booked_total
                  ? "consistent snapshot"
                  : "INCONSISTENT!");
  return live_total + hist_total == booked_total ? 0 : 1;
}
