// Quickstart: create a two-engine database, declare each table's home
// engine, and run single- and cross-engine transactions through the same
// API — no up-front declaration of which transactions are cross-engine
// (paper Section 3, "Transparent Adoption").
//
// Build & run:   ./build/examples/quickstart

#include <cstdio>

#include "core/skeena.h"

int main() {
  using namespace skeena;

  // A database holds one memory-optimized engine (ERMIA-like) and one
  // storage-centric engine (InnoDB-like); Skeena coordinates transactions
  // that span both.
  DatabaseOptions options;
  Database db(options);

  // The application only declares each table's home engine in the schema.
  TableHandle orders = *db.CreateTable("orders", EngineKind::kMem);
  TableHandle products = *db.CreateTable("products", EngineKind::kStor);

  // --- A single-engine transaction (never touches the coordinator).
  {
    auto txn = db.Begin();
    txn->Put(orders, MakeKey(1001), "order: 3x widget");
    Status s = txn->Commit();
    std::printf("single-engine commit: %s\n", s.ToString().c_str());
  }

  // --- A cross-engine transaction: same API, routed by table homes.
  {
    auto txn = db.Begin(IsolationLevel::kSnapshot);
    txn->Put(products, MakeKey(77), "widget, stock=42");
    txn->Put(orders, MakeKey(1002), "order: 1x widget");
    std::printf("transaction is cross-engine: %s\n",
                txn->is_cross_engine() ? "yes" : "no");
    Status s = txn->Commit();  // Skeena: pre-commit both, commit check,
                               // post-commit both, pipelined durability
    std::printf("cross-engine commit:  %s\n", s.ToString().c_str());
  }

  // --- Reads see one consistent snapshot across both engines.
  {
    auto txn = db.Begin();
    std::string order, product;
    txn->Get(orders, MakeKey(1002), &order);
    txn->Get(products, MakeKey(77), &product);
    std::printf("read back: '%s' / '%s'\n", order.c_str(), product.c_str());
  }

  // --- Range scans work per table.
  {
    auto txn = db.Begin();
    std::printf("orders on file:\n");
    txn->Scan(orders, kMinKey, 0,
              [](const Key& key, const std::string& value) {
                std::printf("  #%llu: %s\n",
                            static_cast<unsigned long long>(KeyPrefixU64(key)),
                            value.c_str());
                return true;
              });
  }

  auto stats = db.stats();
  std::printf("CSR: %llu accesses, %llu mappings\n",
              static_cast<unsigned long long>(stats.csr.accesses),
              static_cast<unsigned long long>(stats.csr.mappings));
  return 0;
}
