// Network quickstart: serve a two-engine database over the SKNA wire
// protocol (docs/PROTOCOL.md) and talk to it through the C++ client —
// the same cross-engine transactions as examples/quickstart, but over a
// socket: handshake, table resolution, a batched EXEC frame, and a
// pipelined transaction kept in flight without waiting on round trips.
//
// Build & run:   ./build/examples/net_quickstart

#include <cstdio>

#include "core/skeena.h"
#include "server/client.h"
#include "server/server.h"

int main() {
  using namespace skeena;
  using server::Client;
  using server::Response;
  using server::Server;
  using server::ServerOptions;
  using server::Stmt;
  using server::StmtResult;

  // --- Server side: a Database fronted by the epoll event loop. Port 0
  // picks an ephemeral port; a real deployment would pin one.
  DatabaseOptions options;
  Database db(options);
  db.CreateTable("orders", EngineKind::kMem);
  db.CreateTable("products", EngineKind::kStor);

  ServerOptions sopts;
  sopts.port = 0;
  Server srv(&db, sopts);
  if (Status s = srv.Start(); !s.ok()) {
    std::printf("server start failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("serving on 127.0.0.1:%u\n", srv.port());

  // --- Client side: connect (the HELLO handshake runs inside Connect)
  // and resolve table names to this connection's table tokens.
  Client c;
  if (Status s = c.Connect("127.0.0.1", srv.port()); !s.ok()) {
    std::printf("connect failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("handshake ok, protocol v%u\n", c.negotiated_version());
  uint32_t orders = *c.OpenTable("orders");
  uint32_t products = *c.OpenTable("products");

  // --- A cross-engine transaction in one batched EXEC frame: both PUTs
  // travel in a single request, the server routes them by table home.
  c.Begin();
  auto results = c.Exec({
      Stmt::Put(products, MakeKey(77), "widget, stock=42"),
      Stmt::Put(orders, MakeKey(1002), "order: 1x widget"),
  });
  std::printf("batched exec: %zu results\n", results->size());
  std::printf("cross-engine commit: %s\n", c.Commit().ToString().c_str());

  // --- Pipelining: a whole transaction sent without waiting for any
  // response; the five replies come back strictly in request order.
  c.SendBegin();
  c.SendExec({Stmt::Get(orders, MakeKey(1002)),
              Stmt::Get(products, MakeKey(77))});
  c.SendCommit();
  for (int i = 0; i < 3; ++i) {
    Response rsp;
    if (Status s = c.RecvResponse(&rsp); !s.ok()) {
      std::printf("recv failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("pipelined response %d/3: opcode 0x%02x\n", i + 1,
                static_cast<unsigned>(rsp.op));
  }

  c.Close();
  srv.Stop();
  auto stats = srv.stats();
  std::printf("served %llu frames over %llu connection(s), 0 orphans: %s\n",
              static_cast<unsigned long long>(stats.frames_in),
              static_cast<unsigned long long>(stats.connections_accepted),
              db.active_transactions() == 0 ? "clean shutdown" : "LEAK");
  return db.active_transactions() == 0 ? 0 : 1;
}
