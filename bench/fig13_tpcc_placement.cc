// Reproduces paper Figure 13: TPC-C throughput as tables are cumulatively
// moved from InnoDB to ERMIA (bottom-up: Customer first, Stock last).
//
// Expected shape (Section 6.9): throughput changes little until NEW_ORDER
// moves to the memory engine — Delivery's range scans + deletes over
// NEW_ORDER hold record locks in InnoDB — after which the full mix jumps
// by roughly an order of magnitude; 100% ERMIA is the ceiling.

#include "bench/common/bench_harness.h"

namespace skeena::bench {
namespace {

void Run() {
  BenchScale scale = BenchScale::FromEnv();
  auto matrix = std::make_shared<ResultMatrix>(
      "Figure 13: TPC-C TPS, tables cumulatively placed in ERMIA",
      "Tables in ERMIA");

  const auto& order = Tpcc::PlacementOrder();
  // Row labels bottom-up like the paper; computed top-down here so the
  // printed matrix reads the same way.
  std::vector<std::pair<std::string, size_t>> rows;  // label, #mem tables
  rows.push_back({"100% InnoDB", 0});
  for (size_t i = 0; i < order.size(); ++i) {
    std::string label = "+" + order[i];
    if (i + 1 == order.size()) label += " (100% ERMIA)";
    rows.push_back({label, i + 1});
  }
  std::reverse(rows.begin(), rows.end());

  for (const auto& [label, n_mem] : rows) {
    // One populated database per placement, shared across connection counts.
    auto tpcc = std::make_shared<std::shared_ptr<Tpcc>>();
    for (int conns : scale.connections) {
      RegisterCell("Fig13/" + label + "/conns:" + std::to_string(conns),
                   [=, n_mem = n_mem, label = label] {
                     if (!*tpcc) {
                       TpccConfig cfg =
                           ScaledTpccConfig(TpccConfig{}, scale);
                       cfg.data_latency = DeviceLatency::TmpfsStack();
                       for (size_t i = 0; i < n_mem; ++i) {
                         cfg.mem_tables.insert(order[i]);
                       }
                       *tpcc = std::make_shared<Tpcc>(cfg);
                     }
                     Tpcc* t = tpcc->get();
                     RunResult r = RunWorkload(
                         conns, scale.duration_ms,
                         [t](int tid, Rng& rng, uint64_t* q) {
                           return t->RunMix(tid, rng, q);
                         });
                     matrix->Set(label, std::to_string(conns), r.Tps());
                     return r;
                   });
    }
  }

  ::benchmark::RunSpecifiedBenchmarks();
  matrix->Print();
}

}  // namespace
}  // namespace skeena::bench

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  skeena::bench::Run();
  return 0;
}
