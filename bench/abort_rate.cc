// Reproduces the Section 6.9 abort-rate study: memory-resident TPC-C with
// per-connection home warehouses (low contention, so Skeena's snapshot
// selection and commit check dominate the abort budget), comparing the
// single-engine baselines against the recommended cross-engine schemes —
// plus the read-write microbenchmark where the paper reports up to ~5%
// additional Skeena aborts.
//
// Expected shape: baselines ~sub-1%; cross-engine schemes add only a small
// delta (paper: +0.3% TPC-C); the micro cross-engine mix shows a larger
// but bounded Skeena-attributed share.

#include "bench/common/bench_harness.h"

namespace skeena::bench {
namespace {

void Run() {
  BenchScale scale = BenchScale::FromEnv();
  int conns = scale.connections.back();
  const auto& order = Tpcc::PlacementOrder();

  auto matrix = std::make_shared<ResultMatrix>(
      "Section 6.9: TPC-C abort rates (%), memory-resident, " +
          std::to_string(conns) + " connections",
      "Scheme");

  struct Scheme {
    std::string label;
    bool skeena_on;
    std::set<std::string> mem_tables;
  };
  std::vector<Scheme> schemes;
  schemes.push_back({"InnoDB (baseline)", false, {}});
  {
    Scheme ermia{"ERMIA (baseline)", false, {}};
    for (const auto& t : order) ermia.mem_tables.insert(t);
    schemes.push_back(ermia);
  }
  schemes.push_back({"New-Order-Opt", true, {"customer", "item"}});
  schemes.push_back({"Payment-Opt", true, {"customer"}});
  {
    Scheme archive{"Archive", true, {}};
    for (const auto& t : order) {
      if (t != "history") archive.mem_tables.insert(t);
    }
    schemes.push_back(archive);
  }

  for (const auto& scheme : schemes) {
    RegisterCell("AbortRate/TPCC/" + scheme.label, [=] {
      TpccConfig cfg = ScaledTpccConfig(TpccConfig{}, scale);
      cfg.skeena_on = scheme.skeena_on;
      cfg.mem_tables = scheme.mem_tables;
      cfg.fixed_home_warehouse = true;  // memory-resident low-contention
      cfg.pool_fraction = 2.0;
      cfg.warehouses = std::max(cfg.warehouses, std::min(conns, 16));
      Tpcc tpcc(cfg);
      RunResult r = RunWorkload(conns, scale.duration_ms,
                                [&tpcc](int tid, Rng& rng, uint64_t* q) {
                                  return tpcc.RunMix(tid, rng, q);
                                });
      matrix->Set(scheme.label, "total abort %", r.AbortRate() * 100.0);
      matrix->Set(scheme.label, "skeena abort %",
                  r.SkeenaAbortRate() * 100.0);
      matrix->Set(scheme.label, "TPS", r.Tps());
      return r;
    });
  }

  // Read-write microbenchmark companion (the "up to ~5%" remark).
  auto micro_matrix = std::make_shared<ResultMatrix>(
      "Section 6.9 companion: read-write micro abort rates (%)", "Scheme");
  MicroCache cache;
  struct MicroRow {
    std::string label;
    bool skeena_on;
    int stor_pct;
  };
  std::vector<MicroRow> micro_rows = {{"ERMIA", false, 0},
                                      {"50% InnoDB", true, 50},
                                      {"InnoDB", false, 100}};
  for (const auto& row : micro_rows) {
    RegisterCell("AbortRate/Micro/" + row.label, [=, &cache] {
      MicroConfig cfg = ScaledMicroConfig(MicroConfig{}, scale);
      cfg.read_pct = 80;
      cfg.stor_pct = row.stor_pct;
      cfg.pool_fraction = 2.0;
      MicroWorkload* wl = cache.Get(cfg, row.skeena_on);
      RunResult r = RunWorkload(conns, scale.duration_ms,
                                [wl](int t, Rng& rng, uint64_t* q) {
                                  return wl->RunOneTxn(t, rng, q);
                                });
      micro_matrix->Set(row.label, "total abort %", r.AbortRate() * 100.0);
      micro_matrix->Set(row.label, "skeena abort %",
                        r.SkeenaAbortRate() * 100.0);
      return r;
    });
  }

  ::benchmark::RunSpecifiedBenchmarks();
  matrix->Print(2);
  micro_matrix->Print(2);
}

}  // namespace
}  // namespace skeena::bench

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  skeena::bench::Run();
  return 0;
}
