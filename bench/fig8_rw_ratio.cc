// Reproduces paper Figure 8: storage-resident microbenchmark throughput
// under different read/write ratios (r:w = 8:2, 6:4, 2:8) for (a) ERMIA,
// (b) 50% InnoDB, (c) 100% InnoDB.
//
// Expected shape (Section 6.5): the memory engine barely notices the write
// ratio; InnoDB-dominated configurations drop substantially as writes grow
// (lock + undo + page write costs); 50% InnoDB keeps its advantage over
// 100% InnoDB at every ratio.

#include "bench/common/bench_harness.h"

namespace skeena::bench {
namespace {

void Run() {
  BenchScale scale = BenchScale::FromEnv();
  MicroCache cache;
  struct Panel {
    std::string label;
    bool skeena_on;
    int stor_pct;
  };
  std::vector<Panel> panels = {{"(a) ERMIA", false, 0},
                               {"(b) 50% InnoDB", true, 50},
                               {"(c) 100% InnoDB", false, 100}};
  struct Ratio {
    std::string label;
    int read_pct;
  };
  std::vector<Ratio> ratios = {
      {"r:w=8:2", 80}, {"r:w=6:4", 60}, {"r:w=2:8", 20}};

  std::vector<std::shared_ptr<ResultMatrix>> matrices;
  for (const auto& panel : panels) {
    auto matrix = std::make_shared<ResultMatrix>(
        "Figure 8" + panel.label + ": storage-resident, TPS vs connections",
        "Ratio");
    matrices.push_back(matrix);
    for (const auto& ratio : ratios) {
      for (int conns : scale.connections) {
        RegisterCell("Fig8/" + panel.label + "/" + ratio.label + "/conns:" +
                         std::to_string(conns),
                     [=, &cache] {
                       MicroConfig cfg =
                           ScaledMicroConfig(MicroConfig{}, scale);
                       cfg.read_pct = ratio.read_pct;
                       cfg.stor_pct = panel.stor_pct;
                       cfg.pool_fraction = 0.1;
                       MicroWorkload* wl = cache.Get(
                           cfg, panel.skeena_on,
                           DeviceLatency::TmpfsStack());
                       RunResult r = RunWorkload(
                           conns, scale.duration_ms,
                           [wl](int t, Rng& rng, uint64_t* q) {
                             return wl->RunOneTxn(t, rng, q);
                           });
                       matrix->Set(ratio.label, std::to_string(conns),
                                   r.Tps());
                       return r;
                     });
      }
    }
  }

  ::benchmark::RunSpecifiedBenchmarks();
  for (const auto& m : matrices) m->Print();
}

}  // namespace
}  // namespace skeena::bench

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  skeena::bench::Run();
  return 0;
}
