// Reproduces paper Table 3: throughput of single-engine microbenchmarks and
// TPC-C with Skeena turned on (-S suffix) and off, for the memory engine
// (ERMIA), the memory-resident storage engine (InnoDB-M) and the
// storage-resident storage engine (InnoDB).
//
// Expected shape: the -S variants track their baselines closely (Skeena's
// overhead for single-engine transactions is negligible; ERMIA-S == ERMIA
// because anchor-engine transactions never touch the CSR), and
// ERMIA >> InnoDB-M >> InnoDB as writes increase.

#include "bench/common/bench_harness.h"

namespace skeena::bench {
namespace {

void Run() {
  BenchScale scale = BenchScale::FromEnv();
  int conns = scale.connections.back();
  MicroCache cache;
  auto matrix = std::make_shared<ResultMatrix>(
      "Table 3: single-engine throughput (TPS), " + std::to_string(conns) +
          " connections",
      "Scheme");

  struct Variant {
    std::string label;
    bool skeena_on;
    int stor_pct;
    double pool_fraction;  // >1: memory-resident
  };
  std::vector<Variant> variants = {
      {"ERMIA", false, 0, 2.0},      {"ERMIA-S", true, 0, 2.0},
      {"InnoDB-M", false, 100, 2.0}, {"InnoDB-MS", true, 100, 2.0},
      {"InnoDB", false, 100, 0.1},   {"InnoDB-S", true, 100, 0.1},
  };
  struct Workload {
    std::string label;
    int read_pct;
  };
  std::vector<Workload> workloads = {
      {"Read-only", 100}, {"Read-write", 80}, {"Write-only", 0}};

  for (const auto& v : variants) {
    for (const auto& w : workloads) {
      RegisterCell("Table3/" + v.label + "/" + w.label, [=, &cache] {
        MicroConfig cfg = ScaledMicroConfig(MicroConfig{}, scale);
        cfg.read_pct = w.read_pct;
        cfg.stor_pct = v.stor_pct;
        cfg.pool_fraction = v.pool_fraction;
        // Storage-resident variants pay the storage-stack page cost.
        DeviceLatency latency = v.pool_fraction < 1.0
                                    ? DeviceLatency::TmpfsStack()
                                    : DeviceLatency::Tmpfs();
        MicroWorkload* wl = cache.Get(cfg, v.skeena_on, latency);
        RunResult r = RunWorkload(
            conns, scale.duration_ms,
            [wl](int t, Rng& rng, uint64_t* q) {
              return wl->RunOneTxn(t, rng, q);
            });
        matrix->Set(v.label, w.label, r.Tps());
        return r;
      });
    }
    // TPC-C column: all tables in one engine per the variant.
    RegisterCell("Table3/" + v.label + "/TPC-C", [=] {
      TpccConfig cfg = ScaledTpccConfig(TpccConfig{}, scale);
      cfg.skeena_on = v.skeena_on;
      cfg.pool_fraction = v.pool_fraction;
      if (v.pool_fraction < 1.0) {
        cfg.data_latency = DeviceLatency::TmpfsStack();
      }
      if (v.stor_pct == 0) {
        for (const auto& t : Tpcc::PlacementOrder()) cfg.mem_tables.insert(t);
      }
      Tpcc tpcc(cfg);
      RunResult r = RunWorkload(
          conns, scale.duration_ms,
          [&tpcc](int t, Rng& rng, uint64_t* q) {
            return tpcc.RunMix(t, rng, q);
          });
      matrix->Set(v.label, "TPC-C", r.Tps());
      return r;
    });
  }

  ::benchmark::RunSpecifiedBenchmarks();
  matrix->Print();
}

}  // namespace
}  // namespace skeena::bench

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  skeena::bench::Run();
  return 0;
}
