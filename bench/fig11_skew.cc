// Reproduces paper Figure 11: storage-resident read-write (80/20)
// microbenchmark under uniform and Zipfian (0.7 / 0.99) access skew, at a
// single connection and at saturation, for ERMIA / 50% InnoDB /
// 100% InnoDB.
//
// Expected shape (Section 6.6): skew has little visible effect — the
// memory engine's record accesses are a small share of transaction cost,
// and once InnoDB is involved the storage stack dominates.

#include "bench/common/bench_harness.h"

namespace skeena::bench {
namespace {

void Run() {
  BenchScale scale = BenchScale::FromEnv();
  MicroCache cache;
  std::vector<int> conn_set = {1, scale.connections.back()};
  struct Scheme {
    std::string label;
    bool skeena_on;
    int stor_pct;
  };
  std::vector<Scheme> schemes = {
      {"ERMIA", false, 0}, {"50% InnoDB", true, 50},
      {"100% InnoDB", false, 100}};
  struct Skew {
    std::string label;
    double theta;
  };
  std::vector<Skew> skews = {
      {"Uniform", 0}, {"Zipfian 0.7", 0.7}, {"Zipfian 0.99", 0.99}};

  std::vector<std::shared_ptr<ResultMatrix>> matrices;
  for (int conns : conn_set) {
    auto matrix = std::make_shared<ResultMatrix>(
        "Figure 11: skewed accesses, " + std::to_string(conns) +
            " connection(s), storage-resident r:w=8:2 (TPS)",
        "Scheme");
    matrices.push_back(matrix);
    for (const auto& scheme : schemes) {
      for (const auto& skew : skews) {
        RegisterCell("Fig11/conns:" + std::to_string(conns) + "/" +
                         scheme.label + "/" + skew.label,
                     [=, &cache] {
                       MicroConfig cfg =
                           ScaledMicroConfig(MicroConfig{}, scale);
                       cfg.read_pct = 80;
                       cfg.stor_pct = scheme.stor_pct;
                       cfg.zipf_theta = skew.theta;
                       cfg.pool_fraction = 0.1;
                       MicroWorkload* wl = cache.Get(
                           cfg, scheme.skeena_on,
                           DeviceLatency::TmpfsStack());
                       RunResult r = RunWorkload(
                           conns, scale.duration_ms,
                           [wl](int t, Rng& rng, uint64_t* q) {
                             return wl->RunOneTxn(t, rng, q);
                           });
                       matrix->Set(scheme.label, skew.label, r.Tps());
                       return r;
                     });
      }
    }
  }

  ::benchmark::RunSpecifiedBenchmarks();
  for (const auto& m : matrices) m->Print();
}

}  // namespace
}  // namespace skeena::bench

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  skeena::bench::Run();
  return 0;
}
