// Reproduces paper Figure 15: TPC-C full-mix and individual-transaction
// throughput by table placement at a fixed connection count (the paper's
// 50; here the largest configured connection count).
//
// Expected shape (Section 6.9): Payment and Order-Status jump once
// CUSTOMER is in ERMIA; Delivery jumps with NEW_ORDER; Stock-Level benefits
// most when STOCK moves; the full mix tracks Delivery's improvement.

#include "bench/common/bench_harness.h"

namespace skeena::bench {
namespace {

using TxnMethod = Status (Tpcc::*)(Rng&, uint16_t, uint64_t*);

void Run() {
  BenchScale scale = BenchScale::FromEnv();
  int conns = scale.connections.back();
  const auto& order = Tpcc::PlacementOrder();

  auto matrix = std::make_shared<ResultMatrix>(
      "Figure 15: TPC-C TPS by placement at " + std::to_string(conns) +
          " connections",
      "Tables in ERMIA");

  std::vector<std::pair<std::string, size_t>> rows;
  rows.push_back({"100% InnoDB", 0});
  for (size_t i = 0; i < order.size(); ++i) {
    std::string label = "+" + order[i];
    if (i + 1 == order.size()) label += " (100% ERMIA)";
    rows.push_back({label, i + 1});
  }
  std::reverse(rows.begin(), rows.end());

  struct TxnType {
    std::string label;
    TxnMethod method;
  };
  std::vector<TxnType> txns = {{"New-Order", &Tpcc::NewOrder},
                               {"Payment", &Tpcc::Payment},
                               {"Delivery", &Tpcc::Delivery},
                               {"Stock-Level", &Tpcc::StockLevel},
                               {"Order-Status", &Tpcc::OrderStatus}};

  for (const auto& [label, n_mem] : rows) {
    auto inst = std::make_shared<std::shared_ptr<Tpcc>>();
    auto make = [=, n_mem = n_mem] {
      if (!*inst) {
        TpccConfig cfg = ScaledTpccConfig(TpccConfig{}, scale);
                cfg.data_latency = DeviceLatency::TmpfsStack();
        for (size_t i = 0; i < n_mem; ++i) cfg.mem_tables.insert(order[i]);
        *inst = std::make_shared<Tpcc>(cfg);
      }
      return inst->get();
    };
    RegisterCell("Fig15/" + label + "/Full-Mix", [=, label = label] {
      Tpcc* t = make();
      RunResult r = RunWorkload(conns, scale.duration_ms,
                                [t](int tid, Rng& rng, uint64_t* q) {
                                  return t->RunMix(tid, rng, q);
                                });
      matrix->Set(label, "Full-Mix", r.Tps());
      return r;
    });
    for (const auto& txn : txns) {
      RegisterCell(
          "Fig15/" + label + "/" + txn.label,
          [=, label = label, method = txn.method, tlabel = txn.label] {
            Tpcc* t = make();
            RunResult r = RunWorkload(
                conns, scale.duration_ms,
                [t, method](int tid, Rng& rng, uint64_t* q) {
                  uint16_t w = t->HomeWarehouse(tid, rng);
                  return (t->*method)(rng, w, q);
                });
            matrix->Set(label, tlabel, r.Tps());
            return r;
          });
    }
  }

  ::benchmark::RunSpecifiedBenchmarks();
  matrix->Print();
}

}  // namespace
}  // namespace skeena::bench

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  skeena::bench::Run();
  return 0;
}
