// Open-loop tail latency of the network front-end (docs/PROTOCOL.md).
//
// A closed-loop driver (one outstanding txn per connection, like
// fig12_latency) hides queueing delay: a slow response simply delays the
// next request, so the tail never sees the backlog it caused. This bench
// is open-loop: every connection FIRES transactions on a fixed schedule —
// BEGIN + EXEC + COMMIT pipelined in one write — whether or not earlier
// responses have arrived, and commit latency is measured from the BEGIN
// send to the COMMIT_OK receive. That makes p99/p999 honest under
// coordinated omission.
//
// Rows are connection counts (SKEENA_BENCH_SERVER_CONNS, default "8,64");
// columns are the per-connection offered rate in txn/s
// (SKEENA_BENCH_SERVER_RATES, default "100,400,1600"). Each cell drives a
// fresh in-process Server over localhost for SKEENA_BENCH_MS. Matrices:
// p50/p99/p999 commit latency (ms) and achieved throughput (txn/s);
// everything lands in BENCH_server_tail_latency.json via the emitter.
//
// Each transaction is cross-engine (one GET+PUT on the memory table, one
// GET+PUT on the storage table) so the measured path includes Skeena's
// cross-engine commit, not just the wire.

#include <poll.h>

#include <chrono>
#include <deque>
#include <memory>
#include <sstream>
#include <thread>

#include "bench/common/bench_harness.h"
#include "common/env.h"
#include "server/client.h"
#include "server/server.h"

namespace skeena::bench {
namespace {

using server::Client;
using server::Op;
using server::Response;
using server::Server;
using server::ServerOptions;
using server::Stmt;

using Clock = std::chrono::steady_clock;

std::vector<int> ParseIntList(const std::string& csv) {
  std::vector<int> out;
  std::istringstream in(csv);
  std::string tok;
  while (std::getline(in, tok, ',')) {
    if (!tok.empty()) out.push_back(std::stoi(tok));
  }
  return out;
}

struct ConnStats {
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t sent = 0;
  Histogram latency;  // BEGIN send -> COMMIT_OK receive, ns
};

/// One connection's open-loop schedule: txn i is due at start + i/rate.
/// Sends never wait for responses; responses are drained between sends
/// (strictly ordered by the protocol, so a FIFO of in-flight commit
/// request_ids pairs every COMMIT response with its BEGIN send time).
void DriveConn(const std::string& host, uint16_t port, int rate_per_sec,
               Clock::time_point start, Clock::time_point deadline,
               uint64_t seed, ConnStats* stats) {
  Client client;
  if (!client.Connect(host, port).ok()) return;
  uint32_t mem_tok, stor_tok;
  {
    auto m = client.OpenTable("mem_t");
    auto s = client.OpenTable("stor_t");
    if (!m.ok() || !s.ok()) return;
    mem_tok = *m;
    stor_tok = *s;
  }

  Rng rng(seed);
  const std::string value(64, 'v');
  constexpr uint64_t kKeySpace = 1 << 14;
  const auto period =
      std::chrono::nanoseconds(uint64_t{1000000000} / rate_per_sec);

  struct InFlight {
    uint64_t commit_rid;
    Clock::time_point begin_sent;
  };
  std::deque<InFlight> inflight;

  // Drains whatever responses have arrived; with `block`, waits for the
  // head-of-line response (used after the send schedule ends).
  auto drain = [&](bool block) {
    while (!inflight.empty()) {
      if (!block) {
        pollfd pfd{client.fd(), POLLIN, 0};
        if (::poll(&pfd, 1, 0) <= 0) return true;
      }
      Response rsp;
      if (!client.RecvResponse(&rsp).ok()) return false;
      if (rsp.request_id != inflight.front().commit_rid) continue;
      auto now = Clock::now();
      stats->latency.Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              now - inflight.front().begin_sent)
              .count()));
      if (rsp.op == Op::kCommitOk) {
        ++stats->commits;
      } else {
        ++stats->aborts;
      }
      inflight.pop_front();
    }
    return true;
  };

  uint64_t issued = 0;
  for (;;) {
    auto due = start + period * issued;
    if (due >= deadline) break;
    // Sleep in poll() so response frames are drained while we wait out
    // the schedule (they would otherwise stack up in the kernel buffer
    // and bias the receive timestamps).
    for (;;) {
      auto now = Clock::now();
      if (now >= due) break;
      if (!drain(false)) return;
      pollfd pfd{client.fd(), POLLIN, 0};
      int wait_ms = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(due - now)
              .count());
      ::poll(&pfd, 1, std::max(wait_ms, 1));
    }

    auto begin_sent = Clock::now();
    client.SendBegin();
    uint64_t k1 = rng.Uniform(kKeySpace), k2 = rng.Uniform(kKeySpace);
    client.SendExec({Stmt::Get(mem_tok, MakeKey(k1)),
                     Stmt::Put(mem_tok, MakeKey(k1), value),
                     Stmt::Get(stor_tok, MakeKey(k2)),
                     Stmt::Put(stor_tok, MakeKey(k2), value)});
    uint64_t commit_rid = client.SendCommit();
    inflight.push_back({commit_rid, begin_sent});
    ++issued;
    ++stats->sent;
    if (!drain(false)) return;
  }
  drain(true);  // collect the tail
  client.Close();
}

RunResult RunCell(int conns, int rate_per_sec, uint64_t duration_ms) {
  DatabaseOptions opts;
  Database db(opts);
  if (!db.CreateTable("mem_t", EngineKind::kMem, 1 << 15).ok()) return {};
  if (!db.CreateTable("stor_t", EngineKind::kStor).ok()) return {};

  ServerOptions sopts;
  int hw = static_cast<int>(std::thread::hardware_concurrency());
  sopts.workers = std::max(2, hw / 2);
  Server server(&db, sopts);
  if (!server.Start().ok()) return {};

  std::vector<ConnStats> stats(static_cast<size_t>(conns));
  auto start = Clock::now() + std::chrono::milliseconds(20);
  auto deadline = start + std::chrono::milliseconds(duration_ms);
  std::vector<std::thread> drivers;
  drivers.reserve(static_cast<size_t>(conns));
  for (int c = 0; c < conns; ++c) {
    drivers.emplace_back(DriveConn, "127.0.0.1", server.port(), rate_per_sec,
                         start, deadline, static_cast<uint64_t>(c) * 31 + 7,
                         &stats[static_cast<size_t>(c)]);
  }
  for (auto& t : drivers) t.join();
  server.Stop();

  RunResult r;
  r.seconds = static_cast<double>(duration_ms) / 1e3;
  for (const ConnStats& s : stats) {
    r.commits += s.commits;
    r.queries += s.sent * 4;
    r.skeena_aborts += s.aborts;
    r.latency.Merge(s.latency);
  }
  return r;
}

void Run() {
  BenchScale scale = BenchScale::FromEnv();
  std::vector<int> conn_rows = ParseIntList(
      GetEnvString("SKEENA_BENCH_SERVER_CONNS", "8,64"));
  std::vector<int> rate_cols = ParseIntList(
      GetEnvString("SKEENA_BENCH_SERVER_RATES", "100,400,1600"));

  auto p50 = std::make_shared<ResultMatrix>(
      "Server open-loop: p50 commit latency (ms)", "Connections");
  auto p99 = std::make_shared<ResultMatrix>(
      "Server open-loop: p99 commit latency (ms)", "Connections");
  auto p999 = std::make_shared<ResultMatrix>(
      "Server open-loop: p999 commit latency (ms)", "Connections");
  auto tps = std::make_shared<ResultMatrix>(
      "Server open-loop: achieved throughput (txn/s)", "Connections");

  for (int conns : conn_rows) {
    for (int rate : rate_cols) {
      std::string row = std::to_string(conns);
      std::string col = std::to_string(rate) + "/s";
      RegisterCell(
          "ServerTail/conns:" + row + "/rate:" + std::to_string(rate),
          [=] {
            RunResult r = RunCell(conns, rate, scale.duration_ms);
            p50->Set(row, col,
                     static_cast<double>(r.latency.Percentile(50)) / 1e6);
            p99->Set(row, col,
                     static_cast<double>(r.latency.Percentile(99)) / 1e6);
            p999->Set(row, col,
                      static_cast<double>(r.latency.Percentile(99.9)) / 1e6);
            tps->Set(row, col, r.Tps());
            return r;
          });
    }
  }
  ::benchmark::RunSpecifiedBenchmarks();
  p50->Print(3);
  p99->Print(3);
  p999->Print(3);
  tps->Print(1);
}

}  // namespace
}  // namespace skeena::bench

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  skeena::bench::Run();
  return 0;
}
