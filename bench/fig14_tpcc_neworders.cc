// Reproduces paper Figure 14: throughput of individual TPC-C transactions
// when only NEW_ORDER is placed in ERMIA (+New-Orders), compared to
// 100% InnoDB and the cumulative ++Orders / ++New-Orders placements.
//
// Expected shape (Section 6.9): Delivery accelerates by an order of
// magnitude as soon as NEW_ORDER leaves InnoDB (its scans+deletes stop
// holding InnoDB record locks); New-Order, Payment, Stock-Level and
// Order-Status barely react to that one table.

#include "bench/common/bench_harness.h"

namespace skeena::bench {
namespace {

using TxnMethod = Status (Tpcc::*)(Rng&, uint16_t, uint64_t*);

void Run() {
  BenchScale scale = BenchScale::FromEnv();
  const auto& order = Tpcc::PlacementOrder();

  struct Variant {
    std::string label;
    std::set<std::string> mem_tables;
  };
  std::vector<Variant> variants;
  {
    Variant v;
    // ++New-Orders: cumulative through new_orders (paper row 3 of Fig 13).
    for (const auto& t : order) {
      v.mem_tables.insert(t);
      if (t == "new_orders") break;
    }
    v.label = "++New-Orders";
    variants.push_back(v);
  }
  {
    Variant v;
    for (const auto& t : order) {
      if (t == "new_orders") continue;
      v.mem_tables.insert(t);
      if (t == "orders") break;
    }
    v.label = "++Orders";
    variants.push_back(v);
  }
  variants.push_back({"+New-Orders", {"new_orders"}});
  variants.push_back({"100% InnoDB", {}});

  struct TxnType {
    std::string label;
    TxnMethod method;
  };
  std::vector<TxnType> txns = {{"(a) New-Order", &Tpcc::NewOrder},
                               {"(b) Payment", &Tpcc::Payment},
                               {"(c) Delivery", &Tpcc::Delivery},
                               {"(d) Stock-Level", &Tpcc::StockLevel},
                               {"(e) Order-Status", &Tpcc::OrderStatus}};

  std::vector<std::shared_ptr<ResultMatrix>> matrices;
  std::vector<std::shared_ptr<std::shared_ptr<Tpcc>>> instances;
  for (size_t i = 0; i < variants.size(); ++i) {
    instances.push_back(std::make_shared<std::shared_ptr<Tpcc>>());
  }

  for (const auto& txn : txns) {
    auto matrix = std::make_shared<ResultMatrix>(
        "Figure 14" + txn.label + ": TPS vs connections", "Tables in ERMIA");
    matrices.push_back(matrix);
    for (size_t vi = 0; vi < variants.size(); ++vi) {
      const Variant& variant = variants[vi];
      auto inst = instances[vi];
      for (int conns : scale.connections) {
        RegisterCell(
            "Fig14/" + txn.label + "/" + variant.label + "/conns:" +
                std::to_string(conns),
            [=, method = txn.method] {
              if (!*inst) {
                TpccConfig cfg = ScaledTpccConfig(TpccConfig{}, scale);
                cfg.data_latency = DeviceLatency::TmpfsStack();
                cfg.mem_tables = variant.mem_tables;
                *inst = std::make_shared<Tpcc>(cfg);
              }
              Tpcc* t = inst->get();
              RunResult r = RunWorkload(
                  conns, scale.duration_ms,
                  [t, method](int tid, Rng& rng, uint64_t* q) {
                    uint16_t w = t->HomeWarehouse(tid, rng);
                    return (t->*method)(rng, w, q);
                  });
              matrix->Set(variant.label, std::to_string(conns), r.Tps());
              return r;
            });
      }
    }
  }

  ::benchmark::RunSpecifiedBenchmarks();
  for (const auto& m : matrices) m->Print();
}

}  // namespace
}  // namespace skeena::bench

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  skeena::bench::Run();
  return 0;
}
