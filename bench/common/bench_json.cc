#include "bench/common/bench_json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "common/env.h"

extern char* program_invocation_short_name;  // glibc; the bench binary name

namespace skeena::bench {

struct JsonEmitter::Impl {
  std::mutex mu;
  std::vector<std::tuple<std::string, std::string, std::string, double>>
      points;
};

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

JsonEmitter::JsonEmitter() : impl_(new Impl) {}

JsonEmitter& JsonEmitter::Global() {
  static JsonEmitter* emitter = [] {
    auto* e = new JsonEmitter();
    std::atexit([] { Global().WriteFile(); });
    return e;
  }();
  return *emitter;
}

void JsonEmitter::Add(const std::string& matrix, const std::string& row,
                      const std::string& col, double value) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->points.emplace_back(matrix, row, col, value);
}

std::string JsonEmitter::WriteFile() {
  if (!GetEnvBool("SKEENA_BENCH_JSON", true)) return "";
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (impl_->points.empty()) return "";

  std::string name = program_invocation_short_name
                         ? program_invocation_short_name
                         : "bench";
  std::string dir = GetEnvString("SKEENA_BENCH_JSON_DIR", ".");
  std::string path = dir + "/BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_json: cannot write %s\n", path.c_str());
    return "";
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"points\": [\n",
               JsonEscape(name).c_str());
  for (size_t i = 0; i < impl_->points.size(); ++i) {
    const auto& [matrix, row, col, value] = impl_->points[i];
    // NaN/inf are not valid JSON numbers; degrade them to 0.
    double v = std::isfinite(value) ? value : 0.0;
    std::fprintf(f,
                 "    {\"matrix\": \"%s\", \"row\": \"%s\", \"col\": \"%s\", "
                 "\"value\": %.6g}%s\n",
                 JsonEscape(matrix).c_str(), JsonEscape(row).c_str(),
                 JsonEscape(col).c_str(), v,
                 i + 1 == impl_->points.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stdout, "bench_json: wrote %s (%zu points)\n", path.c_str(),
               impl_->points.size());
  impl_->points.clear();
  return path;
}

}  // namespace skeena::bench
