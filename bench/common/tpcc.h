#ifndef SKEENA_BENCH_COMMON_TPCC_H_
#define SKEENA_BENCH_COMMON_TPCC_H_

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench/common/workload.h"
#include "core/skeena.h"

namespace skeena::bench {

/// TPC-C (paper Section 6.2, after Percona's sysbench-tpcc): all nine
/// tables, the five transaction types with the standard mix, remote
/// warehouse/customer percentages, and per-table engine placement — the
/// instrument behind Figures 13-16 and the Section 6.9 abort-rate study.
struct TpccConfig {
  int warehouses = 4;
  int districts_per_wh = 10;
  // Scaled down from the spec's 3000/100000 for laptop-scale runs
  // (SKEENA_BENCH_FULL restores spec-like sizes); shapes are preserved
  // because the transaction logic and access skew are per the spec.
  int customers_per_district = 120;
  uint32_t items = 2000;

  /// Tables homed in the memory engine; everything else goes to stordb.
  /// Names: warehouse district customer history new_orders orders
  /// order_line item stock.
  std::set<std::string> mem_tables;

  /// true = each connection works a fixed home warehouse (the paper's
  /// memory-resident setup); false = random warehouse per transaction
  /// (storage-resident setup).
  bool fixed_home_warehouse = false;

  int remote_payment_pct = 15;
  int remote_neworder_pct = 1;
  IsolationLevel isolation = IsolationLevel::kSnapshot;
  bool skeena_on = true;

  /// stordb buffer pool as a fraction of its data pages.
  double pool_fraction = 0.25;
  DeviceLatency data_latency = DeviceLatency::Tmpfs();
};

/// Applies env/BenchScale overrides (SKEENA_TPCC_WAREHOUSES, ...).
TpccConfig ScaledTpccConfig(TpccConfig base, const BenchScale& scale);

class Tpcc {
 public:
  /// Table names in the paper's Figure 13 bottom-up placement order.
  static const std::vector<std::string>& PlacementOrder();

  explicit Tpcc(const TpccConfig& config);

  Database* db() { return db_.get(); }
  const TpccConfig& config() const { return config_; }

  /// Standard mix (45/43/4/4/4). `thread_id` selects the home warehouse
  /// when fixed_home_warehouse is set.
  Status RunMix(int thread_id, Rng& rng, uint64_t* queries);

  // Individual transactions (Figures 14-15 run these standalone).
  Status NewOrder(Rng& rng, uint16_t w, uint64_t* queries);
  Status Payment(Rng& rng, uint16_t w, uint64_t* queries);
  Status OrderStatus(Rng& rng, uint16_t w, uint64_t* queries);
  Status Delivery(Rng& rng, uint16_t w, uint64_t* queries);
  Status StockLevel(Rng& rng, uint16_t w, uint64_t* queries);

  uint16_t HomeWarehouse(int thread_id, Rng& rng) const;

  /// TPC-C consistency conditions (subset): W_YTD == sum of D_YTD;
  /// D_NEXT_O_ID - 1 == max(O_ID) == max(NO_O_ID); order-line counts match
  /// O_OL_CNT. Used by the integration tests.
  Status CheckConsistency();

 private:
  void Populate();
  void PopulateWarehouse(uint16_t w);

  TpccConfig config_;
  std::unique_ptr<Database> db_;

  TableHandle warehouse_, district_, customer_, customer_by_name_, history_,
      new_orders_, orders_, orders_by_customer_, order_line_, item_, stock_;
  std::atomic<uint64_t> history_seq_{1};
};

}  // namespace skeena::bench

#endif  // SKEENA_BENCH_COMMON_TPCC_H_
