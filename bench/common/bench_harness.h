#ifndef SKEENA_BENCH_COMMON_BENCH_HARNESS_H_
#define SKEENA_BENCH_COMMON_BENCH_HARNESS_H_

#include <benchmark/benchmark.h>

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "bench/common/micro.h"
#include "bench/common/tpcc.h"
#include "bench/common/workload.h"

namespace skeena::bench {

/// Registers one experiment cell as a google-benchmark. The cell runs once
/// (Iterations(1)); its throughput/latency land both in the benchmark
/// counters and in the paper-style ResultMatrix printed at exit.
inline void RegisterCell(const std::string& name,
                         std::function<RunResult()> fn) {
  ::benchmark::RegisterBenchmark(
      name.c_str(),
      [fn = std::move(fn)](::benchmark::State& state) {
        for (auto _ : state) {
          RunResult r = fn();
          state.counters["TPS"] = r.Tps();
          state.counters["QPS"] = r.Qps();
          state.counters["p95_ms"] =
              static_cast<double>(r.latency.Percentile(95)) / 1e6;
          state.counters["abort_pct"] = r.AbortRate() * 100.0;
        }
      })
      ->Iterations(1)
      ->Unit(::benchmark::kMillisecond);
}

/// Lazily-constructed, cached micro workloads keyed by configuration so
/// cells sharing a scheme reuse the populated database.
class MicroCache {
 public:
  MicroWorkload* Get(const MicroConfig& cfg, bool skeena_on,
                     DeviceLatency latency = DeviceLatency::Tmpfs()) {
    std::string key = Fingerprint(cfg, skeena_on, latency);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      it->second->SetAccessPattern(cfg);  // data identical, pattern may vary
      return it->second.get();
    }
    auto wl = std::make_unique<MicroWorkload>(cfg, skeena_on, latency);
    MicroWorkload* raw = wl.get();
    cache_[key] = std::move(wl);
    return raw;
  }

  void Clear() { cache_.clear(); }

 private:
  // Only data-shaping parameters participate: access-pattern fields
  // (ops/read%/split/skew/isolation) are re-targeted on a cached instance.
  static std::string Fingerprint(const MicroConfig& c, bool skeena_on,
                                 DeviceLatency l) {
    char buf[384];
    std::snprintf(buf, sizeof(buf),
                  "%d/%llu/%zu/%.3f/%d/%llu/%zu/%llu/%d/%zu/%d/%llu/%d/%d/"
                  "%llu/%llu/%d",
                  c.tables_per_engine,
                  static_cast<unsigned long long>(c.rows_per_table),
                  c.value_size, c.pool_fraction, skeena_on ? 1 : 0,
                  static_cast<unsigned long long>(l.read_ns),
                  c.csr.partition_capacity,
                  static_cast<unsigned long long>(c.csr.recycle_period),
                  static_cast<int>(c.pipeline.mode), c.pipeline.num_queues,
                  static_cast<int>(c.anchor),
                  static_cast<unsigned long long>(c.log_latency.sync_ns),
                  c.record_history ? 1 : 0, static_cast<int>(c.log_disk),
                  static_cast<unsigned long long>(c.log.flush_interval_us),
                  static_cast<unsigned long long>(c.log.max_flush_interval_us),
                  c.log.adaptive_flush ? 1 : 0);
    return buf;
  }

  std::map<std::string, std::unique_ptr<MicroWorkload>> cache_;
};

/// The scheme rows used by the microbenchmark figures. stor_pct encodes the
/// "X% InnoDB" access split; skeena_on=false are the raw-engine baselines.
struct MicroScheme {
  std::string label;
  bool skeena_on;
  int stor_pct;
};

inline std::vector<MicroScheme> MemoryResidentSchemes() {
  return {{"ERMIA", false, 0},        {"ERMIA-S", true, 0},
          {"30% InnoDB", true, 30},   {"50% InnoDB", true, 50},
          {"80% InnoDB", true, 80},   {"InnoDB-MS", true, 100},
          {"InnoDB-M", false, 100}};
}

inline std::vector<MicroScheme> StorageResidentSchemes() {
  return {{"ERMIA", false, 0},        {"ERMIA-S", true, 0},
          {"30% InnoDB", true, 30},   {"50% InnoDB", true, 50},
          {"80% InnoDB", true, 80},   {"InnoDB-S", true, 100},
          {"InnoDB", false, 100}};
}

}  // namespace skeena::bench

#endif  // SKEENA_BENCH_COMMON_BENCH_HARNESS_H_
