#include "bench/common/workload.h"

#include <atomic>
#include <barrier>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <thread>

#include "bench/common/bench_json.h"
#include "common/env.h"

namespace skeena::bench {

RunResult RunWorkload(int threads, uint64_t duration_ms, const TxnFn& fn) {
  struct ThreadStats {
    uint64_t commits = 0;
    uint64_t queries = 0;
    uint64_t engine_aborts = 0;
    uint64_t skeena_aborts = 0;
    Histogram latency;
  };
  std::vector<ThreadStats> stats(threads);
  std::barrier start_barrier(threads + 1);
  std::atomic<bool> stop{false};

  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) * 7919 + 13);
      ThreadStats& s = stats[t];
      start_barrier.arrive_and_wait();
      while (!stop.load(std::memory_order_acquire)) {
        auto begin = std::chrono::steady_clock::now();
        uint64_t queries = 0;
        Status st = fn(t, rng, &queries);
        auto end = std::chrono::steady_clock::now();
        s.queries += queries;
        if (st.ok()) {
          s.commits++;
          s.latency.Record(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(end -
                                                                   begin)
                  .count()));
        } else if (st.IsSkeenaAbort()) {
          s.skeena_aborts++;
        } else {
          s.engine_aborts++;
        }
      }
    });
  }

  start_barrier.arrive_and_wait();
  auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  auto t1 = std::chrono::steady_clock::now();

  RunResult result;
  result.seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
          .count();
  for (const ThreadStats& s : stats) {
    result.commits += s.commits;
    result.queries += s.queries;
    result.engine_aborts += s.engine_aborts;
    result.skeena_aborts += s.skeena_aborts;
    result.latency.Merge(s.latency);
  }
  return result;
}

BenchScale BenchScale::FromEnv() {
  BenchScale scale;
  scale.full = GetEnvBool("SKEENA_BENCH_FULL", false);
  scale.duration_ms = static_cast<uint64_t>(
      GetEnvInt("SKEENA_BENCH_MS", scale.full ? 5000 : 400));
  // Default connection ladder tracks the hardware (the paper saturates its
  // 80-hyperthread box at 80 connections; oversubscribing a small machine
  // inverts every curve into scheduler noise).
  int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw <= 0) hw = 4;
  std::string default_conns =
      "1," + std::to_string(hw) + "," + std::to_string(2 * hw);
  if (hw == 1) default_conns = "1,2";
  std::string conns = GetEnvString(
      "SKEENA_BENCH_CONNS", scale.full ? "1,40,80,160" : default_conns);
  std::istringstream in(conns);
  std::string tok;
  while (std::getline(in, tok, ',')) {
    if (!tok.empty()) scale.connections.push_back(std::stoi(tok));
  }
  if (scale.connections.empty()) scale.connections = {1, hw};
  return scale;
}

ResultMatrix::ResultMatrix(std::string title, std::string row_header)
    : title_(std::move(title)), row_header_(std::move(row_header)) {}

void ResultMatrix::SetColumns(const std::vector<std::string>& columns) {
  columns_ = columns;
}

void ResultMatrix::Set(const std::string& row, const std::string& column,
                       double value) {
  size_t col = 0;
  for (; col < columns_.size(); ++col) {
    if (columns_[col] == column) break;
  }
  if (col == columns_.size()) columns_.push_back(column);
  size_t r = 0;
  for (; r < row_order_.size(); ++r) {
    if (row_order_[r] == row) break;
  }
  if (r == row_order_.size()) {
    row_order_.push_back(row);
    values_.emplace_back();
  }
  if (values_[r].size() <= col) values_[r].resize(col + 1, 0);
  values_[r][col] = value;
  // Every matrix cell is also a perf-trajectory point (BENCH_<bin>.json).
  JsonEmitter::Global().Add(title_, row, column, value);
}

void ResultMatrix::Print(int digits) const {
  std::printf("\n=== %s ===\n", title_.c_str());
  std::printf("%-28s", row_header_.c_str());
  for (const auto& c : columns_) std::printf(" %12s", c.c_str());
  std::printf("\n");
  for (size_t r = 0; r < row_order_.size(); ++r) {
    std::printf("%-28s", row_order_[r].c_str());
    for (size_t c = 0; c < columns_.size(); ++c) {
      double v = c < values_[r].size() ? values_[r][c] : 0;
      std::printf(" %12.*f", digits, v);
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

}  // namespace skeena::bench
