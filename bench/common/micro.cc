#include "bench/common/micro.h"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <thread>

#include "common/env.h"
#include "log/segmented_device.h"
#include "stordb/page.h"

namespace skeena::bench {

MicroConfig ScaledMicroConfig(MicroConfig base, const BenchScale& scale) {
  if (scale.full) {
    base.tables_per_engine = 250;
    base.rows_per_table = base.pool_fraction >= 1.0 ? 25000 : 25000;
  }
  base.tables_per_engine = static_cast<int>(
      GetEnvInt("SKEENA_MICRO_TABLES", base.tables_per_engine));
  base.rows_per_table = static_cast<uint64_t>(
      GetEnvInt("SKEENA_MICRO_ROWS", static_cast<int64_t>(base.rows_per_table)));
  return base;
}

size_t MicroWorkload::StorPagesNeeded(const MicroConfig& config) {
  size_t slots = stordb::SlotsPerPage(config.value_size);
  size_t pages_per_table = (config.rows_per_table + slots - 1) / slots;
  return pages_per_table * static_cast<size_t>(config.tables_per_engine);
}

MicroWorkload::MicroWorkload(const MicroConfig& config, bool skeena_on,
                             DeviceLatency data_latency)
    : config_(config), zipf_(512) {
  DatabaseOptions opts;
  opts.enable_skeena = skeena_on;
  opts.default_isolation = config.isolation;
  opts.stor.data_latency = data_latency;
  opts.csr = config.csr;
  opts.pipeline = config.pipeline;
  opts.anchor = config.anchor;
  opts.log_latency = config.log_latency;
  opts.record_history = config.record_history;
  opts.mem.log = config.log;
  opts.stor.log = config.log;
  if (config.log_disk != MicroConfig::LogDisk::kNone) {
    // Only the engine logs go to disk: data_dir stays empty so tables and
    // catalog stay on MemDevices and the WAL write path is what's measured.
    static std::atomic<uint64_t> wal_seq{0};
    log_dir_ = (std::filesystem::temp_directory_path() /
                ("skeena_bench_wal_" +
                 std::to_string(wal_seq.fetch_add(1))))
                   .string();
    std::filesystem::remove_all(log_dir_);
    std::filesystem::create_directories(log_dir_);
    const std::string dir = log_dir_;
    const MicroConfig::LogDisk disk = config.log_disk;
    const DeviceLatency latency = config.log_latency;
    opts.log_device_factory =
        [dir, disk, latency](
            const std::string& name) -> std::unique_ptr<StorageDevice> {
      if (disk == MicroConfig::LogDisk::kFilePwrite) {
        auto dev = FileDevice::Open(dir + "/" + name, latency);
        if (dev.ok()) return std::move(dev.value());
        return std::make_unique<MemDevice>(latency);
      }
      SegmentedLogDevice::Options seg;
      seg.use_io_uring = disk == MicroConfig::LogDisk::kSegmentedUring;
      seg.latency = latency;
      auto dev = SegmentedLogDevice::Open(dir + "/" + name, seg);
      if (dev.ok()) return std::move(dev.value());
      return std::make_unique<MemDevice>(latency);
    };
  }
  size_t needed = StorPagesNeeded(config);
  size_t pool = static_cast<size_t>(static_cast<double>(needed) *
                                    config.pool_fraction);
  opts.stor.buffer_pool_pages = std::max<size_t>(pool, 64);
  db_ = std::make_unique<Database>(opts);

  value_template_.assign(config.value_size, 'v');

  for (int t = 0; t < config.tables_per_engine; ++t) {
    mem_tables_.push_back(
        *db_->CreateTable("mem_" + std::to_string(t), EngineKind::kMem,
                          config.value_size));
    stor_tables_.push_back(
        *db_->CreateTable("stor_" + std::to_string(t), EngineKind::kStor,
                          config.value_size));
  }

  // Parallel load, one engine table pair per task, batched commits.
  int loaders = std::min(8, config.tables_per_engine);
  std::vector<std::thread> threads;
  for (int l = 0; l < loaders; ++l) {
    threads.emplace_back([&, l] {
      for (int t = l; t < config.tables_per_engine; t += loaders) {
        for (int e = 0; e < 2; ++e) {
          const TableHandle& h = e == 0 ? mem_tables_[t] : stor_tables_[t];
          for (uint64_t start = 0; start < config.rows_per_table;
               start += 1024) {
            uint64_t end = std::min(start + 1024, config.rows_per_table);
            // Retry on transient aborts (concurrent loaders can trip the
            // commit-ordering check); a dropped batch would leave holes.
            while (true) {
              auto txn = db_->Begin(IsolationLevel::kSnapshot);
              bool ok = true;
              for (uint64_t row = start; row < end && ok; ++row) {
                ok = txn->Put(h, MakeKey(row), value_template_).ok();
              }
              if (ok && txn->Commit().ok()) break;
            }
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
}

MicroWorkload::~MicroWorkload() {
  if (!log_dir_.empty()) {
    db_.reset();  // close the WAL devices before removing their files
    std::error_code ec;
    std::filesystem::remove_all(log_dir_, ec);
  }
}

void MicroWorkload::SetAccessPattern(const MicroConfig& cfg) {
  bool zipf_changed = cfg.zipf_theta != config_.zipf_theta;
  config_.ops_per_txn = cfg.ops_per_txn;
  config_.read_pct = cfg.read_pct;
  config_.stor_pct = cfg.stor_pct;
  config_.zipf_theta = cfg.zipf_theta;
  config_.isolation = cfg.isolation;
  if (zipf_changed) {
    for (auto& z : zipf_) z.reset();
  }
}

Status MicroWorkload::RunOneTxn(int thread_id, Rng& rng, uint64_t* queries) {
  const MicroConfig& cfg = config_;
  int stor_ops = cfg.ops_per_txn * cfg.stor_pct / 100;
  int mem_ops = cfg.ops_per_txn - stor_ops;

  ZipfianGenerator* zipf = nullptr;
  if (cfg.zipf_theta > 0) {
    if (!zipf_[thread_id]) {
      zipf_[thread_id] = std::make_unique<ZipfianGenerator>(
          cfg.rows_per_table, cfg.zipf_theta,
          static_cast<uint64_t>(thread_id) + 1);
    }
    zipf = zipf_[thread_id].get();
  }

  auto txn = db_->Begin(cfg.isolation);
  // Each engine group gets its proportional share of reads so varying the
  // engine split doesn't silently change the write mix.
  for (int group = 0; group < 2; ++group) {
    int ops = group == 0 ? stor_ops : mem_ops;
    if (ops == 0) continue;
    int reads = ops * cfg.read_pct / 100;
    const std::vector<TableHandle>& tables =
        group == 0 ? stor_tables_ : mem_tables_;
    for (int i = 0; i < ops; ++i) {
      const TableHandle& h =
          tables[rng.Uniform(static_cast<uint64_t>(tables.size()))];
      uint64_t row =
          zipf != nullptr ? zipf->Next() : rng.Uniform(cfg.rows_per_table);
      (*queries)++;
      Status s;
      if (i < reads) {
        std::string v;
        s = txn->Get(h, MakeKey(row), &v);
        if (s.IsNotFound()) s = Status::OK();
      } else {
        s = txn->Put(h, MakeKey(row), value_template_);
      }
      if (!s.ok()) return s;
    }
  }
  return txn->Commit();
}

}  // namespace skeena::bench
