#include "bench/common/tpcc.h"

#include <algorithm>
#include <cstring>
#include <thread>

#include "common/env.h"
#include "stordb/page.h"

namespace skeena::bench {

namespace {

// ------------------------------------------------------------- row formats
// Fixed-size packed rows, padded toward the spec's row sizes so buffer-pool
// pressure is comparable (warehouse ~89B, district ~95B, customer ~655B,
// item ~82B, stock ~306B, orders ~24B, order_line ~54B, new_order 8B,
// history ~46B).

struct WarehouseRow {
  double tax;
  double ytd;
  char filler[73];
};

struct DistrictRow {
  double tax;
  double ytd;
  uint32_t next_o_id;
  char filler[75];
};

struct CustomerRow {
  double balance;
  double ytd_payment;
  double discount;
  uint32_t payment_cnt;
  uint32_t delivery_cnt;
  char last[16];
  char credit[2];
  char filler[600];
};

struct HistoryRow {
  double amount;
  char filler[38];
};

struct NewOrderRow {
  uint32_t o_id;
  char filler[4];
};

struct OrderRow {
  uint32_t c_id;
  uint32_t carrier_id;
  uint32_t ol_cnt;
  uint64_t entry_d;
  char filler[4];
};

struct OrderLineRow {
  uint32_t i_id;
  uint16_t supply_w_id;
  uint16_t quantity;
  double amount;
  uint64_t delivery_d;
  char filler[30];
};

struct ItemRow {
  double price;
  uint32_t im_id;
  char name[24];
  char filler[46];
};

struct StockRow {
  uint32_t quantity;
  uint32_t ytd;
  uint32_t order_cnt;
  uint32_t remote_cnt;
  char filler[290];
};

template <typename T>
std::string_view RowBytes(const T& row) {
  return {reinterpret_cast<const char*>(&row), sizeof(T)};
}

template <typename T>
bool DecodeRow(const std::string& bytes, T* row) {
  if (bytes.size() != sizeof(T)) return false;
  std::memcpy(row, bytes.data(), sizeof(T));
  return true;
}

// Populate batches must survive transient aborts (concurrent loaders can
// trip Skeena's commit-ordering check); a silently dropped batch would
// corrupt the initial database.
template <typename Fn>
void CommitWithRetry(Database* db, Fn&& fill) {
  for (int attempt = 0; attempt < 1000; ++attempt) {
    auto txn = db->Begin(IsolationLevel::kSnapshot);
    if (!fill(txn.get())) continue;
    if (txn->Commit().ok()) return;
  }
  std::fprintf(stderr, "populate batch failed 1000 times\n");
  std::abort();
}

// TPC-C last-name syllables (spec 4.3.2.3).
const char* kSyllables[10] = {"BAR", "OUGHT", "ABLE",  "PRI",   "PRES",
                              "ESE", "ANTI",  "CALLY", "ATION", "EING"};

void LastName(uint64_t num, char out[16]) {
  std::string s = std::string(kSyllables[(num / 100) % 10]) +
                  kSyllables[(num / 10) % 10] + kSyllables[num % 10];
  std::memset(out, 0, 16);
  std::memcpy(out, s.data(), std::min<size_t>(s.size(), 15));
}

// ------------------------------------------------------------------- keys

Key WarehouseKey(uint16_t w) {
  KeyBuilder b;
  b.AppendU16(w);
  return b.Build();
}
Key DistrictKey(uint16_t w, uint8_t d) {
  KeyBuilder b;
  b.AppendU16(w).AppendU8(d);
  return b.Build();
}
Key CustomerKey(uint16_t w, uint8_t d, uint32_t c) {
  KeyBuilder b;
  b.AppendU16(w).AppendU8(d).AppendU32(c);
  return b.Build();
}
Key CustomerNameKey(uint16_t w, uint8_t d, const char last[16], uint32_t c) {
  KeyBuilder b;
  b.AppendU16(w).AppendU8(d).AppendHash64(last).AppendU32(c);
  return b.Build();
}
Key HistoryKey(uint16_t w, uint8_t d, uint64_t seq) {
  KeyBuilder b;
  b.AppendU16(w).AppendU8(d).AppendU64(seq);
  return b.Build();
}
Key NewOrderKey(uint16_t w, uint8_t d, uint32_t o) {
  KeyBuilder b;
  b.AppendU16(w).AppendU8(d).AppendU32(o);
  return b.Build();
}
Key OrderKey(uint16_t w, uint8_t d, uint32_t o) {
  KeyBuilder b;
  b.AppendU16(w).AppendU8(d).AppendU32(o);
  return b.Build();
}
// Complement-encoded o_id: ascending scans deliver the newest order first.
Key OrderByCustomerKey(uint16_t w, uint8_t d, uint32_t c, uint32_t o) {
  KeyBuilder b;
  b.AppendU16(w).AppendU8(d).AppendU32(c).AppendU32(~o);
  return b.Build();
}
Key OrderLineKey(uint16_t w, uint8_t d, uint32_t o, uint8_t ol) {
  KeyBuilder b;
  b.AppendU16(w).AppendU8(d).AppendU32(o).AppendU8(ol);
  return b.Build();
}
Key ItemKey(uint32_t i) {
  KeyBuilder b;
  b.AppendU32(i);
  return b.Build();
}
Key StockKey(uint16_t w, uint32_t i) {
  KeyBuilder b;
  b.AppendU16(w).AppendU32(i);
  return b.Build();
}

}  // namespace

const std::vector<std::string>& Tpcc::PlacementOrder() {
  // Figure 13 bottom-up order.
  static const std::vector<std::string> kOrder = {
      "customer", "item",       "warehouse",  "district", "history",
      "orders",   "new_orders", "order_line", "stock"};
  return kOrder;
}

TpccConfig ScaledTpccConfig(TpccConfig base, const BenchScale& scale) {
  if (scale.full) {
    base.customers_per_district = 3000;
    base.items = 100000;
  }
  // Keep the warehouses:connections ratio in the paper's regime (200
  // warehouses for 80 connections storage-resident): scaled-down warehouse
  // counts would concentrate contention on the warehouse/district rows and
  // drown the placement effects in abort storms.
  int max_conns = scale.connections.empty() ? 8 : scale.connections.back();
  base.warehouses = std::max(base.warehouses, std::min(max_conns, 24));
  base.warehouses = static_cast<int>(
      GetEnvInt("SKEENA_TPCC_WAREHOUSES", base.warehouses));
  base.customers_per_district = static_cast<int>(GetEnvInt(
      "SKEENA_TPCC_CUSTOMERS", base.customers_per_district));
  base.items =
      static_cast<uint32_t>(GetEnvInt("SKEENA_TPCC_ITEMS", base.items));
  return base;
}

Tpcc::Tpcc(const TpccConfig& config) : config_(config) {
  DatabaseOptions opts;
  opts.enable_skeena = config.skeena_on;
  opts.default_isolation = config.isolation;
  opts.stor.data_latency = config.data_latency;
  // Benchmark-friendly lock waits: a 1s stall on a small machine would
  // dominate any cell; conflicts surface as retries instead.
  opts.stor.lock.wait_timeout_ms = 200;

  // Pool sized as a fraction of the estimated stordb data pages.
  auto in_mem = [&](const std::string& name) {
    return config_.mem_tables.count(name) != 0;
  };
  double stor_bytes = 0;
  double per_wh =
      config.districts_per_wh *
          (config.customers_per_district *
               (sizeof(CustomerRow) + 2.0 * sizeof(OrderRow) +
                10.0 * sizeof(OrderLineRow) + sizeof(HistoryRow))) +
      static_cast<double>(config.items) * sizeof(StockRow);
  if (!in_mem("customer") || !in_mem("orders") || !in_mem("order_line") ||
      !in_mem("stock")) {
    stor_bytes = per_wh * config.warehouses;
  }
  stor_bytes += static_cast<double>(config.items) * sizeof(ItemRow);
  size_t pages = static_cast<size_t>(
      stor_bytes / static_cast<double>(stordb::kPageSize) *
      config.pool_fraction);
  opts.stor.buffer_pool_pages = std::max<size_t>(pages, 256);

  db_ = std::make_unique<Database>(opts);

  auto create = [&](const std::string& name, size_t max_value) {
    EngineKind home = in_mem(name) ? EngineKind::kMem : EngineKind::kStor;
    return *db_->CreateTable(name, home, max_value);
  };
  warehouse_ = create("warehouse", sizeof(WarehouseRow));
  district_ = create("district", sizeof(DistrictRow));
  customer_ = create("customer", sizeof(CustomerRow));
  history_ = create("history", sizeof(HistoryRow));
  new_orders_ = create("new_orders", sizeof(NewOrderRow));
  orders_ = create("orders", sizeof(OrderRow));
  order_line_ = create("order_line", sizeof(OrderLineRow));
  item_ = create("item", sizeof(ItemRow));
  stock_ = create("stock", sizeof(StockRow));
  // Secondary indexes live with their base table's engine.
  customer_by_name_ = *db_->CreateTable(
      "customer_by_name", in_mem("customer") ? EngineKind::kMem
                                             : EngineKind::kStor,
      8);
  orders_by_customer_ = *db_->CreateTable(
      "orders_by_customer",
      in_mem("orders") ? EngineKind::kMem : EngineKind::kStor, 8);

  Populate();
}

void Tpcc::Populate() {
  // Items (shared).
  {
    Rng rng(1234);
    for (uint32_t start = 1; start <= config_.items; start += 1024) {
      uint32_t end = std::min(start + 1024, config_.items + 1);
      CommitWithRetry(db_.get(), [&](Transaction* txn) {
        for (uint32_t i = start; i < end; ++i) {
          ItemRow row{};
          row.price = 1.0 + static_cast<double>(rng.Uniform(9900)) / 100.0;
          row.im_id = static_cast<uint32_t>(rng.UniformRange(1, 10000));
          std::snprintf(row.name, sizeof(row.name), "item-%u", i);
          if (!txn->Put(item_, ItemKey(i), RowBytes(row)).ok()) return false;
        }
        return true;
      });
    }
  }
  int loaders = std::min(config_.warehouses, 8);
  std::vector<std::thread> threads;
  for (int l = 0; l < loaders; ++l) {
    threads.emplace_back([this, l, loaders] {
      for (int w = l + 1; w <= config_.warehouses; w += loaders) {
        PopulateWarehouse(static_cast<uint16_t>(w));
      }
    });
  }
  for (auto& th : threads) th.join();
}

void Tpcc::PopulateWarehouse(uint16_t w) {
  Rng rng(w * 31 + 7);
  CommitWithRetry(db_.get(), [&](Transaction* txn) {
    WarehouseRow wr{};
    wr.tax = static_cast<double>(rng.Uniform(2000)) / 10000.0;
    wr.ytd = 300000.0;
    return txn->Put(warehouse_, WarehouseKey(w), RowBytes(wr)).ok();
  });
  for (uint32_t start = 1; start <= config_.items; start += 1024) {
    uint32_t end = std::min(start + 1024, config_.items + 1);
    CommitWithRetry(db_.get(), [&](Transaction* txn) {
      for (uint32_t i = start; i < end; ++i) {
        StockRow sr{};
        sr.quantity = static_cast<uint32_t>(rng.UniformRange(10, 100));
        if (!txn->Put(stock_, StockKey(w, i), RowBytes(sr)).ok()) {
          return false;
        }
      }
      return true;
    });
  }
  for (uint8_t d = 1; d <= config_.districts_per_wh; ++d) {
    uint32_t customers = static_cast<uint32_t>(config_.customers_per_district);
    CommitWithRetry(db_.get(), [&](Transaction* txn) {
      DistrictRow dr{};
      dr.tax = static_cast<double>(rng.Uniform(2000)) / 10000.0;
      dr.ytd = 30000.0;
      dr.next_o_id = customers + 1;
      return txn->Put(district_, DistrictKey(w, d), RowBytes(dr)).ok();
    });
    // Customers (names are deterministic per (w, d, c) so retried batches
    // regenerate identical rows).
    for (uint32_t start = 1; start <= customers; start += 256) {
      uint32_t end = std::min(start + 256, customers + 1);
      CommitWithRetry(db_.get(), [&](Transaction* txn) {
        Rng crng(w * 131071 + d * 8191 + start);
        for (uint32_t c = start; c < end; ++c) {
          CustomerRow cr{};
          cr.balance = -10.0;
          cr.ytd_payment = 10.0;
          cr.discount = static_cast<double>(crng.Uniform(5000)) / 10000.0;
          // Spec 4.3.2.3: the first 1000 customers get sequential names.
          LastName(c <= 1000 ? c - 1 : crng.NURand(255, 0, 999, 33),
                   cr.last);
          cr.credit[0] = crng.Uniform(10) == 0 ? 'B' : 'G';
          cr.credit[1] = 'C';
          if (!txn->Put(customer_, CustomerKey(w, d, c), RowBytes(cr)).ok()) {
            return false;
          }
          std::string cid;
          PutU64(&cid, c);
          if (!txn->Put(customer_by_name_,
                        CustomerNameKey(w, d, cr.last, c), cid)
                   .ok()) {
            return false;
          }
        }
        return true;
      });
    }
    // Initial orders: one per customer in a random permutation; the last
    // third are still undelivered (rows in new_orders), mirroring the
    // spec's 2100/3000 delivered split.
    std::vector<uint32_t> perm(customers);
    for (uint32_t i = 0; i < customers; ++i) perm[i] = i + 1;
    for (uint32_t i = customers; i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.Uniform(i)]);
    }
    for (uint32_t start = 1; start <= customers; start += 128) {
      uint32_t end = std::min(start + 128, customers + 1);
      CommitWithRetry(db_.get(), [&](Transaction* txn) {
        Rng orng(w * 524287 + d * 4093 + start);
        for (uint32_t o = start; o < end; ++o) {
          bool delivered = o <= customers - customers / 3;
          OrderRow orow{};
          orow.c_id = perm[o - 1];
          orow.carrier_id =
              delivered ? static_cast<uint32_t>(orng.UniformRange(1, 10))
                        : 0;
          orow.ol_cnt = static_cast<uint32_t>(orng.UniformRange(5, 15));
          if (!txn->Put(orders_, OrderKey(w, d, o), RowBytes(orow)).ok()) {
            return false;
          }
          std::string oid;
          PutU64(&oid, o);
          if (!txn->Put(orders_by_customer_,
                        OrderByCustomerKey(w, d, orow.c_id, o), oid)
                   .ok()) {
            return false;
          }
          if (!delivered) {
            NewOrderRow nr{};
            nr.o_id = o;
            if (!txn->Put(new_orders_, NewOrderKey(w, d, o), RowBytes(nr))
                     .ok()) {
              return false;
            }
          }
          for (uint8_t ol = 1; ol <= orow.ol_cnt; ++ol) {
            OrderLineRow lr{};
            lr.i_id =
                static_cast<uint32_t>(orng.UniformRange(1, config_.items));
            lr.supply_w_id = w;
            lr.quantity = 5;
            lr.amount =
                delivered ? 0.0
                          : static_cast<double>(orng.Uniform(999999)) / 100.0;
            lr.delivery_d = delivered ? 1 : 0;
            if (!txn->Put(order_line_, OrderLineKey(w, d, o, ol),
                          RowBytes(lr))
                     .ok()) {
              return false;
            }
          }
          HistoryRow hr{};
          hr.amount = 10.0;
          if (!txn->Put(history_,
                        HistoryKey(w, d, history_seq_.fetch_add(1)),
                        RowBytes(hr))
                   .ok()) {
            return false;
          }
        }
        return true;
      });
    }
  }
}

uint16_t Tpcc::HomeWarehouse(int thread_id, Rng& rng) const {
  if (config_.fixed_home_warehouse) {
    return static_cast<uint16_t>(thread_id % config_.warehouses + 1);
  }
  return static_cast<uint16_t>(
      rng.UniformRange(1, static_cast<uint64_t>(config_.warehouses)));
}

Status Tpcc::RunMix(int thread_id, Rng& rng, uint64_t* queries) {
  uint16_t w = HomeWarehouse(thread_id, rng);
  uint64_t roll = rng.Uniform(100);
  if (roll < 45) return NewOrder(rng, w, queries);
  if (roll < 88) return Payment(rng, w, queries);
  if (roll < 92) return OrderStatus(rng, w, queries);
  if (roll < 96) return Delivery(rng, w, queries);
  return StockLevel(rng, w, queries);
}

Status Tpcc::NewOrder(Rng& rng, uint16_t w, uint64_t* queries) {
  uint8_t d =
      static_cast<uint8_t>(rng.UniformRange(1, config_.districts_per_wh));
  uint32_t c = static_cast<uint32_t>(rng.NURand(
      1023, 1, static_cast<uint64_t>(config_.customers_per_district), 259));
  int ol_cnt = static_cast<int>(rng.UniformRange(5, 15));
  bool rollback = rng.Uniform(100) == 0;  // spec: 1% invalid item

  auto txn = db_->Begin(config_.isolation);
  std::string buf;

  (*queries)++;
  SKEENA_RETURN_NOT_OK(txn->Get(warehouse_, WarehouseKey(w), &buf));
  WarehouseRow wr{};
  DecodeRow(buf, &wr);

  (*queries)++;
  SKEENA_RETURN_NOT_OK(txn->Get(district_, DistrictKey(w, d), &buf));
  DistrictRow dr{};
  DecodeRow(buf, &dr);
  uint32_t o_id = dr.next_o_id;
  dr.next_o_id++;
  (*queries)++;
  SKEENA_RETURN_NOT_OK(txn->Put(district_, DistrictKey(w, d), RowBytes(dr)));

  (*queries)++;
  SKEENA_RETURN_NOT_OK(txn->Get(customer_, CustomerKey(w, d, c), &buf));

  OrderRow orow{};
  orow.c_id = c;
  orow.ol_cnt = static_cast<uint32_t>(ol_cnt);
  (*queries)++;
  SKEENA_RETURN_NOT_OK(txn->Put(orders_, OrderKey(w, d, o_id), RowBytes(orow)));
  NewOrderRow nr{};
  nr.o_id = o_id;
  (*queries)++;
  SKEENA_RETURN_NOT_OK(
      txn->Put(new_orders_, NewOrderKey(w, d, o_id), RowBytes(nr)));
  std::string oid;
  PutU64(&oid, o_id);
  (*queries)++;
  SKEENA_RETURN_NOT_OK(
      txn->Put(orders_by_customer_, OrderByCustomerKey(w, d, c, o_id), oid));

  for (int line = 1; line <= ol_cnt; ++line) {
    bool invalid = rollback && line == ol_cnt;
    uint32_t i_id =
        invalid ? config_.items + 1
                : static_cast<uint32_t>(rng.NURand(8191, 1, config_.items, 7));
    (*queries)++;
    Status item_status = txn->Get(item_, ItemKey(i_id), &buf);
    if (item_status.IsNotFound()) {
      // Spec 2.4.2.3: unused item number -> user-initiated rollback.
      txn->Abort();
      return Status::OK();
    }
    SKEENA_RETURN_NOT_OK(item_status);
    ItemRow ir{};
    DecodeRow(buf, &ir);

    uint16_t supply_w = w;
    if (config_.warehouses > 1 &&
        rng.Uniform(100) <
            static_cast<uint64_t>(config_.remote_neworder_pct)) {
      do {
        supply_w = static_cast<uint16_t>(
            rng.UniformRange(1, static_cast<uint64_t>(config_.warehouses)));
      } while (supply_w == w);
    }
    (*queries)++;
    SKEENA_RETURN_NOT_OK(txn->Get(stock_, StockKey(supply_w, i_id), &buf));
    StockRow sr{};
    DecodeRow(buf, &sr);
    uint32_t qty = static_cast<uint32_t>(rng.UniformRange(1, 10));
    sr.quantity = sr.quantity >= qty + 10 ? sr.quantity - qty
                                          : sr.quantity + 91 - qty;
    sr.ytd += qty;
    sr.order_cnt++;
    if (supply_w != w) sr.remote_cnt++;
    (*queries)++;
    SKEENA_RETURN_NOT_OK(
        txn->Put(stock_, StockKey(supply_w, i_id), RowBytes(sr)));

    OrderLineRow lr{};
    lr.i_id = i_id;
    lr.supply_w_id = supply_w;
    lr.quantity = qty;
    lr.amount = qty * ir.price;
    (*queries)++;
    SKEENA_RETURN_NOT_OK(
        txn->Put(order_line_,
                 OrderLineKey(w, d, o_id, static_cast<uint8_t>(line)),
                 RowBytes(lr)));
  }
  return txn->Commit();
}

Status Tpcc::Payment(Rng& rng, uint16_t w, uint64_t* queries) {
  uint8_t d =
      static_cast<uint8_t>(rng.UniformRange(1, config_.districts_per_wh));
  double amount = 1.0 + static_cast<double>(rng.Uniform(499900)) / 100.0;

  // 85% local customer; 15% a customer of a remote warehouse (spec 2.5.1.2).
  uint16_t c_w = w;
  uint8_t c_d = d;
  if (config_.warehouses > 1 &&
      rng.Uniform(100) < static_cast<uint64_t>(config_.remote_payment_pct)) {
    do {
      c_w = static_cast<uint16_t>(
          rng.UniformRange(1, static_cast<uint64_t>(config_.warehouses)));
    } while (c_w == w);
    c_d = static_cast<uint8_t>(rng.UniformRange(1, config_.districts_per_wh));
  }

  auto txn = db_->Begin(config_.isolation);
  std::string buf;

  (*queries)++;
  SKEENA_RETURN_NOT_OK(txn->Get(warehouse_, WarehouseKey(w), &buf));
  WarehouseRow wr{};
  DecodeRow(buf, &wr);
  wr.ytd += amount;
  (*queries)++;
  SKEENA_RETURN_NOT_OK(txn->Put(warehouse_, WarehouseKey(w), RowBytes(wr)));

  (*queries)++;
  SKEENA_RETURN_NOT_OK(txn->Get(district_, DistrictKey(w, d), &buf));
  DistrictRow dr{};
  DecodeRow(buf, &dr);
  dr.ytd += amount;
  (*queries)++;
  SKEENA_RETURN_NOT_OK(txn->Put(district_, DistrictKey(w, d), RowBytes(dr)));

  // Customer: 60% by last name, 40% by id (spec 2.5.1.2).
  uint32_t c_id;
  if (rng.Uniform(100) < 60) {
    char last[16];
    LastName(rng.NURand(255, 0, 999, 33), last);
    KeyBuilder prefix;
    prefix.AppendU16(c_w).AppendU8(c_d).AppendHash64(
        std::string_view(last, std::strlen(last)));
    std::vector<uint32_t> matches;
    (*queries)++;
    Status s = txn->Scan(customer_by_name_, prefix.Build(), 0,
                         [&](const Key& key, const std::string& value) {
                           if (!KeyHasPrefix(key, prefix.Build(), 11)) {
                             return false;
                           }
                           matches.push_back(
                               static_cast<uint32_t>(GetU64(value.data())));
                           return true;
                         });
    SKEENA_RETURN_NOT_OK(s);
    if (matches.empty()) {
      c_id = static_cast<uint32_t>(rng.NURand(
          1023, 1, static_cast<uint64_t>(config_.customers_per_district),
          259));
    } else {
      std::sort(matches.begin(), matches.end());
      c_id = matches[matches.size() / 2];  // spec: ceil(n/2)
    }
  } else {
    c_id = static_cast<uint32_t>(rng.NURand(
        1023, 1, static_cast<uint64_t>(config_.customers_per_district), 259));
  }

  (*queries)++;
  SKEENA_RETURN_NOT_OK(txn->Get(customer_, CustomerKey(c_w, c_d, c_id), &buf));
  CustomerRow cr{};
  DecodeRow(buf, &cr);
  cr.balance -= amount;
  cr.ytd_payment += amount;
  cr.payment_cnt++;
  (*queries)++;
  SKEENA_RETURN_NOT_OK(
      txn->Put(customer_, CustomerKey(c_w, c_d, c_id), RowBytes(cr)));

  HistoryRow hr{};
  hr.amount = amount;
  (*queries)++;
  SKEENA_RETURN_NOT_OK(txn->Put(
      history_, HistoryKey(w, d, history_seq_.fetch_add(1)), RowBytes(hr)));
  return txn->Commit();
}

Status Tpcc::OrderStatus(Rng& rng, uint16_t w, uint64_t* queries) {
  uint8_t d =
      static_cast<uint8_t>(rng.UniformRange(1, config_.districts_per_wh));
  auto txn = db_->Begin(config_.isolation);
  std::string buf;

  uint32_t c_id;
  if (rng.Uniform(100) < 60) {
    char last[16];
    LastName(rng.NURand(255, 0, 999, 33), last);
    KeyBuilder prefix;
    prefix.AppendU16(w).AppendU8(d).AppendHash64(
        std::string_view(last, std::strlen(last)));
    std::vector<uint32_t> matches;
    (*queries)++;
    SKEENA_RETURN_NOT_OK(
        txn->Scan(customer_by_name_, prefix.Build(), 0,
                  [&](const Key& key, const std::string& value) {
                    if (!KeyHasPrefix(key, prefix.Build(), 11)) return false;
                    matches.push_back(
                        static_cast<uint32_t>(GetU64(value.data())));
                    return true;
                  }));
    if (matches.empty()) {
      c_id = static_cast<uint32_t>(rng.NURand(
          1023, 1, static_cast<uint64_t>(config_.customers_per_district),
          259));
    } else {
      std::sort(matches.begin(), matches.end());
      c_id = matches[matches.size() / 2];
    }
  } else {
    c_id = static_cast<uint32_t>(rng.NURand(
        1023, 1, static_cast<uint64_t>(config_.customers_per_district), 259));
  }

  (*queries)++;
  SKEENA_RETURN_NOT_OK(txn->Get(customer_, CustomerKey(w, d, c_id), &buf));

  // Latest order of the customer (complement-encoded index: first hit).
  KeyBuilder prefix;
  prefix.AppendU16(w).AppendU8(d).AppendU32(c_id);
  uint32_t o_id = 0;
  (*queries)++;
  SKEENA_RETURN_NOT_OK(txn->Scan(
      orders_by_customer_, prefix.Build(), 1,
      [&](const Key& key, const std::string& value) {
        if (KeyHasPrefix(key, prefix.Build(), 7)) {
          o_id = static_cast<uint32_t>(GetU64(value.data()));
        }
        return false;
      }));
  if (o_id != 0) {
    (*queries)++;
    SKEENA_RETURN_NOT_OK(txn->Get(orders_, OrderKey(w, d, o_id), &buf));
    OrderRow orow{};
    DecodeRow(buf, &orow);
    KeyBuilder ol_prefix;
    ol_prefix.AppendU16(w).AppendU8(d).AppendU32(o_id);
    (*queries)++;
    SKEENA_RETURN_NOT_OK(
        txn->Scan(order_line_, ol_prefix.Build(), 0,
                  [&](const Key& key, const std::string&) {
                    return KeyHasPrefix(key, ol_prefix.Build(), 7);
                  }));
  }
  return txn->Commit();
}

Status Tpcc::Delivery(Rng& rng, uint16_t w, uint64_t* queries) {
  uint32_t carrier = static_cast<uint32_t>(rng.UniformRange(1, 10));
  auto txn = db_->Begin(config_.isolation);
  std::string buf;

  for (uint8_t d = 1; d <= config_.districts_per_wh; ++d) {
    // Oldest undelivered order for the district (spec 2.7.4.1).
    KeyBuilder prefix;
    prefix.AppendU16(w).AppendU8(d);
    uint32_t o_id = 0;
    (*queries)++;
    SKEENA_RETURN_NOT_OK(
        txn->Scan(new_orders_, prefix.Build(), 1,
                  [&](const Key& key, const std::string&) {
                    if (KeyHasPrefix(key, prefix.Build(), 3)) {
                      uint32_t o = 0;
                      for (int b = 3; b < 7; ++b) o = (o << 8) | key[b];
                      o_id = o;
                    }
                    return false;
                  }));
    if (o_id == 0) continue;  // district fully delivered

    (*queries)++;
    SKEENA_RETURN_NOT_OK(txn->Delete(new_orders_, NewOrderKey(w, d, o_id)));

    (*queries)++;
    SKEENA_RETURN_NOT_OK(txn->Get(orders_, OrderKey(w, d, o_id), &buf));
    OrderRow orow{};
    DecodeRow(buf, &orow);
    orow.carrier_id = carrier;
    (*queries)++;
    SKEENA_RETURN_NOT_OK(
        txn->Put(orders_, OrderKey(w, d, o_id), RowBytes(orow)));

    double total = 0;
    for (uint8_t ol = 1; ol <= orow.ol_cnt; ++ol) {
      (*queries)++;
      Status s = txn->Get(order_line_, OrderLineKey(w, d, o_id, ol), &buf);
      if (s.IsNotFound()) continue;
      SKEENA_RETURN_NOT_OK(s);
      OrderLineRow lr{};
      DecodeRow(buf, &lr);
      total += lr.amount;
      lr.delivery_d = 1;
      (*queries)++;
      SKEENA_RETURN_NOT_OK(
          txn->Put(order_line_, OrderLineKey(w, d, o_id, ol), RowBytes(lr)));
    }

    (*queries)++;
    SKEENA_RETURN_NOT_OK(
        txn->Get(customer_, CustomerKey(w, d, orow.c_id), &buf));
    CustomerRow cr{};
    DecodeRow(buf, &cr);
    cr.balance += total;
    cr.delivery_cnt++;
    (*queries)++;
    SKEENA_RETURN_NOT_OK(
        txn->Put(customer_, CustomerKey(w, d, orow.c_id), RowBytes(cr)));
  }
  return txn->Commit();
}

Status Tpcc::StockLevel(Rng& rng, uint16_t w, uint64_t* queries) {
  uint8_t d =
      static_cast<uint8_t>(rng.UniformRange(1, config_.districts_per_wh));
  uint32_t threshold = static_cast<uint32_t>(rng.UniformRange(10, 20));
  auto txn = db_->Begin(config_.isolation);
  std::string buf;

  (*queries)++;
  SKEENA_RETURN_NOT_OK(txn->Get(district_, DistrictKey(w, d), &buf));
  DistrictRow dr{};
  DecodeRow(buf, &dr);
  uint32_t next_o = dr.next_o_id;
  uint32_t from_o = next_o > 20 ? next_o - 20 : 1;

  // Items of the district's last 20 orders (spec 2.8.2.2).
  std::set<uint32_t> items;
  KeyBuilder lower;
  lower.AppendU16(w).AppendU8(d).AppendU32(from_o);
  KeyBuilder district_prefix;
  district_prefix.AppendU16(w).AppendU8(d);
  (*queries)++;
  SKEENA_RETURN_NOT_OK(txn->Scan(
      order_line_, lower.Build(), 0,
      [&](const Key& key, const std::string& value) {
        if (!KeyHasPrefix(key, district_prefix.Build(), 3)) return false;
        OrderLineRow lr{};
        if (value.size() == sizeof(lr)) {
          std::memcpy(&lr, value.data(), sizeof(lr));
          items.insert(lr.i_id);
        }
        return true;
      }));

  uint64_t low_stock = 0;
  for (uint32_t i_id : items) {
    (*queries)++;
    Status s = txn->Get(stock_, StockKey(w, i_id), &buf);
    if (s.IsNotFound()) continue;
    SKEENA_RETURN_NOT_OK(s);
    StockRow sr{};
    DecodeRow(buf, &sr);
    if (sr.quantity < threshold) low_stock++;
  }
  (void)low_stock;
  return txn->Commit();
}

Status Tpcc::CheckConsistency() {
  auto txn = db_->Begin(IsolationLevel::kSnapshot);
  std::string buf;
  for (uint16_t w = 1; w <= config_.warehouses; ++w) {
    SKEENA_RETURN_NOT_OK(txn->Get(warehouse_, WarehouseKey(w), &buf));
    WarehouseRow wr{};
    DecodeRow(buf, &wr);
    double district_ytd = 0;
    for (uint8_t d = 1; d <= config_.districts_per_wh; ++d) {
      SKEENA_RETURN_NOT_OK(txn->Get(district_, DistrictKey(w, d), &buf));
      DistrictRow dr{};
      DecodeRow(buf, &dr);
      district_ytd += dr.ytd;

      // Consistency 3: max order id vs next_o_id.
      KeyBuilder prefix;
      prefix.AppendU16(w).AppendU8(d);
      uint32_t max_o = 0;
      SKEENA_RETURN_NOT_OK(
          txn->Scan(orders_, prefix.Build(), 0,
                    [&](const Key& key, const std::string&) {
                      if (!KeyHasPrefix(key, prefix.Build(), 3)) return false;
                      uint32_t o = 0;
                      for (int b = 3; b < 7; ++b) o = (o << 8) | key[b];
                      max_o = std::max(max_o, o);
                      return true;
                    }));
      if (max_o + 1 != dr.next_o_id) {
        return Status::Corruption("D_NEXT_O_ID mismatch");
      }
    }
    // Consistency 1 (spec 3.3.2.1): both sides advance by the same Payment
    // amounts, so the deltas from their initial loads must match.
    double w_delta = wr.ytd - 300000.0;
    double d_delta =
        district_ytd - 30000.0 * static_cast<double>(config_.districts_per_wh);
    if (std::abs(w_delta - d_delta) > 0.01) {
      return Status::Corruption("W_YTD != sum(D_YTD)");
    }
  }
  txn->Abort();
  return Status::OK();
}

}  // namespace skeena::bench
