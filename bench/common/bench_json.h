#ifndef SKEENA_BENCH_COMMON_BENCH_JSON_H_
#define SKEENA_BENCH_COMMON_BENCH_JSON_H_

// Perf-trajectory emitter. Every ResultMatrix::Set() forwards its point
// here, and at process exit the collected points are written as
// BENCH_<binary>.json so each bench run leaves a machine-readable record:
//
//   {
//     "bench": "fig6_memres_micro",
//     "points": [
//       {"matrix": "...", "row": "ERMIA", "col": "1", "value": 1234.5},
//       ...
//     ]
//   }
//
// The output directory defaults to the cwd and can be redirected with
// SKEENA_BENCH_JSON_DIR; SKEENA_BENCH_JSON=0 disables emission.

#include <string>

namespace skeena::bench {

class JsonEmitter {
 public:
  /// Process-wide collector; first use registers the exit-time writer.
  static JsonEmitter& Global();

  /// Records one point. Thread-safe.
  void Add(const std::string& matrix, const std::string& row,
           const std::string& col, double value);

  /// Writes BENCH_<name>.json now and clears the buffer. Returns the path
  /// written, or "" when there is nothing to write / emission is disabled.
  std::string WriteFile();

 private:
  JsonEmitter();

  struct Impl;
  Impl* impl_;
};

}  // namespace skeena::bench

#endif  // SKEENA_BENCH_COMMON_BENCH_JSON_H_
