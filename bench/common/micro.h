#ifndef SKEENA_BENCH_COMMON_MICRO_H_
#define SKEENA_BENCH_COMMON_MICRO_H_

#include <memory>
#include <string>
#include <vector>

#include "bench/common/workload.h"
#include "core/skeena.h"

namespace skeena::bench {

/// YCSB-like microbenchmark of paper Section 6.2: a set of tables per
/// engine, 232-byte rows, each transaction touching `ops_per_txn` records
/// with a fixed read/write split and a fixed fraction of accesses routed to
/// the storage engine ("X% InnoDB").
struct MicroConfig {
  // Scale (paper: 250 tables; 25k rows memory-resident / 250k
  // storage-resident; overridden by SKEENA_BENCH_FULL / env).
  int tables_per_engine = 16;
  uint64_t rows_per_table = 1000;
  size_t value_size = 232;

  int ops_per_txn = 10;
  int read_pct = 80;   // % of the ops that are point reads (rest updates)
  int stor_pct = 50;   // % of the ops routed to stordb tables
  double zipf_theta = 0;  // 0 = uniform

  // Storage-resident runs size the buffer pool to this fraction of the
  // stordb data (memory-resident: > 1.0 to fit everything).
  double pool_fraction = 2.0;

  IsolationLevel isolation = IsolationLevel::kSnapshot;

  // Coordinator knobs (for the ablation benches).
  SnapshotRegistry::Options csr;
  CommitPipeline::Options pipeline;
  EngineKind anchor = EngineKind::kMem;
  DeviceLatency log_latency = DeviceLatency::Tmpfs();

  /// Log write-path ablation (bench/ablation_commit.cc): kNone keeps the
  /// default in-memory log devices; the others put ONLY the engine logs on
  /// real files under a fresh temp dir (tables stay in memory so the log
  /// path is what's measured).
  enum class LogDisk { kNone, kFilePwrite, kSegmented, kSegmentedUring };
  LogDisk log_disk = LogDisk::kNone;

  /// Group-commit window knobs, applied to both engines' logs (the
  /// batch-window axis of the flush-backend ablation).
  LogManager::Options log;

  // Verification-hook cost measurement (bench/recording_overhead.cc).
  bool record_history = false;
};

/// Applies SKEENA_BENCH_FULL / SKEENA_MICRO_* env scaling.
MicroConfig ScaledMicroConfig(MicroConfig base, const BenchScale& scale);

/// A populated database + the per-transaction driver for one scheme.
class MicroWorkload {
 public:
  /// Builds the database (Skeena on/off per `skeena_on`) with the buffer
  /// pool sized from the config, creates the tables in both engines and
  /// populates them identically (Section 6.2: "ERMIA is populated with the
  /// same amount of data as InnoDB").
  MicroWorkload(const MicroConfig& config, bool skeena_on,
                DeviceLatency data_latency = DeviceLatency::Tmpfs());
  ~MicroWorkload();

  /// Executes one transaction: `stor_ops` accesses to stordb tables, the
  /// rest to memdb tables; reads and updates interleaved per read_pct.
  Status RunOneTxn(int thread_id, Rng& rng, uint64_t* queries);

  /// Re-targets the access pattern (ops per txn, read %, engine split,
  /// skew, isolation) without repopulating. Must not race active workers.
  void SetAccessPattern(const MicroConfig& cfg);

  Database* db() { return db_.get(); }
  const MicroConfig& config() const { return config_; }

  /// Pages needed to hold all stordb rows (for pool sizing experiments).
  static size_t StorPagesNeeded(const MicroConfig& config);

 private:
  MicroConfig config_;
  std::string log_dir_;  // temp WAL dir when log_disk != kNone
  std::unique_ptr<Database> db_;
  std::vector<TableHandle> mem_tables_;
  std::vector<TableHandle> stor_tables_;
  std::vector<std::unique_ptr<ZipfianGenerator>> zipf_;  // per thread
  std::string value_template_;
};

}  // namespace skeena::bench

#endif  // SKEENA_BENCH_COMMON_MICRO_H_
