#ifndef SKEENA_BENCH_COMMON_WORKLOAD_H_
#define SKEENA_BENCH_COMMON_WORKLOAD_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/random.h"
#include "common/status.h"

namespace skeena::bench {

/// Outcome of one timed run: committed transactions, queries, abort
/// attribution (engine vs Skeena — Section 6.9) and the latency histogram.
struct RunResult {
  double seconds = 0;
  uint64_t commits = 0;
  uint64_t queries = 0;
  uint64_t engine_aborts = 0;
  uint64_t skeena_aborts = 0;
  Histogram latency;

  double Tps() const { return seconds == 0 ? 0 : commits / seconds; }
  double Qps() const {
    return seconds == 0 ? 0 : static_cast<double>(queries) / seconds;
  }
  double AbortRate() const {
    uint64_t attempts = commits + engine_aborts + skeena_aborts;
    return attempts == 0
               ? 0
               : static_cast<double>(engine_aborts + skeena_aborts) /
                     static_cast<double>(attempts);
  }
  double SkeenaAbortRate() const {
    uint64_t attempts = commits + engine_aborts + skeena_aborts;
    return attempts == 0 ? 0
                         : static_cast<double>(skeena_aborts) /
                               static_cast<double>(attempts);
  }
};

/// One transaction attempt executed by a worker ("connection"). Returns the
/// commit status; `*queries` should be incremented per record access.
using TxnFn = std::function<Status(int thread_id, Rng& rng, uint64_t* queries)>;

/// Runs `fn` from `threads` workers for `duration_ms`, with a start barrier
/// and per-thread statistics merged at the end (the SysBench-style driver
/// of Section 6.1; connections are worker threads, see DESIGN.md).
RunResult RunWorkload(int threads, uint64_t duration_ms, const TxnFn& fn);

/// Benchmark scale knobs, env-overridable so every experiment can be pushed
/// toward the paper's full parameters without recompiling:
///   SKEENA_BENCH_MS       per-cell duration (default 250 ms)
///   SKEENA_BENCH_CONNS    comma list of connection counts (default 1,8,32)
///   SKEENA_BENCH_FULL=1   paper-like scale (longer runs, more connections,
///                         bigger tables)
struct BenchScale {
  uint64_t duration_ms;
  std::vector<int> connections;
  bool full;

  static BenchScale FromEnv();
};

/// Formats/prints a labeled matrix like the paper's tables and figures
/// (rows = schemes/placements, columns = connections/ratios).
class ResultMatrix {
 public:
  ResultMatrix(std::string title, std::string row_header);

  void SetColumns(const std::vector<std::string>& columns);
  void Set(const std::string& row, const std::string& column, double value);
  /// Prints rows in insertion order, values with `digits` decimals.
  void Print(int digits = 0) const;

 private:
  std::string title_;
  std::string row_header_;
  std::vector<std::string> columns_;
  std::vector<std::string> row_order_;
  std::vector<std::vector<double>> values_;  // [row][col]
};

}  // namespace skeena::bench

#endif  // SKEENA_BENCH_COMMON_WORKLOAD_H_
