// Reproduces paper Figure 10: memory-resident short transactions (two
// queries each — one per engine in the cross-engine case) at saturation,
// for read-only / read-write / write-only mixes.
//
// Expected shape (Section 6.5): ERMIA stays flat across mixes; 100% InnoDB
// drops with writes; the cross-engine 50% InnoDB is slowest (Skeena's CSR +
// commit protocol dominate such tiny transactions) but only slightly below
// 100% InnoDB, since InnoDB write handling outweighs the in-memory CSR.

#include "bench/common/bench_harness.h"

namespace skeena::bench {
namespace {

void Run() {
  BenchScale scale = BenchScale::FromEnv();
  MicroCache cache;
  int conns = scale.connections.back();
  auto matrix = std::make_shared<ResultMatrix>(
      "Figure 10: short transactions (2 queries), memory-resident, " +
          std::to_string(conns) + " connections (TPS)",
      "Scheme");

  struct Scheme {
    std::string label;
    bool skeena_on;
    int stor_pct;
  };
  std::vector<Scheme> schemes = {
      {"ERMIA", false, 0}, {"50% InnoDB", true, 50},
      {"100% InnoDB", false, 100}};
  struct Mix {
    std::string label;
    int read_pct;
  };
  std::vector<Mix> mixes = {
      {"Read-only", 100}, {"Read-write", 50}, {"Write-only", 0}};

  for (const auto& scheme : schemes) {
    for (const auto& mix : mixes) {
      RegisterCell("Fig10/" + scheme.label + "/" + mix.label, [=, &cache] {
        MicroConfig cfg = ScaledMicroConfig(MicroConfig{}, scale);
        cfg.ops_per_txn = 2;
        cfg.read_pct = mix.read_pct;
        cfg.stor_pct = scheme.stor_pct;
        cfg.pool_fraction = 2.0;
        MicroWorkload* wl = cache.Get(cfg, scheme.skeena_on);
        RunResult r = RunWorkload(conns, scale.duration_ms,
                                  [wl](int t, Rng& rng, uint64_t* q) {
                                    return wl->RunOneTxn(t, rng, q);
                                  });
        matrix->Set(scheme.label, mix.label, r.Tps());
        return r;
      });
    }
  }

  ::benchmark::RunSpecifiedBenchmarks();
  matrix->Print();
}

}  // namespace
}  // namespace skeena::bench

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  skeena::bench::Run();
  return 0;
}
