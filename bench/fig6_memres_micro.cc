// Reproduces paper Figure 6: memory-resident microbenchmark throughput vs.
// connections for (a) read-only, (b) read-write, (c) write-only.
//
// Expected shape (Section 6.4): with all data memory-resident, CSR
// maintenance is comparable in cost to the (cheap) record accesses, so the
// single-engine InnoDB-M can outperform the cross-engine 30-80% InnoDB
// mixes for read-heavy workloads; the gap closes as writes dominate.

#include "bench/common/bench_harness.h"

namespace skeena::bench {
namespace {

void Run() {
  BenchScale scale = BenchScale::FromEnv();
  MicroCache cache;
  struct Panel {
    std::string label;
    int read_pct;
  };
  std::vector<Panel> panels = {
      {"(a) Read-only", 100}, {"(b) Read-write", 80}, {"(c) Write-only", 0}};
  std::vector<std::shared_ptr<ResultMatrix>> matrices;

  for (const auto& panel : panels) {
    auto matrix = std::make_shared<ResultMatrix>(
        "Figure 6" + panel.label +
            ": memory-resident micro, TPS vs connections",
        "Scheme");
    matrices.push_back(matrix);
    for (const auto& scheme : MemoryResidentSchemes()) {
      for (int conns : scale.connections) {
        RegisterCell("Fig6/" + panel.label + "/" + scheme.label + "/conns:" +
                         std::to_string(conns),
                     [=, &cache] {
                       MicroConfig cfg =
                           ScaledMicroConfig(MicroConfig{}, scale);
                       cfg.read_pct = panel.read_pct;
                       cfg.stor_pct = scheme.stor_pct;
                       cfg.pool_fraction = 2.0;  // memory-resident
                       MicroWorkload* wl = cache.Get(cfg, scheme.skeena_on);
                       RunResult r = RunWorkload(
                           conns, scale.duration_ms,
                           [wl](int t, Rng& rng, uint64_t* q) {
                             return wl->RunOneTxn(t, rng, q);
                           });
                       matrix->Set(scheme.label, std::to_string(conns),
                                   r.Tps());
                       return r;
                     });
      }
    }
  }

  ::benchmark::RunSpecifiedBenchmarks();
  for (const auto& m : matrices) m->Print();
}

}  // namespace
}  // namespace skeena::bench

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  skeena::bench::Run();
  return 0;
}
