// Eviction-pressure matrix: raw BufferPool fetch throughput as the pool
// shrinks below the working set. This hammers exactly the paths the frame
// lifecycle redesign (state machine + in-flight write-back table) touched —
// miss-heavy cells are wall-to-wall evict/write-back/reload, so any
// protocol overhead shows up here first, before it would surface in
// `table4_hit_ratio`'s end-to-end storage-resident cells.
//
// Rows: pool coverage (fraction of the working set that fits).
// Cols: fetcher threads. Three matrices: fetches/s, the measured hit
// ratio, and flush-park waits per 10k fetches (how often a refetch had to
// wait out an in-flight write-back — the window the fix made safe).

#include <cstring>
#include <memory>

#include "bench/common/bench_harness.h"
#include "stordb/buffer_pool.h"

namespace skeena::bench {
namespace {

using stordb::BufferPool;
using stordb::MakePageId;
using stordb::PageId;

constexpr uint32_t kWorkingSetPages = 512;

void Run() {
  BenchScale scale = BenchScale::FromEnv();
  std::vector<int> conn_set = {1, scale.connections.back()};
  struct Target {
    std::string label;
    double coverage;  // pool frames / working-set pages
  };
  std::vector<Target> targets = {{"fits", 1.5}, {"50%", 0.5}, {"10%", 0.1}};

  auto tput = std::make_shared<ResultMatrix>(
      "Eviction pressure: fetches/s vs. pool coverage (TmpfsStack latency)",
      "Coverage");
  auto ratio = std::make_shared<ResultMatrix>(
      "Eviction pressure (measured hit ratio, %)", "Coverage");
  auto waits = std::make_shared<ResultMatrix>(
      "Eviction pressure (flush-park waits per 10k fetches)", "Coverage");

  for (int conns : conn_set) {
    for (const auto& target : targets) {
      RegisterCell(
          "EvictionPressure/threads:" + std::to_string(conns) +
              "/coverage:" + target.label,
          [=] {
            auto device = std::make_unique<MemDevice>(
                DeviceLatency::TmpfsStack());
            StorageDevice* dev = device.get();
            size_t frames = static_cast<size_t>(
                static_cast<double>(kWorkingSetPages) * target.coverage);
            BufferPool pool(
                frames, [dev](TableId) { return dev; }, 4);
            // Populate: every page stamped dirty so evictions write back.
            for (uint32_t p = 0; p < kWorkingSetPages; ++p) {
              auto page = pool.NewPage(MakePageId(0, p));
              if (!page.ok()) continue;
              page->LockExclusive();
              std::memset(page->data(), static_cast<int>(p + 1),
                          stordb::kPageSize);
              page->UnlockExclusive();
            }
            pool.ResetStats();
            RunResult r = RunWorkload(
                conns, scale.duration_ms,
                [&pool](int, Rng& rng, uint64_t* queries) {
                  uint32_t p =
                      static_cast<uint32_t>(rng.Uniform(kWorkingSetPages));
                  auto page = pool.FetchPage(MakePageId(0, p));
                  if (!page.ok()) return Status::OK();  // transiently pinned
                  if (rng.Uniform(10) < 8) {
                    page->LockShared();
                    ::benchmark::DoNotOptimize(page->data()[0]);
                    page->UnlockShared();
                  } else {
                    page->LockExclusive();
                    page->data()[0] = static_cast<uint8_t>(p + 1);
                    page->UnlockExclusive();
                  }
                  (*queries)++;
                  return Status::OK();
                });
            tput->Set(target.label, std::to_string(conns), r.Qps());
            ratio->Set(target.label, std::to_string(conns),
                       pool.HitRatio() * 100.0);
            uint64_t fetches = pool.hits() + pool.misses();
            waits->Set(target.label, std::to_string(conns),
                       fetches == 0 ? 0.0
                                    : 1e4 * static_cast<double>(
                                                pool.flush_waits()) /
                                          static_cast<double>(fetches));
            return r;
          });
    }
  }

  ::benchmark::RunSpecifiedBenchmarks();
  tput->Print();
  ratio->Print(1);
  waits->Print(2);
}

}  // namespace
}  // namespace skeena::bench

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  skeena::bench::Run();
  return 0;
}
