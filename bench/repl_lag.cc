// Replication lag and replica read throughput (docs/REPLICATION.md).
//
// Each cell stands up a live primary -> replica pair over localhost: the
// shipper streams both WALs plus the CSR journal, the applier replays them
// and publishes the visibility gate. Primary writers commit cross-engine
// transactions at a fixed offered rate, stamping each row with the
// steady-clock nanosecond of the write; replica readers spin snapshot
// transactions that read the stamped rows back. Every replica read yields
// one commit-to-visible lag sample: (read time) - (stamp in the newest
// visible version). The sample over-counts by at most one write interval
// (the stamp predates its commit by the commit latency), which at the
// offered rates here is noise against the shipping + watermark delay
// being measured.
//
// Rows are the primary's offered cross-engine write rate
// (SKEENA_BENCH_REPL_RATES, default "500,2000"); columns are replica
// reader counts (SKEENA_BENCH_CONNS). Matrices: lag p50/p99 (ms), replica
// read throughput (reads/s), achieved primary write rate (txn/s) — all in
// BENCH_repl_lag.json via the emitter.

#include <atomic>
#include <chrono>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "bench/common/bench_harness.h"
#include "common/env.h"
#include "repl/applier.h"
#include "repl/shipper.h"

namespace skeena::bench {
namespace {

using Clock = std::chrono::steady_clock;

constexpr int kWriters = 2;
constexpr uint64_t kKeys = 16;

std::vector<int> ParseIntList(const std::string& csv) {
  std::vector<int> out;
  std::istringstream in(csv);
  std::string tok;
  while (std::getline(in, tok, ',')) {
    if (!tok.empty()) out.push_back(std::stoi(tok));
  }
  return out;
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

DatabaseOptions FastLogOptions() {
  DatabaseOptions opts;
  opts.mem.log.flush_interval_us = 20;
  opts.stor.log.flush_interval_us = 20;
  return opts;
}

RunResult RunCell(int write_rate, int readers, uint64_t duration_ms) {
  repl::CsrInstallJournal journal;
  DatabaseOptions popts = FastLogOptions();
  popts.csr.install_observer = journal.Observer();
  Database primary(popts);
  auto p_mem = *primary.CreateTable("mem_t", EngineKind::kMem);
  auto p_stor = *primary.CreateTable("stor_t", EngineKind::kStor);

  DatabaseOptions ropts = FastLogOptions();
  ropts.replica = true;
  Database replica_db(ropts);
  auto r_mem = *replica_db.CreateTable("mem_t", EngineKind::kMem);
  auto r_stor = *replica_db.CreateTable("stor_t", EngineKind::kStor);

  RunResult result;
  repl::Shipper shipper(&primary, &journal);
  if (!shipper.Start().ok()) return result;
  repl::Replica::Options aopts;
  aopts.port = shipper.port();
  repl::Replica replica(&replica_db, aopts);
  if (!replica.Start().ok()) {
    shipper.Stop();
    return result;
  }

  // Seed every key so readers always find a stamped row, and wait for the
  // replica's gate to open before the timed window starts.
  for (uint64_t k = 0; k < kKeys; ++k) {
    auto txn = primary.Begin(IsolationLevel::kSnapshot);
    std::string v = std::to_string(NowNs());
    if (!txn->Put(p_mem, MakeKey(k), v).ok() ||
        !txn->Put(p_stor, MakeKey(k), v).ok() || !txn->Commit().ok()) {
      txn->Abort();
    }
  }
  replica.WaitCaughtUp(primary.engine(EngineKind::kMem)->CurrentLsn(),
                       primary.engine(EngineKind::kStor)->CurrentLsn(),
                       journal.size(), std::chrono::milliseconds(5000));

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> commits{0};
  std::atomic<uint64_t> reads{0};

  // Paced primary writers: cross-engine commits stamped with "now".
  std::vector<std::thread> writers;
  auto start = Clock::now();
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      const double per_thread =
          static_cast<double>(write_rate) / kWriters;
      const auto interval = std::chrono::nanoseconds(
          per_thread <= 0 ? 1 : static_cast<uint64_t>(1e9 / per_thread));
      auto due = start;
      uint64_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        std::this_thread::sleep_until(due);
        due += interval;
        uint64_t k = (static_cast<uint64_t>(w) + i++ * kWriters) % kKeys;
        auto txn = primary.Begin(IsolationLevel::kSnapshot);
        std::string v = std::to_string(NowNs());
        if (txn->Put(p_mem, MakeKey(k), v).ok() &&
            txn->Put(p_stor, MakeKey(k), v).ok() && txn->Commit().ok()) {
          commits.fetch_add(1, std::memory_order_relaxed);
        } else {
          txn->Abort();
        }
      }
    });
  }

  // Replica readers: every successfully parsed row is one lag sample.
  std::vector<Histogram> lag(static_cast<size_t>(readers));
  std::vector<std::thread> reader_threads;
  for (int r = 0; r < readers; ++r) {
    reader_threads.emplace_back([&, r] {
      uint64_t i = 0;
      std::string v;
      while (!stop.load(std::memory_order_acquire)) {
        uint64_t k = (static_cast<uint64_t>(r) + i++) % kKeys;
        auto txn = replica_db.Begin(IsolationLevel::kSnapshot);
        bool ok = txn->Get(r_mem, MakeKey(k), &v).ok();
        if (ok) {
          uint64_t stamp = std::strtoull(v.c_str(), nullptr, 10);
          uint64_t now = NowNs();
          if (stamp != 0 && now > stamp) {
            lag[static_cast<size_t>(r)].Record(now - stamp);
          }
          reads.fetch_add(1, std::memory_order_relaxed);
        }
        if (txn->Get(r_stor, MakeKey(k), &v).ok()) {
          reads.fetch_add(1, std::memory_order_relaxed);
        }
        if (ok) {
          (void)txn->Commit();
        } else {
          txn->Abort();
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true, std::memory_order_release);
  for (auto& th : writers) th.join();
  for (auto& th : reader_threads) th.join();
  auto elapsed = Clock::now() - start;

  result.seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
          .count();
  result.commits = commits.load();
  result.queries = reads.load();
  for (const Histogram& h : lag) result.latency.Merge(h);

  replica.Stop();
  shipper.Stop();
  return result;
}

void Run() {
  BenchScale scale = BenchScale::FromEnv();
  std::vector<int> rate_rows =
      ParseIntList(GetEnvString("SKEENA_BENCH_REPL_RATES", "500,2000"));
  std::vector<int> reader_cols = scale.connections;

  auto p50 = std::make_shared<ResultMatrix>(
      "Replication: commit-to-visible lag p50 (ms)", "Write rate");
  auto p99 = std::make_shared<ResultMatrix>(
      "Replication: commit-to-visible lag p99 (ms)", "Write rate");
  auto rps = std::make_shared<ResultMatrix>(
      "Replication: replica read throughput (reads/s)", "Write rate");
  auto wps = std::make_shared<ResultMatrix>(
      "Replication: achieved primary write rate (txn/s)", "Write rate");

  for (int rate : rate_rows) {
    for (int readers : reader_cols) {
      std::string row = std::to_string(rate) + "/s";
      std::string col = std::to_string(readers) + " readers";
      RegisterCell(
          "ReplLag/rate:" + std::to_string(rate) +
              "/readers:" + std::to_string(readers),
          [=] {
            RunResult r = RunCell(rate, readers, scale.duration_ms);
            p50->Set(row, col,
                     static_cast<double>(r.latency.Percentile(50)) / 1e6);
            p99->Set(row, col,
                     static_cast<double>(r.latency.Percentile(99)) / 1e6);
            rps->Set(row, col, r.Qps());
            wps->Set(row, col, r.Tps());
            return r;
          });
    }
  }
  ::benchmark::RunSpecifiedBenchmarks();
  p50->Print(3);
  p99->Print(3);
  rps->Print(1);
  wps->Print(1);
}

}  // namespace
}  // namespace skeena::bench

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  skeena::bench::Run();
  return 0;
}
