// Ablation: Skeena's pipelined commit (Section 4.5) vs. a synchronous
// commit that flushes both logs on the worker thread, and central vs.
// partitioned commit queues — on the cross-engine microbenchmark with an
// SSD-like log latency so the flush cost is visible.
//
// Expected shape: pipelining wins throughput at saturation (workers detach
// instead of waiting out the flush) and the partitioned queue relieves the
// central daemon at high connection counts.

#include "bench/common/bench_harness.h"

namespace skeena::bench {
namespace {

void Run() {
  BenchScale scale = BenchScale::FromEnv();
  MicroCache cache;

  auto matrix = std::make_shared<ResultMatrix>(
      "Ablation: commit protocol (50% InnoDB read-write micro, SSD log)",
      "Protocol");

  struct Variant {
    std::string label;
    CommitPipeline::Mode mode;
    size_t queues;
  };
  std::vector<Variant> variants = {
      {"pipelined, 1 queue", CommitPipeline::Mode::kPipelined, 1},
      {"pipelined, 4 queues", CommitPipeline::Mode::kPipelined, 4},
      {"synchronous flush", CommitPipeline::Mode::kSync, 1},
  };

  for (const auto& v : variants) {
    for (int conns : scale.connections) {
      RegisterCell("AblationCommit/" + v.label + "/conns:" +
                       std::to_string(conns),
                   [=, &cache] {
                     MicroConfig cfg = ScaledMicroConfig(MicroConfig{}, scale);
                     cfg.read_pct = 80;
                     cfg.stor_pct = 50;
                     cfg.pool_fraction = 2.0;
                     cfg.pipeline.mode = v.mode;
                     cfg.pipeline.num_queues = v.queues;
                     // SSD-priced log syncs: the pipelined/synchronous
                     // distinction only exists when flushes cost something.
                     cfg.log_latency = DeviceLatency::Ssd();
                     MicroWorkload* wl = cache.Get(cfg, true);
                     RunResult r = RunWorkload(
                         conns, scale.duration_ms,
                         [wl](int t, Rng& rng, uint64_t* q) {
                           return wl->RunOneTxn(t, rng, q);
                         });
                     matrix->Set(v.label, std::to_string(conns), r.Tps());
                     return r;
                   });
    }
  }

  ::benchmark::RunSpecifiedBenchmarks();
  matrix->Print();
}

}  // namespace
}  // namespace skeena::bench

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  skeena::bench::Run();
  return 0;
}
