// Ablation: Skeena's pipelined commit (Section 4.5) vs. a synchronous
// commit that flushes both logs on the worker thread, and central vs.
// partitioned commit queues — on the cross-engine microbenchmark with an
// SSD-like log latency so the flush cost is visible.
//
// Expected shape: pipelining wins throughput at saturation (workers detach
// instead of waiting out the flush) and the partitioned queue relieves the
// central daemon at high connection counts. The wakeup matrices quantify
// the parking-lot path: batched unparks drive syscall-wakeups-per-commit
// toward 1/batch-size in pipelined mode (the old condvar design was 1.0 by
// construction), while spin successes avoid the kernel entirely.

#include "bench/common/bench_harness.h"

#include <atomic>
#include <thread>

#include "log/log_manager.h"
#include "log/uring_queue.h"

namespace skeena::bench {
namespace {

void Run() {
  BenchScale scale = BenchScale::FromEnv();
  MicroCache cache;

  auto matrix = std::make_shared<ResultMatrix>(
      "Ablation: commit protocol (50% InnoDB read-write micro, SSD log)",
      "Protocol");
  auto wakeups = std::make_shared<ResultMatrix>(
      "Ablation: commit wakeups (syscall wakeups / commit)", "Protocol");
  auto parks = std::make_shared<ResultMatrix>(
      "Ablation: commit waits (waiter parks / commit)", "Protocol");

  struct Variant {
    std::string label;
    CommitPipeline::Mode mode;
    size_t queues;
  };
  std::vector<Variant> variants = {
      {"pipelined, 1 queue", CommitPipeline::Mode::kPipelined, 1},
      {"pipelined, 4 queues", CommitPipeline::Mode::kPipelined, 4},
      {"synchronous flush", CommitPipeline::Mode::kSync, 1},
  };

  for (const auto& v : variants) {
    for (int conns : scale.connections) {
      RegisterCell("AblationCommit/" + v.label + "/conns:" +
                       std::to_string(conns),
                   [=, &cache] {
                     MicroConfig cfg = ScaledMicroConfig(MicroConfig{}, scale);
                     cfg.read_pct = 80;
                     cfg.stor_pct = 50;
                     cfg.pool_fraction = 2.0;
                     cfg.pipeline.mode = v.mode;
                     cfg.pipeline.num_queues = v.queues;
                     // SSD-priced log syncs: the pipelined/synchronous
                     // distinction only exists when flushes cost something.
                     cfg.log_latency = DeviceLatency::Ssd();
                     MicroWorkload* wl = cache.Get(cfg, true);
                     // Workloads are cached per variant, so per-cell wakeup
                     // accounting is the delta across this run.
                     CommitPipeline::Stats before =
                         wl->db()->pipeline().stats();
                     RunResult r = RunWorkload(
                         conns, scale.duration_ms,
                         [wl](int t, Rng& rng, uint64_t* q) {
                           return wl->RunOneTxn(t, rng, q);
                         });
                     CommitPipeline::Stats after =
                         wl->db()->pipeline().stats();
                     uint64_t done = after.completed - before.completed;
                     uint64_t wakes =
                         (after.wake_syscalls - before.wake_syscalls) +
                         (after.daemon_wakes - before.daemon_wakes);
                     uint64_t parked =
                         after.waiter_parks - before.waiter_parks;
                     std::string col = std::to_string(conns);
                     matrix->Set(v.label, col, r.Tps());
                     wakeups->Set(v.label, col,
                                  done == 0 ? 0.0
                                            : static_cast<double>(wakes) /
                                                  static_cast<double>(done));
                     parks->Set(v.label, col,
                                done == 0 ? 0.0
                                          : static_cast<double>(parked) /
                                                static_cast<double>(done));
                     return r;
                   });
    }
  }

  // ---- Raw-speed log path: flush backend x group-commit window --------
  // Engine logs on real files (tables stay in memory), comparing the
  // synchronous pwrite file device against the segmented writer with and
  // without io_uring, across fixed and adaptive commit windows.
  auto backend_tput = std::make_shared<ResultMatrix>(
      "Ablation: log flush backend x commit window (commits/s)", "Backend");
  auto backend_p99 = std::make_shared<ResultMatrix>(
      "Ablation: log flush backend (p99 commit latency, ms)", "Backend");
  auto backend_wakes = std::make_shared<ResultMatrix>(
      "Ablation: log flush backend (syscall wakeups / commit)", "Backend");
  auto backend_flushes = std::make_shared<ResultMatrix>(
      "Ablation: log flush backend (log flushes / commit)", "Backend");

  struct Backend {
    std::string label;
    MicroConfig::LogDisk disk;
  };
  std::vector<Backend> backends = {
      {"sync pwrite file", MicroConfig::LogDisk::kFilePwrite},
      {"segmented", MicroConfig::LogDisk::kSegmented},
  };
  if (UringQueue::Supported()) {
    backends.push_back(
        {"segmented + io_uring", MicroConfig::LogDisk::kSegmentedUring});
  } else {
    std::printf(
        "note: io_uring unavailable (kernel/build); backend row skipped\n");
  }

  struct Window {
    std::string label;
    uint64_t base_us;
    uint64_t max_us;
    bool adaptive;
  };
  std::vector<Window> windows = {
      {"fixed 50us", 50, 50, false},
      {"fixed 1000us", 1000, 1000, false},
      {"adaptive 50-1000us", 50, 1000, true},
  };

  const int log_conns = scale.connections.back();
  for (const auto& b : backends) {
    for (const auto& w : windows) {
      RegisterCell(
          "AblationLogBackend/" + b.label + "/" + w.label, [=, &cache] {
            MicroConfig cfg = ScaledMicroConfig(MicroConfig{}, scale);
            cfg.read_pct = 80;
            cfg.stor_pct = 50;
            cfg.pool_fraction = 2.0;
            cfg.log_disk = b.disk;
            cfg.log.flush_interval_us = w.base_us;
            cfg.log.max_flush_interval_us = w.max_us;
            cfg.log.adaptive_flush = w.adaptive;
            MicroWorkload* wl = cache.Get(cfg, true);
            Database* db = wl->db();
            CommitPipeline::Stats before = db->pipeline().stats();
            uint64_t flushes_before =
                db->mem()->engine()->log()->flush_batches() +
                db->stor()->engine()->log()->flush_batches();
            RunResult r = RunWorkload(
                log_conns, scale.duration_ms,
                [wl](int t, Rng& rng, uint64_t* q) {
                  return wl->RunOneTxn(t, rng, q);
                });
            CommitPipeline::Stats after = db->pipeline().stats();
            uint64_t flushes =
                db->mem()->engine()->log()->flush_batches() +
                db->stor()->engine()->log()->flush_batches() - flushes_before;
            uint64_t done = after.completed - before.completed;
            uint64_t wakes = (after.wake_syscalls - before.wake_syscalls) +
                             (after.daemon_wakes - before.daemon_wakes);
            backend_tput->Set(b.label, w.label, r.Tps());
            backend_p99->Set(
                b.label, w.label,
                static_cast<double>(r.latency.Percentile(99)) / 1e6);
            backend_wakes->Set(b.label, w.label,
                               done == 0 ? 0.0
                                         : static_cast<double>(wakes) /
                                               static_cast<double>(done));
            backend_flushes->Set(b.label, w.label,
                                 done == 0 ? 0.0
                                           : static_cast<double>(flushes) /
                                                 static_cast<double>(done));
            return r;
          });
    }
  }

  // ---- Contended append: the lock-free reservation ring ---------------
  // Raw LogManager::Append throughput with no commit waiting: more
  // appenders must not collapse below a single appender (the old
  // mutex-staged buffer serialized here).
  auto append_matrix = std::make_shared<ResultMatrix>(
      "Ablation: contended log append (appends/s on the reservation ring)",
      "Threads");
  for (int threads : {1, 2, 4, 8}) {
    RegisterCell(
        "LogAppendContention/threads:" + std::to_string(threads), [=] {
          LogManager::Options lo;
          lo.buffer_bytes = 1 << 20;
          LogManager log(std::make_unique<MemDevice>(), lo);
          std::atomic<bool> stop{false};
          std::atomic<uint64_t> total{0};
          std::vector<std::thread> workers;
          for (int t = 0; t < threads; ++t) {
            workers.emplace_back([&] {
              const std::string payload(120, 'x');
              const std::span<const uint8_t> bytes{
                  reinterpret_cast<const uint8_t*>(payload.data()),
                  payload.size()};
              uint64_t n = 0;
              while (!stop.load(std::memory_order_relaxed)) {
                log.Append(bytes);
                ++n;
              }
              total.fetch_add(n, std::memory_order_relaxed);
            });
          }
          std::this_thread::sleep_for(
              std::chrono::milliseconds(scale.duration_ms));
          stop.store(true, std::memory_order_relaxed);
          for (auto& th : workers) th.join();
          RunResult r;
          r.seconds = static_cast<double>(scale.duration_ms) / 1000.0;
          r.commits = total.load();
          append_matrix->Set(std::to_string(threads), "appends/s", r.Tps());
          return r;
        });
  }

  ::benchmark::RunSpecifiedBenchmarks();
  matrix->Print();
  wakeups->Print(3);
  parks->Print(3);
  backend_tput->Print();
  backend_p99->Print(3);
  backend_wakes->Print(3);
  backend_flushes->Print(3);
  append_matrix->Print();
}

}  // namespace
}  // namespace skeena::bench

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  skeena::bench::Run();
  return 0;
}
