// Ablation: Skeena's pipelined commit (Section 4.5) vs. a synchronous
// commit that flushes both logs on the worker thread, and central vs.
// partitioned commit queues — on the cross-engine microbenchmark with an
// SSD-like log latency so the flush cost is visible.
//
// Expected shape: pipelining wins throughput at saturation (workers detach
// instead of waiting out the flush) and the partitioned queue relieves the
// central daemon at high connection counts. The wakeup matrices quantify
// the parking-lot path: batched unparks drive syscall-wakeups-per-commit
// toward 1/batch-size in pipelined mode (the old condvar design was 1.0 by
// construction), while spin successes avoid the kernel entirely.

#include "bench/common/bench_harness.h"

namespace skeena::bench {
namespace {

void Run() {
  BenchScale scale = BenchScale::FromEnv();
  MicroCache cache;

  auto matrix = std::make_shared<ResultMatrix>(
      "Ablation: commit protocol (50% InnoDB read-write micro, SSD log)",
      "Protocol");
  auto wakeups = std::make_shared<ResultMatrix>(
      "Ablation: commit wakeups (syscall wakeups / commit)", "Protocol");
  auto parks = std::make_shared<ResultMatrix>(
      "Ablation: commit waits (waiter parks / commit)", "Protocol");

  struct Variant {
    std::string label;
    CommitPipeline::Mode mode;
    size_t queues;
  };
  std::vector<Variant> variants = {
      {"pipelined, 1 queue", CommitPipeline::Mode::kPipelined, 1},
      {"pipelined, 4 queues", CommitPipeline::Mode::kPipelined, 4},
      {"synchronous flush", CommitPipeline::Mode::kSync, 1},
  };

  for (const auto& v : variants) {
    for (int conns : scale.connections) {
      RegisterCell("AblationCommit/" + v.label + "/conns:" +
                       std::to_string(conns),
                   [=, &cache] {
                     MicroConfig cfg = ScaledMicroConfig(MicroConfig{}, scale);
                     cfg.read_pct = 80;
                     cfg.stor_pct = 50;
                     cfg.pool_fraction = 2.0;
                     cfg.pipeline.mode = v.mode;
                     cfg.pipeline.num_queues = v.queues;
                     // SSD-priced log syncs: the pipelined/synchronous
                     // distinction only exists when flushes cost something.
                     cfg.log_latency = DeviceLatency::Ssd();
                     MicroWorkload* wl = cache.Get(cfg, true);
                     // Workloads are cached per variant, so per-cell wakeup
                     // accounting is the delta across this run.
                     CommitPipeline::Stats before =
                         wl->db()->pipeline().stats();
                     RunResult r = RunWorkload(
                         conns, scale.duration_ms,
                         [wl](int t, Rng& rng, uint64_t* q) {
                           return wl->RunOneTxn(t, rng, q);
                         });
                     CommitPipeline::Stats after =
                         wl->db()->pipeline().stats();
                     uint64_t done = after.completed - before.completed;
                     uint64_t wakes =
                         (after.wake_syscalls - before.wake_syscalls) +
                         (after.daemon_wakes - before.daemon_wakes);
                     uint64_t parked =
                         after.waiter_parks - before.waiter_parks;
                     std::string col = std::to_string(conns);
                     matrix->Set(v.label, col, r.Tps());
                     wakeups->Set(v.label, col,
                                  done == 0 ? 0.0
                                            : static_cast<double>(wakes) /
                                                  static_cast<double>(done));
                     parks->Set(v.label, col,
                                done == 0 ? 0.0
                                          : static_cast<double>(parked) /
                                                static_cast<double>(done));
                     return r;
                   });
    }
  }

  ::benchmark::RunSpecifiedBenchmarks();
  matrix->Print();
  wakeups->Print(3);
  parks->Print(3);
}

}  // namespace
}  // namespace skeena::bench

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  skeena::bench::Run();
  return 0;
}
