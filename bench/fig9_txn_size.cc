// Reproduces paper Figure 9: storage-resident workload with 50% InnoDB
// accesses under varying transaction sizes (10/100/500 queries) and
// read/write ratios (8:2, 2:8), at one connection and at saturation.
// Reported in QPS like the paper (longer transactions lower TPS but keep
// QPS comparable; CSR index recycling keeps up, Section 6.5).

#include "bench/common/bench_harness.h"

namespace skeena::bench {
namespace {

void Run() {
  BenchScale scale = BenchScale::FromEnv();
  MicroCache cache;
  int max_conns = scale.connections.back();
  std::vector<int> conn_set = {1, max_conns};
  std::vector<int> sizes = {10, 100, 500};
  std::vector<std::pair<std::string, int>> ratios = {{"r:w=8:2", 80},
                                                     {"r:w=2:8", 20}};

  std::vector<std::shared_ptr<ResultMatrix>> matrices;
  for (int conns : conn_set) {
    auto matrix = std::make_shared<ResultMatrix>(
        "Figure 9: QPS at " + std::to_string(conns) +
            " connection(s), 50% InnoDB, storage-resident",
        "Ratio/size");
    matrices.push_back(matrix);
    for (const auto& [rlabel, read_pct] : ratios) {
      for (int size : sizes) {
        RegisterCell("Fig9/conns:" + std::to_string(conns) + "/" + rlabel +
                         "/size:" + std::to_string(size),
                     [=, &cache] {
                       MicroConfig cfg =
                           ScaledMicroConfig(MicroConfig{}, scale);
                       cfg.read_pct = read_pct;
                       cfg.stor_pct = 50;
                       cfg.ops_per_txn = size;
                       cfg.pool_fraction = 0.1;
                       MicroWorkload* wl = cache.Get(
                           cfg, true, DeviceLatency::TmpfsStack());
                       RunResult r = RunWorkload(
                           conns, scale.duration_ms,
                           [wl](int t, Rng& rng, uint64_t* q) {
                             return wl->RunOneTxn(t, rng, q);
                           });
                       matrix->Set(rlabel,
                                   "txn size=" + std::to_string(size),
                                   r.Qps());
                       return r;
                     });
      }
    }
  }

  // Section 6.5 also mixes long and short transactions: a fixed share of
  // connections run only 500-query transactions; CSR recycling must keep
  // the partition count bounded and QPS unaffected.
  auto mix_matrix = std::make_shared<ResultMatrix>(
      "Figure 9 (companion): long/short mix at " +
          std::to_string(max_conns) + " connections",
      "Long-txn connections");
  for (int long_pct : {0, 10, 20}) {
    RegisterCell("Fig9/longmix:" + std::to_string(long_pct), [=, &cache] {
      MicroConfig short_cfg = ScaledMicroConfig(MicroConfig{}, scale);
      short_cfg.read_pct = 80;
      short_cfg.stor_pct = 50;
      short_cfg.pool_fraction = 0.1;
      MicroWorkload* wl = cache.Get(short_cfg, true);
      int long_threads = max_conns * long_pct / 100;
      RunResult r = RunWorkload(
          max_conns, scale.duration_ms,
          [wl, long_threads](int t, Rng& rng, uint64_t* q) {
            // Long connections issue 50 micro-transactions back to back to
            // emulate a 500-query transaction's CSR lifetime.
            if (t < long_threads) {
              Status st;
              for (int i = 0; i < 50; ++i) {
                st = wl->RunOneTxn(t, rng, q);
                if (!st.ok()) return st;
              }
              return st;
            }
            return wl->RunOneTxn(t, rng, q);
          });
      mix_matrix->Set(std::to_string(long_pct) + "%", "QPS", r.Qps());
      mix_matrix->Set(std::to_string(long_pct) + "%", "CSR partitions",
                      static_cast<double>(wl->db()->csr().PartitionCount()));
      return r;
    });
  }

  ::benchmark::RunSpecifiedBenchmarks();
  for (const auto& m : matrices) m->Print();
  mix_matrix->Print();
}

}  // namespace
}  // namespace skeena::bench

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  skeena::bench::Run();
  return 0;
}
