// History-recording overhead matrix: the verification hook
// (DatabaseOptions::record_history, see DESIGN.md "Verification") measured
// against the same microbenchmark cells with the hook disabled.
//
// Expected shape: disabled recording is free — the per-op cost is one
// null-pointer branch, so the "off" rows must match a plain build within
// noise (the acceptance bar rides on ablation_csr's hit path staying
// flat). Enabled recording pays a TxnHistory allocation per transaction
// plus an op append per access and a shard push at finish; the point of
// this matrix is to put a number on that so fuzz runs can be sized.

#include "bench/common/bench_harness.h"

#include "core/history.h"

namespace skeena::bench {
namespace {

void Run() {
  BenchScale scale = BenchScale::FromEnv();
  int conns = scale.connections.back();
  MicroCache cache;

  auto matrix = std::make_shared<ResultMatrix>(
      "History recording overhead: TPS, hook off vs on", "Workload");

  struct Cell {
    std::string label;
    int stor_pct;
    int read_pct;
  };
  for (const Cell& cell : {Cell{"mem-only 80/20", 0, 80},
                           Cell{"50% cross 80/20", 50, 80},
                           Cell{"50% cross 20/80", 50, 20},
                           Cell{"stor-heavy 80/20", 90, 80}}) {
    for (bool record : {false, true}) {
      std::string name = "RecordingOverhead/" + cell.label +
                         (record ? "/on" : "/off");
      RegisterCell(name, [=, &cache] {
        MicroConfig cfg = ScaledMicroConfig(MicroConfig{}, scale);
        cfg.stor_pct = cell.stor_pct;
        cfg.read_pct = cell.read_pct;
        cfg.record_history = record;
        MicroWorkload* wl = cache.Get(cfg, true);
        RunResult r = RunWorkload(conns, scale.duration_ms,
                                  [wl](int t, Rng& rng, uint64_t* q) {
                                    return wl->RunOneTxn(t, rng, q);
                                  });
        matrix->Set(cell.label, record ? "on" : "off", r.Tps());
        if (record) {
          // Drain the recorder between cells so histories from one run
          // don't inflate the next cell's memory footprint.
          auto folded = wl->db()->recorder()->Fold();
          matrix->Set(cell.label, "txns recorded",
                      static_cast<double>(folded.size()));
        }
        return r;
      });
    }
  }

  ::benchmark::RunSpecifiedBenchmarks();
  matrix->Print(0);
}

}  // namespace
}  // namespace skeena::bench

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  skeena::bench::Run();
  return 0;
}
