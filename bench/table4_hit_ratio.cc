// Reproduces paper Table 4: throughput of the storage-resident 50% InnoDB
// cross-engine workload (5/5 split, 80/20 r:w) under varying buffer-pool
// hit ratios, on a simulated SSD (Section 6.7).
//
// Expected shape: a single connection is largely insensitive (its working
// set stays cached); at saturation, throughput degrades as the hit ratio
// falls because more accesses pay the SSD latency.

#include "bench/common/bench_harness.h"

namespace skeena::bench {
namespace {

void Run() {
  BenchScale scale = BenchScale::FromEnv();
  MicroCache cache;
  std::vector<int> conn_set = {1, scale.connections.back()};
  // Pool fractions chosen to land near the paper's 100/99/90/70% targets.
  struct Target {
    std::string label;
    double pool_fraction;
  };
  std::vector<Target> targets = {
      {"100%", 1.5}, {"99%", 0.8}, {"90%", 0.45}, {"70%", 0.15}};

  auto matrix = std::make_shared<ResultMatrix>(
      "Table 4: TPS under varying buffer pool hit ratios (SSD latency)",
      "Connections");
  auto measured = std::make_shared<ResultMatrix>(
      "Table 4 (measured hit ratios, %)", "Connections");

  for (int conns : conn_set) {
    for (const auto& target : targets) {
      RegisterCell("Table4/conns:" + std::to_string(conns) + "/target:" +
                       target.label,
                   [=, &cache] {
                     MicroConfig cfg = ScaledMicroConfig(MicroConfig{}, scale);
                     cfg.read_pct = 80;
                     cfg.stor_pct = 50;
                     cfg.pool_fraction = target.pool_fraction;
                     MicroWorkload* wl =
                         cache.Get(cfg, true, DeviceLatency::Ssd());
                     wl->db()->stor()->engine()->pool()->ResetStats();
                     RunResult r = RunWorkload(
                         conns, scale.duration_ms,
                         [wl](int t, Rng& rng, uint64_t* q) {
                           return wl->RunOneTxn(t, rng, q);
                         });
                     matrix->Set(std::to_string(conns), target.label,
                                 r.Tps());
                     measured->Set(
                         std::to_string(conns), target.label,
                         wl->db()->stor()->engine()->pool()->HitRatio() *
                             100.0);
                     return r;
                   });
    }
  }

  ::benchmark::RunSpecifiedBenchmarks();
  matrix->Print();
  measured->Print(1);
}

}  // namespace
}  // namespace skeena::bench

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  skeena::bench::Run();
  return 0;
}
