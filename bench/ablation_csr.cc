// Ablation: CSR design knobs called out in DESIGN.md — partition capacity
// (paper: 1000 entries per index), recycle period (paper: once per 5000
// accesses), and the anchor-engine choice (Section 4.3 argues for the
// memory engine) — measured on the cross-engine read-write microbenchmark.
//
// Expected shape: throughput is flat across capacity/recycle settings
// (CSR work is negligible next to engine work — the fast-slow bet); tiny
// partitions only raise the Skeena abort share slightly; anchoring at the
// storage engine taxes every memdb-only transaction with trx-sys-mutex
// snapshot acquisition.

#include "bench/common/bench_harness.h"

#include <atomic>

namespace skeena::bench {
namespace {

/// Read-path scalability: raw SelectSnapshot throughput on a pre-populated
/// registry, threads x hit ratio. A "hit" probes an anchor key that already
/// carries a mapping (Algorithm 1's common case — lock-free after the RCU
/// rewrite, zero shared writes); a "miss" selects at a fresh anchor and
/// must install a mapping under the writer mutex. The hit-dominated cells
/// are the ones the paper's Table 4 bet rides on: they must scale with
/// cores instead of serializing on the old list latch.
void RunReadPathMatrix(const BenchScale& scale,
                       const std::shared_ptr<ResultMatrix>& matrix) {
  static constexpr Timestamp kPrepopKeys = 500;
  for (int hit_pct : {100, 90, 50}) {
    std::string row = std::to_string(hit_pct) + "% hit";
    for (int threads : {1, 2, 4, 8}) {
      std::string cell = "AblationCsr/readpath:hit" +
                         std::to_string(hit_pct) + "/threads" +
                         std::to_string(threads);
      RegisterCell(cell, [=] {
        SnapshotRegistry::Options opts;
        opts.partition_capacity = 1000;
        opts.recycle_period = 0;  // isolate the read path
        auto csr = std::make_shared<SnapshotRegistry>(opts);
        for (Timestamp i = 1; i <= kPrepopKeys; ++i) {
          (void)csr->CommitCheck(i * 10, i * 10);
        }
        auto fresh_anchor =
            std::make_shared<std::atomic<Timestamp>>(kPrepopKeys * 10);
        RunResult r = RunWorkload(
            threads, scale.duration_ms,
            [csr, fresh_anchor, hit_pct](int, Rng& rng, uint64_t* queries) {
              (*queries)++;
              Timestamp anchor;
              if (static_cast<int>(rng.Uniform(100)) < hit_pct) {
                anchor = 10 * (1 + rng.Uniform(kPrepopKeys));
              } else {
                anchor = fresh_anchor->fetch_add(
                             10, std::memory_order_relaxed) +
                         10;
              }
              auto sel = csr->SelectSnapshot(anchor, [fresh_anchor] {
                return fresh_anchor->load(std::memory_order_relaxed) + 1;
              });
              return sel.ok() ? Status::OK() : sel.status();
            });
        matrix->Set(row, std::to_string(threads), r.Tps() / 1e6);
        return r;
      });
    }
  }
}

void Run() {
  BenchScale scale = BenchScale::FromEnv();
  int conns = scale.connections.back();
  MicroCache cache;

  auto read_matrix = std::make_shared<ResultMatrix>(
      "Read-path scalability: SelectSnapshot Mops/s (threads x hit ratio)",
      "Hit ratio");
  RunReadPathMatrix(scale, read_matrix);

  auto base_config = [&] {
    MicroConfig cfg = ScaledMicroConfig(MicroConfig{}, scale);
    cfg.read_pct = 80;
    cfg.stor_pct = 50;
    cfg.pool_fraction = 2.0;
    return cfg;
  };

  auto cap_matrix = std::make_shared<ResultMatrix>(
      "Ablation: CSR partition capacity (50% InnoDB read-write micro)",
      "Capacity");
  for (size_t capacity : {16ul, 128ul, 1000ul, 8192ul}) {
    RegisterCell("AblationCsr/capacity:" + std::to_string(capacity),
                 [=, &cache] {
                   MicroConfig cfg = base_config();
                   cfg.csr.partition_capacity = capacity;
                   MicroWorkload* wl = cache.Get(cfg, true);
                   RunResult r = RunWorkload(
                       conns, scale.duration_ms,
                       [wl](int t, Rng& rng, uint64_t* q) {
                         return wl->RunOneTxn(t, rng, q);
                       });
                   cap_matrix->Set(std::to_string(capacity), "TPS", r.Tps());
                   cap_matrix->Set(std::to_string(capacity),
                                   "skeena abort %",
                                   r.SkeenaAbortRate() * 100.0);
                   cap_matrix->Set(
                       std::to_string(capacity), "partitions",
                       static_cast<double>(wl->db()->csr().PartitionCount()));
                   return r;
                 });
  }

  auto recycle_matrix = std::make_shared<ResultMatrix>(
      "Ablation: CSR recycle period", "Period");
  for (uint64_t period : {500ull, 5000ull, 50000ull}) {
    RegisterCell("AblationCsr/recycle:" + std::to_string(period),
                 [=, &cache] {
                   MicroConfig cfg = base_config();
                   cfg.csr.recycle_period = period;
                   MicroWorkload* wl = cache.Get(cfg, true);
                   RunResult r = RunWorkload(
                       conns, scale.duration_ms,
                       [wl](int t, Rng& rng, uint64_t* q) {
                         return wl->RunOneTxn(t, rng, q);
                       });
                   recycle_matrix->Set(std::to_string(period), "TPS",
                                       r.Tps());
                   recycle_matrix->Set(
                       std::to_string(period), "partitions",
                       static_cast<double>(wl->db()->csr().PartitionCount()));
                   recycle_matrix->Set(
                       std::to_string(period), "recycled",
                       static_cast<double>(
                           wl->db()->stats().csr.partitions_recycled));
                   return r;
                 });
  }

  auto anchor_matrix = std::make_shared<ResultMatrix>(
      "Ablation: anchor engine choice (Section 4.3)", "Anchor");
  for (auto [label, anchor, stor_pct] :
       {std::tuple<std::string, EngineKind, int>{"mem anchor, mem-only txns",
                                                 EngineKind::kMem, 0},
        {"stor anchor, mem-only txns", EngineKind::kStor, 0},
        {"mem anchor, 50% cross", EngineKind::kMem, 50},
        {"stor anchor, 50% cross", EngineKind::kStor, 50}}) {
    RegisterCell("AblationCsr/anchor:" + label, [=, &cache] {
      MicroConfig cfg = base_config();
      cfg.anchor = anchor;
      cfg.stor_pct = stor_pct;
      MicroWorkload* wl = cache.Get(cfg, true);
      RunResult r = RunWorkload(conns, scale.duration_ms,
                                [wl](int t, Rng& rng, uint64_t* q) {
                                  return wl->RunOneTxn(t, rng, q);
                                });
      anchor_matrix->Set(label, "TPS", r.Tps());
      return r;
    });
  }

  ::benchmark::RunSpecifiedBenchmarks();
  read_matrix->Print(2);
  cap_matrix->Print(2);
  recycle_matrix->Print(2);
  anchor_matrix->Print(0);
}

}  // namespace
}  // namespace skeena::bench

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  skeena::bench::Run();
  return 0;
}
