// Ablation: CSR design knobs called out in DESIGN.md — partition capacity
// (paper: 1000 entries per index), recycle period (paper: once per 5000
// accesses), and the anchor-engine choice (Section 4.3 argues for the
// memory engine) — measured on the cross-engine read-write microbenchmark.
//
// Expected shape: throughput is flat across capacity/recycle settings
// (CSR work is negligible next to engine work — the fast-slow bet); tiny
// partitions only raise the Skeena abort share slightly; anchoring at the
// storage engine taxes every memdb-only transaction with trx-sys-mutex
// snapshot acquisition.

#include "bench/common/bench_harness.h"

namespace skeena::bench {
namespace {

void Run() {
  BenchScale scale = BenchScale::FromEnv();
  int conns = scale.connections.back();
  MicroCache cache;

  auto base_config = [&] {
    MicroConfig cfg = ScaledMicroConfig(MicroConfig{}, scale);
    cfg.read_pct = 80;
    cfg.stor_pct = 50;
    cfg.pool_fraction = 2.0;
    return cfg;
  };

  auto cap_matrix = std::make_shared<ResultMatrix>(
      "Ablation: CSR partition capacity (50% InnoDB read-write micro)",
      "Capacity");
  for (size_t capacity : {16ul, 128ul, 1000ul, 8192ul}) {
    RegisterCell("AblationCsr/capacity:" + std::to_string(capacity),
                 [=, &cache] {
                   MicroConfig cfg = base_config();
                   cfg.csr.partition_capacity = capacity;
                   MicroWorkload* wl = cache.Get(cfg, true);
                   RunResult r = RunWorkload(
                       conns, scale.duration_ms,
                       [wl](int t, Rng& rng, uint64_t* q) {
                         return wl->RunOneTxn(t, rng, q);
                       });
                   cap_matrix->Set(std::to_string(capacity), "TPS", r.Tps());
                   cap_matrix->Set(std::to_string(capacity),
                                   "skeena abort %",
                                   r.SkeenaAbortRate() * 100.0);
                   cap_matrix->Set(
                       std::to_string(capacity), "partitions",
                       static_cast<double>(wl->db()->csr().PartitionCount()));
                   return r;
                 });
  }

  auto recycle_matrix = std::make_shared<ResultMatrix>(
      "Ablation: CSR recycle period", "Period");
  for (uint64_t period : {500ull, 5000ull, 50000ull}) {
    RegisterCell("AblationCsr/recycle:" + std::to_string(period),
                 [=, &cache] {
                   MicroConfig cfg = base_config();
                   cfg.csr.recycle_period = period;
                   MicroWorkload* wl = cache.Get(cfg, true);
                   RunResult r = RunWorkload(
                       conns, scale.duration_ms,
                       [wl](int t, Rng& rng, uint64_t* q) {
                         return wl->RunOneTxn(t, rng, q);
                       });
                   recycle_matrix->Set(std::to_string(period), "TPS",
                                       r.Tps());
                   recycle_matrix->Set(
                       std::to_string(period), "partitions",
                       static_cast<double>(wl->db()->csr().PartitionCount()));
                   recycle_matrix->Set(
                       std::to_string(period), "recycled",
                       static_cast<double>(
                           wl->db()->stats().csr.partitions_recycled));
                   return r;
                 });
  }

  auto anchor_matrix = std::make_shared<ResultMatrix>(
      "Ablation: anchor engine choice (Section 4.3)", "Anchor");
  for (auto [label, anchor, stor_pct] :
       {std::tuple<std::string, EngineKind, int>{"mem anchor, mem-only txns",
                                                 EngineKind::kMem, 0},
        {"stor anchor, mem-only txns", EngineKind::kStor, 0},
        {"mem anchor, 50% cross", EngineKind::kMem, 50},
        {"stor anchor, 50% cross", EngineKind::kStor, 50}}) {
    RegisterCell("AblationCsr/anchor:" + label, [=, &cache] {
      MicroConfig cfg = base_config();
      cfg.anchor = anchor;
      cfg.stor_pct = stor_pct;
      MicroWorkload* wl = cache.Get(cfg, true);
      RunResult r = RunWorkload(conns, scale.duration_ms,
                                [wl](int t, Rng& rng, uint64_t* q) {
                                  return wl->RunOneTxn(t, rng, q);
                                });
      anchor_matrix->Set(label, "TPS", r.Tps());
      return r;
    });
  }

  ::benchmark::RunSpecifiedBenchmarks();
  cap_matrix->Print(2);
  recycle_matrix->Print(2);
  anchor_matrix->Print(0);
}

}  // namespace
}  // namespace skeena::bench

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  skeena::bench::Run();
  return 0;
}
