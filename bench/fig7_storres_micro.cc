// Reproduces paper Figure 7: storage-resident microbenchmark throughput vs.
// connections for (a) read-only, (b) read-write, (c) write-only.
//
// Expected shape (Section 6.4): once InnoDB accesses traverse the storage
// stack (buffer pool misses), Skeena's CSR cost is negligible and
// performance improves monotonically with the share of accesses served by
// the memory engine: ERMIA > 30% > 50% > 80% > 100% InnoDB.

#include "bench/common/bench_harness.h"

namespace skeena::bench {
namespace {

void Run() {
  BenchScale scale = BenchScale::FromEnv();
  MicroCache cache;
  struct Panel {
    std::string label;
    int read_pct;
  };
  std::vector<Panel> panels = {
      {"(a) Read-only", 100}, {"(b) Read-write", 80}, {"(c) Write-only", 0}};
  std::vector<std::shared_ptr<ResultMatrix>> matrices;

  for (const auto& panel : panels) {
    auto matrix = std::make_shared<ResultMatrix>(
        "Figure 7" + panel.label +
            ": storage-resident micro, TPS vs connections",
        "Scheme");
    matrices.push_back(matrix);
    for (const auto& scheme : StorageResidentSchemes()) {
      for (int conns : scale.connections) {
        RegisterCell("Fig7/" + panel.label + "/" + scheme.label + "/conns:" +
                         std::to_string(conns),
                     [=, &cache] {
                       MicroConfig cfg =
                           ScaledMicroConfig(MicroConfig{}, scale);
                       cfg.read_pct = panel.read_pct;
                       cfg.stor_pct = scheme.stor_pct;
                       cfg.pool_fraction = 0.1;  // storage-resident
                       MicroWorkload* wl = cache.Get(
                           cfg, scheme.skeena_on,
                           DeviceLatency::TmpfsStack());
                       RunResult r = RunWorkload(
                           conns, scale.duration_ms,
                           [wl](int t, Rng& rng, uint64_t* q) {
                             return wl->RunOneTxn(t, rng, q);
                           });
                       matrix->Set(scheme.label, std::to_string(conns),
                                   r.Tps());
                       return r;
                     });
      }
    }
  }

  ::benchmark::RunSpecifiedBenchmarks();
  for (const auto& m : matrices) m->Print();
}

}  // namespace
}  // namespace skeena::bench

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  skeena::bench::Run();
  return 0;
}
