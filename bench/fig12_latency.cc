// Reproduces paper Figure 12: 95th-percentile transaction latency of the
// storage-resident microbenchmarks at a single connection (idle system) and
// at saturation.
//
// Expected shape (Section 6.8): Skeena adds no visible latency to
// single-engine transactions (ERMIA-S tracks ERMIA; InnoDB-S adds a small
// constant); latency grows with the share of InnoDB accesses; everything
// rises at saturation.

#include "bench/common/bench_harness.h"

namespace skeena::bench {
namespace {

void Run() {
  BenchScale scale = BenchScale::FromEnv();
  MicroCache cache;
  std::vector<int> conn_set = {1, scale.connections.back()};
  struct Mix {
    std::string label;
    int read_pct;
  };
  std::vector<Mix> mixes = {
      {"Read-only", 100}, {"Read-write", 80}, {"Write-only", 0}};

  std::vector<std::shared_ptr<ResultMatrix>> matrices;
  for (int conns : conn_set) {
    auto matrix = std::make_shared<ResultMatrix>(
        "Figure 12: p95 latency (ms), storage-resident, " +
            std::to_string(conns) + " connection(s)",
        "Scheme");
    matrices.push_back(matrix);
    for (const auto& scheme : StorageResidentSchemes()) {
      for (const auto& mix : mixes) {
        RegisterCell("Fig12/conns:" + std::to_string(conns) + "/" +
                         scheme.label + "/" + mix.label,
                     [=, &cache] {
                       MicroConfig cfg =
                           ScaledMicroConfig(MicroConfig{}, scale);
                       cfg.read_pct = mix.read_pct;
                       cfg.stor_pct = scheme.stor_pct;
                       cfg.pool_fraction = 0.1;
                       MicroWorkload* wl = cache.Get(
                           cfg, scheme.skeena_on,
                           DeviceLatency::TmpfsStack());
                       RunResult r = RunWorkload(
                           conns, scale.duration_ms,
                           [wl](int t, Rng& rng, uint64_t* q) {
                             return wl->RunOneTxn(t, rng, q);
                           });
                       matrix->Set(
                           scheme.label, mix.label,
                           static_cast<double>(r.latency.Percentile(95)) /
                               1e6);
                       return r;
                     });
      }
    }
  }

  ::benchmark::RunSpecifiedBenchmarks();
  for (const auto& m : matrices) m->Print(3);
}

}  // namespace
}  // namespace skeena::bench

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  skeena::bench::Run();
  return 0;
}
