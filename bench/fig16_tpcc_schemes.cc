// Reproduces paper Figure 16: TPC-C throughput under the recommended
// end-to-end placement schemes (Section 6.9):
//   New-Order-Opt: CUSTOMER + ITEM in ERMIA (optimize New-Order)
//   Payment-Opt:   CUSTOMER in ERMIA (optimize Payment)
//   Archive:       everything except HISTORY in ERMIA (storage-cost play)
// against 100% InnoDB and 100% ERMIA baselines.
//
// Expected shape: Archive overlaps 100% ERMIA (HISTORY is insert-only and
// never queried); the -Opt schemes lift their target transactions over
// InnoDB while staying below full ERMIA.

#include "bench/common/bench_harness.h"

namespace skeena::bench {
namespace {

using TxnMethod = Status (Tpcc::*)(Rng&, uint16_t, uint64_t*);

void Run() {
  BenchScale scale = BenchScale::FromEnv();
  const auto& order = Tpcc::PlacementOrder();

  struct Scheme {
    std::string label;
    std::set<std::string> mem_tables;
  };
  std::vector<Scheme> schemes;
  schemes.push_back({"InnoDB", {}});
  schemes.push_back({"Payment-Opt", {"customer"}});
  schemes.push_back({"New-Order-Opt", {"customer", "item"}});
  {
    Scheme archive{"Archive", {}};
    for (const auto& t : order) {
      if (t != "history") archive.mem_tables.insert(t);
    }
    schemes.push_back(archive);
  }
  {
    Scheme ermia{"ERMIA", {}};
    for (const auto& t : order) ermia.mem_tables.insert(t);
    schemes.push_back(ermia);
  }

  struct TxnType {
    std::string label;
    TxnMethod method;
  };
  std::vector<TxnType> txns = {{"New-Order", &Tpcc::NewOrder},
                               {"Payment", &Tpcc::Payment},
                               {"Delivery", &Tpcc::Delivery},
                               {"Stock-Level", &Tpcc::StockLevel},
                               {"Order-Status", &Tpcc::OrderStatus}};

  std::vector<std::shared_ptr<ResultMatrix>> matrices;
  auto mix_matrix = std::make_shared<ResultMatrix>(
      "Figure 16(a) Full-Mix: TPS vs connections", "Scheme");
  matrices.push_back(mix_matrix);
  std::map<std::string, std::shared_ptr<ResultMatrix>> txn_matrices;
  for (const auto& txn : txns) {
    txn_matrices[txn.label] = std::make_shared<ResultMatrix>(
        "Figure 16 " + txn.label + ": TPS vs connections", "Scheme");
    matrices.push_back(txn_matrices[txn.label]);
  }

  for (const auto& scheme : schemes) {
    auto inst = std::make_shared<std::shared_ptr<Tpcc>>();
    auto make = [=] {
      if (!*inst) {
        TpccConfig cfg = ScaledTpccConfig(TpccConfig{}, scale);
                cfg.data_latency = DeviceLatency::TmpfsStack();
        cfg.mem_tables = scheme.mem_tables;
        *inst = std::make_shared<Tpcc>(cfg);
      }
      return inst->get();
    };
    for (int conns : scale.connections) {
      RegisterCell(
          "Fig16/Full-Mix/" + scheme.label + "/conns:" +
              std::to_string(conns),
          [=, label = scheme.label] {
            Tpcc* t = make();
            RunResult r = RunWorkload(conns, scale.duration_ms,
                                      [t](int tid, Rng& rng, uint64_t* q) {
                                        return t->RunMix(tid, rng, q);
                                      });
            mix_matrix->Set(label, std::to_string(conns), r.Tps());
            return r;
          });
      for (const auto& txn : txns) {
        RegisterCell(
            "Fig16/" + txn.label + "/" + scheme.label + "/conns:" +
                std::to_string(conns),
            [=, label = scheme.label, method = txn.method,
             tm = txn_matrices.at(txn.label)] {
              Tpcc* t = make();
              RunResult r = RunWorkload(
                  conns, scale.duration_ms,
                  [t, method](int tid, Rng& rng, uint64_t* q) {
                    uint16_t w = t->HomeWarehouse(tid, rng);
                    return (t->*method)(rng, w, q);
                  });
              tm->Set(label, std::to_string(conns), r.Tps());
              return r;
            });
      }
    }
  }

  ::benchmark::RunSpecifiedBenchmarks();
  for (const auto& m : matrices) m->Print();
}

}  // namespace
}  // namespace skeena::bench

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  skeena::bench::Run();
  return 0;
}
