#ifndef SKEENA_CORE_ADAPTERS_H_
#define SKEENA_CORE_ADAPTERS_H_

#include <memory>
#include <set>
#include <string>

#include "common/epoch.h"
#include "core/engine_iface.h"
#include "memdb/mem_engine.h"
#include "stordb/stor_engine.h"

namespace skeena {

/// EngineIface adapter over the memory-optimized engine. Mirrors the
/// paper's ERMIA integration: snapshots are engine timestamps; "latest"
/// begin reads the clock.
class MemEngineAdapter : public EngineIface {
 public:
  /// `epoch` is the shared reclamation domain threaded into the engine
  /// (the database-owned manager); null lets the engine own a private one.
  MemEngineAdapter(std::unique_ptr<StorageDevice> log_device,
                   memdb::MemEngine::Options options,
                   EpochManager* epoch = nullptr);

  EngineKind kind() const override { return EngineKind::kMem; }

  TableId CreateTable(const std::string& name,
                      size_t max_value_size) override;

  Timestamp LatestSnapshot() const override;
  std::unique_ptr<SubTxn> Begin(IsolationLevel iso,
                                Timestamp snapshot) override;
  Status RefreshSnapshot(SubTxn* sub, Timestamp snapshot) override;

  Status Get(SubTxn* sub, TableId table, const Key& key,
             std::string* value) override;
  Status Put(SubTxn* sub, TableId table, const Key& key,
             std::string_view value) override;
  Status Delete(SubTxn* sub, TableId table, const Key& key) override;
  Status Scan(SubTxn* sub, TableId table, const Key& lower, size_t limit,
              const std::function<bool(const Key&, const std::string&)>& cb)
      override;

  bool IsReadOnly(const SubTxn* sub) const override;
  Status PreCommit(SubTxn* sub, GlobalTxnId gtid, bool cross_engine,
                   Timestamp* commit_ts) override;
  Lsn PostCommit(SubTxn* sub, GlobalTxnId gtid, bool cross_engine) override;
  void Abort(SubTxn* sub) override;

  Lsn CurrentLsn() const override;
  Lsn DurableLsn() const override;
  Status FlushLog() override;
  void WaitDurable(Lsn lsn) override;
  LogManager* Log() override;

  Status Recover(const std::set<GlobalTxnId>& excluded) override;
  const StorageDevice* LogDevice() const override;

  memdb::MemEngine* engine() { return &engine_; }

 private:
  memdb::MemEngine engine_;
};

/// EngineIface adapter over the storage-centric engine. CSR snapshots are
/// serialisation numbers; Begin with a CSR snapshot builds the adjusted
/// read view (paper Section 5).
class StorEngineAdapter : public EngineIface {
 public:
  /// `epoch` is the shared reclamation domain threaded into the engine
  /// (the database-owned manager); null lets the engine own a private one.
  StorEngineAdapter(std::unique_ptr<StorageDevice> log_device,
                    stordb::StorEngine::Options options,
                    EpochManager* epoch = nullptr);

  EngineKind kind() const override { return EngineKind::kStor; }

  TableId CreateTable(const std::string& name,
                      size_t max_value_size) override;

  Timestamp LatestSnapshot() const override;
  std::unique_ptr<SubTxn> Begin(IsolationLevel iso,
                                Timestamp snapshot) override;
  Status RefreshSnapshot(SubTxn* sub, Timestamp snapshot) override;

  Status Get(SubTxn* sub, TableId table, const Key& key,
             std::string* value) override;
  Status Put(SubTxn* sub, TableId table, const Key& key,
             std::string_view value) override;
  Status Delete(SubTxn* sub, TableId table, const Key& key) override;
  Status Scan(SubTxn* sub, TableId table, const Key& lower, size_t limit,
              const std::function<bool(const Key&, const std::string&)>& cb)
      override;

  bool IsReadOnly(const SubTxn* sub) const override;
  Status PreCommit(SubTxn* sub, GlobalTxnId gtid, bool cross_engine,
                   Timestamp* commit_ts) override;
  Lsn PostCommit(SubTxn* sub, GlobalTxnId gtid, bool cross_engine) override;
  void Abort(SubTxn* sub) override;

  Lsn CurrentLsn() const override;
  Lsn DurableLsn() const override;
  Status FlushLog() override;
  void WaitDurable(Lsn lsn) override;
  LogManager* Log() override;

  Status Recover(const std::set<GlobalTxnId>& excluded) override;
  const StorageDevice* LogDevice() const override;

  stordb::StorEngine* engine() { return &engine_; }

 private:
  stordb::StorEngine engine_;
};

}  // namespace skeena

#endif  // SKEENA_CORE_ADAPTERS_H_
