#include "core/database.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/transaction.h"
#include "log/log_records.h"
#include "log/segmented_device.h"

namespace skeena {

namespace {

std::unique_ptr<StorageDevice> MakeDevice(const std::string& data_dir,
                                          const std::string& name,
                                          DeviceLatency latency) {
  if (data_dir.empty()) {
    return std::make_unique<MemDevice>(latency);
  }
  std::filesystem::create_directories(data_dir);
  auto dev = FileDevice::Open(data_dir + "/" + name, latency);
  // Database construction cannot fail gracefully here; fall back to memory
  // on I/O error (surfaced via the device type in tests).
  if (!dev.ok()) return std::make_unique<MemDevice>(latency);
  return std::move(dev.value());
}

/// Builds an engine's WAL device per DatabaseOptions::log_backend. The
/// segmented backend opens a *directory* named after the log
/// ("<data_dir>/mem.log/" holding wal.NNNNNNNN.seg files); if that path is
/// a plain file left by a kFile run, opening the directory fails and we
/// fall back to the legacy single-file layout so old data dirs keep
/// working.
std::unique_ptr<StorageDevice> MakeLogDevice(const DatabaseOptions& options,
                                             const std::string& name) {
  if (options.log_device_factory) return options.log_device_factory(name);
  if (options.data_dir.empty()) {
    return std::make_unique<MemDevice>(options.log_latency);
  }
  std::filesystem::create_directories(options.data_dir);
  if (options.log_backend == DatabaseOptions::LogBackend::kSegmented) {
    SegmentedLogDevice::Options seg;
    seg.segment_bytes = options.log_segment_bytes;
    seg.use_io_uring = options.log_io_uring;
    seg.use_direct_io = options.log_direct_io;
    seg.latency = options.log_latency;
    auto dev = SegmentedLogDevice::Open(options.data_dir + "/" + name, seg);
    if (dev.ok()) return std::move(dev.value());
  }
  return MakeDevice(options.data_dir, name, options.log_latency);
}

}  // namespace

Database::Database(DatabaseOptions options)
    : options_(std::move(options)), csr_(options_.csr, &epoch_) {
  // Table-space devices for stordb.
  if (!options_.data_dir.empty() && !options_.stor.device_factory) {
    std::string dir = options_.data_dir;
    DeviceLatency latency = options_.stor.data_latency;
    options_.stor.device_factory =
        [dir, latency](const std::string& name) {
          return MakeDevice(dir, "table_" + name + ".tbl", latency);
        };
  }

  // Replica hygiene: local read-only transactions must not log commit
  // records into the replica's own WAL — their gtids are drawn from the
  // replica's counter and would collide with replayed primary gtids.
  if (options_.replica) options_.mem.log_read_only_commits = false;

  // Both engines share the database-owned epoch domain, so one grace
  // period covers CSR partition lists, memdb versions and stordb undos.
  mem_owned_ = std::make_unique<MemEngineAdapter>(
      MakeLogDevice(options_, "mem.log"), options_.mem, &epoch_);
  stor_owned_ = std::make_unique<StorEngineAdapter>(
      MakeLogDevice(options_, "stor.log"), options_.stor, &epoch_);
  mem_ = mem_owned_.get();
  stor_ = stor_owned_.get();
  engines_[static_cast<int>(EngineKind::kMem)] = mem_;
  engines_[static_cast<int>(EngineKind::kStor)] = stor_;
  anchor_index_ = static_cast<int>(options_.anchor);

  // Engine-side GC pinning (the engine analogue of CSR recycling,
  // Section 4.4): a live transaction's anchor snapshot must keep BOTH
  // engines readable for a crossing it has not made yet. The anchor engine
  // is pinned by the oldest active anchor snapshot itself; the other
  // engine by the oldest snapshot the CSR could still select for such an
  // anchor (the predecessor mapping's value).
  auto min_anchor = [this] {
    return anchor_registry_.MinActive(
        engines_[anchor_index_]->LatestSnapshot());
  };
  auto min_other = [this, min_anchor] {
    // MinSelectableValue pins its own epoch for the list traversal; the
    // anchor-registry read needs no epoch protection.
    Timestamp v = csr_.MinSelectableValue(min_anchor());
    return v;  // kMaxTimestamp = unconstrained (fallback uses live clock)
  };
  bool mem_is_anchor = anchor_index_ == static_cast<int>(EngineKind::kMem);
  if (options_.replica) {
    // Replica readers never select through the CSR; their snapshot pair
    // comes from the visibility gate. The gate is the fallback for both
    // registry scans: it only ever advances, and every reader pre-registers
    // a sentinel before reading the pair, so neither floor can pass a pair
    // a reader is about to pin.
    auto replica_min_anchor = [this] {
      return anchor_registry_.MinActive(ReplicaSnapshotPair().first);
    };
    auto replica_min_other = [this] {
      return replica_other_registry_.MinActive(ReplicaSnapshotPair().second +
                                               1);
    };
    csr_.SetMinAnchorProvider(replica_min_anchor);
    if (mem_is_anchor) {
      mem_->engine()->SetGcHorizonProvider(replica_min_anchor);
      stor_->engine()->SetPurgeHorizonProvider(replica_min_other);
    } else {
      stor_->engine()->SetPurgeHorizonProvider([replica_min_anchor] {
        return replica_min_anchor() + 1;
      });
      mem_->engine()->SetGcHorizonProvider([this] {
        // replica_other_registry_ holds ser-style horizons (value + 1);
        // memdb wants plain snapshots.
        return replica_other_registry_.MinActive(
                   ReplicaSnapshotPair().second + 1) -
               1;
      });
    }
    pipeline_ = std::make_unique<CommitPipeline>(options_.pipeline,
                                                 engines_[0], engines_[1]);
    if (options_.record_history) {
      recorder_ = std::make_unique<HistoryRecorder>();
    }
    LoadCatalog();
    return;
  }
  csr_.SetMinAnchorProvider(min_anchor);
  // memdb registers plain snapshots; stordb registers view horizons
  // (ser_limit + 1) — hence the +1 on the stordb bounds.
  if (mem_is_anchor) {
    mem_->engine()->SetGcHorizonProvider(min_anchor);
    stor_->engine()->SetPurgeHorizonProvider([min_other] {
      Timestamp v = min_other();
      return v == kMaxTimestamp ? v : v + 1;
    });
  } else {
    stor_->engine()->SetPurgeHorizonProvider([min_anchor] {
      Timestamp v = min_anchor();
      return v == kMaxTimestamp ? v : v + 1;
    });
    mem_->engine()->SetGcHorizonProvider(min_other);
  }

  pipeline_ = std::make_unique<CommitPipeline>(options_.pipeline, engines_[0],
                                               engines_[1]);
  if (options_.record_history) {
    recorder_ = std::make_unique<HistoryRecorder>();
  }

  LoadCatalog();
}

Database::~Database() = default;

Result<TableHandle> Database::CreateTable(const std::string& name,
                                          EngineKind home,
                                          size_t max_value_size) {
  MutexLock guard(catalog_mu_);
  if (catalog_.count(name) != 0) {
    return Status::AlreadyExists("table exists: " + name);
  }
  TableHandle h;
  h.name = name;
  h.home = home;
  h.engine_index = static_cast<int>(home);
  h.local_id = engines_[h.engine_index]->CreateTable(name, max_value_size);
  catalog_[name] = h;
  PersistCatalogEntry(h, max_value_size);
  return h;
}

Result<TableHandle> Database::GetTable(const std::string& name) const {
  MutexLock guard(catalog_mu_);
  auto it = catalog_.find(name);
  if (it == catalog_.end()) {
    return Status::NotFound("no such table: " + name);
  }
  return it->second;
}

std::unique_ptr<Transaction> Database::Begin() {
  return Begin(options_.default_isolation);
}

std::unique_ptr<Transaction> Database::Begin(IsolationLevel iso) {
  return std::unique_ptr<Transaction>(new Transaction(this, iso));
}

void Database::PersistCatalogEntry(const TableHandle& h,
                                   size_t max_value_size) {
  if (options_.data_dir.empty()) return;
  std::ofstream out(options_.data_dir + "/catalog.txt", std::ios::app);
  out << h.name << ' ' << static_cast<int>(h.home) << ' ' << max_value_size
      << '\n';
}

void Database::LoadCatalog() {
  if (options_.data_dir.empty()) return;
  std::ifstream in(options_.data_dir + "/catalog.txt");
  if (!in.good()) return;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string name;
    int home = 0;
    size_t max_value = 0;
    if (!(ls >> name >> home >> max_value)) continue;
    TableHandle h;
    h.name = name;
    h.home = static_cast<EngineKind>(home);
    h.engine_index = home;
    h.local_id = engines_[home]->CreateTable(name, max_value);
    catalog_[name] = h;
  }
}

Status Database::Recover() {
  // Pair commit-begin / commit-end records across both logs: a cross-
  // engine transaction is durably committed only if its commit-end made it
  // to *both* logs; everything else is rolled back (its results were never
  // released to clients — they were still gated on the commit queue).
  // Paper Section 4.6.
  std::set<GlobalTxnId> cross_seen;
  std::set<GlobalTxnId> end_in[kNumEngines];
  for (int e = 0; e < kNumEngines; ++e) {
    const StorageDevice* dev = engines_[e]->LogDevice();
    if (dev == nullptr) continue;
    LogReader reader(dev);
    std::string raw;
    while (reader.Next(&raw)) {
      LogRecord rec;
      if (!LogRecord::Decode(raw, &rec)) break;  // torn tail
      if (rec.type == LogRecordType::kCommitBegin) {
        cross_seen.insert(rec.gtid);
      } else if (rec.type == LogRecordType::kCommitEnd) {
        cross_seen.insert(rec.gtid);
        end_in[e].insert(rec.gtid);
      }
      // relaxed-ok: single-threaded recovery; no concurrent Begin yet.
      next_gtid_.store(
          std::max(next_gtid_.load(std::memory_order_relaxed), rec.gtid + 1),
          std::memory_order_relaxed);
    }
  }
  std::set<GlobalTxnId> excluded;
  for (GlobalTxnId gtid : cross_seen) {
    if (end_in[0].count(gtid) == 0 || end_in[1].count(gtid) == 0) {
      excluded.insert(gtid);
    }
  }
  for (int e = 0; e < kNumEngines; ++e) {
    SKEENA_RETURN_NOT_OK(engines_[e]->Recover(excluded));
  }
  return Status::OK();
}

Database::Stats Database::stats() {
  Stats s;
  s.csr = csr_.stats();
  s.mem = mem_->engine()->stats();
  s.stor = stor_->engine()->stats();
  s.commits_completed = pipeline_->completed();
  return s;
}

}  // namespace skeena
