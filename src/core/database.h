#ifndef SKEENA_CORE_DATABASE_H_
#define SKEENA_CORE_DATABASE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/active_registry.h"
#include "common/epoch.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "core/adapters.h"
#include "core/commit_pipeline.h"
#include "core/csr.h"
#include "core/engine_iface.h"
#include "core/history.h"

namespace skeena {

class Transaction;

/// A table's catalog entry: its home engine and engine-local id
/// (applications declare the home engine in the schema; paper Section 3,
/// "Transparent Adoption").
struct TableHandle {
  std::string name;
  EngineKind home = EngineKind::kMem;
  int engine_index = 0;
  TableId local_id = 0;
};

struct DatabaseOptions {
  IsolationLevel default_isolation = IsolationLevel::kSnapshot;

  /// Master switch: with Skeena off, transactions drive sub-transactions
  /// directly with no snapshot coordination and independent commits — the
  /// paper's "MySQL default" baseline where all Section 2.3 anomalies are
  /// possible, and the single-engine baselines of Table 3.
  bool enable_skeena = true;

  /// Which engine anchors the CSR (paper Section 4.3). Defaults to the
  /// memory-optimized engine, where snapshot acquisition is one atomic
  /// load; configurable for the anchor-choice ablation.
  EngineKind anchor = EngineKind::kMem;

  SnapshotRegistry::Options csr;
  CommitPipeline::Options pipeline;
  memdb::MemEngine::Options mem;
  stordb::StorEngine::Options stor;

  /// Latency injected on both engines' log devices.
  DeviceLatency log_latency = DeviceLatency::Tmpfs();

  /// Which device backs each engine's write-ahead log when data_dir is
  /// set. kSegmented (the default) is the raw-speed path: preallocated
  /// fixed-size segment files with io_uring batching where the kernel
  /// supports it. kFile is the legacy single grow-forever file.
  enum class LogBackend { kFile, kSegmented };
  LogBackend log_backend = LogBackend::kSegmented;
  uint64_t log_segment_bytes = 8 * 1024 * 1024;
  /// Batch segmented-log writes/syncs through io_uring when available
  /// (runtime-probed; silently falls back to pwrite).
  bool log_io_uring = true;
  /// Open segmented-log writers with O_DIRECT (4 KiB-aligned staging);
  /// silently falls back where the filesystem rejects it.
  bool log_direct_io = false;
  /// Test/bench hook: overrides everything above. Called with the log's
  /// name ("mem.log" / "stor.log") to build each engine's device.
  std::function<std::unique_ptr<StorageDevice>(const std::string& name)>
      log_device_factory;

  /// When set, logs / table spaces / catalog live in files under data_dir
  /// (survives restarts; enables crash-recovery flows). Otherwise all
  /// devices are in-memory.
  std::string data_dir;

  /// Verification hook: record every transaction's snapshots, commit
  /// serialisation points and read/write-sets into a per-thread history
  /// log for the black-box SI checker (core/history.h). Off by default;
  /// disabled cost is one null-pointer branch per operation.
  bool record_history = false;

  /// Replica mode (docs/REPLICATION.md): the database is populated only by
  /// the replication applier. User transactions are read-only (writes fail
  /// NotSupported) and take their snapshot pair from the replica's
  /// visibility gate (SetReplicaSnapshotProvider) instead of live anchor
  /// acquisition + CSR selection — the replayed CSR is never written to by
  /// readers, so it stays a faithful prefix of the primary's.
  bool replica = false;

  /// Test hook: called between the two engines' post-commits of a
  /// cross-engine transaction (anchor engine first). Lets tests freeze a
  /// commit inside the inter-engine window that the replica's visibility
  /// gate exists to mask.
  std::function<void(GlobalTxnId)> test_post_commit_hook;
};

/// The multi-engine database: a memory-optimized engine and a
/// storage-centric engine under one catalog, with Skeena coordinating
/// cross-engine transactions (paper Figure 4).
class Database {
 public:
  explicit Database(DatabaseOptions options = DatabaseOptions());
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates a table homed in `home`. `max_value_size` bounds row values
  /// (stordb rows are fixed-slot).
  Result<TableHandle> CreateTable(const std::string& name, EngineKind home,
                                  size_t max_value_size = 256);
  Result<TableHandle> GetTable(const std::string& name) const;

  std::unique_ptr<Transaction> Begin();
  std::unique_ptr<Transaction> Begin(IsolationLevel iso);

  /// Replays both engines' logs, rolling back cross-engine transactions
  /// that are not fully committed in *both* logs (paper Section 4.6). Call
  /// on a freshly (re)opened file-backed database; tables are re-created
  /// from the persisted catalog automatically at construction.
  Status Recover();

  // ------------------------------------------------------------- access
  EngineIface* engine(int index) { return engines_[index]; }
  EngineIface* engine(EngineKind kind) {
    return engines_[static_cast<int>(kind)];
  }
  MemEngineAdapter* mem() { return mem_; }
  StorEngineAdapter* stor() { return stor_; }
  int anchor_index() const { return anchor_index_; }
  bool skeena_enabled() const { return options_.enable_skeena; }
  IsolationLevel default_isolation() const {
    return options_.default_isolation;
  }

  SnapshotRegistry& csr() { return csr_; }
  ActiveSnapshotRegistry& anchor_registry() { return anchor_registry_; }
  CommitPipeline& pipeline() { return *pipeline_; }
  EpochManager& epoch() { return epoch_; }
  /// Null unless DatabaseOptions::record_history.
  HistoryRecorder* recorder() { return recorder_.get(); }

  GlobalTxnId NextGtid() {
    // relaxed-ok: gtids only need uniqueness; commit publication orders
    // everything a gtid ever labels.
    return next_gtid_.fetch_add(1, std::memory_order_relaxed);
  }

  // --------------------------------------------------------- replica mode
  bool replica() const { return options_.replica; }

  /// Installs the visibility-gate provider (the replication applier). The
  /// returned pair is (anchor-engine snapshot, other-engine snapshot),
  /// component-wise monotone over successive calls. Must be set before
  /// replica transactions run; until then readers see only genesis data.
  void SetReplicaSnapshotProvider(
      std::function<std::pair<Timestamp, Timestamp>()> provider) {
    replica_snapshot_provider_ = std::move(provider);
  }

  /// Current gate pair; (1, 1) — genesis only — before a provider is set.
  std::pair<Timestamp, Timestamp> ReplicaSnapshotPair() const {
    if (!replica_snapshot_provider_) return {Timestamp{1}, Timestamp{1}};
    return replica_snapshot_provider_();
  }

  /// Registry pinning the OTHER engine's purge floor under replica
  /// readers' gate snapshots (the anchor side reuses anchor_registry_).
  /// Registered values follow stordb's view-horizon convention: the
  /// other-engine gate component + 1.
  ActiveSnapshotRegistry& replica_other_registry() {
    return replica_other_registry_;
  }

  /// Number of live transactions that are still active — begun, not yet
  /// committed or aborted. Connection owners (the network server) assert
  /// this returns to zero after a disconnect or shutdown: an orphaned
  /// transaction must be aborted, never leaked.
  int64_t active_transactions() const {
    // relaxed-ok: diagnostic gauge; asserted only at quiescent points.
    return active_txns_.load(std::memory_order_relaxed);
  }

  struct Stats {
    SnapshotRegistry::Stats csr;
    memdb::MemEngine::Stats mem;
    stordb::StorEngine::Stats stor;
    uint64_t commits_completed;
  };
  Stats stats();

 private:
  friend class Transaction;  // maintains active_txns_ across its lifecycle

  void PersistCatalogEntry(const TableHandle& h, size_t max_value_size);
  void LoadCatalog();

  DatabaseOptions options_;

  // The database-wide reclamation domain: CSR partition lists, memdb
  // version chains and stordb undo batches all retire through this one
  // manager (docs/RECLAMATION.md). Declared first so it is destroyed last
  // — after the CSR and both engines have stopped retiring into it — and
  // then drains its limbo.
  EpochManager epoch_;

  std::unique_ptr<MemEngineAdapter> mem_owned_;
  std::unique_ptr<StorEngineAdapter> stor_owned_;
  MemEngineAdapter* mem_;
  StorEngineAdapter* stor_;
  EngineIface* engines_[kNumEngines];
  int anchor_index_;

  SnapshotRegistry csr_;
  ActiveSnapshotRegistry anchor_registry_;
  ActiveSnapshotRegistry replica_other_registry_;
  std::function<std::pair<Timestamp, Timestamp>()> replica_snapshot_provider_;
  std::unique_ptr<CommitPipeline> pipeline_;
  std::unique_ptr<HistoryRecorder> recorder_;

  std::atomic<GlobalTxnId> next_gtid_{1};
  std::atomic<int64_t> active_txns_{0};

  mutable Mutex catalog_mu_;
  std::unordered_map<std::string, TableHandle> catalog_
      SKEENA_GUARDED_BY(catalog_mu_);
};

}  // namespace skeena

#endif  // SKEENA_CORE_DATABASE_H_
