#include "core/commit_pipeline.h"

#include <algorithm>

namespace skeena {

CommitPipeline::CommitPipeline(Options options, EngineIface* engine0,
                               EngineIface* engine1)
    : options_(options) {
  engines_[0] = engine0;
  engines_[1] = engine1;
  if (options_.num_queues == 0) options_.num_queues = 1;
  if (options_.mode == Mode::kPipelined) {
    for (size_t i = 0; i < options_.num_queues; ++i) {
      queues_.push_back(std::make_unique<Queue>());
    }
    for (size_t i = 0; i < options_.num_queues; ++i) {
      daemons_.emplace_back([this, i] { DaemonLoop(i); });
    }
  }
}

CommitPipeline::~CommitPipeline() {
  stop_.store(true, std::memory_order_release);
  // Unblock daemons parked inside WaitDurable before joining.
  for (int i = 0; i < 2; ++i) {
    if (engines_[i] != nullptr) engines_[i]->FlushLog();
  }
  for (auto& q : queues_) {
    q->work_seq.fetch_add(1, std::memory_order_seq_cst);
    ParkingLot::WakeAll(q->work_seq);
  }
  for (auto& d : daemons_) d.join();
  // Drain anything left: force both logs durable, then complete — and keep
  // doing so until the last in-flight EnqueueAndWait has exited. A
  // straddling waiter may push its entry only after our first sweep (it
  // incremented in_flight_ but hadn't enqueued yet), so a single pass
  // could strand it parked forever; re-draining until in_flight_ hits
  // zero completes every such entry, and a completed waiter cannot
  // re-park (it rechecks done() before any park). Only after that is it
  // safe to free the queues and stat counters the exiting waiters touch.
  // With the daemons joined, this thread is the queues' single consumer.
  while (true) {
    for (auto& q : queues_) {
      std::deque<PendingCommit> left;
      DrainInto(*q, left);
      for (PendingCommit& e : left) {
        for (int i = 0; i < 2; ++i) {
          if (e.lsns[i] != 0 && engines_[i] != nullptr) {
            engines_[i]->FlushLog();
          }
        }
        completed_.fetch_add(1, std::memory_order_relaxed);
        if (e.waiter != nullptr) e.waiter->Complete();
      }
      // Release anyone still parked on the drain word (same bump-then-
      // check-waiters order as the daemon, so the syscall is elided when
      // nobody parked).
      q->drain_seq.fetch_add(1, std::memory_order_seq_cst);
      if (q->parked_waiters.load(std::memory_order_seq_cst) != 0) {
        ParkingLot::WakeAll(q->drain_seq);
      }
    }
    if (in_flight_.load(std::memory_order_acquire) == 0) break;
    // A straddler may be descheduled mid-call; give its core up rather
    // than spinning the sweep.
    std::this_thread::yield();
  }
}

CommitPipeline::Entry* CommitPipeline::TryPop(Queue& q) {
  Entry* head = q.head;
  Entry* next = head->next.load(std::memory_order_acquire);
  if (head == &q.stub) {
    if (next == nullptr) return nullptr;  // empty, or a producer mid-push
    q.head = next;
    head = next;
    next = head->next.load(std::memory_order_acquire);
  }
  if (next != nullptr) {
    q.head = next;
    return head;
  }
  // `head` looks like the last node. If tail says otherwise, a producer
  // has exchanged tail but not yet linked next — report empty and let the
  // caller retry off `pending`.
  if (q.tail.load(std::memory_order_acquire) != head) return nullptr;
  // Sole node: push the stub back so `head` can be taken out.
  q.stub.next.store(nullptr, std::memory_order_relaxed);
  Entry* prev = q.tail.exchange(&q.stub, std::memory_order_acq_rel);
  prev->next.store(&q.stub, std::memory_order_release);
  next = head->next.load(std::memory_order_acquire);
  if (next != nullptr) {
    q.head = next;
    return head;
  }
  // A producer slipped in between the tail read and our exchange: the
  // chain will read head -> its node -> stub once its link store lands;
  // report empty and let the caller retry off `pending`.
  return nullptr;
}

size_t CommitPipeline::DrainInto(Queue& q, std::deque<PendingCommit>& out) {
  size_t popped = 0;
  while (Entry* node = TryPop(q)) {
    PendingCommit e;
    e.lsns[0] = node->lsns[0];
    e.lsns[1] = node->lsns[1];
    e.waiter = std::move(node->waiter);
    delete node;
    out.push_back(std::move(e));
    ++popped;
  }
  if (popped > 0) {
    q.pending.fetch_sub(popped, std::memory_order_seq_cst);
  }
  return popped;
}

bool CommitPipeline::Covered(const Lsn lsns[2]) const {
  for (int i = 0; i < 2; ++i) {
    if (lsns[i] != 0 && engines_[i] != nullptr &&
        engines_[i]->DurableLsn() < lsns[i]) {
      return false;
    }
  }
  return true;
}

void CommitPipeline::Enqueue(const Lsn lsns[2],
                             std::shared_ptr<CommitWaiter> waiter,
                             size_t queue_hint) {
  if (options_.mode == Mode::kSync) {
    // Ablation baseline: the worker thread pays for both flushes itself.
    for (int i = 0; i < 2; ++i) {
      if (lsns[i] != 0 && engines_[i] != nullptr &&
          engines_[i]->DurableLsn() < lsns[i]) {
        engines_[i]->FlushLog();
      }
    }
    completed_.fetch_add(1, std::memory_order_relaxed);
    completed_inline_.Add(1);
    if (waiter != nullptr && waiter->Complete()) wake_syscalls_.Add(1);
    return;
  }
  if (Covered(lsns)) {
    // Both logs already durable: complete inline, skip the queue entirely
    // (no daemon round-trip, no wakeup).
    completed_.fetch_add(1, std::memory_order_relaxed);
    completed_inline_.Add(1);
    if (waiter != nullptr && waiter->Complete()) wake_syscalls_.Add(1);
    return;
  }
  Queue& q = QueueFor(queue_hint);
  Entry* e = new Entry;
  e->lsns[0] = lsns[0];
  e->lsns[1] = lsns[1];
  e->waiter = std::move(waiter);
  // Bump pending before the push: the 0 -> 1 edge elects this producer as
  // the one waker, and a daemon about to park re-reads pending after
  // publishing daemon_parked, so either it sees our count or we see its
  // parked flag.
  const uint64_t pending_before =
      q.pending.fetch_add(1, std::memory_order_seq_cst);
  // Wait-free MPSC push: one exchange claims the tail slot, one release
  // store links it. No producer lock, no daemon swap lock — a preempted
  // producer stalls nobody except the consumer's final hop to its node.
  Entry* prev = q.tail.exchange(e, std::memory_order_acq_rel);
  prev->next.store(e, std::memory_order_release);
  enqueued_.Add(1);
  // Wake the daemon only on the empty → non-empty transition, and only
  // when it actually parked — a busy daemon keeps draining without
  // per-enqueue syscalls.
  if (pending_before == 0) {
    q.work_seq.fetch_add(1, std::memory_order_seq_cst);
    if (q.daemon_parked.load(std::memory_order_seq_cst) != 0) {
      ParkingLot::WakeOne(q.work_seq);
      daemon_wakes_.Add(1);
    }
  }
}

void CommitPipeline::EnqueueAndWait(const Lsn lsns[2],
                                    const std::shared_ptr<CommitWaiter>& waiter,
                                    size_t queue_hint) {
  waiter->Reset();
  if (options_.mode == Mode::kSync) {
    Enqueue(lsns, waiter, queue_hint);  // completes inline
    return;
  }
  // The in-flight count keeps the destructor from freeing the queues and
  // stat counters while a waiter woken off the drain word is still
  // touching them on its way out.
  in_flight_.fetch_add(1, std::memory_order_acquire);
  Queue& q = QueueFor(queue_hint);
  Enqueue(lsns, waiter, queue_hint);
  // Spin first: the daemon often completes a drain within the budget, and
  // a spin success costs zero syscalls on both sides.
  if (SpinUntil([&] { return waiter->done(); })) {
    waiter_spin_successes_.Add(1);
    in_flight_.fetch_sub(1, std::memory_order_release);
    return;
  }
  // Park on the queue's drain word, not the waiter's own word: every
  // waiter of a drain shares one word, so the daemon releases all of them
  // with a single WakeAll. Waiters of a later drain wake spuriously,
  // recheck, and re-park on the new sequence value.
  bool parked = false;
  while (!waiter->done()) {
    uint32_t seq = q.drain_seq.load(std::memory_order_acquire);
    if (waiter->done()) break;
    q.parked_waiters.fetch_add(1, std::memory_order_seq_cst);
    if (!waiter->done()) {
      // Park reports whether the thread truly blocked — a drain racing in
      // between makes it return immediately, which stays a spin success.
      parked |= ParkingLot::Park(q.drain_seq, seq);
    }
    q.parked_waiters.fetch_sub(1, std::memory_order_relaxed);
  }
  // Every wait resolves in exactly one bucket: blocked in the kernel at
  // least once, or never needed it (spin budget or a recheck win).
  if (parked) {
    waiter_parks_.Add(1);
  } else {
    waiter_spin_successes_.Add(1);
  }
  in_flight_.fetch_sub(1, std::memory_order_release);
}

void CommitPipeline::DaemonLoop(size_t queue_idx) {
  Queue& q = *queues_[queue_idx];
  // Drain accumulator; uncovered absorbed entries carry over between
  // iterations, so it can be non-empty at loop top.
  std::deque<PendingCommit> batch;
  while (true) {
    // Read the work sequence before checking the queue: an enqueue that
    // races past the drain bumps it, so the park below returns immediately.
    uint32_t seq = q.work_seq.load(std::memory_order_acquire);
    DrainInto(q, batch);
    if (batch.empty()) {
      if (stop_.load(std::memory_order_acquire)) return;
      if (q.pending.load(std::memory_order_seq_cst) != 0) {
        // A producer is mid-push (counted, not yet linked): its node is a
        // few instructions away, so spin rather than park.
        handoff_spins_.Add(1);
        CpuRelax();
        continue;
      }
      q.daemon_parked.store(1, std::memory_order_seq_cst);
      if (q.pending.load(std::memory_order_seq_cst) == 0 &&
          !stop_.load(std::memory_order_acquire)) {
        ParkingLot::Park(q.work_seq, seq);
      }
      q.daemon_parked.store(0, std::memory_order_relaxed);
      continue;
    }
    // One pass over the drain: a single durable wait per engine covers the
    // whole batch (every entry was appended before the swap, so the batch
    // maximum bounds them all), then every entry completes together.
    // WaitDurable blocks on the engine's group-commit flusher, so the
    // daemon — not the workers — absorbs the log-flush latency.
    Lsn need[2] = {0, 0};
    for (const PendingCommit& e : batch) {
      need[0] = std::max(need[0], e.lsns[0]);
      need[1] = std::max(need[1], e.lsns[1]);
    }
    for (int i = 0; i < 2; ++i) {
      if (need[i] != 0 && engines_[i] != nullptr) {
        engines_[i]->WaitDurable(need[i]);
      }
    }
    // Absorb entries that arrived during the wait: the ones this advance
    // already covers complete in the same pass — and share its single
    // unpark — instead of waiting out another flush round.
    DrainInto(q, batch);
    std::deque<PendingCommit> covered;
    std::deque<PendingCommit> leftover;
    for (PendingCommit& e : batch) {
      if (Covered(e.lsns)) {
        covered.push_back(std::move(e));
      } else {
        leftover.push_back(std::move(e));
      }
    }
    batch.swap(leftover);  // uncovered entries lead the next drain
    // Publish the count before releasing any waiter: a client returning
    // from EnqueueAndWait must already be reflected in completed().
    completed_.fetch_add(covered.size(), std::memory_order_relaxed);
    drain_batches_.Add(1);
    for (PendingCommit& e : covered) {
      if (e.waiter != nullptr && e.waiter->Complete()) {
        wake_syscalls_.Add(1);
      }
    }
    // One batched unpark releases every waiter parked on this drain; skip
    // the syscall entirely when nobody parked (they all spun or wait on
    // their own handle).
    q.drain_seq.fetch_add(1, std::memory_order_seq_cst);
    if (q.parked_waiters.load(std::memory_order_seq_cst) != 0) {
      ParkingLot::WakeAll(q.drain_seq);
      wake_syscalls_.Add(1);
    }
  }
}

CommitPipeline::Stats CommitPipeline::stats() const {
  Stats s;
  s.completed = completed_.load(std::memory_order_relaxed);
  s.wake_syscalls = wake_syscalls_.Read();
  s.daemon_wakes = daemon_wakes_.Read();
  s.waiter_parks = waiter_parks_.Read();
  s.waiter_spin_successes = waiter_spin_successes_.Read();
  s.drain_batches = drain_batches_.Read();
  s.enqueued = enqueued_.Read();
  s.completed_inline = completed_inline_.Read();
  s.handoff_spins = handoff_spins_.Read();
  return s;
}

}  // namespace skeena
