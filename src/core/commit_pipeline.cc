#include "core/commit_pipeline.h"

#include <chrono>

namespace skeena {

CommitPipeline::CommitPipeline(Options options, EngineIface* engine0,
                               EngineIface* engine1)
    : options_(options) {
  engines_[0] = engine0;
  engines_[1] = engine1;
  if (options_.num_queues == 0) options_.num_queues = 1;
  if (options_.mode == Mode::kPipelined) {
    for (size_t i = 0; i < options_.num_queues; ++i) {
      queues_.push_back(std::make_unique<Queue>());
    }
    for (size_t i = 0; i < options_.num_queues; ++i) {
      daemons_.emplace_back([this, i] { DaemonLoop(i); });
    }
  }
}

CommitPipeline::~CommitPipeline() {
  stop_.store(true, std::memory_order_release);
  // Unblock daemons parked inside WaitDurable before joining.
  for (int i = 0; i < 2; ++i) {
    if (engines_[i] != nullptr) engines_[i]->FlushLog();
  }
  for (auto& q : queues_) q->cv.notify_all();
  for (auto& d : daemons_) d.join();
  // Drain anything left: force both logs durable, then complete.
  for (auto& q : queues_) {
    std::lock_guard<std::mutex> guard(q->mu);
    for (Entry& e : q->entries) {
      for (int i = 0; i < 2; ++i) {
        if (e.lsns[i] != 0 && engines_[i] != nullptr) {
          engines_[i]->FlushLog();
        }
      }
      if (e.waiter != nullptr) e.waiter->Complete();
    }
    q->entries.clear();
  }
}

void CommitPipeline::Enqueue(const Lsn lsns[2],
                             std::shared_ptr<CommitWaiter> waiter,
                             size_t queue_hint) {
  if (options_.mode == Mode::kSync) {
    // Ablation baseline: the worker thread pays for both flushes itself.
    for (int i = 0; i < 2; ++i) {
      if (lsns[i] != 0 && engines_[i] != nullptr &&
          engines_[i]->DurableLsn() < lsns[i]) {
        engines_[i]->FlushLog();
      }
    }
    completed_.fetch_add(1, std::memory_order_relaxed);
    if (waiter != nullptr) waiter->Complete();
    return;
  }
  Queue& q = *queues_[queue_hint % queues_.size()];
  {
    std::lock_guard<std::mutex> guard(q.mu);
    Entry e;
    e.lsns[0] = lsns[0];
    e.lsns[1] = lsns[1];
    e.waiter = std::move(waiter);
    q.entries.push_back(std::move(e));
  }
  q.cv.notify_one();
}

void CommitPipeline::EnqueueAndWait(const Lsn lsns[2],
                                    const std::shared_ptr<CommitWaiter>& waiter,
                                    size_t queue_hint) {
  waiter->Reset();
  Enqueue(lsns, waiter, queue_hint);
  waiter->Wait();
}

void CommitPipeline::DaemonLoop(size_t queue_idx) {
  Queue& q = *queues_[queue_idx];
  while (true) {
    Entry entry;
    {
      std::unique_lock<std::mutex> guard(q.mu);
      q.cv.wait(guard, [&] {
        return stop_.load(std::memory_order_acquire) || !q.entries.empty();
      });
      if (q.entries.empty()) {
        if (stop_.load(std::memory_order_acquire)) return;
        continue;
      }
      entry = std::move(q.entries.front());
      q.entries.pop_front();
    }
    // Wait until both engines have persisted this transaction's records.
    // WaitDurable blocks on the engine's group-commit flusher, so the
    // daemon — not the worker — absorbs the log-flush latency.
    for (int i = 0; i < 2; ++i) {
      if (entry.lsns[i] != 0 && engines_[i] != nullptr) {
        engines_[i]->WaitDurable(entry.lsns[i]);
      }
    }
    completed_.fetch_add(1, std::memory_order_relaxed);
    if (entry.waiter != nullptr) entry.waiter->Complete();
  }
}

}  // namespace skeena
