#ifndef SKEENA_CORE_HISTORY_H_
#define SKEENA_CORE_HISTORY_H_

// Black-box transactional-history verification (ROADMAP "Black-box
// isolation checker + adversarial scenario fuzzing").
//
// Two halves:
//
//  * HistoryRecorder — a cheap opt-in hook (DatabaseOptions::record_history)
//    that captures, per transaction, the per-engine begin/commit
//    serialisation points, the (anchor, other) snapshot pairs Algorithm 1
//    selected, and the full read/write-set with observed values. Recording
//    is per-thread sharded (ShardedCounter-style) so the hot path never
//    contends on a shared line; shards fold at quiesce. Disabled cost is a
//    single null-pointer branch per operation.
//
//  * CheckSnapshotIsolation — a polynomial-time snapshot-isolation check
//    over a recorded history, after Biswas & Enea, "On the Complexity of
//    Checking Transactional Consistency" (OOPSLA 2019). Their general
//    problem searches for a commit order witnessing SI; here the engines
//    publish their commit orders (memdb commit timestamps, stordb
//    serialisation numbers), so the checker verifies that the *claimed*
//    witness actually satisfies the SI axioms against the observed reads —
//    any lie in the claimed order surfaces as a read that does not match
//    the latest visible version. Cross-engine atomicity (the paper's DSI
//    condition) is checked over snapshot/commit *pairs* and against the
//    CSR's published mappings, which catches skew shapes no per-engine
//    check can see (a reader holding a (mem, stor) pair that tears a
//    committed cross-engine transaction in half).
//
// See DESIGN.md "Verification" for the axiom-by-axiom sketch and how the
// scenario fuzzer (tests/fuzz_scenario_test.cc) drives this end to end.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/encoding.h"
#include "common/spin_latch.h"
#include "common/types.h"

namespace skeena {

// ---------------------------------------------------------------- records

enum class HistOpKind : uint8_t { kGet, kPut, kDelete, kScanRow };

/// One data operation as the coordinator saw it. Reads carry the observed
/// value (or found=false); writes carry the written value. `snapshot` is
/// the engine-local snapshot in effect when the op ran (read-committed
/// refreshes change it mid-transaction).
struct HistOp {
  HistOpKind kind;
  uint8_t engine;
  TableId table;
  Key key;
  std::string value;
  bool found = true;
  Timestamp snapshot = kInvalidTimestamp;
};

/// A recorded transaction: outcome, per-engine begin/commit serialisation
/// points, the cross-engine snapshot pairs it held, and its ops in program
/// order.
struct TxnHistory {
  enum class Outcome : uint8_t {
    kInFlight,   // never finished (should not appear in a folded history)
    kCommitted,  // commit acknowledged to the caller (durable)
    kAborted,
    kUnacked,    // post-commit may have run, but the ack never happened
                 // (simulated crash); recovery decides its fate
  };

  GlobalTxnId gtid = 0;
  uint64_t session = 0;  // recording thread; program order within a session
  uint64_t seq = 0;      // monotone per session
  IsolationLevel iso = IsolationLevel::kSnapshot;
  bool skeena = true;
  Outcome outcome = Outcome::kInFlight;

  /// Engine-local begin snapshot at first access (kInvalidTimestamp when
  /// the engine was never touched; kMaxTimestamp = uncoordinated "latest").
  Timestamp begin[kNumEngines] = {kInvalidTimestamp, kInvalidTimestamp};
  /// Engine-local commit serialisation point (0 when unused/read-only is
  /// still a borrowed bound — see `wrote`).
  Timestamp commit[kNumEngines] = {0, 0};
  bool used[kNumEngines] = {false, false};
  bool wrote[kNumEngines] = {false, false};

  /// Anchor snapshot (recorded even when the anchor engine holds no data
  /// access; it orders every Skeena transaction, paper Section 4.3).
  Timestamp anchor_snap = kInvalidTimestamp;
  /// Every (anchor, other) snapshot pair Algorithm 1 selected for this
  /// transaction (>1 only at read-committed).
  std::vector<std::pair<Timestamp, Timestamp>> snap_pairs;

  /// Crash-scenario bookkeeping for kUnacked: whether post-commit ran per
  /// engine before the simulated crash.
  bool post_committed[kNumEngines] = {false, false};

  std::vector<HistOp> ops;
};

// --------------------------------------------------------------- recorder

/// Lock-cheap history log. Transactions build their TxnHistory privately
/// (owned by the Transaction object) and push it into the calling thread's
/// shard exactly once, at finish; Fold() collects all shards at quiesce.
class HistoryRecorder {
 public:
  HistoryRecorder() = default;
  HistoryRecorder(const HistoryRecorder&) = delete;
  HistoryRecorder& operator=(const HistoryRecorder&) = delete;

  /// Starts a record for a new transaction (called from the transaction
  /// constructor; fills session/seq from the calling thread).
  std::unique_ptr<TxnHistory> StartTxn(GlobalTxnId gtid, IsolationLevel iso,
                                       bool skeena);

  /// Files a finished record under the calling thread's shard.
  void Record(std::unique_ptr<TxnHistory> txn);

  /// Moves every recorded transaction out, ordered by (session, seq).
  /// Callers must quiesce first (no transaction in flight).
  std::vector<TxnHistory> Fold();

  /// Recorded-so-far count (approximate under concurrency).
  size_t Size() const;

 private:
  static constexpr size_t kShards = 64;

  struct Shard {
    SpinLatch latch;
    std::vector<std::unique_ptr<TxnHistory>> txns;
  };

  static size_t ThreadShardIndex();

  Padded<Shard> shards_[kShards];
};

// ---------------------------------------------------------------- checker

/// One detected anomaly. `kind` names the violated axiom; `detail` is a
/// human-readable witness (transaction ids, keys, serialisation points).
struct SiViolation {
  enum class Kind : uint8_t {
    kDirtyRead,          // observed a value no committed transaction wrote
    kFutureRead,         // observed a writer beyond the snapshot
    kStaleRead,          // skipped a newer committed version inside the
                         // snapshot (non-monotone snapshot / torn read)
    kReadYourWrites,     // read after own write returned something else
    kLostUpdate,         // first-committer-wins violated
    kCrossSkew,          // a snapshot pair tears a committed cross-engine
                         // transaction in half (DSI violation)
    kPairInversion,      // committed cross-engine commit pairs not monotone
    kCsrMismatch,        // committed pair absent from the CSR's mappings
    kSessionOrder,       // later txn in a session began before an earlier
                         // commit in the anchor engine
    kGateRegression,     // (replica audit) a replica session's snapshot
                         // pair went backwards on either component
    kDurabilityLost,     // (recovery audit) acknowledged write vanished
    kTornRecovery,       // (recovery audit) cross-engine txn half-recovered
    kCorruptState,       // (recovery audit) final value matches no writer
  };

  Kind kind;
  GlobalTxnId txn = 0;        // primary offending transaction (0 = n/a)
  GlobalTxnId other_txn = 0;  // witness transaction (0 = n/a)
  std::string detail;
};

const char* SiViolationKindName(SiViolation::Kind kind);

struct SiCheckOptions {
  int anchor_index = 0;
  /// Published CSR mappings ([key, vmin, vmax] per entry) and recycling
  /// floor, from SnapshotRegistry::DumpMappings(). Empty = skip the
  /// mapping-containment check.
  struct CsrMapping {
    Timestamp key;
    Timestamp vmin;
    Timestamp vmax;
  };
  std::vector<CsrMapping> csr_mappings;
  Timestamp csr_floor = 0;
  bool have_csr_dump = false;
  /// Session-order assumes one recording thread == one client session.
  /// Histories produced by a worker pool (e.g. the network server, where
  /// any worker runs any connection's transactions) interleave unrelated
  /// clients in one thread-derived session; disable the axiom there.
  bool check_session_order = true;
  /// Replica mode: sessions with id >= replica_session_floor are read-only
  /// sessions on a lagging replica. Their snapshots may be arbitrarily
  /// STALE (the replica lags the primary), so the begin-after-commit
  /// session-order axiom is skipped for them — but their reads must still
  /// be torn-free and pair-consistent (kCrossSkew et al. apply in full),
  /// and per session the snapshot pair must be component-wise monotone in
  /// recording order (kGateRegression otherwise). 0 = no replica sessions.
  uint64_t replica_session_floor = 0;
};

struct SiReport {
  std::vector<SiViolation> violations;
  size_t txns = 0;
  size_t reads = 0;
  size_t writes = 0;
  size_t pairs = 0;

  bool ok() const { return violations.empty(); }
  std::string Summary(size_t max_violations = 8) const;
};

/// Checks a quiesced history for snapshot isolation (see file comment).
/// Transactions with Outcome::kUnacked are treated as committed for
/// visibility (their effects were legitimately observable before a crash);
/// use CheckRecoveredState for the post-recovery audit.
SiReport CheckSnapshotIsolation(const std::vector<TxnHistory>& history,
                                const SiCheckOptions& opts);

/// Post-recovery audit: `final_rows[engine][(table, key)]` is the value a
/// full post-recovery scan observed (absent entry = key not present).
/// Verifies that every acknowledged commit survived, that the final value
/// of every key was produced by some committed/unacked writer, and that no
/// unacked cross-engine transaction was recovered in one engine but rolled
/// back in the other (all-or-nothing, paper Section 4.6).
using FinalStateRows = std::map<std::pair<TableId, Key>, std::string>;
SiReport CheckRecoveredState(const std::vector<TxnHistory>& history,
                             const FinalStateRows final_rows[kNumEngines],
                             const SiCheckOptions& opts);

/// Writes a line-oriented text dump of the history (one transaction per
/// line) — the artifact uploaded by CI when a fuzz seed fails.
std::string DumpHistory(const std::vector<TxnHistory>& history);

}  // namespace skeena

#endif  // SKEENA_CORE_HISTORY_H_
