#include "core/history.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

namespace skeena {

// --------------------------------------------------------------- recorder

size_t HistoryRecorder::ThreadShardIndex() {
  static std::atomic<size_t> next{0};
  // relaxed-ok: shard choice only needs distinctness, not ordering.
  thread_local size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
  return idx;
}

std::unique_ptr<TxnHistory> HistoryRecorder::StartTxn(GlobalTxnId gtid,
                                                      IsolationLevel iso,
                                                      bool skeena) {
  // Sessions are recording threads. The id is allocated from a
  // process-global counter, NOT per recorder: the thread_local cache
  // outlives any one recorder, so a per-recorder counter would hand a
  // freshly spawned thread an id that collides with an older thread's
  // cached id from an earlier recorder (fresh-threads-per-test pattern),
  // interleaving two program orders under one session.
  static std::atomic<uint64_t> next_session{1};
  thread_local uint64_t session = 0;
  thread_local uint64_t seq = 0;
  if (session == 0) {
    // relaxed-ok: session ids only need uniqueness.
    session = next_session.fetch_add(1, std::memory_order_relaxed);
  }
  auto txn = std::make_unique<TxnHistory>();
  txn->gtid = gtid;
  txn->session = session;
  txn->seq = ++seq;
  txn->iso = iso;
  txn->skeena = skeena;
  return txn;
}

void HistoryRecorder::Record(std::unique_ptr<TxnHistory> txn) {
  Shard& shard = shards_[ThreadShardIndex()].value;
  shard.latch.lock();
  shard.txns.push_back(std::move(txn));
  shard.latch.unlock();
}

std::vector<TxnHistory> HistoryRecorder::Fold() {
  std::vector<TxnHistory> out;
  for (size_t i = 0; i < kShards; ++i) {
    Shard& shard = shards_[i].value;
    shard.latch.lock();
    for (auto& t : shard.txns) out.push_back(std::move(*t));
    shard.txns.clear();
    shard.latch.unlock();
  }
  std::sort(out.begin(), out.end(),
            [](const TxnHistory& a, const TxnHistory& b) {
              return a.session != b.session ? a.session < b.session
                                            : a.seq < b.seq;
            });
  return out;
}

size_t HistoryRecorder::Size() const {
  size_t n = 0;
  for (size_t i = 0; i < kShards; ++i) {
    auto& shard = const_cast<Padded<Shard>&>(shards_[i]).value;
    shard.latch.lock();
    n += shard.txns.size();
    shard.latch.unlock();
  }
  return n;
}

// ---------------------------------------------------------------- checker

namespace {

/// A committed (or unacked) write to one (engine, table, key), positioned
/// at the writer's engine-local commit timestamp.
struct Version {
  Timestamp cts;
  const TxnHistory* txn;
  const HistOp* op;  // the txn's LAST write to the key (the one that sticks)
  /// Engine-local snapshot the writer held when it (first) wrote this key —
  /// the first-committer-wins check compares it against the predecessor.
  Timestamp write_snap;
};

struct KeyId {
  TableId table;
  Key key;
  bool operator==(const KeyId& o) const {
    return table == o.table && key == o.key;
  }
};

struct KeyIdHash {
  size_t operator()(const KeyId& k) const {
    uint64_t h = KeyPrefixU64(k.key) * 0x9e3779b97f4a7c15ull;
    return static_cast<size_t>(h ^ (h >> 32) ^ (k.table * 0x85ebca6bu));
  }
};

template <typename V>
using KeyMap = std::unordered_map<KeyId, V, KeyIdHash>;

bool IsRead(const HistOp& op) {
  return op.kind == HistOpKind::kGet || op.kind == HistOpKind::kScanRow;
}
bool IsWrite(const HistOp& op) {
  return op.kind == HistOpKind::kPut || op.kind == HistOpKind::kDelete;
}
bool Durable(const TxnHistory& t) {
  return t.outcome == TxnHistory::Outcome::kCommitted ||
         t.outcome == TxnHistory::Outcome::kUnacked;
}

std::string KeyStr(const KeyId& k) {
  std::ostringstream os;
  os << "t" << k.table << "/k" << KeyPrefixU64(k.key);
  return os.str();
}

class Checker {
 public:
  Checker(const std::vector<TxnHistory>& history, const SiCheckOptions& opts)
      : history_(history), opts_(opts) {}

  SiReport Run() {
    BuildIndexes();
    CheckReads();
    CheckLostUpdates();
    CheckCrossPairs();
    CheckCsrContainment();
    if (opts_.check_session_order) CheckSessionOrder();
    if (opts_.replica_session_floor != 0) CheckReplicaSessions();
    return std::move(report_);
  }

  SiReport RunRecoveredState(const FinalStateRows final_rows[kNumEngines]) {
    BuildIndexes();
    AuditFinalState(final_rows);
    return std::move(report_);
  }

 private:
  void Add(SiViolation::Kind kind, GlobalTxnId txn, GlobalTxnId other,
           std::string detail) {
    report_.violations.push_back(
        SiViolation{kind, txn, other, std::move(detail)});
  }

  void BuildIndexes() {
    report_.txns = history_.size();
    for (const TxnHistory& t : history_) {
      for (const HistOp& op : t.ops) {
        if (IsRead(op)) {
          ++report_.reads;
        } else {
          ++report_.writes;
        }
      }
      if (!Durable(t)) {
        // Aborted writes never become visible; index their values so a
        // read that observed one can be classified as a dirty read.
        for (const HistOp& op : t.ops) {
          if (IsWrite(op) && op.kind == HistOpKind::kPut) {
            aborted_values_[op.engine][KeyId{op.table, op.key}].emplace(
                op.value, t.gtid);
          }
        }
        continue;
      }
      for (int e = 0; e < kNumEngines; ++e) {
        if (!t.wrote[e] || t.commit[e] == 0) continue;
        // Last write per key wins; remember the snapshot of the first.
        KeyMap<Version> mine;
        for (const HistOp& op : t.ops) {
          if (!IsWrite(op) || op.engine != e) continue;
          KeyId kid{op.table, op.key};
          auto [it, fresh] = mine.emplace(
              kid, Version{t.commit[e], &t, &op, op.snapshot});
          if (!fresh) it->second.op = &op;
        }
        for (auto& [kid, v] : mine) versions_[e][kid].push_back(v);
      }
    }
    for (int e = 0; e < kNumEngines; ++e) {
      for (auto& [kid, vs] : versions_[e]) {
        std::sort(vs.begin(), vs.end(),
                  [](const Version& a, const Version& b) {
                    return a.cts < b.cts;
                  });
      }
    }
  }

  /// Latest version with cts <= snap (inclusive visibility in both
  /// engines); nullptr when the key is untouched at `snap`.
  const Version* VisibleAt(int e, const KeyId& kid, Timestamp snap) const {
    auto it = versions_[e].find(kid);
    if (it == versions_[e].end()) return nullptr;
    const auto& vs = it->second;
    auto ub = std::upper_bound(
        vs.begin(), vs.end(), snap,
        [](Timestamp s, const Version& v) { return s < v.cts; });
    if (ub == vs.begin()) return nullptr;
    return &*(ub - 1);
  }

  // Snapshot-read axiom: every read returns the latest version visible at
  // the operation's engine-local snapshot (after own-write override).
  void CheckReads() {
    for (const TxnHistory& t : history_) {
      // Own uncommitted writes override, per engine, in program order.
      KeyMap<const HistOp*> own[kNumEngines];
      for (const HistOp& op : t.ops) {
        KeyId kid{op.table, op.key};
        if (IsWrite(op)) {
          own[op.engine][kid] = &op;
          continue;
        }
        auto mine = own[op.engine].find(kid);
        if (mine != own[op.engine].end()) {
          const HistOp* w = mine->second;
          bool want_found = w->kind == HistOpKind::kPut;
          if (op.found != want_found ||
              (want_found && op.found && op.value != w->value)) {
            Add(SiViolation::Kind::kReadYourWrites, t.gtid, 0,
                "T" + std::to_string(t.gtid) + " read " + KeyStr(kid) +
                    " after own write and saw " +
                    (op.found ? "\"" + op.value + "\"" : "<absent>"));
          }
          continue;
        }
        // Uncoordinated "latest" snapshots (skeena off) are not a fixed
        // read point; the value-level axiom needs a pinned snapshot.
        if (op.snapshot == kInvalidTimestamp || op.snapshot == kMaxTimestamp) {
          continue;
        }
        CheckOneRead(t, op, kid);
      }
    }
  }

  void CheckOneRead(const TxnHistory& t, const HistOp& op, const KeyId& kid) {
    const Version* exp = VisibleAt(op.engine, kid, op.snapshot);
    bool want_found = exp != nullptr && exp->op->kind == HistOpKind::kPut;
    if (op.found == want_found &&
        (!want_found || op.value == exp->op->value)) {
      return;  // matches the visible version
    }
    std::ostringstream os;
    os << "T" << t.gtid << " read " << KeyStr(kid) << "@" << op.engine
       << " snap=" << op.snapshot << ": saw "
       << (op.found ? "\"" + op.value + "\"" : "<absent>") << ", expected "
       << (want_found ? "\"" + exp->op->value + "\" (T" +
                            std::to_string(exp->txn->gtid) + " cts=" +
                            std::to_string(exp->cts) + ")"
                      : "<absent>");
    // Classify by hunting for the writer that produced the observed value.
    if (op.found) {
      auto vit = versions_[op.engine].find(kid);
      if (vit != versions_[op.engine].end()) {
        for (const Version& v : vit->second) {
          if (v.op->kind != HistOpKind::kPut || v.op->value != op.value) {
            continue;
          }
          if (v.cts > op.snapshot) {
            Add(SiViolation::Kind::kFutureRead, t.gtid, v.txn->gtid,
                os.str() + " — value committed at cts=" +
                    std::to_string(v.cts) + " beyond the snapshot");
          } else {
            Add(SiViolation::Kind::kStaleRead, t.gtid, v.txn->gtid,
                os.str() + " — value is an older overwritten version");
          }
          return;
        }
      }
      auto ait = aborted_values_[op.engine].find(kid);
      if (ait != aborted_values_[op.engine].end()) {
        auto w = ait->second.find(op.value);
        if (w != ait->second.end()) {
          Add(SiViolation::Kind::kDirtyRead, t.gtid, w->second,
              os.str() + " — value written only by aborted T" +
                  std::to_string(w->second));
          return;
        }
      }
      Add(SiViolation::Kind::kDirtyRead, t.gtid, 0,
          os.str() + " — value matches no recorded write");
      return;
    }
    Add(SiViolation::Kind::kStaleRead, t.gtid, exp ? exp->txn->gtid : 0,
        os.str() + " — visible version missed");
  }

  // First-committer-wins: of two committed SI writers to the same key, the
  // later one's snapshot must cover the earlier one's commit (it saw what
  // it overwrote). Read-committed writers refresh per access and are
  // exempt (first-UPDATER-wins still aborts live conflicts, but a commit
  // between two refreshes is legal to overwrite).
  void CheckLostUpdates() {
    for (int e = 0; e < kNumEngines; ++e) {
      for (const auto& [kid, vs] : versions_[e]) {
        for (size_t i = 1; i < vs.size(); ++i) {
          const Version& prev = vs[i - 1];
          const Version& cur = vs[i];
          if (cur.txn->iso == IsolationLevel::kReadCommitted) continue;
          if (cur.write_snap == kInvalidTimestamp ||
              cur.write_snap == kMaxTimestamp) {
            continue;
          }
          if (cur.write_snap < prev.cts) {
            Add(SiViolation::Kind::kLostUpdate, cur.txn->gtid,
                prev.txn->gtid,
                "T" + std::to_string(cur.txn->gtid) + " overwrote " +
                    KeyStr(kid) + "@" + std::to_string(e) +
                    " committed by T" + std::to_string(prev.txn->gtid) +
                    " (cts=" + std::to_string(prev.cts) +
                    ") it could not see (snap=" +
                    std::to_string(cur.write_snap) + ")");
          }
        }
      }
    }
  }

  // Cross-engine atomicity over snapshot pairs: a committed writer of BOTH
  // engines must be entirely inside or entirely outside every snapshot
  // pair any transaction ever held ((sa >= ca) <=> (so >= co)), and
  // committed pairs must be monotone across the two engines.
  void CheckCrossPairs() {
    const int a = opts_.anchor_index;
    const int o = 1 - a;
    struct Pair {
      Timestamp ca, co;
      const TxnHistory* txn;
    };
    std::vector<Pair> writers;
    // Other-engine-only writers also serialize through the CSR (their
    // anchor position is their anchor begin snapshot); they join the
    // monotonicity check but carry no cross-atomicity obligation.
    std::vector<Pair> other_only;
    for (const TxnHistory& t : history_) {
      if (!Durable(t) || !t.skeena) continue;
      if (t.wrote[a] && t.wrote[o] && t.commit[a] != 0 && t.commit[o] != 0) {
        writers.push_back(Pair{t.commit[a], t.commit[o], &t});
      } else if (!t.wrote[a] && t.wrote[o] && t.commit[o] != 0 &&
                 t.anchor_snap != kInvalidTimestamp) {
        other_only.push_back(Pair{t.anchor_snap, t.commit[o], &t});
      }
    }
    std::sort(writers.begin(), writers.end(),
              [](const Pair& x, const Pair& y) { return x.ca < y.ca; });
    report_.pairs = writers.size();

    // Monotonicity: strictly increasing co across strictly increasing
    // anchor positions, over cross writers and other-only writers alike.
    std::vector<Pair> ordered = writers;
    ordered.insert(ordered.end(), other_only.begin(), other_only.end());
    std::sort(ordered.begin(), ordered.end(),
              [](const Pair& x, const Pair& y) { return x.ca < y.ca; });
    for (size_t i = 1; i < ordered.size(); ++i) {
      const Pair& p = ordered[i - 1];
      const Pair& q = ordered[i];
      if (p.ca < q.ca && p.co >= q.co) {
        Add(SiViolation::Kind::kPairInversion, q.txn->gtid, p.txn->gtid,
            "commit pairs inverted: T" + std::to_string(p.txn->gtid) +
                " (" + std::to_string(p.ca) + "," + std::to_string(p.co) +
                ") vs T" + std::to_string(q.txn->gtid) + " (" +
                std::to_string(q.ca) + "," + std::to_string(q.co) + ")");
      }
    }

    if (writers.empty()) return;
    // prefix_max_co[i] = max co over writers[0..i]; suffix_min_co[i] = min
    // co over writers[i..]. A pair (sa, so) is torn iff some writer with
    // ca <= sa has co > so (half missing) or some writer with ca > sa has
    // co <= so (half visible).
    std::vector<Timestamp> prefix_max(writers.size());
    std::vector<Timestamp> suffix_min(writers.size());
    for (size_t i = 0; i < writers.size(); ++i) {
      prefix_max[i] =
          i == 0 ? writers[i].co : std::max(prefix_max[i - 1], writers[i].co);
    }
    for (size_t i = writers.size(); i-- > 0;) {
      suffix_min[i] = i + 1 == writers.size()
                          ? writers[i].co
                          : std::min(suffix_min[i + 1], writers[i].co);
    }
    for (const TxnHistory& t : history_) {
      if (!t.skeena) continue;
      for (const auto& [sa, so] : t.snap_pairs) {
        // Index of the first writer with ca > sa.
        size_t cut = static_cast<size_t>(
            std::upper_bound(writers.begin(), writers.end(), sa,
                             [](Timestamp s, const Pair& w) {
                               return s < w.ca;
                             }) -
            writers.begin());
        const Pair* bad = nullptr;
        if (cut > 0 && prefix_max[cut - 1] > so) {
          for (size_t i = 0; i < cut; ++i) {
            if (writers[i].co > so && writers[i].txn != &t) {
              bad = &writers[i];
              break;
            }
          }
          if (bad != nullptr) {
            Add(SiViolation::Kind::kCrossSkew, t.gtid, bad->txn->gtid,
                "pair (" + std::to_string(sa) + "," + std::to_string(so) +
                    ") of T" + std::to_string(t.gtid) + " sees T" +
                    std::to_string(bad->txn->gtid) + " (" +
                    std::to_string(bad->ca) + "," +
                    std::to_string(bad->co) +
                    ") in the anchor engine but not the other");
          }
        }
        if (cut < writers.size() && suffix_min[cut] <= so) {
          bad = nullptr;
          for (size_t i = cut; i < writers.size(); ++i) {
            if (writers[i].co <= so && writers[i].txn != &t) {
              bad = &writers[i];
              break;
            }
          }
          if (bad != nullptr) {
            Add(SiViolation::Kind::kCrossSkew, t.gtid, bad->txn->gtid,
                "pair (" + std::to_string(sa) + "," + std::to_string(so) +
                    ") of T" + std::to_string(t.gtid) + " sees T" +
                    std::to_string(bad->txn->gtid) + " (" +
                    std::to_string(bad->ca) + "," +
                    std::to_string(bad->co) +
                    ") in the other engine but not the anchor");
          }
        }
      }
    }
  }

  // Every acknowledged cross-engine commit must appear in the CSR's
  // published mappings ([vmin, vmax] at its anchor commit key), unless its
  // partition was recycled (key < floor).
  void CheckCsrContainment() {
    if (!opts_.have_csr_dump) return;
    const int a = opts_.anchor_index;
    const int o = 1 - a;
    for (const TxnHistory& t : history_) {
      if (t.outcome != TxnHistory::Outcome::kCommitted || !t.skeena) continue;
      if (!t.wrote[a] || !t.wrote[o]) continue;
      Timestamp ca = t.commit[a], co = t.commit[o];
      if (ca < opts_.csr_floor) continue;
      auto it = std::lower_bound(
          opts_.csr_mappings.begin(), opts_.csr_mappings.end(), ca,
          [](const SiCheckOptions::CsrMapping& m, Timestamp k) {
            return m.key < k;
          });
      if (it == opts_.csr_mappings.end() || it->key != ca ||
          co < it->vmin || co > it->vmax) {
        Add(SiViolation::Kind::kCsrMismatch, t.gtid, 0,
            "committed pair (" + std::to_string(ca) + "," +
                std::to_string(co) + ") of T" + std::to_string(t.gtid) +
                " not contained in the CSR's published mappings");
      }
    }
  }

  // Session order: a transaction begun after an earlier commit was
  // acknowledged on the same session must start at or past that commit's
  // anchor position.
  void CheckSessionOrder() {
    const int a = opts_.anchor_index;
    std::unordered_map<uint64_t, std::pair<Timestamp, GlobalTxnId>> last;
    for (const TxnHistory& t : history_) {  // sorted by (session, seq)
      // Replica sessions lag the primary by design; staleness relative to
      // primary commits is legal there (monotonicity is checked by
      // CheckReplicaSessions instead).
      if (opts_.replica_session_floor != 0 &&
          t.session >= opts_.replica_session_floor) {
        continue;
      }
      auto it = last.find(t.session);
      if (it != last.end() && t.skeena &&
          t.anchor_snap != kInvalidTimestamp &&
          t.anchor_snap < it->second.first) {
        Add(SiViolation::Kind::kSessionOrder, t.gtid, it->second.second,
            "T" + std::to_string(t.gtid) + " began at anchor snapshot " +
                std::to_string(t.anchor_snap) +
                " behind the acknowledged commit " +
                std::to_string(it->second.first) + " of T" +
                std::to_string(it->second.second) + " on the same session");
      }
      if (t.outcome == TxnHistory::Outcome::kCommitted && t.skeena &&
          t.wrote[a] && t.commit[a] != 0) {
        auto& slot = last[t.session];
        if (t.commit[a] > slot.first) slot = {t.commit[a], t.gtid};
      }
    }
  }

  // Replica sessions (id >= replica_session_floor) read through the
  // visibility gate. Their snapshots may trail the primary arbitrarily,
  // but the gate is monotone per session: a later read must never observe
  // a snapshot pair below an earlier one on either component.
  void CheckReplicaSessions() {
    std::unordered_map<uint64_t, std::pair<Timestamp, Timestamp>> last;
    for (const TxnHistory& t : history_) {  // sorted by (session, seq)
      if (t.session < opts_.replica_session_floor) continue;
      auto [it, fresh] = last.emplace(t.session, std::make_pair(Timestamp{0},
                                                                Timestamp{0}));
      (void)fresh;
      for (const auto& [sa, so] : t.snap_pairs) {
        if (sa < it->second.first || so < it->second.second) {
          Add(SiViolation::Kind::kGateRegression, t.gtid, 0,
              "replica session " + std::to_string(t.session) +
                  " snapshot pair regressed to (" + std::to_string(sa) + "," +
                  std::to_string(so) + ") from (" +
                  std::to_string(it->second.first) + "," +
                  std::to_string(it->second.second) + ") at T" +
                  std::to_string(t.gtid));
        }
        it->second.first = std::max(it->second.first, sa);
        it->second.second = std::max(it->second.second, so);
      }
    }
  }

  // ---- post-recovery audit ------------------------------------------

  void AuditFinalState(const FinalStateRows final_rows[kNumEngines]) {
    // Per engine/key: the recovered value must be producible by the
    // version list, and nothing at or below the last ACKED commit may be
    // lost (unacked suffix writers may legitimately survive or vanish).
    struct Survival {
      bool survived = false;
      bool lost = false;
    };
    std::unordered_map<GlobalTxnId, Survival> unacked[kNumEngines];

    for (int e = 0; e < kNumEngines; ++e) {
      KeyMap<bool> covered;
      for (const auto& [kid, vs] : versions_[e]) {
        covered[kid] = true;
        auto fit = final_rows[e].find({kid.table, kid.key});
        bool present = fit != final_rows[e].end();

        // The version that explains the final state: scan new→old for the
        // first version matching the observation.
        const Version* match = nullptr;
        for (size_t i = vs.size(); i-- > 0;) {
          const Version& v = vs[i];
          bool v_present = v.op->kind == HistOpKind::kPut;
          if (present == v_present &&
              (!present || fit->second == v.op->value)) {
            match = &v;
            break;
          }
        }
        // "Deleted by nobody": an absent key also matches the initial
        // (empty) state if no writer is required to have survived.
        const Version* last_acked = nullptr;
        for (size_t i = vs.size(); i-- > 0;) {
          if (vs[i].txn->outcome == TxnHistory::Outcome::kCommitted) {
            last_acked = &vs[i];
            break;
          }
        }
        if (match == nullptr && !(present || last_acked != nullptr)) {
          // Absent, and nothing acked ever wrote it: initial state.
          for (const Version& v : vs) NoteLost(unacked, e, v);
          continue;
        }
        if (match == nullptr) {
          if (!present && last_acked != nullptr) {
            // An acknowledged writer put the key there and nothing could
            // have removed it, yet recovery came up empty.
            Add(SiViolation::Kind::kDurabilityLost, last_acked->txn->gtid,
                0,
                "acknowledged write to " + KeyStr(kid) + "@" +
                    std::to_string(e) + " by T" +
                    std::to_string(last_acked->txn->gtid) +
                    " lost: key absent after recovery");
          } else {
            Add(SiViolation::Kind::kCorruptState, 0, 0,
                "recovered " + KeyStr(kid) + "@" + std::to_string(e) +
                    " = " +
                    (present ? "\"" + fit->second + "\"" : "<absent>") +
                    " matches no recorded committed write");
          }
          continue;
        }
        if (last_acked != nullptr && match->cts < last_acked->cts) {
          Add(SiViolation::Kind::kDurabilityLost, last_acked->txn->gtid,
              match->txn->gtid,
              "acknowledged write to " + KeyStr(kid) + "@" +
                  std::to_string(e) + " by T" +
                  std::to_string(last_acked->txn->gtid) + " (cts=" +
                  std::to_string(last_acked->cts) +
                  ") lost: recovered state matches older T" +
                  std::to_string(match->txn->gtid));
        }
        // Survival evidence for unacked writers: the matching version
        // survived; every version NEWER than the match was provably not
        // applied (nothing can roll forward past the match).
        if (match->txn->outcome == TxnHistory::Outcome::kUnacked) {
          unacked[e][match->txn->gtid].survived = true;
        }
        for (size_t i = vs.size(); i-- > 0;) {
          if (&vs[i] == match) break;
          NoteLost(unacked, e, vs[i]);
        }
      }
      // Keys present on disk that no committed transaction ever wrote.
      for (const auto& [tk, value] : final_rows[e]) {
        KeyId kid{tk.first, tk.second};
        if (covered.find(kid) == covered.end()) {
          Add(SiViolation::Kind::kCorruptState, 0, 0,
              "recovered " + KeyStr(kid) + "@" + std::to_string(e) +
                  " = \"" + value + "\" on a key no recorded transaction " +
                  "committed to");
        }
      }
    }

    // All-or-nothing recovery for unacked cross-engine transactions:
    // surviving in one engine while provably rolled back in the other is a
    // torn commit (Section 4.6).
    for (const TxnHistory& t : history_) {
      if (t.outcome != TxnHistory::Outcome::kUnacked) continue;
      if (!t.wrote[0] || !t.wrote[1]) continue;
      for (int e = 0; e < kNumEngines; ++e) {
        auto here = unacked[e].find(t.gtid);
        auto there = unacked[1 - e].find(t.gtid);
        if (here != unacked[e].end() && here->second.survived &&
            there != unacked[1 - e].end() && there->second.lost) {
          Add(SiViolation::Kind::kTornRecovery, t.gtid, 0,
              "unacked cross-engine T" + std::to_string(t.gtid) +
                  " recovered in engine " + std::to_string(e) +
                  " but rolled back in engine " + std::to_string(1 - e));
          break;
        }
      }
    }
  }

  template <typename M>
  static void NoteLost(M& unacked, int e, const Version& v) {
    if (v.txn->outcome == TxnHistory::Outcome::kUnacked) {
      unacked[e][v.txn->gtid].lost = true;
    }
  }

  const std::vector<TxnHistory>& history_;
  const SiCheckOptions& opts_;
  SiReport report_;

  KeyMap<std::vector<Version>> versions_[kNumEngines];
  KeyMap<std::unordered_map<std::string, GlobalTxnId>>
      aborted_values_[kNumEngines];
};

}  // namespace

const char* SiViolationKindName(SiViolation::Kind kind) {
  switch (kind) {
    case SiViolation::Kind::kDirtyRead: return "dirty-read";
    case SiViolation::Kind::kFutureRead: return "future-read";
    case SiViolation::Kind::kStaleRead: return "stale-read";
    case SiViolation::Kind::kReadYourWrites: return "read-your-writes";
    case SiViolation::Kind::kLostUpdate: return "lost-update";
    case SiViolation::Kind::kCrossSkew: return "cross-skew";
    case SiViolation::Kind::kPairInversion: return "pair-inversion";
    case SiViolation::Kind::kCsrMismatch: return "csr-mismatch";
    case SiViolation::Kind::kSessionOrder: return "session-order";
    case SiViolation::Kind::kGateRegression: return "gate-regression";
    case SiViolation::Kind::kDurabilityLost: return "durability-lost";
    case SiViolation::Kind::kTornRecovery: return "torn-recovery";
    case SiViolation::Kind::kCorruptState: return "corrupt-state";
  }
  return "unknown";
}

std::string SiReport::Summary(size_t max_violations) const {
  std::ostringstream os;
  os << txns << " txns, " << reads << " reads, " << writes << " writes, "
     << pairs << " cross pairs: ";
  if (violations.empty()) {
    os << "OK";
    return os.str();
  }
  os << violations.size() << " violation(s)";
  size_t n = std::min(max_violations, violations.size());
  for (size_t i = 0; i < n; ++i) {
    os << "\n  [" << SiViolationKindName(violations[i].kind) << "] "
       << violations[i].detail;
  }
  if (n < violations.size()) {
    os << "\n  ... " << (violations.size() - n) << " more";
  }
  return os.str();
}

SiReport CheckSnapshotIsolation(const std::vector<TxnHistory>& history,
                                const SiCheckOptions& opts) {
  return Checker(history, opts).Run();
}

SiReport CheckRecoveredState(const std::vector<TxnHistory>& history,
                             const FinalStateRows final_rows[kNumEngines],
                             const SiCheckOptions& opts) {
  return Checker(history, opts).RunRecoveredState(final_rows);
}

std::string DumpHistory(const std::vector<TxnHistory>& history) {
  std::ostringstream os;
  for (const TxnHistory& t : history) {
    os << "T" << t.gtid << " s" << t.session << "#" << t.seq << " iso="
       << static_cast<int>(t.iso) << (t.skeena ? "" : " raw");
    switch (t.outcome) {
      case TxnHistory::Outcome::kInFlight: os << " IN-FLIGHT"; break;
      case TxnHistory::Outcome::kCommitted: os << " committed"; break;
      case TxnHistory::Outcome::kAborted: os << " aborted"; break;
      case TxnHistory::Outcome::kUnacked: os << " UNACKED"; break;
    }
    os << " anchor=" << t.anchor_snap;
    for (int e = 0; e < kNumEngines; ++e) {
      if (!t.used[e]) continue;
      os << " e" << e << "[b=" << t.begin[e] << " c=" << t.commit[e]
         << (t.wrote[e] ? " w" : "")
         << (t.post_committed[e] ? " pc" : "") << "]";
    }
    for (const auto& [sa, so] : t.snap_pairs) {
      os << " pair=(" << sa << "," << so << ")";
    }
    os << "\n";
    for (const HistOp& op : t.ops) {
      os << "  ";
      switch (op.kind) {
        case HistOpKind::kGet: os << "G"; break;
        case HistOpKind::kPut: os << "P"; break;
        case HistOpKind::kDelete: os << "D"; break;
        case HistOpKind::kScanRow: os << "S"; break;
      }
      os << " e" << static_cast<int>(op.engine) << " t" << op.table << "/k"
         << KeyPrefixU64(op.key) << " snap=" << op.snapshot;
      if (IsRead(op)) {
        os << (op.found ? " -> \"" + op.value + "\"" : " -> <absent>");
      } else if (op.kind == HistOpKind::kPut) {
        os << " := \"" + op.value + "\"";
      }
      os << "\n";
    }
  }
  return os.str();
}

}  // namespace skeena
