#ifndef SKEENA_CORE_TRANSACTION_H_
#define SKEENA_CORE_TRANSACTION_H_

#include <functional>
#include <memory>
#include <string>

#include "common/encoding.h"
#include "common/status.h"
#include "common/types.h"
#include "core/commit_pipeline.h"
#include "core/database.h"
#include "core/engine_iface.h"

namespace skeena {

/// A user-level transaction that may span both engines.
///
/// Transactions are not declared cross-engine up front (paper Section 3,
/// "Transparent Adoption"): accesses are routed by each table's home
/// engine, sub-transactions open lazily, and a transaction *becomes*
/// cross-engine on its first access to a second engine. Under Skeena:
///
///  * the anchor snapshot is acquired from the anchor engine at the first
///    data access (one atomic load);
///  * crossing into the non-anchor engine runs CSR snapshot selection
///    (Algorithm 1);
///  * Commit() runs the three-step protocol of Section 4.5 — pre-commit
///    both sub-transactions, CSR commit check (Algorithm 2), post-commit
///    both — then waits on the pipelined commit queue until both engines'
///    logs cover the transaction.
///
/// With Skeena disabled (Database option), sub-transactions use each
/// engine's native snapshots and commit independently: the anomaly baseline
/// and the paper's single-engine configurations.
class Transaction {
 public:
  ~Transaction();

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  Status Get(const TableHandle& table, const Key& key, std::string* value);
  Status Put(const TableHandle& table, const Key& key,
             std::string_view value);
  Status Delete(const TableHandle& table, const Key& key);
  /// Visits visible rows with key >= lower (<= limit rows; 0 = unlimited).
  Status Scan(const TableHandle& table, const Key& lower, size_t limit,
              const std::function<bool(const Key&, const std::string&)>& cb);

  // Convenience overloads resolving the table by name.
  Status Get(const std::string& table, const Key& key, std::string* value);
  Status Put(const std::string& table, const Key& key,
             std::string_view value);

  /// Commits; blocks until the transaction's results are durable in every
  /// engine it touched (pipelined commit). Any abort flavour rolls back
  /// all sub-transactions.
  Status Commit();

  /// Rolls back all sub-transactions. Idempotent.
  void Abort();

  IsolationLevel isolation() const { return iso_; }
  Timestamp anchor_snapshot() const { return anchor_snap_; }
  bool is_cross_engine() const { return used_[0] && used_[1]; }
  GlobalTxnId gtid() const { return gtid_; }

 private:
  friend class Database;
  Transaction(Database* db, IsolationLevel iso);

  // Routes + prepares the sub-transaction for engine `e` (anchor snapshot
  // acquisition, CSR selection, read-committed refresh).
  Status PrepareAccess(int e);
  Status EnsureAnchorSnapshot();
  // Replica mode: pins the visibility-gate snapshot pair (both registries
  // pre-registered before the pair is read, so GC floors cannot pass it).
  Status EnsureReplicaSnapshots();
  // Aborts everything after an engine-level abort surfaced from a data op.
  Status HandleOpStatus(int e, Status s);
  void ReleaseAnchorSlot();
  // Appends one op to the history record (no-op when not recording).
  void RecordOp(HistOpKind kind, int e, TableId table, const Key& key,
                std::string_view value, bool found);

  Database* db_;
  IsolationLevel iso_;
  GlobalTxnId gtid_;
  bool skeena_on_;

  Timestamp anchor_snap_ = kInvalidTimestamp;
  size_t anchor_slot_ = ~size_t{0};
  // Replica mode: the gate pair's other-engine component and its slot in
  // the replica-other registry (pins the other engine's purge floor).
  Timestamp replica_other_snap_ = kInvalidTimestamp;
  size_t replica_other_slot_ = ~size_t{0};

  std::unique_ptr<SubTxn> subs_[kNumEngines];
  bool used_[kNumEngines] = {false, false};

  enum class State { kActive, kCommitted, kAborted };
  State state_ = State::kActive;

  // Shared with the commit daemon: it may still be completing this waiter
  // when the transaction object is destroyed. Allocated lazily in Commit()
  // — read-only/aborted transactions never reach the pipeline.
  std::shared_ptr<CommitWaiter> waiter_;

  // Verification hook (core/history.h). Null unless the database records
  // histories, so the disabled cost on every data op is one branch. The
  // record is built privately here — no cross-thread traffic until the
  // finished record files into the recorder's thread shard.
  std::unique_ptr<TxnHistory> hist_;
  // Engine-local snapshot in effect for the next data op (tracks
  // read-committed refreshes); stamps each recorded op.
  Timestamp hist_snap_[kNumEngines] = {kInvalidTimestamp, kInvalidTimestamp};
};

}  // namespace skeena

#endif  // SKEENA_CORE_TRANSACTION_H_
