#ifndef SKEENA_CORE_COMMIT_PIPELINE_H_
#define SKEENA_CORE_COMMIT_PIPELINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.h"
#include "core/engine_iface.h"

namespace skeena {

/// Completion handle a committing client blocks on. Results of a
/// transaction become visible internally at post-commit, but are only
/// released to the application once the commit daemon observes both
/// engines' durable LSNs covering the transaction (paper Section 4.5).
class CommitWaiter {
 public:
  void Complete() {
    {
      std::lock_guard<std::mutex> guard(mu_);
      done_ = true;
    }
    cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> guard(mu_);
    cv_.wait(guard, [this] { return done_; });
  }

  void Reset() {
    std::lock_guard<std::mutex> guard(mu_);
    done_ = false;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
};

/// Skeena's extended group/pipelined commit (paper Section 4.5, after
/// Aether [34]): worker threads detach committing transactions onto a
/// commit queue and move on; a committer daemon monitors the durable LSNs
/// of *both* engines and completes transactions whose sub-transactions'
/// log records have fully persisted. Single-engine and read-only
/// transactions also pass through the queue because they may have read
/// cross-engine results that are not yet durable.
class CommitPipeline {
 public:
  enum class Mode {
    kPipelined,  // queue + daemon (the paper's design)
    kSync,       // ablation: force both logs durable on the caller's thread
  };

  struct Options {
    Mode mode = Mode::kPipelined;
    /// Number of commit queues (1 = the paper's global queue; more =
    /// "partitioned queue to avoid introducing a central bottleneck").
    size_t num_queues = 1;
  };

  CommitPipeline(Options options, EngineIface* engine0, EngineIface* engine1);
  ~CommitPipeline();

  CommitPipeline(const CommitPipeline&) = delete;
  CommitPipeline& operator=(const CommitPipeline&) = delete;

  /// Enqueues a committed transaction awaiting durability of
  /// `lsns[engine]` in each engine (0 = nothing to wait for in that
  /// engine). `waiter->Complete()` fires when durable. `queue_hint`
  /// selects the partitioned queue (e.g., worker id). The waiter is shared:
  /// the daemon keeps its own reference while completing, so the waiting
  /// side may destroy its handle the moment Wait() returns.
  void Enqueue(const Lsn lsns[2], std::shared_ptr<CommitWaiter> waiter,
               size_t queue_hint = 0);

  /// Convenience: enqueue + block until durable.
  void EnqueueAndWait(const Lsn lsns[2],
                      const std::shared_ptr<CommitWaiter>& waiter,
                      size_t queue_hint = 0);

  uint64_t completed() const {
    return completed_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    Lsn lsns[2];
    std::shared_ptr<CommitWaiter> waiter;
  };
  struct Queue {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Entry> entries;
  };

  void DaemonLoop(size_t queue_idx);

  Options options_;
  EngineIface* engines_[2];
  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> daemons_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> completed_{0};
};

}  // namespace skeena

#endif  // SKEENA_CORE_COMMIT_PIPELINE_H_
