#ifndef SKEENA_CORE_COMMIT_PIPELINE_H_
#define SKEENA_CORE_COMMIT_PIPELINE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/parking_lot.h"
#include "common/sharded_counter.h"
#include "common/types.h"
#include "core/engine_iface.h"

namespace skeena {

/// Completion handle a committing client blocks on. Results of a
/// transaction become visible internally at post-commit, but are only
/// released to the application once the commit daemon observes both
/// engines' durable LSNs covering the transaction (paper Section 4.5).
///
/// The handle is one atomic state word (kPending → kDone) instead of a
/// mutex+condvar: completion is a single exchange, and the kernel is only
/// touched when a waiter actually parked on this word (kParked). Pipelined
/// commits normally never do — they park on the queue's shared drain word
/// (see CommitPipeline::EnqueueAndWait) so one batched unpark releases a
/// whole durable-LSN advance.
class CommitWaiter {
 public:
  /// Marks the waiter done and unparks any thread parked on this word.
  /// Returns true iff a kernel wake was issued.
  bool Complete() {
    uint32_t prev = state_.exchange(kDone, std::memory_order_acq_rel);
    if (prev == kParked) {
      ParkingLot::WakeAll(state_);
      return true;
    }
    return false;
  }

  bool done() const {
    return state_.load(std::memory_order_acquire) == kDone;
  }

  /// Standalone blocking wait: spin briefly, then park on this waiter's own
  /// word. Multiple threads may wait on one handle.
  void Wait() {
    if (SpinUntil([this] { return done(); })) return;
    uint32_t s = state_.load(std::memory_order_acquire);
    while (s != kDone) {
      if (s == kPending &&
          !state_.compare_exchange_weak(s, kParked,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        continue;  // raced with Complete() or another waiter; re-examine
      }
      ParkingLot::Park(state_, kParked);
      s = state_.load(std::memory_order_acquire);
    }
  }

  void Reset() { state_.store(kPending, std::memory_order_release); }

 private:
  static constexpr uint32_t kPending = 0;
  static constexpr uint32_t kParked = 1;  // someone parked on this word
  static constexpr uint32_t kDone = 2;

  std::atomic<uint32_t> state_{kPending};
};

/// Skeena's extended group/pipelined commit (paper Section 4.5, after
/// Aether [34]): worker threads detach committing transactions onto a
/// commit queue and move on; a committer daemon monitors the durable LSNs
/// of *both* engines and completes transactions whose sub-transactions'
/// log records have fully persisted. Single-engine and read-only
/// transactions also pass through the queue because they may have read
/// cross-engine results that are not yet durable.
///
/// Wakeup path: the daemon drains its queue in one pass, waits once per
/// engine for the batch's maximum LSN, completes every covered transaction,
/// and issues ONE batched unpark on the queue's drain word — syscall
/// wakeups per commit shrink with the batch size instead of being 1.0 by
/// construction (see DESIGN.md "Commit wakeup path").
class CommitPipeline {
 public:
  enum class Mode {
    kPipelined,  // queue + daemon (the paper's design)
    kSync,       // ablation: force both logs durable on the caller's thread
  };

  struct Options {
    Mode mode = Mode::kPipelined;
    /// Number of commit queues (1 = the paper's global queue; more =
    /// "partitioned queue to avoid introducing a central bottleneck").
    size_t num_queues = 1;
  };

  /// Wakeup accounting (sharded counters; folded on read).
  struct Stats {
    uint64_t completed = 0;
    /// Kernel unpark syscalls issued to release committers: one per daemon
    /// drain with parked waiters, plus direct CommitWaiter wakes (waiters
    /// that parked on their own handle instead of the queue drain word).
    uint64_t wake_syscalls = 0;
    /// Producer→daemon work wakeups (empty→non-empty enqueues that found
    /// the daemon parked).
    uint64_t daemon_wakes = 0;
    /// EnqueueAndWait waits that truly blocked in the kernel at least once
    /// (immediate park returns — the word moved first — do not count).
    uint64_t waiter_parks = 0;
    /// EnqueueAndWait waits resolved without parking (spin budget or a
    /// pre-park recheck win). waiter_parks + waiter_spin_successes equals
    /// the number of pipelined EnqueueAndWait calls.
    uint64_t waiter_spin_successes = 0;
    /// Daemon drain passes that completed >= 1 transaction.
    uint64_t drain_batches = 0;
    /// Entries pushed onto a commit queue via the wait-free MPSC exchange.
    uint64_t enqueued = 0;
    /// Completions that never touched a queue: both logs already durable
    /// at Enqueue, or kSync mode. Once drained,
    /// completed == enqueued + completed_inline.
    uint64_t completed_inline = 0;
    /// Daemon retries that found a producer mid-push (tail exchanged, next
    /// pointer not yet linked) — the only wait anywhere in the handoff.
    uint64_t handoff_spins = 0;
  };

  CommitPipeline(Options options, EngineIface* engine0, EngineIface* engine1);
  ~CommitPipeline();

  CommitPipeline(const CommitPipeline&) = delete;
  CommitPipeline& operator=(const CommitPipeline&) = delete;

  /// Enqueues a committed transaction awaiting durability of
  /// `lsns[engine]` in each engine (0 = nothing to wait for in that
  /// engine). `waiter->Complete()` fires when durable. `queue_hint`
  /// selects the partitioned queue (e.g., worker id). The waiter is shared:
  /// the daemon keeps its own reference while completing, so the waiting
  /// side may destroy its handle the moment Wait() returns. Entries whose
  /// LSNs are already durable complete inline without touching the queue.
  void Enqueue(const Lsn lsns[2], std::shared_ptr<CommitWaiter> waiter,
               size_t queue_hint = 0);

  /// Convenience: enqueue + block until durable. Spins briefly, then parks
  /// on the queue's shared drain word so the daemon's batched unpark (one
  /// syscall per drain) covers every waiter of that drain.
  void EnqueueAndWait(const Lsn lsns[2],
                      const std::shared_ptr<CommitWaiter>& waiter,
                      size_t queue_hint = 0);

  uint64_t completed() const {
    return completed_.load(std::memory_order_relaxed);
  }

  Stats stats() const;

 private:
  /// Commit-queue node. Producer-allocated, consumer-freed; `next` is the
  /// intrusive MPSC link.
  struct Entry {
    Lsn lsns[2] = {0, 0};
    std::shared_ptr<CommitWaiter> waiter;
    std::atomic<Entry*> next{nullptr};
  };
  /// A drained entry's payload (the node itself is already freed).
  struct PendingCommit {
    Lsn lsns[2];
    std::shared_ptr<CommitWaiter> waiter;
  };
  struct Queue {
    /// Intrusive MPSC list (Vyukov): producers push with one wait-free
    /// exchange on `tail` + a release store linking `next`; the daemon is
    /// the single consumer walking from `head`. `stub` keeps the list
    /// non-empty so neither side ever needs a CAS loop. There is no
    /// producer lock and no daemon swap lock.
    Entry stub;
    std::atomic<Entry*> tail{&stub};
    Entry* head = &stub;  // consumer-only

    ~Queue() {
      // Free anything never drained (callers must not race Enqueue with
      // pipeline destruction, but a leak here would mask that bug in ASan).
      Entry* node = head;
      while (node != nullptr) {
        Entry* next = node->next.load(std::memory_order_relaxed);
        if (node != &stub) delete node;
        node = next;
      }
    }
    /// Entries pushed but not yet drained. Producers bump it *before* the
    /// push; the 0 -> 1 edge elects the waker, and the daemon parks only
    /// after re-reading it as zero.
    std::atomic<uint64_t> pending{0};
    /// Daemon work word: bumped on empty→non-empty enqueue and at
    /// shutdown; the daemon parks here when its queue is empty.
    std::atomic<uint32_t> work_seq{0};
    std::atomic<uint32_t> daemon_parked{0};
    /// Drain word: bumped once per daemon drain pass. EnqueueAndWait
    /// waiters park here, so one WakeAll releases the whole batch.
    std::atomic<uint32_t> drain_seq{0};
    std::atomic<uint32_t> parked_waiters{0};
  };

  Queue& QueueFor(size_t hint) {
    return *queues_[hint % queues_.size()];
  }

  /// True when both engines' durable LSNs already cover `lsns`.
  bool Covered(const Lsn lsns[2]) const;

  /// Single-consumer pop. Returns nullptr when the queue is empty — or
  /// when a producer has exchanged `tail` but not yet linked `next` (the
  /// caller distinguishes via `pending` and retries). Caller frees the
  /// returned node.
  static Entry* TryPop(Queue& q);
  /// Drains everything poppable right now into `out`; returns the count.
  size_t DrainInto(Queue& q, std::deque<PendingCommit>& out);

  void DaemonLoop(size_t queue_idx);

  Options options_;
  EngineIface* engines_[2];
  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> daemons_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> completed_{0};
  /// Pipelined EnqueueAndWait calls currently inside the wait path; the
  /// destructor spins this to zero after completing + unparking everyone,
  /// so exiting waiters never touch freed queue/counter state.
  std::atomic<uint64_t> in_flight_{0};

  ShardedCounter wake_syscalls_;
  ShardedCounter daemon_wakes_;
  ShardedCounter waiter_parks_;
  ShardedCounter waiter_spin_successes_;
  ShardedCounter drain_batches_;
  ShardedCounter enqueued_;
  ShardedCounter completed_inline_;
  ShardedCounter handoff_spins_;
};

}  // namespace skeena

#endif  // SKEENA_CORE_COMMIT_PIPELINE_H_
