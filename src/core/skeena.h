#ifndef SKEENA_CORE_SKEENA_H_
#define SKEENA_CORE_SKEENA_H_

/// Umbrella header: the public API of the Skeena cross-engine transaction
/// library.
///
///   skeena::DatabaseOptions opts;
///   skeena::Database db(opts);
///   auto orders = db.CreateTable("orders", skeena::EngineKind::kMem);
///   auto history = db.CreateTable("history", skeena::EngineKind::kStor);
///   auto txn = db.Begin(skeena::IsolationLevel::kSnapshot);
///   txn->Put(*orders, skeena::MakeKey(42), "payload");
///   std::string v;
///   txn->Get(*history, skeena::MakeKey(7), &v);   // now cross-engine
///   skeena::Status s = txn->Commit();             // Skeena protocol
///
/// See DESIGN.md for the system inventory and paper mapping.

#include "common/encoding.h"
#include "common/status.h"
#include "common/types.h"
#include "core/database.h"
#include "core/transaction.h"

#endif  // SKEENA_CORE_SKEENA_H_
