#ifndef SKEENA_CORE_ENGINE_IFACE_H_
#define SKEENA_CORE_ENGINE_IFACE_H_

#include <functional>
#include <memory>
#include <set>
#include <string>

#include "common/encoding.h"
#include "common/status.h"
#include "common/types.h"

namespace skeena {

class LogManager;
class StorageDevice;

/// Opaque engine-level sub-transaction handle (paper Section 1.1: a
/// cross-engine transaction consists of one sub-transaction per engine).
class SubTxn {
 public:
  virtual ~SubTxn() = default;
};

/// The narrow engine contract Skeena requires (paper Section 4.9): engines
/// stay autonomous; the coordinator only needs snapshot-based begin, the
/// pre-/post-commit split exposing commit timestamps, data access routing
/// and durable-LSN visibility for the pipelined commit daemon.
///
/// Snapshot convention: `kMaxTimestamp` means "latest / native snapshot";
/// any other value is a CSR-selected snapshot in this engine's commit-order
/// space (memdb: commit timestamp; stordb: serialisation_no).
class EngineIface {
 public:
  virtual ~EngineIface() = default;

  virtual EngineKind kind() const = 0;

  // ------------------------------------------------------------ schema
  virtual TableId CreateTable(const std::string& name,
                              size_t max_value_size) = 0;

  // ------------------------------------------------------ transactions
  /// Latest snapshot in this engine (anchor acquisition / CSR Algorithm 1
  /// fallback).
  virtual Timestamp LatestSnapshot() const = 0;

  /// Begins a sub-transaction. Returns nullptr when a coordinator-chosen
  /// snapshot can no longer be served (it predates the engine's GC/purge
  /// floor); the coordinator treats this as a Skeena abort and the caller
  /// retries with a fresh snapshot.
  virtual std::unique_ptr<SubTxn> Begin(IsolationLevel iso,
                                        Timestamp snapshot) = 0;
  /// Replaces the sub-transaction's snapshot (read-committed refresh).
  /// Fails with kSkeenaAbort when the requested snapshot predates the
  /// engine's GC/purge floor.
  virtual Status RefreshSnapshot(SubTxn* sub, Timestamp snapshot) = 0;

  virtual Status Get(SubTxn* sub, TableId table, const Key& key,
                     std::string* value) = 0;
  virtual Status Put(SubTxn* sub, TableId table, const Key& key,
                     std::string_view value) = 0;
  virtual Status Delete(SubTxn* sub, TableId table, const Key& key) = 0;
  virtual Status Scan(
      SubTxn* sub, TableId table, const Key& lower, size_t limit,
      const std::function<bool(const Key&, const std::string&)>& cb) = 0;

  /// True if the sub-transaction buffered no writes (its commit timestamp
  /// is a borrowed view bound, not a real commit).
  virtual bool IsReadOnly(const SubTxn* sub) const = 0;

  /// Pre-commit: decide + expose the commit timestamp. The sub-transaction
  /// can still be aborted afterwards (Skeena commit-check failure).
  virtual Status PreCommit(SubTxn* sub, GlobalTxnId gtid, bool cross_engine,
                           Timestamp* commit_ts) = 0;
  /// Post-commit: make results visible; returns the commit record's LSN.
  virtual Lsn PostCommit(SubTxn* sub, GlobalTxnId gtid,
                         bool cross_engine) = 0;
  virtual void Abort(SubTxn* sub) = 0;

  // ------------------------------------------------------------ logging
  virtual Lsn CurrentLsn() const = 0;
  virtual Lsn DurableLsn() const = 0;
  virtual Status FlushLog() = 0;
  /// Blocks until `lsn` is durable (used by the commit daemon).
  virtual void WaitDurable(Lsn lsn) = 0;

  /// This engine's log manager, for observer wiring (the replication
  /// shipper hooks durable-LSN advances); null when the engine runs
  /// without a log.
  virtual LogManager* Log() = 0;

  // ----------------------------------------------------------- recovery
  virtual Status Recover(const std::set<GlobalTxnId>& excluded_gtids) = 0;
  /// Device holding this engine's log, for cross-engine recovery pairing.
  virtual const StorageDevice* LogDevice() const = 0;
};

}  // namespace skeena

#endif  // SKEENA_CORE_ENGINE_IFACE_H_
