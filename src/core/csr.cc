#include "core/csr.h"

#include <algorithm>
#include <cassert>

namespace skeena {

namespace {
constexpr size_t kNpos = ~size_t{0};
constexpr int kMaxRetries = 16;

// Comparator for entries by key only.
struct KeyLess {
  template <typename Entry>
  bool operator()(const Entry& a, Timestamp key) const {
    return a.key < key;
  }
  template <typename Entry>
  bool operator()(Timestamp key, const Entry& a) const {
    return key < a.key;
  }
};
}  // namespace

SnapshotRegistry::SnapshotRegistry(Options options) : options_(options) {}

SnapshotRegistry::~SnapshotRegistry() = default;

size_t SnapshotRegistry::LocatePartition(Timestamp snap) const {
  // Entries in the list are sorted by min_key; search backward for the
  // first partition whose range starts at or below `snap` (Section 4.3).
  if (partitions_.empty()) return kNpos;
  if (snap < floor_) return kNpos;  // its partition was recycled
  for (size_t i = partitions_.size(); i-- > 0;) {
    if (partitions_[i]->min_key <= snap) return i;
  }
  // Older than the first-ever mapping but nothing recycled beneath it: the
  // first partition's range extends down to the floor.
  return 0;
}

SnapshotRegistry::MapResult SnapshotRegistry::MapLocked(size_t idx,
                                                        Timestamp key,
                                                        Timestamp value) {
  Partition& p = *partitions_[idx];
  bool is_last = idx + 1 == partitions_.size();
  auto it = std::lower_bound(p.entries.begin(), p.entries.end(), key,
                             KeyLess{});
  if (it != p.entries.end() && it->key == key) {
    if (value >= it->vmin && value <= it->vmax) {
      return MapResult::kOk;  // already covered by the interval
    }
    if (!is_last) {
      // Widening the interval is a new mapping; sealed partitions are
      // immutable.
      return MapResult::kSealed;
    }
    it->vmin = std::min(it->vmin, value);
    it->vmax = std::max(it->vmax, value);
    return MapResult::kOk;
  }
  if (!is_last) return MapResult::kSealed;
  if (!PartitionFull(p)) {
    p.entries.insert(it, Entry{key, value, value});
    if (key < p.min_key) p.min_key = key;
    return MapResult::kOk;
  }
  // The open partition is full: a fresh key beyond its range moves to a new
  // partition; anything inside its range can no longer be mapped.
  if (key > p.entries.back().key) return MapResult::kNeedNewPartition;
  return MapResult::kSealed;
}

void SnapshotRegistry::CreatePartition(Timestamp min_key) {
  std::unique_lock<std::shared_mutex> list(list_mu_);
  if (partitions_.empty()) {
    auto p = std::make_unique<Partition>();
    p->min_key = min_key;
    partitions_.push_back(std::move(p));
    partitions_created_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Partition* last = partitions_.back().get();
  std::lock_guard<std::mutex> pl(last->mu);
  // Re-check under the exclusive latch: another thread may have created the
  // partition already, or the open partition may have room after all.
  if (!PartitionFull(*last) || min_key <= last->entries.back().key) {
    return;  // retry will re-locate
  }
  auto p = std::make_unique<Partition>();
  p->min_key = min_key;
  partitions_.push_back(std::move(p));
  partitions_created_.fetch_add(1, std::memory_order_relaxed);
}

Result<Timestamp> SnapshotRegistry::SelectSnapshot(
    Timestamp anchor_snap, const std::function<Timestamp()>& latest_other) {
  TickAccess();
  for (int retry = 0; retry < kMaxRetries; ++retry) {
    bool need_partition = false;
    {
      std::shared_lock<std::shared_mutex> list(list_mu_);
      if (partitions_.empty()) {
        need_partition = true;
      } else {
        size_t idx = LocatePartition(anchor_snap);
        if (idx == kNpos) {
          // The partition that covered this (old) snapshot was recycled.
          select_aborts_.fetch_add(1, std::memory_order_relaxed);
          return Status::SkeenaAbort("anchor snapshot predates CSR");
        }
        Partition& p = *partitions_[idx];
        bool is_last = idx + 1 == partitions_.size();
        std::unique_lock<std::mutex> pl;
        if (is_last) pl = std::unique_lock<std::mutex>(p.mu);

        auto it = std::upper_bound(p.entries.begin(), p.entries.end(),
                                   anchor_snap, KeyLess{});
        Timestamp selected;
        bool have_pred = it != p.entries.begin();
        if (have_pred) {
          // Algorithm 1 line 9: latest snapshot mapped to a key <= ours.
          selected = std::prev(it)->vmax;
        } else {
          // No candidate: use the latest other-engine snapshot (Algorithm 1
          // line 6) — but stay strictly below any mapping made at a *newer*
          // anchor position: if that successor is a commit, reading at or
          // past its other-engine timestamp would show us a transaction
          // whose anchor effects are ahead of our snapshot (DSI Rule 8 /
          // the Figure 2(a) skew). The successor's smallest value is the
          // binding one. Successor mappings only exist here in the rare
          // window where this partition was just created.
          selected = latest_other();
          if (it != p.entries.end()) {
            selected = std::min(selected, it->vmin - 1);
          } else if (idx + 1 < partitions_.size()) {
            Partition& succ = *partitions_[idx + 1];
            bool succ_last = idx + 2 == partitions_.size();
            std::unique_lock<std::mutex> sl;
            if (succ_last) sl = std::unique_lock<std::mutex>(succ.mu);
            if (!succ.entries.empty()) {
              selected = std::min(selected, succ.entries.front().vmin - 1);
            }
          }
        }

        if (!is_last) {
          // Sealed partitions are immutable, so no commit can ever land
          // between our predecessor and our snapshot — the mapping that
          // Algorithm 1 line 10 would insert is already implied. This is
          // how inactive indexes "continue to serve existing transactions
          // for snapshot selection" (Section 4.3). Without a predecessor
          // the selection would need a new mapping: abort.
          if (have_pred) {
            mappings_.fetch_add(1, std::memory_order_relaxed);
            return selected;
          }
          sealed_aborts_.fetch_add(1, std::memory_order_relaxed);
          select_aborts_.fetch_add(1, std::memory_order_relaxed);
          return Status::SkeenaAbort("mapping lands in sealed CSR partition");
        }

        MapResult r = MapLocked(idx, anchor_snap, selected);
        if (r == MapResult::kOk) {
          mappings_.fetch_add(1, std::memory_order_relaxed);
          return selected;
        }
        if (r == MapResult::kSealed) {
          sealed_aborts_.fetch_add(1, std::memory_order_relaxed);
          select_aborts_.fetch_add(1, std::memory_order_relaxed);
          return Status::SkeenaAbort("mapping lands in sealed CSR partition");
        }
        need_partition = true;
      }
    }
    if (need_partition) CreatePartition(anchor_snap);
  }
  select_aborts_.fetch_add(1, std::memory_order_relaxed);
  return Status::SkeenaAbort("CSR retry limit exceeded");
}

Status SnapshotRegistry::CommitCheck(Timestamp anchor_cts,
                                     Timestamp other_cts,
                                     bool anchor_engine_wrote,
                                     bool other_engine_wrote) {
  TickAccess();
  for (int retry = 0; retry < kMaxRetries; ++retry) {
    bool need_partition = false;
    {
      std::shared_lock<std::shared_mutex> list(list_mu_);
      if (partitions_.empty()) {
        need_partition = true;
      } else {
        size_t idx = LocatePartition(anchor_cts);
        if (idx == kNpos) {
          sealed_aborts_.fetch_add(1, std::memory_order_relaxed);
          commit_aborts_.fetch_add(1, std::memory_order_relaxed);
          return Status::SkeenaAbort("anchor commit predates CSR");
        }
        Partition& p = *partitions_[idx];
        bool is_last = idx + 1 == partitions_.size();
        std::unique_lock<std::mutex> pl;
        if (is_last) pl = std::unique_lock<std::mutex>(p.mu);

        // Algorithm 2: bounds from strict neighbors. Entries at exactly
        // anchor_cts are begin-timestamp ties (allowed, Rule 4) and do not
        // constrain.
        Timestamp low = 0;
        Timestamp high = kMaxTimestamp;
        auto it = std::lower_bound(p.entries.begin(), p.entries.end(),
                                   anchor_cts, KeyLess{});
        // Same-key entry: a reader at exactly our anchor commit timestamp
        // sees our anchor writes; if we really wrote in both engines, every
        // other-engine view registered at this key must already cover our
        // other-engine commit — the SMALLEST registered view is the binding
        // one.
        if (anchor_engine_wrote && other_engine_wrote &&
            it != p.entries.end() && it->key == anchor_cts &&
            it->vmin < other_cts) {
          commit_aborts_.fetch_add(1, std::memory_order_relaxed);
          return Status::SkeenaAbort(
              "commit check failed: reader tie at anchor commit");
        }
        if (it != p.entries.begin()) {
          low = std::prev(it)->vmax;
        } else if (idx > 0) {
          // Boundary hardening: the true predecessor lives in the previous
          // (sealed, immutable) partition.
          const Partition& pred = *partitions_[idx - 1];
          if (!pred.entries.empty()) low = pred.entries.back().vmax;
        }
        auto succ = it;
        if (succ != p.entries.end() && succ->key == anchor_cts) ++succ;
        if (succ != p.entries.end()) {
          high = succ->vmin;
        } else if (idx + 1 < partitions_.size()) {
          Partition& nextp = *partitions_[idx + 1];
          bool next_last = idx + 2 == partitions_.size();
          std::unique_lock<std::mutex> nl;
          if (next_last) nl = std::unique_lock<std::mutex>(nextp.mu);
          if (!nextp.entries.empty()) high = nextp.entries.front().vmin;
        }

        bool low_violated =
            other_engine_wrote ? other_cts <= low : other_cts < low;
        if ((low != 0 && low_violated) || other_cts > high) {
          commit_aborts_.fetch_add(1, std::memory_order_relaxed);
          return Status::SkeenaAbort("commit check failed");
        }

        MapResult r = MapLocked(idx, anchor_cts, other_cts);
        if (r == MapResult::kOk) {
          mappings_.fetch_add(1, std::memory_order_relaxed);
          return Status::OK();
        }
        if (r == MapResult::kSealed) {
          sealed_aborts_.fetch_add(1, std::memory_order_relaxed);
          commit_aborts_.fetch_add(1, std::memory_order_relaxed);
          return Status::SkeenaAbort("mapping lands in sealed CSR partition");
        }
        need_partition = true;
      }
    }
    if (need_partition) CreatePartition(anchor_cts);
  }
  commit_aborts_.fetch_add(1, std::memory_order_relaxed);
  return Status::SkeenaAbort("CSR retry limit exceeded");
}

void SnapshotRegistry::Recycle() {
  if (!min_anchor_provider_) return;
  Timestamp min_snap = min_anchor_provider_();
  std::unique_lock<std::shared_mutex> list(list_mu_);
  size_t drop = 0;
  // A partition covers [min_key, next.min_key); it is stale once the next
  // partition's range already starts at or below the oldest active anchor
  // snapshot. The open (last) partition is never dropped.
  while (drop + 1 < partitions_.size() &&
         partitions_[drop + 1]->min_key <= min_snap) {
    drop++;
  }
  if (drop > 0) {
    partitions_.erase(partitions_.begin(),
                      partitions_.begin() + static_cast<long>(drop));
    partitions_recycled_.fetch_add(drop, std::memory_order_relaxed);
    floor_ = partitions_.front()->min_key;
  }
}

Timestamp SnapshotRegistry::MinSelectableValue(Timestamp anchor_snap) const {
  std::shared_lock<std::shared_mutex> list(list_mu_);
  if (partitions_.empty()) return kMaxTimestamp;
  size_t idx = LocatePartition(anchor_snap);
  // Anchors below the floor abort at selection; they constrain nothing.
  if (idx == kNpos) return kMaxTimestamp;
  // Find the nearest mapping at a key <= anchor_snap, walking across
  // partition boundaries (the true predecessor may live in an older,
  // sealed partition).
  for (size_t i = idx + 1; i-- > 0;) {
    Partition& p = *partitions_[i];
    bool is_last = i + 1 == partitions_.size();
    std::unique_lock<std::mutex> pl;
    if (is_last) pl = std::unique_lock<std::mutex>(p.mu);
    auto it = std::upper_bound(p.entries.begin(), p.entries.end(),
                               anchor_snap, KeyLess{});
    if (it != p.entries.begin()) return std::prev(it)->vmax;
  }
  return kMaxTimestamp;
}

void SnapshotRegistry::TickAccess() {
  uint64_t a = accesses_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (options_.recycle_period != 0 && a % options_.recycle_period == 0) {
    Recycle();
  }
}

size_t SnapshotRegistry::PartitionCount() const {
  std::shared_lock<std::shared_mutex> list(list_mu_);
  return partitions_.size();
}

size_t SnapshotRegistry::EntryCount() const {
  std::shared_lock<std::shared_mutex> list(list_mu_);
  size_t n = 0;
  for (const auto& p : partitions_) {
    if (p.get() == partitions_.back().get()) {
      std::lock_guard<std::mutex> pl(p->mu);
      n += p->entries.size();
    } else {
      n += p->entries.size();
    }
  }
  return n;
}

SnapshotRegistry::Stats SnapshotRegistry::stats() const {
  Stats s;
  s.accesses = accesses_.load(std::memory_order_relaxed);
  s.mappings = mappings_.load(std::memory_order_relaxed);
  s.select_aborts = select_aborts_.load(std::memory_order_relaxed);
  s.commit_aborts = commit_aborts_.load(std::memory_order_relaxed);
  s.sealed_aborts = sealed_aborts_.load(std::memory_order_relaxed);
  s.partitions_created = partitions_created_.load(std::memory_order_relaxed);
  s.partitions_recycled =
      partitions_recycled_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace skeena
