#include "core/csr.h"

#include <algorithm>
#include <cassert>

namespace skeena {

SnapshotRegistry::SnapshotRegistry(Options options, EpochManager* epoch)
    : options_(options) {
  if (options_.partition_capacity == 0) options_.partition_capacity = 1;
  if (epoch == nullptr) {
    owned_epoch_ = std::make_unique<EpochManager>();
    epoch_ = owned_epoch_.get();
  } else {
    epoch_ = epoch;
  }
  list_.store(new PartitionList(), std::memory_order_release);
}

SnapshotRegistry::~SnapshotRegistry() {
  // Retired lists/partitions live in the epoch manager's limbo and are
  // freed by it; only the currently-published list is still ours.
  PartitionList* list = list_.load(std::memory_order_relaxed);
  for (Partition* p : list->parts) delete p;
  delete list;
}

size_t SnapshotRegistry::LocatePartition(const PartitionList& list,
                                         Timestamp snap) {
  if (list.parts.empty()) return kNpos;
  if (snap < list.floor) return kNpos;  // its partition was recycled
  // Last partition whose range starts at or below `snap` (Section 4.3);
  // binary search on min_key — this runs on every CSR access.
  auto it = std::upper_bound(
      list.parts.begin(), list.parts.end(), snap,
      [](Timestamp s, const Partition* p) { return s < p->min_key; });
  if (it == list.parts.begin()) {
    // Older than the first-ever mapping but nothing recycled beneath it:
    // the first partition's range extends down to the floor.
    return 0;
  }
  return static_cast<size_t>(it - list.parts.begin()) - 1;
}

size_t SnapshotRegistry::LowerBound(const Partition& p, size_t n,
                                    Timestamp key) {
  const Entry* first = p.entries.get();
  return static_cast<size_t>(
      std::lower_bound(first, first + n, key,
                       [](const Entry& e, Timestamp k) { return e.key < k; }) -
      first);
}

size_t SnapshotRegistry::UpperBound(const Partition& p, size_t n,
                                    Timestamp key) {
  const Entry* first = p.entries.get();
  return static_cast<size_t>(
      std::upper_bound(first, first + n, key,
                       [](Timestamp k, const Entry& e) { return k < e.key; }) -
      first);
}

void SnapshotRegistry::PublishLocked(PartitionList* next) {
  PartitionList* old = list_.exchange(next, std::memory_order_acq_rel);
  epoch_->Retire(old);
}

void SnapshotRegistry::AppendPartitionLocked(Timestamp key, Timestamp value) {
  PartitionList* list = list_.load(std::memory_order_relaxed);
  auto* np = new Partition(key, options_.partition_capacity);
  np->entries[0].key = key;
  np->entries[0].vmin.store(value, std::memory_order_relaxed);
  np->entries[0].vmax.store(value, std::memory_order_relaxed);
  np->count.store(1, std::memory_order_relaxed);
  auto* nl = new PartitionList{list->floor, list->parts};
  nl->parts.push_back(np);
  // Partitions are published with their first entry already in place —
  // readers never observe an empty partition.
  PublishLocked(nl);
  partitions_created_.Add(1);
  if (options_.install_observer) options_.install_observer(key, value);
}

SnapshotRegistry::MapResult SnapshotRegistry::InstallLocked(Timestamp key,
                                                            Timestamp value,
                                                            size_t idx,
                                                            size_t lb) {
  PartitionList* list = list_.load(std::memory_order_relaxed);
  Partition* p = list->parts[idx];
  bool is_last = idx + 1 == list->parts.size();
  size_t n = p->count.load(std::memory_order_relaxed);
  // The caller located idx/lb on this same list under write_mu_; nothing
  // can have moved since.
  assert(idx == LocatePartition(*list, key));
  assert(lb == LowerBound(*p, n, key));

  if (lb < n && p->entries[lb].key == key) {
    Entry& e = p->entries[lb];
    Timestamp vmin = e.vmin.load(std::memory_order_relaxed);
    Timestamp vmax = e.vmax.load(std::memory_order_relaxed);
    if (value >= vmin && value <= vmax) {
      return MapResult::kOk;  // already covered by the interval
    }
    if (!is_last) {
      // Widening the interval is a new mapping; sealed partitions are
      // immutable.
      return MapResult::kSealed;
    }
    // In-place single-word widen; concurrent readers see either bound.
    if (value < vmin) e.vmin.store(value, std::memory_order_relaxed);
    if (value > vmax) e.vmax.store(value, std::memory_order_relaxed);
    if (options_.install_observer) options_.install_observer(key, value);
    return MapResult::kOk;
  }
  if (!is_last) return MapResult::kSealed;

  if (n < p->capacity) {
    if (lb == n) {
      // In-order append (the common case): initialize the entry, then
      // release-publish the count — readers acquire the count and only
      // search the published prefix.
      Entry& e = p->entries[n];
      e.key = key;
      e.vmin.store(value, std::memory_order_relaxed);
      e.vmax.store(value, std::memory_order_relaxed);
      p->count.store(n + 1, std::memory_order_release);
      if (options_.install_observer) options_.install_observer(key, value);
      return MapResult::kOk;
    }
    // Out-of-order insert into the open partition (rare: a committer whose
    // anchor cts raced behind already-installed ones): copy-on-write the
    // partition and swap the list, retiring the old copy via the epoch
    // manager so lock-free readers drain off it safely.
    auto* np = new Partition(std::min(p->min_key, key), p->capacity);
    for (size_t i = 0; i < lb; ++i) {
      np->entries[i].key = p->entries[i].key;
      np->entries[i].vmin.store(p->entries[i].vmin.load(std::memory_order_relaxed),
                                std::memory_order_relaxed);
      np->entries[i].vmax.store(p->entries[i].vmax.load(std::memory_order_relaxed),
                                std::memory_order_relaxed);
    }
    np->entries[lb].key = key;
    np->entries[lb].vmin.store(value, std::memory_order_relaxed);
    np->entries[lb].vmax.store(value, std::memory_order_relaxed);
    for (size_t i = lb; i < n; ++i) {
      np->entries[i + 1].key = p->entries[i].key;
      np->entries[i + 1].vmin.store(
          p->entries[i].vmin.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      np->entries[i + 1].vmax.store(
          p->entries[i].vmax.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
    np->count.store(n + 1, std::memory_order_relaxed);  // published via swap
    auto* nl = new PartitionList{list->floor, list->parts};
    nl->parts[idx] = np;
    PublishLocked(nl);
    epoch_->Retire(p);
    if (options_.install_observer) options_.install_observer(key, value);
    return MapResult::kOk;
  }
  // The open partition is full: a fresh key beyond its range moves to a new
  // partition; anything inside its range can no longer be mapped.
  if (key > p->entries[n - 1].key) {
    AppendPartitionLocked(key, value);
    return MapResult::kOk;
  }
  return MapResult::kSealed;
}

Result<Timestamp> SnapshotRegistry::SelectSnapshot(
    Timestamp anchor_snap, const std::function<Timestamp()>& latest_other) {
  TickAccess();

  // ---- Lock-free fast path: Algorithm 1's hit case. The mapping is
  // already recorded (exact key) or implied (sealed predecessor): no
  // mutex, no shared write — only the epoch pin and sharded stats. The
  // guard is scoped to this block: SelectSlow runs entirely under
  // write_mu_, where nothing can be retired, and staying pinned across
  // the lock wait would only stall epoch advancement.
  {
    EpochGuard guard(*epoch_);
    const PartitionList* list = list_.load(std::memory_order_acquire);
    if (!list->parts.empty()) {
      size_t idx = LocatePartition(*list, anchor_snap);
      if (idx == kNpos) {
        // The partition that covered this (old) snapshot was recycled.
        select_aborts_.Add(1);
        return Status::SkeenaAbort("anchor snapshot predates CSR");
      }
      const Partition* p = list->parts[idx];
      bool is_last = idx + 1 == list->parts.size();
      size_t n = p->count.load(std::memory_order_acquire);
      size_t ub = UpperBound(*p, n, anchor_snap);
      if (ub > 0) {
        const Entry& pred = p->entries[ub - 1];
        if (pred.key == anchor_snap || !is_last) {
          // Exact key: the interval at our snapshot already covers the
          // selection (Algorithm 1 line 9). Sealed partition: immutable,
          // so no commit can ever land between the predecessor and our
          // snapshot — the mapping Algorithm 1 line 10 would insert is
          // already implied. This is how inactive indexes "continue to
          // serve existing transactions for snapshot selection"
          // (Section 4.3).
          mappings_.Add(1);
          return pred.vmax.load(std::memory_order_acquire);
        }
      } else if (!is_last) {
        // Without a predecessor the selection would need a new mapping
        // that can never land in a sealed partition: abort.
        sealed_aborts_.Add(1);
        select_aborts_.Add(1);
        return Status::SkeenaAbort("mapping lands in sealed CSR partition");
      }
    }
  }

  // ---- Miss: a new mapping must be installed.
  return SelectSlow(anchor_snap, latest_other);
}

Result<Timestamp> SnapshotRegistry::SelectSlow(
    Timestamp anchor_snap, const std::function<Timestamp()>& latest_other) {
  MutexLock lock(write_mu_);
  PartitionList* list = list_.load(std::memory_order_relaxed);
  if (list->parts.empty()) {
    Timestamp selected = latest_other();
    AppendPartitionLocked(anchor_snap, selected);
    mappings_.Add(1);
    return selected;
  }
  size_t idx = LocatePartition(*list, anchor_snap);
  if (idx == kNpos) {
    select_aborts_.Add(1);
    return Status::SkeenaAbort("anchor snapshot predates CSR");
  }
  Partition* p = list->parts[idx];
  bool is_last = idx + 1 == list->parts.size();
  size_t n = p->count.load(std::memory_order_relaxed);
  size_t ub = UpperBound(*p, n, anchor_snap);
  bool have_pred = ub > 0;
  Timestamp selected;
  if (have_pred) {
    // Algorithm 1 line 9: latest snapshot mapped to a key <= ours.
    selected = p->entries[ub - 1].vmax.load(std::memory_order_relaxed);
  } else {
    // No candidate: use the latest other-engine snapshot (Algorithm 1
    // line 6) — but stay strictly below any mapping made at a *newer*
    // anchor position: if that successor is a commit, reading at or past
    // its other-engine timestamp would show us a transaction whose anchor
    // effects are ahead of our snapshot (DSI Rule 8 / the Figure 2(a)
    // skew). The successor's smallest value is the binding one.
    selected = latest_other();
    if (ub < n) {
      selected = std::min(
          selected, p->entries[ub].vmin.load(std::memory_order_relaxed) - 1);
    } else if (idx + 1 < list->parts.size()) {
      const Partition* succ = list->parts[idx + 1];
      size_t sn = succ->count.load(std::memory_order_relaxed);
      if (sn > 0) {
        selected = std::min(
            selected,
            succ->entries[0].vmin.load(std::memory_order_relaxed) - 1);
      }
    }
  }
  if (!is_last) {
    if (have_pred) {
      // Raced with a partition spawn since the lock-free attempt: the
      // sealed predecessor still implies the mapping.
      mappings_.Add(1);
      return selected;
    }
    sealed_aborts_.Add(1);
    select_aborts_.Add(1);
    return Status::SkeenaAbort("mapping lands in sealed CSR partition");
  }
  // The lower bound falls out of the upper bound already computed: equal
  // only when the predecessor is an exact-key hit.
  size_t lb = (have_pred && p->entries[ub - 1].key == anchor_snap) ? ub - 1
                                                                   : ub;
  MapResult r = InstallLocked(anchor_snap, selected, idx, lb);
  if (r == MapResult::kOk) {
    mappings_.Add(1);
    return selected;
  }
  sealed_aborts_.Add(1);
  select_aborts_.Add(1);
  return Status::SkeenaAbort("mapping lands in sealed CSR partition");
}

Status SnapshotRegistry::CommitCheck(Timestamp anchor_cts,
                                     Timestamp other_cts,
                                     bool anchor_engine_wrote,
                                     bool other_engine_wrote) {
  TickAccess();
  // No epoch guard: the whole body runs under write_mu_, and every retire
  // of lists/partitions happens under the same mutex, so nothing reachable
  // from the published list can be reclaimed while we hold it. Pinning
  // here would stall epoch advancement for the lock wait + check + install.
  MutexLock lock(write_mu_);
  PartitionList* list = list_.load(std::memory_order_relaxed);
  if (list->parts.empty()) {
    // First mapping ever: bounds are trivially open.
    AppendPartitionLocked(anchor_cts, other_cts);
    mappings_.Add(1);
    return Status::OK();
  }
  size_t idx = LocatePartition(*list, anchor_cts);
  if (idx == kNpos) {
    sealed_aborts_.Add(1);
    commit_aborts_.Add(1);
    return Status::SkeenaAbort("anchor commit predates CSR");
  }
  const Partition* p = list->parts[idx];
  size_t n = p->count.load(std::memory_order_relaxed);

  // Algorithm 2: bounds from strict neighbors. Entries at exactly
  // anchor_cts are begin-timestamp ties (allowed, Rule 4) and do not
  // constrain.
  Timestamp low = 0;
  Timestamp high = kMaxTimestamp;
  size_t lb = LowerBound(*p, n, anchor_cts);
  bool gate = !weaken_gate_.load(std::memory_order_relaxed);
  // Same-key entry: a reader at exactly our anchor commit timestamp sees
  // our anchor writes; if we really wrote in both engines, every
  // other-engine view registered at this key must already cover our
  // other-engine commit — the SMALLEST registered view is the binding one.
  if (gate && anchor_engine_wrote && other_engine_wrote && lb < n &&
      p->entries[lb].key == anchor_cts &&
      p->entries[lb].vmin.load(std::memory_order_relaxed) < other_cts) {
    commit_aborts_.Add(1);
    return Status::SkeenaAbort(
        "commit check failed: reader tie at anchor commit");
  }
  if (lb > 0) {
    low = p->entries[lb - 1].vmax.load(std::memory_order_relaxed);
  } else if (idx > 0) {
    // Boundary hardening: the true predecessor lives in the previous
    // (sealed, immutable) partition.
    const Partition* pred = list->parts[idx - 1];
    size_t pn = pred->count.load(std::memory_order_relaxed);
    if (pn > 0) {
      low = pred->entries[pn - 1].vmax.load(std::memory_order_relaxed);
    }
  }
  size_t succ = lb;
  if (succ < n && p->entries[succ].key == anchor_cts) ++succ;
  if (succ < n) {
    high = p->entries[succ].vmin.load(std::memory_order_relaxed);
  } else if (idx + 1 < list->parts.size()) {
    const Partition* nextp = list->parts[idx + 1];
    size_t nn = nextp->count.load(std::memory_order_relaxed);
    if (nn > 0) high = nextp->entries[0].vmin.load(std::memory_order_relaxed);
  }

  bool low_violated =
      other_engine_wrote ? other_cts <= low : other_cts < low;
  if (gate && ((low != 0 && low_violated) || other_cts > high)) {
    commit_aborts_.Add(1);
    return Status::SkeenaAbort("commit check failed");
  }

  MapResult r = InstallLocked(anchor_cts, other_cts, idx, lb);
  if (r == MapResult::kOk) {
    mappings_.Add(1);
    return Status::OK();
  }
  sealed_aborts_.Add(1);
  commit_aborts_.Add(1);
  return Status::SkeenaAbort("mapping lands in sealed CSR partition");
}

void SnapshotRegistry::Recycle() {
  if (!min_anchor_provider_) return;
  Timestamp min_snap = min_anchor_provider_();
  MutexLock lock(write_mu_);
  RecycleLocked(min_snap);
}

Status SnapshotRegistry::ReplayInstall(Timestamp key, Timestamp value) {
  TickAccess();
  MutexLock lock(write_mu_);
  PartitionList* list = list_.load(std::memory_order_relaxed);
  if (list->parts.empty()) {
    AppendPartitionLocked(key, value);
    mappings_.Add(1);
    return Status::OK();
  }
  size_t idx = LocatePartition(*list, key);
  if (idx == kNpos) return Status::OK();  // below the local recycling floor
  Partition* p = list->parts[idx];
  size_t n = p->count.load(std::memory_order_relaxed);
  size_t lb = LowerBound(*p, n, key);
  MapResult r = InstallLocked(key, value, idx, lb);
  if (r == MapResult::kOk) {
    mappings_.Add(1);
    return Status::OK();
  }
  // A journal prefix replayed in order lands in the open partition exactly
  // like it did on the primary (same capacity, same sequence); a sealed
  // result means the replica was configured differently.
  sealed_aborts_.Add(1);
  return Status::SkeenaAbort("replayed mapping lands in sealed CSR partition");
}

void SnapshotRegistry::RecycleLocked(Timestamp min_snap) {
  PartitionList* list = list_.load(std::memory_order_relaxed);
  size_t drop = 0;
  // A partition covers [min_key, next.min_key); it is stale once the next
  // partition's range already starts at or below the oldest active anchor
  // snapshot. The open (last) partition is never dropped.
  while (drop + 1 < list->parts.size() &&
         list->parts[drop + 1]->min_key <= min_snap) {
    drop++;
  }
  if (drop == 0) return;
  auto* nl = new PartitionList();
  nl->parts.assign(list->parts.begin() + static_cast<long>(drop),
                   list->parts.end());
  nl->floor = nl->parts.front()->min_key;
  // Readers may still be walking the dropped partitions; EBR requires
  // them to be unreachable before Retire(), so unlink first by publishing
  // the new list, then retire. Capture the pointers up front: PublishLocked
  // retires the old list itself, and Retire() runs TryAdvance synchronously
  // — with no reader pinned it can free `list` before we finish, no
  // concurrency required.
  std::vector<Partition*> dropped(
      list->parts.begin(), list->parts.begin() + static_cast<long>(drop));
  PublishLocked(nl);
  for (Partition* p : dropped) epoch_->Retire(p);
  partitions_recycled_.Add(drop);
}

Timestamp SnapshotRegistry::MinSelectableValue(Timestamp anchor_snap) const {
  EpochGuard guard(*epoch_);
  const PartitionList* list = list_.load(std::memory_order_acquire);
  if (list->parts.empty()) return kMaxTimestamp;
  size_t idx = LocatePartition(*list, anchor_snap);
  // Anchors below the floor abort at selection; they constrain nothing.
  if (idx == kNpos) return kMaxTimestamp;
  // Find the nearest mapping at a key <= anchor_snap, walking across
  // partition boundaries (the true predecessor may live in an older,
  // sealed partition).
  for (size_t i = idx + 1; i-- > 0;) {
    const Partition* p = list->parts[i];
    size_t n = p->count.load(std::memory_order_acquire);
    size_t ub = UpperBound(*p, n, anchor_snap);
    if (ub > 0) {
      return p->entries[ub - 1].vmax.load(std::memory_order_acquire);
    }
  }
  return kMaxTimestamp;
}

void SnapshotRegistry::TickAccess() {
  uint64_t c = accesses_.Increment();
  if (options_.recycle_period == 0 || c % options_.recycle_period != 0) {
    return;
  }
  if (!min_anchor_provider_) return;
  Timestamp min_snap = min_anchor_provider_();
  // Opportunistic: never block the access that happened to cross the
  // period boundary — skip if a writer or another recycler is active.
  // Explicit TryLock so TSA tracks the branch (see thread_annotations.h).
  if (!write_mu_.TryLock()) return;
  RecycleLocked(min_snap);
  write_mu_.Unlock();
}

size_t SnapshotRegistry::PartitionCount() const {
  EpochGuard guard(*epoch_);
  return list_.load(std::memory_order_acquire)->parts.size();
}

size_t SnapshotRegistry::EntryCount() const {
  EpochGuard guard(*epoch_);
  const PartitionList* list = list_.load(std::memory_order_acquire);
  size_t n = 0;
  for (const Partition* p : list->parts) {
    n += p->count.load(std::memory_order_acquire);
  }
  return n;
}

std::vector<SnapshotRegistry::MappingEntry> SnapshotRegistry::DumpMappings(
    Timestamp* floor) const {
  EpochGuard guard(*epoch_);
  const PartitionList* list = list_.load(std::memory_order_acquire);
  if (floor != nullptr) *floor = list->floor;
  std::vector<MappingEntry> out;
  for (const Partition* p : list->parts) {
    size_t n = p->count.load(std::memory_order_acquire);
    for (size_t i = 0; i < n; ++i) {
      out.push_back(MappingEntry{
          p->entries[i].key,
          p->entries[i].vmin.load(std::memory_order_acquire),
          p->entries[i].vmax.load(std::memory_order_acquire)});
    }
  }
  return out;
}

SnapshotRegistry::Stats SnapshotRegistry::stats() const {
  Stats s;
  s.accesses = accesses_.Read();
  s.mappings = mappings_.Read();
  s.select_aborts = select_aborts_.Read();
  s.commit_aborts = commit_aborts_.Read();
  s.sealed_aborts = sealed_aborts_.Read();
  s.partitions_created = partitions_created_.Read();
  s.partitions_recycled = partitions_recycled_.Read();
  return s;
}

}  // namespace skeena
