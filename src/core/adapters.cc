#include "core/adapters.h"

namespace skeena {

namespace {

struct MemSubTxn : public SubTxn {
  std::unique_ptr<memdb::MemTxn> txn;
};

struct StorSubTxn : public SubTxn {
  std::unique_ptr<stordb::StorTxn> txn;
};

memdb::MemTxn* AsMem(SubTxn* sub) {
  return static_cast<MemSubTxn*>(sub)->txn.get();
}
stordb::StorTxn* AsStor(SubTxn* sub) {
  return static_cast<StorSubTxn*>(sub)->txn.get();
}

}  // namespace

// ---------------------------------------------------------- MemEngineAdapter

MemEngineAdapter::MemEngineAdapter(std::unique_ptr<StorageDevice> log_device,
                                   memdb::MemEngine::Options options,
                                   EpochManager* epoch)
    : engine_(std::move(log_device), options, epoch) {}

TableId MemEngineAdapter::CreateTable(const std::string& name,
                                      size_t max_value_size) {
  (void)max_value_size;  // memdb values are heap strings
  return engine_.CreateTable(name);
}

Timestamp MemEngineAdapter::LatestSnapshot() const {
  return engine_.LatestSnapshot();
}

std::unique_ptr<SubTxn> MemEngineAdapter::Begin(IsolationLevel iso,
                                                Timestamp snapshot) {
  auto sub = std::make_unique<MemSubTxn>();
  sub->txn = engine_.Begin(
      iso, snapshot == kMaxTimestamp ? kInvalidTimestamp : snapshot);
  if (sub->txn == nullptr) return nullptr;  // snapshot predates GC floor
  return sub;
}

Status MemEngineAdapter::RefreshSnapshot(SubTxn* sub, Timestamp snapshot) {
  return engine_.RefreshSnapshot(
      AsMem(sub), snapshot == kMaxTimestamp ? kInvalidTimestamp : snapshot);
}

Status MemEngineAdapter::Get(SubTxn* sub, TableId table, const Key& key,
                             std::string* value) {
  return engine_.Get(AsMem(sub), table, key, value);
}

Status MemEngineAdapter::Put(SubTxn* sub, TableId table, const Key& key,
                             std::string_view value) {
  return engine_.Put(AsMem(sub), table, key, value);
}

Status MemEngineAdapter::Delete(SubTxn* sub, TableId table, const Key& key) {
  return engine_.Delete(AsMem(sub), table, key);
}

Status MemEngineAdapter::Scan(
    SubTxn* sub, TableId table, const Key& lower, size_t limit,
    const std::function<bool(const Key&, const std::string&)>& cb) {
  return engine_.Scan(AsMem(sub), table, lower, limit, cb);
}

bool MemEngineAdapter::IsReadOnly(const SubTxn* sub) const {
  return static_cast<const MemSubTxn*>(sub)->txn->read_only();
}

Status MemEngineAdapter::PreCommit(SubTxn* sub, GlobalTxnId gtid,
                                   bool cross_engine, Timestamp* commit_ts) {
  memdb::MemTxn* txn = AsMem(sub);
  Status s = engine_.PreCommit(txn, gtid, cross_engine);
  if (s.ok()) *commit_ts = txn->commit_ts();
  return s;
}

Lsn MemEngineAdapter::PostCommit(SubTxn* sub, GlobalTxnId gtid,
                                 bool cross_engine) {
  return engine_.PostCommit(AsMem(sub), gtid, cross_engine);
}

void MemEngineAdapter::Abort(SubTxn* sub) { engine_.Abort(AsMem(sub)); }

Lsn MemEngineAdapter::CurrentLsn() const {
  return engine_.log() == nullptr ? 0 : engine_.log()->CurrentLsn();
}

Lsn MemEngineAdapter::DurableLsn() const {
  return engine_.log() == nullptr ? 0 : engine_.log()->DurableLsn();
}

Status MemEngineAdapter::FlushLog() {
  return engine_.log() == nullptr ? Status::OK() : engine_.log()->Flush();
}

void MemEngineAdapter::WaitDurable(Lsn lsn) {
  if (engine_.log() != nullptr) engine_.log()->WaitDurable(lsn);
}

LogManager* MemEngineAdapter::Log() { return engine_.log(); }

Status MemEngineAdapter::Recover(const std::set<GlobalTxnId>& excluded) {
  return engine_.Recover(excluded);
}

const StorageDevice* MemEngineAdapter::LogDevice() const {
  return engine_.log() == nullptr ? nullptr : engine_.log()->device();
}

// --------------------------------------------------------- StorEngineAdapter

StorEngineAdapter::StorEngineAdapter(
    std::unique_ptr<StorageDevice> log_device,
    stordb::StorEngine::Options options, EpochManager* epoch)
    : engine_(std::move(log_device), options, epoch) {}

TableId StorEngineAdapter::CreateTable(const std::string& name,
                                       size_t max_value_size) {
  return engine_.CreateTable(name, max_value_size);
}

Timestamp StorEngineAdapter::LatestSnapshot() const {
  return engine_.LatestSnapshot();
}

std::unique_ptr<SubTxn> StorEngineAdapter::Begin(IsolationLevel iso,
                                                 Timestamp snapshot) {
  auto sub = std::make_unique<StorSubTxn>();
  sub->txn = engine_.Begin(iso, snapshot);
  if (sub->txn == nullptr) return nullptr;  // snapshot predates purge floor
  return sub;
}

Status StorEngineAdapter::RefreshSnapshot(SubTxn* sub, Timestamp snapshot) {
  return engine_.RefreshSnapshot(AsStor(sub), snapshot);
}

Status StorEngineAdapter::Get(SubTxn* sub, TableId table, const Key& key,
                              std::string* value) {
  return engine_.Get(AsStor(sub), table, key, value);
}

Status StorEngineAdapter::Put(SubTxn* sub, TableId table, const Key& key,
                              std::string_view value) {
  return engine_.Put(AsStor(sub), table, key, value);
}

Status StorEngineAdapter::Delete(SubTxn* sub, TableId table, const Key& key) {
  return engine_.Delete(AsStor(sub), table, key);
}

Status StorEngineAdapter::Scan(
    SubTxn* sub, TableId table, const Key& lower, size_t limit,
    const std::function<bool(const Key&, const std::string&)>& cb) {
  return engine_.Scan(AsStor(sub), table, lower, limit, cb);
}

bool StorEngineAdapter::IsReadOnly(const SubTxn* sub) const {
  return static_cast<const StorSubTxn*>(sub)->txn->read_only();
}

Status StorEngineAdapter::PreCommit(SubTxn* sub, GlobalTxnId gtid,
                                    bool cross_engine, Timestamp* commit_ts) {
  stordb::StorTxn* txn = AsStor(sub);
  Status s = engine_.PreCommit(txn, gtid, cross_engine);
  if (s.ok()) *commit_ts = txn->ser_no();
  return s;
}

Lsn StorEngineAdapter::PostCommit(SubTxn* sub, GlobalTxnId gtid,
                                  bool cross_engine) {
  return engine_.PostCommit(AsStor(sub), gtid, cross_engine);
}

void StorEngineAdapter::Abort(SubTxn* sub) { engine_.Abort(AsStor(sub)); }

Lsn StorEngineAdapter::CurrentLsn() const {
  return engine_.log() == nullptr ? 0 : engine_.log()->CurrentLsn();
}

Lsn StorEngineAdapter::DurableLsn() const {
  return engine_.log() == nullptr ? 0 : engine_.log()->DurableLsn();
}

Status StorEngineAdapter::FlushLog() {
  return engine_.log() == nullptr ? Status::OK() : engine_.log()->Flush();
}

void StorEngineAdapter::WaitDurable(Lsn lsn) {
  if (engine_.log() != nullptr) engine_.log()->WaitDurable(lsn);
}

LogManager* StorEngineAdapter::Log() { return engine_.log(); }

Status StorEngineAdapter::Recover(const std::set<GlobalTxnId>& excluded) {
  return engine_.Recover(excluded);
}

const StorageDevice* StorEngineAdapter::LogDevice() const {
  return engine_.log() == nullptr ? nullptr : engine_.log()->device();
}

}  // namespace skeena
