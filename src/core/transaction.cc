#include "core/transaction.h"

namespace skeena {

Transaction::Transaction(Database* db, IsolationLevel iso)
    : db_(db),
      iso_(iso),
      gtid_(db->NextGtid()),
      skeena_on_(db->skeena_enabled()) {
  // relaxed-ok: diagnostic gauge (see Database::active_transactions).
  db_->active_txns_.fetch_add(1, std::memory_order_relaxed);
  if (HistoryRecorder* rec = db_->recorder()) {
    hist_ = rec->StartTxn(gtid_, iso_, skeena_on_);
  }
}

Transaction::~Transaction() {
  if (state_ == State::kActive) Abort();
}

void Transaction::ReleaseAnchorSlot() {
  if (anchor_slot_ != ~size_t{0}) {
    db_->anchor_registry().Release(anchor_slot_);
    anchor_slot_ = ~size_t{0};
  }
  if (replica_other_slot_ != ~size_t{0}) {
    db_->replica_other_registry().Release(replica_other_slot_);
    replica_other_slot_ = ~size_t{0};
  }
}

Status Transaction::EnsureReplicaSnapshots() {
  if (anchor_snap_ != kInvalidTimestamp) return Status::OK();
  // Pre-register sentinels in BOTH registries, then read the gate pair:
  // the replica GC providers' MinActive scans wait the sentinels out, so
  // neither engine's floor can pass the pair between the read here and the
  // SetSnapshot stores below (same discipline as EnsureAnchorSnapshot).
  anchor_slot_ = db_->anchor_registry().Acquire();
  db_->anchor_registry().BeginAcquire(anchor_slot_);
  replica_other_slot_ = db_->replica_other_registry().Acquire();
  db_->replica_other_registry().BeginAcquire(replica_other_slot_);
  auto pair = db_->ReplicaSnapshotPair();
  anchor_snap_ = pair.first;
  replica_other_snap_ = pair.second;
  db_->anchor_registry().SetSnapshot(anchor_slot_, anchor_snap_);
  // Ser-horizon convention (see Database::replica_other_registry()).
  db_->replica_other_registry().SetSnapshot(replica_other_slot_,
                                            replica_other_snap_ + 1);
  return Status::OK();
}

Status Transaction::EnsureAnchorSnapshot() {
  if (anchor_snap_ != kInvalidTimestamp) return Status::OK();
  // Register before reading the anchor clock so CSR recycling never drops
  // the partition this snapshot lands in (Section 4.4). Acquire() reuses
  // the calling thread's cached slot, so this is latch-free in steady
  // state — no shared-state round-trip per transaction.
  anchor_slot_ = db_->anchor_registry().Acquire();
  db_->anchor_registry().BeginAcquire(anchor_slot_);
  anchor_snap_ = db_->engine(db_->anchor_index())->LatestSnapshot();
  db_->anchor_registry().SetSnapshot(anchor_slot_, anchor_snap_);
  return Status::OK();
}

Status Transaction::PrepareAccess(int e) {
  if (state_ != State::kActive) {
    return Status::InvalidArgument("transaction is not active");
  }
  int anchor = db_->anchor_index();

  if (db_->replica()) {
    // Replica reads: the snapshot pair is the visibility gate — already
    // proven cross-engine consistent against the replayed CSR — so there
    // is no anchor acquisition and no CSR selection here (a read install
    // would corrupt the replayed registry). The pair stays pinned for the
    // transaction's lifetime, including under read committed: the gate is
    // the only consistent pair the replica knows.
    if (subs_[e]) return Status::OK();
    SKEENA_RETURN_NOT_OK(EnsureReplicaSnapshots());
    Timestamp selected = e == anchor ? anchor_snap_ : replica_other_snap_;
    subs_[e] = db_->engine(e)->Begin(iso_, selected);
    if (subs_[e] == nullptr) {
      Abort();
      return Status::SkeenaAbort("gate snapshot predates engine GC floor");
    }
    used_[e] = true;
    if (hist_) {
      hist_->used[e] = true;
      hist_->begin[e] = selected;
      hist_snap_[e] = selected;
      hist_->anchor_snap = anchor_snap_;
      if (e != anchor) {
        hist_->snap_pairs.emplace_back(anchor_snap_, selected);
      }
    }
    return Status::OK();
  }

  if (!skeena_on_) {
    // Uncoordinated baseline: native latest snapshots in each engine.
    if (!subs_[e]) {
      subs_[e] = db_->engine(e)->Begin(iso_, kMaxTimestamp);
      used_[e] = true;
      if (hist_) {
        hist_->used[e] = true;
        hist_->begin[e] = kMaxTimestamp;
        hist_snap_[e] = kMaxTimestamp;
      }
    } else if (iso_ == IsolationLevel::kReadCommitted) {
      SKEENA_RETURN_NOT_OK(
          db_->engine(e)->RefreshSnapshot(subs_[e].get(), kMaxTimestamp));
    }
    return Status::OK();
  }

  // Read committed refreshes the snapshot on every record access
  // (paper Table 2): drop the pinned anchor snapshot and re-select.
  bool rc_refresh =
      iso_ == IsolationLevel::kReadCommitted && subs_[e] != nullptr;
  if (rc_refresh) {
    db_->anchor_registry().BeginAcquire(anchor_slot_);
    anchor_snap_ = db_->engine(anchor)->LatestSnapshot();
    db_->anchor_registry().SetSnapshot(anchor_slot_, anchor_snap_);
    Status refreshed;
    Timestamp selected = anchor_snap_;
    if (e == anchor) {
      refreshed = db_->engine(e)->RefreshSnapshot(subs_[e].get(),
                                                  anchor_snap_);
    } else {
      auto sel = db_->csr().SelectSnapshot(anchor_snap_, [this, e] {
        return db_->engine(e)->LatestSnapshot();
      });
      if (!sel.ok()) {
        Abort();
        return sel.status();
      }
      selected = *sel;
      refreshed = db_->engine(e)->RefreshSnapshot(subs_[e].get(), *sel);
    }
    if (!refreshed.ok()) {
      Abort();
      return refreshed;
    }
    if (hist_) {
      hist_snap_[e] = selected;
      hist_->anchor_snap = anchor_snap_;
    }
    return Status::OK();
  }

  if (subs_[e]) return Status::OK();

  // First access to this engine. Every Skeena-managed transaction starts
  // from the anchor's snapshot order (Section 4.3) — even if it never
  // touches anchor data.
  SKEENA_RETURN_NOT_OK(EnsureAnchorSnapshot());
  Timestamp selected = anchor_snap_;
  if (e == anchor) {
    subs_[e] = db_->engine(e)->Begin(iso_, anchor_snap_);
  } else {
    auto sel = db_->csr().SelectSnapshot(anchor_snap_, [this, e] {
      return db_->engine(e)->LatestSnapshot();
    });
    if (!sel.ok()) {
      Abort();
      return sel.status();
    }
    selected = *sel;
    subs_[e] = db_->engine(e)->Begin(iso_, *sel);
  }
  if (subs_[e] == nullptr) {
    // The engine refused the snapshot: its GC/purge floor moved past it
    // between selection and registration. Retryable, like a CSR abort.
    Abort();
    return Status::SkeenaAbort("selected snapshot predates engine GC floor");
  }
  used_[e] = true;
  if (hist_) {
    hist_->used[e] = true;
    hist_->begin[e] = selected;
    hist_snap_[e] = selected;
    hist_->anchor_snap = anchor_snap_;
    // Snapshot-pair atomicity only holds where the snapshot is pinned:
    // read committed re-selects per access and may legitimately tear.
    if (e != anchor && iso_ != IsolationLevel::kReadCommitted) {
      hist_->snap_pairs.emplace_back(anchor_snap_, selected);
    }
  }
  return Status::OK();
}

Status Transaction::HandleOpStatus(int e, Status s) {
  (void)e;
  if (s.IsAnyAbort()) {
    // The engine already rolled back its own sub-transaction; abort the
    // rest of the cross-engine transaction for atomicity.
    Abort();
  }
  return s;
}

void Transaction::RecordOp(HistOpKind kind, int e, TableId table,
                           const Key& key, std::string_view value,
                           bool found) {
  HistOp op;
  op.kind = kind;
  op.engine = static_cast<uint8_t>(e);
  op.table = table;
  op.key = key;
  op.value.assign(value.data(), value.size());
  op.found = found;
  op.snapshot = hist_snap_[e];
  hist_->ops.push_back(std::move(op));
}

Status Transaction::Get(const TableHandle& table, const Key& key,
                        std::string* value) {
  int e = table.engine_index;
  SKEENA_RETURN_NOT_OK(PrepareAccess(e));
  Status s = db_->engine(e)->Get(subs_[e].get(), table.local_id, key, value);
  if (hist_ && (s.ok() || s.IsNotFound())) {
    RecordOp(HistOpKind::kGet, e, table.local_id, key,
             s.ok() ? std::string_view(*value) : std::string_view(), s.ok());
  }
  return HandleOpStatus(e, s);
}

Status Transaction::Put(const TableHandle& table, const Key& key,
                        std::string_view value) {
  if (db_->replica()) return Status::NotSupported("replica is read-only");
  int e = table.engine_index;
  SKEENA_RETURN_NOT_OK(PrepareAccess(e));
  Status s = db_->engine(e)->Put(subs_[e].get(), table.local_id, key, value);
  if (hist_ && s.ok()) {
    RecordOp(HistOpKind::kPut, e, table.local_id, key, value, true);
  }
  return HandleOpStatus(e, s);
}

Status Transaction::Delete(const TableHandle& table, const Key& key) {
  if (db_->replica()) return Status::NotSupported("replica is read-only");
  int e = table.engine_index;
  SKEENA_RETURN_NOT_OK(PrepareAccess(e));
  Status s = db_->engine(e)->Delete(subs_[e].get(), table.local_id, key);
  if (hist_ && s.ok()) {
    RecordOp(HistOpKind::kDelete, e, table.local_id, key, {}, false);
  }
  return HandleOpStatus(e, s);
}

Status Transaction::Scan(
    const TableHandle& table, const Key& lower, size_t limit,
    const std::function<bool(const Key&, const std::string&)>& cb) {
  int e = table.engine_index;
  SKEENA_RETURN_NOT_OK(PrepareAccess(e));
  Status s;
  if (hist_) {
    s = db_->engine(e)->Scan(
        subs_[e].get(), table.local_id, lower, limit,
        [&](const Key& k, const std::string& v) {
          RecordOp(HistOpKind::kScanRow, e, table.local_id, k, v, true);
          return cb(k, v);
        });
  } else {
    s = db_->engine(e)->Scan(subs_[e].get(), table.local_id, lower, limit,
                             cb);
  }
  return HandleOpStatus(e, s);
}

Status Transaction::Get(const std::string& table, const Key& key,
                        std::string* value) {
  auto h = db_->GetTable(table);
  if (!h.ok()) return h.status();
  return Get(*h, key, value);
}

Status Transaction::Put(const std::string& table, const Key& key,
                        std::string_view value) {
  auto h = db_->GetTable(table);
  if (!h.ok()) return h.status();
  return Put(*h, key, value);
}

Status Transaction::Commit() {
  if (state_ != State::kActive) {
    return Status::InvalidArgument("transaction is not active");
  }
  int anchor = db_->anchor_index();
  int other = 1 - anchor;

  if (!used_[0] && !used_[1]) {
    state_ = State::kCommitted;
    // relaxed-ok: diagnostic gauge (see Database::active_transactions).
    db_->active_txns_.fetch_sub(1, std::memory_order_relaxed);
    ReleaseAnchorSlot();
    if (hist_) {
      hist_->outcome = TxnHistory::Outcome::kCommitted;
      db_->recorder()->Record(std::move(hist_));
    }
    return Status::OK();
  }

  bool cross = used_[0] && used_[1];

  // ---- Step 1: pre-commit every sub-transaction, anchor first, obtaining
  // engine-level commit timestamps (Section 4.5).
  Timestamp cts[kNumEngines] = {0, 0};
  int order[2] = {anchor, other};
  for (int i = 0; i < 2; ++i) {
    int e = order[i];
    if (!used_[e]) continue;
    Status s = db_->engine(e)->PreCommit(subs_[e].get(), gtid_,
                                         cross && skeena_on_, &cts[e]);
    if (!s.ok()) {
      Abort();
      return s;
    }
  }

  // Write/read-only classification per engine, needed by both the commit
  // check and the history record; valid only before post-commit.
  bool wrote[kNumEngines] = {false, false};
  for (int e = 0; e < kNumEngines; ++e) {
    if (used_[e]) wrote[e] = !db_->engine(e)->IsReadOnly(subs_[e].get());
  }

  // ---- Step 2: Skeena commit check. An "all-yes" pre-commit is not
  // sufficient — unlike 2PC, the transaction may still abort here.
  // Replica readers skip it: their pair was gate-proven consistent, and
  // running the check would install read mappings into the replayed CSR.
  if (skeena_on_ && !db_->replica()) {
    Status check = Status::OK();
    if (cross) {
      check = db_->csr().CommitCheck(cts[anchor], cts[other], wrote[anchor],
                                     wrote[other]);
    } else if (used_[other]) {
      // Single-engine in the non-anchor (slow) engine: still effectively
      // cross-engine — its commit must respect the anchor's start order
      // (Section 4.3). The anchor-side commit timestamp of a transaction
      // with no anchor writes is its anchor begin snapshot.
      check = db_->csr().CommitCheck(anchor_snap_, cts[other],
                                     /*anchor_engine_wrote=*/false,
                                     wrote[other]);
    }
    // Anchor-only transactions never touch the CSR (Table 3: ERMIA-S
    // matches ERMIA).
    if (!check.ok()) {
      Abort();  // aborts both pre-committed sub-transactions
      return check;
    }
  }

  // ---- Step 3: post-commit in the same (anchor-first) order in both
  // engines; results become visible internally but are not released to the
  // caller until durable.
  Lsn lsns[kNumEngines] = {0, 0};
  for (int i = 0; i < 2; ++i) {
    int e = order[i];
    if (!used_[e]) continue;
    Lsn lsn = db_->engine(e)->PostCommit(subs_[e].get(), gtid_,
                                         cross && skeena_on_);
    // Read-only sub-transactions may still have observed other
    // transactions' not-yet-durable results: gate on the log tail.
    lsns[e] = lsn != 0 ? lsn : db_->engine(e)->CurrentLsn();
    if (i == 0 && cross && db_->options_.test_post_commit_hook) {
      // Inter-engine post-commit window: one engine's results are visible
      // (and its commit horizon may pass this transaction), the other's
      // are not yet.
      db_->options_.test_post_commit_hook(gtid_);
    }
  }

  state_ = State::kCommitted;
  // relaxed-ok: diagnostic gauge (see Database::active_transactions).
  db_->active_txns_.fetch_sub(1, std::memory_order_relaxed);
  ReleaseAnchorSlot();

  // ---- Pipelined commit: detach and wait for both engines' durable LSNs
  // (Section 4.5). The wait is on this handle so callers get synchronous
  // commit semantics while worker threads of the engines stay off the I/O
  // path.
  if (!waiter_) waiter_ = std::make_shared<CommitWaiter>();
  db_->pipeline().EnqueueAndWait(lsns, waiter_,
                                 static_cast<size_t>(gtid_));
  if (hist_) {
    // Recorded only after the durability wait returns: outcome kCommitted
    // means "acknowledged to the caller".
    hist_->outcome = TxnHistory::Outcome::kCommitted;
    hist_->anchor_snap = anchor_snap_;
    for (int e = 0; e < kNumEngines; ++e) {
      hist_->commit[e] = cts[e];
      hist_->wrote[e] = wrote[e];
      hist_->post_committed[e] = used_[e];
    }
    db_->recorder()->Record(std::move(hist_));
  }
  return Status::OK();
}

void Transaction::Abort() {
  if (state_ != State::kActive) return;
  for (int e = 0; e < kNumEngines; ++e) {
    if (used_[e] && subs_[e] != nullptr) db_->engine(e)->Abort(subs_[e].get());
  }
  ReleaseAnchorSlot();
  state_ = State::kAborted;
  // relaxed-ok: diagnostic gauge (see Database::active_transactions).
  db_->active_txns_.fetch_sub(1, std::memory_order_relaxed);
  if (hist_) {
    hist_->outcome = TxnHistory::Outcome::kAborted;
    db_->recorder()->Record(std::move(hist_));
  }
}

}  // namespace skeena
