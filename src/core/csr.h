#ifndef SKEENA_CORE_CSR_H_
#define SKEENA_CORE_CSR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace skeena {

/// Cross-engine Snapshot Registry (paper Section 4.2-4.4).
///
/// The CSR records mappings between snapshots (commit timestamps) in the
/// anchor engine and snapshots in the other engine, and is consulted
///  (1) when a transaction crosses into the other engine, to select a
///      snapshot that cannot produce skewed reads (Algorithm 1), and
///  (2) at commit, to verify that adding the new (anchor_cts, other_cts)
///      pair keeps the registry free of skew for future transactions
///      (Algorithm 2).
///
/// Design notes mirroring the paper:
///  * One-to-many mappings keyed by anchor snapshots (the anchor-engine
///    optimization of Section 4.3). Same-key values are collapsed to a
///    [vmin, vmax] interval per key: Algorithm 1 only ever uses the max
///    value at keys <= s, but Algorithm 2's high bound and same-key tie
///    check need the MIN — a reader that registered a small other-engine
///    view at this key still forbids later commits at earlier anchor
///    positions from publishing past it (dropping the min re-introduces
///    the Figure 2(a) skew). The interval keeps the "InnoDB-only under
///    Skeena" workload at a single CSR entry (Section 6.3).
///  * Multi-index: the registry is a list of partitions, each covering a
///    disjoint anchor-snapshot range with a bounded number of keys. Only
///    the newest partition accepts inserts; needing a new mapping in a
///    sealed partition aborts the transaction (rare, quantified in
///    Section 6.9). Recycling drops whole partitions older than the oldest
///    active anchor snapshot.
///  * Concurrency: reader-writer latch on the partition list, a mutex per
///    partition (Section 4.4) — cheap relative to the slow engine's storage
///    stack, which is the fast-slow bet the paper makes.
class SnapshotRegistry {
 public:
  struct Options {
    /// Keys per partition ("1000 entries per index" in Section 6.5).
    size_t partition_capacity = 1000;
    /// Attempt recycling every N CSR accesses ("once per 5000 accesses",
    /// Section 4.4). 0 disables automatic recycling.
    uint64_t recycle_period = 5000;
  };

  struct Stats {
    uint64_t accesses = 0;
    uint64_t mappings = 0;
    uint64_t select_aborts = 0;   // snapshot selection failed
    uint64_t commit_aborts = 0;   // Algorithm 2 bounds violated
    uint64_t sealed_aborts = 0;   // mapping needed in a sealed partition
    uint64_t partitions_created = 0;
    uint64_t partitions_recycled = 0;
  };

  explicit SnapshotRegistry(Options options);
  ~SnapshotRegistry();

  SnapshotRegistry(const SnapshotRegistry&) = delete;
  SnapshotRegistry& operator=(const SnapshotRegistry&) = delete;

  /// Algorithm 1: selects the other-engine snapshot for a transaction whose
  /// anchor snapshot is `anchor_snap`. `latest_other` supplies the latest
  /// snapshot in the other engine for the no-candidate case. Returns
  /// kSkeenaAbort if the required mapping cannot be recorded.
  Result<Timestamp> SelectSnapshot(Timestamp anchor_snap,
                                   const std::function<Timestamp()>& latest_other);

  /// Algorithm 2: commit check + mapping installation for a cross-engine
  /// transaction committing with the given pair of commit timestamps.
  ///
  /// The `*_wrote` flags distinguish real commits from read-only
  /// sub-transactions whose "commit timestamp" is a borrowed view / begin
  /// bound; they type the bound comparisons:
  ///
  ///  * Low bound, `other_engine_wrote`: a mapping at a strictly earlier
  ///    anchor position with value v means a reader there already observed
  ///    the other engine through v; committing other-engine effects *at* v
  ///    would expose them to that reader while the anchor effects stay
  ///    ahead of it (Figure 2 skew) — so a real commit requires
  ///    other_cts > low, while a read-only timestamp may equal it.
  ///  * Equal anchor keys, `anchor_engine_wrote && other_engine_wrote`:
  ///    a reader whose anchor snapshot equals our anchor commit timestamp
  ///    *does* see our anchor writes (visibility is inclusive), so a
  ///    same-key mapping with value < other_cts is a reader that will see
  ///    our anchor half but not our other half — abort. Anchor-read-only
  ///    ties stay unconstrained (DSI Rule 4 allows <=; there is nothing of
  ///    ours to see in the anchor).
  Status CommitCheck(Timestamp anchor_cts, Timestamp other_cts,
                     bool anchor_engine_wrote = true,
                     bool other_engine_wrote = true);

  /// Provider of the oldest anchor snapshot still in use; partitions
  /// entirely below it are recycled.
  void SetMinAnchorProvider(std::function<Timestamp()> provider) {
    min_anchor_provider_ = std::move(provider);
  }

  /// Drops fully-stale partitions now (also runs automatically every
  /// recycle_period accesses).
  void Recycle();

  /// The smallest other-engine snapshot SelectSnapshot could still hand to
  /// a transaction whose anchor snapshot is >= `anchor_snap`: the
  /// predecessor mapping's max value at `anchor_snap` (selection values are
  /// monotone in the anchor key). kMaxTimestamp when no mapping constrains
  /// the selection (the fallback then uses the live engine clock). Engine
  /// GC uses this to avoid reclaiming versions a live anchor snapshot may
  /// still cross into (the engine-side analogue of Section 4.4 recycling).
  Timestamp MinSelectableValue(Timestamp anchor_snap) const;

  size_t PartitionCount() const;
  size_t EntryCount() const;
  Stats stats() const;

 private:
  struct Entry {
    Timestamp key;   // anchor-engine snapshot
    Timestamp vmin;  // smallest other-engine snapshot mapped to the key
    Timestamp vmax;  // largest other-engine snapshot mapped to the key
  };

  struct Partition {
    Timestamp min_key;  // first key mapped into this partition
    std::mutex mu;
    // Sorted by key; unique keys; per-key [vmin, vmax] interval of the
    // other-engine snapshots mapped to that key.
    std::vector<Entry> entries;
  };

  enum class MapResult { kOk, kNeedNewPartition, kSealed };

  // Locates the partition covering `snap` (last partition whose min_key <=
  // snap). Caller holds list_mu_ (shared or exclusive). Returns index or
  // npos.
  size_t LocatePartition(Timestamp snap) const;

  bool PartitionFull(const Partition& p) const {
    return p.entries.size() >= options_.partition_capacity;
  }

  // Inserts/updates (key, value) in partition `idx`. Caller holds the list
  // latch (shared) and the partition mutex.
  MapResult MapLocked(size_t idx, Timestamp key, Timestamp value);

  // Creates a new open partition starting at `min_key` (takes the list
  // latch in exclusive mode internally).
  void CreatePartition(Timestamp min_key);

  void TickAccess();

  Options options_;
  std::function<Timestamp()> min_anchor_provider_;

  mutable std::shared_mutex list_mu_;
  std::vector<std::unique_ptr<Partition>> partitions_;
  // Smallest anchor snapshot still covered: recycling raises it; snapshots
  // below it abort (their partitions are gone).
  Timestamp floor_ = 0;

  std::atomic<uint64_t> accesses_{0};
  std::atomic<uint64_t> mappings_{0};
  std::atomic<uint64_t> select_aborts_{0};
  std::atomic<uint64_t> commit_aborts_{0};
  std::atomic<uint64_t> sealed_aborts_{0};
  std::atomic<uint64_t> partitions_created_{0};
  std::atomic<uint64_t> partitions_recycled_{0};
};

}  // namespace skeena

#endif  // SKEENA_CORE_CSR_H_
