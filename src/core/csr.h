#ifndef SKEENA_CORE_CSR_H_
#define SKEENA_CORE_CSR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/epoch.h"
#include "common/thread_annotations.h"
#include "common/sharded_counter.h"
#include "common/status.h"
#include "common/types.h"

namespace skeena {

/// Cross-engine Snapshot Registry (paper Section 4.2-4.4).
///
/// The CSR records mappings between snapshots (commit timestamps) in the
/// anchor engine and snapshots in the other engine, and is consulted
///  (1) when a transaction crosses into the other engine, to select a
///      snapshot that cannot produce skewed reads (Algorithm 1), and
///  (2) at commit, to verify that adding the new (anchor_cts, other_cts)
///      pair keeps the registry free of skew for future transactions
///      (Algorithm 2).
///
/// Design notes mirroring the paper:
///  * One-to-many mappings keyed by anchor snapshots (the anchor-engine
///    optimization of Section 4.3). Same-key values are collapsed to a
///    [vmin, vmax] interval per key: Algorithm 1 only ever uses the max
///    value at keys <= s, but Algorithm 2's high bound and same-key tie
///    check need the MIN — a reader that registered a small other-engine
///    view at this key still forbids later commits at earlier anchor
///    positions from publishing past it (dropping the min re-introduces
///    the Figure 2(a) skew). The interval keeps the "InnoDB-only under
///    Skeena" workload at a single CSR entry (Section 6.3).
///  * Multi-index: the registry is a list of partitions, each covering a
///    disjoint anchor-snapshot range with a bounded number of keys. Only
///    the newest partition accepts inserts; needing a new mapping in a
///    sealed partition aborts the transaction (rare, quantified in
///    Section 6.9). Recycling drops whole partitions older than the oldest
///    active anchor snapshot.
///  * Concurrency (see DESIGN.md "Concurrency model"): the read path is
///    lock-free. The partition list is an immutable snapshot array behind
///    an atomic pointer, swapped RCU-style and reclaimed through an
///    EpochManager; sealed partitions are immutable sorted arrays; the
///    open partition publishes appended entries with a release store of
///    its entry count (out-of-order inserts copy-on-write the partition).
///    SelectSnapshot's hit case (an already-recorded or implied mapping —
///    Algorithm 1's common case) and MinSelectableValue therefore run with
///    zero shared writes. Mutations (mapping installs, partition creation,
///    recycling) serialize on one writer mutex — exactly the operations
///    whose cost the paper's fast-slow bet already amortizes against the
///    slow engine's storage stack.
class SnapshotRegistry {
 public:
  struct Options {
    /// Keys per partition ("1000 entries per index" in Section 6.5).
    size_t partition_capacity = 1000;
    /// Attempt recycling every N CSR accesses ("once per 5000 accesses",
    /// Section 4.4). 0 disables automatic recycling. Accesses are counted
    /// per thread (sharded), so the trigger fires on each thread's own
    /// access count — the aggregate cadence matches the paper's within a
    /// factor of the thread count.
    uint64_t recycle_period = 5000;
    /// Replication hook: called once per state-changing mapping install
    /// (new entry, interval widen, copy-on-write insert, partition seed),
    /// in install order, while the writer mutex is held — the call order IS
    /// the CSR install journal the log shipper streams to replicas
    /// (docs/REPLICATION.md). Covered no-op installs are not reported: they
    /// do not change the registry, so replaying the reported sequence
    /// reproduces identical mapping intervals. Keep the callback cheap.
    std::function<void(Timestamp key, Timestamp value)> install_observer;
  };

  struct Stats {
    uint64_t accesses = 0;
    uint64_t mappings = 0;
    uint64_t select_aborts = 0;   // snapshot selection failed
    uint64_t commit_aborts = 0;   // Algorithm 2 bounds violated
    uint64_t sealed_aborts = 0;   // mapping needed in a sealed partition
    uint64_t partitions_created = 0;
    uint64_t partitions_recycled = 0;
  };

  /// `epoch` is the reclamation domain for retired partition lists; pass
  /// the database-owned manager. When null (standalone use, tests) the
  /// registry owns a private one.
  explicit SnapshotRegistry(Options options, EpochManager* epoch = nullptr);
  ~SnapshotRegistry();

  SnapshotRegistry(const SnapshotRegistry&) = delete;
  SnapshotRegistry& operator=(const SnapshotRegistry&) = delete;

  /// Algorithm 1: selects the other-engine snapshot for a transaction whose
  /// anchor snapshot is `anchor_snap`. `latest_other` supplies the latest
  /// snapshot in the other engine for the no-candidate case. Returns
  /// kSkeenaAbort if the required mapping cannot be recorded.
  Result<Timestamp> SelectSnapshot(Timestamp anchor_snap,
                                   const std::function<Timestamp()>& latest_other);

  /// Algorithm 2: commit check + mapping installation for a cross-engine
  /// transaction committing with the given pair of commit timestamps.
  ///
  /// The `*_wrote` flags distinguish real commits from read-only
  /// sub-transactions whose "commit timestamp" is a borrowed view / begin
  /// bound; they type the bound comparisons:
  ///
  ///  * Low bound, `other_engine_wrote`: a mapping at a strictly earlier
  ///    anchor position with value v means a reader there already observed
  ///    the other engine through v; committing other-engine effects *at* v
  ///    would expose them to that reader while the anchor effects stay
  ///    ahead of it (Figure 2 skew) — so a real commit requires
  ///    other_cts > low, while a read-only timestamp may equal it.
  ///  * Equal anchor keys, `anchor_engine_wrote && other_engine_wrote`:
  ///    a reader whose anchor snapshot equals our anchor commit timestamp
  ///    *does* see our anchor writes (visibility is inclusive), so a
  ///    same-key mapping with value < other_cts is a reader that will see
  ///    our anchor half but not our other half — abort. Anchor-read-only
  ///    ties stay unconstrained (DSI Rule 4 allows <=; there is nothing of
  ///    ours to see in the anchor).
  Status CommitCheck(Timestamp anchor_cts, Timestamp other_cts,
                     bool anchor_engine_wrote = true,
                     bool other_engine_wrote = true);

  /// Provider of the oldest anchor snapshot still in use; partitions
  /// entirely below it are recycled.
  void SetMinAnchorProvider(std::function<Timestamp()> provider) {
    min_anchor_provider_ = std::move(provider);
  }

  /// Drops fully-stale partitions now (also runs automatically every
  /// recycle_period accesses). Dropped partitions are retired through the
  /// epoch manager, never freed under a latch a reader could race.
  void Recycle();

  /// Replica-side replay of one primary install-journal entry (the stream
  /// the install_observer produced). Installs unconditionally — no
  /// Algorithm 2 bounds: the primary already ran them — and tolerates
  /// entries below the local recycling floor (stale resends). Replaying a
  /// journal prefix in order reproduces the primary's mapping intervals.
  Status ReplayInstall(Timestamp key, Timestamp value);

  /// The smallest other-engine snapshot SelectSnapshot could still hand to
  /// a transaction whose anchor snapshot is >= `anchor_snap`: the
  /// predecessor mapping's max value at `anchor_snap` (selection values are
  /// monotone in the anchor key). kMaxTimestamp when no mapping constrains
  /// the selection (the fallback then uses the live engine clock). Engine
  /// GC uses this to avoid reclaiming versions a live anchor snapshot may
  /// still cross into (the engine-side analogue of Section 4.4 recycling).
  /// Lock-free: reads the published list under epoch protection.
  Timestamp MinSelectableValue(Timestamp anchor_snap) const;

  size_t PartitionCount() const;
  size_t EntryCount() const;
  Stats stats() const;

  /// One published mapping: anchor-snapshot key and its [vmin, vmax]
  /// other-engine interval.
  struct MappingEntry {
    Timestamp key;
    Timestamp vmin;
    Timestamp vmax;
  };
  /// Snapshot of every published mapping, sorted by key, plus the
  /// recycling floor — the black-box checker verifies committed
  /// cross-engine pairs against this (core/history.h). Lock-free; call on
  /// a quiesced registry for an exact picture.
  std::vector<MappingEntry> DumpMappings(Timestamp* floor = nullptr) const;

  /// Test-only: disables Algorithm 2's abort conditions (mappings still
  /// install) so the mutation test can prove the checker actually catches
  /// the skew the gate prevents. Always compiled — CI test lanes build
  /// with NDEBUG — at the cost of one relaxed load per commit check.
  void TestOnlyWeakenCommitGate(bool weaken) {
    // relaxed-ok: test-only flag; no ordering with registry state needed.
    weaken_gate_.store(weaken, std::memory_order_relaxed);
  }

  EpochManager& epoch() { return *epoch_; }

 private:
  struct Entry {
    Timestamp key;  // anchor-engine snapshot; immutable once published
    // [vmin, vmax] interval of the other-engine snapshots mapped to the
    // key. Widened in place (single-word atomic stores) by the serialized
    // writer; read lock-free.
    std::atomic<Timestamp> vmin;
    std::atomic<Timestamp> vmax;
  };

  /// A partition owns a fixed-capacity sorted entry array. Sealed
  /// partitions are fully immutable. The open (last) partition appends by
  /// writing entries[count] and release-publishing the new count; readers
  /// acquire-load the count and search only the published prefix.
  /// Out-of-order inserts (rare) replace the partition copy-on-write.
  struct Partition {
    Partition(Timestamp min_key_arg, size_t capacity_arg)
        : min_key(min_key_arg),
          capacity(capacity_arg),
          entries(new Entry[capacity_arg]) {}

    // First key covered. Immutable per partition object: an insert below
    // every existing key (possible only in partition 0, above the floor)
    // goes through the copy-on-write path, whose replacement carries the
    // lowered min_key — so the published list is always sorted and
    // location searches need no atomics here.
    const Timestamp min_key;
    const size_t capacity;
    std::atomic<size_t> count{0};
    std::unique_ptr<Entry[]> entries;
  };

  /// The RCU-published snapshot of the partition list. Immutable; writers
  /// build a new one and swap the pointer, retiring the old through the
  /// epoch manager. Partitions are shared across successive lists and are
  /// retired exactly once: when a writer drops them from the newest list
  /// (copy-on-write replacement or recycling).
  struct PartitionList {
    // Smallest anchor snapshot still covered: recycling raises it;
    // snapshots below it abort (their partitions are gone).
    Timestamp floor = 0;
    std::vector<Partition*> parts;
  };

  enum class MapResult { kOk, kSealed };

  static constexpr size_t kNpos = ~size_t{0};

  // Locates the partition covering `snap` (last partition whose min_key <=
  // snap; binary search). Returns kNpos only when `snap` predates the
  // recycling floor.
  static size_t LocatePartition(const PartitionList& list, Timestamp snap);

  // First published index in `p` with key >= / > `key`.
  static size_t LowerBound(const Partition& p, size_t n, Timestamp key);
  static size_t UpperBound(const Partition& p, size_t n, Timestamp key);

  // Installs (key, value) into the list (append, interval widen, COW
  // insert, or new-partition spawn). Caller holds write_mu_ and passes the
  // location it already computed on the current list: `idx` =
  // LocatePartition(list, key) (must not be kNpos; the list must be
  // non-empty) and `lb` = LowerBound(partition idx, its count, key) — both
  // callers (SelectSlow, CommitCheck) have just searched the same list
  // under the same mutex, so installs pay no repeated O(log n) searches.
  MapResult InstallLocked(Timestamp key, Timestamp value, size_t idx,
                          size_t lb) SKEENA_REQUIRES(write_mu_);

  // Appends a fresh partition seeded with (key, value). Caller holds
  // write_mu_.
  void AppendPartitionLocked(Timestamp key, Timestamp value)
      SKEENA_REQUIRES(write_mu_);

  // Swaps in `next` and retires the previous list. Caller holds write_mu_.
  void PublishLocked(PartitionList* next) SKEENA_REQUIRES(write_mu_);

  // Slow path of SelectSnapshot: a new mapping (or first partition) is
  // required.
  Result<Timestamp> SelectSlow(Timestamp anchor_snap,
                               const std::function<Timestamp()>& latest_other);

  void RecycleLocked(Timestamp min_snap) SKEENA_REQUIRES(write_mu_);
  void TickAccess();

  Options options_;
  std::function<Timestamp()> min_anchor_provider_;

  std::unique_ptr<EpochManager> owned_epoch_;
  EpochManager* epoch_;

  // Serializes all mutations (mapping installs, partition creation,
  // recycling). Readers never take it. list_ itself is NOT guarded (the
  // read path is lock-free under epoch protection); only the
  // exchange-and-retire in PublishLocked requires it.
  Mutex write_mu_;
  std::atomic<PartitionList*> list_;

  std::atomic<bool> weaken_gate_{false};

  ShardedCounter accesses_;
  ShardedCounter mappings_;
  ShardedCounter select_aborts_;
  ShardedCounter commit_aborts_;
  ShardedCounter sealed_aborts_;
  ShardedCounter partitions_created_;
  ShardedCounter partitions_recycled_;
};

}  // namespace skeena

#endif  // SKEENA_CORE_CSR_H_
