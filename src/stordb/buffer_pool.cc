#include "stordb/buffer_pool.h"

#include <cassert>
#include <cstring>

#include "common/parking_lot.h"
#include "common/spin_latch.h"
#include "log/storage_device.h"

namespace skeena::stordb {

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    if (pool_ != nullptr) pool_->Unpin(frame_idx_, false);
    pool_ = other.pool_;
    frame_idx_ = other.frame_idx_;
    data_ = other.data_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
  }
  return *this;
}

PageGuard::~PageGuard() {
  if (pool_ != nullptr) pool_->Unpin(frame_idx_, false);
}

void PageGuard::LockShared() {
  pool_->frames_[frame_idx_]->latch.LockShared();
}
void PageGuard::UnlockShared() {
  pool_->frames_[frame_idx_]->latch.UnlockShared();
}
void PageGuard::LockExclusive() { pool_->frames_[frame_idx_]->latch.Lock(); }
void PageGuard::UnlockExclusive() {
  auto* f = pool_->frames_[frame_idx_].get();
  f->dirty.store(true, std::memory_order_release);
  f->latch.Unlock();
}

BufferPool::BufferPool(size_t num_pages, DeviceResolver resolver,
                       size_t num_shards)
    : resolver_(std::move(resolver)), shards_(num_shards) {
  if (num_pages < num_shards) num_pages = num_shards;
  arena_ = std::make_unique<uint8_t[]>(num_pages * kPageSize);
  frames_.reserve(num_pages);
  for (size_t i = 0; i < num_pages; ++i) {
    auto frame = std::make_unique<Frame>();
    frame->data = arena_.get() + i * kPageSize;
    frames_.push_back(std::move(frame));
    shards_[i % num_shards].frame_idx.push_back(i);
  }
}

BufferPool::~BufferPool() {
  FlushAll();
#ifndef NDEBUG
  for (const auto& fptr : frames_) {
    // A leaked PageGuard outliving the pool is a caller bug: its Unpin
    // would touch freed memory. FlushAll above still wrote the frame back
    // (pins don't block flushing), so data is safe; fail loudly in debug.
    assert(WordPins(fptr->word.load(std::memory_order_relaxed)) == 0 &&
           "PageGuard leaked past ~BufferPool");
  }
#endif
}

Result<PageGuard> BufferPool::FetchPage(PageId pid) {
  return FetchInternal(pid, /*create_new=*/false);
}

Result<PageGuard> BufferPool::NewPage(PageId pid) {
  return FetchInternal(pid, /*create_new=*/true);
}

void BufferPool::PinMapped(Frame* f) {
  uint64_t w = f->word.load(std::memory_order_relaxed);
  for (;;) {
    assert(WordState(w) == FrameState::kLoading ||
           WordState(w) == FrameState::kResident);
    if (f->word.compare_exchange_weak(w, w + 1, std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
      return;
    }
  }
}

void BufferPool::TransitionState(Frame* f, FrameState from, FrameState to) {
  uint64_t w = f->word.load(std::memory_order_relaxed);
  for (;;) {
    assert(WordState(w) == from);
    (void)from;
    if (f->word.compare_exchange_weak(w, PackWord(to, WordPins(w)),
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
      return;
    }
  }
}

void BufferPool::CompleteTicket(FlushTicket& ticket) {
  ticket.done.store(1, std::memory_order_release);
  // Wake exactly one parked fetcher; each woken fetcher passes the baton
  // to the next (see the park site). The first to re-run the fetch maps a
  // frame and holds its exclusive latch through the reload, so the
  // staggered later waiters take the hit path and sleep on that latch —
  // the loaded frame is handed to them on UnlockExclusive instead of the
  // whole herd stampeding the shard mutex at once.
  ParkingLot::WakeOne(ticket.done);
}

Result<PageGuard> BufferPool::FetchInternal(PageId pid, bool create_new) {
  Shard& shard = shards_[std::hash<PageId>{}(pid) % shards_.size()];

  for (;;) {
    shard.mu.Lock();
    auto it = shard.table.find(pid);
    if (it != shard.table.end()) {
      size_t idx = it->second;
      Frame* f = frames_[idx].get();
      PinMapped(f);
      f->referenced = true;
      shard.mu.Unlock();
      // Wait out a concurrent loader (it holds the exclusive latch for the
      // duration of its I/O), then revalidate: a failed load — or a failed
      // write-back restoring the victim's old identity — unmaps the frame
      // while we are already pinned on it.
      f->latch.LockShared();
      bool valid = WordState(f->word.load(std::memory_order_acquire)) ==
                       FrameState::kResident &&
                   f->pid == pid;
      f->latch.UnlockShared();
      if (valid) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return PageGuard(this, idx, f->data);
      }
      Unpin(idx, false);
      continue;
    }

    // Miss on a pid whose previous frame is still writing back: park on
    // the flush ticket until the old image has reached the device, then
    // retry. The reload below then observes the post-write-back bytes,
    // which makes read-after-evict linearizable with the last
    // UnlockExclusive of the evicted page.
    auto fl = shard.inflight.find(pid);
    if (fl != shard.inflight.end()) {
      std::shared_ptr<FlushTicket> ticket = fl->second;
      shard.mu.Unlock();
      flush_waits_.fetch_add(1, std::memory_order_relaxed);
      auto flushed = [&] {
        return ticket->done.load(std::memory_order_acquire) != 0;
      };
      if (!SpinUntil(flushed)) {
        while (!flushed()) ParkingLot::Park(ticket->done, 0);
        // Baton pass: unconditional on what our own retry finds, so the
        // chain cannot strand a waiter behind a failed reload. A wake
        // with no one parked is a no-op.
        ParkingLot::WakeOne(ticket->done);
      }
      continue;
    }

    misses_.fetch_add(1, std::memory_order_relaxed);

    // Clock sweep over this shard's frames for an unpinned victim. The
    // claim is a CAS against the state word, so a pin taken without the
    // shard mutex (FlushAll) either lands first — and the sweep moves on —
    // or loses the race atomically; there is no blind pins.store(1).
    size_t victim_idx = ~size_t{0};
    FrameState claimed_from = FrameState::kFree;
    for (size_t step = 0; step < shard.frame_idx.size() * 2 + 1; ++step) {
      shard.clock_hand = (shard.clock_hand + 1) % shard.frame_idx.size();
      size_t idx = shard.frame_idx[shard.clock_hand];
      Frame* f = frames_[idx].get();
      uint64_t w = f->word.load(std::memory_order_relaxed);
      FrameState st = WordState(w);
      if (WordPins(w) != 0) continue;
      if (st != FrameState::kFree && st != FrameState::kResident) continue;
      if (st == FrameState::kResident && f->referenced) {
        f->referenced = false;
        continue;
      }
      FrameState claim_to = st == FrameState::kResident
                                ? FrameState::kEvicting
                                : FrameState::kLoading;
      if (!f->word.compare_exchange_strong(w, PackWord(claim_to, 1),
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed)) {
        continue;  // lost to a concurrent FlushAll pin
      }
      victim_idx = idx;
      claimed_from = st;
      break;
    }
    if (victim_idx == ~size_t{0}) {
      shard.mu.Unlock();
      return Status::Busy("buffer pool exhausted: all pages pinned");
    }

    Frame* victim = frames_[victim_idx].get();
    PageId old_pid = victim->pid;
    std::shared_ptr<FlushTicket> ticket;
    if (claimed_from == FrameState::kResident) {
      shard.table.erase(old_pid);
      if (victim->dirty.load(std::memory_order_acquire)) {
        // Record the in-flight write-back before dropping the shard mutex:
        // from here until the ticket completes, fetchers of old_pid park
        // instead of racing their device read against our WriteAt.
        ticket = std::make_shared<FlushTicket>();
        assert(shard.inflight.count(old_pid) == 0);
        shard.inflight.emplace(old_pid, ticket);
      }
    }
    // Exclusive latch before the new mapping is visible: hit-path fetchers
    // of `pid` pin, then block on the latch until the I/O below completes.
    // Guaranteed uncontended — every latch holder also holds a pin, and
    // the claim CAS required pins == 0 — so try_lock succeeds on the
    // first iteration. It must be a try_lock: a blocking lock() here
    // would record a shard.mu → latch ordering edge that inverts the
    // latch → shard.mu edges in the write-back paths below, and TSan
    // would report the (unrealizable) cycle as a potential deadlock.
    while (!victim->latch.TryLock()) CpuRelax();
    if (claimed_from == FrameState::kResident) {
      TransitionState(victim, FrameState::kEvicting, FrameState::kLoading);
    }
    victim->pid = pid;
    victim->referenced = true;
    shard.table[pid] = victim_idx;
    shard.mu.Unlock();

    // I/O outside the shard mutex. First the dirty write-back of the old
    // image (the frame still holds it), then the load of the new page.
    if (ticket != nullptr) {
      StorageDevice* old_dev = resolver_(PageIdTable(old_pid));
      uint64_t off = static_cast<uint64_t>(PageIdNo(old_pid)) * kPageSize;
      Status s = old_dev == nullptr
                     ? Status::IOError("no device for evicted table space")
                     : old_dev->WriteAt(off, std::span<const uint8_t>(
                                                 victim->data, kPageSize));
      if (!s.ok()) {
        // The frame holds the only copy of old_pid: restore its mapping
        // (still dirty) instead of losing the page, and unpublish the new
        // pid so no fetcher ever sees a mapping backed by garbage.
        shard.mu.Lock();
        shard.table.erase(pid);
        shard.inflight.erase(old_pid);
        victim->pid = old_pid;
        shard.table[old_pid] = victim_idx;
        TransitionState(victim, FrameState::kLoading, FrameState::kResident);
        shard.mu.Unlock();
        CompleteTicket(*ticket);  // parked fetchers retry and hit the restore
        victim->latch.Unlock();
        Unpin(victim_idx, false);
        return s;
      }
      victim->dirty.store(false, std::memory_order_release);
      write_backs_.fetch_add(1, std::memory_order_relaxed);
      shard.mu.Lock();
      shard.inflight.erase(old_pid);
      shard.mu.Unlock();
      CompleteTicket(*ticket);
    }

    Status load = Status::OK();
    if (create_new) {
      std::memset(victim->data, 0, kPageSize);
    } else {
      StorageDevice* dev = resolver_(PageIdTable(pid));
      if (dev == nullptr) {
        load = Status::InvalidArgument("no device for table space");
      } else {
        uint64_t off = static_cast<uint64_t>(PageIdNo(pid)) * kPageSize;
        if (off + kPageSize <= dev->Size()) {
          load =
              dev->ReadAt(off, std::span<uint8_t>(victim->data, kPageSize));
        } else {
          // Page was never written back (fresh page evicted clean, or
          // device shorter than the page): treat as zero-filled.
          std::memset(victim->data, 0, kPageSize);
        }
      }
    }
    if (!load.ok()) {
      // Unmap instead of leaving a resident mapping full of garbage; any
      // fetcher already pinned on the latch revalidates and retries.
      shard.mu.Lock();
      shard.table.erase(pid);
      victim->pid = kInvalidPageId;
      TransitionState(victim, FrameState::kLoading, FrameState::kFree);
      shard.mu.Unlock();
      victim->latch.Unlock();
      Unpin(victim_idx, false);
      return load;
    }
    TransitionState(victim, FrameState::kLoading, FrameState::kResident);
    victim->latch.Unlock();
    return PageGuard(this, victim_idx, victim->data);
  }
}

void BufferPool::Unpin(size_t frame_idx, bool dirty) {
  Frame* f = frames_[frame_idx].get();
  if (dirty) f->dirty.store(true, std::memory_order_release);
  // A pin underflow would borrow from the state bits (silent state
  // corruption, unlike the old standalone pin counter) — catch the
  // double-unpin loudly instead.
  assert(WordPins(f->word.load(std::memory_order_relaxed)) != 0 &&
         "Unpin without a matching pin");
  f->word.fetch_sub(1, std::memory_order_release);
}

Status BufferPool::FlushAll() {
  Status first_error = Status::OK();
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame* f = frames_[i].get();
    // CAS-pin through the state word: only kResident frames are flushable
    // here. A frame mid-claim (kLoading/kEvicting) is owned by a fetcher
    // whose own I/O writes the old image back or loads fresh data, and the
    // CAS losing to that claim just skips the frame.
    uint64_t w = f->word.load(std::memory_order_acquire);
    bool pinned = false;
    while (WordState(w) == FrameState::kResident) {
      if (f->word.compare_exchange_weak(w, w + 1, std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        pinned = true;
        break;
      }
    }
    if (!pinned) continue;
    // The pin blocks eviction, so pid/data are stable; the shared latch
    // excludes in-place writers, so clearing `dirty` after the write-back
    // cannot swallow a concurrent UnlockExclusive's dirty set.
    f->latch.LockShared();
    if (f->dirty.load(std::memory_order_acquire)) {
      StorageDevice* dev = resolver_(PageIdTable(f->pid));
      uint64_t off = static_cast<uint64_t>(PageIdNo(f->pid)) * kPageSize;
      Status s = dev == nullptr
                     ? Status::IOError("no device for table space")
                     : dev->WriteAt(off, std::span<const uint8_t>(f->data,
                                                                  kPageSize));
      if (s.ok()) {
        f->dirty.store(false, std::memory_order_release);
      } else if (first_error.ok()) {
        first_error = s;
      }
    }
    f->latch.UnlockShared();
    Unpin(i, false);
  }
  return first_error;
}

}  // namespace skeena::stordb
