#include "stordb/buffer_pool.h"

#include <cassert>
#include <cstring>

#include "log/storage_device.h"

namespace skeena::stordb {

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    if (pool_ != nullptr) pool_->Unpin(frame_idx_, false);
    pool_ = other.pool_;
    frame_idx_ = other.frame_idx_;
    data_ = other.data_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
  }
  return *this;
}

PageGuard::~PageGuard() {
  if (pool_ != nullptr) pool_->Unpin(frame_idx_, false);
}

void PageGuard::LockShared() { pool_->frames_[frame_idx_]->latch.lock_shared(); }
void PageGuard::UnlockShared() {
  pool_->frames_[frame_idx_]->latch.unlock_shared();
}
void PageGuard::LockExclusive() { pool_->frames_[frame_idx_]->latch.lock(); }
void PageGuard::UnlockExclusive() {
  auto* f = pool_->frames_[frame_idx_].get();
  f->dirty = true;
  f->latch.unlock();
}

BufferPool::BufferPool(size_t num_pages, DeviceResolver resolver,
                       size_t num_shards)
    : resolver_(std::move(resolver)), shards_(num_shards) {
  if (num_pages < num_shards) num_pages = num_shards;
  arena_ = std::make_unique<uint8_t[]>(num_pages * kPageSize);
  frames_.reserve(num_pages);
  for (size_t i = 0; i < num_pages; ++i) {
    auto frame = std::make_unique<Frame>();
    frame->data = arena_.get() + i * kPageSize;
    frames_.push_back(std::move(frame));
    shards_[i % num_shards].frame_idx.push_back(i);
  }
}

BufferPool::~BufferPool() { FlushAll(); }

Result<PageGuard> BufferPool::FetchPage(PageId pid) {
  return FetchInternal(pid, /*create_new=*/false);
}

Result<PageGuard> BufferPool::NewPage(PageId pid) {
  return FetchInternal(pid, /*create_new=*/true);
}

Result<PageGuard> BufferPool::FetchInternal(PageId pid, bool create_new) {
  Shard& shard = shards_[std::hash<PageId>{}(pid) % shards_.size()];

  std::unique_lock<std::mutex> lock(shard.mu);
  auto it = shard.table.find(pid);
  if (it != shard.table.end()) {
    Frame* f = frames_[it->second].get();
    f->pins.fetch_add(1, std::memory_order_relaxed);
    f->referenced = true;
    lock.unlock();
    hits_.fetch_add(1, std::memory_order_relaxed);
    // Wait for a concurrent loader to finish populating the frame.
    f->latch.lock_shared();
    f->latch.unlock_shared();
    return PageGuard(this, it->second, f->data);
  }

  misses_.fetch_add(1, std::memory_order_relaxed);

  // Clock sweep over this shard's frames for an unpinned victim.
  size_t victim_idx = ~size_t{0};
  for (size_t step = 0; step < shard.frame_idx.size() * 2 + 1; ++step) {
    shard.clock_hand = (shard.clock_hand + 1) % shard.frame_idx.size();
    size_t idx = shard.frame_idx[shard.clock_hand];
    Frame* f = frames_[idx].get();
    if (f->pins.load(std::memory_order_relaxed) != 0) continue;
    if (f->referenced) {
      f->referenced = false;
      continue;
    }
    victim_idx = idx;
    break;
  }
  if (victim_idx == ~size_t{0}) {
    return Status::Busy("buffer pool exhausted: all pages pinned");
  }

  Frame* victim = frames_[victim_idx].get();
  PageId old_pid = victim->pid;
  bool old_dirty = victim->dirty;
  bool old_loaded = victim->loaded;

  victim->pins.store(1, std::memory_order_relaxed);
  victim->referenced = true;
  // Take the exclusive latch before publishing the new mapping so that
  // concurrent fetchers of `pid` block until the I/O below completes.
  victim->latch.lock();
  if (old_loaded) shard.table.erase(old_pid);
  shard.table[pid] = victim_idx;
  victim->pid = pid;
  victim->loaded = true;
  victim->dirty = false;
  lock.unlock();

  // I/O outside the shard mutex.
  if (old_dirty && old_loaded) {
    StorageDevice* old_dev = resolver_(PageIdTable(old_pid));
    uint64_t off = static_cast<uint64_t>(PageIdNo(old_pid)) * kPageSize;
    Status s = old_dev->WriteAt(
        off, std::span<const uint8_t>(victim->data, kPageSize));
    if (!s.ok()) {
      victim->latch.unlock();
      Unpin(victim_idx, false);
      return s;
    }
  }
  if (create_new) {
    std::memset(victim->data, 0, kPageSize);
  } else {
    StorageDevice* dev = resolver_(PageIdTable(pid));
    uint64_t off = static_cast<uint64_t>(PageIdNo(pid)) * kPageSize;
    if (off + kPageSize <= dev->Size()) {
      Status s = dev->ReadAt(off, std::span<uint8_t>(victim->data, kPageSize));
      if (!s.ok()) {
        victim->latch.unlock();
        Unpin(victim_idx, false);
        return s;
      }
    } else {
      // Page was never written back (fresh page evicted clean, or device
      // shorter than the page): treat as zero-filled.
      std::memset(victim->data, 0, kPageSize);
    }
  }
  victim->latch.unlock();
  return PageGuard(this, victim_idx, victim->data);
}

void BufferPool::Unpin(size_t frame_idx, bool dirty) {
  Frame* f = frames_[frame_idx].get();
  if (dirty) f->dirty = true;
  f->pins.fetch_sub(1, std::memory_order_relaxed);
}

Status BufferPool::FlushAll() {
  for (auto& fptr : frames_) {
    Frame* f = fptr.get();
    if (!f->loaded || !f->dirty) continue;
    f->latch.lock_shared();
    StorageDevice* dev = resolver_(PageIdTable(f->pid));
    uint64_t off = static_cast<uint64_t>(PageIdNo(f->pid)) * kPageSize;
    Status s =
        dev->WriteAt(off, std::span<const uint8_t>(f->data, kPageSize));
    f->latch.unlock_shared();
    if (!s.ok()) return s;
    f->dirty = false;
  }
  return Status::OK();
}

}  // namespace skeena::stordb
