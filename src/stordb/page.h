#ifndef SKEENA_STORDB_PAGE_H_
#define SKEENA_STORDB_PAGE_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "common/encoding.h"
#include "common/types.h"

namespace skeena::stordb {

/// Page size. InnoDB's default is 16KB; we use the same so slot-per-page
/// arithmetic (and therefore buffer-pool miss behaviour for a given row
/// size) is comparable.
inline constexpr size_t kPageSize = 16 * 1024;
inline constexpr size_t kPageHeaderSize = 16;

/// Record identifier: table (16 bits) | page number (32 bits) | slot (16
/// bits). Also used as the lock id by the lock manager.
using Rid = uint64_t;

inline Rid MakeRid(TableId table, uint32_t page_no, uint16_t slot) {
  return (static_cast<uint64_t>(table) << 48) |
         (static_cast<uint64_t>(page_no) << 16) | slot;
}
inline TableId RidTable(Rid rid) { return static_cast<TableId>(rid >> 48); }
inline uint32_t RidPage(Rid rid) {
  return static_cast<uint32_t>((rid >> 16) & 0xffffffffull);
}
inline uint16_t RidSlot(Rid rid) { return static_cast<uint16_t>(rid); }

/// Fixed-size row slot layout inside a page. stordb tables declare a
/// maximum value size so updates happen in place, like InnoDB's
/// non-reorganizing update path; old images go to the undo chain.
///
///   [flags u8][tid u64][roll_ptr u64][vlen u32][key 16B][value max_value]
///
/// `roll_ptr` is an in-memory pointer to the newest UndoRecord for the row
/// (InnoDB keeps undo in rollback segments; we keep it heap-resident, see
/// DESIGN.md). It is only meaningful within the current process: recovery
/// rebuilds pages from the redo log, never from old page images.
struct RowHeader {
  static constexpr uint8_t kFlagInUse = 1;
  static constexpr uint8_t kFlagDeleted = 2;

  uint8_t flags = 0;
  uint64_t tid = 0;
  uint64_t roll_ptr = 0;
  uint32_t vlen = 0;

  static constexpr size_t kEncodedSize = 1 + 8 + 8 + 4;

  bool in_use() const { return (flags & kFlagInUse) != 0; }
  bool deleted() const { return (flags & kFlagDeleted) != 0; }
};

inline constexpr size_t RowSlotSize(size_t max_value_size) {
  return RowHeader::kEncodedSize + 16 /*key*/ + max_value_size;
}

inline constexpr size_t SlotsPerPage(size_t max_value_size) {
  return (kPageSize - kPageHeaderSize) / RowSlotSize(max_value_size);
}

inline size_t SlotOffset(uint16_t slot, size_t max_value_size) {
  return kPageHeaderSize + static_cast<size_t>(slot) * RowSlotSize(max_value_size);
}

/// Reads the row header + key at `p` (start of a slot).
inline void DecodeRowHeader(const uint8_t* p, RowHeader* hdr, Key* key) {
  hdr->flags = p[0];
  std::memcpy(&hdr->tid, p + 1, 8);
  std::memcpy(&hdr->roll_ptr, p + 9, 8);
  std::memcpy(&hdr->vlen, p + 17, 4);
  if (key != nullptr) std::memcpy(key->data(), p + 21, 16);
}

inline void EncodeRowHeader(uint8_t* p, const RowHeader& hdr, const Key& key) {
  p[0] = hdr.flags;
  std::memcpy(p + 1, &hdr.tid, 8);
  std::memcpy(p + 9, &hdr.roll_ptr, 8);
  std::memcpy(p + 17, &hdr.vlen, 4);
  std::memcpy(p + 21, key.data(), 16);
}

/// Rewrites only the header fields, leaving the key bytes in the slot
/// untouched (rollback restores old images without re-encoding the key).
inline void EncodeRowHeaderFields(uint8_t* p, const RowHeader& hdr) {
  p[0] = hdr.flags;
  std::memcpy(p + 1, &hdr.tid, 8);
  std::memcpy(p + 9, &hdr.roll_ptr, 8);
  std::memcpy(p + 17, &hdr.vlen, 4);
}

inline const uint8_t* RowValuePtr(const uint8_t* slot_start) {
  return slot_start + RowHeader::kEncodedSize + 16;
}
inline uint8_t* RowValuePtr(uint8_t* slot_start) {
  return slot_start + RowHeader::kEncodedSize + 16;
}

}  // namespace skeena::stordb

#endif  // SKEENA_STORDB_PAGE_H_
