#ifndef SKEENA_STORDB_TRX_SYS_H_
#define SKEENA_STORDB_TRX_SYS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <set>
#include <vector>

#include "common/active_registry.h"
#include "common/thread_annotations.h"
#include "common/spin_latch.h"
#include "common/types.h"
#include "index/concurrent_hash_map.h"

namespace skeena::stordb {

/// Lifecycle of a stordb transaction as seen by visibility checks.
enum class TxnState : uint8_t {
  kActive = 0,
  kPreCommitted,  // serialisation_no assigned, outcome decided soon
  kCommitted,
  kAborted,
};

/// InnoDB-style read view: watermarks plus the list of transactions active
/// when the view was created (paper Section 5).
///
/// Cross-engine (Skeena-selected) views additionally carry `ser_limit`:
/// the CSR hands back a *commit* timestamp in this engine, and visibility
/// must follow commit order, not TID-assignment order — a transaction with
/// a small TID can commit late with a large serialisation_no and must stay
/// invisible to an adjusted view. The paper's MySQL integration adjusts the
/// high watermark (Section 5); we keep that adjustment as the fast reject
/// and make the commit-order check authoritative via the TrxSys state table.
struct ReadView {
  uint64_t high_water = 0;  // TIDs >= this started after view creation
  uint64_t low_water = 0;   // TIDs < this committed before view creation
  std::vector<uint64_t> active;  // sorted TIDs active at creation
  uint64_t ser_limit = kMaxTimestamp;  // cross-engine commit-order limit
  uint64_t own_tid = 0;

  bool is_cross_engine() const { return ser_limit != kMaxTimestamp; }

  /// Applies the Skeena high-watermark adjustment (paper Section 5): lower
  /// the high watermark to the selected snapshot; if it drops below the low
  /// watermark, clamp both.
  void AdjustForCrossEngine(uint64_t selected_ser) {
    ser_limit = selected_ser;
    if (selected_ser + 1 < high_water) high_water = selected_ser + 1;
    if (high_water < low_water) low_water = high_water;
  }

  bool ContainsActive(uint64_t tid) const {
    return std::binary_search(active.begin(), active.end(), tid);
  }
};

/// Central transaction bookkeeping, deliberately mirroring InnoDB's cost
/// profile: TIDs and read views are handed out under one trx-sys mutex
/// (the expensive snapshot acquisition that disqualifies stordb as the CSR
/// anchor, paper Section 4.3).
class TrxSys {
 public:
  TrxSys();

  /// Assigns a TID to a read-write transaction and adds it to the active
  /// set (under the trx-sys mutex, as in InnoDB).
  uint64_t AssignTid();

  /// Pre-commit: draws the serialisation number from the shared counter and
  /// publishes state kPreCommitted (paper Section 5: InnoDB's
  /// serialisation_no denotes commit ordering and is what Skeena's commit
  /// check consumes).
  uint64_t AssignSerNo(uint64_t tid);

  /// Replica-side pre-commit: stamps `tid` with a primary-assigned
  /// serialisation number instead of drawing one, and advances the shared
  /// counter past `ser`. TIDs and sers come from ONE counter, so replaying
  /// a primary ser must also reserve the number locally — and because the
  /// (single) applier draws its TID before forcing the ser, replica row
  /// headers always satisfy tid <= ser, which is what keeps the cross-view
  /// high-watermark clamp (AdjustForCrossEngine) from rejecting a visible
  /// replicated row.
  void ForceSerNo(uint64_t tid, uint64_t ser);

  /// Post-commit: removes the TID from the active set and publishes
  /// kCommitted.
  void MarkCommitted(uint64_t tid);

  /// Rollback protocol: MarkAborting() publishes kAborted *before* undo is
  /// applied (cross-engine views stop trusting the row images immediately)
  /// but keeps the TID in the active set so native views created mid-
  /// rollback still treat it as active; FinishAbort() removes it once the
  /// old images are restored — mirroring InnoDB, where a transaction stays
  /// in the active list while rolling back.
  void MarkAborting(uint64_t tid);
  void FinishAbort(uint64_t tid);

  /// Creates a native read view (watermarks + active list) under the
  /// trx-sys mutex.
  ReadView CreateReadView(uint64_t own_tid);

  /// Latest commit-order snapshot for CSR's "use the latest e2 snapshot"
  /// fallback (Algorithm 1 line 6): every serialisation_no <= this value
  /// belongs to a transaction that has at least pre-committed; visibility
  /// waits out the pre-committed ones.
  uint64_t LatestSerSnapshot() const {
    return last_allocated_.load(std::memory_order_acquire) ;
  }

  /// State lookup for commit-order visibility. Unknown TIDs are treated as
  /// anciently committed (their state entries have been purged).
  struct StateSnapshot {
    TxnState state;
    uint64_t ser;
  };
  StateSnapshot GetState(uint64_t tid) const;

  /// Commit-order visibility for cross-engine views: waits out transactions
  /// that pre-committed with ser <= limit (their outcome is imminent —
  /// after Skeena's commit check passes, post-commit is unconditional).
  bool VisibleInCrossView(uint64_t tid, uint64_t ser_limit) const;

  /// Native InnoDB-style visibility.
  static bool VisibleInNativeView(const ReadView& view, uint64_t tid);

  /// Uniform entry point.
  bool Visible(const ReadView& view, uint64_t tid) const;

  /// Registry of view birth counters, for purging state entries and undo.
  ActiveSnapshotRegistry& view_registry() { return views_; }
  uint64_t MinActiveViewSer() {
    return views_.MinActive(LatestSerSnapshot());
  }

  /// Drops state entries of transactions resolved before `min_ser`.
  /// Committed entries are purged eagerly (a purged entry reads as
  /// "anciently committed", which is what min_ser guarantees); aborted
  /// entries get one extra purge round of grace so a reader holding a
  /// microseconds-stale row copy never mistakes an aborted writer for an
  /// ancient commit. Returns number purged.
  ///
  /// O(ripe), not a state-map scan: resolved transactions enter a
  /// ser-ordered side FIFO at MarkCommitted/FinishAbort and each round
  /// pops only the ripe prefix — the same discipline as the engine's undo
  /// queue (docs/RECLAMATION.md). An out-of-order smaller ser stuck behind
  /// a larger head just waits until the floor passes the head too:
  /// conservative, never unsafe.
  size_t PurgeStates(uint64_t min_ser);

  /// Fast-forwards the TID/serialisation counter after recovery.
  void AdvanceTo(uint64_t next);

  size_t ActiveCount() const;

 private:
  mutable Mutex mu_ SKEENA_ACQUIRED_BEFORE(resolved_mu_);  // the trx-sys mutex
  uint64_t next_tid_ SKEENA_GUARDED_BY(mu_) = 2;  // tid 1 = genesis loader
  std::set<uint64_t> active_tids_ SKEENA_GUARDED_BY(mu_);
  std::atomic<uint64_t> last_allocated_{1};

  mutable ConcurrentHashMap<uint64_t, StateSnapshot> states_;
  ActiveSnapshotRegistry views_;
  uint64_t prev_purge_min_ = 0;  // guarded by callers' purge serialization

  /// Side index for O(ripe) purge: (retire ser, tid) in enqueue order,
  /// which is near-monotone in ser because both the ser draw and the
  /// enqueue happen under mu_. Split per outcome so the aborted entries'
  /// one-round grace never stalls the committed prefix.
  struct Resolved {
    uint64_t ser;
    uint64_t tid;
  };
  Mutex resolved_mu_;  // acquired after mu_ (never the reverse)
  std::deque<Resolved> resolved_commits_ SKEENA_GUARDED_BY(resolved_mu_);
  std::deque<Resolved> resolved_aborts_ SKEENA_GUARDED_BY(resolved_mu_);
};

}  // namespace skeena::stordb

#endif  // SKEENA_STORDB_TRX_SYS_H_
