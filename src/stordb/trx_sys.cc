#include "stordb/trx_sys.h"

#include <algorithm>

namespace skeena::stordb {

TrxSys::TrxSys() {
  // Genesis transaction: initial table loads are stamped tid 1 / ser 1.
  states_.Put(1, StateSnapshot{TxnState::kCommitted, 1});
  resolved_commits_.push_back(Resolved{1, 1});
}

uint64_t TrxSys::AssignTid() {
  MutexLock guard(mu_);
  uint64_t tid = next_tid_++;
  active_tids_.insert(tid);
  last_allocated_.store(tid, std::memory_order_release);
  states_.Put(tid, StateSnapshot{TxnState::kActive, 0});
  return tid;
}

uint64_t TrxSys::AssignSerNo(uint64_t tid) {
  MutexLock guard(mu_);
  uint64_t ser = next_tid_++;
  last_allocated_.store(ser, std::memory_order_release);
  states_.Put(tid, StateSnapshot{TxnState::kPreCommitted, ser});
  return ser;
}

void TrxSys::ForceSerNo(uint64_t tid, uint64_t ser) {
  MutexLock guard(mu_);
  states_.Put(tid, StateSnapshot{TxnState::kPreCommitted, ser});
  if (ser >= next_tid_) next_tid_ = ser + 1;
  // relaxed-ok: mu_ is held, so no concurrent writer; the release store
  // below is the publication edge for lock-free readers.
  if (ser > last_allocated_.load(std::memory_order_relaxed)) {
    last_allocated_.store(ser, std::memory_order_release);
  }
}

void TrxSys::MarkCommitted(uint64_t tid) {
  MutexLock guard(mu_);
  auto st = states_.Get(tid);
  uint64_t ser = st.has_value() ? st->ser : 0;
  states_.Put(tid, StateSnapshot{TxnState::kCommitted, ser});
  active_tids_.erase(tid);
  if (ser != 0) {
    // Terminal state: enters the purge FIFO exactly once. A ser of 0
    // (commit without AssignSerNo) never becomes purgeable, matching the
    // scan-based predicate this index replaced.
    MutexLock rguard(resolved_mu_);
    resolved_commits_.push_back(Resolved{ser, tid});
  }
}

void TrxSys::MarkAborting(uint64_t tid) {
  MutexLock guard(mu_);
  auto st = states_.Get(tid);
  states_.Put(tid, StateSnapshot{TxnState::kAborted,
                                 st.has_value() ? st->ser : 0});
  // The TID intentionally stays in active_tids_ until FinishAbort().
}

void TrxSys::FinishAbort(uint64_t tid) {
  MutexLock guard(mu_);
  active_tids_.erase(tid);
  // Re-stamp the aborted state with the CURRENT counter as its retire
  // bound. A reader that captured this tid from a row header before the
  // rollback may consult the state long after — and it may hold a snapshot
  // far NEWER than the transaction's pre-commit ser, so purging by that
  // ser would turn the aborted write into an implicitly-committed phantom.
  // Every such reader began before this point, so `next_tid_` is a bound
  // its registered view keeps the purge below. (The ser of an aborted
  // state is otherwise unused: visibility only looks at the state tag.)
  states_.Put(tid, StateSnapshot{TxnState::kAborted, next_tid_});
  MutexLock rguard(resolved_mu_);
  resolved_aborts_.push_back(Resolved{next_tid_, tid});
}

ReadView TrxSys::CreateReadView(uint64_t own_tid) {
  ReadView view;
  MutexLock guard(mu_);
  view.high_water = next_tid_;
  view.low_water =
      active_tids_.empty() ? next_tid_ : *active_tids_.begin();
  view.active.assign(active_tids_.begin(), active_tids_.end());
  view.own_tid = own_tid;
  return view;
}

TrxSys::StateSnapshot TrxSys::GetState(uint64_t tid) const {
  auto st = states_.Get(tid);
  if (!st.has_value()) {
    // Purged: resolved long before any live view.
    return StateSnapshot{TxnState::kCommitted, 0};
  }
  return *st;
}

bool TrxSys::VisibleInCrossView(uint64_t tid, uint64_t ser_limit) const {
  while (true) {
    StateSnapshot st = GetState(tid);
    switch (st.state) {
      case TxnState::kCommitted:
        return st.ser <= ser_limit;
      case TxnState::kAborted:
        return false;
      case TxnState::kActive:
        return false;
      case TxnState::kPreCommitted:
        if (st.ser > ser_limit) return false;
        // A pre-committed transaction whose commit order falls inside our
        // snapshot will commit momentarily (the CSR mapping that produced
        // ser_limit is only installed once commit is unconditional); spin
        // until it resolves.
        CpuRelax();
        break;
    }
  }
}

bool TrxSys::VisibleInNativeView(const ReadView& view, uint64_t tid) {
  if (tid == view.own_tid) return true;
  if (tid < view.low_water) return true;
  if (tid >= view.high_water) return false;
  return !view.ContainsActive(tid);
}

bool TrxSys::Visible(const ReadView& view, uint64_t tid) const {
  if (tid == view.own_tid) return true;
  if (view.is_cross_engine()) {
    // Fast reject retained from the watermark adjustment.
    if (tid >= view.high_water) return false;
    return VisibleInCrossView(tid, view.ser_limit);
  }
  return VisibleInNativeView(view, tid);
}

size_t TrxSys::PurgeStates(uint64_t min_ser) {
  uint64_t aborted_limit = prev_purge_min_;
  prev_purge_min_ = min_ser;
  // Pop the ripe FIFO prefixes (committed below min_ser, aborted below the
  // previous round's min — the one-round grace), then erase those tids
  // from the state map: O(ripe) per round instead of an EraseIf scan of
  // everything retained.
  std::vector<uint64_t> ripe;
  {
    MutexLock guard(resolved_mu_);
    while (!resolved_commits_.empty() &&
           resolved_commits_.front().ser < min_ser) {
      ripe.push_back(resolved_commits_.front().tid);
      resolved_commits_.pop_front();
    }
    while (!resolved_aborts_.empty() &&
           resolved_aborts_.front().ser < aborted_limit) {
      ripe.push_back(resolved_aborts_.front().tid);
      resolved_aborts_.pop_front();
    }
  }
  size_t removed = 0;
  for (uint64_t tid : ripe) removed += states_.Erase(tid) ? 1 : 0;
  return removed;
}

void TrxSys::AdvanceTo(uint64_t next) {
  MutexLock guard(mu_);
  if (next > next_tid_) {
    next_tid_ = next;
    last_allocated_.store(next - 1, std::memory_order_release);
  }
}

size_t TrxSys::ActiveCount() const {
  MutexLock guard(mu_);
  return active_tids_.size();
}

}  // namespace skeena::stordb
