#include "stordb/stor_engine.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <map>

#include "log/log_records.h"

namespace skeena::stordb {

StorEngine::StorEngine(std::unique_ptr<StorageDevice> log_device,
                       Options options, EpochManager* epoch)
    : options_(options), locks_(options.lock) {
  if (epoch == nullptr) {
    owned_epoch_ = std::make_unique<EpochManager>();
    epoch_ = owned_epoch_.get();
  } else {
    epoch_ = epoch;
  }
  if (options_.enable_logging) {
    log_ = std::make_unique<LogManager>(std::move(log_device), options_.log);
  }
  if (!options_.device_factory) {
    DeviceLatency latency = options_.data_latency;
    options_.device_factory = [latency](const std::string&) {
      return std::make_unique<MemDevice>(latency);
    };
  }
  pool_ = std::make_unique<BufferPool>(
      options_.buffer_pool_pages,
      [this](TableId table) -> StorageDevice* {
        StorTable* t = GetTable(table);
        return t == nullptr ? nullptr : t->device.get();
      },
      options_.pool_shards);
}

StorEngine::~StorEngine() {
  // The pool's final flush resolves devices through tables_; destroy it
  // before the member destruction order would tear tables_ down first.
  pool_.reset();
  // Undo batches still waiting for the purge floor are freed directly: no
  // reader is left, and the epoch manager (possibly database-owned and
  // already ahead of us in destruction order) must not be touched here.
  for (const PendingUndos& p : pending_undos_) DeleteUndoChain(p.head);
  pending_undos_.clear();
}

TableId StorEngine::CreateTable(const std::string& name,
                                size_t max_value_size) {
  MutexLock guard(tables_mu_);
  auto t = std::make_unique<StorTable>();
  t->id = static_cast<TableId>(tables_.size());
  t->name = name;
  t->max_value_size = max_value_size;
  t->slot_size = RowSlotSize(max_value_size);
  t->slots_per_page = SlotsPerPage(max_value_size);
  t->device = options_.device_factory(name);
  TableId id = t->id;
  tables_.push_back(std::move(t));
  return id;
}

StorEngine::StorTable* StorEngine::GetTable(TableId id) const {
  MutexLock guard(tables_mu_);
  if (id >= tables_.size()) return nullptr;
  return tables_[id].get();
}

size_t StorEngine::TableRowCapacity(TableId id) const {
  StorTable* t = GetTable(id);
  return t == nullptr ? 0 : t->slots_per_page;
}

std::unique_ptr<StorTxn> StorEngine::Begin(IsolationLevel iso,
                                           Timestamp snapshot) {
  auto txn = std::make_unique<StorTxn>(iso);
  // relaxed-ok: lock-owner ids only need uniqueness.
  txn->lock_owner_ = next_lock_owner_.fetch_add(1, std::memory_order_relaxed);
  txn->pending_ser_limit_ = snapshot;
  if (snapshot != kMaxTimestamp) {
    // Cross-engine snapshot known up front: materialize the adjusted view
    // immediately (Skeena selects it before any data access). A snapshot
    // below the purge floor cannot be served — its undo chain may already
    // be reclaimed.
    if (!EnsureView(txn.get()).ok()) return nullptr;
  }
  return txn;
}

void StorEngine::EnsureTid(StorTxn* txn) {
  if (txn->tid_ != 0) return;
  txn->tid_ = trx_sys_.AssignTid();
  if (txn->has_view_) txn->view_.own_tid = txn->tid_;
}

Status StorEngine::EnsureView(StorTxn* txn) {
  if (txn->has_view_) return Status::OK();
  bool pinned = txn->pending_ser_limit_ != kMaxTimestamp;
  // A pinned (CSR-selected) snapshot below the purge floor cannot be
  // served: the undo chains it needs may already be retired. The floor
  // cannot move past a snapshot the CSR could still select (the
  // coordinator's purge-horizon provider bounds every floor advance), so
  // this check only fires for snapshots stale at selection time — no
  // register-then-validate ordering is needed. Native views draw their
  // horizon from the live transaction table and cannot be stale.
  if (pinned && txn->pending_ser_limit_ + 1 <
                    purge_floor_.load(std::memory_order_seq_cst)) {
    return Status::SkeenaAbort("cross-engine snapshot predates undo purge");
  }
  txn->view_slot_ = trx_sys_.view_registry().Acquire();
  trx_sys_.view_registry().BeginAcquire(txn->view_slot_);
  // Pre-register a conservative horizon and only THEN create the view:
  // MinActive waits out sentinel slots, and CreateReadView takes the
  // trx-sys mutex — leaving the sentinel up across that wait would make
  // purge scans spin for a whole contended lock acquisition. The counter
  // value is a safe stand-in: everything the eventual view cannot see
  // retires at a ser >= the view's high watermark, which is drawn from
  // the same counter *after* this store — so a scan that uses this bound
  // (or missed the slot entirely and used its pre-scan fallback, which
  // this store also precedes) never purges an undo the view needs. The
  // real horizon replaces it after view creation; for pinned views the
  // provider chain independently bounds the floor below ser_limit + 1.
  trx_sys_.view_registry().SetSnapshot(txn->view_slot_,
                                       trx_sys_.LatestSerSnapshot() + 1);
  txn->view_ = trx_sys_.CreateReadView(txn->tid_);
  Timestamp horizon;
  if (pinned) {
    txn->view_.AdjustForCrossEngine(txn->pending_ser_limit_);
    horizon = txn->pending_ser_limit_ + 1;
  } else {
    horizon = txn->view_.low_water;
  }
  trx_sys_.view_registry().SetSnapshot(txn->view_slot_, horizon);
  txn->has_view_ = true;
  return Status::OK();
}

Status StorEngine::RefreshSnapshot(StorTxn* txn, Timestamp snapshot) {
  if (txn->has_view_) {
    trx_sys_.view_registry().Release(txn->view_slot_);
    txn->has_view_ = false;
  }
  txn->pending_ser_limit_ = snapshot;
  return EnsureView(txn);
}

Rid StorEngine::AllocateSlot(StorTable* t) {
  MutexLock guard(t->insert_mu);
  if (t->pages_allocated == 0 || t->tail_slots_used == t->slots_per_page) {
    t->pages_allocated++;
    t->tail_slots_used = 0;
  }
  uint32_t page_no = t->pages_allocated - 1;
  uint16_t slot = static_cast<uint16_t>(t->tail_slots_used++);
  return MakeRid(t->id, page_no, slot);
}

Status StorEngine::ReadRowRaw(StorTable* t, Rid rid, RowHeader* hdr,
                              std::string* value) {
  auto page = pool_->FetchPage(MakePageId(t->id, RidPage(rid)));
  if (!page.ok()) return page.status();
  PageGuard& guard = page.value();
  guard.LockShared();
  const uint8_t* slot =
      guard.data() + SlotOffset(RidSlot(rid), t->max_value_size);
  DecodeRowHeader(slot, hdr, nullptr);
  if (value != nullptr && hdr->vlen > 0 &&
      hdr->vlen <= t->max_value_size) {
    value->assign(reinterpret_cast<const char*>(RowValuePtr(slot)),
                  hdr->vlen);
  } else if (value != nullptr) {
    value->clear();
  }
  guard.UnlockShared();
  return Status::OK();
}

Status StorEngine::ReadVisibleRow(StorTxn* txn, StorTable* t, Rid rid,
                                  std::string* value, bool* found) {
  RowHeader hdr;
  std::string cur;
  SKEENA_RETURN_NOT_OK(ReadRowRaw(t, rid, &hdr, &cur));

  uint64_t tid = hdr.tid;
  bool deleted = hdr.deleted() || !hdr.in_use();
  UndoRecord* roll = reinterpret_cast<UndoRecord*>(hdr.roll_ptr);
  std::string val = std::move(cur);

  bool own = txn->tid_ != 0 && tid == txn->tid_;
  if (!own) {
    // Pin for the roll-chain walk: batches are retired through the epoch
    // manager once the purge floor passes them, and the pin keeps a batch
    // we may be walking through mapped until we unpin. Pinned AFTER the
    // page fetch (which can block on device I/O — an EpochGuard must not
    // be held across that); the visibility wait inside Visible() for a
    // pre-committed writer is bounded (its post-commit is unconditional).
    EpochGuard guard(*epoch_);
    while (!trx_sys_.Visible(txn->view_, tid)) {
      if (roll == nullptr) {
        *found = false;
        return Status::OK();
      }
      tid = roll->old_tid;
      val = roll->old_value;
      deleted = roll->old_deleted;
      roll = roll->old_roll;
    }
  }
  if (deleted) {
    *found = false;
  } else {
    *found = true;
    *value = std::move(val);
  }
  return Status::OK();
}

Status StorEngine::Get(StorTxn* txn, TableId table, const Key& key,
                       std::string* value) {
  StorTable* t = GetTable(table);
  if (t == nullptr) return Status::InvalidArgument("no such table");
  SKEENA_RETURN_NOT_OK(EnsureView(txn));
  uint64_t ridv = 0;
  if (!t->index.Lookup(key, &ridv)) return Status::NotFound();
  Rid rid = ridv;
  if (txn->isolation() == IsolationLevel::kSerializable) {
    // 2PL read lock: forbids anti-dependencies (commit ordering).
    Status s = locks_.Lock(txn->lock_owner_, rid, LockMode::kShared);
    if (!s.ok()) {
      Abort(txn);
      return s;
    }
    txn->locks_.push_back(rid);
  }
  bool found = false;
  SKEENA_RETURN_NOT_OK(ReadVisibleRow(txn, t, rid, value, &found));
  return found ? Status::OK() : Status::NotFound();
}

Status StorEngine::Scan(
    StorTxn* txn, TableId table, const Key& lower, size_t limit,
    const std::function<bool(const Key&, const std::string&)>& cb) {
  StorTable* t = GetTable(table);
  if (t == nullptr) return Status::InvalidArgument("no such table");
  SKEENA_RETURN_NOT_OK(EnsureView(txn));
  size_t delivered = 0;
  Status status;
  t->index.ScanFrom(lower, [&](const Key& key, uint64_t ridv) {
    Rid rid = ridv;
    if (txn->isolation() == IsolationLevel::kSerializable) {
      Status s = locks_.Lock(txn->lock_owner_, rid, LockMode::kShared);
      if (!s.ok()) {
        status = s;
        return false;
      }
      txn->locks_.push_back(rid);
    }
    bool found = false;
    std::string value;
    Status s = ReadVisibleRow(txn, t, rid, &value, &found);
    if (!s.ok()) {
      status = s;
      return false;
    }
    if (!found) return true;
    delivered++;
    if (!cb(key, value)) return false;
    return limit == 0 || delivered < limit;
  });
  if (!status.ok() && status.IsAnyAbort()) Abort(txn);
  return status;
}

Status StorEngine::InstallRowVersion(StorTxn* txn, StorTable* t, Rid rid,
                                     const Key& key, std::string_view value,
                                     bool tombstone, bool fresh_insert) {
  auto undo = std::make_unique<UndoRecord>();
  undo->rid = rid;
  if (fresh_insert) {
    undo->old_tid = 0;
    undo->old_roll = nullptr;
    undo->old_deleted = true;
    undo->was_insert = true;
  } else {
    RowHeader old_hdr;
    std::string old_value;
    SKEENA_RETURN_NOT_OK(ReadRowRaw(t, rid, &old_hdr, &old_value));
    undo->old_tid = old_hdr.tid;
    undo->old_roll = reinterpret_cast<UndoRecord*>(old_hdr.roll_ptr);
    undo->old_value = std::move(old_value);
    undo->old_deleted = old_hdr.deleted() || !old_hdr.in_use();
  }
  // Ownership moves into the transaction's intrusive batch: one chain
  // head per txn, no per-txn container allocation on the commit path.
  UndoRecord* uptr = undo.release();
  uptr->next_in_txn = txn->undo_head_;
  txn->undo_head_ = uptr;
  ++txn->undo_count_;

  auto page = pool_->FetchPage(MakePageId(t->id, RidPage(rid)));
  if (!page.ok()) return page.status();
  PageGuard& guard = page.value();
  guard.LockExclusive();
  uint8_t* slot = guard.data() + SlotOffset(RidSlot(rid), t->max_value_size);
  RowHeader hdr;
  hdr.flags = RowHeader::kFlagInUse |
              (tombstone ? RowHeader::kFlagDeleted : 0);
  hdr.tid = txn->tid_;
  hdr.roll_ptr = reinterpret_cast<uint64_t>(uptr);
  hdr.vlen = static_cast<uint32_t>(value.size());
  EncodeRowHeader(slot, hdr, key);
  if (!value.empty()) {
    std::memcpy(RowValuePtr(slot), value.data(), value.size());
  }
  guard.UnlockExclusive();

  txn->redo_.push_back(RedoEntry{t->id, key, std::string(value), tombstone});
  return Status::OK();
}

Status StorEngine::WriteRow(StorTxn* txn, StorTable* t, const Key& key,
                            std::string_view value, bool tombstone) {
  if (value.size() > t->max_value_size) {
    return Status::InvalidArgument("value exceeds table max_value_size");
  }
  EnsureTid(txn);
  SKEENA_RETURN_NOT_OK(EnsureView(txn));

  for (int attempt = 0; attempt < 4; ++attempt) {
    uint64_t ridv = 0;
    if (t->index.Lookup(key, &ridv)) {
      Rid rid = ridv;
      Status s = locks_.Lock(txn->lock_owner_, rid, LockMode::kExclusive);
      if (!s.ok()) {
        Abort(txn);
        return s;
      }
      txn->locks_.push_back(rid);
      // First-updater-wins under SI: the row's latest version must be
      // visible (the prior writer has fully finished since we hold the X
      // lock; if its commit is outside our snapshot, updating would
      // overwrite data we cannot see).
      RowHeader hdr;
      SKEENA_RETURN_NOT_OK(ReadRowRaw(t, rid, &hdr, nullptr));
      if (hdr.tid != txn->tid_ && !trx_sys_.Visible(txn->view_, hdr.tid)) {
        Abort(txn);
        return Status::Aborted("write-write conflict");
      }
      return InstallRowVersion(txn, t, rid, key, value, tombstone,
                               /*fresh_insert=*/false);
    }

    // Insert path: claim a fresh slot, then publish it in the index.
    Rid rid = AllocateSlot(t);
    Status s = locks_.Lock(txn->lock_owner_, rid, LockMode::kExclusive);
    if (!s.ok()) {
      Abort(txn);
      return s;
    }
    txn->locks_.push_back(rid);
    if (t->index.Insert(key, rid)) {
      return InstallRowVersion(txn, t, rid, key, value, tombstone,
                               /*fresh_insert=*/true);
    }
    // Lost an insert race; retry through the update path.
  }
  Abort(txn);
  return Status::Busy("insert race");
}

Status StorEngine::Put(StorTxn* txn, TableId table, const Key& key,
                       std::string_view value) {
  StorTable* t = GetTable(table);
  if (t == nullptr) return Status::InvalidArgument("no such table");
  return WriteRow(txn, t, key, value, /*tombstone=*/false);
}

Status StorEngine::Delete(StorTxn* txn, TableId table, const Key& key) {
  StorTable* t = GetTable(table);
  if (t == nullptr) return Status::InvalidArgument("no such table");
  uint64_t ridv = 0;
  if (!t->index.Lookup(key, &ridv)) return Status::NotFound();
  return WriteRow(txn, t, key, std::string_view(), /*tombstone=*/true);
}

Status StorEngine::PreCommit(StorTxn* txn, GlobalTxnId gtid,
                             bool cross_engine) {
  assert(txn->state_ == StorTxn::State::kActive);

  if (txn->read_only()) {
    txn->ser_no_ = (txn->has_view_ && txn->view_.is_cross_engine())
                       ? txn->view_.ser_limit
                       : trx_sys_.LatestSerSnapshot();
    txn->state_ = StorTxn::State::kPreCommitted;
    return Status::OK();
  }

  // Enter the committing window *before* drawing the serialisation number
  // (see MemEngine::PreCommit): ReplicationHorizon() must never pass a ser
  // whose redo images are still pending at post-commit.
  txn->committing_slot_ = committing_.Acquire();
  committing_.BeginAcquire(txn->committing_slot_);
  txn->ser_no_ = trx_sys_.AssignSerNo(txn->tid_);
  committing_.SetSnapshot(txn->committing_slot_, txn->ser_no_);

  // Only the commit-begin marker is logged here (Section 4.6); redo images
  // move to post-commit to keep the cross-engine timestamp-assignment
  // window narrow (see MemEngine::PreCommit).
  if (log_ != nullptr && cross_engine) {
    LogRecord begin;
    begin.type = LogRecordType::kCommitBegin;
    begin.gtid = gtid;
    begin.cts = txn->ser_no_;
    std::string encoded = begin.Encode();
    log_->Append(std::span<const uint8_t>(
        reinterpret_cast<const uint8_t*>(encoded.data()), encoded.size()));
  }

  txn->state_ = StorTxn::State::kPreCommitted;
  return Status::OK();
}

Lsn StorEngine::PostCommit(StorTxn* txn, GlobalTxnId gtid, bool cross_engine) {
  assert(txn->state_ == StorTxn::State::kPreCommitted);

  if (log_ != nullptr && !txn->read_only()) {
    LogRecord rec;
    for (const RedoEntry& r : txn->redo_) {
      rec.type = LogRecordType::kData;
      rec.gtid = gtid;
      rec.cts = txn->ser_no_;
      rec.table = r.table;
      rec.tombstone = r.tombstone;
      rec.key = r.key;
      rec.value = r.value;
      std::string encoded = rec.Encode();
      log_->Append(std::span<const uint8_t>(
          reinterpret_cast<const uint8_t*>(encoded.data()), encoded.size()));
    }
  }
  if (!txn->read_only()) {
    trx_sys_.MarkCommitted(txn->tid_);
  }
  Lsn lsn = 0;
  if (log_ != nullptr && (!txn->read_only() || cross_engine)) {
    LogRecord rec;
    rec.type =
        cross_engine ? LogRecordType::kCommitEnd : LogRecordType::kCommit;
    rec.gtid = gtid;
    rec.cts = txn->ser_no_;
    std::string encoded = rec.Encode();
    lsn = log_->Append(std::span<const uint8_t>(
        reinterpret_cast<const uint8_t*>(encoded.data()), encoded.size()));
  }
  // Leave the committing window only after the last log append: the
  // replication horizon must not pass this ser while records are pending.
  if (txn->committing_slot_ != StorTxn::kNoSlot) {
    committing_.Release(txn->committing_slot_);
    txn->committing_slot_ = StorTxn::kNoSlot;
  }
  txn->state_ = StorTxn::State::kCommitted;
  FinishTxn(txn);
  MaybePurge(commit_count_.Increment());
  return lsn;
}

Timestamp StorEngine::ReplicationHorizon() const {
  // Fallback counter+1, read before the scan (see
  // MemEngine::ReplicationHorizon): a committer entering the window after
  // the scan draws its ser from a later counter increment, strictly above
  // the value we return.
  Timestamp latest = trx_sys_.LatestSerSnapshot();
  return committing_.MinActive(latest + 1) - 1;
}

Lsn StorEngine::CommitReplicated(StorTxn* txn, GlobalTxnId gtid,
                                 uint64_t ser) {
  assert(txn->state_ == StorTxn::State::kActive);
  assert(!txn->read_only());
  trx_sys_.ForceSerNo(txn->tid_, ser);
  txn->ser_no_ = ser;
  txn->state_ = StorTxn::State::kPreCommitted;
  return PostCommit(txn, gtid, /*cross_engine=*/false);
}

void StorEngine::Abort(StorTxn* txn) {
  if (txn->state_ == StorTxn::State::kCommitted ||
      txn->state_ == StorTxn::State::kAborted) {
    return;
  }
  if (txn->tid_ != 0) {
    trx_sys_.MarkAborting(txn->tid_);
    Rollback(txn);
    trx_sys_.FinishAbort(txn->tid_);
  }
  if (txn->committing_slot_ != StorTxn::kNoSlot) {
    committing_.Release(txn->committing_slot_);
    txn->committing_slot_ = StorTxn::kNoSlot;
  }
  txn->state_ = StorTxn::State::kAborted;
  FinishTxn(txn);
  abort_count_.Add(1);
}

void StorEngine::Rollback(StorTxn* txn) {
  // Restore before-images newest-first (the chain's natural order).
  for (UndoRecord* u = txn->undo_head_; u != nullptr; u = u->next_in_txn) {
    StorTable* t = GetTable(RidTable(u->rid));
    auto page = pool_->FetchPage(MakePageId(t->id, RidPage(u->rid)));
    if (!page.ok()) continue;  // device error: row stays invisible (aborted)
    PageGuard& guard = page.value();
    guard.LockExclusive();
    uint8_t* slot =
        guard.data() + SlotOffset(RidSlot(u->rid), t->max_value_size);
    RowHeader hdr;
    hdr.flags = RowHeader::kFlagInUse |
                (u->old_deleted ? RowHeader::kFlagDeleted : 0);
    hdr.tid = u->old_tid;
    hdr.roll_ptr = reinterpret_cast<uint64_t>(u->old_roll);
    hdr.vlen = static_cast<uint32_t>(u->old_value.size());
    EncodeRowHeaderFields(slot, hdr);
    if (!u->old_value.empty()) {
      std::memcpy(RowValuePtr(slot), u->old_value.data(),
                  u->old_value.size());
    }
    guard.UnlockExclusive();
  }
}

void StorEngine::FinishTxn(StorTxn* txn) {
  locks_.ReleaseAll(txn->lock_owner_, txn->locks_);
  txn->locks_.clear();
  if (txn->has_view_) {
    trx_sys_.view_registry().Release(txn->view_slot_);
    txn->has_view_ = false;
  }
  RetireUndos(txn);
}

namespace {
// Typed deleter for a finished transaction's undo batch: one limbo entry
// per transaction, walking the intrusive chain.
void DeleteUndoBatchRaw(void* p) {
  DeleteUndoChain(static_cast<UndoRecord*>(p));
}
}  // namespace

void StorEngine::RetireUndos(StorTxn* txn) {
  if (txn->undo_head_ == nullptr) return;
  // Undo images must outlive every view that may still walk them. A
  // committed transaction's undos are only walked by views older than its
  // commit order, so its ser_no is the right retire bound. An ABORTED
  // transaction's undos may be walked by ANY active view that captured the
  // row header before the rollback — even views far newer than its
  // pre-commit ser_no — so aborts always retire at the current counter:
  // every such view began (and registered) before this point, which pins
  // the purge floor below it. The batch then waits FIFO until the floor
  // passes the bound, and is freed through the epoch manager after that
  // (covering readers mid-walk).
  bool committed = txn->state_ == StorTxn::State::kCommitted;
  uint64_t ser = (committed && txn->ser_no_ != 0)
                     ? txn->ser_no_
                     : trx_sys_.LatestSerSnapshot() + 1;
  UndoRecord* head = txn->undo_head_;
  size_t count = txn->undo_count_;
  txn->undo_head_ = nullptr;
  txn->undo_count_ = 0;
  MutexLock guard(pending_mu_);
  pending_undos_.push_back(PendingUndos{ser, head, count});
}

void StorEngine::MaybePurge(uint64_t thread_commits) {
  if (options_.purge_interval == 0 ||
      thread_commits % options_.purge_interval != 0) {
    return;
  }
  // Explicit TryLock so TSA tracks the branch (see thread_annotations.h).
  if (!purge_round_mu_.TryLock()) return;  // another committer is purging
  // One exact view-registry scan (MinActive waits out in-flight
  // registrations) plus the coordinator's bound on what the CSR could
  // still select; their min is safe both to reclaim with and to validate
  // pinned views against — one floor, no published/apply split.
  uint64_t m = trx_sys_.MinActiveViewSer();
  if (purge_horizon_provider_) {
    m = std::min(m, purge_horizon_provider_());
  }
  AtomicFetchMax(purge_floor_, m, std::memory_order_seq_cst);
  trx_sys_.PurgeStates(m);
  // Drain the ripe FIFO prefix into the epoch manager: O(ripe), not a scan
  // of everything retained. A smaller ser stuck behind a larger head just
  // waits for the floor to pass the head too — conservative, never unsafe.
  std::vector<PendingUndos> ripe;
  {
    MutexLock guard(pending_mu_);
    while (!pending_undos_.empty() && pending_undos_.front().ser < m) {
      ripe.push_back(pending_undos_.front());
      pending_undos_.pop_front();
    }
  }
  for (const PendingUndos& p : ripe) {
    undo_purged_.Add(p.count);
    epoch_->RetireRaw(p.head, &DeleteUndoBatchRaw);
  }
  epoch_->TryAdvance();
  purge_round_mu_.Unlock();
}

StorEngine::Stats StorEngine::stats() const {
  Stats s;
  s.commits = commit_count_.Read();
  s.aborts = abort_count_.Read();
  s.undo_purged = undo_purged_.Read();
  s.pool_hit_ratio = pool_->HitRatio();
  s.pool_flush_waits = pool_->flush_waits();
  s.pool_write_backs = pool_->write_backs();
  return s;
}

Status StorEngine::RecoveryApply(StorTable* t, const Key& key,
                                 const std::string& value, bool tombstone) {
  uint64_t ridv = 0;
  Rid rid;
  bool fresh = false;
  if (t->index.Lookup(key, &ridv)) {
    rid = ridv;
  } else {
    rid = AllocateSlot(t);
    t->index.Insert(key, rid);
    fresh = true;
  }
  (void)fresh;
  auto page = pool_->FetchPage(MakePageId(t->id, RidPage(rid)));
  if (!page.ok()) return page.status();
  PageGuard& guard = page.value();
  guard.LockExclusive();
  uint8_t* slot = guard.data() + SlotOffset(RidSlot(rid), t->max_value_size);
  RowHeader hdr;
  hdr.flags =
      RowHeader::kFlagInUse | (tombstone ? RowHeader::kFlagDeleted : 0);
  hdr.tid = 1;  // genesis: anciently committed
  hdr.roll_ptr = 0;
  hdr.vlen = static_cast<uint32_t>(value.size());
  EncodeRowHeader(slot, hdr, key);
  if (!value.empty()) {
    std::memcpy(RowValuePtr(slot), value.data(), value.size());
  }
  guard.UnlockExclusive();
  return Status::OK();
}

Status StorEngine::Recover(const std::set<GlobalTxnId>& excluded) {
  if (log_ == nullptr) return Status::OK();

  struct TxnBuf {
    std::vector<LogRecord> data;
    bool committed = false;
    Timestamp cts = 0;
  };
  std::map<GlobalTxnId, TxnBuf> txns;

  LogReader reader(log_->device());
  std::string raw;
  while (reader.Next(&raw)) {
    LogRecord rec;
    if (!LogRecord::Decode(raw, &rec)) {
      return Status::Corruption("bad stordb log record");
    }
    switch (rec.type) {
      case LogRecordType::kData:
        txns[rec.gtid].data.push_back(std::move(rec));
        break;
      case LogRecordType::kCommit:
        txns[rec.gtid].committed = true;
        txns[rec.gtid].cts = rec.cts;
        break;
      case LogRecordType::kCommitBegin:
        break;
      case LogRecordType::kCommitEnd:
        if (excluded.count(rec.gtid) == 0) {
          txns[rec.gtid].committed = true;
          txns[rec.gtid].cts = rec.cts;
        }
        break;
    }
  }

  std::vector<const TxnBuf*> committed;
  for (const auto& [gtid, buf] : txns) {
    if (buf.committed && !buf.data.empty()) committed.push_back(&buf);
  }
  std::sort(committed.begin(), committed.end(),
            [](const TxnBuf* a, const TxnBuf* b) { return a->cts < b->cts; });

  Timestamp max_cts = 1;
  for (const TxnBuf* buf : committed) {
    for (const LogRecord& rec : buf->data) {
      StorTable* t = GetTable(rec.table);
      if (t == nullptr) {
        return Status::Corruption("stordb log references unknown table");
      }
      SKEENA_RETURN_NOT_OK(RecoveryApply(t, rec.key, rec.value,
                                         rec.tombstone));
    }
    max_cts = std::max(max_cts, buf->cts);
  }
  trx_sys_.AdvanceTo(max_cts + 1);
  return Status::OK();
}

}  // namespace skeena::stordb
