#ifndef SKEENA_STORDB_LOCK_MANAGER_H_
#define SKEENA_STORDB_LOCK_MANAGER_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "stordb/page.h"

namespace skeena::stordb {

enum class LockMode : uint8_t { kShared = 0, kExclusive = 1 };

/// Record (row) lock manager with shared/exclusive modes, FIFO waiting,
/// waits-for deadlock detection and a timeout backstop.
///
/// stordb takes X locks on every write (and S locks on reads under
/// serializable isolation), held until post-commit — 2PL, which exhibits the
/// commit-ordering property Skeena's serializability argument relies on
/// (paper Section 4.7). Lock waits are also the mechanism behind the
/// paper's headline TPC-C observation: Delivery on InnoDB is slow because
/// it holds record locks on NEW_ORDER rows (Section 6.9).
class LockManager {
 public:
  struct Options {
    /// Waiting longer than this aborts the requester (InnoDB's
    /// innodb_lock_wait_timeout, scaled down for benchmarks).
    uint64_t wait_timeout_ms = 1000;
    size_t num_buckets = 256;
  };

  LockManager() : LockManager(Options()) {}
  explicit LockManager(Options options);

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Acquires `mode` on `rid` for `txn_id`. Re-entrant: a holder asking for
  /// the same or weaker mode succeeds immediately; S -> X upgrades are
  /// supported. Returns kDeadlock if waiting would close a cycle, or
  /// kTimedOut if the wait exceeds the timeout.
  Status Lock(uint64_t txn_id, Rid rid, LockMode mode);

  /// Releases every lock held by `txn_id` (called at post-commit /
  /// rollback end — strict 2PL).
  void ReleaseAll(uint64_t txn_id, const std::vector<Rid>& rids);

  /// True if `txn_id` currently holds `rid` in a mode covering `mode`.
  bool Holds(uint64_t txn_id, Rid rid, LockMode mode) const;

  uint64_t deadlocks() const { return deadlocks_; }
  uint64_t timeouts() const { return timeouts_; }
  uint64_t waits() const { return waits_; }

 private:
  struct Holder {
    uint64_t txn_id;
    LockMode mode;
  };
  struct Waiter {
    uint64_t txn_id;
    LockMode mode;
    bool upgrade = false;
  };
  struct LockQueue {
    std::vector<Holder> holders;
    std::deque<Waiter> waiters;
  };
  struct Bucket {
    mutable Mutex mu;
    CondVar cv;
    std::unordered_map<Rid, LockQueue> queues SKEENA_GUARDED_BY(mu);
  };

  Bucket& BucketFor(Rid rid) {
    return buckets_[std::hash<Rid>{}(rid) % buckets_.size()];
  }
  const Bucket& BucketFor(Rid rid) const {
    return buckets_[std::hash<Rid>{}(rid) % buckets_.size()];
  }

  // Grant check: can (txn, mode) be granted given current holders/waiters?
  static bool CanGrant(const LockQueue& q, uint64_t txn_id, LockMode mode,
                       bool is_upgrade);

  // --- waits-for graph (global, mutex-protected; edges exist only while a
  // transaction blocks, so the graph is tiny and DFS is cheap).
  void AddEdges(uint64_t waiter, const std::vector<uint64_t>& holders);
  void ClearEdges(uint64_t waiter);
  bool WouldDeadlock(uint64_t waiter);

  Options options_;
  std::vector<Bucket> buckets_;

  Mutex graph_mu_;
  std::unordered_map<uint64_t, std::vector<uint64_t>> waits_for_
      SKEENA_GUARDED_BY(graph_mu_);

  std::atomic<uint64_t> deadlocks_{0};
  std::atomic<uint64_t> timeouts_{0};
  std::atomic<uint64_t> waits_{0};
};

}  // namespace skeena::stordb

#endif  // SKEENA_STORDB_LOCK_MANAGER_H_
