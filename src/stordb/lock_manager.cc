#include "stordb/lock_manager.h"

#include <algorithm>
#include <chrono>

namespace skeena::stordb {

LockManager::LockManager(Options options)
    : options_(options), buckets_(options.num_buckets) {}

bool LockManager::CanGrant(const LockQueue& q, uint64_t txn_id, LockMode mode,
                           bool is_upgrade) {
  if (is_upgrade) {
    // Upgradeable only when we are the sole holder.
    return q.holders.size() == 1 && q.holders[0].txn_id == txn_id;
  }
  if (mode == LockMode::kExclusive) return q.holders.empty();
  for (const Holder& h : q.holders) {
    if (h.mode == LockMode::kExclusive) return false;
  }
  return true;
}

void LockManager::AddEdges(uint64_t waiter,
                           const std::vector<uint64_t>& holders) {
  MutexLock guard(graph_mu_);
  waits_for_[waiter] = holders;
}

void LockManager::ClearEdges(uint64_t waiter) {
  MutexLock guard(graph_mu_);
  waits_for_.erase(waiter);
}

bool LockManager::WouldDeadlock(uint64_t waiter) {
  MutexLock guard(graph_mu_);
  // DFS from the waiter's blockers; a path back to the waiter is a cycle.
  std::vector<uint64_t> stack;
  std::unordered_set<uint64_t> visited;
  auto it = waits_for_.find(waiter);
  if (it == waits_for_.end()) return false;
  for (uint64_t b : it->second) stack.push_back(b);
  while (!stack.empty()) {
    uint64_t t = stack.back();
    stack.pop_back();
    if (t == waiter) return true;
    if (!visited.insert(t).second) continue;
    auto e = waits_for_.find(t);
    if (e == waits_for_.end()) continue;
    for (uint64_t b : e->second) stack.push_back(b);
  }
  return false;
}

Status LockManager::Lock(uint64_t txn_id, Rid rid, LockMode mode) {
  Bucket& bucket = BucketFor(rid);
  MutexLock lk(bucket.mu);
  LockQueue& q = bucket.queues[rid];

  bool upgrade = false;
  for (Holder& h : q.holders) {
    if (h.txn_id != txn_id) continue;
    if (h.mode == LockMode::kExclusive || mode == LockMode::kShared) {
      return Status::OK();  // already covered
    }
    upgrade = true;  // held S, wants X
    break;
  }

  if (upgrade) {
    if (CanGrant(q, txn_id, mode, /*is_upgrade=*/true)) {
      for (Holder& h : q.holders) {
        if (h.txn_id == txn_id) h.mode = LockMode::kExclusive;
      }
      return Status::OK();
    }
    // Upgrades jump the queue: they already hold S and would otherwise
    // deadlock with ordinary waiters behind them.
    q.waiters.push_front(Waiter{txn_id, mode, /*upgrade=*/true});
  } else {
    if (q.waiters.empty() && CanGrant(q, txn_id, mode, false)) {
      q.holders.push_back(Holder{txn_id, mode});
      return Status::OK();
    }
    q.waiters.push_back(Waiter{txn_id, mode, /*upgrade=*/false});
  }

  // relaxed-ok: stat counter.
  waits_.fetch_add(1, std::memory_order_relaxed);
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(options_.wait_timeout_ms);

  auto granted = [&]() {
    for (const Holder& h : q.holders) {
      if (h.txn_id == txn_id &&
          (h.mode == mode || h.mode == LockMode::kExclusive)) {
        return true;
      }
    }
    return false;
  };
  auto remove_waiter = [&]() {
    for (auto it = q.waiters.begin(); it != q.waiters.end(); ++it) {
      if (it->txn_id == txn_id) {
        q.waiters.erase(it);
        break;
      }
    }
  };

  while (true) {
    if (granted()) {
      ClearEdges(txn_id);
      return Status::OK();
    }
    // (Re)compute blockers and probe for a waits-for cycle. Blockers are
    // the current holders plus waiters queued ahead of us.
    std::vector<uint64_t> blockers;
    for (const Holder& h : q.holders) {
      if (h.txn_id != txn_id) blockers.push_back(h.txn_id);
    }
    for (const Waiter& w : q.waiters) {
      if (w.txn_id == txn_id) break;
      blockers.push_back(w.txn_id);
    }
    AddEdges(txn_id, blockers);
    if (WouldDeadlock(txn_id)) {
      remove_waiter();
      ClearEdges(txn_id);
      // relaxed-ok: stat counter.
      deadlocks_.fetch_add(1, std::memory_order_relaxed);
      return Status::Deadlock("record lock deadlock");
    }
    // Sleep in short slices so a deadlock formed while every participant is
    // already blocked is still detected promptly by the re-probe above.
    auto slice = std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
    bucket.cv.WaitUntil(bucket.mu, std::min(slice, deadline));
    if (std::chrono::steady_clock::now() >= deadline) {
      if (granted()) {
        ClearEdges(txn_id);
        return Status::OK();
      }
      remove_waiter();
      ClearEdges(txn_id);
      // relaxed-ok: stat counter.
      timeouts_.fetch_add(1, std::memory_order_relaxed);
      return Status::TimedOut("lock wait timeout");
    }
  }
}

void LockManager::ReleaseAll(uint64_t txn_id, const std::vector<Rid>& rids) {
  for (Rid rid : rids) {
    Bucket& bucket = BucketFor(rid);
    MutexLock lk(bucket.mu);
    auto it = bucket.queues.find(rid);
    if (it == bucket.queues.end()) continue;
    LockQueue& q = it->second;
    q.holders.erase(
        std::remove_if(q.holders.begin(), q.holders.end(),
                       [&](const Holder& h) { return h.txn_id == txn_id; }),
        q.holders.end());

    // Promote waiters FIFO while compatible.
    bool promoted = false;
    while (!q.waiters.empty()) {
      Waiter& w = q.waiters.front();
      if (!CanGrant(q, w.txn_id, w.mode, w.upgrade)) break;
      if (w.upgrade) {
        for (Holder& h : q.holders) {
          if (h.txn_id == w.txn_id) h.mode = LockMode::kExclusive;
        }
      } else {
        q.holders.push_back(Holder{w.txn_id, w.mode});
      }
      q.waiters.pop_front();
      promoted = true;
    }
    if (q.holders.empty() && q.waiters.empty()) {
      bucket.queues.erase(it);
    }
    if (promoted) bucket.cv.NotifyAll();
  }
}

bool LockManager::Holds(uint64_t txn_id, Rid rid, LockMode mode) const {
  const Bucket& bucket = BucketFor(rid);
  MutexLock lk(bucket.mu);
  auto it = bucket.queues.find(rid);
  if (it == bucket.queues.end()) return false;
  for (const Holder& h : it->second.holders) {
    if (h.txn_id == txn_id &&
        (h.mode == mode || h.mode == LockMode::kExclusive)) {
      return true;
    }
  }
  return false;
}

}  // namespace skeena::stordb
