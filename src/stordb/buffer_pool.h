#ifndef SKEENA_STORDB_BUFFER_POOL_H_
#define SKEENA_STORDB_BUFFER_POOL_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "log/storage_device.h"
#include "stordb/page.h"

namespace skeena::stordb {

/// Page identifier across all table spaces: (table << 32) | page_no.
using PageId = uint64_t;

inline PageId MakePageId(TableId table, uint32_t page_no) {
  return (static_cast<uint64_t>(table) << 32) | page_no;
}
inline TableId PageIdTable(PageId pid) {
  return static_cast<TableId>(pid >> 32);
}
inline uint32_t PageIdNo(PageId pid) { return static_cast<uint32_t>(pid); }

class BufferPool;

/// RAII pin on a buffer-pool frame. Callers latch the page in shared or
/// exclusive mode while reading/writing row bytes.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept;
  ~PageGuard();

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;

  bool valid() const { return pool_ != nullptr; }
  uint8_t* data() const { return data_; }

  void LockShared();
  void UnlockShared();
  void LockExclusive();
  /// Marks the page dirty and releases the exclusive latch.
  void UnlockExclusive();

 private:
  friend class BufferPool;
  PageGuard(BufferPool* pool, size_t frame_idx, uint8_t* data)
      : pool_(pool), frame_idx_(frame_idx), data_(data) {}

  BufferPool* pool_ = nullptr;
  size_t frame_idx_ = 0;
  uint8_t* data_ = nullptr;
};

/// Sharded buffer pool with clock eviction and dirty write-back, modeling
/// InnoDB's buffer pool instances. The storage-resident experiments size it
/// below the working set so row accesses traverse the storage stack — the
/// central cost asymmetry of the paper's fast-slow architecture.
class BufferPool {
 public:
  /// Resolves the device a page should be read from / written to. Supplied
  /// by the engine (one device per table space).
  using DeviceResolver = std::function<StorageDevice*(TableId)>;

  BufferPool(size_t num_pages, DeviceResolver resolver,
             size_t num_shards = 8);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins the page, reading it from its device on a miss.
  Result<PageGuard> FetchPage(PageId pid);

  /// Pins a brand-new zero-filled page (no device read). The caller must
  /// initialize it; it will reach the device on eviction / flush.
  Result<PageGuard> NewPage(PageId pid);

  /// Writes back all dirty pages (clean shutdown / checkpoint).
  Status FlushAll();

  size_t capacity() const { return frames_.size(); }
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  double HitRatio() const {
    uint64_t h = hits(), m = misses();
    return h + m == 0 ? 1.0 : static_cast<double>(h) / static_cast<double>(h + m);
  }
  void ResetStats() {
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
  }

 private:
  friend class PageGuard;

  struct Frame {
    std::shared_mutex latch;
    std::atomic<int> pins{0};
    PageId pid = ~0ull;
    bool dirty = false;
    bool referenced = false;
    bool loaded = false;  // false until first assignment
    uint8_t* data = nullptr;
  };

  struct Shard {
    std::mutex mu;
    std::unordered_map<PageId, size_t> table;  // pid -> frame index
    std::vector<size_t> frame_idx;             // frames owned by this shard
    size_t clock_hand = 0;
  };

  Result<PageGuard> FetchInternal(PageId pid, bool create_new);
  void Unpin(size_t frame_idx, bool dirty);

  DeviceResolver resolver_;
  std::vector<std::unique_ptr<Frame>> frames_;
  std::vector<Shard> shards_;
  std::unique_ptr<uint8_t[]> arena_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace skeena::stordb

#endif  // SKEENA_STORDB_BUFFER_POOL_H_
