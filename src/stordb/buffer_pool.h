#ifndef SKEENA_STORDB_BUFFER_POOL_H_
#define SKEENA_STORDB_BUFFER_POOL_H_

#include <atomic>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "log/storage_device.h"
#include "stordb/page.h"

namespace skeena::stordb {

/// Page identifier across all table spaces: (table << 32) | page_no.
using PageId = uint64_t;

inline constexpr PageId kInvalidPageId = ~0ull;

inline PageId MakePageId(TableId table, uint32_t page_no) {
  return (static_cast<uint64_t>(table) << 32) | page_no;
}
inline TableId PageIdTable(PageId pid) {
  return static_cast<TableId>(pid >> 32);
}
inline uint32_t PageIdNo(PageId pid) { return static_cast<uint32_t>(pid); }

class BufferPool;

/// RAII pin on a buffer-pool frame. Callers latch the page in shared or
/// exclusive mode while reading/writing row bytes. A guard is only handed
/// out for a frame in the `kResident` state whose identity matched the
/// requested page id, and the pin blocks every lifecycle transition
/// (eviction, reload, Free) until it is dropped.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept;
  ~PageGuard();

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;

  bool valid() const { return pool_ != nullptr; }
  uint8_t* data() const { return data_; }

  // The latch methods are deliberately outside thread-safety analysis:
  // they acquire/release a frame latch reached through pool_->frames_[i],
  // a capability expression TSA cannot resolve, and the lock lifetime
  // spans guard method calls by design (caller-managed hand-over).
  void LockShared() SKEENA_NO_THREAD_SAFETY_ANALYSIS;
  void UnlockShared() SKEENA_NO_THREAD_SAFETY_ANALYSIS;
  void LockExclusive() SKEENA_NO_THREAD_SAFETY_ANALYSIS;
  /// Marks the page dirty and releases the exclusive latch. The dirty bit
  /// is published before the latch release, so any flusher or evictor that
  /// acquires the latch (or claims the frame once the pin drops) observes
  /// it.
  void UnlockExclusive() SKEENA_NO_THREAD_SAFETY_ANALYSIS;

 private:
  friend class BufferPool;
  PageGuard(BufferPool* pool, size_t frame_idx, uint8_t* data)
      : pool_(pool), frame_idx_(frame_idx), data_(data) {}

  BufferPool* pool_ = nullptr;
  size_t frame_idx_ = 0;
  uint8_t* data_ = nullptr;
};

/// Sharded buffer pool with clock eviction and dirty write-back, modeling
/// InnoDB's buffer pool instances. The storage-resident experiments size it
/// below the working set so row accesses traverse the storage stack — the
/// central cost asymmetry of the paper's fast-slow architecture.
///
/// Frame lifecycle (see DESIGN.md "Buffer pool frame lifecycle"): every
/// frame carries one atomic word packing {state, pin count}, and all
/// transitions are CASes against that word:
///
///   kFree ──claim──▶ kLoading ──load done──▶ kResident
///     ▲                  │  ▲                    │
///     └──load failed─────┘  └────────claim───────┤ (clean victim)
///                           kEvicting ◀──────────┘ (via write-back)
///
/// An evicting thread that must write back a dirty victim records
/// `old_pid → flush ticket` in its shard's in-flight write-back table
/// before dropping the shard mutex; a fetcher that misses on a pid with an
/// in-flight flush spins-then-parks on the ticket until the write-back has
/// reached the device, which makes read-after-evict linearizable with the
/// last `UnlockExclusive` of the evicted page.
class BufferPool {
 public:
  /// Resolves the device a page should be read from / written to. Supplied
  /// by the engine (one device per table space).
  using DeviceResolver = std::function<StorageDevice*(TableId)>;

  BufferPool(size_t num_pages, DeviceResolver resolver,
             size_t num_shards = 8);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins the page, reading it from its device on a miss.
  Result<PageGuard> FetchPage(PageId pid);

  /// Pins a brand-new zero-filled page (no device read). The caller must
  /// initialize it; it will reach the device on eviction / flush.
  Result<PageGuard> NewPage(PageId pid);

  /// Writes back all dirty pages (clean shutdown / checkpoint). Safe
  /// against concurrent fetchers/evictors: each frame is CAS-pinned via
  /// the state word and write-back happens under the shared page latch.
  /// Returns the first error but keeps flushing the remaining frames.
  Status FlushAll();

  size_t capacity() const { return frames_.size(); }
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  /// Fetches that parked behind an in-flight write-back of the same page.
  uint64_t flush_waits() const {
    return flush_waits_.load(std::memory_order_relaxed);
  }
  /// Dirty eviction write-backs that reached the device.
  uint64_t write_backs() const {
    return write_backs_.load(std::memory_order_relaxed);
  }
  double HitRatio() const {
    uint64_t h = hits(), m = misses();
    return h + m == 0 ? 1.0 : static_cast<double>(h) / static_cast<double>(h + m);
  }
  void ResetStats() {
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
    flush_waits_.store(0, std::memory_order_relaxed);
    write_backs_.store(0, std::memory_order_relaxed);
  }

 private:
  friend class PageGuard;

  enum class FrameState : uint32_t {
    kFree = 0,      // no identity; data meaningless
    kLoading = 1,   // mapped; owner holds the exclusive latch during I/O
    kResident = 2,  // mapped; data valid
    kEvicting = 3,  // unmapped; owner writing the old image back
  };

  // State word layout: pins in the low 32 bits (so pin/unpin are +-1 on
  // the word), state above them. Every transition out of an observed
  // {state, pins} is a CAS — never a blind store — so pins taken without
  // the shard mutex (FlushAll) and the evictor's claim resolve atomically.
  static constexpr uint64_t kPinsMask = 0xffffffffull;
  static constexpr uint64_t PackWord(FrameState s, uint32_t pins) {
    return (static_cast<uint64_t>(s) << 32) | pins;
  }
  static constexpr FrameState WordState(uint64_t w) {
    return static_cast<FrameState>(w >> 32);
  }
  static constexpr uint32_t WordPins(uint64_t w) {
    return static_cast<uint32_t>(w & kPinsMask);
  }

  struct Frame {
    SharedMutex latch;
    std::atomic<uint64_t> word{PackWord(FrameState::kFree, 0)};
    std::atomic<bool> dirty{false};
    // Identity; valid iff state != kFree. Written only by the frame's
    // claim owner while holding the exclusive latch, read under the
    // shared latch (guard validation, FlushAll) or after an acquire load
    // of `word` by the next claim owner.
    PageId pid = kInvalidPageId;
    bool referenced = false;  // clock bit; touched only under the shard mutex
    uint8_t* data = nullptr;
  };

  /// One in-flight dirty write-back. `done` flips 0 -> 1 once the old
  /// image has reached the device or the eviction was rolled back, then
  /// wakes ONE parked fetcher; each woken fetcher wakes the next (baton
  /// chain), so waiters re-run the fetch staggered instead of as a
  /// thundering herd, and all but the first pick up the reloaded frame
  /// from the loader's exclusive latch.
  struct FlushTicket {
    std::atomic<uint32_t> done{0};
  };

  struct Shard {
    Mutex mu;
    std::unordered_map<PageId, size_t> table
        SKEENA_GUARDED_BY(mu);  // pid -> frame index
    // pid -> ticket for evictions whose dirty write-back has left the
    // mutex but not yet reached the device. Disjoint from `table`.
    std::unordered_map<PageId, std::shared_ptr<FlushTicket>> inflight
        SKEENA_GUARDED_BY(mu);
    // Frames owned by this shard. Immutable after construction, but the
    // clock sweep reads it with mu held anyway; keep it guarded so the
    // sweep's invariants stay checkable.
    std::vector<size_t> frame_idx SKEENA_GUARDED_BY(mu);
    size_t clock_hand SKEENA_GUARDED_BY(mu) = 0;
  };

  Result<PageGuard> FetchInternal(PageId pid, bool create_new);
  void Unpin(size_t frame_idx, bool dirty);

  /// Pins a frame found through the shard table (caller holds the shard
  /// mutex, so the frame is kLoading or kResident and cannot be claimed).
  static void PinMapped(Frame* f);
  /// CAS transition `from` -> `to` preserving the pin count. The caller
  /// must own the frame (claimed it, or holds it in kLoading/kEvicting).
  static void TransitionState(Frame* f, FrameState from, FrameState to);
  /// Marks the ticket done and wakes every parked fetcher.
  static void CompleteTicket(FlushTicket& ticket);

  DeviceResolver resolver_;
  std::vector<std::unique_ptr<Frame>> frames_;
  std::vector<Shard> shards_;
  std::unique_ptr<uint8_t[]> arena_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> flush_waits_{0};
  std::atomic<uint64_t> write_backs_{0};
};

}  // namespace skeena::stordb

#endif  // SKEENA_STORDB_BUFFER_POOL_H_
