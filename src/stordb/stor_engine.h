#ifndef SKEENA_STORDB_STOR_ENGINE_H_
#define SKEENA_STORDB_STOR_ENGINE_H_

#include <deque>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/active_registry.h"
#include "common/epoch.h"
#include "common/sharded_counter.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "index/btree.h"
#include "log/log_manager.h"
#include "stordb/buffer_pool.h"
#include "stordb/lock_manager.h"
#include "stordb/stor_txn.h"
#include "stordb/trx_sys.h"

namespace skeena::stordb {

/// Storage-centric engine (InnoDB-like): the slow half of the paper's
/// fast-slow architecture.
///
/// Structural cost fidelity to InnoDB, which is what the paper's evaluation
/// exercises:
///  * rows live in 16KB slotted pages behind a buffer pool — the
///    storage-resident experiments size the pool below the working set so
///    row accesses pay the storage stack;
///  * updates are in place with before-images in undo chains; readers
///    reconstruct old versions through roll pointers;
///  * read views (watermarks + active-TID list) are created under the
///    trx-sys mutex — the expensive snapshot acquisition that makes memdb
///    the CSR anchor (paper Section 4.3);
///  * writes take record X locks (2PL; serializable mode adds S read
///    locks), giving the commit-ordering property (Section 4.7);
///  * commit draws a serialisation_no from the TID counter — exactly the
///    value the paper's MySQL integration feeds to Skeena's commit check
///    (Section 5).
///
/// Undo/state reclamation (docs/RECLAMATION.md) is unified with memdb's
/// and the CSR's: readers pin an EpochGuard for each roll-chain walk,
/// finished transactions queue their undo batches FIFO, and the purge
/// floor — min(oldest registered view horizon, external provider) —
/// forwards ripe batches to the shared EpochManager, which frees them
/// after the grace period.
class StorEngine {
 public:
  using DeviceFactory =
      std::function<std::unique_ptr<StorageDevice>(const std::string& name)>;

  struct Options {
    size_t buffer_pool_pages = 2048;
    size_t pool_shards = 8;
    LogManager::Options log;
    bool enable_logging = true;
    /// Latency injected by the default (in-memory) table-space devices;
    /// DeviceLatency::Ssd() models the paper's SSD runs (Section 6.7).
    DeviceLatency data_latency = DeviceLatency::Tmpfs();
    /// Overrides the default MemDevice factory (e.g., FileDevice).
    DeviceFactory device_factory;
    LockManager::Options lock;
    /// Purge states/undo every N commits.
    uint64_t purge_interval = 512;
    size_t max_concurrent_txns = 4096;
  };

  /// `epoch` is the reclamation domain retired undo batches are freed
  /// through; pass the database-owned manager so all engines and the CSR
  /// share one epoch domain. When null (standalone use, tests) the engine
  /// owns a private one.
  StorEngine(std::unique_ptr<StorageDevice> log_device, Options options,
             EpochManager* epoch = nullptr);
  ~StorEngine();

  StorEngine(const StorEngine&) = delete;
  StorEngine& operator=(const StorEngine&) = delete;

  // ----------------------------------------------------------- schema
  TableId CreateTable(const std::string& name, size_t max_value_size);
  size_t TableRowCapacity(TableId id) const;

  // ------------------------------------------------------- transactions
  /// Latest commit-order snapshot (for CSR Algorithm 1's fallback).
  Timestamp LatestSnapshot() const { return trx_sys_.LatestSerSnapshot(); }

  /// Begins a transaction. `snapshot == kMaxTimestamp` requests a native
  /// InnoDB-style read view (created lazily at first access); any other
  /// value is a CSR-selected commit-order snapshot: the engine creates the
  /// latest view and applies the Skeena watermark adjustment (Section 5).
  /// Returns nullptr when a CSR-selected snapshot has fallen below the
  /// undo-purge floor (the caller must re-select; Skeena retries with a
  /// fresh snapshot).
  std::unique_ptr<StorTxn> Begin(IsolationLevel iso,
                                 Timestamp snapshot = kMaxTimestamp);

  /// Replaces the transaction's view (read-committed refresh). Fails with
  /// kSkeenaAbort when a CSR-selected snapshot predates the purge floor.
  Status RefreshSnapshot(StorTxn* txn, Timestamp snapshot = kMaxTimestamp);

  /// External bound on the purge horizon (exclusive, in ser-number space):
  /// the coordinator supplies the smallest view horizon a live cross-engine
  /// transaction could still register, so state/undo purge never outruns a
  /// crossing that has not materialized its read view yet.
  void SetPurgeHorizonProvider(std::function<uint64_t()> provider) {
    purge_horizon_provider_ = std::move(provider);
  }

  Status Get(StorTxn* txn, TableId table, const Key& key, std::string* value);
  Status Put(StorTxn* txn, TableId table, const Key& key,
             std::string_view value);
  Status Delete(StorTxn* txn, TableId table, const Key& key);
  Status Scan(StorTxn* txn, TableId table, const Key& lower, size_t limit,
              const std::function<bool(const Key&, const std::string&)>& cb);

  /// Pre-commit: assigns the serialisation number, appends redo images and
  /// (for cross-engine transactions) the commit-begin record. Locks remain
  /// held. On failure the transaction is rolled back.
  Status PreCommit(StorTxn* txn, GlobalTxnId gtid, bool cross_engine);

  /// Post-commit: publishes the commit, appends the commit (or commit-end)
  /// record, releases locks. Returns the commit record's LSN.
  Lsn PostCommit(StorTxn* txn, GlobalTxnId gtid, bool cross_engine);

  /// Aborts an active or pre-committed transaction: rolls back in-place
  /// changes from undo, then releases locks.
  void Abort(StorTxn* txn);

  // ------------------------------------------------------- replication
  /// Commit horizon for log shipping (see MemEngine::ReplicationHorizon):
  /// every commit with ser_no <= the returned value has appended ALL of
  /// its log records — the committing-window registry is held from before
  /// the serialisation-number draw until after the last append.
  Timestamp ReplicationHorizon() const;

  /// Replica-side commit of one replayed transaction: stamps it with the
  /// primary-assigned serialisation number (TrxSys::ForceSerNo) instead of
  /// drawing one, then runs the normal post-commit (redo logging, commit
  /// publication, lock release). The transaction must have been built
  /// through the public write path (Begin + Put/Delete) and must not be
  /// read-only. Call in ascending-ser order (single applier thread).
  Lsn CommitReplicated(StorTxn* txn, GlobalTxnId gtid, uint64_t ser);

  // ------------------------------------------------------------- misc
  LogManager* log() const { return log_.get(); }
  BufferPool* pool() { return pool_.get(); }
  TrxSys* trx_sys() { return &trx_sys_; }
  LockManager* lock_manager() { return &locks_; }

  /// Reclamation domain undo batches retire through (the database-owned
  /// manager unless this engine runs standalone).
  EpochManager& epoch() { return *epoch_; }

  /// Undo-purge floor (exclusive, in ser-number space): batches whose
  /// retire bound is below it have been handed to the epoch manager.
  /// Monotone. Test hook.
  uint64_t PurgeFloor() const {
    return purge_floor_.load(std::memory_order_acquire);
  }

  /// Log-replay recovery; see MemEngine::Recover for the contract.
  Status Recover(const std::set<GlobalTxnId>& excluded);

  struct Stats {
    uint64_t commits = 0;
    uint64_t aborts = 0;
    uint64_t undo_purged = 0;
    double pool_hit_ratio = 1.0;
    /// Fetches that parked behind an in-flight eviction write-back of the
    /// same page (the read-after-evict window; see BufferPool).
    uint64_t pool_flush_waits = 0;
    /// Dirty eviction write-backs that reached the device.
    uint64_t pool_write_backs = 0;
  };
  Stats stats() const;

 private:
  struct StorTable {
    TableId id;
    std::string name;
    size_t max_value_size;
    size_t slot_size;
    size_t slots_per_page;
    BTree index;  // key -> Rid
    std::unique_ptr<StorageDevice> device;

    Mutex insert_mu;
    uint32_t pages_allocated SKEENA_GUARDED_BY(insert_mu) = 0;
    size_t tail_slots_used SKEENA_GUARDED_BY(insert_mu) = 0;
  };

  StorTable* GetTable(TableId id) const;
  void EnsureTid(StorTxn* txn);
  Status EnsureView(StorTxn* txn);

  // Allocates a fresh slot for an insert.
  Rid AllocateSlot(StorTable* t);

  // Reads a row's current version (header + value copy) under page latch.
  Status ReadRowRaw(StorTable* t, Rid rid, RowHeader* hdr, std::string* value);

  // Resolves the version of `rid` visible to txn's view; *found=false if no
  // visible, non-deleted version exists.
  Status ReadVisibleRow(StorTxn* txn, StorTable* t, Rid rid,
                        std::string* value, bool* found);

  // Shared write path for Put/Delete.
  Status WriteRow(StorTxn* txn, StorTable* t, const Key& key,
                  std::string_view value, bool tombstone);

  // Overwrites the row in place, pushing the before-image to undo.
  Status InstallRowVersion(StorTxn* txn, StorTable* t, Rid rid, const Key& key,
                           std::string_view value, bool tombstone,
                           bool fresh_insert);

  void Rollback(StorTxn* txn);
  void FinishTxn(StorTxn* txn);
  void RetireUndos(StorTxn* txn);
  // `thread_commits` is the committing thread's shard-local commit count
  // (the purge_interval trigger clock).
  void MaybePurge(uint64_t thread_commits);

  // Row write used by recovery (no locks, single-threaded).
  Status RecoveryApply(StorTable* t, const Key& key, const std::string& value,
                       bool tombstone);

  Options options_;
  std::unique_ptr<LogManager> log_;
  std::unique_ptr<BufferPool> pool_;
  TrxSys trx_sys_;
  LockManager locks_;
  std::atomic<uint64_t> next_lock_owner_{1};
  // Committers registered from before their ser draw until their last log
  // append; MinActive over it bounds ReplicationHorizon().
  ActiveSnapshotRegistry committing_;

  mutable Mutex tables_mu_;
  std::vector<std::unique_ptr<StorTable>> tables_
      SKEENA_GUARDED_BY(tables_mu_);

  // Reclamation domain (shared with the CSR and the other engine when
  // database-owned).
  std::unique_ptr<EpochManager> owned_epoch_;
  EpochManager* epoch_;

  // Finished transactions' undo batches, FIFO in finish order, each tagged
  // with its retire bound in ser space (commit: own ser_no; abort: the live
  // counter — see RetireUndos). MaybePurge drains the ripe prefix into the
  // epoch manager; out-of-order bounds (a smaller ser finishing after a
  // larger one) just wait one extra round behind the head, which is always
  // safe. This replaces the old retained-list std::partition scan.
  Mutex pending_mu_;
  struct PendingUndos {
    uint64_t ser;
    UndoRecord* head;  // intrusive newest-first chain, Retire()d whole
    size_t count;      // chain length (undo_purged diagnostic)
  };
  std::deque<PendingUndos> pending_undos_ SKEENA_GUARDED_BY(pending_mu_);

  // Single undo-purge floor (monotone, exclusive in ser space). Advanced
  // to min(view-registry scan, provider) every purge_interval commits; the
  // old two-level published/apply floor pair is gone for the same reasons
  // as memdb's (see mem_engine.h and docs/RECLAMATION.md). purge_round_mu_
  // only makes rounds non-reentrant (PurgeStates keeps one-round state for
  // the aborted-entry grace period); it carries no floor protocol.
  std::atomic<uint64_t> purge_floor_{0};
  Mutex purge_round_mu_;
  std::function<uint64_t()> purge_horizon_provider_;

  // Hot-path counters are sharded so committing threads never contend on
  // a stats cache line; MaybePurge triggers off the committing thread's
  // shard-local count instead of a folded total. The purge diagnostic
  // carries a tick-refreshed fold cache (see MemEngine::pruned_count_).
  ShardedCounter commit_count_;
  ShardedCounter abort_count_;
  ShardedCounter undo_purged_{/*read_cache_ns=*/50'000};
};

}  // namespace skeena::stordb

#endif  // SKEENA_STORDB_STOR_ENGINE_H_
