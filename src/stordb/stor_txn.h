#ifndef SKEENA_STORDB_STOR_TXN_H_
#define SKEENA_STORDB_STOR_TXN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/encoding.h"
#include "common/types.h"
#include "stordb/page.h"
#include "stordb/trx_sys.h"

namespace skeena::stordb {

/// Before-image of a row, linked into the row's roll-pointer chain.
/// Readers whose view cannot see the row's current version walk this chain
/// applying old images until a visible version is found — InnoDB-style
/// version reconstruction from undo (paper Section 5).
struct UndoRecord {
  Rid rid = 0;
  uint64_t old_tid = 0;
  UndoRecord* old_roll = nullptr;
  /// Intrusive link chaining a transaction's undo batch newest-first —
  /// the whole batch travels StorTxn → pending FIFO → epoch limbo as one
  /// head pointer, with no per-transaction container allocation.
  UndoRecord* next_in_txn = nullptr;
  std::string old_value;
  bool old_deleted = false;
  bool was_insert = false;  // the row did not exist before this write

  // relaxed-ok: leak-check gauge, read only at quiescent points.
  UndoRecord() { live_count_.fetch_add(1, std::memory_order_relaxed); }
  ~UndoRecord() { live_count_.fetch_sub(1, std::memory_order_relaxed); }
  UndoRecord(const UndoRecord&) = delete;
  UndoRecord& operator=(const UndoRecord&) = delete;

  /// Undo records currently alive anywhere (active txns, pending FIFO,
  /// epoch limbo). Reclaim tests assert this returns to zero once every
  /// transaction has finished and purge + epoch drain have run.
  static size_t LiveCount() {
    // relaxed-ok: leak-check gauge, read only at quiescent points.
    return live_count_.load(std::memory_order_relaxed);
  }

 private:
  inline static std::atomic<size_t> live_count_{0};
};

/// Deletes a newest-first undo batch chained through `next_in_txn`.
inline void DeleteUndoChain(UndoRecord* head) {
  while (head != nullptr) {
    UndoRecord* next = head->next_in_txn;
    delete head;
    head = next;
  }
}

/// After-image buffered for the redo log (written at pre-commit).
struct RedoEntry {
  TableId table;
  Key key;
  std::string value;
  bool tombstone;
};

/// A stordb (sub-)transaction.
///
/// Writes are performed in place under record X locks with before-images
/// pushed to the undo chain, so other transactions read through their views
/// while this one is active, and rollback restores the old images. The
/// pre-/post-commit split (serialisation_no assignment vs. making the
/// commit visible and releasing locks) is the interface Skeena's commit
/// protocol drives (paper Sections 4.5 and 5).
class StorTxn {
 public:
  enum class State : uint8_t {
    kActive,
    kPreCommitted,
    kCommitted,
    kAborted,
  };

  explicit StorTxn(IsolationLevel iso) : iso_(iso) {}
  ~StorTxn() { DeleteUndoChain(undo_head_); }

  StorTxn(const StorTxn&) = delete;
  StorTxn& operator=(const StorTxn&) = delete;

  IsolationLevel isolation() const { return iso_; }
  State state() const { return state_; }
  uint64_t tid() const { return tid_; }
  uint64_t ser_no() const { return ser_no_; }
  bool read_only() const { return redo_.empty(); }
  const ReadView& view() const { return view_; }
  bool has_view() const { return has_view_; }

 private:
  friend class StorEngine;

  IsolationLevel iso_;
  State state_ = State::kActive;
  uint64_t tid_ = 0;     // assigned at first write (InnoDB-style)
  uint64_t ser_no_ = 0;  // assigned at pre-commit
  uint64_t lock_owner_ = 0;  // distinct id for the lock manager

  static constexpr size_t kNoSlot = ~size_t{0};

  ReadView view_;
  bool has_view_ = false;
  size_t view_slot_ = kNoSlot;
  // Slot in the engine's committing-window registry, held from the
  // serialisation-number draw until the last log append (replication
  // horizon).
  size_t committing_slot_ = kNoSlot;
  // Desired cross-engine snapshot for lazily created views
  // (kMaxTimestamp = native view).
  uint64_t pending_ser_limit_ = kMaxTimestamp;

  UndoRecord* undo_head_ = nullptr;  // intrusive batch, newest first
  size_t undo_count_ = 0;
  std::vector<RedoEntry> redo_;
  std::vector<Rid> locks_;
};

}  // namespace skeena::stordb

#endif  // SKEENA_STORDB_STOR_TXN_H_
