#ifndef SKEENA_LOG_URING_QUEUE_H_
#define SKEENA_LOG_URING_QUEUE_H_

#include <cstdint>
#include <memory>

#include "common/status.h"

namespace skeena {

/// Minimal io_uring submission/completion queue built on the raw syscalls
/// (io_uring_setup / io_uring_enter + ring mmaps) — no liburing dependency.
/// Only what the log writer needs: batch a handful of WRITE/FSYNC SQEs,
/// submit them with one io_uring_enter, wait for all completions.
///
/// Compiled to a stub (Create returns kNotSupported) unless the build
/// defines SKEENA_HAVE_IO_URING; even then Create probes the kernel at
/// runtime, so callers always need the pwrite fallback path.
///
/// Not thread-safe: the owning device serializes all use under its write
/// mutex, which matches the single-flusher log write pattern.
class UringQueue {
 public:
  /// True when the binary was built with io_uring support *and* the running
  /// kernel accepts io_uring_setup. Cached after the first call.
  static bool Supported();

  /// Creates a queue with `entries` SQE slots (rounded up by the kernel).
  static Result<std::unique_ptr<UringQueue>> Create(unsigned entries);

  ~UringQueue();

  UringQueue(const UringQueue&) = delete;
  UringQueue& operator=(const UringQueue&) = delete;

  /// Queues one pwrite-shaped SQE. Returns false when the SQ is full (the
  /// caller should SubmitAndWait first). `buf` must stay alive until the
  /// matching SubmitAndWait returns.
  bool PushWrite(int fd, const void* buf, unsigned len, uint64_t offset);

  /// Queues an fdatasync-shaped SQE.
  bool PushFsync(int fd);

  /// Submits everything pushed since the last call and blocks until all of
  /// it completes. Any failed or short completion fails the whole batch —
  /// the caller retries through its synchronous fallback (log writes are
  /// offset-addressed, so re-writing is idempotent).
  Status SubmitAndWait();

 private:
  struct Impl;
  explicit UringQueue(Impl* impl) : impl_(impl) {}
  Impl* impl_;
};

}  // namespace skeena

#endif  // SKEENA_LOG_URING_QUEUE_H_
