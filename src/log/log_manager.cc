#include "log/log_manager.h"

#include <algorithm>
#include <cstring>

namespace skeena {

namespace {
constexpr size_t kFrameHeaderSize = sizeof(uint32_t);
}  // namespace

LogManager::LogManager(std::unique_ptr<StorageDevice> device)
    : LogManager(std::move(device), Options()) {}

LogManager::LogManager(std::unique_ptr<StorageDevice> device, Options options)
    : device_(std::move(device)), options_(options) {
  // Resume after an existing log (recovery reopens devices in place).
  Lsn existing = device_->Size();
  next_lsn_.store(existing, std::memory_order_relaxed);
  durable_lsn_.store(existing, std::memory_order_relaxed);
  appended_lsn_ = existing;
  staging_start_lsn_ = existing;
  staging_.reserve(options_.flush_watermark * 2);
  flusher_ = std::thread([this] { FlusherLoop(); });
}

LogManager::~LogManager() {
  stop_.store(true, std::memory_order_release);
  flusher_.join();
  // Final drain so nothing staged is lost on clean shutdown.
  FlushLocked();
}

Lsn LogManager::Append(std::span<const uint8_t> record) {
  uint32_t len = static_cast<uint32_t>(record.size());
  Lsn lsn;
  bool was_empty;
  {
    std::lock_guard<std::mutex> guard(buf_mu_);
    was_empty = staging_.empty();
    staging_.insert(staging_.end(),
                    reinterpret_cast<const uint8_t*>(&len),
                    reinterpret_cast<const uint8_t*>(&len) + kFrameHeaderSize);
    staging_.insert(staging_.end(), record.begin(), record.end());
    lsn = staging_start_lsn_ + staging_.size();
    next_lsn_.store(lsn, std::memory_order_release);
  }
  // Wake the flusher only on the empty -> non-empty transition: idle-system
  // commit latency collapses to one flush, while a busy flusher keeps
  // batching (group commit) without per-append wakeups.
  if (was_empty) work_cv_.notify_one();
  return lsn;
}

Status LogManager::FlushLocked() {
  std::lock_guard<std::mutex> flush_guard(flush_mu_);
  std::vector<uint8_t> batch;
  {
    std::lock_guard<std::mutex> guard(buf_mu_);
    if (staging_.empty() && appended_lsn_ == durable_lsn_.load()) {
      return Status::OK();
    }
    batch.swap(staging_);
    staging_start_lsn_ += batch.size();
  }
  if (!batch.empty()) {
    uint64_t offset = 0;
    Status s = device_->Append(batch, &offset);
    if (!s.ok()) {
      // Failed appends must not lose records: put the batch back in front
      // of anything staged meanwhile and rewind the staging origin.
      std::lock_guard<std::mutex> guard(buf_mu_);
      staging_start_lsn_ -= batch.size();
      batch.insert(batch.end(), staging_.begin(), staging_.end());
      staging_.swap(batch);
      return s;
    }
    appended_lsn_ += batch.size();
  }
  if (options_.sync_on_flush) {
    // A failed sync leaves the bytes appended but not durable; the next
    // flush retries the sync even with nothing newly staged.
    SKEENA_RETURN_NOT_OK(device_->Sync());
  }
  flush_batches_.fetch_add(1, std::memory_order_relaxed);
  durable_lsn_.store(appended_lsn_, std::memory_order_release);
  // Publish the advance: bump the eventcount, then one batched unpark for
  // however many waiters parked — and no syscall at all when none did.
  durable_seq_.fetch_add(1, std::memory_order_seq_cst);
  if (durable_waiters_.load(std::memory_order_seq_cst) != 0) {
    ParkingLot::WakeAll(durable_seq_);
  }
  return Status::OK();
}

Status LogManager::Flush() { return FlushLocked(); }

void LogManager::WaitDurable(Lsn lsn) {
  if (DurableLsn() >= lsn) return;
  if (SpinUntil([&] { return DurableLsn() >= lsn; })) return;
  while (true) {
    // Futex protocol: read the sequence, recheck the predicate, park only
    // while the sequence is unchanged. A flusher that advances durability
    // between the recheck and the park bumps the word first, so the park
    // returns immediately instead of missing the wake.
    uint32_t seq = durable_seq_.load(std::memory_order_acquire);
    if (DurableLsn() >= lsn) return;
    durable_waiters_.fetch_add(1, std::memory_order_seq_cst);
    if (DurableLsn() < lsn) {
      ParkingLot::Park(durable_seq_, seq);
    }
    durable_waiters_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void LogManager::FlusherLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    bool should_flush = false;
    {
      std::unique_lock<std::mutex> guard(buf_mu_);
      // Appends signal the condition variable, so the timed wait is only a
      // backstop; waiting longer than flush_interval_us while idle costs
      // nothing and keeps idle engines off the CPU.
      uint64_t idle_us = std::max<uint64_t>(options_.flush_interval_us, 5000);
      work_cv_.wait_for(guard, std::chrono::microseconds(idle_us), [&] {
        return (options_.auto_flush && !staging_.empty()) ||
               stop_.load(std::memory_order_acquire);
      });
      should_flush = options_.auto_flush && !staging_.empty();
    }
    if (should_flush) FlushLocked();
  }
}

bool LogReader::Next(std::string* record) {
  uint32_t len = 0;
  uint64_t size = device_->Size();
  if (offset_ + kFrameHeaderSize > size) return false;
  uint8_t hdr[kFrameHeaderSize];
  if (!device_->ReadAt(offset_, std::span<uint8_t>(hdr, kFrameHeaderSize))
           .ok()) {
    return false;
  }
  std::memcpy(&len, hdr, kFrameHeaderSize);
  if (offset_ + kFrameHeaderSize + len > size) return false;  // torn tail
  record->resize(len);
  if (len > 0) {
    if (!device_
             ->ReadAt(offset_ + kFrameHeaderSize,
                      std::span<uint8_t>(
                          reinterpret_cast<uint8_t*>(record->data()), len))
             .ok()) {
      return false;
    }
  }
  offset_ += kFrameHeaderSize + len;
  return true;
}

}  // namespace skeena
