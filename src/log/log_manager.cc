#include "log/log_manager.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>

namespace skeena {

namespace {

constexpr size_t kMinCapacity = 64 * 1024;
constexpr size_t kMinBlock = 4 * 1024;
/// Upper bound on a single payload accepted by the reader; anything larger
/// in a length header is garbage (the ring caps real appends far below it).
constexpr uint32_t kMaxRecordBytes = 1u << 30;

uint64_t RoundUpPow2(uint64_t v) {
  uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void StoreMax(std::atomic<uint64_t>& target, uint64_t v) {
  uint64_t cur = target.load(std::memory_order_relaxed);
  while (cur < v &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

uint32_t LogFrameCheck(std::span<const uint8_t> payload) {
  // FNV-1a over the payload, seeded with a mix of the length so a frame
  // whose payload is a prefix of another's cannot share its check.
  uint32_t h =
      2166136261u ^ (static_cast<uint32_t>(payload.size()) * 2654435761u);
  for (uint8_t b : payload) {
    h ^= b;
    h *= 16777619u;
  }
  return h;
}

LogManager::LogManager(std::unique_ptr<StorageDevice> device)
    : LogManager(std::move(device), Options()) {}

LogManager::LogManager(std::unique_ptr<StorageDevice> device, Options options)
    : device_(std::move(device)), options_(options) {
  capacity_ =
      RoundUpPow2(std::max<uint64_t>(options_.buffer_bytes, kMinCapacity));
  block_bytes_ = RoundUpPow2(
      std::clamp<uint64_t>(options_.block_bytes, kMinBlock, capacity_ / 2));
  n_blocks_ = capacity_ / block_bytes_;
  max_append_ = capacity_ - block_bytes_;
  ring_ = std::make_unique<uint8_t[]>(capacity_);
  released_ = std::make_unique<BlockCount[]>(n_blocks_);
  window_us_.store(options_.flush_interval_us, std::memory_order_relaxed);

  const Lsn tail = RecoverTail();
  reserved_.store(tail, std::memory_order_relaxed);
  flushed_.store(tail, std::memory_order_relaxed);
  durable_lsn_.store(tail, std::memory_order_relaxed);

  flusher_ = std::thread([this] { FlusherLoop(); });
}

LogManager::~LogManager() {
  stop_.store(true, std::memory_order_release);
  {
    MutexLock guard(flusher_mu_);
    flusher_cv_.NotifyAll();
  }
  if (flusher_.joinable()) flusher_.join();
  // Final drain so nothing staged is lost on clean shutdown. A device that
  // is still failing keeps its bytes in the ring, which dies with us — the
  // same contract the old staging vector had.
  Flush();
}

Lsn LogManager::RecoverTail() {
  const uint64_t size = device_->Size();
  if (size == 0) return 0;
  LogReader reader(device_.get());
  std::string record;
  while (reader.Next(&record)) {
  }
  const Lsn end = reader.offset();
  if (end < size) {
    // Torn or garbage tail from a crash mid-flush: cut it off so resumed
    // appends land at `end` on a clean device. A device that cannot
    // truncate (a test fake) is still correct: the flusher writes by
    // explicit offset, so the stale bytes are overwritten in place.
    device_->Truncate(end);
  }
  return end;
}

void LogManager::CopyIntoRing(Lsn lsn, const uint8_t* src, size_t n) {
  const uint64_t off = lsn & (capacity_ - 1);
  const size_t first = std::min<uint64_t>(n, capacity_ - off);
  std::memcpy(ring_.get() + off, src, first);
  if (first < n) std::memcpy(ring_.get(), src + first, n - first);
}

void LogManager::WaitForRingSpace(Lsn end) {
  // The claimed range may overwrite ring bytes only after every byte that
  // previously lived there is on the device. The bound is block-aligned so
  // each ring block's release count covers exactly one reservation window
  // at a time (no wrap mixing).
  auto have_space = [&] {
    const Lsn f = flushed_.load(std::memory_order_acquire);
    return end <= BlockFloor(f) + capacity_;
  };
  space_waits_.Add(1);
  while (true) {
    if (SpinUntil(have_space)) return;
    const uint32_t seq = space_seq_.load(std::memory_order_acquire);
    if (have_space()) return;
    space_waiters_.fetch_add(1, std::memory_order_seq_cst);
    if (!have_space()) {
      ParkingLot::Park(space_seq_, seq);
    }
    space_waiters_.fetch_sub(1, std::memory_order_relaxed);
  }
}

Lsn LogManager::Append(std::span<const uint8_t> record) {
  assert(!record.empty() && "empty log records are not appendable");
  const uint64_t total = kLogFrameHeaderSize + record.size();
  assert(total <= max_append_ && "record exceeds the reservation ring");

  // 1. Claim [start, end) with a single fetch_add — the only cross-thread
  //    ordering point on the fast path.
  const Lsn start = reserved_.fetch_add(total, std::memory_order_relaxed);
  const Lsn end = start + total;
  const Lsn flushed_before = flushed_.load(std::memory_order_acquire);
  if (end > BlockFloor(flushed_before) + capacity_) {
    WaitForRingSpace(end);
  }

  // 2. Copy the frame into the claimed ring bytes.
  uint8_t header[kLogFrameHeaderSize];
  const uint32_t len = static_cast<uint32_t>(record.size());
  const uint32_t check = LogFrameCheck(record);
  std::memcpy(header, &len, sizeof(len));
  std::memcpy(header + sizeof(len), &check, sizeof(check));
  CopyIntoRing(start, header, kLogFrameHeaderSize);
  CopyIntoRing(start + kLogFrameHeaderSize, record.data(), record.size());

  // 3. Publish: bump the release count of every block the frame touches.
  //    The release order pairs with the flusher's acquire read and carries
  //    the copied bytes with it.
  Lsn pos = start;
  while (pos < end) {
    const Lsn span_end = std::min(end, BlockFloor(pos) + block_bytes_);
    released_[BlockIndex(pos)].released.fetch_add(span_end - pos,
                                                  std::memory_order_release);
    pos = span_end;
  }

  appends_.Add(1);
  append_bytes_.Add(total);

  // Wake the flusher only on the empty -> non-empty edge and the watermark
  // crossing; every other append in a batch stays mutex- and syscall-free.
  if (options_.auto_flush) {
    const uint64_t staged_before = start - flushed_before;
    const uint64_t staged_after = end - flushed_before;
    if (staged_before == 0 ||
        (staged_before < options_.flush_watermark &&
         staged_after >= options_.flush_watermark)) {
      MutexLock guard(flusher_mu_);
      flusher_cv_.NotifyOne();
    }
  }
  return end;
}

void LogManager::SetDurableObserver(std::function<void(Lsn)> observer) {
  MutexLock guard(flush_mu_);
  durable_observer_ = std::move(observer);
}

Status LogManager::FlushPass() {
  MutexLock guard(flush_mu_);
  const Lsn from = flushed_.load(std::memory_order_relaxed);
  staged_at_flush_total_.fetch_add(
      reserved_.load(std::memory_order_acquire) - from,
      std::memory_order_relaxed);

  // Find the completed prefix. Per block: read its release count *before*
  // the reservation word. The count only reaches the block's reserved span
  // via release-adds that happen-after the corresponding reservations, so
  // every byte it accounts for lies inside the R read next — `count ==
  // span` therefore proves all of [p, min(block_end, R)) is fully copied,
  // and the acquire on the count makes those copies visible here.
  //
  // The walk is capped at one ring lap: at `BlockFloor(from) + capacity`
  // the next block index wraps onto the block the walk started in, whose
  // count still holds THIS lap's releases (they are only retired after the
  // write below). Without the cap a completely full, fully released ring
  // would read that stale count as the next lap's and ship bytes that
  // space-parked appenders have claimed but not yet copied. The cap loses
  // nothing: flushed_ stays `from` for the whole pass, so no appender may
  // copy at or beyond the cap until a later pass.
  const Lsn lap_end = BlockFloor(from) + capacity_;
  Lsn prefix = from;
  while (prefix < lap_end) {
    const uint64_t avail =
        released_[BlockIndex(prefix)].released.load(std::memory_order_acquire);
    const Lsn reserved = reserved_.load(std::memory_order_acquire);
    if (reserved <= prefix) break;
    const Lsn block_end = BlockFloor(prefix) + block_bytes_;
    const Lsn span_end = std::min(block_end, reserved);
    if (avail < span_end - prefix) break;  // a copy in this block is in flight
    prefix = span_end;
    if (span_end < block_end) break;  // caught up with the reservations
  }

  if (prefix > from) {
    const uint64_t off = from & (capacity_ - 1);
    const uint64_t len = prefix - from;
    const uint64_t first = std::min<uint64_t>(len, capacity_ - off);
    // Write by explicit offset so the retry after a failed flush is
    // idempotent: no duplicate bytes, durability simply trails.
    SKEENA_RETURN_NOT_OK(
        device_->WriteAt(from, std::span(ring_.get() + off, first)));
    if (first < len) {
      SKEENA_RETURN_NOT_OK(
          device_->WriteAt(from + first, std::span(ring_.get(), len - first)));
    }

    // Consume: retire the shipped bytes from their block counts *before*
    // publishing flushed_, so a recycled block starts its next window at
    // zero. Appenders only overwrite these ring bytes after acquiring the
    // new flushed_, which orders our reads before their writes.
    Lsn pos = from;
    while (pos < prefix) {
      const Lsn span_end = std::min(prefix, BlockFloor(pos) + block_bytes_);
      released_[BlockIndex(pos)].released.fetch_sub(span_end - pos,
                                                    std::memory_order_relaxed);
      pos = span_end;
    }
    flushed_.store(prefix, std::memory_order_release);
    flushed_bytes_.fetch_add(len, std::memory_order_relaxed);
    StoreMax(max_batch_bytes_, len);

    // One eventcount bump + at most one batched unpark for ring-space
    // waiters, mirroring the durable protocol below.
    space_seq_.fetch_add(1, std::memory_order_seq_cst);
    if (space_waiters_.load(std::memory_order_seq_cst) > 0) {
      ParkingLot::WakeAll(space_seq_);
    }
  }

  // Advance durability to everything shipped — including bytes written by
  // an earlier pass whose sync failed (retry path: nothing newly staged,
  // but durable_lsn_ still trails flushed_).
  const Lsn shipped = flushed_.load(std::memory_order_relaxed);
  if (durable_lsn_.load(std::memory_order_relaxed) < shipped) {
    if (options_.sync_on_flush) {
      SKEENA_RETURN_NOT_OK(device_->Sync());
    }
    durable_lsn_.store(shipped, std::memory_order_release);

    const uint64_t now = SteadyNowNs();
    if (last_flush_ns_ != 0) {
      flush_gap_ns_total_.fetch_add(now - last_flush_ns_,
                                    std::memory_order_relaxed);
    }
    last_flush_ns_ = now;
    flushes_.fetch_add(1, std::memory_order_relaxed);

    // Publish the advance: bump the eventcount, then one batched unpark
    // for however many waiters parked — no syscall at all when none did.
    durable_seq_.fetch_add(1, std::memory_order_seq_cst);
    if (durable_waiters_.load(std::memory_order_seq_cst) > 0) {
      ParkingLot::WakeAll(durable_seq_);
    }

    if (durable_observer_) durable_observer_(shipped);
  }
  return Status::OK();
}

Status LogManager::Flush() {
  const Lsn target = reserved_.load(std::memory_order_acquire);
  while (durable_lsn_.load(std::memory_order_acquire) < target) {
    SKEENA_RETURN_NOT_OK(FlushPass());
    // Durability still trailing the target means an appender that reserved
    // before our snapshot is mid-copy; it publishes in bounded time.
    if (durable_lsn_.load(std::memory_order_acquire) < target) {
      CpuRelax();
    }
  }
  return Status::OK();
}

void LogManager::WaitDurable(Lsn lsn) {
  if (DurableLsn() >= lsn) return;
  if (SpinUntil([&] { return DurableLsn() >= lsn; })) return;
  while (true) {
    // Futex protocol: read the sequence, recheck the predicate, park only
    // while the sequence is unchanged. A flusher that advances durability
    // between the recheck and the park bumps the word first, so the park
    // returns immediately instead of missing the wake.
    const uint32_t seq = durable_seq_.load(std::memory_order_acquire);
    if (DurableLsn() >= lsn) return;
    durable_waiters_.fetch_add(1, std::memory_order_seq_cst);
    if (DurableLsn() < lsn) {
      ParkingLot::Park(durable_seq_, seq);
    }
    durable_waiters_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void LogManager::FlusherLoop() {
  uint64_t window = options_.flush_interval_us;
  while (true) {
    // Idle phase: sleep until bytes arrive (or stop). The timed backstop
    // bounds shutdown latency and collapses the adaptive window when the
    // log goes quiet.
    {
      MutexLock lock(flusher_mu_);
      const bool woke =
          flusher_cv_.WaitFor(flusher_mu_, std::chrono::milliseconds(5), [&] {
            return stop_.load(std::memory_order_acquire) ||
                   (options_.auto_flush && HasStaged());
          });
      if (!woke) {
        if (options_.adaptive_flush && window != options_.flush_interval_us) {
          window = options_.flush_interval_us;
          window_shrinks_.fetch_add(1, std::memory_order_relaxed);
          window_us_.store(window, std::memory_order_relaxed);
        }
        continue;
      }
    }
    if (stop_.load(std::memory_order_acquire)) return;

    // Batch phase: let the group-commit window fill, leaving early if the
    // watermark trips.
    {
      MutexLock lock(flusher_mu_);
      flusher_cv_.WaitFor(flusher_mu_, std::chrono::microseconds(window), [&] {
        return stop_.load(std::memory_order_acquire) ||
               StagedBytes() >= options_.flush_watermark;
      });
    }
    if (stop_.load(std::memory_order_acquire)) return;

    FlushPass();  // device errors: bytes stay staged and are retried

    if (options_.adaptive_flush) {
      // Bytes already waiting again means arrivals outpace the window:
      // widen it toward the latency budget so each sync amortizes over a
      // bigger batch. An empty log after the flush means the burst passed:
      // collapse so the next stray commit isn't held for the long window.
      if (HasStaged() && window < options_.max_flush_interval_us) {
        window = std::min(window * 2, options_.max_flush_interval_us);
        window_grows_.fetch_add(1, std::memory_order_relaxed);
        window_us_.store(window, std::memory_order_relaxed);
      } else if (!HasStaged() && window != options_.flush_interval_us) {
        window = options_.flush_interval_us;
        window_shrinks_.fetch_add(1, std::memory_order_relaxed);
        window_us_.store(window, std::memory_order_relaxed);
      }
    }
  }
}

LogManager::Stats LogManager::stats() const {
  Stats s;
  s.appends = appends_.Read();
  s.append_bytes = append_bytes_.Read();
  s.flushes = flushes_.load(std::memory_order_relaxed);
  s.flushed_bytes = flushed_bytes_.load(std::memory_order_relaxed);
  s.max_batch_bytes = max_batch_bytes_.load(std::memory_order_relaxed);
  s.space_waits = space_waits_.Read();
  s.window_us = window_us_.load(std::memory_order_relaxed);
  s.window_grows = window_grows_.load(std::memory_order_relaxed);
  s.window_shrinks = window_shrinks_.load(std::memory_order_relaxed);
  s.flush_gap_ns_total = flush_gap_ns_total_.load(std::memory_order_relaxed);
  s.staged_at_flush_total =
      staged_at_flush_total_.load(std::memory_order_relaxed);
  return s;
}

bool LogReader::Next(std::string* record) {
  const uint64_t size = device_->Size();
  if (offset_ + kLogFrameHeaderSize > size) return false;
  uint8_t header[kLogFrameHeaderSize];
  if (!device_->ReadAt(offset_, std::span<uint8_t>(header, sizeof(header)))
           .ok()) {
    return false;
  }
  uint32_t len = 0;
  uint32_t check = 0;
  std::memcpy(&len, header, sizeof(len));
  std::memcpy(&check, header + sizeof(len), sizeof(check));
  // len == 0: the zero-filled unwritten tail of a preallocated segment.
  // Oversized len: garbage (a torn header). Both read as end-of-log.
  if (len == 0 || len > kMaxRecordBytes) return false;
  if (offset_ + kLogFrameHeaderSize + len > size) return false;  // torn tail
  record->resize(len);
  if (!device_
           ->ReadAt(offset_ + kLogFrameHeaderSize,
                    std::span<uint8_t>(
                        reinterpret_cast<uint8_t*>(record->data()), len))
           .ok()) {
    return false;
  }
  if (LogFrameCheck(std::span<const uint8_t>(
          reinterpret_cast<const uint8_t*>(record->data()), len)) != check) {
    return false;  // torn or stale frame
  }
  offset_ += kLogFrameHeaderSize + len;
  return true;
}

}  // namespace skeena
