#include "log/segmented_device.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>

namespace skeena {
namespace {

constexpr uint64_t kDirectAlign = 4096;
constexpr char kSegmentPrefix[] = "wal.";
constexpr char kSegmentSuffix[] = ".seg";
constexpr unsigned kUringEntries = 64;

uint64_t AlignDown(uint64_t v, uint64_t a) { return v & ~(a - 1); }
uint64_t AlignUp(uint64_t v, uint64_t a) { return (v + a - 1) & ~(a - 1); }

ssize_t PreadFully(int fd, uint8_t* buf, size_t count, off_t offset) {
  size_t done = 0;
  while (done < count) {
    ssize_t n = ::pread(fd, buf + done, count - done,
                        offset + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return n;
    }
    if (n == 0) break;  // past EOF: caller decides
    done += static_cast<size_t>(n);
  }
  return static_cast<ssize_t>(done);
}

/// Parses "wal.<8 digits>.seg" into its index; returns false otherwise.
bool ParseSegmentName(const char* name, size_t* index) {
  const size_t prefix_len = sizeof(kSegmentPrefix) - 1;
  const size_t suffix_len = sizeof(kSegmentSuffix) - 1;
  const size_t name_len = std::strlen(name);
  if (name_len != prefix_len + 8 + suffix_len) return false;
  if (std::strncmp(name, kSegmentPrefix, prefix_len) != 0) return false;
  if (std::strcmp(name + prefix_len + 8, kSegmentSuffix) != 0) return false;
  size_t value = 0;
  for (size_t i = 0; i < 8; ++i) {
    const char c = name[prefix_len + i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<size_t>(c - '0');
  }
  *index = value;
  return true;
}

}  // namespace

SegmentedLogDevice::SegmentedLogDevice(std::string dir, Options options)
    : dir_(std::move(dir)),
      options_(options),
      segment_bytes_(AlignUp(std::max<uint64_t>(options.segment_bytes,
                                                2 * kDirectAlign),
                             kDirectAlign)) {}

Result<std::unique_ptr<SegmentedLogDevice>> SegmentedLogDevice::Open(
    const std::string& dir) {
  return Open(dir, Options());
}

Result<std::unique_ptr<SegmentedLogDevice>> SegmentedLogDevice::Open(
    const std::string& dir, Options options) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IOError("mkdir failed: " + dir);
  }
  auto device = std::unique_ptr<SegmentedLogDevice>(
      new SegmentedLogDevice(dir, options));
  device->dir_fd_ = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (device->dir_fd_ < 0) {
    return Status::IOError("open dir failed: " + dir);
  }

  // Collect existing segment indices; the set in use is the contiguous run
  // from 0. Anything past a gap is an orphan of an interrupted truncate —
  // its bytes are already logically discarded, so remove it.
  std::set<size_t> present;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Status::IOError("opendir failed: " + dir);
  }
  while (dirent* entry = ::readdir(d)) {
    size_t index = 0;
    if (ParseSegmentName(entry->d_name, &index)) present.insert(index);
  }
  ::closedir(d);
  size_t count = 0;
  while (present.count(count) != 0) ++count;
  for (size_t index : present) {
    if (index >= count) {
      ::unlink(device->SegmentPath(index).c_str());
    }
  }

  {
    MutexLock guard(device->mu_);
    // Opening re-preallocates each segment to its full size, so a crash
    // mid-rotation (segment file created but not fully sized) heals here.
    SKEENA_RETURN_NOT_OK(
        device->EnsureSegmentsLocked(std::max<size_t>(count, 1)));
    // Physical upper bound; the log's tail scan + Truncate refines it.
    device->logical_size_ =
        static_cast<uint64_t>(count) * device->segment_bytes_;
  }

  if (options.use_io_uring && UringQueue::Supported()) {
    auto ring = UringQueue::Create(kUringEntries);
    if (ring.ok()) device->uring_ = std::move(ring).value();
  }
  return device;
}

SegmentedLogDevice::~SegmentedLogDevice() {
  for (Segment& seg : segments_) {
    if (seg.write_fd >= 0) ::close(seg.write_fd);
    if (seg.read_fd >= 0 && seg.read_fd != seg.write_fd) ::close(seg.read_fd);
  }
  if (dir_fd_ >= 0) ::close(dir_fd_);
  std::free(direct_buf_);
}

std::string SegmentedLogDevice::SegmentPath(size_t index) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%s%08zu%s", kSegmentPrefix, index,
                kSegmentSuffix);
  return dir_ + "/" + name;
}

Status SegmentedLogDevice::OpenSegmentLocked(size_t index, bool create) {
  const std::string path = SegmentPath(index);
  int flags = O_RDWR | (create ? O_CREAT : 0);
  int write_fd = -1;
  bool direct = false;
  if (options_.use_direct_io) {
    write_fd = ::open(path.c_str(), flags | O_DIRECT, 0644);
    direct = write_fd >= 0;
  }
  if (write_fd < 0) {
    // tmpfs (and some filesystems) reject O_DIRECT with EINVAL; buffered
    // fds keep the same correctness, just through the page cache.
    write_fd = ::open(path.c_str(), flags, 0644);
  }
  if (write_fd < 0) {
    return Status::IOError("open failed: " + path);
  }
  // Preallocate to the fixed size (idempotent; also heals a segment whose
  // creating process crashed before sizing it). The extended range reads
  // as zeros == end-of-log for the frame format.
  if (::ftruncate(write_fd, static_cast<off_t>(segment_bytes_)) != 0) {
    ::close(write_fd);
    return Status::IOError("ftruncate failed: " + path);
  }
  int read_fd = ::open(path.c_str(), O_RDONLY);
  if (read_fd < 0) {
    ::close(write_fd);
    return Status::IOError("open (read) failed: " + path);
  }
  if (index >= segments_.size()) segments_.resize(index + 1);
  segments_[index].write_fd = write_fd;
  segments_[index].read_fd = read_fd;
  segments_[index].dirty = true;  // preallocation metadata wants a sync
  if (direct) direct_effective_ = true;
  if (create) {
    // The new dirent must survive a crash for the segment to be found on
    // reopen; recovery tolerates a missing *tail* segment (it just sees a
    // shorter log), so a lost dir sync degrades, not corrupts.
    if (dir_fd_ >= 0) ::fsync(dir_fd_);
  }
  return Status::OK();
}

Status SegmentedLogDevice::EnsureSegmentsLocked(size_t count) {
  for (size_t i = 0; i < count; ++i) {
    if (i < segments_.size() && segments_[i].write_fd >= 0) continue;
    SKEENA_RETURN_NOT_OK(OpenSegmentLocked(i, /*create=*/true));
  }
  return Status::OK();
}

Status SegmentedLogDevice::PwritePieceLocked(Segment& seg, uint64_t file_off,
                                             std::span<const uint8_t> data) {
  const uint8_t* p = data.data();
  size_t remaining = data.size();
  off_t at = static_cast<off_t>(file_off);
  while (remaining > 0) {
    ssize_t n = ::pwrite(seg.write_fd, p, remaining, at);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pwrite failed: " + dir_);
    }
    if (n == 0) return Status::IOError("pwrite wrote nothing: " + dir_);
    p += n;
    at += n;
    remaining -= static_cast<size_t>(n);
  }
  seg.dirty = true;
  return Status::OK();
}

Status SegmentedLogDevice::DirectWriteLocked(Segment& seg, uint64_t file_off,
                                             std::span<const uint8_t> data) {
  // O_DIRECT requires 4 KiB-aligned offset, length and buffer. Stage the
  // write in the aligned scratch; the head block (the tail block of the
  // previous batch) and the final partial block are read back from the
  // segment and rewritten whole (tail-block rewrite).
  const uint64_t a_off = AlignDown(file_off, kDirectAlign);
  const uint64_t a_end =
      std::min(AlignUp(file_off + data.size(), kDirectAlign), segment_bytes_);
  const size_t a_len = static_cast<size_t>(a_end - a_off);
  if (a_len > direct_buf_len_) {
    std::free(direct_buf_);
    direct_buf_len_ = AlignUp(a_len, kDirectAlign);
    direct_buf_ = static_cast<uint8_t*>(
        std::aligned_alloc(kDirectAlign, direct_buf_len_));
    if (direct_buf_ == nullptr) {
      direct_buf_len_ = 0;
      return Status::IOError("aligned_alloc failed");
    }
  }
  const size_t head = static_cast<size_t>(file_off - a_off);
  const size_t tail_start = head + data.size();
  if (head > 0) {
    // Only the head block needs its old bytes back; everything after the
    // payload inside the last block is past the log tail (zeros on a
    // preallocated segment), but re-reading the whole remainder is one
    // pread and unconditionally correct.
    if (PreadFully(seg.read_fd, direct_buf_, head,
                   static_cast<off_t>(a_off)) !=
        static_cast<ssize_t>(head)) {
      return Status::IOError("tail-block read failed: " + dir_);
    }
  }
  if (tail_start < a_len) {
    if (PreadFully(seg.read_fd, direct_buf_ + tail_start,
                   a_len - tail_start,
                   static_cast<off_t>(a_off + tail_start)) !=
        static_cast<ssize_t>(a_len - tail_start)) {
      return Status::IOError("tail-block read failed: " + dir_);
    }
  }
  std::memcpy(direct_buf_ + head, data.data(), data.size());

  const uint8_t* p = direct_buf_;
  size_t remaining = a_len;
  off_t at = static_cast<off_t>(a_off);
  while (remaining > 0) {
    ssize_t n = ::pwrite(seg.write_fd, p, remaining, at);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("O_DIRECT pwrite failed: " + dir_);
    }
    if (n == 0) return Status::IOError("pwrite wrote nothing: " + dir_);
    p += n;
    at += n;
    remaining -= static_cast<size_t>(n);
  }
  seg.dirty = true;
  return Status::OK();
}

Status SegmentedLogDevice::WritePiecesLocked(uint64_t offset,
                                             std::span<const uint8_t> data) {
  const uint64_t end = offset + data.size();
  const size_t last_seg = static_cast<size_t>((end - 1) / segment_bytes_);
  SKEENA_RETURN_NOT_OK(EnsureSegmentsLocked(last_seg + 1));

  struct Piece {
    size_t seg;
    uint64_t file_off;
    const uint8_t* src;
    size_t len;
  };
  Piece pieces[2 + 1];  // a flush batch spans at most a few segments
  size_t n_pieces = 0;
  std::vector<Piece> overflow;
  uint64_t at = offset;
  const uint8_t* src = data.data();
  while (at < end) {
    const size_t seg = static_cast<size_t>(at / segment_bytes_);
    const uint64_t file_off = at % segment_bytes_;
    const uint64_t len =
        std::min<uint64_t>(segment_bytes_ - file_off, end - at);
    Piece piece{seg, file_off, src, static_cast<size_t>(len)};
    if (n_pieces < std::size(pieces)) {
      pieces[n_pieces++] = piece;
    } else {
      overflow.push_back(piece);
    }
    at += len;
    src += len;
  }
  auto each_piece = [&](auto&& fn) -> Status {
    for (size_t i = 0; i < n_pieces; ++i) SKEENA_RETURN_NOT_OK(fn(pieces[i]));
    for (const Piece& piece : overflow) SKEENA_RETURN_NOT_OK(fn(piece));
    return Status::OK();
  };

  // io_uring path: queue every (non-O_DIRECT) piece and submit the batch
  // with one syscall. Any ring failure falls through to the synchronous
  // path below — offsets make the redo idempotent.
  if (uring_ != nullptr && !direct_effective_) {
    bool queued_all = true;
    Status st = each_piece([&](const Piece& piece) -> Status {
      Segment& seg = segments_[piece.seg];
      if (!uring_->PushWrite(seg.write_fd, piece.src,
                             static_cast<unsigned>(piece.len),
                             piece.file_off)) {
        queued_all = false;
      } else {
        seg.dirty = true;
      }
      return Status::OK();
    });
    (void)st;
    Status submit = uring_->SubmitAndWait();
    if (queued_all && submit.ok()) {
      bytes_written_ += data.size();
      if (end > logical_size_) logical_size_ = end;
      return Status::OK();
    }
  }

  SKEENA_RETURN_NOT_OK(each_piece([&](const Piece& piece) -> Status {
    Segment& seg = segments_[piece.seg];
    if (direct_effective_) {
      return DirectWriteLocked(seg, piece.file_off,
                               std::span(piece.src, piece.len));
    }
    return PwritePieceLocked(seg, piece.file_off,
                             std::span(piece.src, piece.len));
  }));
  bytes_written_ += data.size();
  if (end > logical_size_) logical_size_ = end;
  return Status::OK();
}

Status SegmentedLogDevice::Append(std::span<const uint8_t> data,
                                  uint64_t* offset) {
  {
    MutexLock guard(mu_);
    *offset = logical_size_;
    SKEENA_RETURN_NOT_OK(WritePiecesLocked(logical_size_, data));
  }
  SpinWaitNs(options_.latency.write_ns);
  return Status::OK();
}

Status SegmentedLogDevice::WriteAt(uint64_t offset,
                                   std::span<const uint8_t> data) {
  if (data.empty()) return Status::OK();
  {
    MutexLock guard(mu_);
    SKEENA_RETURN_NOT_OK(WritePiecesLocked(offset, data));
  }
  SpinWaitNs(options_.latency.write_ns);
  return Status::OK();
}

Status SegmentedLogDevice::ReadAt(uint64_t offset,
                                  std::span<uint8_t> out) const {
  {
    MutexLock guard(mu_);
    uint64_t at = offset;
    uint8_t* dst = out.data();
    const uint64_t end = offset + out.size();
    if (end > segments_.size() * segment_bytes_) {
      return Status::IOError("read past end of device");
    }
    while (at < end) {
      const size_t seg = static_cast<size_t>(at / segment_bytes_);
      const uint64_t file_off = at % segment_bytes_;
      const uint64_t len =
          std::min<uint64_t>(segment_bytes_ - file_off, end - at);
      if (PreadFully(segments_[seg].read_fd, dst, static_cast<size_t>(len),
                     static_cast<off_t>(file_off)) !=
          static_cast<ssize_t>(len)) {
        return Status::IOError("pread failed: " + dir_);
      }
      at += len;
      dst += len;
    }
    bytes_read_ += out.size();
  }
  SpinWaitNs(options_.latency.read_ns);
  return Status::OK();
}

Status SegmentedLogDevice::Sync() {
  {
    MutexLock guard(mu_);
    if (uring_ != nullptr) {
      bool queued_all = true;
      for (Segment& seg : segments_) {
        if (seg.dirty && !uring_->PushFsync(seg.write_fd)) queued_all = false;
      }
      if (queued_all && uring_->SubmitAndWait().ok()) {
        for (Segment& seg : segments_) seg.dirty = false;
        SpinWaitNs(options_.latency.sync_ns);
        return Status::OK();
      }
      // Ring hiccup: fall through and sync synchronously.
    }
    for (Segment& seg : segments_) {
      if (!seg.dirty) continue;
      if (::fdatasync(seg.write_fd) != 0) {
        return Status::IOError("fdatasync failed: " + dir_);
      }
      seg.dirty = false;
    }
  }
  SpinWaitNs(options_.latency.sync_ns);
  return Status::OK();
}

Status SegmentedLogDevice::Truncate(uint64_t size) {
  MutexLock guard(mu_);
  const size_t keep =
      std::max<size_t>(1, static_cast<size_t>((size + segment_bytes_ - 1) /
                                              segment_bytes_));
  for (size_t i = keep; i < segments_.size(); ++i) {
    Segment& seg = segments_[i];
    if (seg.write_fd >= 0) ::close(seg.write_fd);
    if (seg.read_fd >= 0) ::close(seg.read_fd);
    ::unlink(SegmentPath(i).c_str());
  }
  if (keep < segments_.size()) {
    segments_.resize(keep);
    if (dir_fd_ >= 0) ::fsync(dir_fd_);
  }
  // Re-zero the tail segment beyond `size`: shrink to the logical tail,
  // then re-extend to the fixed segment size. Without this, stale frames
  // beyond the new tail could read as valid after the log reuses the space.
  const uint64_t tail_valid =
      size == 0 ? 0
                : (size % segment_bytes_ == 0 ? segment_bytes_
                                              : size % segment_bytes_);
  Segment& tail = segments_[keep - 1];
  if (tail_valid < segment_bytes_) {
    const std::string path = SegmentPath(keep - 1);
    if (::ftruncate(tail.write_fd, static_cast<off_t>(tail_valid)) != 0 ||
        ::ftruncate(tail.write_fd, static_cast<off_t>(segment_bytes_)) != 0) {
      return Status::IOError("ftruncate failed: " + path);
    }
    tail.dirty = true;
  }
  logical_size_ = size;
  return Status::OK();
}

uint64_t SegmentedLogDevice::Size() const {
  MutexLock guard(mu_);
  return logical_size_;
}

uint64_t SegmentedLogDevice::segment_count() const {
  MutexLock guard(mu_);
  return segments_.size();
}

uint64_t SegmentedLogDevice::bytes_read() const {
  MutexLock guard(mu_);
  return bytes_read_;
}

uint64_t SegmentedLogDevice::bytes_written() const {
  MutexLock guard(mu_);
  return bytes_written_;
}

}  // namespace skeena
