#ifndef SKEENA_LOG_SEGMENTED_DEVICE_H_
#define SKEENA_LOG_SEGMENTED_DEVICE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "log/storage_device.h"
#include "log/uring_queue.h"

namespace skeena {

/// Log device backed by a directory of preallocated fixed-size segment
/// files (`wal.00000000.seg`, `wal.00000001.seg`, ...), in the ERMIA
/// sm-log shape. The device exposes one contiguous byte space: offset
/// `o` lives in segment `o / segment_bytes` at file offset
/// `o % segment_bytes`, so a record may split across a segment edge and
/// `LogReader` iterates straight through it.
///
/// Why segments beat one grow-forever file for the raw-speed path:
///  * appends never extend a file (no size metadata churn per flush, and
///    fdatasync stays a pure data sync);
///  * preallocation happens once per ~8 MiB off the hot path;
///  * old segments become unlinkable units for future log archiving.
///
/// The unwritten preallocated tail reads as zeros, which the log framing
/// treats as end-of-log; `Size()` after reopen is therefore the physical
/// bound (all preallocated bytes) and `LogManager`'s tail scan + Truncate
/// re-establishes the logical end.
///
/// Write backends, per flush batch, all offset-addressed and idempotent:
///  * pwrite (always available);
///  * io_uring when enabled and the kernel supports it — the batch's
///    segment pieces and the fdatasync submit as one ring batch with a
///    single syscall, falling back to pwrite on any ring error;
///  * optional O_DIRECT: writes go through a 4 KiB-aligned staging buffer;
///    a batch whose head is mid-block re-reads that tail block and
///    rewrites it whole (tail-block rewrite). Falls back to buffered fds
///    when the filesystem rejects O_DIRECT (tmpfs does).
class SegmentedLogDevice : public StorageDevice {
 public:
  struct Options {
    uint64_t segment_bytes = 8 * 1024 * 1024;  // rounded up to 4 KiB
    /// Batch writes + syncs through io_uring when built in and the kernel
    /// cooperates; silently falls back to pwrite otherwise.
    bool use_io_uring = false;
    /// Open segment write fds with O_DIRECT (4 KiB-aligned staging);
    /// silently falls back to buffered writes where unsupported.
    bool use_direct_io = false;
    DeviceLatency latency = DeviceLatency::Tmpfs();
  };

  /// Opens (creating if needed) the segment directory. Existing segments
  /// are picked up in index order; the set in use is the contiguous run
  /// from index 0 (a gap means later segments are orphans of an old
  /// truncate — they are removed).
  static Result<std::unique_ptr<SegmentedLogDevice>> Open(
      const std::string& dir);
  static Result<std::unique_ptr<SegmentedLogDevice>> Open(
      const std::string& dir, Options options);

  ~SegmentedLogDevice() override;

  Status Append(std::span<const uint8_t> data, uint64_t* offset) override;
  Status WriteAt(uint64_t offset, std::span<const uint8_t> data) override;
  Status ReadAt(uint64_t offset, std::span<uint8_t> out) const override;
  Status Sync() override;
  Status Truncate(uint64_t size) override;
  uint64_t Size() const override;
  uint64_t bytes_read() const override;
  uint64_t bytes_written() const override;

  const std::string& dir() const { return dir_; }
  uint64_t segment_bytes() const { return segment_bytes_; }
  uint64_t segment_count() const;
  /// Effective backends after runtime probing (for tests and bench labels).
  bool using_io_uring() const { return uring_ != nullptr; }
  bool using_direct_io() const { return direct_effective_; }

 private:
  struct Segment {
    int write_fd = -1;
    int read_fd = -1;
    bool dirty = false;  // written since the last Sync
  };

  SegmentedLogDevice(std::string dir, Options options);

  Status EnsureSegmentsLocked(size_t count) SKEENA_REQUIRES(mu_);
  Status OpenSegmentLocked(size_t index, bool create) SKEENA_REQUIRES(mu_);
  Status WritePiecesLocked(uint64_t offset, std::span<const uint8_t> data)
      SKEENA_REQUIRES(mu_);
  Status PwritePieceLocked(Segment& seg, uint64_t file_off,
                           std::span<const uint8_t> data) SKEENA_REQUIRES(mu_);
  Status DirectWriteLocked(Segment& seg, uint64_t file_off,
                           std::span<const uint8_t> data) SKEENA_REQUIRES(mu_);
  std::string SegmentPath(size_t index) const;

  const std::string dir_;
  Options options_;
  uint64_t segment_bytes_;

  mutable Mutex mu_;
  std::vector<Segment> segments_ SKEENA_GUARDED_BY(mu_);
  uint64_t logical_size_ SKEENA_GUARDED_BY(mu_) = 0;
  int dir_fd_ = -1;  // fsynced after segment create/unlink
  bool direct_effective_ = false;
  std::unique_ptr<UringQueue> uring_;
  // O_DIRECT staging: 4 KiB-aligned scratch, grown to the largest batch.
  uint8_t* direct_buf_ SKEENA_GUARDED_BY(mu_) = nullptr;
  size_t direct_buf_len_ SKEENA_GUARDED_BY(mu_) = 0;

  mutable uint64_t bytes_read_ SKEENA_GUARDED_BY(mu_) = 0;
  uint64_t bytes_written_ SKEENA_GUARDED_BY(mu_) = 0;
};

}  // namespace skeena

#endif  // SKEENA_LOG_SEGMENTED_DEVICE_H_
