#ifndef SKEENA_LOG_STORAGE_DEVICE_H_
#define SKEENA_LOG_STORAGE_DEVICE_H_

#include <sys/types.h>

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace skeena {

/// Latency model for a simulated device.
///
/// The paper stresses Skeena on tmpfs ("I/O as fast as memory") and on a real
/// SSD (Section 6.7). We reproduce both: `Tmpfs()` adds no delay, `Ssd()`
/// spin-waits for a configurable per-operation latency so a buffer-pool miss
/// or log flush costs what it would on the paper's 760 MB/s SSD.
struct DeviceLatency {
  uint64_t read_ns = 0;
  uint64_t write_ns = 0;
  uint64_t sync_ns = 0;

  static DeviceLatency Tmpfs() { return {}; }
  static DeviceLatency Ssd() {
    return {.read_ns = 80'000, .write_ns = 20'000, .sync_ns = 100'000};
  }
  /// Models the per-page cost of the real storage stack on tmpfs-backed
  /// files (syscall + page verification + LRU bookkeeping a production
  /// buffer pool pays on a miss) — our in-process miss path would otherwise
  /// be a bare memcpy. Used by the "storage-resident on tmpfs" experiments
  /// (paper Figures 7-13); see DESIGN.md substitutions.
  static DeviceLatency TmpfsStack() {
    return {.read_ns = 8'000, .write_ns = 8'000, .sync_ns = 0};
  }
};

/// Byte-addressable storage abstraction backing logs and table spaces.
/// Implementations must be thread-safe.
class StorageDevice {
 public:
  virtual ~StorageDevice() = default;

  /// Appends `data` at the end; returns the offset it was written at.
  virtual Status Append(std::span<const uint8_t> data, uint64_t* offset) = 0;

  /// Writes `data` at `offset`, extending the device if needed.
  virtual Status WriteAt(uint64_t offset, std::span<const uint8_t> data) = 0;

  /// Reads exactly `out.size()` bytes at `offset`.
  virtual Status ReadAt(uint64_t offset, std::span<uint8_t> out) const = 0;

  /// Makes all prior writes durable.
  virtual Status Sync() = 0;

  /// Shrinks the device to `size` bytes, discarding everything beyond.
  /// Used by log tail recovery to cut off a torn frame. Optional: devices
  /// that cannot truncate return kNotSupported, which callers must treat as
  /// "the stale bytes remain but will be overwritten in place".
  virtual Status Truncate(uint64_t size) {
    (void)size;
    return Status::NotSupported("truncate not supported");
  }

  virtual uint64_t Size() const = 0;

  /// Total bytes read / written (for experiment reporting).
  virtual uint64_t bytes_read() const = 0;
  virtual uint64_t bytes_written() const = 0;
};

/// In-memory device with optional injected latency. The default for tests
/// and benchmarks: deterministic, no filesystem dependence, still charges
/// the configured per-operation latency like a real device would.
class MemDevice : public StorageDevice {
 public:
  explicit MemDevice(DeviceLatency latency = DeviceLatency::Tmpfs());

  Status Append(std::span<const uint8_t> data, uint64_t* offset) override;
  Status WriteAt(uint64_t offset, std::span<const uint8_t> data) override;
  Status ReadAt(uint64_t offset, std::span<uint8_t> out) const override;
  Status Sync() override;
  Status Truncate(uint64_t size) override;
  uint64_t Size() const override;
  uint64_t bytes_read() const override;
  uint64_t bytes_written() const override;

 private:
  mutable Mutex mu_;
  std::vector<uint8_t> data_ SKEENA_GUARDED_BY(mu_);
  DeviceLatency latency_;
  mutable uint64_t bytes_read_ SKEENA_GUARDED_BY(mu_) = 0;
  uint64_t bytes_written_ SKEENA_GUARDED_BY(mu_) = 0;
};

/// File-backed device (pread/pwrite/fsync). Used by the durability examples
/// and the recovery tests to survive process restarts.
class FileDevice : public StorageDevice {
 public:
  /// Opens (creating if needed) the file at `path`.
  static Result<std::unique_ptr<FileDevice>> Open(
      const std::string& path, DeviceLatency latency = DeviceLatency::Tmpfs());

  ~FileDevice() override;

  Status Append(std::span<const uint8_t> data, uint64_t* offset) override;
  Status WriteAt(uint64_t offset, std::span<const uint8_t> data) override;
  Status ReadAt(uint64_t offset, std::span<uint8_t> out) const override;
  Status Sync() override;
  Status Truncate(uint64_t size) override;
  uint64_t Size() const override;
  uint64_t bytes_read() const override;
  uint64_t bytes_written() const override;

  const std::string& path() const { return path_; }

  /// Test hook: replaces the pwrite syscall for this device. The hook has
  /// the raw pwrite contract — it may write fewer bytes than asked (short
  /// write) or fail — letting tests exercise the full-write retry loop.
  using PwriteFn = ssize_t (*)(int fd, const void* buf, size_t count,
                               off_t offset);
  void SetPwriteHookForTest(PwriteFn fn) { pwrite_hook_ = fn; }

 private:
  FileDevice(int fd, std::string path, uint64_t size, DeviceLatency latency);

  /// Issues pwrite (or the test hook) until every byte of `data` is
  /// written: POSIX allows short writes (quota boundaries, signals, >2GiB
  /// chunks), and treating one as failure would wrongly fail the flush.
  Status PwriteFully(uint64_t offset, std::span<const uint8_t> data);

  mutable Mutex mu_;
  int fd_;
  std::string path_;
  uint64_t size_ SKEENA_GUARDED_BY(mu_);
  DeviceLatency latency_;
  PwriteFn pwrite_hook_ = nullptr;
  mutable uint64_t bytes_read_ SKEENA_GUARDED_BY(mu_) = 0;
  uint64_t bytes_written_ SKEENA_GUARDED_BY(mu_) = 0;
};

/// Busy-waits for `ns` nanoseconds to emulate device latency without the
/// scheduler noise of sleeping (sub-100us sleeps routinely overshoot 10x).
void SpinWaitNs(uint64_t ns);

}  // namespace skeena

#endif  // SKEENA_LOG_STORAGE_DEVICE_H_
