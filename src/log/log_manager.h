#ifndef SKEENA_LOG_LOG_MANAGER_H_
#define SKEENA_LOG_LOG_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/parking_lot.h"
#include "common/thread_annotations.h"
#include "common/sharded_counter.h"
#include "common/status.h"
#include "common/types.h"
#include "log/storage_device.h"

namespace skeena {

/// Frame header: [u32 payload length][u32 payload check]. The check lets
/// recovery distinguish a torn tail (partial frame, arbitrary bytes) from a
/// complete record, which matters once the log lives in preallocated
/// segments whose unwritten tail reads as zeros — a zero length is the
/// end-of-log sentinel, a bad check is a torn frame.
inline constexpr size_t kLogFrameHeaderSize = 2 * sizeof(uint32_t);

/// Per-frame payload check (FNV-1a seeded with the length). Not a
/// cryptographic digest: it only has to make a torn/stale tail byte pattern
/// vanishingly unlikely to parse as a valid frame.
uint32_t LogFrameCheck(std::span<const uint8_t> payload);

/// Append-only write-ahead log with group commit.
///
/// Workers append framed records into an in-memory reservation ring and
/// immediately continue — this is the foundation of the pipelined commit
/// protocol (paper Section 4.5, after Aether [34]): transactions never wait
/// for their own flush; a background flusher batches the completed prefix to
/// the device and advances `durable_lsn()`, which Skeena's committer daemon
/// parks on to decide when a cross-engine transaction's results may be
/// released to the client.
///
/// Append fast path (no mutex, no shared writes beyond three atomics):
///  1. one fetch_add on the reservation word claims [lsn-len, lsn);
///  2. the frame is memcpy'd into the ring at `lsn % capacity`;
///  3. completion publishes via a release fetch_add on the per-block
///     release count covering the claimed bytes.
/// The flusher walks blocks from the flushed prefix: a block whose release
/// count equals its reserved span is fully copied (release counts are read
/// *before* the reservation word, so a count can never appear complete on
/// the strength of bytes reserved later). Ring space is recycled once the
/// prefix is on the device; appenders that outrun the flusher spin-then-park
/// on a space eventcount (one fetch_add per flush, no syscall when nobody
/// waits).
///
/// LSNs are byte offsets: a record's LSN is the offset one past its last
/// byte, so `durable_lsn() >= lsn` means the record is fully persistent.
///
/// On construction the log scans the device's frames and truncates a torn
/// tail (a crash mid-flush must not leave garbage that a later append would
/// bury mid-log), resuming LSN allocation at the valid end.
class LogManager {
 public:
  struct Options {
    /// Minimum (and initial) group-commit window: the flusher batches at
    /// least this long before flushing, unless the watermark trips first.
    uint64_t flush_interval_us = 50;
    /// Adaptive ceiling: under sustained load the window grows toward this
    /// latency budget so each device sync amortizes over more commits; it
    /// collapses back to flush_interval_us when the log goes idle.
    uint64_t max_flush_interval_us = 1000;
    /// Grow/collapse the window between the two bounds above; when false
    /// the window is pinned at flush_interval_us (the pre-adaptive
    /// behaviour, used by latency-sensitive ablations).
    bool adaptive_flush = true;
    /// Flush as soon as this many staged bytes accumulate.
    size_t flush_watermark = 64 * 1024;
    /// Reservation ring capacity (rounded up to a power of two, min 64 KiB).
    /// With auto_flush off, the total un-flushed bytes must stay under
    /// capacity minus one block or Append parks forever.
    size_t buffer_bytes = 1 << 20;
    /// Completion-tracking granularity (rounded to a power of two dividing
    /// the capacity). Smaller blocks let the flusher ship a prefix sooner
    /// when a straggling appender is still copying; larger blocks cost
    /// fewer release-count updates per append.
    size_t block_bytes = 32 * 1024;
    /// Issue a device Sync() after each flush batch.
    bool sync_on_flush = true;
    /// When false the background flusher never runs; only explicit Flush()
    /// advances durability (tests of durability gating).
    bool auto_flush = true;
  };

  /// Raw-speed counters (relaxed increments; folded on read). Ratios like
  /// bytes/flush or the inter-flush gap are left to the caller.
  struct Stats {
    uint64_t appends = 0;
    uint64_t append_bytes = 0;  // framed bytes (payload + headers)
    uint64_t flushes = 0;
    uint64_t flushed_bytes = 0;
    uint64_t max_batch_bytes = 0;
    /// Appends that waited for ring space (flusher behind).
    uint64_t space_waits = 0;
    /// Adaptive group-commit window: current value and transition counts.
    uint64_t window_us = 0;
    uint64_t window_grows = 0;
    uint64_t window_shrinks = 0;
    /// Sum of steady-clock gaps between consecutive flush batches.
    uint64_t flush_gap_ns_total = 0;
    /// Sum over flushes of the staged depth (reserved - flushed) when the
    /// flush began: the in-flight bytes each batch found waiting.
    uint64_t staged_at_flush_total = 0;
  };

  explicit LogManager(std::unique_ptr<StorageDevice> device);
  LogManager(std::unique_ptr<StorageDevice> device, Options options);
  ~LogManager();

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  /// Appends one framed record; returns its LSN. Thread-safe, lock-free on
  /// the fast path (no I/O, no mutex; parks only when the ring is full).
  /// Records must be non-empty and smaller than the ring minus one block.
  Lsn Append(std::span<const uint8_t> record);

  /// LSN one past the last reserved byte.
  Lsn CurrentLsn() const { return reserved_.load(std::memory_order_acquire); }

  /// LSN up to which the log is durable on the device.
  Lsn DurableLsn() const {
    return durable_lsn_.load(std::memory_order_acquire);
  }

  /// Blocks until `lsn` is durable. Spin-then-park on the durable sequence
  /// word: the flusher publishes each durability advance with one bump and
  /// at most one batched unpark for all waiters (none when nobody parked) —
  /// the same futex-style path the commit pipeline's waiters use, so kSync
  /// commits and daemon flush waits share one wakeup discipline.
  void WaitDurable(Lsn lsn);

  /// Forces everything reserved before the call to the device (spinning out
  /// any appender still publishing its copy) before returning.
  Status Flush();

  const StorageDevice* device() const { return device_.get(); }

  /// Replication hook: invoked once per flush batch that advanced
  /// durable_lsn_, with the new durable LSN, while flush_mu_ is held — so
  /// calls arrive in advance order. Keep it cheap and non-blocking (the
  /// shipper's implementation bumps an eventcount word and issues at most
  /// one wake). Set during wiring, before concurrent appends; replace with
  /// nullptr only once flushes are quiesced.
  void SetDurableObserver(std::function<void(Lsn)> observer);

  /// Number of flush batches issued (group-commit effectiveness metric).
  uint64_t flush_batches() const {
    // relaxed-ok: monotone diagnostic counter.
    return flushes_.load(std::memory_order_relaxed);
  }

  Stats stats() const;

 private:
  struct alignas(64) BlockCount {
    std::atomic<uint64_t> released{0};
  };

  Lsn BlockFloor(Lsn lsn) const { return lsn & ~(block_bytes_ - 1); }
  size_t BlockIndex(Lsn lsn) const {
    return (lsn / block_bytes_) & (n_blocks_ - 1);
  }
  bool HasStaged() const {
    return reserved_.load(std::memory_order_acquire) >
           flushed_.load(std::memory_order_acquire);
  }
  uint64_t StagedBytes() const {
    return reserved_.load(std::memory_order_acquire) -
           flushed_.load(std::memory_order_acquire);
  }

  /// Scans the device's frames; truncates a torn tail; returns the LSN to
  /// resume at.
  Lsn RecoverTail();
  void CopyIntoRing(Lsn lsn, const uint8_t* src, size_t n);
  void WaitForRingSpace(Lsn end);
  /// One flush round: ship the completed prefix, sync, advance durability.
  /// Takes flush_mu_; safe from any thread.
  Status FlushPass();
  void FlusherLoop();

  std::unique_ptr<StorageDevice> device_;
  Options options_;

  // Reservation ring.
  std::unique_ptr<uint8_t[]> ring_;
  uint64_t capacity_ = 0;     // power of two
  uint64_t block_bytes_ = 0;  // power of two dividing capacity_
  uint64_t n_blocks_ = 0;
  uint64_t max_append_ = 0;  // capacity_ - block_bytes_ (incl. frame header)
  std::unique_ptr<BlockCount[]> released_;

  /// Next LSN to hand out; bytes in [flushed_, reserved_) are staged.
  std::atomic<Lsn> reserved_{0};
  /// Prefix shipped to the device; ring space below it is reusable.
  std::atomic<Lsn> flushed_{0};
  std::atomic<Lsn> durable_lsn_{0};

  // Ring-space eventcount: bumped once per flush that advanced flushed_.
  std::atomic<uint32_t> space_seq_{0};
  std::atomic<uint32_t> space_waiters_{0};

  // Durable-advance eventcount: bumped once per flush batch that moved
  // durable_lsn_; WaitDurable parks on it (see ParkingLot protocol).
  std::atomic<uint32_t> durable_seq_{0};
  std::atomic<uint32_t> durable_waiters_{0};

  Mutex flush_mu_;  // serializes flush batches
  std::function<void(Lsn)> durable_observer_ SKEENA_GUARDED_BY(flush_mu_);

  // Flusher sleep/wake. Appenders take flusher_mu_ only on the
  // empty->non-empty and watermark-crossing transitions (once per batch).
  Mutex flusher_mu_;
  CondVar flusher_cv_;
  std::atomic<bool> stop_{false};
  std::thread flusher_;

  // Stats.
  ShardedCounter appends_;
  ShardedCounter append_bytes_;
  ShardedCounter space_waits_;
  std::atomic<uint64_t> flushes_{0};
  std::atomic<uint64_t> flushed_bytes_{0};
  std::atomic<uint64_t> max_batch_bytes_{0};
  std::atomic<uint64_t> window_us_{0};
  std::atomic<uint64_t> window_grows_{0};
  std::atomic<uint64_t> window_shrinks_{0};
  std::atomic<uint64_t> flush_gap_ns_total_{0};
  std::atomic<uint64_t> staged_at_flush_total_{0};
  uint64_t last_flush_ns_ SKEENA_GUARDED_BY(flush_mu_) = 0;
};

/// Sequentially iterates the framed records of a log device. Used by
/// recovery (paper Section 4.6). A zero-length header (the unwritten tail
/// of a preallocated segment), a frame running past the device, or a check
/// mismatch all read as end-of-log.
class LogReader {
 public:
  /// `start_offset` must be frame-aligned (0, or a value returned by
  /// offset()); replication shipping cursors resume from the last
  /// acknowledged frame boundary this way.
  explicit LogReader(const StorageDevice* device, uint64_t start_offset = 0)
      : device_(device), offset_(start_offset) {}

  /// Reads the next record into *record. Returns false at end of log or on
  /// a torn/partial record (which recovery treats as the end).
  bool Next(std::string* record);

  uint64_t offset() const { return offset_; }

 private:
  const StorageDevice* device_;
  uint64_t offset_ = 0;
};

}  // namespace skeena

#endif  // SKEENA_LOG_LOG_MANAGER_H_
