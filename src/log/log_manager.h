#ifndef SKEENA_LOG_LOG_MANAGER_H_
#define SKEENA_LOG_LOG_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/parking_lot.h"
#include "common/status.h"
#include "common/types.h"
#include "log/storage_device.h"

namespace skeena {

/// Append-only write-ahead log with group commit.
///
/// Workers append framed records into an in-memory staging buffer and
/// immediately continue — this is the foundation of the pipelined commit
/// protocol (paper Section 4.5, after Aether [34]): transactions never wait
/// for their own flush; a background flusher batches the staging buffer to
/// the device and advances `durable_lsn()`, which Skeena's committer daemon
/// polls to decide when a cross-engine transaction's results may be
/// released to the client.
///
/// LSNs are byte offsets: a record's LSN is the offset one past its last
/// byte, so `durable_lsn() >= lsn` means the record is fully persistent.
class LogManager {
 public:
  struct Options {
    /// Flusher wake-up period when idle.
    uint64_t flush_interval_us = 50;
    /// Flush as soon as this many staged bytes accumulate.
    size_t flush_watermark = 64 * 1024;
    /// Issue a device Sync() after each flush batch.
    bool sync_on_flush = true;
    /// When false the background flusher never runs; only explicit Flush()
    /// advances durability (tests of durability gating).
    bool auto_flush = true;
  };

  explicit LogManager(std::unique_ptr<StorageDevice> device);
  LogManager(std::unique_ptr<StorageDevice> device, Options options);
  ~LogManager();

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  /// Appends one framed record; returns its LSN. Thread-safe, non-blocking
  /// (no I/O on the caller's path).
  Lsn Append(std::span<const uint8_t> record);

  /// LSN one past the last appended byte.
  Lsn CurrentLsn() const { return next_lsn_.load(std::memory_order_acquire); }

  /// LSN up to which the log is durable on the device.
  Lsn DurableLsn() const {
    return durable_lsn_.load(std::memory_order_acquire);
  }

  /// Blocks until `lsn` is durable. Spin-then-park on the durable sequence
  /// word: the flusher publishes each durability advance with one bump and
  /// at most one batched unpark for all waiters (none when nobody parked) —
  /// the same futex-style path the commit pipeline's waiters use, so kSync
  /// commits and daemon flush waits share one wakeup discipline.
  void WaitDurable(Lsn lsn);

  /// Forces all staged records to the device before returning.
  Status Flush();

  const StorageDevice* device() const { return device_.get(); }

  /// Number of flush batches issued (group-commit effectiveness metric).
  uint64_t flush_batches() const {
    return flush_batches_.load(std::memory_order_relaxed);
  }

 private:
  void FlusherLoop();
  // Flushes the staging buffer. Caller must NOT hold buf_mu_.
  Status FlushLocked();

  std::unique_ptr<StorageDevice> device_;
  Options options_;

  std::mutex buf_mu_;
  std::condition_variable work_cv_;  // signaled when staging becomes non-empty
  std::vector<uint8_t> staging_;
  Lsn staging_start_lsn_ = 0;

  std::atomic<Lsn> next_lsn_{0};
  std::atomic<Lsn> durable_lsn_{0};
  Lsn appended_lsn_ = 0;  // on device, possibly unsynced (flush_mu_)
  std::atomic<uint64_t> flush_batches_{0};

  // Durable-advance eventcount: bumped once per flush batch that moved
  // durable_lsn_; WaitDurable parks on it (see ParkingLot protocol).
  std::atomic<uint32_t> durable_seq_{0};
  std::atomic<uint32_t> durable_waiters_{0};

  std::mutex flush_mu_;  // serializes flush batches
  std::atomic<bool> stop_{false};
  std::thread flusher_;
};

/// Sequentially iterates the framed records of a log device. Used by
/// recovery (paper Section 4.6).
class LogReader {
 public:
  explicit LogReader(const StorageDevice* device) : device_(device) {}

  /// Reads the next record into *record. Returns false at end of log or on
  /// a torn/partial record (which recovery treats as the end).
  bool Next(std::string* record);

  uint64_t offset() const { return offset_; }

 private:
  const StorageDevice* device_;
  uint64_t offset_ = 0;
};

}  // namespace skeena

#endif  // SKEENA_LOG_LOG_MANAGER_H_
