#ifndef SKEENA_LOG_LOG_RECORDS_H_
#define SKEENA_LOG_LOG_RECORDS_H_

#include <cstring>
#include <string>
#include <string_view>

#include "common/encoding.h"
#include "common/types.h"

namespace skeena {

/// Log record types shared by both engines.
///
/// Cross-engine transactions piggyback `kCommitBegin` (appended at
/// pre-commit) and `kCommitEnd` (appended after post-commit) on each engine's
/// own log, exactly as paper Section 4.6 describes; recovery pairs them by
/// global transaction id across both logs and rolls back any cross-engine
/// transaction that is missing a kCommitEnd in either log.
enum class LogRecordType : uint8_t {
  kData = 1,         // one row image (insert/update/tombstone)
  kCommit = 2,       // single-engine transaction commit
  kCommitBegin = 3,  // cross-engine: sub-transaction pre-committed
  kCommitEnd = 4,    // cross-engine: sub-transaction post-committed
};

/// A decoded log record. Data records carry the full after-image of the row
/// (both engines recover by replaying committed transactions' images in
/// commit-timestamp order, ERMIA-style log-only recovery).
struct LogRecord {
  LogRecordType type = LogRecordType::kData;
  GlobalTxnId gtid = 0;
  Timestamp cts = 0;
  TableId table = 0;
  bool tombstone = false;
  Key key = {};
  std::string value;

  std::string Encode() const {
    std::string out;
    out.push_back(static_cast<char>(type));
    PutU64(&out, gtid);
    PutU64(&out, cts);
    PutU32(&out, table);
    out.push_back(tombstone ? 1 : 0);
    out.append(reinterpret_cast<const char*>(key.data()), key.size());
    PutU32(&out, static_cast<uint32_t>(value.size()));
    out.append(value);
    return out;
  }

  static bool Decode(std::string_view in, LogRecord* out) {
    constexpr size_t kFixed = 1 + 8 + 8 + 4 + 1 + 16 + 4;
    if (in.size() < kFixed) return false;
    const char* p = in.data();
    out->type = static_cast<LogRecordType>(*p++);
    out->gtid = GetU64(p);
    p += 8;
    out->cts = GetU64(p);
    p += 8;
    out->table = GetU32(p);
    p += 4;
    out->tombstone = (*p++ != 0);
    std::memcpy(out->key.data(), p, 16);
    p += 16;
    uint32_t vlen = GetU32(p);
    p += 4;
    if (in.size() < kFixed + vlen) return false;
    out->value.assign(p, vlen);
    return true;
  }
};

}  // namespace skeena

#endif  // SKEENA_LOG_LOG_RECORDS_H_
