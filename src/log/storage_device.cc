#include "log/storage_device.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace skeena {

void SpinWaitNs(uint64_t ns) {
  if (ns == 0) return;
  auto deadline = std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() < deadline) {
    // Busy wait: models a synchronous I/O completion.
  }
}

// ---------------------------------------------------------------- MemDevice

MemDevice::MemDevice(DeviceLatency latency) : latency_(latency) {}

Status MemDevice::Append(std::span<const uint8_t> data, uint64_t* offset) {
  {
    MutexLock guard(mu_);
    *offset = data_.size();
    data_.insert(data_.end(), data.begin(), data.end());
    bytes_written_ += data.size();
  }
  SpinWaitNs(latency_.write_ns);
  return Status::OK();
}

Status MemDevice::WriteAt(uint64_t offset, std::span<const uint8_t> data) {
  {
    MutexLock guard(mu_);
    if (offset + data.size() > data_.size()) data_.resize(offset + data.size());
    std::memcpy(data_.data() + offset, data.data(), data.size());
    bytes_written_ += data.size();
  }
  SpinWaitNs(latency_.write_ns);
  return Status::OK();
}

Status MemDevice::ReadAt(uint64_t offset, std::span<uint8_t> out) const {
  {
    MutexLock guard(mu_);
    if (offset + out.size() > data_.size()) {
      return Status::IOError("read past end of device");
    }
    std::memcpy(out.data(), data_.data() + offset, out.size());
    bytes_read_ += out.size();
  }
  SpinWaitNs(latency_.read_ns);
  return Status::OK();
}

Status MemDevice::Sync() {
  SpinWaitNs(latency_.sync_ns);
  return Status::OK();
}

Status MemDevice::Truncate(uint64_t size) {
  MutexLock guard(mu_);
  if (size < data_.size()) data_.resize(size);
  return Status::OK();
}

uint64_t MemDevice::Size() const {
  MutexLock guard(mu_);
  return data_.size();
}

uint64_t MemDevice::bytes_read() const {
  MutexLock guard(mu_);
  return bytes_read_;
}

uint64_t MemDevice::bytes_written() const {
  MutexLock guard(mu_);
  return bytes_written_;
}

// --------------------------------------------------------------- FileDevice

Result<std::unique_ptr<FileDevice>> FileDevice::Open(const std::string& path,
                                                     DeviceLatency latency) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError("open failed: " + path);
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return Status::IOError("lseek failed: " + path);
  }
  return std::unique_ptr<FileDevice>(
      new FileDevice(fd, path, static_cast<uint64_t>(size), latency));
}

FileDevice::FileDevice(int fd, std::string path, uint64_t size,
                       DeviceLatency latency)
    : fd_(fd), path_(std::move(path)), size_(size), latency_(latency) {}

FileDevice::~FileDevice() { ::close(fd_); }

Status FileDevice::PwriteFully(uint64_t offset, std::span<const uint8_t> data) {
  // pwrite may write fewer bytes than asked (signal, rlimit/quota boundary,
  // >2 GiB chunk): a short count is progress, not an error — advance and
  // retry until the span is on the file or a real error surfaces.
  const uint8_t* p = data.data();
  size_t remaining = data.size();
  off_t at = static_cast<off_t>(offset);
  while (remaining > 0) {
    ssize_t n = pwrite_hook_ != nullptr
                    ? pwrite_hook_(fd_, p, remaining, at)
                    : ::pwrite(fd_, p, remaining, at);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pwrite failed: " + path_);
    }
    if (n == 0) {
      return Status::IOError("pwrite wrote nothing: " + path_);
    }
    p += n;
    at += n;
    remaining -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status FileDevice::Append(std::span<const uint8_t> data, uint64_t* offset) {
  {
    MutexLock guard(mu_);
    *offset = size_;
    SKEENA_RETURN_NOT_OK(PwriteFully(size_, data));
    size_ += data.size();
    bytes_written_ += data.size();
  }
  SpinWaitNs(latency_.write_ns);
  return Status::OK();
}

Status FileDevice::WriteAt(uint64_t offset, std::span<const uint8_t> data) {
  {
    MutexLock guard(mu_);
    SKEENA_RETURN_NOT_OK(PwriteFully(offset, data));
    if (offset + data.size() > size_) size_ = offset + data.size();
    bytes_written_ += data.size();
  }
  SpinWaitNs(latency_.write_ns);
  return Status::OK();
}

Status FileDevice::ReadAt(uint64_t offset, std::span<uint8_t> out) const {
  {
    MutexLock guard(mu_);
    ssize_t n = ::pread(fd_, out.data(), out.size(),
                        static_cast<off_t>(offset));
    if (n < 0 || static_cast<size_t>(n) != out.size()) {
      return Status::IOError("pread failed: " + path_);
    }
    bytes_read_ += out.size();
  }
  SpinWaitNs(latency_.read_ns);
  return Status::OK();
}

Status FileDevice::Sync() {
  if (::fsync(fd_) != 0) {
    return Status::IOError("fsync failed: " + path_);
  }
  SpinWaitNs(latency_.sync_ns);
  return Status::OK();
}

Status FileDevice::Truncate(uint64_t size) {
  MutexLock guard(mu_);
  if (size >= size_) return Status::OK();
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return Status::IOError("ftruncate failed: " + path_);
  }
  size_ = size;
  return Status::OK();
}

uint64_t FileDevice::Size() const {
  MutexLock guard(mu_);
  return size_;
}

uint64_t FileDevice::bytes_read() const {
  MutexLock guard(mu_);
  return bytes_read_;
}

uint64_t FileDevice::bytes_written() const {
  MutexLock guard(mu_);
  return bytes_written_;
}

}  // namespace skeena
