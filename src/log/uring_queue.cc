#include "log/uring_queue.h"

#if defined(SKEENA_HAVE_IO_URING)

#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>

namespace skeena {
namespace {

int SysUringSetup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int SysUringEnter(int fd, unsigned to_submit, unsigned min_complete,
                  unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

/// The ring head/tail words live in kernel-shared mmaps; all accesses go
/// through atomics (the liburing load-acquire/store-release discipline).
std::atomic<unsigned>* RingWord(void* base, uint32_t off) {
  return reinterpret_cast<std::atomic<unsigned>*>(
      static_cast<char*>(base) + off);
}

}  // namespace

struct UringQueue::Impl {
  int ring_fd = -1;
  unsigned entries = 0;

  void* sq_ptr = nullptr;
  size_t sq_len = 0;
  void* cq_ptr = nullptr;  // == sq_ptr under IORING_FEAT_SINGLE_MMAP
  size_t cq_len = 0;
  io_uring_sqe* sqes = nullptr;
  size_t sqes_len = 0;

  std::atomic<unsigned>* sq_head = nullptr;
  std::atomic<unsigned>* sq_tail = nullptr;
  unsigned sq_mask = 0;
  unsigned* sq_array = nullptr;
  std::atomic<unsigned>* cq_head = nullptr;
  std::atomic<unsigned>* cq_tail = nullptr;
  unsigned cq_mask = 0;
  io_uring_cqe* cqes = nullptr;

  unsigned pending = 0;  // pushed but not yet submitted

  ~Impl() {
    if (sqes != nullptr) ::munmap(sqes, sqes_len);
    if (cq_ptr != nullptr && cq_ptr != sq_ptr) ::munmap(cq_ptr, cq_len);
    if (sq_ptr != nullptr) ::munmap(sq_ptr, sq_len);
    if (ring_fd >= 0) ::close(ring_fd);
  }

  io_uring_sqe* NextSqe() {
    // relaxed-ok: sq_tail is only advanced by this thread (single
    // submitter); the kernel-facing release store publishes it.
    const unsigned tail = sq_tail->load(std::memory_order_relaxed);
    const unsigned head = sq_head->load(std::memory_order_acquire);
    if (tail - head >= entries) return nullptr;
    const unsigned idx = tail & sq_mask;
    io_uring_sqe* sqe = &sqes[idx];
    std::memset(sqe, 0, sizeof(*sqe));
    sq_array[idx] = idx;
    sq_tail->store(tail + 1, std::memory_order_release);
    ++pending;
    return sqe;
  }
};

bool UringQueue::Supported() {
  static const bool supported = [] {
    io_uring_params params;
    std::memset(&params, 0, sizeof(params));
    int fd = SysUringSetup(4, &params);
    if (fd < 0) return false;
    ::close(fd);
    return true;
  }();
  return supported;
}

Result<std::unique_ptr<UringQueue>> UringQueue::Create(unsigned entries) {
  io_uring_params params;
  std::memset(&params, 0, sizeof(params));
  auto impl = std::make_unique<Impl>();
  impl->ring_fd = SysUringSetup(entries, &params);
  if (impl->ring_fd < 0) {
    return Status::NotSupported("io_uring_setup failed");
  }
  impl->entries = params.sq_entries;

  impl->sq_len = params.sq_off.array + params.sq_entries * sizeof(unsigned);
  impl->cq_len =
      params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
  const bool single_mmap =
      (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (single_mmap) {
    impl->sq_len = impl->cq_len = std::max(impl->sq_len, impl->cq_len);
  }
  impl->sq_ptr =
      ::mmap(nullptr, impl->sq_len, PROT_READ | PROT_WRITE,
             MAP_SHARED | MAP_POPULATE, impl->ring_fd, IORING_OFF_SQ_RING);
  if (impl->sq_ptr == MAP_FAILED) {
    impl->sq_ptr = nullptr;
    return Status::IOError("io_uring SQ ring mmap failed");
  }
  if (single_mmap) {
    impl->cq_ptr = impl->sq_ptr;
  } else {
    impl->cq_ptr =
        ::mmap(nullptr, impl->cq_len, PROT_READ | PROT_WRITE,
               MAP_SHARED | MAP_POPULATE, impl->ring_fd, IORING_OFF_CQ_RING);
    if (impl->cq_ptr == MAP_FAILED) {
      impl->cq_ptr = nullptr;
      return Status::IOError("io_uring CQ ring mmap failed");
    }
  }
  impl->sqes_len = params.sq_entries * sizeof(io_uring_sqe);
  void* sqes =
      ::mmap(nullptr, impl->sqes_len, PROT_READ | PROT_WRITE,
             MAP_SHARED | MAP_POPULATE, impl->ring_fd, IORING_OFF_SQES);
  if (sqes == MAP_FAILED) {
    return Status::IOError("io_uring SQE array mmap failed");
  }
  impl->sqes = static_cast<io_uring_sqe*>(sqes);

  impl->sq_head = RingWord(impl->sq_ptr, params.sq_off.head);
  impl->sq_tail = RingWord(impl->sq_ptr, params.sq_off.tail);
  impl->sq_mask = *reinterpret_cast<unsigned*>(
      static_cast<char*>(impl->sq_ptr) + params.sq_off.ring_mask);
  impl->sq_array = reinterpret_cast<unsigned*>(
      static_cast<char*>(impl->sq_ptr) + params.sq_off.array);
  impl->cq_head = RingWord(impl->cq_ptr, params.cq_off.head);
  impl->cq_tail = RingWord(impl->cq_ptr, params.cq_off.tail);
  impl->cq_mask = *reinterpret_cast<unsigned*>(
      static_cast<char*>(impl->cq_ptr) + params.cq_off.ring_mask);
  impl->cqes = reinterpret_cast<io_uring_cqe*>(
      static_cast<char*>(impl->cq_ptr) + params.cq_off.cqes);

  return std::unique_ptr<UringQueue>(new UringQueue(impl.release()));
}

UringQueue::~UringQueue() { delete impl_; }

bool UringQueue::PushWrite(int fd, const void* buf, unsigned len,
                           uint64_t offset) {
  io_uring_sqe* sqe = impl_->NextSqe();
  if (sqe == nullptr) return false;
  sqe->opcode = IORING_OP_WRITE;
  sqe->fd = fd;
  sqe->addr = reinterpret_cast<uint64_t>(buf);
  sqe->len = len;
  sqe->off = offset;
  // Completion check: a write must complete with exactly `len` bytes.
  sqe->user_data = len;
  return true;
}

bool UringQueue::PushFsync(int fd) {
  io_uring_sqe* sqe = impl_->NextSqe();
  if (sqe == nullptr) return false;
  sqe->opcode = IORING_OP_FSYNC;
  sqe->fd = fd;
  sqe->fsync_flags = IORING_FSYNC_DATASYNC;
  sqe->user_data = 0;  // fsync completes with res == 0
  return true;
}

Status UringQueue::SubmitAndWait() {
  unsigned to_submit = impl_->pending;
  impl_->pending = 0;
  unsigned outstanding = to_submit;
  Status batch_status = Status::OK();
  while (outstanding > 0) {
    int ret = SysUringEnter(impl_->ring_fd, to_submit, outstanding,
                            IORING_ENTER_GETEVENTS);
    if (ret < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("io_uring_enter failed");
    }
    to_submit = 0;
    // relaxed-ok: cq_head is only advanced by this thread (single
    // reaper); the acquire on cq_tail orders the kernel's completions.
    unsigned head = impl_->cq_head->load(std::memory_order_relaxed);
    const unsigned tail = impl_->cq_tail->load(std::memory_order_acquire);
    while (head != tail && outstanding > 0) {
      const io_uring_cqe* cqe = &impl_->cqes[head & impl_->cq_mask];
      if (cqe->res < 0 ||
          static_cast<uint64_t>(cqe->res) != cqe->user_data) {
        // Failed or short completion: fail the batch, caller falls back to
        // its synchronous path (offset writes are idempotent to redo).
        batch_status = Status::IOError("io_uring op failed");
      }
      ++head;
      --outstanding;
    }
    impl_->cq_head->store(head, std::memory_order_release);
  }
  return batch_status;
}

}  // namespace skeena

#else  // !SKEENA_HAVE_IO_URING

namespace skeena {

struct UringQueue::Impl {};

bool UringQueue::Supported() { return false; }

Result<std::unique_ptr<UringQueue>> UringQueue::Create(unsigned) {
  return Status::NotSupported("built without io_uring support");
}

UringQueue::~UringQueue() { delete impl_; }

bool UringQueue::PushWrite(int, const void*, unsigned, uint64_t) {
  return false;
}

bool UringQueue::PushFsync(int) { return false; }

Status UringQueue::SubmitAndWait() {
  return Status::NotSupported("built without io_uring support");
}

}  // namespace skeena

#endif  // SKEENA_HAVE_IO_URING
