#ifndef SKEENA_INDEX_BTREE_H_
#define SKEENA_INDEX_BTREE_H_

#include <atomic>
#include <cstdint>
#include <functional>

#include "common/encoding.h"

namespace skeena {

/// Concurrent in-memory B+-tree with 16-byte binary-comparable keys and
/// 64-bit values.
///
/// This is the repository's substitute for Masstree (paper Section 4.3): a
/// high-performance range index used for every engine-side table index.
/// Synchronization follows the optimistic lock coupling design of Leis et
/// al.: every node carries a version word (obsolete bit, lock bit, counter);
/// readers descend without locking and validate node versions after each
/// read, restarting on interference; writers lock only the nodes they
/// modify and split full nodes preemptively on the way down, so structure
/// modifications never propagate upward.
///
/// The tree intentionally has no `Remove`: both engines delete logically
/// (tombstone versions / invisible rows), matching the multi-version model
/// of paper Section 2.2, and the CSR recycles whole partitions instead of
/// deleting keys. Values are immutable handles (version-chain heads in
/// memdb, RIDs in stordb), so `Insert` is the common mutation.
///
/// Thread safety: all operations may run concurrently. The destructor must
/// be called with no concurrent operations.
class BTree {
 public:
  /// Visitor for range scans. Return false to stop the scan.
  using ScanCallback = std::function<bool(const Key& key, uint64_t value)>;

  BTree();
  ~BTree();

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  /// Inserts key -> value. Returns false (and leaves the tree unchanged) if
  /// the key already exists.
  bool Insert(const Key& key, uint64_t value);

  /// Inserts or overwrites. Returns true if the key was newly inserted.
  bool Upsert(const Key& key, uint64_t value);

  /// Point lookup. Returns true and fills *value if the key is present.
  bool Lookup(const Key& key, uint64_t* value) const;

  /// Visits all entries with key >= lower in ascending key order until the
  /// callback returns false. Returns the number of entries visited.
  ///
  /// The scan is a sequence of atomically-read leaf snapshots: entries seen
  /// within one leaf are consistent, and each entry is delivered at most
  /// once even if splits force internal restarts.
  size_t ScanFrom(const Key& lower, const ScanCallback& cb) const;

  /// Number of distinct keys (exact; maintained on insert).
  // relaxed-ok: statistic read; no ordering consumers.
  size_t size() const { return size_.load(std::memory_order_relaxed); }

  /// Height of the tree (root is height 1). For tests/stats.
  size_t Height() const;

 private:
  struct NodeBase;
  struct InnerNode;
  struct LeafNode;

  // Core upsert used by Insert/Upsert.
  bool UpsertImpl(const Key& key, uint64_t value, bool allow_update,
                  bool* existed);

  void MakeRoot(const Key& sep, NodeBase* left, NodeBase* right);
  static void FreeSubtree(NodeBase* node);

  std::atomic<NodeBase*> root_;
  std::atomic<size_t> size_{0};
};

}  // namespace skeena

#endif  // SKEENA_INDEX_BTREE_H_
