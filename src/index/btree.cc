#include "index/btree.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/spin_latch.h"

namespace skeena {

namespace {

// Version word layout: [counter ...][lock:1][obsolete:1].
constexpr uint64_t kObsoleteBit = 1;
constexpr uint64_t kLockBit = 2;

}  // namespace

struct BTree::NodeBase {
  std::atomic<uint64_t> version{4};  // unlocked, not obsolete
  bool is_leaf = false;
  uint16_t count = 0;

  bool IsLocked(uint64_t v) const { return (v & kLockBit) != 0; }
  bool IsObsolete(uint64_t v) const { return (v & kObsoleteBit) != 0; }

  // Waits until the node is unlocked and returns the observed version.
  // Sets restart if the node became obsolete.
  uint64_t StableVersion(bool* restart) const {
    uint64_t v = version.load(std::memory_order_acquire);
    while (v & kLockBit) {
      CpuRelax();
      v = version.load(std::memory_order_acquire);
    }
    if (v & kObsoleteBit) *restart = true;
    return v;
  }

  // Validates that the node did not change since `v` was observed.
  void CheckOrRestart(uint64_t v, bool* restart) const {
    // relaxed-ok: the fence above upgrades the re-check; the load itself
    // needs no edge (standard optimistic lock coupling idiom).
    std::atomic_thread_fence(std::memory_order_acquire);
    if (version.load(std::memory_order_relaxed) != v) *restart = true;
  }

  void UpgradeToWriteLockOrRestart(uint64_t v, bool* restart) {
    uint64_t expected = v;
    if (!version.compare_exchange_strong(expected, v | kLockBit,
                                         std::memory_order_acquire)) {
      *restart = true;
    }
  }

  void WriteUnlock() {
    // Adding kLockBit clears the lock bit (carry) and bumps the counter.
    version.fetch_add(kLockBit, std::memory_order_release);
  }

  void WriteUnlockObsolete() {
    version.fetch_add(kLockBit | kObsoleteBit, std::memory_order_release);
  }
};

struct BTree::InnerNode : BTree::NodeBase {
  static constexpr int kCapacity = 32;

  Key keys[kCapacity];
  NodeBase* children[kCapacity + 1] = {};

  InnerNode() { is_leaf = false; }

  bool IsFull() const { return count == kCapacity; }

  // Index of the child that covers `k`: first position whose separator is
  // strictly greater than k (keys equal to a separator route right).
  int ChildPos(const Key& k) const {
    int lo = 0;
    int hi = count;
    while (lo < hi) {
      int mid = (lo + hi) / 2;
      if (k < keys[mid]) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  }

  // Inserts separator `sep` with `right` as the child covering keys >= sep.
  // Pre: not full, write-locked.
  void InsertChild(const Key& sep, NodeBase* right) {
    int pos = ChildPos(sep);
    std::memmove(&keys[pos + 1], &keys[pos], sizeof(Key) * (count - pos));
    std::memmove(&children[pos + 2], &children[pos + 1],
                 sizeof(NodeBase*) * (count - pos));
    keys[pos] = sep;
    children[pos + 1] = right;
    count++;
  }

  // Splits a full node: the median separator moves up, the upper half moves
  // into the returned sibling. Pre: full, write-locked.
  InnerNode* Split(Key* sep) {
    auto* right = new InnerNode();
    int mid = count / 2;
    *sep = keys[mid];
    right->count = static_cast<uint16_t>(count - mid - 1);
    std::memcpy(right->keys, &keys[mid + 1], sizeof(Key) * right->count);
    std::memcpy(right->children, &children[mid + 1],
                sizeof(NodeBase*) * (right->count + 1));
    count = static_cast<uint16_t>(mid);
    return right;
  }
};

struct BTree::LeafNode : BTree::NodeBase {
  static constexpr int kCapacity = 32;

  Key keys[kCapacity];
  uint64_t values[kCapacity];
  std::atomic<LeafNode*> next{nullptr};

  LeafNode() { is_leaf = true; }

  bool IsFull() const { return count == kCapacity; }

  // First position with keys[pos] >= k.
  int LowerBound(const Key& k) const {
    int lo = 0;
    int hi = count;
    while (lo < hi) {
      int mid = (lo + hi) / 2;
      if (keys[mid] < k) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  bool Find(const Key& k, uint64_t* value) const {
    int pos = LowerBound(k);
    if (pos < count && keys[pos] == k) {
      *value = values[pos];
      return true;
    }
    return false;
  }

  // Pre: write-locked. Returns true if a new key was inserted; sets
  // *existed if the key was already present.
  bool InsertOrUpdate(const Key& k, uint64_t v, bool allow_update,
                      bool* existed) {
    int pos = LowerBound(k);
    if (pos < count && keys[pos] == k) {
      *existed = true;
      if (allow_update) values[pos] = v;
      return false;
    }
    *existed = false;
    assert(count < kCapacity);
    std::memmove(&keys[pos + 1], &keys[pos], sizeof(Key) * (count - pos));
    std::memmove(&values[pos + 1], &values[pos],
                 sizeof(uint64_t) * (count - pos));
    keys[pos] = k;
    values[pos] = v;
    count++;
    return true;
  }

  // Pre: full, write-locked. Returns the new right sibling; *sep is the
  // sibling's first key.
  LeafNode* Split(Key* sep) {
    auto* right = new LeafNode();
    int mid = count / 2;
    right->count = static_cast<uint16_t>(count - mid);
    std::memcpy(right->keys, &keys[mid], sizeof(Key) * right->count);
    std::memcpy(right->values, &values[mid], sizeof(uint64_t) * right->count);
    count = static_cast<uint16_t>(mid);
    // relaxed-ok: both nodes are write-locked during the split; the
    // version bump on unlock is the publication edge.
    right->next.store(next.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    next.store(right, std::memory_order_release);
    *sep = right->keys[0];
    return right;
  }
};

BTree::BTree() { root_.store(new LeafNode(), std::memory_order_release); }

BTree::~BTree() { FreeSubtree(root_.load(std::memory_order_acquire)); }

void BTree::FreeSubtree(NodeBase* node) {
  if (node == nullptr) return;
  if (!node->is_leaf) {
    auto* inner = static_cast<InnerNode*>(node);
    for (int i = 0; i <= inner->count; ++i) FreeSubtree(inner->children[i]);
    delete inner;
  } else {
    delete static_cast<LeafNode*>(node);
  }
}

void BTree::MakeRoot(const Key& sep, NodeBase* left, NodeBase* right) {
  auto* root = new InnerNode();
  root->count = 1;
  root->keys[0] = sep;
  root->children[0] = left;
  root->children[1] = right;
  root_.store(root, std::memory_order_release);
}

bool BTree::Insert(const Key& key, uint64_t value) {
  bool existed = false;
  UpsertImpl(key, value, /*allow_update=*/false, &existed);
  return !existed;
}

bool BTree::Upsert(const Key& key, uint64_t value) {
  bool existed = false;
  UpsertImpl(key, value, /*allow_update=*/true, &existed);
  return !existed;
}

bool BTree::UpsertImpl(const Key& key, uint64_t value, bool allow_update,
                       bool* existed) {
  while (true) {
    bool restart = false;
    NodeBase* node = root_.load(std::memory_order_acquire);
    uint64_t version = node->StableVersion(&restart);
    if (restart || node != root_.load(std::memory_order_acquire)) continue;

    InnerNode* parent = nullptr;
    uint64_t parent_version = 0;

    // Descend, splitting any full node preemptively so an insertion below
    // never needs to propagate a split upward past a locked region.
    bool descend_restart = false;
    while (!node->is_leaf) {
      auto* inner = static_cast<InnerNode*>(node);
      if (inner->IsFull()) {
        if (parent != nullptr) {
          parent->UpgradeToWriteLockOrRestart(parent_version, &restart);
          if (restart) break;
        }
        node->UpgradeToWriteLockOrRestart(version, &restart);
        if (restart) {
          if (parent != nullptr) parent->WriteUnlock();
          break;
        }
        if (parent == nullptr &&
            node != root_.load(std::memory_order_acquire)) {
          node->WriteUnlock();
          restart = true;
          break;
        }
        Key sep;
        InnerNode* right = inner->Split(&sep);
        if (parent != nullptr) {
          parent->InsertChild(sep, right);
        } else {
          MakeRoot(sep, inner, right);
        }
        node->WriteUnlock();
        if (parent != nullptr) parent->WriteUnlock();
        restart = true;  // re-descend through the split
        break;
      }

      if (parent != nullptr) {
        parent->CheckOrRestart(parent_version, &restart);
        if (restart) break;
      }
      parent = inner;
      parent_version = version;
      NodeBase* child = inner->children[inner->ChildPos(key)];
      inner->CheckOrRestart(version, &restart);
      if (restart) break;
      node = child;
      version = node->StableVersion(&restart);
      if (restart) break;
    }
    if (restart) continue;
    (void)descend_restart;

    auto* leaf = static_cast<LeafNode*>(node);
    if (leaf->IsFull()) {
      if (parent != nullptr) {
        parent->UpgradeToWriteLockOrRestart(parent_version, &restart);
        if (restart) continue;
      }
      node->UpgradeToWriteLockOrRestart(version, &restart);
      if (restart) {
        if (parent != nullptr) parent->WriteUnlock();
        continue;
      }
      if (parent == nullptr && node != root_.load(std::memory_order_acquire)) {
        node->WriteUnlock();
        continue;
      }
      // A full leaf can still satisfy an update-in-place or a duplicate.
      int pos = leaf->LowerBound(key);
      if (pos < leaf->count && leaf->keys[pos] == key) {
        *existed = true;
        if (allow_update) leaf->values[pos] = value;
        node->WriteUnlock();
        if (parent != nullptr) parent->WriteUnlock();
        return false;
      }
      Key sep;
      LeafNode* right = leaf->Split(&sep);
      if (parent != nullptr) {
        parent->InsertChild(sep, right);
      } else {
        MakeRoot(sep, leaf, right);
      }
      node->WriteUnlock();
      if (parent != nullptr) parent->WriteUnlock();
      continue;  // re-descend into the correct half
    }

    node->UpgradeToWriteLockOrRestart(version, &restart);
    if (restart) continue;
    if (parent != nullptr) {
      parent->CheckOrRestart(parent_version, &restart);
      if (restart) {
        node->WriteUnlock();
        continue;
      }
    }
    bool inserted = leaf->InsertOrUpdate(key, value, allow_update, existed);
    node->WriteUnlock();
    // relaxed-ok: monotone size statistic; no ordering consumers.
    if (inserted) size_.fetch_add(1, std::memory_order_relaxed);
    return inserted;
  }
}

bool BTree::Lookup(const Key& key, uint64_t* value) const {
  while (true) {
    bool restart = false;
    NodeBase* node = root_.load(std::memory_order_acquire);
    uint64_t version = node->StableVersion(&restart);
    if (restart || node != root_.load(std::memory_order_acquire)) continue;

    while (!node->is_leaf) {
      auto* inner = static_cast<const InnerNode*>(node);
      NodeBase* child = inner->children[inner->ChildPos(key)];
      node->CheckOrRestart(version, &restart);
      if (restart) break;
      uint64_t child_version = child->StableVersion(&restart);
      if (restart) break;
      node->CheckOrRestart(version, &restart);
      if (restart) break;
      node = child;
      version = child_version;
    }
    if (restart) continue;

    auto* leaf = static_cast<const LeafNode*>(node);
    uint64_t v = 0;
    bool found = leaf->Find(key, &v);
    node->CheckOrRestart(version, &restart);
    if (restart) continue;
    if (found) *value = v;
    return found;
  }
}

size_t BTree::ScanFrom(const Key& lower, const ScanCallback& cb) const {
  // Per-leaf snapshot buffer: entries are copied out under version
  // validation, then delivered outside the critical region so the callback
  // may be arbitrarily slow without blocking writers.
  Key buf_keys[LeafNode::kCapacity];
  uint64_t buf_values[LeafNode::kCapacity];

  Key cursor = lower;   // deliver only entries >= cursor
  size_t delivered = 0;

  while (true) {
  restart:
    bool restart = false;
    NodeBase* node = root_.load(std::memory_order_acquire);
    uint64_t version = node->StableVersion(&restart);
    if (restart || node != root_.load(std::memory_order_acquire)) continue;

    while (!node->is_leaf) {
      auto* inner = static_cast<const InnerNode*>(node);
      NodeBase* child = inner->children[inner->ChildPos(cursor)];
      node->CheckOrRestart(version, &restart);
      if (restart) goto restart;
      uint64_t child_version = child->StableVersion(&restart);
      if (restart) goto restart;
      node->CheckOrRestart(version, &restart);
      if (restart) goto restart;
      node = child;
      version = child_version;
    }

    const LeafNode* leaf = static_cast<const LeafNode*>(node);
    // Walk the leaf chain from here.
    while (leaf != nullptr) {
      int n = 0;
      int pos = leaf->LowerBound(cursor);
      for (int i = pos; i < leaf->count; ++i) {
        buf_keys[n] = leaf->keys[i];
        buf_values[n] = leaf->values[i];
        n++;
      }
      const LeafNode* next = leaf->next.load(std::memory_order_acquire);
      leaf->CheckOrRestart(version, &restart);
      if (restart) goto restart;  // re-descend using the current cursor

      for (int i = 0; i < n; ++i) {
        delivered++;
        if (!cb(buf_keys[i], buf_values[i])) return delivered;
        // Advance the cursor past the delivered key: smallest key > k is
        // k + 1 in lexicographic byte order.
        cursor = buf_keys[i];
        for (int b = 15; b >= 0; --b) {
          if (++cursor[b] != 0) break;
          if (b == 0) return delivered;  // wrapped past the max key
        }
      }
      if (next == nullptr) return delivered;
      version = next->StableVersion(&restart);
      if (restart) goto restart;
      leaf = next;
    }
    return delivered;
  }
}

size_t BTree::Height() const {
  size_t h = 1;
  NodeBase* node = root_.load(std::memory_order_acquire);
  while (!node->is_leaf) {
    node = static_cast<InnerNode*>(node)->children[0];
    h++;
  }
  return h;
}

}  // namespace skeena
