#ifndef SKEENA_INDEX_CONCURRENT_HASH_MAP_H_
#define SKEENA_INDEX_CONCURRENT_HASH_MAP_H_

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"

namespace skeena {

/// Mutex-sharded hash map. Used for the buffer pool page table, the stordb
/// transaction state table and the lock manager's lock table — places where
/// point operations dominate and per-shard mutexes keep contention low.
template <typename K, typename V, typename Hash = std::hash<K>>
class ConcurrentHashMap {
 public:
  explicit ConcurrentHashMap(size_t num_shards = 64) : shards_(num_shards) {}

  /// Inserts key -> value; returns false if the key already existed.
  bool Insert(const K& key, const V& value) {
    Shard& s = ShardFor(key);
    MutexLock guard(s.mu);
    return s.map.emplace(key, value).second;
  }

  /// Inserts or overwrites.
  void Put(const K& key, const V& value) {
    Shard& s = ShardFor(key);
    MutexLock guard(s.mu);
    s.map[key] = value;
  }

  std::optional<V> Get(const K& key) const {
    const Shard& s = ShardFor(key);
    MutexLock guard(s.mu);
    auto it = s.map.find(key);
    if (it == s.map.end()) return std::nullopt;
    return it->second;
  }

  bool Contains(const K& key) const {
    const Shard& s = ShardFor(key);
    MutexLock guard(s.mu);
    return s.map.count(key) != 0;
  }

  bool Erase(const K& key) {
    Shard& s = ShardFor(key);
    MutexLock guard(s.mu);
    return s.map.erase(key) != 0;
  }

  /// Runs `fn` under the shard lock with a reference to the mapped value,
  /// default-constructing it if absent.
  template <typename Fn>
  void WithValue(const K& key, Fn&& fn) {
    Shard& s = ShardFor(key);
    MutexLock guard(s.mu);
    fn(s.map[key]);
  }

  /// Removes all entries matching the predicate. Returns removed count.
  template <typename Pred>
  size_t EraseIf(Pred&& pred) {
    size_t removed = 0;
    for (Shard& s : shards_) {
      MutexLock guard(s.mu);
      for (auto it = s.map.begin(); it != s.map.end();) {
        if (pred(it->first, it->second)) {
          it = s.map.erase(it);
          removed++;
        } else {
          ++it;
        }
      }
    }
    return removed;
  }

  size_t Size() const {
    size_t n = 0;
    for (const Shard& s : shards_) {
      MutexLock guard(s.mu);
      n += s.map.size();
    }
    return n;
  }

 private:
  struct Shard {
    mutable Mutex mu;
    std::unordered_map<K, V, Hash> map SKEENA_GUARDED_BY(mu);
  };

  Shard& ShardFor(const K& key) {
    return shards_[Hash{}(key) % shards_.size()];
  }
  const Shard& ShardFor(const K& key) const {
    return shards_[Hash{}(key) % shards_.size()];
  }

  std::vector<Shard> shards_;
};

}  // namespace skeena

#endif  // SKEENA_INDEX_CONCURRENT_HASH_MAP_H_
