#ifndef SKEENA_SERVER_SERVER_H_
#define SKEENA_SERVER_SERVER_H_

// The Skeena network front-end: a TCP listener speaking the SKNA wire
// protocol (docs/PROTOCOL.md), an epoll event loop, and a worker pool that
// dispatches decoded request frames into Database sessions.
//
// Ownership model (see DESIGN.md "Server front-end"):
//
//  * ONE event-loop thread owns all sockets: accept, non-blocking reads,
//    frame extraction, EPOLLOUT flushing, and every close(). Connections
//    live in a loop-owned map and die only on the loop thread.
//  * N worker threads own the Database work: a connection whose input
//    queue turns non-empty is scheduled onto exactly one worker at a time
//    (the `scheduled` flag), which drains its frames in order, executes
//    them against the connection's session, and appends responses to the
//    connection's output buffer. Per-connection frame order is therefore
//    preserved while distinct connections run fully in parallel — the
//    concurrency profile the lock-free read path and the batched commit
//    wakeups were built for.
//  * A connection's open Transaction is part of its session state. The
//    transaction migrates between workers across requests (the anchor
//    registry's slot handoff supports this); on any disconnect — EOF,
//    error, protocol violation, slow-reader overflow, server shutdown —
//    the orphaned transaction is aborted before the socket is closed.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "server/wire.h"

namespace skeena {
class Database;
}

namespace skeena::server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = pick an ephemeral port; read it back with Server::port().
  uint16_t port = 0;
  /// Database worker threads (>=1). The event loop is one extra thread.
  int workers = 4;
  /// Per-connection response backlog cap: a pipelined client that stops
  /// reading is disconnected (and its transaction aborted) once its
  /// unflushed responses exceed this.
  size_t max_outbuf_bytes = 4u << 20;
};

class Server {
 public:
  Server(Database* db, ServerOptions options = ServerOptions());
  ~Server();  // calls Stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the event loop + workers.
  Status Start();

  /// Drains workers, aborts every connection's orphaned transaction,
  /// closes all sockets, joins all threads. Idempotent.
  void Stop();

  /// Bound port (valid after Start(); resolves port=0 to the real one).
  uint16_t port() const { return port_; }

  struct Stats {
    uint64_t connections_accepted = 0;
    uint64_t connections_closed = 0;
    uint64_t frames_in = 0;
    uint64_t frames_out = 0;
    uint64_t protocol_errors = 0;
    /// Transactions aborted because their connection went away while they
    /// were open (the "no orphaned transactions" invariant: every one of
    /// these was rolled back, never leaked).
    uint64_t txns_aborted_on_disconnect = 0;
  };
  Stats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  uint16_t port_ = 0;
};

}  // namespace skeena::server

#endif  // SKEENA_SERVER_SERVER_H_
