#include "server/wire.h"

#include <cstring>

namespace skeena::server {

namespace {

// -- little-endian primitive writers/readers --------------------------------

void PutLE16(std::string* out, uint16_t v) {
  char b[2];
  std::memcpy(b, &v, 2);
  out->append(b, 2);
}

void PutLE32(std::string* out, uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out->append(b, 4);
}

void PutLE64(std::string* out, uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out->append(b, 8);
}

/// Bounds-checked forward cursor over a frame body. Every Read* returns
/// false once any prior read ran past the end, so decoders can chain reads
/// and check once.
struct Reader {
  const char* p;
  size_t left;
  bool ok = true;

  explicit Reader(std::string_view s) : p(s.data()), left(s.size()) {}

  bool Take(void* dst, size_t n) {
    if (!ok || left < n) {
      ok = false;
      return false;
    }
    std::memcpy(dst, p, n);
    p += n;
    left -= n;
    return true;
  }

  bool U8(uint8_t* v) { return Take(v, 1); }
  bool U16(uint16_t* v) { return Take(v, 2); }
  bool U32(uint32_t* v) { return Take(v, 4); }
  bool U64(uint64_t* v) { return Take(v, 8); }
  bool KeyBytes(Key* k) { return Take(k->data(), k->size()); }

  bool Bytes(std::string* out, size_t n) {
    if (!ok || left < n) {
      ok = false;
      return false;
    }
    out->assign(p, n);
    p += n;
    left -= n;
    return true;
  }

  bool AtEnd() const { return ok && left == 0; }
};

/// Starts a frame: header with a placeholder len, patched by Seal().
std::string BeginFrame(uint64_t request_id, Op op) {
  std::string out;
  PutLE32(&out, 0);  // len, patched in Seal()
  PutLE64(&out, request_id);
  out.push_back(static_cast<char>(op));
  return out;
}

std::string Seal(std::string frame) {
  uint32_t len = static_cast<uint32_t>(frame.size() - 4);
  std::memcpy(frame.data(), &len, 4);
  return frame;
}

}  // namespace

const char* ErrName(Err e) {
  switch (e) {
    case Err::kOk: return "OK";
    case Err::kNotFound: return "ERR_NOT_FOUND";
    case Err::kAborted: return "ERR_ABORTED";
    case Err::kSkeenaAbort: return "ERR_SKEENA_ABORT";
    case Err::kDeadlock: return "ERR_DEADLOCK";
    case Err::kTimedOut: return "ERR_TIMED_OUT";
    case Err::kBusy: return "ERR_BUSY";
    case Err::kInvalid: return "ERR_INVALID";
    case Err::kIo: return "ERR_IO";
    case Err::kCorrupt: return "ERR_CORRUPT";
    case Err::kNotSupported: return "ERR_NOT_SUPPORTED";
    case Err::kNoTxn: return "ERR_NO_TXN";
    case Err::kTxnOpen: return "ERR_TXN_OPEN";
    case Err::kBadMagic: return "ERR_BAD_MAGIC";
    case Err::kBadVersion: return "ERR_BAD_VERSION";
    case Err::kBadFrame: return "ERR_BAD_FRAME";
    case Err::kBadOpcode: return "ERR_BAD_OPCODE";
    case Err::kFrameTooBig: return "ERR_FRAME_TOO_BIG";
    case Err::kNotReady: return "ERR_NOT_READY";
  }
  return "ERR_UNKNOWN";
}

Err ErrFromStatus(const Status& s) {
  switch (s.code()) {
    case StatusCode::kOk: return Err::kOk;
    case StatusCode::kNotFound: return Err::kNotFound;
    case StatusCode::kAlreadyExists: return Err::kInvalid;
    case StatusCode::kAborted: return Err::kAborted;
    case StatusCode::kSkeenaAbort: return Err::kSkeenaAbort;
    case StatusCode::kDeadlock: return Err::kDeadlock;
    case StatusCode::kTimedOut: return Err::kTimedOut;
    case StatusCode::kBusy: return Err::kBusy;
    case StatusCode::kInvalidArgument: return Err::kInvalid;
    case StatusCode::kIOError: return Err::kIo;
    case StatusCode::kCorruption: return Err::kCorrupt;
    case StatusCode::kNotSupported: return Err::kNotSupported;
  }
  return Err::kInvalid;
}

Status ErrToStatus(Err e, std::string msg) {
  switch (e) {
    case Err::kOk: return Status::OK();
    case Err::kNotFound: return Status::NotFound(std::move(msg));
    case Err::kAborted: return Status::Aborted(std::move(msg));
    case Err::kSkeenaAbort: return Status::SkeenaAbort(std::move(msg));
    case Err::kDeadlock: return Status::Deadlock(std::move(msg));
    case Err::kTimedOut: return Status::TimedOut(std::move(msg));
    case Err::kBusy: return Status::Busy(std::move(msg));
    case Err::kIo: return Status::IOError(std::move(msg));
    case Err::kCorrupt: return Status::Corruption(std::move(msg));
    case Err::kNotSupported: return Status::NotSupported(std::move(msg));
    default:
      return Status::InvalidArgument(std::string(ErrName(e)) +
                                     (msg.empty() ? "" : ": " + msg));
  }
}

Stmt Stmt::Get(uint32_t table, const Key& key) {
  Stmt s;
  s.kind = Kind::kGet;
  s.table = table;
  s.key = key;
  return s;
}

Stmt Stmt::Put(uint32_t table, const Key& key, std::string_view value) {
  Stmt s;
  s.kind = Kind::kPut;
  s.table = table;
  s.key = key;
  s.value.assign(value.data(), value.size());
  return s;
}

Stmt Stmt::Delete(uint32_t table, const Key& key) {
  Stmt s;
  s.kind = Kind::kDelete;
  s.table = table;
  s.key = key;
  return s;
}

Stmt Stmt::Scan(uint32_t table, const Key& lower, uint32_t limit) {
  Stmt s;
  s.kind = Kind::kScan;
  s.table = table;
  s.key = lower;
  s.scan_limit = limit;
  return s;
}

// ------------------------------------------------------------- extraction

ParseResult ExtractFrame(std::string_view buf, size_t* consumed, Frame* frame,
                         Err* err, uint64_t* request_id_hint) {
  *request_id_hint = 0;
  if (buf.size() < 4) return ParseResult::kNeedMore;
  uint32_t len;
  std::memcpy(&len, buf.data(), 4);
  // Bounds are checked from the 4 header bytes alone: an oversized frame
  // is rejected before (and instead of) being buffered.
  if (len < kLenOverhead || len > kMaxFrameLen) {
    if (buf.size() >= kHeaderBytes) {
      std::memcpy(request_id_hint, buf.data() + 4, 8);
    }
    *err = len < kLenOverhead ? Err::kBadFrame : Err::kFrameTooBig;
    return ParseResult::kError;
  }
  size_t total = 4 + static_cast<size_t>(len);
  if (buf.size() < total) return ParseResult::kNeedMore;
  std::memcpy(&frame->request_id, buf.data() + 4, 8);
  frame->opcode = static_cast<uint8_t>(buf[12]);
  frame->body.assign(buf.data() + kHeaderBytes, len - kLenOverhead);
  *consumed += total;
  return ParseResult::kFrame;
}

// --------------------------------------------------------------- encoding

std::string EncodeHello(uint64_t request_id, uint8_t version) {
  std::string f = BeginFrame(request_id, Op::kHello);
  f.append(kMagic, sizeof(kMagic));
  f.push_back(static_cast<char>(version));
  f.push_back(0);  // flags
  return Seal(std::move(f));
}

std::string EncodeOpenTable(uint64_t request_id, std::string_view name) {
  std::string f = BeginFrame(request_id, Op::kOpenTable);
  PutLE16(&f, static_cast<uint16_t>(name.size()));
  f.append(name.data(), name.size());
  return Seal(std::move(f));
}

std::string EncodeBegin(uint64_t request_id, IsolationLevel iso) {
  std::string f = BeginFrame(request_id, Op::kBegin);
  f.push_back(static_cast<char>(iso));
  return Seal(std::move(f));
}

std::string EncodeExec(uint64_t request_id, const std::vector<Stmt>& stmts) {
  std::string f = BeginFrame(request_id, Op::kExec);
  PutLE16(&f, static_cast<uint16_t>(stmts.size()));
  for (const Stmt& s : stmts) {
    f.push_back(static_cast<char>(s.kind));
    PutLE32(&f, s.table);
    f.append(reinterpret_cast<const char*>(s.key.data()), s.key.size());
    if (s.kind == Stmt::Kind::kPut) {
      PutLE32(&f, static_cast<uint32_t>(s.value.size()));
      f.append(s.value);
    } else if (s.kind == Stmt::Kind::kScan) {
      PutLE32(&f, s.scan_limit);
    }
  }
  return Seal(std::move(f));
}

std::string EncodeCommit(uint64_t request_id) {
  return Seal(BeginFrame(request_id, Op::kCommit));
}

std::string EncodeAbort(uint64_t request_id) {
  return Seal(BeginFrame(request_id, Op::kAbort));
}

std::string EncodePing(uint64_t request_id) {
  return Seal(BeginFrame(request_id, Op::kPing));
}

std::string EncodeHelloOk(uint64_t request_id, uint8_t version,
                          uint8_t flags) {
  std::string f = BeginFrame(request_id, Op::kHelloOk);
  f.push_back(static_cast<char>(version));
  f.push_back(static_cast<char>(flags));
  return Seal(std::move(f));
}

std::string EncodeTableOk(uint64_t request_id, uint32_t table_token,
                          EngineKind engine) {
  std::string f = BeginFrame(request_id, Op::kTableOk);
  PutLE32(&f, table_token);
  f.push_back(static_cast<char>(engine));
  return Seal(std::move(f));
}

std::string EncodeBeginOk(uint64_t request_id, GlobalTxnId gtid) {
  std::string f = BeginFrame(request_id, Op::kBeginOk);
  PutLE64(&f, gtid);
  return Seal(std::move(f));
}

std::string EncodeExecOk(uint64_t request_id,
                         const std::vector<StmtResult>& results) {
  std::string f = BeginFrame(request_id, Op::kExecOk);
  PutLE16(&f, static_cast<uint16_t>(results.size()));
  for (const StmtResult& r : results) {
    f.push_back(static_cast<char>(r.status));
    if (r.status != Err::kOk) continue;
    switch (r.kind) {
      case Stmt::Kind::kGet:
        f.push_back(r.found ? 1 : 0);
        if (r.found) {
          PutLE32(&f, static_cast<uint32_t>(r.value.size()));
          f.append(r.value);
        }
        break;
      case Stmt::Kind::kPut:
      case Stmt::Kind::kDelete:
        break;  // status byte only
      case Stmt::Kind::kScan:
        PutLE32(&f, static_cast<uint32_t>(r.rows.size()));
        for (const auto& [key, value] : r.rows) {
          f.append(reinterpret_cast<const char*>(key.data()), key.size());
          PutLE32(&f, static_cast<uint32_t>(value.size()));
          f.append(value);
        }
        break;
    }
  }
  return Seal(std::move(f));
}

std::string EncodeErr(uint64_t request_id, Op op, Err code,
                      std::string_view msg) {
  std::string f = BeginFrame(request_id, op);
  f.push_back(static_cast<char>(code));
  PutLE32(&f, static_cast<uint32_t>(msg.size()));
  f.append(msg.data(), msg.size());
  return Seal(std::move(f));
}

std::string EncodeCommitOk(uint64_t request_id) {
  return Seal(BeginFrame(request_id, Op::kCommitOk));
}

std::string EncodeAbortOk(uint64_t request_id) {
  return Seal(BeginFrame(request_id, Op::kAbortOk));
}

std::string EncodePong(uint64_t request_id) {
  return Seal(BeginFrame(request_id, Op::kPong));
}

// --------------------------------------------------------------- decoding

bool DecodeHelloBody(std::string_view body, uint8_t* version, Err* err) {
  Reader r(body);
  char magic[4];
  uint8_t flags;
  if (!r.Take(magic, 4)) {
    *err = Err::kBadFrame;
    return false;
  }
  if (std::memcmp(magic, kMagic, 4) != 0) {
    *err = Err::kBadMagic;
    return false;
  }
  if (!r.U8(version) || !r.U8(&flags) || !r.AtEnd()) {
    *err = Err::kBadFrame;
    return false;
  }
  if (*version == 0) {
    *err = Err::kBadVersion;
    return false;
  }
  return true;
}

bool DecodeOpenTableBody(std::string_view body, std::string* name) {
  Reader r(body);
  uint16_t n;
  if (!r.U16(&n) || n == 0 || n > kMaxTableName) return false;
  return r.Bytes(name, n) && r.AtEnd();
}

bool DecodeBeginBody(std::string_view body, IsolationLevel* iso) {
  Reader r(body);
  uint8_t v;
  if (!r.U8(&v) || !r.AtEnd()) return false;
  if (v > static_cast<uint8_t>(IsolationLevel::kSerializable)) return false;
  *iso = static_cast<IsolationLevel>(v);
  return true;
}

bool DecodeExecBody(std::string_view body, std::vector<Stmt>* stmts) {
  Reader r(body);
  uint16_t count;
  if (!r.U16(&count) || count == 0 || count > kMaxStatements) return false;
  stmts->clear();
  stmts->reserve(count);
  for (uint16_t i = 0; i < count; ++i) {
    Stmt s;
    uint8_t kind;
    if (!r.U8(&kind) || kind < 1 || kind > 4) return false;
    s.kind = static_cast<Stmt::Kind>(kind);
    if (!r.U32(&s.table) || !r.KeyBytes(&s.key)) return false;
    if (s.kind == Stmt::Kind::kPut) {
      uint32_t vlen;
      if (!r.U32(&vlen) || !r.Bytes(&s.value, vlen)) return false;
    } else if (s.kind == Stmt::Kind::kScan) {
      if (!r.U32(&s.scan_limit)) return false;
    }
    stmts->push_back(std::move(s));
  }
  return r.AtEnd();  // trailing bytes after the last statement: malformed
}

bool DecodeHelloOkBody(std::string_view body, uint8_t* version,
                       uint8_t* flags) {
  Reader r(body);
  return r.U8(version) && r.U8(flags) && r.AtEnd();
}

bool DecodeTableOkBody(std::string_view body, uint32_t* table_token,
                       EngineKind* engine) {
  Reader r(body);
  uint8_t e;
  if (!r.U32(table_token) || !r.U8(&e) || !r.AtEnd()) return false;
  if (e >= kNumEngines) return false;
  *engine = static_cast<EngineKind>(e);
  return true;
}

bool DecodeBeginOkBody(std::string_view body, GlobalTxnId* gtid) {
  Reader r(body);
  return r.U64(gtid) && r.AtEnd();
}

bool DecodeExecOkBody(std::string_view body,
                      const std::vector<Stmt::Kind>& kinds,
                      std::vector<StmtResult>* results) {
  Reader r(body);
  uint16_t count;
  if (!r.U16(&count) || count != kinds.size()) return false;
  results->clear();
  results->reserve(count);
  for (uint16_t i = 0; i < count; ++i) {
    StmtResult res;
    res.kind = kinds[i];
    uint8_t status;
    if (!r.U8(&status)) return false;
    res.status = static_cast<Err>(status);
    if (res.status == Err::kOk) {
      switch (res.kind) {
        case Stmt::Kind::kGet: {
          uint8_t found;
          if (!r.U8(&found) || found > 1) return false;
          res.found = found == 1;
          if (res.found) {
            uint32_t vlen;
            if (!r.U32(&vlen) || !r.Bytes(&res.value, vlen)) return false;
          }
          break;
        }
        case Stmt::Kind::kPut:
        case Stmt::Kind::kDelete:
          break;
        case Stmt::Kind::kScan: {
          uint32_t rows;
          if (!r.U32(&rows)) return false;
          for (uint32_t j = 0; j < rows; ++j) {
            Key k;
            uint32_t vlen;
            std::string v;
            if (!r.KeyBytes(&k) || !r.U32(&vlen) || !r.Bytes(&v, vlen)) {
              return false;
            }
            res.rows.emplace_back(k, std::move(v));
          }
          break;
        }
      }
    }
    results->push_back(std::move(res));
  }
  return r.AtEnd();
}

bool DecodeErrBody(std::string_view body, Err* code, std::string* msg) {
  Reader r(body);
  uint8_t c;
  uint32_t n;
  if (!r.U8(&c) || !r.U32(&n) || !r.Bytes(msg, n) || !r.AtEnd()) return false;
  *code = static_cast<Err>(c);
  return true;
}

// ------------------------------------------------------------- replication

std::string EncodeReplHello(uint64_t request_id, const ReplHello& h) {
  std::string f = BeginFrame(request_id, Op::kReplHello);
  f.push_back(static_cast<char>(h.version));
  PutLE64(&f, h.mem_lsn);
  PutLE64(&f, h.stor_lsn);
  PutLE64(&f, h.csr_seq);
  return Seal(std::move(f));
}

std::string EncodeReplHelloOk(uint64_t request_id, uint8_t version) {
  std::string f = BeginFrame(request_id, Op::kReplHelloOk);
  f.push_back(static_cast<char>(version));
  return Seal(std::move(f));
}

std::string EncodeReplLog(uint64_t request_id, const ReplLogBatch& b) {
  std::string f = BeginFrame(request_id, Op::kReplLog);
  f.push_back(static_cast<char>(b.engine));
  PutLE64(&f, b.start_lsn);
  PutLE64(&f, b.end_lsn);
  PutLE32(&f, static_cast<uint32_t>(b.records.size()));
  for (const std::string& rec : b.records) {
    PutLE32(&f, static_cast<uint32_t>(rec.size()));
    f.append(rec);
  }
  return Seal(std::move(f));
}

std::string EncodeReplCsr(uint64_t request_id, const ReplCsrBatch& b) {
  std::string f = BeginFrame(request_id, Op::kReplCsr);
  PutLE64(&f, b.first_seq);
  PutLE32(&f, static_cast<uint32_t>(b.entries.size()));
  for (const auto& [key, value] : b.entries) {
    PutLE64(&f, key);
    PutLE64(&f, value);
  }
  return Seal(std::move(f));
}

std::string EncodeReplWatermark(uint64_t request_id, const ReplWatermark& w) {
  std::string f = BeginFrame(request_id, Op::kReplWatermark);
  PutLE64(&f, w.mem_horizon);
  PutLE64(&f, w.stor_horizon);
  PutLE64(&f, w.csr_seq);
  return Seal(std::move(f));
}

std::string EncodeReplAck(uint64_t request_id, const ReplAck& a) {
  std::string f = BeginFrame(request_id, Op::kReplAck);
  PutLE64(&f, a.mem_lsn);
  PutLE64(&f, a.stor_lsn);
  PutLE64(&f, a.csr_seq);
  return Seal(std::move(f));
}

bool DecodeReplHelloBody(std::string_view body, ReplHello* h) {
  Reader r(body);
  return r.U8(&h->version) && r.U64(&h->mem_lsn) && r.U64(&h->stor_lsn) &&
         r.U64(&h->csr_seq) && r.AtEnd();
}

bool DecodeReplHelloOkBody(std::string_view body, uint8_t* version) {
  Reader r(body);
  return r.U8(version) && r.AtEnd();
}

bool DecodeReplLogBody(std::string_view body, ReplLogBatch* b) {
  Reader r(body);
  uint32_t count;
  if (!r.U8(&b->engine) || !r.U64(&b->start_lsn) || !r.U64(&b->end_lsn) ||
      !r.U32(&count)) {
    return false;
  }
  if (b->engine >= kNumEngines || b->end_lsn < b->start_lsn) return false;
  // Each record costs at least its u32 length prefix; an oversized count is
  // a malformed frame, rejected before the reserve can balloon.
  if (count > r.left / 4) return false;
  b->records.clear();
  b->records.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t len;
    std::string rec;
    if (!r.U32(&len) || !r.Bytes(&rec, len)) return false;
    b->records.push_back(std::move(rec));
  }
  return r.AtEnd();
}

bool DecodeReplCsrBody(std::string_view body, ReplCsrBatch* b) {
  Reader r(body);
  uint32_t count;
  if (!r.U64(&b->first_seq) || !r.U32(&count)) return false;
  if (count > r.left / 16) return false;  // 16 bytes per entry
  b->entries.clear();
  b->entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t key, value;
    if (!r.U64(&key) || !r.U64(&value)) return false;
    b->entries.emplace_back(key, value);
  }
  return r.AtEnd();
}

bool DecodeReplWatermarkBody(std::string_view body, ReplWatermark* w) {
  Reader r(body);
  return r.U64(&w->mem_horizon) && r.U64(&w->stor_horizon) &&
         r.U64(&w->csr_seq) && r.AtEnd();
}

bool DecodeReplAckBody(std::string_view body, ReplAck* a) {
  Reader r(body);
  return r.U64(&a->mem_lsn) && r.U64(&a->stor_lsn) && r.U64(&a->csr_seq) &&
         r.AtEnd();
}

}  // namespace skeena::server
