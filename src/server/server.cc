#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>
#include <unordered_map>

#include "common/thread_annotations.h"
#include "core/database.h"
#include "core/transaction.h"

namespace skeena::server {

namespace {

/// Internal opcode for "the framing layer rejected the stream": the loop
/// thread cannot talk to the Database, so it queues this pseudo-frame in
/// request order and the worker turns it into PROTO_ERR + close. body[0]
/// carries the Err code.
constexpr uint8_t kParseErrOpcode = 0x00;

bool SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

struct Server::Impl {
  // ------------------------------------------------------------ connection
  struct Conn {
    explicit Conn(int fd_in) : fd(fd_in) {}

    const int fd;

    // Loop-thread-only state.
    std::string inbuf;
    uint32_t interest = EPOLLIN;  // current epoll mask
    bool input_dead = false;      // stop reading (EOF / poisoned stream)
    bool closed = false;

    // Worker-only session state (one worker at a time, see `scheduled`).
    bool handshaken = false;
    std::vector<TableHandle> tables;  // table_token -> handle

    // The connection's open transaction. Touched by the owning worker
    // while scheduled, and by the loop thread only at close time (which
    // requires scheduled == false), so it needs no lock of its own.
    std::unique_ptr<Transaction> txn;

    // Cross-thread state.
    Mutex mu;
    // Decoded frames awaiting a worker.
    std::deque<Frame> pending SKEENA_GUARDED_BY(mu);
    // Encoded responses awaiting the socket.
    std::string outbuf SKEENA_GUARDED_BY(mu);
    // A worker owns this conn right now.
    bool scheduled SKEENA_GUARDED_BY(mu) = false;
    // Loop saw EOF / read error.
    bool peer_eof SKEENA_GUARDED_BY(mu) = false;
    // Worker decided to drop the conn.
    bool close_after_flush SKEENA_GUARDED_BY(mu) = false;
  };

  struct Cmd {
    enum Kind { kArmWrite, kCheckClose };
    Kind kind;
    std::shared_ptr<Conn> conn;
  };

  Database* db;
  ServerOptions opts;

  int listen_fd = -1;
  int epoll_fd = -1;
  int wake_fd = -1;

  std::thread loop_thread;
  std::vector<std::thread> worker_threads;
  std::atomic<bool> stopping{false};
  bool started = false;

  // Loop-thread-owned connection table (fd -> conn).
  std::unordered_map<int, std::shared_ptr<Conn>> conns;

  // Worker scheduling.
  Mutex q_mu;
  CondVar q_cv;
  std::deque<std::shared_ptr<Conn>> work SKEENA_GUARDED_BY(q_mu);
  bool workers_stop SKEENA_GUARDED_BY(q_mu) = false;

  // Loop commands from workers.
  Mutex cmd_mu;
  std::vector<Cmd> cmds SKEENA_GUARDED_BY(cmd_mu);

  // Stats.
  std::atomic<uint64_t> accepted{0}, closed_count{0}, frames_in{0},
      frames_out{0}, proto_errors{0}, orphans_aborted{0};

  // ------------------------------------------------------------------ setup

  Status Listen(uint16_t* bound_port) {
    listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                         0);
    if (listen_fd < 0) return Status::IOError("socket: " + Errno());
    int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(opts.port);
    if (inet_pton(AF_INET, opts.host.c_str(), &addr.sin_addr) != 1) {
      return Status::InvalidArgument("bad host: " + opts.host);
    }
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      return Status::IOError("bind: " + Errno());
    }
    if (::listen(listen_fd, 128) != 0) {
      return Status::IOError("listen: " + Errno());
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) !=
        0) {
      return Status::IOError("getsockname: " + Errno());
    }
    *bound_port = ntohs(addr.sin_port);
    return Status::OK();
  }

  static std::string Errno() { return std::strerror(errno); }

  void UpdateInterest(const std::shared_ptr<Conn>& c, uint32_t mask) {
    if (c->interest == mask || c->closed) return;
    c->interest = mask;
    epoll_event ev{};
    ev.events = mask;
    ev.data.fd = c->fd;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, c->fd, &ev);
  }

  void Wake() {
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd, &one, sizeof(one));
  }

  void PostCmd(Cmd::Kind kind, std::shared_ptr<Conn> c) {
    {
      MutexLock lock(cmd_mu);
      cmds.push_back(Cmd{kind, std::move(c)});
    }
    Wake();
  }

  // ------------------------------------------------------------- event loop

  void LoopMain() {
    epoll_event events[128];
    while (!stopping.load(std::memory_order_acquire)) {
      int n = ::epoll_wait(epoll_fd, events, 128, -1);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      for (int i = 0; i < n; ++i) {
        int fd = events[i].data.fd;
        uint32_t ev = events[i].events;
        if (fd == wake_fd) {
          uint64_t drain;
          while (::read(wake_fd, &drain, sizeof(drain)) > 0) {
          }
          RunCmds();
          continue;
        }
        if (fd == listen_fd) {
          AcceptAll();
          continue;
        }
        auto it = conns.find(fd);
        if (it == conns.end()) continue;  // closed earlier in this batch
        std::shared_ptr<Conn> c = it->second;
        if (ev & EPOLLOUT) HandleWritable(c);
        if (c->closed) continue;
        if (ev & (EPOLLIN | EPOLLHUP | EPOLLERR)) HandleReadable(c);
      }
    }
  }

  void RunCmds() {
    std::vector<Cmd> batch;
    {
      MutexLock lock(cmd_mu);
      batch.swap(cmds);
    }
    for (Cmd& cmd : batch) {
      if (cmd.conn->closed) continue;
      if (cmd.kind == Cmd::kArmWrite) {
        bool need;
        {
          MutexLock lock(cmd.conn->mu);
          need = !cmd.conn->outbuf.empty();
        }
        if (need) {
          UpdateInterest(cmd.conn, cmd.conn->interest | EPOLLOUT);
        }
      }
      // Both command kinds end in a close re-evaluation: kArmWrite because
      // the flush that needed arming may belong to a closing connection.
      CheckClose(cmd.conn);
    }
  }

  void AcceptAll() {
    for (;;) {
      int fd = ::accept4(listen_fd, nullptr, nullptr,
                         SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) return;
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto c = std::make_shared<Conn>(fd);
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = fd;
      if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
        ::close(fd);
        continue;
      }
      conns[fd] = std::move(c);
      accepted.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void HandleReadable(const std::shared_ptr<Conn>& c) {
    if (c->input_dead) return;
    bool eof = false;
    for (;;) {
      char buf[16384];
      ssize_t n = ::read(c->fd, buf, sizeof(buf));
      if (n > 0) {
        c->inbuf.append(buf, static_cast<size_t>(n));
        if (n < static_cast<ssize_t>(sizeof(buf))) break;
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      eof = true;  // orderly EOF or hard error: no more input either way
      break;
    }

    // Extract every complete frame; a framing violation poisons the rest
    // of the stream (the parser cannot resynchronize), so it both stops
    // reading and queues the PROTO_ERR pseudo-frame in order.
    std::vector<Frame> got;
    size_t consumed = 0;
    std::string_view view(c->inbuf);
    for (;;) {
      Frame f;
      Err err;
      uint64_t rid_hint;
      ParseResult r = ExtractFrame(view.substr(consumed), &consumed, &f, &err,
                                   &rid_hint);
      if (r == ParseResult::kFrame) {
        frames_in.fetch_add(1, std::memory_order_relaxed);
        got.push_back(std::move(f));
        continue;
      }
      if (r == ParseResult::kError) {
        proto_errors.fetch_add(1, std::memory_order_relaxed);
        Frame poison;
        poison.request_id = rid_hint;
        poison.opcode = kParseErrOpcode;
        poison.body.assign(1, static_cast<char>(err));
        got.push_back(std::move(poison));
        c->input_dead = true;
        UpdateInterest(c, c->interest & ~uint32_t{EPOLLIN});
      }
      break;
    }
    c->inbuf.erase(0, consumed);

    bool schedule = false;
    {
      MutexLock lock(c->mu);
      for (Frame& f : got) c->pending.push_back(std::move(f));
      if (eof) c->peer_eof = true;
      if (!c->pending.empty() && !c->scheduled) {
        c->scheduled = true;
        schedule = true;
      }
    }
    if (eof) {
      c->input_dead = true;
      UpdateInterest(c, c->interest & ~uint32_t{EPOLLIN});
    }
    if (schedule) {
      {
        MutexLock lock(q_mu);
        work.push_back(c);
      }
      q_cv.NotifyOne();
    } else if (eof) {
      CheckClose(c);
    }
  }

  void HandleWritable(const std::shared_ptr<Conn>& c) {
    bool drained;
    {
      MutexLock lock(c->mu);
      FlushLocked(*c);
      drained = c->outbuf.empty();
    }
    if (drained) {
      UpdateInterest(c, c->interest & ~uint32_t{EPOLLOUT});
      CheckClose(c);
    }
  }

  /// Writes as much of outbuf as the socket takes. Caller holds c.mu
  /// (takes a reference so the REQUIRES expression unifies with the
  /// `c->mu` capability TSA sees at shared_ptr call sites).
  /// On a hard write error the buffer is dropped and the connection is
  /// marked for closing (the peer is gone; EPOLLHUP will confirm).
  static void FlushLocked(Conn& c) SKEENA_REQUIRES(c.mu) {
    while (!c.outbuf.empty()) {
      ssize_t n = ::send(c.fd, c.outbuf.data(), c.outbuf.size(),
                         MSG_NOSIGNAL);
      if (n > 0) {
        c.outbuf.erase(0, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      if (n < 0 && errno == EINTR) continue;
      c.outbuf.clear();
      c.close_after_flush = true;
      return;
    }
  }

  /// The single closing funnel (loop thread): a connection dies once its
  /// input is finished (EOF or poisoned), no worker owns it, no frames
  /// wait, and its responses are flushed (or unflushable). Called from
  /// every event that can complete one of those conditions.
  void CheckClose(const std::shared_ptr<Conn>& c) {
    if (c->closed) return;
    bool schedule = false;
    {
      MutexLock lock(c->mu);
      if (!c->peer_eof && !c->close_after_flush) return;
      if (c->close_after_flush) {
        // A worker rejected the stream (protocol error / slow reader):
        // everything pipelined behind the offender is discarded.
        c->pending.clear();
      }
      if (c->scheduled) return;  // worker will post kCheckClose when done
      if (!c->pending.empty()) {
        // EOF with frames still queued (half-close): drain them first.
        c->scheduled = true;
        schedule = true;
      } else {
        FlushLocked(*c);
        if (!c->outbuf.empty()) {
          // Flush pending; EPOLLOUT completion re-enters CheckClose. Mark
          // the conn closing so new input cannot revive it.
          c->close_after_flush = true;
        }
      }
    }
    if (schedule) {
      {
        MutexLock lock(q_mu);
        work.push_back(c);
      }
      q_cv.NotifyOne();
      return;
    }
    {
      MutexLock lock(c->mu);
      if (!c->outbuf.empty()) {
        // Still flushing: arm EPOLLOUT (idempotent) and wait.
        UpdateInterest(c, c->interest | EPOLLOUT);
        return;
      }
    }
    c->input_dead = true;
    CloseConn(c);
  }

  void CloseConn(const std::shared_ptr<Conn>& c) {
    if (c->closed) return;
    c->closed = true;
    if (c->txn) {
      // The disconnect orphaned an open transaction: roll it back. This
      // is safe here because closed connections are never scheduled.
      c->txn->Abort();
      c->txn.reset();
      orphans_aborted.fetch_add(1, std::memory_order_relaxed);
    }
    ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, c->fd, nullptr);
    ::close(c->fd);
    conns.erase(c->fd);
    closed_count.fetch_add(1, std::memory_order_relaxed);
  }

  // ---------------------------------------------------------------- workers

  void WorkerMain() {
    for (;;) {
      std::shared_ptr<Conn> c;
      {
        MutexLock lock(q_mu);
        // Explicit wait loop (not the predicate overload): TSA analyzes a
        // lambda body without the enclosing lock set, so a predicate that
        // reads guarded fields would trip -Wthread-safety.
        while (!workers_stop && work.empty()) q_cv.Wait(q_mu);
        if (workers_stop && work.empty()) return;
        c = std::move(work.front());
        work.pop_front();
      }
      ProcessConn(c);
    }
  }

  void ProcessConn(const std::shared_ptr<Conn>& c) {
    bool post_check = false;
    for (;;) {
      std::deque<Frame> batch;
      {
        MutexLock lock(c->mu);
        if (c->pending.empty() || c->close_after_flush) {
          c->scheduled = false;
          post_check = c->peer_eof || c->close_after_flush;
          break;
        }
        batch.swap(c->pending);
      }

      std::string out;
      bool drop_conn = false;
      for (Frame& f : batch) {
        if (drop_conn) break;  // frames behind a fatal error are discarded
        HandleFrame(c.get(), f, &out, &drop_conn);
      }

      bool need_arm = false;
      {
        MutexLock lock(c->mu);
        c->outbuf.append(out);
        if (drop_conn) c->close_after_flush = true;
        if (c->outbuf.size() > opts.max_outbuf_bytes) {
          // Slow reader: the pipelined response backlog exceeded the cap.
          c->outbuf.clear();
          c->close_after_flush = true;
        }
        FlushLocked(*c);
        need_arm = !c->outbuf.empty();
      }
      if (need_arm) PostCmd(Cmd::kArmWrite, c);
    }
    if (post_check) PostCmd(Cmd::kCheckClose, c);
  }

  void Emit(Conn*, std::string* out, std::string frame) {
    frames_out.fetch_add(1, std::memory_order_relaxed);
    out->append(frame);
  }

  void HandleFrame(Conn* c, const Frame& f, std::string* out,
                   bool* drop_conn) {
    const uint64_t rid = f.request_id;
    auto proto_err = [&](Err code, std::string_view msg) {
      proto_errors.fetch_add(1, std::memory_order_relaxed);
      Emit(c, out, EncodeErr(rid, Op::kProtoErr, code, msg));
      *drop_conn = true;
    };
    auto txn_err = [&](Err code, std::string_view msg) {
      Emit(c, out, EncodeErr(rid, Op::kTxnErr, code, msg));
    };

    if (f.opcode == kParseErrOpcode) {
      // Framing violation detected by the loop thread; body[0] = code.
      // (Already counted in proto_errors at parse time.)
      Err code = f.body.empty() ? Err::kBadFrame
                                : static_cast<Err>(f.body[0]);
      Emit(c, out, EncodeErr(rid, Op::kProtoErr, code, ErrName(code)));
      *drop_conn = true;
      return;
    }

    Op op = static_cast<Op>(f.opcode);
    if (!c->handshaken && op != Op::kHello) {
      proto_err(Err::kNotReady, "first frame must be HELLO");
      return;
    }

    switch (op) {
      case Op::kHello: {
        uint8_t version;
        Err err;
        if (!DecodeHelloBody(f.body, &version, &err)) {
          proto_err(err, "bad HELLO");
          return;
        }
        c->handshaken = true;
        Emit(c, out,
             EncodeHelloOk(rid, std::min(version, kProtocolVersion)));
        return;
      }
      case Op::kOpenTable: {
        std::string name;
        if (!DecodeOpenTableBody(f.body, &name)) {
          proto_err(Err::kBadFrame, "bad OPEN_TABLE");
          return;
        }
        auto h = db->GetTable(name);
        if (!h.ok()) {
          txn_err(Err::kNotFound, h.status().message());
          return;
        }
        uint32_t token = static_cast<uint32_t>(c->tables.size());
        c->tables.push_back(*h);
        Emit(c, out, EncodeTableOk(rid, token, h->home));
        return;
      }
      case Op::kBegin: {
        IsolationLevel iso;
        if (!DecodeBeginBody(f.body, &iso)) {
          proto_err(Err::kBadFrame, "bad BEGIN");
          return;
        }
        if (c->txn) {
          txn_err(Err::kTxnOpen, "transaction already open");
          return;
        }
        c->txn = db->Begin(iso);
        Emit(c, out, EncodeBeginOk(rid, c->txn->gtid()));
        return;
      }
      case Op::kExec: {
        std::vector<Stmt> stmts;
        if (!DecodeExecBody(f.body, &stmts)) {
          proto_err(Err::kBadFrame, "bad EXEC");
          return;
        }
        if (!c->txn) {
          txn_err(Err::kNoTxn, "EXEC with no open transaction");
          return;
        }
        Emit(c, out, EncodeExecOk(rid, ExecStatements(c, stmts)));
        return;
      }
      case Op::kCommit: {
        if (!f.body.empty()) {
          proto_err(Err::kBadFrame, "COMMIT carries no body");
          return;
        }
        if (!c->txn) {
          txn_err(Err::kNoTxn, "COMMIT with no open transaction");
          return;
        }
        Status s = c->txn->Commit();
        c->txn.reset();
        if (s.ok()) {
          Emit(c, out, EncodeCommitOk(rid));
        } else {
          txn_err(ErrFromStatus(s), s.message());
        }
        return;
      }
      case Op::kAbort: {
        if (!f.body.empty()) {
          proto_err(Err::kBadFrame, "ABORT carries no body");
          return;
        }
        // Idempotent by spec: pipelined clients may trail an abort.
        if (c->txn) {
          c->txn->Abort();
          c->txn.reset();
        }
        Emit(c, out, EncodeAbortOk(rid));
        return;
      }
      case Op::kPing: {
        Emit(c, out, EncodePong(rid));
        return;
      }
      default:
        proto_err(Err::kBadOpcode, "unknown or response-range opcode");
        return;
    }
  }

  std::vector<StmtResult> ExecStatements(Conn* c,
                                         const std::vector<Stmt>& stmts) {
    std::vector<StmtResult> results;
    results.reserve(stmts.size());
    bool txn_dead = false;
    for (const Stmt& s : stmts) {
      StmtResult r;
      r.kind = s.kind;
      if (txn_dead) {
        // The transaction died under this frame; per spec the remaining
        // statements are not executed.
        r.status = Err::kNoTxn;
        results.push_back(std::move(r));
        continue;
      }
      if (s.table >= c->tables.size()) {
        r.status = Err::kInvalid;
        results.push_back(std::move(r));
        continue;
      }
      const TableHandle& t = c->tables[s.table];
      Status st;
      switch (s.kind) {
        case Stmt::Kind::kGet: {
          std::string value;
          st = c->txn->Get(t, s.key, &value);
          if (st.ok()) {
            r.found = true;
            r.value = std::move(value);
          } else if (st.IsNotFound()) {
            st = Status::OK();  // miss: status OK, found = 0
          }
          break;
        }
        case Stmt::Kind::kPut:
          st = c->txn->Put(t, s.key, s.value);
          break;
        case Stmt::Kind::kDelete:
          st = c->txn->Delete(t, s.key);
          break;
        case Stmt::Kind::kScan:
          st = c->txn->Scan(t, s.key, s.scan_limit,
                            [&r](const Key& k, const std::string& v) {
                              r.rows.emplace_back(k, v);
                              return true;
                            });
          break;
      }
      r.status = ErrFromStatus(st);
      if (st.IsAnyAbort()) {
        // Transaction::HandleOpStatus already rolled everything back.
        c->txn.reset();
        txn_dead = true;
      }
      results.push_back(std::move(r));
    }
    return results;
  }
};

Server::Server(Database* db, ServerOptions options)
    : impl_(std::make_unique<Impl>()) {
  impl_->db = db;
  impl_->opts = std::move(options);
  if (impl_->opts.workers < 1) impl_->opts.workers = 1;
}

Server::~Server() { Stop(); }

Status Server::Start() {
  Impl& im = *impl_;
  if (im.started) return Status::InvalidArgument("server already started");
  SKEENA_RETURN_NOT_OK(im.Listen(&port_));
  im.epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  im.wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (im.epoll_fd < 0 || im.wake_fd < 0) {
    return Status::IOError("epoll/eventfd: " + Impl::Errno());
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = im.listen_fd;
  ::epoll_ctl(im.epoll_fd, EPOLL_CTL_ADD, im.listen_fd, &ev);
  ev.data.fd = im.wake_fd;
  ::epoll_ctl(im.epoll_fd, EPOLL_CTL_ADD, im.wake_fd, &ev);
  SetNonBlocking(im.listen_fd);

  im.started = true;
  im.stopping.store(false, std::memory_order_release);
  im.loop_thread = std::thread([&im] { im.LoopMain(); });
  for (int i = 0; i < im.opts.workers; ++i) {
    im.worker_threads.emplace_back([&im] { im.WorkerMain(); });
  }
  return Status::OK();
}

void Server::Stop() {
  Impl& im = *impl_;
  if (!im.started) return;
  im.started = false;

  // 1. Stop the event loop: no new connections, reads, or flushes.
  im.stopping.store(true, std::memory_order_release);
  im.Wake();
  if (im.loop_thread.joinable()) im.loop_thread.join();

  // 2. Drain the workers (they finish in-flight frames, then exit).
  {
    MutexLock lock(im.q_mu);
    im.workers_stop = true;
  }
  im.q_cv.NotifyAll();
  for (std::thread& t : im.worker_threads) {
    if (t.joinable()) t.join();
  }
  im.worker_threads.clear();

  // 3. Single-threaded teardown: every surviving connection's open
  // transaction is an orphan — abort it, then close the socket.
  for (auto& [fd, c] : im.conns) {
    if (c->txn) {
      c->txn->Abort();
      c->txn.reset();
      im.orphans_aborted.fetch_add(1, std::memory_order_relaxed);
    }
    ::close(fd);
    im.closed_count.fetch_add(1, std::memory_order_relaxed);
  }
  im.conns.clear();
  if (im.listen_fd >= 0) ::close(im.listen_fd);
  if (im.epoll_fd >= 0) ::close(im.epoll_fd);
  if (im.wake_fd >= 0) ::close(im.wake_fd);
  im.listen_fd = im.epoll_fd = im.wake_fd = -1;
}

Server::Stats Server::stats() const {
  const Impl& im = *impl_;
  Stats s;
  s.connections_accepted = im.accepted.load(std::memory_order_relaxed);
  s.connections_closed = im.closed_count.load(std::memory_order_relaxed);
  s.frames_in = im.frames_in.load(std::memory_order_relaxed);
  s.frames_out = im.frames_out.load(std::memory_order_relaxed);
  s.protocol_errors = im.proto_errors.load(std::memory_order_relaxed);
  s.txns_aborted_on_disconnect =
      im.orphans_aborted.load(std::memory_order_relaxed);
  return s;
}

}  // namespace skeena::server
